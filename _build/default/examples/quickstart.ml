(* Quickstart: the whole DMP toolchain on a hand-written program.

   We build a small program with one hard-to-predict hammock, profile
   it, let the compiler select diverge branches and CFM points, and
   simulate both the baseline processor and the DMP.

   Run with: dune exec examples/quickstart.exe *)

open Dmp_ir
module B = Build

(* A program that reads 10_000 values; for each value it branches on an
   unpredictable bit into one of two short arms that reconverge, then
   does some common work. This is the simple hammock of Figure 1. *)
let program =
  let f = B.func "main" in
  let v = Reg.of_int 4 and c = Reg.of_int 5 and n = Reg.of_int 6 in
  let acc = Reg.of_int 7 in
  B.li f n 10_000;
  B.label f "loop";
  B.read f v;
  (* c <- v mod 2: a coin flip no predictor can learn. *)
  B.rem f c v (B.imm 2);
  B.branch f Term.Ne c (B.imm 0) ~target:"odd" ();
  B.label f "even";
  B.add f acc acc (B.imm 3);
  B.mul f acc acc (B.imm 5);
  B.jump f "join";
  B.label f "odd";
  B.sub f acc acc (B.imm 7);
  B.jump f "join";
  B.label f "join";
  (* Control-independent work: DMP keeps fetching this during
     dynamic predication instead of flushing it. *)
  B.add f acc acc (B.reg v);
  B.rem f acc acc (B.imm 104729);
  B.sub f n n (B.imm 1);
  B.branch f Term.Gt n (B.imm 0) ~target:"loop" ();
  B.label f "end";
  B.write f acc;
  B.halt f;
  Program.of_funcs_exn ~main:"main" [ B.finish f ]

let () =
  let linked = Linked.link program in
  let input =
    let st = Random.State.make [| 7 |] in
    Array.init 10_100 (fun _ -> Random.State.int st 1_000_000)
  in
  (* 1. Edge + misprediction profile. *)
  let profile = Dmp_profile.Profile.collect linked ~input in
  Fmt.pr "profiled %d instructions, %.1f mispredictions/kilo-inst@."
    (Dmp_profile.Profile.retired profile)
    (Dmp_profile.Profile.mpki profile);
  (* 2. Compiler: select diverge branches and CFM points. *)
  let annotation = Dmp_core.Select.run linked profile in
  Fmt.pr "@.compiler selected %d diverge branch(es):@.%a@."
    (Dmp_core.Annotation.count annotation)
    Dmp_core.Annotation.pp annotation;
  (* 3. Simulate baseline and DMP. *)
  let base =
    Dmp_uarch.Sim.run ~config:Dmp_uarch.Config.baseline linked ~input
  in
  let dmp =
    Dmp_uarch.Sim.run ~config:Dmp_uarch.Config.dmp ~annotation linked ~input
  in
  Fmt.pr "@.baseline: %a@.@.DMP:      %a@." Dmp_uarch.Stats.pp base
    Dmp_uarch.Stats.pp dmp;
  Fmt.pr "@.IPC %.3f -> %.3f (%+.1f%%), flushes %d -> %d@."
    (Dmp_uarch.Stats.ipc base) (Dmp_uarch.Stats.ipc dmp)
    ((Dmp_uarch.Stats.ipc dmp /. Dmp_uarch.Stats.ipc base -. 1.) *. 100.)
    base.Dmp_uarch.Stats.flushes dmp.Dmp_uarch.Stats.flushes
