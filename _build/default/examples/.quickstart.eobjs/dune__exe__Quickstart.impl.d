examples/quickstart.ml: Array Build Dmp_core Dmp_ir Dmp_profile Dmp_uarch Fmt Linked Program Random Reg Term
