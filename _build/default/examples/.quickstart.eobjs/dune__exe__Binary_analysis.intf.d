examples/binary_analysis.mli:
