examples/static_vs_dynamic.mli:
