examples/quickstart.mli:
