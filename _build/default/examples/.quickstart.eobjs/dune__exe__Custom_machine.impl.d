examples/custom_machine.ml: Config Dmp_core Dmp_profile Dmp_uarch Dmp_workload Fmt Input_gen List Printf Registry Sim Spec Stats
