examples/binary_analysis.ml: Array Dmp_core Dmp_ir Dmp_profile Dmp_uarch Dmp_workload Encode Fmt Func Input_gen Lazy Linked List Program Recover Registry Spec
