examples/cost_model.mli:
