examples/parser_loop.ml: Array Build Dmp_core Dmp_ir Dmp_profile Dmp_uarch Fmt Linked List Program Random Reg Term
