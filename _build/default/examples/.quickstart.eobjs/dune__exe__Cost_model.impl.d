examples/cost_model.ml: Candidate Cost_model Dmp_core Fmt List Params
