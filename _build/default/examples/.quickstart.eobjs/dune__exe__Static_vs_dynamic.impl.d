examples/static_vs_dynamic.ml: Array Build Dmp_core Dmp_exec Dmp_ir Dmp_profile Dmp_uarch Fmt Linked Program Random Reg Term
