examples/parser_loop.mli:
