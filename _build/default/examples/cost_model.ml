(* Exploring the analytical cost-benefit model of Section 4.

   We evaluate Equation (15) — "select a branch as a diverge branch if
   its expected dynamic-predication cost is negative" — across hammock
   sizes and merge probabilities, reproducing the intuition behind
   Figure 7: big hammocks and low merge probabilities are not worth
   predicating.

   Run with: dune exec examples/cost_model.exe *)

open Dmp_core

let synthetic_cfm ~side_insts ~merge_prob =
  {
    Candidate.cfm_block = 0;
    cfm_addr = 0;
    exact = merge_prob >= 1.;
    merge_prob;
    longest_t = side_insts;
    longest_nt = side_insts;
    avg_t = float_of_int side_insts;
    avg_nt = float_of_int side_insts;
    freq_t = side_insts;
    freq_nt = side_insts;
    prob_t = 1.;
    prob_nt = 1.;
    max_cbr = 1;
    select_uops = 2;
    blocks_on_paths = Candidate.Int_set.empty;
  }

let () =
  let params = Params.for_cost_model in
  Fmt.pr "machine: fetch width %d, misprediction penalty %d cycles, \
          Acc_Conf %.0f%%@.@."
    params.Params.fetch_width params.Params.misp_penalty
    (params.Params.acc_conf *. 100.);
  let sides = [ 4; 8; 16; 32; 64; 96; 128 ] in
  let probs = [ 1.0; 0.95; 0.8; 0.5; 0.3; 0.1 ] in
  Fmt.pr "dpred cost (fetch cycles; negative = select the branch), \
          taken probability 0.5:@.";
  Fmt.pr "%-14s" "side insts";
  List.iter (fun p -> Fmt.pr " merge=%.2f" p) probs;
  Fmt.pr "@.";
  List.iter
    (fun side ->
      Fmt.pr "%-14d" side;
      List.iter
        (fun merge_prob ->
          let cfm = synthetic_cfm ~side_insts:side ~merge_prob in
          let overhead =
            Cost_model.dpred_overhead params Cost_model.Edge_weighted [ cfm ]
              ~taken_prob:0.5
          in
          let cost = Cost_model.dpred_cost params ~overhead in
          Fmt.pr " %+9.2f%s" cost (if cost < 0. then "*" else " "))
        probs;
      Fmt.pr "@.")
    sides;
  Fmt.pr "@.(*) selected as a diverge branch (Equation 15)@.@.";
  (* The three path-estimation methods of Section 4.1.1 on an
     asymmetric hammock. *)
  let asym =
    { (synthetic_cfm ~side_insts:20 ~merge_prob:0.95) with
      Candidate.longest_t = 48;
      longest_nt = 12;
      avg_t = 22.;
      avg_nt = 10.;
      freq_t = 16;
      freq_nt = 10;
    }
  in
  Fmt.pr "asymmetric hammock (longest 48/12, avg 22/10, frequent 16/10):@.";
  List.iter
    (fun m ->
      let overhead =
        Cost_model.dpred_overhead params m [ asym ] ~taken_prob:0.6
      in
      Fmt.pr "  %-14s overhead %.2f cycles -> cost %+.2f@."
        (Cost_model.path_method_to_string m)
        overhead
        (Cost_model.dpred_cost params ~overhead))
    [ Cost_model.Most_frequent; Cost_model.Longest;
      Cost_model.Edge_weighted ];
  (* Loop cost model (Section 5.1). *)
  Fmt.pr "@.loop cost model (body 12 insts, 2 select-uops/iter, 3 dpred \
          iterations):@.";
  List.iter
    (fun (p_late, extra) ->
      let cost =
        Cost_model.loop_cost params ~n_body:12 ~n_select:2 ~dpred_iter:3.
          ~extra_iter:extra ~p_correct:0.5
          ~p_early:((1. -. 0.5 -. p_late) /. 2.)
          ~p_late
          ~p_noexit:((1. -. 0.5 -. p_late) /. 2.)
      in
      Fmt.pr "  P(late-exit)=%.2f extra-iters=%.1f -> cost %+.2f cycles@."
        p_late extra cost)
    [ (0.4, 1.); (0.3, 2.); (0.2, 3.); (0.1, 4.) ]
