(* Static if-conversion vs dynamic predication — the comparison that
   motivates the paper's introduction.

   Static predication eliminates the branch entirely (both arms always
   execute, arithmetic selects reconcile), so it can never mispredict —
   but it pays the both-arms cost on every execution, even in phases
   where the branch is perfectly predictable, and it cannot convert
   arms with stores or calls. DMP predicates the same branch *only*
   when the confidence estimator expects a misprediction.

   We run a program whose hammock condition alternates between a
   predictable phase and a random phase, under four machines:
   baseline, statically if-converted, DMP, and if-converted+DMP.

   Run with: dune exec examples/static_vs_dynamic.exe *)

open Dmp_ir
module B = Build

let iterations = 12_000

let program =
  let f = B.func "main" in
  let v = Reg.of_int 4 and c = Reg.of_int 5 and n = Reg.of_int 6 in
  let acc = Reg.of_int 7 in
  B.li f n iterations;
  B.label f "loop";
  B.read f v;
  B.rem f c v (B.imm 2);
  B.branch f Term.Ne c (B.imm 0) ~target:"odd" ();
  B.label f "even";
  B.add f acc acc (B.imm 3);
  B.xor f acc acc (B.imm 21);
  B.jump f "join";
  B.label f "odd";
  B.sub f acc acc (B.imm 7);
  B.jump f "join";
  B.label f "join";
  B.add f acc acc (B.reg v);
  B.rem f acc acc (B.imm 104729);
  (* A second hard hammock with a store in one arm: if-conversion
     cannot touch it, dynamic predication can. *)
  B.div f c v (B.imm 2);
  B.rem f c c (B.imm 2);
  B.branch f Term.Ne c (B.imm 0) ~target:"log" ();
  B.label f "nolog";
  B.add f acc acc (B.imm 1);
  B.jump f "join2";
  B.label f "log";
  B.store f acc (Reg.of_int 8) 0;
  B.add f (Reg.of_int 8) (Reg.of_int 8) (B.imm 8);
  B.rem f (Reg.of_int 8) (Reg.of_int 8) (B.imm 4096);
  B.label f "join2";
  B.sub f n n (B.imm 1);
  B.branch f Term.Gt n (B.imm 0) ~target:"loop" ();
  B.label f "end";
  B.write f acc;
  B.halt f;
  Program.of_funcs_exn ~main:"main" [ B.finish f ]

let () =
  (* Phased input: predictable halves alternate with random halves. *)
  let st = Random.State.make [| 3 |] in
  let input =
    Array.init (iterations + 64) (fun i ->
        if i / 1500 mod 2 = 0 then 2 else Random.State.int st 1_000_000)
  in
  let linked = Linked.link program in
  let profile = Dmp_profile.Profile.collect linked ~input in
  let converted, stats = Dmp_core.If_convert.run linked profile in
  Fmt.pr "if-conversion: %d converted, %d rejected by shape, %d by profile@."
    stats.Dmp_core.If_convert.converted
    stats.Dmp_core.If_convert.rejected_shape
    stats.Dmp_core.If_convert.rejected_profile;
  let conv_linked = Linked.link converted in
  (* semantics must be preserved *)
  let out p =
    let emu = Dmp_exec.Emulator.create p ~input in
    ignore (Dmp_exec.Emulator.run emu);
    Dmp_exec.Emulator.output emu
  in
  assert (out linked = out conv_linked);
  Fmt.pr "semantics preserved by if-conversion@.@.";
  let run ?annotation p =
    let config =
      match annotation with
      | Some _ -> Dmp_uarch.Config.dmp
      | None -> Dmp_uarch.Config.baseline
    in
    Dmp_uarch.Sim.run ~config ?annotation p ~input
  in
  let show label stats =
    Fmt.pr "%-28s IPC %5.3f   flushes %6d   retired %d@." label
      (Dmp_uarch.Stats.ipc stats) stats.Dmp_uarch.Stats.flushes
      stats.Dmp_uarch.Stats.retired
  in
  let base = run linked in
  show "baseline" base;
  show "static if-conversion" (run conv_linked);
  let ann = Dmp_core.Select.run linked profile in
  show "DMP" (run ~annotation:ann linked);
  let conv_profile = Dmp_profile.Profile.collect conv_linked ~input in
  let conv_ann = Dmp_core.Select.run conv_linked conv_profile in
  show "if-conversion + DMP" (run ~annotation:conv_ann conv_linked);
  Fmt.pr
    "@.Static conversion removes the pure-ALU branch (and its flushes) \
     but executes both arms on every iteration and cannot convert the \
     hammock with the store. DMP predicates both hammocks, only on \
     low-confidence executions; combining the two techniques stacks \
     their coverage, as the paper's related work (wish branches, \
     hyperblocks + DMP) suggests.@."
