(* The paper's flagship diverge-loop scenario (Section 7.1): parser's
   dictionary word-comparison loop. The loop's exit branch mispredicts
   because input word lengths are unpredictable; DMP dynamically
   predicates the loop so that over-fetched iterations become NOPs
   (late exit) instead of triggering a pipeline flush.

   Run with: dune exec examples/parser_loop.exe *)

open Dmp_ir
module B = Build

let iterations = 8_000

let program =
  let f = B.func "main" in
  let w = Reg.of_int 4 and len = Reg.of_int 5 and n = Reg.of_int 6 in
  let acc = Reg.of_int 7 in
  B.li f n iterations;
  B.label f "word";
  B.read f w;
  (* Word length 1..8, uniformly distributed: the exit branch of the
     compare loop below cannot be predicted. *)
  B.rem f len w (B.imm 8);
  B.add f len len (B.imm 1);
  B.label f "cmp";
  (* Compare one "character" per iteration. *)
  B.add f acc acc (B.reg w);
  B.xor f acc acc (B.imm 0x55);
  B.sub f len len (B.imm 1);
  B.branch f Term.Gt len (B.imm 0) ~target:"cmp" ();
  B.label f "after";
  (* Control-independent continuation: the dictionary bookkeeping. *)
  B.add f acc acc (B.imm 1);
  B.rem f acc acc (B.imm 99991);
  B.sub f n n (B.imm 1);
  B.branch f Term.Gt n (B.imm 0) ~target:"word" ();
  B.label f "end";
  B.write f acc;
  B.halt f;
  Program.of_funcs_exn ~main:"main" [ B.finish f ]

let () =
  let linked = Linked.link program in
  let input =
    let st = Random.State.make [| 41 |] in
    Array.init (iterations + 64) (fun _ -> Random.State.int st 1_000_000)
  in
  let profile = Dmp_profile.Profile.collect linked ~input in
  (* Show what the loop heuristics (Section 5.2) decided. *)
  let ctx = Dmp_core.Context.create linked profile in
  List.iter
    (fun (c : Dmp_core.Loop_select.loop_candidate) ->
      Fmt.pr
        "loop candidate br@%d: body=%d insts, avg %.2f iterations, \
         %d select-uops -> %s@."
        c.Dmp_core.Loop_select.branch_addr c.Dmp_core.Loop_select.body_insts
        c.Dmp_core.Loop_select.avg_iterations
        c.Dmp_core.Loop_select.select_uops
        (if Dmp_core.Loop_select.passes_heuristics Dmp_core.Params.default c
         then "SELECTED"
         else "rejected"))
    (Dmp_core.Loop_select.find ctx);
  let annotation = Dmp_core.Select.run linked profile in
  let base =
    Dmp_uarch.Sim.run ~config:Dmp_uarch.Config.baseline linked ~input
  in
  let dmp =
    Dmp_uarch.Sim.run ~config:Dmp_uarch.Config.dmp ~annotation linked ~input
  in
  Fmt.pr
    "@.loop dpred cases: correct=%d early-exit=%d late-exit=%d no-exit=%d@."
    dmp.Dmp_uarch.Stats.loop_correct dmp.Dmp_uarch.Stats.loop_early_exits
    dmp.Dmp_uarch.Stats.loop_late_exits dmp.Dmp_uarch.Stats.loop_no_exits;
  Fmt.pr "flushes %d -> %d; IPC %.3f -> %.3f (%+.1f%%)@."
    base.Dmp_uarch.Stats.flushes dmp.Dmp_uarch.Stats.flushes
    (Dmp_uarch.Stats.ipc base) (Dmp_uarch.Stats.ipc dmp)
    ((Dmp_uarch.Stats.ipc dmp /. Dmp_uarch.Stats.ipc base -. 1.) *. 100.)
