(* Machine sensitivity: DMP's benefit grows with the misprediction
   penalty (deeper front end) and shrinks when the window is small —
   the design-space intuition behind the DMP papers.

   Runs the twolf stand-in across machine configurations.

   Run with: dune exec examples/custom_machine.exe *)

open Dmp_workload
open Dmp_uarch

let () =
  let spec = Registry.find "twolf" in
  let linked = Spec.linked spec in
  let input = spec.Spec.input Input_gen.Reduced in
  let profile =
    Dmp_profile.Profile.collect ~max_insts:300_000 linked ~input
  in
  let annotation = Dmp_core.Select.run linked profile in
  let run config =
    Sim.run ~config ~max_insts:300_000 linked ~input
  in
  let compare_at label config =
    let base = run { config with Config.dmp_enabled = false } in
    let dmp =
      Sim.run ~config:{ config with Config.dmp_enabled = true } ~annotation
        ~max_insts:300_000 linked ~input
    in
    Fmt.pr "%-34s base IPC %5.2f  DMP IPC %5.2f  (%+5.1f%%)@." label
      (Stats.ipc base) (Stats.ipc dmp)
      ((Stats.ipc dmp /. Stats.ipc base -. 1.) *. 100.)
  in
  Fmt.pr "front-end depth sweep (misprediction penalty):@.";
  List.iter
    (fun depth ->
      compare_at
        (Printf.sprintf "  front_depth=%d (penalty>=%d)" depth (depth + 2))
        { Config.baseline with Config.front_depth = depth })
    [ 11; 23; 35; 47 ];
  Fmt.pr "@.reorder-buffer size sweep:@.";
  List.iter
    (fun rob ->
      compare_at
        (Printf.sprintf "  rob_size=%d" rob)
        { Config.baseline with Config.rob_size = rob })
    [ 128; 256; 512; 1024 ];
  Fmt.pr "@.fetch width sweep:@.";
  List.iter
    (fun fw ->
      compare_at
        (Printf.sprintf "  fetch_width=%d" fw)
        { Config.baseline with Config.fetch_width = fw })
    [ 4; 8; 16 ]
