(* The paper's Section 6.1 flow, end to end: start from a *binary*,
   recover its CFG, profile it, select diverge branches and CFM points,
   attach the annotation, and simulate.

   We encode the twolf stand-in to a flat binary image (as if it were
   the compiled benchmark), throw away the structured program, and run
   the whole toolchain on what was recovered from the bits.

   Run with: dune exec examples/binary_analysis.exe *)

open Dmp_ir
open Dmp_workload

let () =
  let spec = Registry.find "twolf" in
  let original = Lazy.force spec.Spec.program in
  let input = spec.Spec.input Input_gen.Reduced in
  (* 1. "Compile": link and encode to a binary image. *)
  let image = Encode.encode (Linked.link original) in
  Fmt.pr "binary image: %d instruction words, %d symbols@."
    (Array.length image.Encode.code)
    (List.length image.Encode.symbols);
  Fmt.pr "first words of main:@.";
  Array.iteri
    (fun addr w ->
      if addr < 6 then
        Fmt.pr "  %4d: %s@." addr (Encode.disassemble_word w))
    image.Encode.code;
  (* 2. Binary analysis: recover functions and basic blocks. *)
  let recovered =
    match Recover.program image with
    | Ok p -> p
    | Error m -> failwith m
  in
  Fmt.pr "@.recovered %d functions, %d blocks, %d static branches@."
    (Program.num_funcs recovered)
    (Array.fold_left
       (fun acc f -> acc + Func.num_blocks f)
       0 recovered.Program.funcs)
    (Program.static_conditional_branches recovered);
  let linked = Linked.link recovered in
  (* 3. Profile and select on the recovered program. *)
  let profile = Dmp_profile.Profile.collect ~max_insts:300_000 linked ~input in
  let annotation = Dmp_core.Select.run linked profile in
  Fmt.pr "@.selected diverge branches (serialised annotation):@.%s@."
    (Dmp_core.Annotation.to_string annotation);
  (* 4. Simulate baseline and DMP on the recovered binary. *)
  let base =
    Dmp_uarch.Sim.run ~config:Dmp_uarch.Config.baseline ~max_insts:300_000
      linked ~input
  in
  let dmp =
    Dmp_uarch.Sim.run ~config:Dmp_uarch.Config.dmp ~annotation
      ~max_insts:300_000 linked ~input
  in
  Fmt.pr "IPC %.3f -> %.3f (%+.1f%%), flushes %d -> %d@."
    (Dmp_uarch.Stats.ipc base) (Dmp_uarch.Stats.ipc dmp)
    ((Dmp_uarch.Stats.ipc dmp /. Dmp_uarch.Stats.ipc base -. 1.) *. 100.)
    base.Dmp_uarch.Stats.flushes dmp.Dmp_uarch.Stats.flushes
