type t = { funcs : Func.t array; main : int }

let func t i = t.funcs.(i)
let num_funcs t = Array.length t.funcs
let main_func t = t.funcs.(t.main)

let find_func t name =
  let rec go i =
    if i >= Array.length t.funcs then None
    else if String.equal t.funcs.(i).Func.name name then Some i
    else go (i + 1)
  in
  go 0

let size t = Array.fold_left (fun acc f -> acc + Func.size f) 0 t.funcs

let static_conditional_branches t =
  Array.fold_left
    (fun acc f ->
      Array.fold_left
        (fun acc b -> if Block.is_conditional b then acc + 1 else acc)
        acc f.Func.blocks)
    0 t.funcs

let validate t =
  let names = Hashtbl.create 16 in
  let err = ref None in
  let set_err msg = if !err = None then err := Some msg in
  Array.iter
    (fun f ->
      let name = f.Func.name in
      if Hashtbl.mem names name then
        set_err (Printf.sprintf "duplicate function %s" name)
      else Hashtbl.add names name ();
      (match Func.validate f with Ok () -> () | Error m -> set_err m);
      Array.iter
        (fun b ->
          Array.iter
            (fun i ->
              match i with
              | Instr.Call { callee } ->
                  if find_func t callee = None then
                    set_err
                      (Printf.sprintf "%s calls unknown function %s" name
                         callee)
              | _ -> ())
            b.Block.body)
        f.Func.blocks)
    t.funcs;
  if t.main < 0 || t.main >= Array.length t.funcs then
    set_err "main function index out of range";
  match !err with None -> Ok () | Some m -> Error m

let of_funcs ~main funcs =
  let funcs = Array.of_list funcs in
  let rec find i =
    if i >= Array.length funcs then None
    else if String.equal funcs.(i).Func.name main then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Error (Printf.sprintf "main function %s not found" main)
  | Some main -> (
      let t = { funcs; main } in
      match validate t with Ok () -> Ok t | Error m -> Error m)

let of_funcs_exn ~main funcs =
  match of_funcs ~main funcs with
  | Ok t -> t
  | Error m -> invalid_arg ("Program.of_funcs_exn: " ^ m)

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  Array.iteri
    (fun i f ->
      if i = t.main then Fmt.pf ppf "(* main *)@,";
      Fmt.pf ppf "%a@," Func.pp f)
    t.funcs;
  Fmt.pf ppf "@]"
