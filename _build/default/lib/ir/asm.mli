(** Textual assembly for IR programs. [to_string] emits a form that
    [of_string_res] parses back; the round trip preserves the program
    structure exactly (block order, labels, instructions, branch
    targets).

    Syntax sketch:
    {v
    func main {
    entry:
      li r4, 100
      add r5, r4, 3
      ld r6, 8(r5)
      bne r4, 0, then_lbl, else_lbl   ; taken target, fall-through
    then_lbl:
      jmp join
    ...
    }
    v}

    [;] starts a comment. The first function is the program's main. *)

exception Parse_error of int * string

val to_string : Program.t -> string

val of_string : string -> (Program.t, string) result
(** @raise Parse_error with a line number on malformed input. *)

val of_string_res : string -> (Program.t, string) result
(** Like [of_string] but turns [Parse_error] into [Error]. *)
