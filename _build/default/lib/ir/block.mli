(** A basic block: straight-line instructions plus one terminator.
    Terminator labels are indices into the enclosing function's block
    array. *)

type t = { label : string; body : Instr.t array; term : int Term.t }

val size : t -> int
(** Number of instructions including the terminator. *)

val successors : t -> int list
val is_conditional : t -> bool
val pp : t Fmt.t
