type t = { label : string; body : Instr.t array; term : int Term.t }

let size b = Array.length b.body + 1
let successors b = Term.successors b.term
let is_conditional b = Term.is_conditional b.term

let pp ppf b =
  Fmt.pf ppf "@[<v 2>%s:" b.label;
  Array.iter (fun i -> Fmt.pf ppf "@,%a" Instr.pp i) b.body;
  Fmt.pf ppf "@,%a@]" (Term.pp Fmt.int) b.term
