type slot = Body of Instr.t | Term of int Term.t

type loc = { addr : int; func : int; block : int; pos : int; slot : slot }

type t = {
  program : Program.t;
  locs : loc array;
  block_addr : int array array;
  func_entry : int array;
  func_index : (string, int) Hashtbl.t;
}

let link program =
  (match Program.validate program with
  | Ok () -> ()
  | Error m -> invalid_arg ("Linked.link: " ^ m));
  let nf = Program.num_funcs program in
  let func_index = Hashtbl.create nf in
  let locs = ref [] in
  let block_addr = Array.make nf [||] in
  let func_entry = Array.make nf 0 in
  let addr = ref 0 in
  for fi = 0 to nf - 1 do
    let f = Program.func program fi in
    Hashtbl.replace func_index f.Func.name fi;
    func_entry.(fi) <- !addr;
    let nb = Func.num_blocks f in
    let baddrs = Array.make nb 0 in
    for bi = 0 to nb - 1 do
      let b = Func.block f bi in
      baddrs.(bi) <- !addr;
      Array.iteri
        (fun pos ins ->
          locs := { addr = !addr; func = fi; block = bi; pos; slot = Body ins }
                  :: !locs;
          incr addr)
        b.Block.body;
      let pos = Array.length b.Block.body in
      locs :=
        { addr = !addr; func = fi; block = bi; pos; slot = Term b.Block.term }
        :: !locs;
      incr addr
    done;
    block_addr.(fi) <- baddrs
  done;
  let locs = Array.of_list (List.rev !locs) in
  Array.iteri (fun i l -> assert (l.addr = i)) locs;
  { program; locs; block_addr; func_entry; func_index }

let size t = Array.length t.locs

let loc t addr =
  if addr < 0 || addr >= Array.length t.locs then
    invalid_arg (Printf.sprintf "Linked.loc: address %d out of range" addr);
  t.locs.(addr)

let block_addr t ~func ~block = t.block_addr.(func).(block)
let func_entry t fi = t.func_entry.(fi)

let func_of_name t name =
  match Hashtbl.find_opt t.func_index name with
  | Some fi -> fi
  | None -> invalid_arg ("Linked.func_of_name: unknown function " ^ name)

let entry_addr t = t.func_entry.(t.program.Program.main)

let branch_targets t l =
  match l.slot with
  | Term (Term.Branch { target; fall; _ }) ->
      Some
        ( block_addr t ~func:l.func ~block:target,
          block_addr t ~func:l.func ~block:fall )
  | _ -> None

let jump_target t l =
  match l.slot with
  | Term (Term.Jump b) -> Some (block_addr t ~func:l.func ~block:b)
  | _ -> None

let is_conditional_branch t addr =
  match (loc t addr).slot with
  | Term (Term.Branch _) -> true
  | _ -> false

let is_return t addr =
  match (loc t addr).slot with Term Term.Ret -> true | _ -> false

let block_of_addr t addr =
  let l = loc t addr in
  (l.func, l.block)

let iter_branches t f =
  Array.iter
    (fun l -> match l.slot with Term (Term.Branch _) -> f l | _ -> ())
    t.locs

let pp_loc t ppf l =
  let fname = (Program.func t.program l.func).Func.name in
  let blabel =
    (Func.block (Program.func t.program l.func) l.block).Block.label
  in
  let pp_slot ppf = function
    | Body i -> Instr.pp ppf i
    | Term tm -> Term.pp Fmt.int ppf tm
  in
  Fmt.pf ppf "%6d  %s/%s+%d  %a" l.addr fname blabel l.pos pp_slot l.slot
