(** Architectural registers.

    The machine has [count] general-purpose integer registers. Register
    [zero] is hardwired to 0: writes to it are discarded. *)

type t

val count : int
val zero : t

val of_int : int -> t
(** [of_int i] is register [i]. @raise Invalid_argument if out of range. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

(** Software calling conventions used by the workload builder. *)

val ret_value : t
val arg : int -> t
val tmp : int -> t
