(** Linked (laid-out) program: every static instruction gets a unique
    address. Functions are laid out in order; each block contributes its
    body followed by its terminator.

    Addresses are dense integers starting at 0. Branch predictors, the
    profiler, the DMP annotation format, and the simulator all key on
    these addresses, mirroring the paper's binary-analysis toolset. *)

type slot = Body of Instr.t | Term of int Term.t

type loc = {
  addr : int;
  func : int;  (** function index *)
  block : int;  (** block index within the function *)
  pos : int;  (** position within the block; the terminator is last *)
  slot : slot;
}

type t = { program : Program.t; locs : loc array;
           block_addr : int array array; func_entry : int array;
           func_index : (string, int) Hashtbl.t }

val link : Program.t -> t
(** @raise Invalid_argument if the program does not validate. *)

val size : t -> int
val loc : t -> int -> loc
val block_addr : t -> func:int -> block:int -> int
val func_entry : t -> int -> int
val func_of_name : t -> string -> int
val entry_addr : t -> int

val branch_targets : t -> loc -> (int * int) option
(** [(taken_addr, fall_addr)] for a conditional-branch terminator. *)

val jump_target : t -> loc -> int option
val is_conditional_branch : t -> int -> bool
val is_return : t -> int -> bool
val block_of_addr : t -> int -> int * int
val iter_branches : t -> (loc -> unit) -> unit
val pp_loc : t -> loc Fmt.t
