type t = { name : string; blocks : Block.t array }

let entry = 0

let block f i =
  if i < 0 || i >= Array.length f.blocks then
    invalid_arg (Printf.sprintf "Func.block: %d out of range in %s" i f.name);
  f.blocks.(i)

let num_blocks f = Array.length f.blocks

let size f =
  Array.fold_left (fun acc b -> acc + Block.size b) 0 f.blocks

let validate f =
  if Array.length f.blocks = 0 then
    Error (Printf.sprintf "function %s has no blocks" f.name)
  else
    let n = Array.length f.blocks in
    let bad = ref None in
    Array.iteri
      (fun i b ->
        List.iter
          (fun s ->
            if s < 0 || s >= n then
              bad :=
                Some
                  (Printf.sprintf "function %s: block %d (%s) targets %d"
                     f.name i b.Block.label s))
          (Block.successors b))
      f.blocks;
    match !bad with None -> Ok () | Some msg -> Error msg

let pp ppf f =
  Fmt.pf ppf "@[<v 2>func %s {" f.name;
  Array.iteri (fun i b -> Fmt.pf ppf "@,[%d] %a" i Block.pp b) f.blocks;
  Fmt.pf ppf "@]@,}"
