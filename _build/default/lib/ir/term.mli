(** Block terminators, parameterised by the label representation.

    During construction ({!Build}) labels are strings; in a finished
    {!Func} they are block indices. *)

type cond = Eq | Ne | Lt | Ge | Le | Gt

type 'label t =
  | Branch of { cond : cond; src1 : Reg.t; src2 : Instr.operand;
                target : 'label; fall : 'label }
      (** conditional branch: taken to [target], not-taken to [fall] *)
  | Jump of 'label
  | Ret
  | Halt

val cond_to_string : cond -> string
val eval_cond : cond -> int -> int -> bool
val negate_cond : cond -> cond
val uses : 'label t -> Reg.t list
val successors : 'label t -> 'label list
val is_conditional : 'label t -> bool
val map_label : ('a -> 'b) -> 'a t -> 'b t
val pp : 'label Fmt.t -> 'label t Fmt.t
