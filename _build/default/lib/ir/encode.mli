(** Binary encoding of linked programs: one 63-bit word per instruction
    plus a symbol table. {!Recover} rebuilds a structured program from
    the flat image — together they substitute for the Alpha binaries the
    paper's binary-analysis toolset consumes (Section 6.1). *)

type image = {
  code : int array;
  symbols : (string * int * int) list;
      (** (name, entry address, static size) per function *)
}

val encode : Linked.t -> image
(** @raise Invalid_argument when an immediate exceeds the encodable
    range or a branch's not-taken successor does not directly follow it
    (the layout rule of real ISAs; {!Build}'s output always conforms). *)

type decoded =
  | D_instr of Instr.t
  | D_branch of { cond : Term.cond; src1 : Reg.t; src2 : Instr.operand;
                  taken_addr : int }
  | D_jump of int
  | D_ret
  | D_halt
  | D_call of int

val decode_word : int -> decoded
val disassemble_word : int -> string
