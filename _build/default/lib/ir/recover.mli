(** CFG recovery from an encoded binary image: rebuilds functions and
    basic blocks from leaders (branch/jump targets and control-transfer
    successors). The recovered program is semantically equivalent to the
    original — block labels are synthesised from addresses, and block
    boundaries may be finer than the source program's. *)

val program : Encode.image -> (Program.t, string) result
