type cond = Eq | Ne | Lt | Ge | Le | Gt

type 'label t =
  | Branch of { cond : cond; src1 : Reg.t; src2 : Instr.operand;
                target : 'label; fall : 'label }
  | Jump of 'label
  | Ret
  | Halt

let cond_to_string = function
  | Eq -> "beq"
  | Ne -> "bne"
  | Lt -> "blt"
  | Ge -> "bge"
  | Le -> "ble"
  | Gt -> "bgt"

let eval_cond cond a b =
  match cond with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Ge -> a >= b
  | Le -> a <= b
  | Gt -> a > b

let negate_cond = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Ge -> Lt
  | Le -> Gt
  | Gt -> Le

let uses = function
  | Branch { src1; src2; _ } -> (
      match src2 with
      | Instr.Reg r -> [ src1; r ]
      | Instr.Imm _ -> [ src1 ])
  | Jump _ | Ret | Halt -> []

let successors = function
  | Branch { target; fall; _ } -> [ target; fall ]
  | Jump l -> [ l ]
  | Ret | Halt -> []

let is_conditional = function Branch _ -> true | Jump _ | Ret | Halt -> false

let map_label f = function
  | Branch { cond; src1; src2; target; fall } ->
      Branch { cond; src1; src2; target = f target; fall = f fall }
  | Jump l -> Jump (f l)
  | Ret -> Ret
  | Halt -> Halt

let pp pp_label ppf = function
  | Branch { cond; src1; src2; target; fall } ->
      Fmt.pf ppf "%s %a, %a, %a (fall %a)" (cond_to_string cond) Reg.pp src1
        Instr.pp_operand src2 pp_label target pp_label fall
  | Jump l -> Fmt.pf ppf "jmp %a" pp_label l
  | Ret -> Fmt.pf ppf "ret"
  | Halt -> Fmt.pf ppf "halt"
