(* Binary analysis front end: rebuild a structured program (functions,
   basic blocks, CFG edges) from a flat encoded image plus its symbol
   table — the starting point of the paper's diverge-branch analysis on
   real binaries (Section 6.1).

   Block boundaries (leaders) are: each function entry, every branch or
   jump target, and every instruction following a control transfer. A
   block whose successor-by-fall-through is a leader gets an explicit
   jump, matching the layout convention of {!Build}. *)

let recover_function image ~name ~entry ~size =
  let stop = entry + size in
  let decoded =
    Array.init size (fun i -> Encode.decode_word image.Encode.code.(entry + i))
  in
  let d addr = decoded.(addr - entry) in
  let in_func a = a >= entry && a < stop in
  (* leaders *)
  let leader = Array.make size false in
  leader.(0) <- true;
  for a = entry to stop - 1 do
    match d a with
    | Encode.D_branch { taken_addr; _ } ->
        if not (in_func taken_addr) then
          invalid_arg "Recover: branch target outside function";
        leader.(taken_addr - entry) <- true;
        if a + 1 < stop then leader.(a + 1 - entry) <- true
    | Encode.D_jump target ->
        if not (in_func target) then
          invalid_arg "Recover: jump target outside function";
        leader.(target - entry) <- true;
        if a + 1 < stop then leader.(a + 1 - entry) <- true
    | Encode.D_ret | Encode.D_halt ->
        if a + 1 < stop then leader.(a + 1 - entry) <- true
    | Encode.D_instr _ | Encode.D_call _ -> ()
  done;
  (* block index per address *)
  let block_of = Array.make size 0 in
  let nblocks = ref 0 in
  for i = 0 to size - 1 do
    if leader.(i) && i > 0 then incr nblocks;
    block_of.(i) <- !nblocks
  done;
  let nblocks = !nblocks + 1 in
  let starts = Array.make nblocks 0 in
  for i = size - 1 downto 0 do
    starts.(block_of.(i)) <- i
  done;
  let callee_name target =
    match
      List.find_opt
        (fun (_, e, _) -> e = target)
        image.Encode.symbols
    with
    | Some (n, _, _) -> n
    | None -> invalid_arg "Recover: call target is not a function entry"
  in
  let block bi =
    let first = starts.(bi) in
    let next_start = if bi + 1 < nblocks then starts.(bi + 1) else size in
    (* collect body until a terminator or the next leader *)
    let body = ref [] in
    let term = ref None in
    let i = ref first in
    while !term = None && !i < next_start do
      (match d (entry + !i) with
      | Encode.D_instr ins -> body := ins :: !body
      | Encode.D_call target ->
          body := Instr.Call { callee = callee_name target } :: !body
      | Encode.D_branch { cond; src1; src2; taken_addr } ->
          let fall_addr = entry + !i + 1 in
          if not (in_func fall_addr) then
            invalid_arg "Recover: branch falls off the function";
          term :=
            Some
              (Term.Branch
                 { cond; src1; src2;
                   target = block_of.(taken_addr - entry);
                   fall = block_of.(fall_addr - entry) })
      | Encode.D_jump target ->
          term := Some (Term.Jump block_of.(target - entry))
      | Encode.D_ret -> term := Some Term.Ret
      | Encode.D_halt -> term := Some Term.Halt);
      incr i
    done;
    let term =
      match !term with
      | Some t -> t
      | None ->
          (* fell into the next leader *)
          if bi + 1 >= nblocks then
            invalid_arg "Recover: function falls off the end"
          else Term.Jump (bi + 1)
    in
    {
      Block.label = Printf.sprintf "L%d" (entry + first);
      body = Array.of_list (List.rev !body);
      term;
    }
  in
  { Func.name; blocks = Array.init nblocks block }

let program (image : Encode.image) =
  match image.Encode.symbols with
  | [] -> Error "empty symbol table"
  | (main, _, _) :: _ -> (
      try
        let funcs =
          List.map
            (fun (name, entry, size) ->
              recover_function image ~name ~entry ~size)
            image.Encode.symbols
        in
        Program.of_funcs ~main funcs
      with Invalid_argument m -> Error m)
