(** A whole program: a set of functions and a designated main. *)

type t = { funcs : Func.t array; main : int }

val func : t -> int -> Func.t
val num_funcs : t -> int
val main_func : t -> Func.t
val find_func : t -> string -> int option

val size : t -> int
(** Static instruction count over all functions. *)

val static_conditional_branches : t -> int

val validate : t -> (unit, string) result
(** Check function-name uniqueness, intra-function targets, and that
    every [Call] names a known function. *)

val of_funcs : main:string -> Func.t list -> (t, string) result
val of_funcs_exn : main:string -> Func.t list -> t
val pp : t Fmt.t
