(** A function: an array of basic blocks. Block 0 is the entry. *)

type t = { name : string; blocks : Block.t array }

val entry : int
val block : t -> int -> Block.t
val num_blocks : t -> int

val size : t -> int
(** Static instruction count (terminators included). *)

val validate : t -> (unit, string) result
(** Check that every terminator target is a valid block index. *)

val pp : t Fmt.t
