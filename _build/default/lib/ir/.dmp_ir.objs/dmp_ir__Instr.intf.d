lib/ir/instr.mli: Fmt Reg
