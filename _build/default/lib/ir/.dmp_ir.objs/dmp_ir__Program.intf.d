lib/ir/program.mli: Fmt Func
