lib/ir/block.mli: Fmt Instr Term
