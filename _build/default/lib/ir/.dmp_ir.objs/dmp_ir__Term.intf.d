lib/ir/term.mli: Fmt Instr Reg
