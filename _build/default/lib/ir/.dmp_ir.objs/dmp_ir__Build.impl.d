lib/ir/build.ml: Array Block Func Hashtbl Instr List Printf Reg Term
