lib/ir/asm.mli: Program
