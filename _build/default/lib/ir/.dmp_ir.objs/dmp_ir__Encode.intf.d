lib/ir/encode.mli: Instr Linked Reg Term
