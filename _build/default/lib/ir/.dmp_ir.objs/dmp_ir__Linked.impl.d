lib/ir/linked.ml: Array Block Fmt Func Hashtbl Instr List Printf Program Term
