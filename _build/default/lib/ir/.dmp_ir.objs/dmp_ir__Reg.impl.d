lib/ir/reg.ml: Fmt Int
