lib/ir/term.ml: Fmt Instr Reg
