lib/ir/asm.ml: Array Block Buffer Build Fmt Func Instr List Option Printf Program Reg String Term
