lib/ir/reg.mli: Fmt
