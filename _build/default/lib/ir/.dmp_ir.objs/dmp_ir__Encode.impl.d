lib/ir/encode.ml: Array Fmt Func Instr Linked Option Printf Program Reg Term
