lib/ir/recover.ml: Array Block Encode Func Instr List Printf Program Term
