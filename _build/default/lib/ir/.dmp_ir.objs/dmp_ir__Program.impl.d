lib/ir/program.ml: Array Block Fmt Func Hashtbl Instr Printf String
