lib/ir/build.mli: Func Instr Reg Term
