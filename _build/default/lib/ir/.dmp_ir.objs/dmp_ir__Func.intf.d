lib/ir/func.mli: Block Fmt
