lib/ir/block.ml: Array Fmt Instr Term
