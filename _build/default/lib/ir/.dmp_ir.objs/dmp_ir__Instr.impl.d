lib/ir/instr.ml: Fmt Reg
