lib/ir/func.ml: Array Block Fmt List Printf
