lib/ir/recover.mli: Encode Program
