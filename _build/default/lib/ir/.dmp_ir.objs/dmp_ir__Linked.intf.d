lib/ir/linked.mli: Fmt Hashtbl Instr Program Term
