type t = int

let count = 64
let zero = 0

let of_int i =
  if i < 0 || i >= count then invalid_arg "Reg.of_int: out of range";
  i

let to_int r = r
let equal = Int.equal
let compare = Int.compare
let pp ppf r = Fmt.pf ppf "r%d" r

(* Conventional roles used by the workload builder; the hardware does not
   enforce them. *)
let ret_value = 1
let arg_base = 2
let arg n =
  if n < 0 || n > 7 then invalid_arg "Reg.arg: 0..7";
  arg_base + n

let tmp_base = 10
let tmp n =
  let r = tmp_base + n in
  if n < 0 || r >= count then invalid_arg "Reg.tmp: out of range";
  r
