(** Top-level diverge-branch selection: the paper's compiler pass.

    A [config] names the selection [mode] (threshold heuristics, or the
    analytical cost-benefit model with a path-estimation method) and the
    set of enabled techniques, mirroring the cumulative experiments of
    Figure 5. *)

open Dmp_ir
open Dmp_profile

type technique =
  | Exact  (** Alg-exact: simple/nested hammocks (Section 3.2) *)
  | Freq  (** Alg-freq: frequently-hammocks (Section 3.3) *)
  | Short  (** always-predicate short hammocks (Section 3.4) *)
  | Ret  (** return CFM points (Section 3.5) *)
  | Loop  (** diverge loop branches (Section 5.2) *)

type mode = Heuristic | Cost of Cost_model.path_method

type config = { mode : mode; techniques : technique list; params : Params.t }

val all_heuristic : config
(** "All-best-heur": every technique with the paper's best thresholds. *)

val all_cost : config
(** "All-best-cost": cost-edge model plus short/ret/loop. *)

val cumulative_heuristic : technique list -> config
val gather_candidates : Context.t -> config -> Candidate.t list

val run :
  ?config:config -> ?two_d:Dmp_profile.Two_d.t -> Linked.t -> Profile.t ->
  Annotation.t
(** With [two_d], branches that 2D-profiling classifies as easy to
    predict in every program phase are excluded from selection (the
    Section 8.3 extension). *)

val dynamic_coverage : Annotation.t -> Profile.t -> int
(** Total profiled execution count of the selected diverge branches. *)
