type t = {
  (* Alg-exact / Alg-freq thresholds (Section 3). *)
  max_instr : int;
  max_cbr : int;
  min_exec_prob : float;
  min_merge_prob : float;
  max_cfm : int;
  (* Short-hammock heuristic (Section 3.4). *)
  short_max_insts : int;
  short_min_merge_prob : float;
  short_min_misp_rate : float;
  (* Loop heuristics (Section 5.2). *)
  static_loop_size : int;
  dynamic_loop_size : int;
  loop_iter : int;
  (* Cost-benefit model constants (Section 4). *)
  acc_conf : float;
  fetch_width : int;
  misp_penalty : int;
  (* Engineering bound absent from the paper: path-explosion guard. *)
  max_paths : int;
  (* Ablation knobs (both true in the paper's design). *)
  chain_reduction : bool;  (* Section 3.3.1 *)
  live_selects : bool;  (* count select-µops from live registers only *)
}

let default =
  {
    max_instr = 50;
    max_cbr = 5;
    min_exec_prob = 0.001;
    min_merge_prob = 0.01;
    max_cfm = 3;
    short_max_insts = 10;
    short_min_merge_prob = 0.95;
    short_min_misp_rate = 0.05;
    static_loop_size = 30;
    dynamic_loop_size = 80;
    loop_iter = 15;
    acc_conf = 0.40;
    fetch_width = 8;
    misp_penalty = 25;
    max_paths = 4096;
    chain_reduction = true;
    live_selects = true;
  }

let for_cost_model =
  (* Section 4, footnote 4: the cost model analyses a larger scope and
     replaces the threshold filters. *)
  { default with max_instr = 200; max_cbr = 20; min_merge_prob = 0. }

let pp ppf p =
  Fmt.pf ppf
    "{max_instr=%d; max_cbr=%d; min_exec_prob=%g; min_merge_prob=%g; \
     max_cfm=%d; acc_conf=%g; fw=%d; penalty=%d}"
    p.max_instr p.max_cbr p.min_exec_prob p.min_merge_prob p.max_cfm
    p.acc_conf p.fetch_width p.misp_penalty
