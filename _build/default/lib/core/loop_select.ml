(* Heuristic selection of diverge loop branches (Section 5.2). A loop
   exit branch is selected unless (1) the loop body exceeds
   STATIC_LOOP_SIZE instructions, (2) the expected dynamic path through
   the loop (body size x average iteration count) exceeds
   DYNAMIC_LOOP_SIZE, or (3) the average iteration count exceeds
   LOOP_ITER (high iteration counts correlate with the no-exit case). *)

open Dmp_cfg
open Dmp_profile

type loop_candidate = {
  func : int;
  block : int;
  branch_addr : int;
  body_insts : int;
  avg_iterations : float;
  exit_target : int;
  select_uops : int;
  executed : int;
  mispredicted : int;
}

let exit_direction cfg loop block =
  match Cfg.branch_successors cfg block with
  | None -> None
  | Some (target, fall) ->
      let inside b = List.exists (Int.equal b) loop.Loops.body in
      let t_out = not (inside target) and f_out = not (inside fall) in
      if t_out && not f_out then Some (`Taken, target)
      else if f_out && not t_out then Some (`Fall, fall)
      else None

let candidate_of_branch ctx ~func ~block =
  let fn = Context.fn ctx func in
  let cfg = fn.Context.cfg in
  match Loops.loop_of_branch fn.Context.loops block with
  | None -> None
  | Some loop -> (
      match exit_direction cfg loop block with
      | None -> None
      | Some (dir, exit_target) ->
          let branch_addr = Context.branch_addr ctx ~func ~block in
          let profile = ctx.Context.profile in
          (match Profile.branch profile ~addr:branch_addr with
          | None -> None
          | Some s when s.Profile.executed = 0 -> None
          | Some s ->
              let exits =
                match dir with
                | `Taken -> s.Profile.taken
                | `Fall -> s.Profile.executed - s.Profile.taken
              in
              if exits = 0 then None
              else
                let avg_iterations =
                  float_of_int s.Profile.executed /. float_of_int exits
                in
                let body_insts =
                  List.fold_left
                    (fun acc b -> acc + fn.Context.block_weight.(b))
                    0 loop.Loops.body
                in
                let body_defs =
                  List.fold_left
                    (fun acc b ->
                      List.fold_left
                        (fun acc r ->
                          if List.mem r acc then acc else r :: acc)
                        acc
                        (Context.block_defs ctx ~func ~block:b))
                    [] loop.Loops.body
                in
                let select_uops =
                  Context.select_count ctx ~func ~cfm_block:exit_target
                    body_defs
                in
                Some
                  {
                    func;
                    block;
                    branch_addr;
                    body_insts;
                    avg_iterations;
                    exit_target;
                    select_uops;
                    executed = s.Profile.executed;
                    mispredicted = s.Profile.mispredicted;
                  }))

let passes_heuristics params c =
  c.body_insts <= params.Params.static_loop_size
  && float_of_int c.body_insts *. c.avg_iterations
     <= float_of_int params.Params.dynamic_loop_size
  && c.avg_iterations <= float_of_int params.Params.loop_iter

let find ctx =
  let out = ref [] in
  for func = 0 to Context.num_fns ctx - 1 do
    let fn = Context.fn ctx func in
    for block = 0 to Cfg.num_nodes fn.Context.cfg - 1 do
      match candidate_of_branch ctx ~func ~block with
      | Some c when passes_heuristics ctx.Context.params c ->
          out := c :: !out
      | Some _ | None -> ()
    done
  done;
  List.rev !out

let to_diverge ctx c =
  {
    Annotation.branch_addr = c.branch_addr;
    kind = Annotation.Loop_branch;
    cfms = [];
    return_cfm = false;
    always_predicate = false;
    loop =
      Some
        {
          Annotation.body_insts = c.body_insts;
          exit_target_addr =
            Context.block_start_addr ctx ~func:c.func ~block:c.exit_target;
          avg_iterations = c.avg_iterations;
          loop_select_uops = c.select_uops;
        };
  }
