(** Diverge-branch candidates: the shared result type of Alg-exact and
    Alg-freq, consumed by the selection driver and the cost model. *)

module Int_set = Explore.Int_set

type cfm_candidate = {
  cfm_block : int;
  cfm_addr : int;
  exact : bool;
  merge_prob : float;
  longest_t : int;   (** longest-path instructions, taken side *)
  longest_nt : int;
  avg_t : float;     (** edge-profile expected instructions *)
  avg_nt : float;
  freq_t : int;      (** most-frequent-path instructions *)
  freq_nt : int;
  prob_t : float;    (** per-side first-arrival reach probability *)
  prob_nt : float;
  max_cbr : int;
  select_uops : int;
  blocks_on_paths : Int_set.t;
}

type ret_merge = { ret_prob : float; ret_select_uops : int; ret_longest : int }

type t = {
  func : int;
  block : int;
  branch_addr : int;
  kind : Annotation.branch_kind;
  cfms : cfm_candidate list;
  ret : ret_merge option;
  executed : int;
  mispredicted : int;
}

val misp_rate : t -> float
val zero_reach : Explore.reach

val make_cfm :
  Context.t -> func:int -> cfm_block:int -> exact:bool ->
  merge_prob:float -> reach_t:Explore.reach -> reach_nt:Explore.reach ->
  cfm_candidate
