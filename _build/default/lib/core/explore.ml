open Dmp_cfg

module Int_set = Set.Make (Int)

type reach = {
  mutable prob : float;
  mutable longest : int;
  mutable weighted_sum : float;
  mutable best_path_prob : float;
  mutable best_path_insts : int;
  mutable blocks : Int_set.t;
  mutable defs : Int_set.t;
  mutable max_cbr : int;
}

type result = {
  reaches : (int, reach) Hashtbl.t;
  ret : reach option;
  truncated : bool;
  capped : bool;
}

let fresh_reach () =
  {
    prob = 0.;
    longest = 0;
    weighted_sum = 0.;
    best_path_prob = -1.;
    best_path_insts = 0;
    blocks = Int_set.empty;
    defs = Int_set.empty;
    max_cbr = 0;
  }

let record r ~prob ~insts ~cbrs ~blocks ~defs =
  r.prob <- r.prob +. prob;
  if insts > r.longest then r.longest <- insts;
  r.weighted_sum <- r.weighted_sum +. (prob *. float_of_int insts);
  if prob > r.best_path_prob then begin
    r.best_path_prob <- prob;
    r.best_path_insts <- insts
  end;
  r.blocks <- Int_set.union r.blocks blocks;
  r.defs <- Int_set.union r.defs defs;
  if cbrs > r.max_cbr then r.max_cbr <- cbrs

let explore ctx ~func ~start ~stop_blocks ~structural =
  let fn = Context.fn ctx func in
  let cfg = fn.Context.cfg in
  let params = ctx.Context.params in
  let reaches = Hashtbl.create 32 in
  let ret = fresh_reach () in
  let ret_reached = ref false in
  let truncated = ref false in
  let capped = ref false in
  let paths = ref 0 in
  let reach_of block =
    match Hashtbl.find_opt reaches block with
    | Some r -> r
    | None ->
        let r = fresh_reach () in
        Hashtbl.replace reaches block r;
        r
  in
  (* Walk all paths from [start]. At block [x] the accumulators describe
     the path prefix strictly before [x]. *)
  let rec walk x ~prob ~insts ~cbrs ~blocks ~defs ~recorded =
    if !paths >= params.Params.max_paths then capped := true
    else begin
      let recorded =
        if Int_set.mem x recorded then recorded
        else begin
          record (reach_of x) ~prob ~insts ~cbrs ~blocks ~defs;
          Int_set.add x recorded
        end
      in
      let stop_here = Int_set.mem x stop_blocks in
      if stop_here then incr paths
      else begin
        let weight = fn.Context.block_weight.(x) in
        let cbr_here = fn.Context.block_cbr.(x) in
        let insts' = insts + weight in
        let cbrs' = cbrs + cbr_here in
        let blocks' = Int_set.add x blocks in
        let defs' =
          List.fold_left
            (fun acc r -> Int_set.add r acc)
            defs
            (Context.block_defs ctx ~func ~block:x)
        in
        match (Cfg.block cfg x).Dmp_ir.Block.term with
        | Dmp_ir.Term.Ret ->
            if insts' > params.Params.max_instr then truncated := true
            else begin
              ret_reached := true;
              record ret ~prob ~insts:insts' ~cbrs ~blocks:blocks' ~defs:defs'
            end;
            incr paths
        | Dmp_ir.Term.Halt -> incr paths
        | Dmp_ir.Term.Jump _ | Dmp_ir.Term.Branch _ ->
            if insts' > params.Params.max_instr
               || cbrs' > params.Params.max_cbr
            then begin
              truncated := true;
              incr paths
            end
            else
              let followed = ref false in
              List.iter
                (fun (s, dir) ->
                  let p =
                    if structural then 1.
                    else Context.edge_prob ctx ~func ~block:x ~dir
                  in
                  let follow =
                    structural || p >= params.Params.min_exec_prob
                  in
                  if follow then begin
                    followed := true;
                    let prob' = if structural then prob else prob *. p in
                    walk s ~prob:prob' ~insts:insts' ~cbrs:cbrs'
                      ~blocks:blocks' ~defs:defs' ~recorded
                  end)
                (Cfg.successors cfg x);
              if not !followed then incr paths
      end
    end
  in
  walk start ~prob:1. ~insts:0 ~cbrs:0 ~blocks:Int_set.empty
    ~defs:Int_set.empty ~recorded:Int_set.empty;
  {
    reaches;
    ret = (if !ret_reached then Some ret else None);
    truncated = !truncated;
    capped = !capped;
  }

let reach result block = Hashtbl.find_opt result.reaches block

let avg_insts r =
  if r.prob <= 0. then 0. else r.weighted_sum /. r.prob
