(** Algorithm 1 (Alg-exact): find simple and nested hammock diverge
    branches whose exact CFM point is the branch's immediate
    post-dominator (Section 3.2). Candidates with any path longer than
    MAX_INSTR instructions or MAX_CBR conditional branches are
    eliminated; cyclic regions overflow MAX_INSTR and are eliminated
    for free. *)

val candidate_of_branch :
  Context.t -> func:int -> block:int -> Candidate.t option

val find : Context.t -> Candidate.t list
