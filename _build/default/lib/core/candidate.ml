module Int_set = Explore.Int_set

type cfm_candidate = {
  cfm_block : int;
  cfm_addr : int;
  exact : bool;
  merge_prob : float;
  longest_t : int;
  longest_nt : int;
  avg_t : float;
  avg_nt : float;
  freq_t : int;
  freq_nt : int;
  prob_t : float;
  prob_nt : float;
  max_cbr : int;
  select_uops : int;
  blocks_on_paths : Int_set.t;
}

type ret_merge = { ret_prob : float; ret_select_uops : int; ret_longest : int }

type t = {
  func : int;
  block : int;
  branch_addr : int;
  kind : Annotation.branch_kind;
  cfms : cfm_candidate list;
  ret : ret_merge option;
  executed : int;
  mispredicted : int;
}

let misp_rate c =
  if c.executed = 0 then 0.
  else float_of_int c.mispredicted /. float_of_int c.executed

let zero_reach = Explore.
  {
    prob = 0.;
    longest = 0;
    weighted_sum = 0.;
    best_path_prob = 0.;
    best_path_insts = 0;
    blocks = Int_set.empty;
    defs = Int_set.empty;
    max_cbr = 0;
  }

let make_cfm ctx ~func ~cfm_block ~exact ~merge_prob
    ~(reach_t : Explore.reach) ~(reach_nt : Explore.reach) =
  let select_uops =
    Context.select_count ctx ~func ~cfm_block
      (Int_set.elements
         (Int_set.union reach_t.Explore.defs reach_nt.Explore.defs))
  in
  {
    cfm_block;
    cfm_addr = Context.block_start_addr ctx ~func ~block:cfm_block;
    exact;
    merge_prob;
    longest_t = reach_t.Explore.longest;
    longest_nt = reach_nt.Explore.longest;
    avg_t = Explore.avg_insts reach_t;
    avg_nt = Explore.avg_insts reach_nt;
    freq_t = reach_t.Explore.best_path_insts;
    freq_nt = reach_nt.Explore.best_path_insts;
    prob_t = reach_t.Explore.prob;
    prob_nt = reach_nt.Explore.prob;
    max_cbr = max reach_t.Explore.max_cbr reach_nt.Explore.max_cbr;
    select_uops;
    blocks_on_paths =
      Int_set.union reach_t.Explore.blocks reach_nt.Explore.blocks;
  }
