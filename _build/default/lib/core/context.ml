open Dmp_ir
open Dmp_cfg
open Dmp_profile

type fn_ctx = {
  index : int;
  cfg : Cfg.t;
  dom : Dom.t;
  postdom : Postdom.t;
  loops : Loops.t;
  live : Live.t;
  block_weight : int array;
      (* block size with Call instructions expanded to callee static size *)
  block_cbr : int array;
      (* conditional branches: own terminator plus callee static branches *)
}

type t = {
  linked : Linked.t;
  profile : Profile.t;
  params : Params.t;
  fns : fn_ctx array;
}

let call_weights program =
  let sizes = Hashtbl.create 16 in
  Array.iter
    (fun f -> Hashtbl.replace sizes f.Func.name (Func.size f))
    program.Program.funcs;
  let cbrs = Hashtbl.create 16 in
  Array.iter
    (fun f ->
      let n =
        Array.fold_left
          (fun acc b -> if Block.is_conditional b then acc + 1 else acc)
          0 f.Func.blocks
      in
      Hashtbl.replace cbrs f.Func.name n)
    program.Program.funcs;
  (sizes, cbrs)

let create ?(params = Params.default) linked profile =
  let program = linked.Linked.program in
  let callee_size, callee_cbr = call_weights program in
  let fns =
    Array.init (Program.num_funcs program) (fun index ->
        let f = Program.func program index in
        let cfg = Cfg.of_func f in
        let nb = Func.num_blocks f in
        let block_weight = Array.make nb 0 in
        let block_cbr = Array.make nb 0 in
        for bi = 0 to nb - 1 do
          let b = Func.block f bi in
          let w = ref (Block.size b) and c = ref 0 in
          Array.iter
            (fun ins ->
              match ins with
              | Instr.Call { callee } ->
                  w := !w + Hashtbl.find callee_size callee;
                  c := !c + Hashtbl.find callee_cbr callee
              | _ -> ())
            b.Block.body;
          if Block.is_conditional b then incr c;
          block_weight.(bi) <- !w;
          block_cbr.(bi) <- !c
        done;
        {
          index;
          cfg;
          dom = Dom.of_cfg cfg;
          postdom = Postdom.of_cfg cfg;
          loops = Loops.of_cfg cfg;
          live = Live.of_func f;
          block_weight;
          block_cbr;
        })
  in
  { linked; profile; params; fns }

let fn t i = t.fns.(i)
let num_fns t = Array.length t.fns

let branch_addr t ~func ~block =
  let f = Program.func t.linked.Linked.program func in
  let b = Func.block f block in
  Linked.block_addr t.linked ~func ~block + Array.length b.Block.body

(* Same computation without a full analysis context (used by passes
   that only have a linked program). *)
let branch_addr' linked ~func ~block =
  let f = Program.func linked.Linked.program func in
  let b = Func.block f block in
  Linked.block_addr linked ~func ~block + Array.length b.Block.body

let block_start_addr t ~func ~block =
  Linked.block_addr t.linked ~func ~block

let edge_prob t ~func ~block ~dir = Profile.edge_prob t.profile ~func ~block ~dir

(* Registers written by a block, with calls treated as writing their
   callee's defs (conservative union). *)
let block_defs t ~func ~block =
  let program = t.linked.Linked.program in
  let rec func_defs seen name acc =
    if List.mem name seen then acc
    else
      match Program.find_func program name with
      | None -> acc
      | Some fi ->
          let f = Program.func program fi in
          Array.fold_left
            (fun acc b -> block_defs_raw (name :: seen) b acc)
            acc f.Func.blocks
  and block_defs_raw seen b acc =
    Array.fold_left
      (fun acc ins ->
        let acc =
          List.fold_left
            (fun acc r -> Reg.to_int r :: acc)
            acc (Instr.defs ins)
        in
        match ins with
        | Instr.Call { callee } -> func_defs seen callee acc
        | _ -> acc)
      acc b.Block.body
  in
  let f = Program.func program func in
  let b = Func.block f block in
  List.sort_uniq Int.compare (block_defs_raw [] b [])

(* Select-µops needed when two predicated paths writing [defs] merge at
   the entry of [cfm_block]: one per register live there. *)
let select_count t ~func ~cfm_block defs =
  if not t.params.Params.live_selects then List.length defs
  else
    let live = (fn t func).live in
    List.length
      (List.filter
         (fun reg -> Live.is_live_in live ~block:cfm_block ~reg)
         defs)

(* For return CFM points the continuation is in the caller; registers
   below the scratch range are assumed live across the return (our
   software convention: r20+ are intra-motif scratch). *)
let ret_select_count _t defs =
  List.length (List.filter (fun reg -> reg < 20) defs)
