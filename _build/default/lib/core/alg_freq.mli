(** Algorithm 2 (Alg-freq): find frequently-hammock diverge branches
    and approximate CFM points from the edge profile (Section 3.3),
    with first-arrival merge probabilities (footnote 3) and
    chain-of-CFM-point reduction (Section 3.3.1). Also detects return
    CFM opportunities (both sides reach returns, Section 3.5).

    [apply_min_merge_prob] is true for threshold-based selection and
    false when the cost-benefit model does the filtering. *)

val candidate_of_branch :
  ?apply_min_merge_prob:bool -> Context.t -> func:int -> block:int ->
  Candidate.t option

val find : ?apply_min_merge_prob:bool -> Context.t -> Candidate.t list
