(** Analytical profile-driven cost-benefit model of dynamic predication
    (Sections 4 and 5.1; Equations 1-20). Overheads are in fetch
    cycles. *)

type path_method =
  | Most_frequent  (** method 1: most frequently executed two paths *)
  | Longest  (** method 2: longest possible path ("cost-long") *)
  | Edge_weighted  (** method 3: edge-profile average ("cost-edge") *)

val path_method_to_string : path_method -> string

val side_insts : path_method -> Candidate.cfm_candidate -> float * float
(** [(N(BH), N(CH))]: estimated instructions on the taken / not-taken
    side between the branch and the CFM point. *)

val useless_insts :
  path_method -> Candidate.cfm_candidate -> taken_prob:float -> float
(** Equations 12-13. *)

val dpred_overhead :
  Params.t -> path_method -> Candidate.cfm_candidate list ->
  taken_prob:float -> float
(** Equations 14, 16, 17: expected fetch-cycle overhead of one
    dpred-mode entry; generalises to multiple independent CFM points. *)

val dpred_cost : Params.t -> overhead:float -> float
(** Equation 1, using [Params.acc_conf] and [Params.misp_penalty]. *)

val select_hammock :
  Params.t -> path_method -> Candidate.t -> taken_prob:float -> bool
(** Equation 15: true when dynamic predication is expected to win. *)

val loop_select_overhead :
  Params.t -> n_select:int -> dpred_iter:float -> float
(** Equation 18. *)

val loop_late_exit_overhead :
  Params.t -> n_body:int -> n_select:int -> dpred_iter:float ->
  extra_iter:float -> float
(** Equation 19. *)

val loop_cost :
  Params.t -> n_body:int -> n_select:int -> dpred_iter:float ->
  extra_iter:float -> p_correct:float -> p_early:float -> p_late:float ->
  p_noexit:float -> float
(** Equation 20 (reconstructed): expected cost over the correct /
    early-exit / late-exit / no-exit cases. *)
