(** Analysis context shared by all selection algorithms: per-function
    CFG, dominators, post-dominators, natural loops, and call-expanded
    block weights, together with the edge/branch profile. *)

open Dmp_ir
open Dmp_cfg
open Dmp_profile

type fn_ctx = {
  index : int;
  cfg : Cfg.t;
  dom : Dom.t;
  postdom : Postdom.t;
  loops : Loops.t;
  live : Live.t;
  block_weight : int array;
  block_cbr : int array;
}

type t = {
  linked : Linked.t;
  profile : Profile.t;
  params : Params.t;
  fns : fn_ctx array;
}

val create : ?params:Params.t -> Linked.t -> Profile.t -> t
val fn : t -> int -> fn_ctx
val num_fns : t -> int

val branch_addr : t -> func:int -> block:int -> int
(** Address of the terminator of [block]. *)

val branch_addr' : Linked.t -> func:int -> block:int -> int
(** Same, without an analysis context. *)

val block_start_addr : t -> func:int -> block:int -> int
val edge_prob : t -> func:int -> block:int -> dir:Cfg.dir -> float

val block_defs : t -> func:int -> block:int -> int list
(** Registers written by the block (callees expanded), as register
    numbers; used to count select-µops. *)

val select_count : t -> func:int -> cfm_block:int -> int list -> int
(** Select-µops for paths writing the given registers and merging at
    [cfm_block]: only registers live at the CFM point need one. *)

val ret_select_count : t -> int list -> int
(** Select-µop count for a return CFM (continuation unknown at compile
    time): registers below the scratch range are assumed live. *)
