(** Chain-of-CFM-point reduction (Section 3.3.1): when one CFM point
    candidate lies on a path to another, dpred-mode always stops at the
    earlier one, so only one candidate per chain is kept — the one with
    the highest merging probability. *)

val on_path_to :
  x:Candidate.cfm_candidate -> y:Candidate.cfm_candidate -> bool

val reduce : Candidate.cfm_candidate list -> Candidate.cfm_candidate list
(** Result is sorted by decreasing merge probability and contains at
    most one candidate per chain. *)
