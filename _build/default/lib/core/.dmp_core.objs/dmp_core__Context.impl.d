lib/core/context.ml: Array Block Cfg Dmp_cfg Dmp_ir Dmp_profile Dom Func Hashtbl Instr Int Linked List Live Loops Params Postdom Profile Program Reg
