lib/core/alg_exact.mli: Candidate Context
