lib/core/params.ml: Fmt
