lib/core/chains.mli: Candidate
