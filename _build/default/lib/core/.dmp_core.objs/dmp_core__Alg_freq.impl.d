lib/core/alg_freq.ml: Annotation Candidate Cfg Chains Context Dmp_cfg Dmp_profile Explore Hashtbl List Params Postdom Profile
