lib/core/if_convert.ml: Array Block Context Dmp_ir Dmp_profile Func Hashtbl Instr Linked List Profile Program Reg Term
