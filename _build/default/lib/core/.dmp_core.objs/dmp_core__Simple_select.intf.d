lib/core/simple_select.mli: Annotation Dmp_ir Dmp_profile Linked Profile
