lib/core/candidate.mli: Annotation Context Explore
