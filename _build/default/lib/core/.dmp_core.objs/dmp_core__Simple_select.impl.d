lib/core/simple_select.ml: Alg_exact Annotation Candidate Cfg Context Dmp_cfg Dmp_profile Explore Params Postdom Printf Profile Random
