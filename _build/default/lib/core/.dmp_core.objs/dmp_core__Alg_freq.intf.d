lib/core/alg_freq.mli: Candidate Context
