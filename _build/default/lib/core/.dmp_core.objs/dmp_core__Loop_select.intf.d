lib/core/loop_select.mli: Annotation Context Params
