lib/core/if_convert.mli: Dmp_ir Dmp_profile Linked Profile Program
