lib/core/loop_select.ml: Annotation Array Cfg Context Dmp_cfg Dmp_profile Int List Loops Params Profile
