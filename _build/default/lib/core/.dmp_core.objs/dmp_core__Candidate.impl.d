lib/core/candidate.ml: Annotation Context Explore
