lib/core/select.mli: Annotation Candidate Context Cost_model Dmp_ir Dmp_profile Linked Params Profile
