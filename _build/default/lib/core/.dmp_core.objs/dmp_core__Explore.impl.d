lib/core/explore.ml: Array Cfg Context Dmp_cfg Dmp_ir Hashtbl Int List Params Set
