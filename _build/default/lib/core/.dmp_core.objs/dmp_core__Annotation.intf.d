lib/core/annotation.mli: Fmt
