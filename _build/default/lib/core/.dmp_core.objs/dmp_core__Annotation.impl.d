lib/core/annotation.ml: Buffer Fmt Hashtbl Int List Option Printf String
