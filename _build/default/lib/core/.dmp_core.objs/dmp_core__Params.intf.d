lib/core/params.mli: Fmt
