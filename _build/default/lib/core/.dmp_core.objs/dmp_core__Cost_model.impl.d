lib/core/cost_model.ml: Candidate Float List Params
