lib/core/alg_exact.ml: Annotation Array Block Candidate Cfg Context Dmp_cfg Dmp_ir Dmp_profile Explore Func Instr Linked List Postdom Profile Program
