lib/core/context.mli: Cfg Dmp_cfg Dmp_ir Dmp_profile Dom Linked Live Loops Params Postdom Profile
