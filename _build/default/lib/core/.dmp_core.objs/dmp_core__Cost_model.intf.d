lib/core/cost_model.mli: Candidate Params
