lib/core/chains.ml: Array Candidate Explore Hashtbl List
