lib/core/select.ml: Alg_exact Alg_freq Annotation Candidate Context Cost_model Dmp_cfg Dmp_profile Float Hashtbl Int List Loop_select Loops Params Profile
