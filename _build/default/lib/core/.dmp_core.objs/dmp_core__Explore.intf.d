lib/core/explore.mli: Context Hashtbl Set
