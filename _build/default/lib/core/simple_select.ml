(* Alternative simple diverge-branch selection algorithms the paper
   compares against (Section 7.2, Figure 8). When a branch has an
   IPOSDOM, the IPOSDOM is its CFM point (footnote 10); otherwise the
   branch has no CFM point and any benefit comes from dual-path
   execution. *)

open Dmp_cfg
open Dmp_profile

type algo =
  | Every_br
  | Random_50 of int  (** seed *)
  | High_bp of float  (** minimum profiled misprediction rate, e.g. 0.05 *)
  | Immediate
  | If_else

let algo_to_string = function
  | Every_br -> "every-br"
  | Random_50 _ -> "random-50"
  | High_bp p -> Printf.sprintf "high-BP-%g" (p *. 100.)
  | Immediate -> "immediate"
  | If_else -> "if-else"

(* Exact-hammock info for the branch, if any: used for the CFM point and
   its select-µop count. Uses the generous cost-model bounds so that big
   hammocks are still annotated (and perform accordingly). *)
let iposdom_cfm ctx ~func ~block =
  let fn = Context.fn ctx func in
  match Postdom.ipostdom fn.Context.postdom block with
  | None -> None
  | Some j -> (
      match Cfg.branch_successors fn.Context.cfg block with
      | None -> None
      | Some (target, fall) ->
          let side start =
            Explore.explore ctx ~func ~start ~stop_blocks:(Explore.Int_set.singleton j)
              ~structural:false
          in
          let rt = side target and rnt = side fall in
          let cfm_addr = Context.block_start_addr ctx ~func ~block:j in
          let select_uops =
            match (Explore.reach rt j, Explore.reach rnt j) with
            | Some a, Some b ->
                Context.select_count ctx ~func ~cfm_block:j
                  (Explore.Int_set.elements
                     (Explore.Int_set.union a.Explore.defs b.Explore.defs))
            | _, _ -> 4
          in
          Some
            { Annotation.cfm_addr; exact = true; merge_prob = 1.;
              select_uops })

let is_simple_if_else ctx ~func ~block =
  match Alg_exact.candidate_of_branch ctx ~func ~block with
  | Some c -> c.Candidate.kind = Annotation.Simple_hammock
  | None -> false

let run algo linked profile =
  let params =
    match algo with
    | If_else -> Params.default
    | Every_br | Random_50 _ | High_bp _ | Immediate -> Params.for_cost_model
  in
  let ctx = Context.create ~params linked profile in
  let ann = Annotation.empty () in
  let rng = match algo with Random_50 seed -> Random.State.make [| seed |]
    | _ -> Random.State.make [| 0 |]
  in
  for func = 0 to Context.num_fns ctx - 1 do
    let fn = Context.fn ctx func in
    for block = 0 to Cfg.num_nodes fn.Context.cfg - 1 do
      if Cfg.is_conditional fn.Context.cfg block then begin
        let branch_addr = Context.branch_addr ctx ~func ~block in
        let executed = Profile.executed profile ~addr:branch_addr in
        if executed > 0 then begin
          let chosen =
            match algo with
            | Every_br -> true
            | Random_50 _ -> Random.State.bool rng
            | High_bp threshold ->
                Profile.misp_rate profile ~addr:branch_addr >= threshold
            | Immediate ->
                Postdom.ipostdom fn.Context.postdom block <> None
            | If_else -> is_simple_if_else ctx ~func ~block
          in
          if chosen then
            let cfms =
              match iposdom_cfm ctx ~func ~block with
              | Some cfm -> [ cfm ]
              | None -> []
            in
            Annotation.add ann
              {
                Annotation.branch_addr;
                kind = Annotation.Frequently_hammock;
                cfms;
                return_cfm = false;
                always_predicate = false;
                loop = None;
              }
        end
      end
    done
  done;
  ann
