(* Chain-of-CFM-point reduction (Section 3.3.1): if a CFM point
   candidate lies on any path from the diverge branch to another CFM
   point candidate, dpred-mode would always stop at the earlier one, so
   the compiler keeps only one candidate per chain — the one with the
   highest probability of merging. *)

module Int_set = Explore.Int_set

let on_path_to ~(x : Candidate.cfm_candidate) ~(y : Candidate.cfm_candidate) =
  Int_set.mem x.Candidate.cfm_block y.Candidate.blocks_on_paths

let reduce (cfms : Candidate.cfm_candidate list) =
  let arr = Array.of_list cfms in
  let n = Array.length arr in
  (* Union-find over chain membership. *)
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && on_path_to ~x:arr.(i) ~y:arr.(j) then union i j
    done
  done;
  let best = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let root = find i in
    match Hashtbl.find_opt best root with
    | Some j when arr.(j).Candidate.merge_prob >= arr.(i).Candidate.merge_prob
      ->
        ()
    | Some _ | None -> Hashtbl.replace best root i
  done;
  Hashtbl.fold (fun _ i acc -> arr.(i) :: acc) best []
  |> List.sort (fun a b ->
         compare b.Candidate.merge_prob a.Candidate.merge_prob)
