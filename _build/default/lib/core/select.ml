(* Top-level diverge-branch selection driver. Combines Alg-exact,
   Alg-freq, the short-hammock and return-CFM optimisations, the loop
   heuristics, and (optionally) the analytical cost-benefit model into a
   DMP binary annotation. *)

open Dmp_cfg
open Dmp_profile

type technique = Exact | Freq | Short | Ret | Loop

type mode = Heuristic | Cost of Cost_model.path_method

type config = { mode : mode; techniques : technique list; params : Params.t }

let has tech config = List.exists (( = ) tech) config.techniques

let all_heuristic =
  { mode = Heuristic; techniques = [ Exact; Freq; Short; Ret; Loop ];
    params = Params.default }

let all_cost =
  { mode = Cost Cost_model.Edge_weighted;
    techniques = [ Exact; Freq; Short; Ret; Loop ];
    params = Params.for_cost_model }

let cumulative_heuristic techniques =
  { all_heuristic with techniques }

(* A loop exit branch is handled by the loop technique only; hammock
   dynamic predication of a loop branch would predicate further
   iterations, which DMP treats with the dedicated loop mechanism. *)
let is_loop_exit_branch ctx ~func ~block =
  let fn = Context.fn ctx func in
  Loops.loop_of_branch fn.Context.loops block <> None

let short_cfms params (c : Candidate.t) =
  List.filter
    (fun (cfm : Candidate.cfm_candidate) ->
      cfm.Candidate.longest_t < params.Params.short_max_insts
      && cfm.Candidate.longest_nt < params.Params.short_max_insts
      && cfm.Candidate.merge_prob >= params.Params.short_min_merge_prob)
    c.Candidate.cfms

let is_short_hammock params (c : Candidate.t) =
  Candidate.misp_rate c >= params.Params.short_min_misp_rate
  && short_cfms params c <> []

let cfm_to_annotation (cfm : Candidate.cfm_candidate) =
  {
    Annotation.cfm_addr = cfm.Candidate.cfm_addr;
    exact = cfm.Candidate.exact;
    merge_prob = cfm.Candidate.merge_prob;
    select_uops = cfm.Candidate.select_uops;
  }

let diverge_of_candidate ~always_predicate ~return_cfm ~cfms
    (c : Candidate.t) =
  {
    Annotation.branch_addr = c.Candidate.branch_addr;
    kind = c.Candidate.kind;
    cfms = List.map cfm_to_annotation cfms;
    return_cfm;
    always_predicate;
    loop = None;
  }

let gather_candidates ctx config =
  (* Exact candidates take precedence over frequently-hammock
     candidates for the same branch. *)
  let table = Hashtbl.create 128 in
  let add (c : Candidate.t) =
    match Hashtbl.find_opt table c.Candidate.branch_addr with
    | Some (prev : Candidate.t)
      when prev.Candidate.kind <> Annotation.Frequently_hammock ->
        ()
    | Some _ | None -> Hashtbl.replace table c.Candidate.branch_addr c
  in
  let keep (c : Candidate.t) =
    not (is_loop_exit_branch ctx ~func:c.Candidate.func ~block:c.Candidate.block)
  in
  let exact_on = has Exact config in
  let freq_on = has Freq config in
  if exact_on then List.iter add (List.filter keep (Alg_exact.find ctx));
  if freq_on then begin
    let apply_min_merge_prob =
      match config.mode with Heuristic -> true | Cost _ -> false
    in
    List.iter add
      (List.filter keep (Alg_freq.find ~apply_min_merge_prob ctx))
  end;
  Hashtbl.fold (fun _ c acc -> c :: acc) table []
  |> List.sort (fun a b ->
         Int.compare a.Candidate.branch_addr b.Candidate.branch_addr)

let run ?(config = all_heuristic) ?two_d linked profile =
  let params = config.params in
  let ctx = Context.create ~params linked profile in
  let ann = Annotation.empty () in
  let candidates = gather_candidates ctx config in
  (* Section 8.3 extension: with a 2D-profile, branches that are easy
     to predict in every program phase are excluded up front, shrinking
     the static annotation without performance risk. *)
  let candidates =
    match two_d with
    | None -> candidates
    | Some td ->
        List.filter
          (fun (c : Candidate.t) ->
            not
              (Dmp_profile.Two_d.is_always_easy td c.Candidate.branch_addr))
          candidates
  in
  let taken_prob (c : Candidate.t) =
    Profile.taken_prob profile ~addr:c.Candidate.branch_addr
  in
  List.iter
    (fun (c : Candidate.t) ->
      let short = has Short config && is_short_hammock params c in
      if short then
        (* Short hammocks are always predicated; other CFM candidates of
           the branch are dropped (Section 3.4). *)
        Annotation.replace ann
          (diverge_of_candidate ~always_predicate:true ~return_cfm:false
             ~cfms:(short_cfms params c) c)
      else begin
        let selected =
          match config.mode with
          | Heuristic -> c.Candidate.cfms <> []
          | Cost method_ ->
              Cost_model.select_hammock params method_ c
                ~taken_prob:(taken_prob c)
        in
        if selected && c.Candidate.cfms <> [] then
          let cfms =
            (* Keep at most MAX_CFM points: the ISA has that many CFM
               registers. *)
            List.filteri (fun i _ -> i < params.Params.max_cfm)
              (List.sort
                 (fun (a : Candidate.cfm_candidate) b ->
                   compare b.Candidate.merge_prob a.Candidate.merge_prob)
                 c.Candidate.cfms)
          in
          Annotation.replace ann
            (diverge_of_candidate ~always_predicate:false ~return_cfm:false
               ~cfms c)
        else if has Ret config then
          match c.Candidate.ret with
          | Some r when r.Candidate.ret_prob >= Float.max 0.01
                          params.Params.min_merge_prob ->
              Annotation.replace ann
                {
                  Annotation.branch_addr = c.Candidate.branch_addr;
                  kind = c.Candidate.kind;
                  cfms =
                    [
                      (* A pseudo-CFM record ([cfm_addr = -1]) carries
                         the merge probability and select-µop count of
                         the return CFM. *)
                      {
                        Annotation.cfm_addr = -1;
                        exact = false;
                        merge_prob = r.Candidate.ret_prob;
                        select_uops = r.Candidate.ret_select_uops;
                      };
                    ];
                  return_cfm = true;
                  always_predicate = false;
                  loop = None;
                }
          | Some _ | None -> ()
      end)
    candidates;
  if has Loop config then
    List.iter
      (fun lc ->
        let d = Loop_select.to_diverge ctx lc in
        if not (Annotation.is_diverge ann d.Annotation.branch_addr) then
          Annotation.add ann d)
      (Loop_select.find ctx);
  ann

(* Diverge branches of [ann] weighted by their dynamic execution counts
   in [profile]; used by the input-set overlap experiment (Fig. 10). *)
let dynamic_coverage ann profile =
  Annotation.fold
    (fun d acc -> acc + Profile.executed profile ~addr:d.Annotation.branch_addr)
    ann 0
