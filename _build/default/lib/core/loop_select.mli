(** Heuristic selection of diverge loop branches (Section 5.2): a loop
    exit branch is rejected when the body exceeds STATIC_LOOP_SIZE,
    when body-size x average-iterations exceeds DYNAMIC_LOOP_SIZE, or
    when the profiled average iteration count exceeds LOOP_ITER. *)

type loop_candidate = {
  func : int;
  block : int;
  branch_addr : int;
  body_insts : int;
  avg_iterations : float;
  exit_target : int;
  select_uops : int;
  executed : int;
  mispredicted : int;
}

val candidate_of_branch :
  Context.t -> func:int -> block:int -> loop_candidate option

val passes_heuristics : Params.t -> loop_candidate -> bool

val find : Context.t -> loop_candidate list
(** Candidates that pass the heuristics. *)

val to_diverge : Context.t -> loop_candidate -> Annotation.diverge
