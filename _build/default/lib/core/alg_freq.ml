(* Algorithm 2 (Alg-freq): find frequently-hammock diverge branches and
   their approximate CFM points. Paths after both directions of the
   branch are explored following only directions with profiled
   probability >= MIN_EXEC_PROB, up to the IPOSDOM, MAX_INSTR
   instructions or MAX_CBR conditional branches.

   Two phases: the first discovers every block reached on both sides
   (CFM point candidates); the second re-explores with *all* candidates
   as stop points so that each candidate's reach probability is the
   probability of arriving there first — the "first time merging"
   probability of footnote 3. Chain reduction (Section 3.3.1) then keeps
   one candidate per chain and the best MAX_CFM survive. *)

open Dmp_cfg
open Dmp_profile

module Int_set = Explore.Int_set

let common_blocks ~(rt : Explore.result) ~(rnt : Explore.result) ~exclude =
  Hashtbl.fold
    (fun x (reach_t : Explore.reach) acc ->
      if x = exclude || reach_t.Explore.prob <= 0. then acc
      else
        match Explore.reach rnt x with
        | Some reach_nt when reach_nt.Explore.prob > 0. -> Int_set.add x acc
        | Some _ | None -> acc)
    rt.Explore.reaches Int_set.empty

let candidate_of_branch ?(apply_min_merge_prob = true) ctx ~func ~block =
  let fn = Context.fn ctx func in
  let cfg = fn.Context.cfg in
  match Cfg.branch_successors cfg block with
  | None -> None
  | Some (target, fall) ->
      let branch_addr = Context.branch_addr ctx ~func ~block in
      let executed = Profile.executed ctx.Context.profile ~addr:branch_addr in
      if executed = 0 then None
      else
        let iposdom = Postdom.ipostdom fn.Context.postdom block in
        let stop0 =
          match iposdom with
          | Some j -> Int_set.singleton j
          | None -> Int_set.empty
        in
        let explore start stops =
          Explore.explore ctx ~func ~start ~stop_blocks:stops
            ~structural:false
        in
        (* Phase 1: discover CFM point candidates. *)
        let rt0 = explore target stop0 and rnt0 = explore fall stop0 in
        let candidates = common_blocks ~rt:rt0 ~rnt:rnt0 ~exclude:block in
        (* Phase 2: first-arrival statistics. *)
        let stops = Int_set.union candidates stop0 in
        let rt = explore target stops and rnt = explore fall stops in
        let params = ctx.Context.params in
        let cfms =
          Int_set.fold
            (fun x acc ->
              match (Explore.reach rt x, Explore.reach rnt x) with
              | Some reach_t, Some reach_nt ->
                  let merge_prob =
                    reach_t.Explore.prob *. reach_nt.Explore.prob
                  in
                  let ok =
                    merge_prob > 0.
                    && ((not apply_min_merge_prob)
                        || merge_prob >= params.Params.min_merge_prob)
                  in
                  if ok then
                    Candidate.make_cfm ctx ~func ~cfm_block:x
                      ~exact:(iposdom = Some x) ~merge_prob ~reach_t ~reach_nt
                    :: acc
                  else acc
              | _, _ -> acc)
            stops []
        in
        let cfms =
          if params.Params.chain_reduction then Chains.reduce cfms else cfms
        in
        let cfms = List.filteri (fun i _ -> i < params.Params.max_cfm) cfms in
        let ret =
          match (rt.Explore.ret, rnt.Explore.ret) with
          | Some a, Some b ->
              let ret_prob = a.Explore.prob *. b.Explore.prob in
              if ret_prob > 0. then
                Some
                  {
                    Candidate.ret_prob;
                    ret_select_uops =
                      Context.ret_select_count ctx
                        (Int_set.elements
                           (Int_set.union a.Explore.defs b.Explore.defs));
                    ret_longest = max a.Explore.longest b.Explore.longest;
                  }
              else None
          | _, _ -> None
        in
        if cfms = [] && ret = None then None
        else
          Some
            {
              Candidate.func;
              block;
              branch_addr;
              kind = Annotation.Frequently_hammock;
              cfms;
              ret;
              executed;
              mispredicted =
                Profile.mispredictions ctx.Context.profile ~addr:branch_addr;
            }

let find ?apply_min_merge_prob ctx =
  let out = ref [] in
  for func = 0 to Context.num_fns ctx - 1 do
    let fn = Context.fn ctx func in
    for block = 0 to Cfg.num_nodes fn.Context.cfg - 1 do
      match candidate_of_branch ?apply_min_merge_prob ctx ~func ~block with
      | Some c -> out := c :: !out
      | None -> ()
    done
  done;
  List.rev !out
