(** The alternative simple diverge-branch selection algorithms of
    Section 7.2 / Figure 8. When a branch has an immediate
    post-dominator it becomes the CFM point (footnote 10); otherwise
    the branch is marked without a CFM and any benefit comes from
    dual-path execution. *)

open Dmp_ir
open Dmp_profile

type algo =
  | Every_br
  | Random_50 of int  (** seed *)
  | High_bp of float  (** minimum profiled misprediction rate *)
  | Immediate
  | If_else

val algo_to_string : algo -> string
val run : algo -> Linked.t -> Profile.t -> Annotation.t
