(** Compiler thresholds and model constants. Defaults are the paper's
    empirically best values (Section 7.1.1): MAX_INSTR = 50,
    MAX_CBR = MAX_INSTR/10, MIN_EXEC_PROB = 0.001, MIN_MERGE_PROB = 1%,
    MAX_CFM = 3; short hammocks: < 10 insts/side, merge ≥ 95%,
    misprediction ≥ 5%; loops: STATIC_LOOP_SIZE = 30,
    DYNAMIC_LOOP_SIZE = 80, LOOP_ITER = 15; cost model: Acc_Conf = 40%,
    fetch width 8, misprediction penalty 25 cycles. *)

type t = {
  max_instr : int;
  max_cbr : int;
  min_exec_prob : float;
  min_merge_prob : float;
  max_cfm : int;
  short_max_insts : int;
  short_min_merge_prob : float;
  short_min_misp_rate : float;
  static_loop_size : int;
  dynamic_loop_size : int;
  loop_iter : int;
  acc_conf : float;
  fetch_width : int;
  misp_penalty : int;
  max_paths : int;
  chain_reduction : bool;
  live_selects : bool;
}

val default : t

val for_cost_model : t
(** Footnote 4: the cost model analyses a larger scope
    (MAX_INSTR = 200, MAX_CBR = 20) and drops the merge-probability
    filter. *)

val pp : t Fmt.t
