(** Static if-conversion: the software-predication baseline the paper's
    introduction contrasts with dynamic predication. Profile-selected
    simple hammocks whose arms are pure straight-line computation are
    rewritten into branchless code (both arms execute into fresh
    temporaries, arithmetic selects reconcile). Semantics are preserved
    exactly; arms containing loads, stores, calls or I/O are rejected —
    which is precisely the structural limitation DMP removes. *)

open Dmp_ir
open Dmp_profile

type stats = { converted : int; rejected_shape : int; rejected_profile : int }

val run :
  ?min_misp:float -> ?max_arm:int -> Linked.t -> Profile.t ->
  Program.t * stats
(** [run linked profile] returns the transformed program and conversion
    statistics. [min_misp] (default 0.05, after Chang et al.) and
    [max_arm] (default 16 instructions) gate the profile-driven
    selection. *)
