(* Algorithm 1 (Alg-exact): find simple and nested hammock diverge
   branches whose exact CFM point is the IPOSDOM of the branch. A
   candidate is eliminated when any path from the branch to the IPOSDOM
   exceeds MAX_INSTR instructions or MAX_CBR conditional branches (a
   cyclic region makes the structural walk overflow MAX_INSTR, so loops
   are eliminated for free). *)

open Dmp_ir
open Dmp_cfg
open Dmp_profile

module Int_set = Explore.Int_set

let region_has_call ctx ~func blocks =
  let program = ctx.Context.linked.Linked.program in
  let f = Program.func program func in
  Int_set.exists
    (fun bi ->
      Array.exists Instr.is_call (Func.block f bi).Block.body)
    blocks

(* Classify an exact hammock region: simple when there is no control
   flow at all inside (no conditional branch, no call); nested
   otherwise. *)
let classify ctx ~func ~(cfm : Candidate.cfm_candidate) =
  if cfm.Candidate.max_cbr = 0
     && not (region_has_call ctx ~func cfm.Candidate.blocks_on_paths)
  then Annotation.Simple_hammock
  else Annotation.Nested_hammock

let candidate_of_branch ctx ~func ~block =
  let fn = Context.fn ctx func in
  let cfg = fn.Context.cfg in
  match Cfg.branch_successors cfg block with
  | None -> None
  | Some (target, fall) -> (
      match Postdom.ipostdom fn.Context.postdom block with
      | None -> None
      | Some j ->
          let branch_addr = Context.branch_addr ctx ~func ~block in
          let executed = Profile.executed ctx.Context.profile ~addr:branch_addr in
          if executed = 0 then None
          else
            let side start =
              Explore.explore ctx ~func ~start ~stop_blocks:(Explore.Int_set.singleton j)
                ~structural:true
            in
            let rt = side target and rnt = side fall in
            if rt.Explore.truncated || rnt.Explore.truncated
               || rt.Explore.capped || rnt.Explore.capped
            then None
            else
              match (Explore.reach rt j, Explore.reach rnt j) with
              | Some reach_t, Some reach_nt ->
                  let cfm =
                    Candidate.make_cfm ctx ~func ~cfm_block:j ~exact:true
                      ~merge_prob:1. ~reach_t ~reach_nt
                  in
                  (* Refine the profile-sensitive fields (expected and
                     most-frequent path lengths) with a profile-mode
                     walk; structural probabilities are meaningless. *)
                  let pt =
                    Explore.explore ctx ~func ~start:target
                      ~stop_blocks:(Explore.Int_set.singleton j) ~structural:false
                  in
                  let pnt =
                    Explore.explore ctx ~func ~start:fall ~stop_blocks:(Explore.Int_set.singleton j)
                      ~structural:false
                  in
                  let cfm =
                    match (Explore.reach pt j, Explore.reach pnt j) with
                    | Some preach_t, Some preach_nt ->
                        { cfm with
                          Candidate.avg_t = Explore.avg_insts preach_t;
                          avg_nt = Explore.avg_insts preach_nt;
                          freq_t = preach_t.Explore.best_path_insts;
                          freq_nt = preach_nt.Explore.best_path_insts;
                        }
                    | _, _ -> cfm
                  in
                  let kind = classify ctx ~func ~cfm in
                  Some
                    {
                      Candidate.func;
                      block;
                      branch_addr;
                      kind;
                      cfms = [ cfm ];
                      ret = None;
                      executed;
                      mispredicted =
                        Profile.mispredictions ctx.Context.profile
                          ~addr:branch_addr;
                    }
              | _, _ -> None)

let find ctx =
  let out = ref [] in
  for func = 0 to Context.num_fns ctx - 1 do
    let fn = Context.fn ctx func in
    for block = 0 to Cfg.num_nodes fn.Context.cfg - 1 do
      match candidate_of_branch ctx ~func ~block with
      | Some c -> out := c :: !out
      | None -> ()
    done
  done;
  List.rev !out
