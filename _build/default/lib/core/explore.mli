(** Working-list path exploration after one side of a branch
    (Algorithms 1 and 2 of the paper share this engine).

    Paths start at a successor block of the diverge-branch candidate and
    stop at the branch's IPOSDOM, at a return, or when they exceed
    [max_instr] / [max_cbr]. In profile mode ([structural = false]) only
    directions with profiled probability at least [min_exec_prob] are
    followed and every visited block accumulates its reach probability;
    in structural mode every direction is followed and probabilities are
    meaningless (Alg-exact only needs path lengths). *)

module Int_set : Set.S with type elt = int

type reach = {
  mutable prob : float;  (** probability this side reaches the block *)
  mutable longest : int;  (** max instructions on any path before it *)
  mutable weighted_sum : float;  (** Σ prob(path) · insts(path) *)
  mutable best_path_prob : float;
  mutable best_path_insts : int;  (** insts on the most frequent path *)
  mutable blocks : Int_set.t;  (** blocks on paths before it *)
  mutable defs : Int_set.t;  (** registers written before it *)
  mutable max_cbr : int;
}

type result = {
  reaches : (int, reach) Hashtbl.t;
  ret : reach option;  (** aggregate over paths ending at a return *)
  truncated : bool;  (** a path exceeded [max_instr]/[max_cbr] *)
  capped : bool;  (** the [max_paths] engineering bound was hit *)
}

val explore :
  Context.t -> func:int -> start:int -> stop_blocks:Int_set.t ->
  structural:bool -> result
(** Paths stop (and record) at any block of [stop_blocks]. Alg-exact
    passes the singleton IPOSDOM; Alg-freq first discovers candidates
    stopping at the IPOSDOM, then re-explores stopping at every
    candidate so that reach probabilities are first-arrival ("first
    time merging", footnote 3 of the paper). *)

val reach : result -> int -> reach option

val avg_insts : reach -> float
(** Edge-profile expected instructions before the block, conditional on
    reaching it (the paper's method 3). *)
