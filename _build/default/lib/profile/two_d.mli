(** 2D-profiling: detect input-dependent branches from a single
    profiling run by measuring how each branch's misprediction rate
    varies across time slices (program phases). Section 8.3 of the
    paper proposes this as an improvement to diverge-branch selection:
    branches that are easy to predict in every phase need not be marked
    at all. *)

open Dmp_ir
open Dmp_predictor

type slice = { executed : int; mispredicted : int }

type branch_phases = {
  addr : int;
  slices : slice array;
  total_executed : int;
  total_mispredicted : int;
}

type t

val collect :
  ?predictor:Predictor.t -> ?num_slices:int -> ?max_insts:int -> Linked.t ->
  input:int array -> t
(** Runs the emulator twice: once to size the slices, once to fill
    them. *)

val branch : t -> int -> branch_phases option
val misp_rate : branch_phases -> float
val phase_rates : branch_phases -> float list

val phase_std_dev : branch_phases -> float
(** The 2D-profiling metric: standard deviation of the per-phase
    misprediction rate. High values indicate phase- (and likely input-)
    dependent behaviour. *)

val is_input_dependent : ?threshold:float -> t -> int -> bool
val is_always_easy : ?rate:float -> t -> int -> bool
val fold : (branch_phases -> 'a -> 'a) -> t -> 'a -> 'a
