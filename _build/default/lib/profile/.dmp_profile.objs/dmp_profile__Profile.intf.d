lib/profile/profile.mli: Dmp_cfg Dmp_ir Dmp_predictor Linked Predictor
