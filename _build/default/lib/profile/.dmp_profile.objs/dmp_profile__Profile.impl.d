lib/profile/profile.ml: Array Block Dmp_cfg Dmp_exec Dmp_ir Dmp_predictor Emulator Event Func Hashtbl Int Linked List Predictor Program Term
