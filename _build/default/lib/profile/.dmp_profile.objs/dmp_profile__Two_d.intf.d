lib/profile/two_d.mli: Dmp_ir Dmp_predictor Linked Predictor
