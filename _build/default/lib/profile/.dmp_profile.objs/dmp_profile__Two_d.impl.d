lib/profile/two_d.ml: Array Dmp_exec Dmp_predictor Emulator Event Hashtbl List Predictor
