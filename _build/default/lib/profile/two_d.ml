(* 2D-profiling (Kim, Suleman, Mutlu & Patt [14]; discussed in Section
   8.3 of the CGO paper as a way to improve diverge-branch selection):
   detect input-dependent branches from a *single* profiling run by
   watching how each branch's misprediction rate moves across time
   slices (program phases). A branch whose per-phase misprediction rate
   varies a lot is likely input-dependent; a branch that is easy to
   predict in every phase will likely stay easy under other inputs and
   need not be marked as a diverge branch at all (reducing static
   annotation size and confidence-estimator pressure). *)


open Dmp_exec
open Dmp_predictor

type slice = { executed : int; mispredicted : int }

type branch_phases = {
  addr : int;
  slices : slice array;
  total_executed : int;
  total_mispredicted : int;
}

type t = { num_slices : int; branches : (int, branch_phases) Hashtbl.t }

let collect ?(predictor = Predictor.perceptron ()) ?(num_slices = 16)
    ?(max_insts = max_int) linked ~input =
  (* First pass bound: we need the trace length to size slices. *)
  let total =
    let emu = Emulator.create linked ~input in
    Emulator.run ~max_insts emu
  in
  let slice_len = max 1 (total / num_slices) in
  let raw : (int, int array * int array) Hashtbl.t = Hashtbl.create 64 in
  let emu = Emulator.create linked ~input in
  Emulator.iter ~max_insts emu (fun e ->
      match e.Event.kind with
      | Event.Branch { taken; _ } ->
          let slice = min (num_slices - 1) (Emulator.retired emu / slice_len) in
          let ex, mi =
            match Hashtbl.find_opt raw e.Event.addr with
            | Some p -> p
            | None ->
                let p = (Array.make num_slices 0, Array.make num_slices 0) in
                Hashtbl.replace raw e.Event.addr p;
                p
          in
          ex.(slice) <- ex.(slice) + 1;
          let predicted = predictor.Predictor.predict ~addr:e.Event.addr in
          if predicted <> taken then mi.(slice) <- mi.(slice) + 1;
          predictor.Predictor.update ~addr:e.Event.addr ~taken
      | Event.Mem _ | Event.Call _ | Event.Return _ | Event.Plain -> ());
  let branches = Hashtbl.create 64 in
  Hashtbl.iter
    (fun addr (ex, mi) ->
      let slices =
        Array.init num_slices (fun i ->
            { executed = ex.(i); mispredicted = mi.(i) })
      in
      Hashtbl.replace branches addr
        {
          addr;
          slices;
          total_executed = Array.fold_left ( + ) 0 ex;
          total_mispredicted = Array.fold_left ( + ) 0 mi;
        })
    raw;
  { num_slices; branches }

let branch t addr = Hashtbl.find_opt t.branches addr

let misp_rate b =
  if b.total_executed = 0 then 0.
  else float_of_int b.total_mispredicted /. float_of_int b.total_executed

(* Per-phase misprediction rates over slices where the branch actually
   executed. *)
let phase_rates b =
  Array.to_list b.slices
  |> List.filter_map (fun s ->
         if s.executed = 0 then None
         else Some (float_of_int s.mispredicted /. float_of_int s.executed))

(* The 2D-profiling metric: standard deviation of the per-phase
   misprediction rate. *)
let phase_std_dev b =
  match phase_rates b with
  | [] | [ _ ] -> 0.
  | rates ->
      let n = float_of_int (List.length rates) in
      let mean = List.fold_left ( +. ) 0. rates /. n in
      let var =
        List.fold_left (fun a r -> a +. ((r -. mean) ** 2.)) 0. rates /. n
      in
      sqrt var

let is_input_dependent ?(threshold = 0.08) t addr =
  match branch t addr with
  | Some b -> phase_std_dev b > threshold
  | None -> false

(* "Always easy to predict": low misprediction rate in *every* phase.
   Such branches can be excluded from diverge-branch selection without
   performance risk (Section 8.3). *)
let is_always_easy ?(rate = 0.02) t addr =
  match branch t addr with
  | Some b -> List.for_all (fun r -> r <= rate) (phase_rates b)
  | None -> false

let fold f t acc = Hashtbl.fold (fun _ b acc -> f b acc) t.branches acc
