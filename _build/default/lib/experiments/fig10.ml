(* Figure 10: overlap of the diverge branches selected when profiling
   with the run-time (reduced) input set versus the train input set,
   weighted by each branch's dynamic execution count in the actual run.
   Classes: only-run, only-train, either-run-train. *)

open Dmp_core
open Dmp_profile
open Dmp_workload

type row = {
  name : string;
  pct_only_run : float;
  pct_only_train : float;
  pct_either : float;
}

let run runner =
  List.map
    (fun name ->
      let linked = Runner.linked runner name in
      let p_run = Runner.profile runner name Input_gen.Reduced in
      let p_train = Runner.profile runner name Input_gen.Train in
      let a_run = Variants.annotate Variants.all_best_heur linked p_run in
      let a_train = Variants.annotate Variants.all_best_heur linked p_train in
      let weight addr = Profile.executed p_run ~addr in
      let addrs =
        List.sort_uniq Int.compare
          (Annotation.diverge_addrs a_run @ Annotation.diverge_addrs a_train)
      in
      let only_run, only_train, either =
        List.fold_left
          (fun (r, t, e) addr ->
            let w = weight addr in
            match
              (Annotation.is_diverge a_run addr,
               Annotation.is_diverge a_train addr)
            with
            | true, true -> (r, t, e + w)
            | true, false -> (r + w, t, e)
            | false, true -> (r, t + w, e)
            | false, false -> (r, t, e))
          (0, 0, 0) addrs
      in
      let total = only_run + only_train + either in
      let pct x =
        if total = 0 then 0. else 100. *. float_of_int x /. float_of_int total
      in
      {
        name;
        pct_only_run = pct only_run;
        pct_only_train = pct only_train;
        pct_either = pct either;
      })
    (Runner.names runner)

let render rows =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "== Figure 10: diverge-branch overlap across profiling input sets ==\n";
  add "(%% of dynamic diverge-branch executions in the run input)\n";
  add "%-10s %10s %11s %13s\n" "bench" "only-run" "only-train"
    "either";
  List.iter
    (fun r ->
      add "%-10s %10.1f %11.1f %13.1f\n" r.name r.pct_only_run
        r.pct_only_train r.pct_either)
    rows;
  Buffer.contents buf
