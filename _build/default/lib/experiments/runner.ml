(* Shared experiment pipeline with caching of the expensive stages
   (linking, profiling, baseline simulation) across figures. *)

open Dmp_ir
open Dmp_profile
open Dmp_uarch
open Dmp_workload

type entry = {
  spec : Spec.t;
  linked : Linked.t Lazy.t;
  profiles : (Input_gen.set, Profile.t) Hashtbl.t;
  baselines : (Input_gen.set, Stats.t) Hashtbl.t;
}

type t = {
  entries : (string, entry) Hashtbl.t;
  order : string list;
  max_insts : int option;
}

let create ?(benchmarks = Registry.all) ?max_insts () =
  let entries = Hashtbl.create 32 in
  List.iter
    (fun spec ->
      Hashtbl.replace entries spec.Spec.name
        {
          spec;
          linked = lazy (Spec.linked spec);
          profiles = Hashtbl.create 4;
          baselines = Hashtbl.create 4;
        })
    benchmarks;
  { entries; order = List.map (fun s -> s.Spec.name) benchmarks; max_insts }

let names t = t.order

let entry t name =
  match Hashtbl.find_opt t.entries name with
  | Some e -> e
  | None -> invalid_arg ("Runner: unknown benchmark " ^ name)

let linked t name = Lazy.force (entry t name).linked
let input t name set = (entry t name).spec.Spec.input set

let profile t name set =
  let e = entry t name in
  match Hashtbl.find_opt e.profiles set with
  | Some p -> p
  | None ->
      let p =
        Profile.collect ?max_insts:t.max_insts (Lazy.force e.linked)
          ~input:(e.spec.Spec.input set)
      in
      Hashtbl.replace e.profiles set p;
      p

let baseline ?(set = Input_gen.Reduced) t name =
  let e = entry t name in
  match Hashtbl.find_opt e.baselines set with
  | Some s -> s
  | None ->
      let s =
        Sim.run ~config:Config.baseline ?max_insts:t.max_insts
          (Lazy.force e.linked) ~input:(e.spec.Spec.input set)
      in
      Hashtbl.replace e.baselines set s;
      s

let dmp ?(set = Input_gen.Reduced) ?(config = Config.dmp) t name annotation =
  Sim.run ~config ~annotation ?max_insts:t.max_insts (linked t name)
    ~input:(input t name set)

let speedup_pct ~base stats =
  (Stats.ipc stats /. Stats.ipc base -. 1.) *. 100.

let amean xs =
  match xs with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
