(* Figure 6: pipeline flushes (per kilo-instruction) in the baseline and
   in DMP with the cumulative selection algorithms. *)

open Dmp_uarch

let run runner =
  let base_series =
    {
      Report.label = "baseline";
      values =
        List.map
          (fun name ->
            (name, Stats.flushes_per_ki (Runner.baseline runner name)))
          (Runner.names runner);
    }
  in
  let dmp_series =
    List.map
      (fun (label, variant) ->
        let values =
          List.map
            (fun name ->
              let linked = Runner.linked runner name in
              let profile =
                Runner.profile runner name Dmp_workload.Input_gen.Reduced
              in
              let ann = Variants.annotate variant linked profile in
              let stats = Runner.dmp runner name ann in
              (name, Stats.flushes_per_ki stats))
            (Runner.names runner)
        in
        { Report.label = Report.abbreviate label; values })
      Variants.fig5_left
  in
  {
    Report.title = "Figure 6: pipeline flushes due to branch mispredictions";
    unit_label = "flushes per kilo-instruction";
    benchmarks = Runner.names runner;
    series = base_series :: dmp_series;
  }
