(* Figure 5: DMP IPC improvement over the baseline for the cumulative
   heuristic selection algorithms (left) and the cost-benefit model
   variants (right). *)

let run_variants runner variants =
  let series =
    List.map
      (fun (label, variant) ->
        let values =
          List.map
            (fun name ->
              let linked = Runner.linked runner name in
              let profile =
                Runner.profile runner name Dmp_workload.Input_gen.Reduced
              in
              let ann = Variants.annotate variant linked profile in
              let stats = Runner.dmp runner name ann in
              let base = Runner.baseline runner name in
              (name, Runner.speedup_pct ~base stats))
            (Runner.names runner)
        in
        { Report.label = Report.abbreviate label; values })
      variants
  in
  series

let left runner =
  {
    Report.title = "Figure 5 (left): heuristic diverge-branch selection";
    unit_label = "% IPC improvement over baseline";
    benchmarks = Runner.names runner;
    series = run_variants runner Variants.fig5_left;
  }

let right runner =
  {
    Report.title = "Figure 5 (right): cost-benefit model selection";
    unit_label = "% IPC improvement over baseline";
    benchmarks = Runner.names runner;
    series = run_variants runner Variants.fig5_right;
  }
