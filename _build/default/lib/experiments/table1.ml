(* Table 1: the simulated machine configuration. *)

open Dmp_uarch

let render () =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "== Table 1: baseline processor configuration and DMP support ==\n";
  List.iter
    (fun (section, text) -> add "%-18s %s\n" section text)
    (Config.describe_table1 Config.dmp);
  Buffer.contents buf
