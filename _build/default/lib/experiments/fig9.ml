(* Figure 9: effect of profiling with a different input set. The run
   always uses the reduced set; selection uses either the reduced
   profile ("same") or the train profile ("diff"). *)

open Dmp_workload

let variants =
  [
    ("heur-same", Variants.all_best_heur, Input_gen.Reduced);
    ("heur-diff", Variants.all_best_heur, Input_gen.Train);
    ("cost-same", Variants.all_best_cost, Input_gen.Reduced);
    ("cost-diff", Variants.all_best_cost, Input_gen.Train);
  ]

let run runner =
  let series =
    List.map
      (fun (label, variant, profile_set) ->
        let values =
          List.map
            (fun name ->
              let linked = Runner.linked runner name in
              let profile = Runner.profile runner name profile_set in
              let ann = Variants.annotate variant linked profile in
              let stats = Runner.dmp runner name ann in
              (name, Runner.speedup_pct ~base:(Runner.baseline runner name)
                       stats))
            (Runner.names runner)
        in
        { Report.label = label; values })
      variants
  in
  {
    Report.title = "Figure 9: profiling input-set sensitivity";
    unit_label = "% IPC improvement over baseline (run = reduced input)";
    benchmarks = Runner.names runner;
    series;
  }
