(* Text rendering of experiment results: one column per series, one row
   per benchmark, plus the arithmetic mean the paper reports. *)

type series = { label : string; values : (string * float) list }

type figure = {
  title : string;
  unit_label : string;
  benchmarks : string list;
  series : series list;
}

let value_of series bench =
  match List.assoc_opt bench series.values with Some v -> v | None -> nan

let mean_of series =
  Runner.amean (List.map snd series.values)

let render fig =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "== %s (%s) ==\n" fig.title fig.unit_label;
  let w = 10 in
  add "%-10s" "bench";
  List.iter (fun s -> add " %*s" w s.label) fig.series;
  add "\n";
  List.iter
    (fun b ->
      add "%-10s" b;
      List.iter (fun s -> add " %*.2f" w (value_of s b)) fig.series;
      add "\n")
    fig.benchmarks;
  add "%-10s" "amean";
  List.iter (fun s -> add " %*.2f" w (mean_of s)) fig.series;
  add "\n";
  Buffer.contents buf

(* Shorten series labels so wide figures stay readable. *)
let abbreviate label =
  if String.length label <= 10 then label
  else String.sub label 0 10
