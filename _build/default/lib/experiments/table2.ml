(* Table 2: benchmark characteristics under the reduced input set with
   All-best-heur diverge-branch selection. *)

open Dmp_ir
open Dmp_core
open Dmp_uarch

type row = {
  name : string;
  base_ipc : float;
  mpki : float;
  insts : int;
  static_branches : int;
  diverge_branches : int;
  avg_cfm : float;
}

let compute runner =
  List.map
    (fun name ->
      let linked = Runner.linked runner name in
      let profile = Runner.profile runner name Dmp_workload.Input_gen.Reduced in
      let base = Runner.baseline runner name in
      let ann =
        Variants.annotate Variants.all_best_heur linked profile
      in
      {
        name;
        base_ipc = Stats.ipc base;
        mpki = Stats.mpki base;
        insts = base.Stats.retired;
        static_branches =
          Program.static_conditional_branches linked.Linked.program;
        diverge_branches = Annotation.count ann;
        avg_cfm = Annotation.average_cfm_count ann;
      })
    (Runner.names runner)

let render rows =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "== Table 2: benchmark characteristics ==\n";
  add "%-10s %8s %6s %9s %8s %10s %8s\n" "bench" "BaseIPC" "MPKI" "Insts"
    "All br." "Diverge br." "Avg#CFM";
  List.iter
    (fun r ->
      add "%-10s %8.2f %6.1f %9d %8d %10d %8.2f\n" r.name r.base_ipc r.mpki
        r.insts r.static_branches r.diverge_branches r.avg_cfm)
    rows;
  Buffer.contents buf
