lib/experiments/runner.mli: Config Dmp_core Dmp_ir Dmp_profile Dmp_uarch Dmp_workload Input_gen Linked Profile Spec Stats
