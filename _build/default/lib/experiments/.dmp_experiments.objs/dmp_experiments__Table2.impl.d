lib/experiments/table2.ml: Annotation Buffer Dmp_core Dmp_ir Dmp_uarch Dmp_workload Linked List Printf Program Runner Stats Variants
