lib/experiments/fig10.ml: Annotation Buffer Dmp_core Dmp_profile Dmp_workload Input_gen Int List Printf Profile Runner Variants
