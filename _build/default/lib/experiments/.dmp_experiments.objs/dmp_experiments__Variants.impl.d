lib/experiments/variants.ml: Cost_model Dmp_core List Params Select Simple_select
