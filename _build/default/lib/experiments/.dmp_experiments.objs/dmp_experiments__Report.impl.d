lib/experiments/report.ml: Buffer List Printf Runner String
