lib/experiments/ablations.ml: Annotation Buffer Config Dmp_core Dmp_profile Dmp_uarch Dmp_workload Input_gen List Params Printf Runner Select
