lib/experiments/fig7.ml: Buffer Dmp_core Dmp_workload List Params Printf Runner Select
