lib/experiments/table1.ml: Buffer Config Dmp_uarch List Printf
