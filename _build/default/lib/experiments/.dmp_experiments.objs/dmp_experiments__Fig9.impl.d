lib/experiments/fig9.ml: Dmp_workload Input_gen List Report Runner Variants
