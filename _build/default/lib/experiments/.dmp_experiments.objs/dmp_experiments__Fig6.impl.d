lib/experiments/fig6.ml: Dmp_uarch Dmp_workload List Report Runner Stats Variants
