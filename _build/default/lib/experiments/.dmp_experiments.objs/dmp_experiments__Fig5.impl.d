lib/experiments/fig5.ml: Dmp_workload List Report Runner Variants
