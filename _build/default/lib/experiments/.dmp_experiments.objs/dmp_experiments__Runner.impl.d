lib/experiments/runner.ml: Config Dmp_ir Dmp_profile Dmp_uarch Dmp_workload Hashtbl Input_gen Lazy Linked List Profile Registry Sim Spec Stats
