lib/experiments/fig8.ml: Fig5 Report Runner Variants
