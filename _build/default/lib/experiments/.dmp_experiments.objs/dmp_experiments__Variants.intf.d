lib/experiments/variants.mli: Annotation Cost_model Dmp_core Dmp_ir Dmp_profile Linked Profile Select Simple_select
