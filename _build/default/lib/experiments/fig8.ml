(* Figure 8: alternative simple diverge-branch selection algorithms
   against All-best-heur. *)

let run runner =
  {
    Report.title = "Figure 8: alternative simple selection algorithms";
    unit_label = "% IPC improvement over baseline";
    benchmarks = Runner.names runner;
    series = Fig5.run_variants runner Variants.fig8;
  }
