(** Shared experiment pipeline with caching of linking, profiling and
    baseline simulation across figures. *)

open Dmp_ir
open Dmp_profile
open Dmp_uarch
open Dmp_workload

type t

val create :
  ?benchmarks:Spec.t list -> ?max_insts:int -> unit -> t
(** Defaults to the full 17-benchmark suite with uncapped simulations.
    [max_insts] caps both profiling and simulation (for quick runs and
    tests). *)

val names : t -> string list
val linked : t -> string -> Linked.t
val input : t -> string -> Input_gen.set -> int array

val profile : t -> string -> Input_gen.set -> Profile.t
(** Cached per (benchmark, input set). *)

val baseline : ?set:Input_gen.set -> t -> string -> Stats.t
(** Cached per (benchmark, input set). *)

val dmp :
  ?set:Input_gen.set -> ?config:Config.t -> t -> string ->
  Dmp_core.Annotation.t -> Stats.t
(** Uncached: one DMP simulation under the given annotation. *)

val speedup_pct : base:Stats.t -> Stats.t -> float
val amean : float list -> float
