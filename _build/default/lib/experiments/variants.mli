(** Named diverge-branch selection variants used across the paper's
    figures: the cumulative heuristic stacks of Figure 5 (left), the
    cost-benefit stacks of Figure 5 (right), and the simple selectors of
    Figure 8. *)

open Dmp_ir
open Dmp_core
open Dmp_profile

type t =
  | Heur of Select.technique list
  | Cost of Cost_model.path_method * Select.technique list
  | Simple of Simple_select.algo

val exact : t
val exact_freq : t
val exact_freq_short : t
val exact_freq_short_ret : t
val all_best_heur : t
val cost_long : t
val cost_edge : t
val cost_edge_short : t
val cost_edge_short_ret : t
val all_best_cost : t

val fig5_left : (string * t) list
val fig5_right : (string * t) list
val fig8 : (string * t) list

val to_config : t -> Select.config
(** @raise Invalid_argument for [Simple _]. *)

val annotate : t -> Linked.t -> Profile.t -> Annotation.t
val of_string : string -> t option
val names : string list
