(* Named selection variants used across the paper's figures. *)

open Dmp_core

type t =
  | Heur of Select.technique list
  | Cost of Cost_model.path_method * Select.technique list
  | Simple of Simple_select.algo

let exact = Heur [ Select.Exact ]
let exact_freq = Heur [ Select.Exact; Select.Freq ]
let exact_freq_short = Heur [ Select.Exact; Select.Freq; Select.Short ]

let exact_freq_short_ret =
  Heur [ Select.Exact; Select.Freq; Select.Short; Select.Ret ]

let all_best_heur =
  Heur [ Select.Exact; Select.Freq; Select.Short; Select.Ret; Select.Loop ]

let cost_long = Cost (Cost_model.Longest, [ Select.Exact; Select.Freq ])
let cost_edge = Cost (Cost_model.Edge_weighted, [ Select.Exact; Select.Freq ])

let cost_edge_short =
  Cost (Cost_model.Edge_weighted, [ Select.Exact; Select.Freq; Select.Short ])

let cost_edge_short_ret =
  Cost
    ( Cost_model.Edge_weighted,
      [ Select.Exact; Select.Freq; Select.Short; Select.Ret ] )

let all_best_cost =
  Cost
    ( Cost_model.Edge_weighted,
      [ Select.Exact; Select.Freq; Select.Short; Select.Ret; Select.Loop ] )

let fig5_left =
  [
    ("exact", exact);
    ("exact+freq", exact_freq);
    ("exact+freq+short", exact_freq_short);
    ("exact+freq+short+ret", exact_freq_short_ret);
    ("all-best-heur", all_best_heur);
  ]

let fig5_right =
  [
    ("cost-long", cost_long);
    ("cost-edge", cost_edge);
    ("cost-edge+short", cost_edge_short);
    ("cost-edge+short+ret", cost_edge_short_ret);
    ("all-best-cost", all_best_cost);
  ]

let fig8 =
  [
    ("every-br", Simple Simple_select.Every_br);
    ("random-50", Simple (Simple_select.Random_50 42));
    ("high-BP-5", Simple (Simple_select.High_bp 0.05));
    ("immediate", Simple Simple_select.Immediate);
    ("if-else", Simple Simple_select.If_else);
    ("all-best-heur", all_best_heur);
  ]

let to_config = function
  | Heur techniques ->
      { Select.mode = Select.Heuristic; techniques; params = Params.default }
  | Cost (m, techniques) ->
      { Select.mode = Select.Cost m; techniques; params = Params.for_cost_model }
  | Simple _ -> invalid_arg "Variants.to_config: simple algorithms"

let annotate variant linked profile =
  match variant with
  | Heur _ | Cost _ ->
      Select.run ~config:(to_config variant) linked profile
  | Simple algo -> Simple_select.run algo linked profile

let named =
  fig5_left @ fig5_right
  @ List.filter (fun (n, _) -> n <> "all-best-heur") fig8

let of_string name =
  match List.assoc_opt name named with
  | Some v -> Some v
  | None -> None

let names = List.map fst named
