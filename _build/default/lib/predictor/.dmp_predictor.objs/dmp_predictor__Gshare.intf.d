lib/predictor/gshare.mli:
