lib/predictor/perceptron.ml: Array History
