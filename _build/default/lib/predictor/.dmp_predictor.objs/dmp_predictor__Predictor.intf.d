lib/predictor/predictor.mli:
