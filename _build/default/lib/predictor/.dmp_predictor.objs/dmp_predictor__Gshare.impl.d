lib/predictor/gshare.ml: Array History
