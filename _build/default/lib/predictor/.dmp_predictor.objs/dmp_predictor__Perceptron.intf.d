lib/predictor/perceptron.mli:
