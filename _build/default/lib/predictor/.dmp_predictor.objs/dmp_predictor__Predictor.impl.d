lib/predictor/predictor.ml: Gshare Perceptron
