lib/predictor/ras.ml: Array
