lib/predictor/history.mli:
