lib/predictor/ras.mli:
