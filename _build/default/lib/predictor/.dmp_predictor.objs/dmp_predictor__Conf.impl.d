lib/predictor/conf.ml: Array History
