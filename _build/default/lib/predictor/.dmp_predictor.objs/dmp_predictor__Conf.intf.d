lib/predictor/conf.mli:
