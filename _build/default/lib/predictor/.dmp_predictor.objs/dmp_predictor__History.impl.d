lib/predictor/history.ml:
