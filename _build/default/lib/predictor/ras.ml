(* Return address stack: a bounded stack; overflow wraps (drops the
   oldest entry), underflow mispredicts by returning None. *)

type t = { entries : int array; mutable top : int; mutable depth : int }

let create ?(size = 64) () = { entries = Array.make size 0; top = 0; depth = 0 }

let push t addr =
  let size = Array.length t.entries in
  t.entries.(t.top) <- addr;
  t.top <- (t.top + 1) mod size;
  t.depth <- min size (t.depth + 1)

let pop t =
  if t.depth = 0 then None
  else begin
    let size = Array.length t.entries in
    t.top <- (t.top + size - 1) mod size;
    t.depth <- t.depth - 1;
    Some t.entries.(t.top)
  end

let depth t = t.depth
