(* Global branch-history shift register kept in an OCaml int. The most
   recent outcome is bit 0. *)

type t = { length : int; mask : int }

let make length =
  if length < 1 || length > 62 then invalid_arg "History.make: 1..62";
  { length; mask = (1 lsl length) - 1 }

let length t = t.length
let empty = 0
let shift t history ~taken =
  ((history lsl 1) lor (if taken then 1 else 0)) land t.mask

let bit _t history i = (history lsr i) land 1 = 1
let fold t history = history land t.mask
