(** Return address stack. *)

type t

val create : ?size:int -> unit -> t
val push : t -> int -> unit
val pop : t -> int option
val depth : t -> int
