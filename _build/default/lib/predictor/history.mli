(** Global branch-history shift register stored in an [int]. *)

type t

val make : int -> t
(** [make length] with [1 <= length <= 62]. *)

val length : t -> int
val empty : int
val shift : t -> int -> taken:bool -> int
val bit : t -> int -> int -> bool
(** [bit t history i] is the outcome [i] branches ago (0 = latest). *)

val fold : t -> int -> int
(** History masked to the register length. *)
