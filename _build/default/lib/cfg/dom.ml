(* Cooper, Harvey, Kennedy: "A Simple, Fast Dominance Algorithm". The
   solver is generic over an adjacency so that post-dominators reuse it on
   the reversed graph (see {!Postdom}). *)

type t = { entry : int; idom : int array }

let undefined = -1

let compute ~num_nodes ~entry ~succs ~preds =
  (* Postorder numbering from [entry]. *)
  let po_num = Array.make num_nodes undefined in
  let order = ref [] in
  let seen = Array.make num_nodes false in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs (succs i);
      order := i :: !order
    end
  in
  dfs entry;
  let rpo = !order in
  let counter = ref 0 in
  List.iter
    (fun i ->
      po_num.(i) <- num_nodes - 1 - !counter;
      incr counter)
    rpo;
  let idom = Array.make num_nodes undefined in
  idom.(entry) <- entry;
  let rec intersect b1 b2 =
    if b1 = b2 then b1
    else if po_num.(b1) < po_num.(b2) then intersect idom.(b1) b2
    else intersect b1 idom.(b2)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> entry then begin
          let processed =
            List.filter (fun p -> idom.(p) <> undefined) (preds b)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  { entry; idom }

let idom t i =
  if i = t.entry then None
  else
    let d = t.idom.(i) in
    if d = undefined then None else Some d

let reachable t i = t.idom.(i) <> undefined

let dominates t a b =
  if not (reachable t b) then false
  else
    let rec up x = if x = a then true else if x = t.entry then a = t.entry
      else up t.idom.(x)
    in
    up b

let strictly_dominates t a b = a <> b && dominates t a b

let of_cfg cfg =
  compute ~num_nodes:(Cfg.num_nodes cfg) ~entry:Cfg.entry
    ~succs:(Cfg.successor_blocks cfg)
    ~preds:(Cfg.predecessors cfg)
