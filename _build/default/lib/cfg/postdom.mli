(** Post-dominator tree (dominators of the reversed CFG with a virtual
    exit). The paper's exact CFM point of a branch is the immediate
    post-dominator of its block. *)

type t

val of_cfg : Cfg.t -> t

val ipostdom : t -> int -> int option
(** Immediate post-dominator block, or [None] when the only
    post-dominator is the virtual exit (e.g. the two sides return from
    the function separately) or the node cannot reach an exit. *)

val postdominates : t -> int -> int -> bool
(** [postdominates t a b]: every path from [b] to the exit passes
    through [a]. *)

val reaches_exit : t -> int -> bool
