lib/cfg/live.ml: Array Block Dmp_ir Func Instr Int List Reg Set Term
