lib/cfg/dom.ml: Array Cfg List
