lib/cfg/dom.mli: Cfg
