lib/cfg/dot.mli: Cfg
