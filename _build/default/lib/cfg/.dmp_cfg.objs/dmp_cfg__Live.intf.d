lib/cfg/live.mli: Dmp_ir Set
