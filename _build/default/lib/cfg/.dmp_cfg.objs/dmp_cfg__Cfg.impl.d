lib/cfg/cfg.ml: Array Block Dmp_ir Func List Term
