lib/cfg/cfg.mli: Block Dmp_ir Func
