lib/cfg/dot.ml: Block Buffer Cfg Dmp_ir Func Int List Printf String
