lib/cfg/postdom.mli: Cfg
