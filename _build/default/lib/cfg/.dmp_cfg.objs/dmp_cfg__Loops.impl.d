lib/cfg/loops.ml: Array Cfg Dom Hashtbl Int List
