lib/cfg/loops.mli: Cfg
