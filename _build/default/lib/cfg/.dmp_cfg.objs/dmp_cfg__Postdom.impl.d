lib/cfg/postdom.ml: Cfg Dom Int List
