type loop = {
  header : int;
  body : int list;
  back_edges : (int * int) list;
  exit_branches : int list;
}

type t = loop list

let natural_loop cfg ~reachable ~header ~latch =
  (* Unreachable predecessors are not part of the loop: they can never
     execute, and including them would break the header-dominates-body
     invariant. *)
  let in_body = Hashtbl.create 16 in
  Hashtbl.replace in_body header ();
  let rec pull i =
    if reachable.(i) && not (Hashtbl.mem in_body i) then begin
      Hashtbl.replace in_body i ();
      List.iter pull (Cfg.predecessors cfg i)
    end
  in
  pull latch;
  Hashtbl.fold (fun i () acc -> i :: acc) in_body []

let of_cfg cfg =
  let dom = Dom.of_cfg cfg in
  let reachable = Cfg.reachable cfg in
  let n = Cfg.num_nodes cfg in
  let by_header = Hashtbl.create 8 in
  for u = 0 to n - 1 do
    if Dom.reachable dom u then
      List.iter
        (fun h ->
          if Dom.dominates dom h u then
            Hashtbl.replace by_header h
              ((u, h)
              :: (try Hashtbl.find by_header h with Not_found -> [])))
        (Cfg.successor_blocks cfg u)
  done;
  Hashtbl.fold
    (fun header back_edges acc ->
      let body =
        List.sort_uniq Int.compare
          (List.concat_map
             (fun (latch, _) -> natural_loop cfg ~reachable ~header ~latch)
             back_edges)
      in
      let in_body i = List.exists (Int.equal i) body in
      let exit_branches =
        List.filter
          (fun i ->
            Cfg.is_conditional cfg i
            && List.exists (fun s -> not (in_body s))
                 (Cfg.successor_blocks cfg i))
          body
      in
      { header; body; back_edges; exit_branches } :: acc)
    by_header []

let loop_of_branch t block =
  (* The innermost (smallest-body) loop for which [block] is an exit
     branch. *)
  let candidates =
    List.filter (fun l -> List.exists (Int.equal block) l.exit_branches) t
  in
  match candidates with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun best l ->
             if List.length l.body < List.length best.body then l else best)
           first rest)

let body_size cfg l =
  List.fold_left (fun acc b -> acc + Cfg.block_size cfg b) 0 l.body
