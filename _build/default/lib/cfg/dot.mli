(** Graphviz rendering of a CFG, for debugging and documentation. *)

val of_cfg : ?highlight:int list -> Cfg.t -> string
