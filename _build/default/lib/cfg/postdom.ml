(* Post-dominators: dominators of the reversed CFG, augmented with a
   virtual exit node that every Ret/Halt block flows into. *)

type t = { virtual_exit : int; dom : Dom.t }

let of_cfg cfg =
  let n = Cfg.num_nodes cfg in
  let virtual_exit = n in
  let exits = Cfg.exits cfg in
  let succs i =
    if i = virtual_exit then exits else Cfg.predecessors cfg i
  in
  let preds i =
    if i = virtual_exit then []
    else
      let up = Cfg.successor_blocks cfg i in
      if List.exists (Int.equal i) exits then virtual_exit :: up else up
  in
  let dom = Dom.compute ~num_nodes:(n + 1) ~entry:virtual_exit ~succs ~preds in
  { virtual_exit; dom }

let ipostdom t i =
  match Dom.idom t.dom i with
  | Some d when d <> t.virtual_exit -> Some d
  | Some _ | None -> None

let postdominates t a b = Dom.dominates t.dom a b
let reaches_exit t i = Dom.reachable t.dom i
