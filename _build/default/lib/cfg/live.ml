(* Classic backward liveness over registers. Used by the DMP compiler to
   count select-µops: only registers live at a CFM point need a
   select-µop to reconcile the two predicated paths. *)

open Dmp_ir

module Rset = Set.Make (Int)

type t = { live_in : Rset.t array; live_out : Rset.t array }

(* A call is treated as reading the argument registers and the
   condition registers r2..r15 (our software convention) and defining
   nothing — conservative in the direction that keeps registers live. *)
let call_uses = List.init 14 (fun i -> 2 + i)

let instr_uses ins =
  match ins with
  | Instr.Call _ -> call_uses
  | _ -> List.map Reg.to_int (Instr.uses ins)

let instr_defs ins =
  match ins with
  | Instr.Call _ -> []
  | _ -> List.map Reg.to_int (Instr.defs ins)

let block_transfer b live_out =
  (* Walk the block backwards, starting from the terminator. *)
  let live = ref live_out in
  List.iter
    (fun r -> live := Rset.add (Reg.to_int r) !live)
    (Term.uses b.Block.term);
  for i = Array.length b.Block.body - 1 downto 0 do
    let ins = b.Block.body.(i) in
    List.iter (fun r -> live := Rset.remove r !live) (instr_defs ins);
    List.iter (fun r -> live := Rset.add r !live) (instr_uses ins)
  done;
  !live

let of_func f =
  let n = Func.num_blocks f in
  let live_in = Array.make n Rset.empty in
  let live_out = Array.make n Rset.empty in
  let exit_live = Rset.singleton (Reg.to_int Reg.ret_value) in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = n - 1 downto 0 do
      let blk = Func.block f b in
      let out =
        match blk.Block.term with
        | Term.Ret -> exit_live
        | Term.Halt -> Rset.empty
        | Term.Branch _ | Term.Jump _ ->
            List.fold_left
              (fun acc s -> Rset.union acc live_in.(s))
              Rset.empty
              (Term.successors blk.Block.term)
      in
      let inn = block_transfer blk out in
      if not (Rset.equal out live_out.(b) && Rset.equal inn live_in.(b))
      then begin
        live_out.(b) <- out;
        live_in.(b) <- inn;
        changed := true
      end
    done
  done;
  { live_in; live_out }

let live_in t block = t.live_in.(block)
let live_out t block = t.live_out.(block)
let is_live_in t ~block ~reg = Rset.mem reg t.live_in.(block)
let cardinal_live_in t block = Rset.cardinal t.live_in.(block)
