(** Backward register liveness per basic block. The DMP compiler counts
    select-µops as the registers written on either predicated path that
    are live at the CFM point. *)

module Rset : Set.S with type elt = int

type t

val of_func : Dmp_ir.Func.t -> t
val live_in : t -> int -> Rset.t
val live_out : t -> int -> Rset.t
val is_live_in : t -> block:int -> reg:int -> bool
val cardinal_live_in : t -> int -> int
