(** Natural-loop detection from back edges (edges whose target dominates
    their source). Back edges sharing a header are merged into one loop. *)

type loop = {
  header : int;
  body : int list;  (** blocks of the natural loop, header included *)
  back_edges : (int * int) list;  (** (latch, header) *)
  exit_branches : int list;
      (** conditional-branch blocks in the body with a successor outside *)
}

type t = loop list

val of_cfg : Cfg.t -> t

val loop_of_branch : t -> int -> loop option
(** Innermost loop for which block [i] is an exit branch. *)

val body_size : Cfg.t -> loop -> int
(** Static instruction count of the loop body. *)
