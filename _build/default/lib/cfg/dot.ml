open Dmp_ir

let escape s =
  String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
                      (List.init (String.length s) (String.get s)))

let of_cfg ?(highlight = []) cfg =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph %s {\n" (escape cfg.Cfg.func.Func.name);
  add "  node [shape=box fontname=\"monospace\"];\n";
  let n = Cfg.num_nodes cfg in
  for i = 0 to n - 1 do
    let b = Cfg.block cfg i in
    let style =
      if List.exists (Int.equal i) highlight then " style=filled fillcolor=lightblue"
      else ""
    in
    add "  b%d [label=\"[%d] %s (%d insts)\"%s];\n" i i
      (escape b.Block.label) (Block.size b) style
  done;
  for i = 0 to n - 1 do
    List.iter
      (fun (s, dir) ->
        add "  b%d -> b%d [label=\"%s\"];\n" i s (Cfg.dir_to_string dir))
      (Cfg.successors cfg i)
  done;
  add "}\n";
  Buffer.contents buf
