(** Dominator tree via the Cooper–Harvey–Kennedy algorithm (the
    algorithm the paper cites for IPOSDOM computation). *)

type t

val compute :
  num_nodes:int -> entry:int -> succs:(int -> int list) ->
  preds:(int -> int list) -> t
(** Generic solver; {!Postdom} reuses it on the reversed graph. *)

val idom : t -> int -> int option
(** Immediate dominator; [None] for the entry or unreachable nodes. *)

val reachable : t -> int -> bool
val dominates : t -> int -> int -> bool
val strictly_dominates : t -> int -> int -> bool
val of_cfg : Cfg.t -> t
