open Dmp_ir

type t = {
  linked : Linked.t;
  regs : int array;
  memory : (int, int) Hashtbl.t;
  mutable call_stack : int list;
  input : int array;
  mutable input_pos : int;
  mutable output_rev : int list;
  mutable pc : int;
  mutable halted : bool;
  mutable retired : int;
}

let create linked ~input =
  {
    linked;
    regs = Array.make Reg.count 0;
    memory = Hashtbl.create 4096;
    call_stack = [];
    input;
    input_pos = 0;
    output_rev = [];
    pc = Linked.entry_addr linked;
    halted = false;
    retired = 0;
  }

let reg_get t r = t.regs.(Reg.to_int r)

let reg_set t r v =
  if not (Reg.equal r Reg.zero) then t.regs.(Reg.to_int r) <- v

let operand_value t = function
  | Instr.Reg r -> reg_get t r
  | Instr.Imm i -> i

let mem_load t location =
  match Hashtbl.find_opt t.memory location with Some v -> v | None -> 0

let mem_store t location v = Hashtbl.replace t.memory location v

let read_input t =
  if t.input_pos < Array.length t.input then begin
    let v = t.input.(t.input_pos) in
    t.input_pos <- t.input_pos + 1;
    v
  end
  else 0

let halted t = t.halted
let retired t = t.retired
let pc t = t.pc
let output t = List.rev t.output_rev

let step t =
  if t.halted then None
  else begin
    let l = Linked.loc t.linked t.pc in
    let addr = t.pc in
    let event =
      match l.Linked.slot with
      | Linked.Body ins -> (
          match ins with
          | Instr.Alu { op; dst; src1; src2 } ->
              reg_set t dst
                (Instr.eval_alu op (reg_get t src1) (operand_value t src2));
              { Event.addr; kind = Event.Plain; next = addr + 1 }
          | Instr.Load { dst; base; offset } ->
              let location = reg_get t base + offset in
              reg_set t dst (mem_load t location);
              { Event.addr; kind = Event.Mem { is_load = true; location };
                next = addr + 1 }
          | Instr.Store { src; base; offset } ->
              let location = reg_get t base + offset in
              mem_store t location (reg_get t src);
              { Event.addr; kind = Event.Mem { is_load = false; location };
                next = addr + 1 }
          | Instr.Li { dst; imm } ->
              reg_set t dst imm;
              { Event.addr; kind = Event.Plain; next = addr + 1 }
          | Instr.Mov { dst; src } ->
              reg_set t dst (reg_get t src);
              { Event.addr; kind = Event.Plain; next = addr + 1 }
          | Instr.Call { callee } ->
              let fi = Linked.func_of_name t.linked callee in
              let callee_entry = Linked.func_entry t.linked fi in
              t.call_stack <- (addr + 1) :: t.call_stack;
              { Event.addr; kind = Event.Call { callee_entry };
                next = callee_entry }
          | Instr.Read { dst } ->
              reg_set t dst (read_input t);
              { Event.addr; kind = Event.Plain; next = addr + 1 }
          | Instr.Write { src } ->
              t.output_rev <- reg_get t src :: t.output_rev;
              { Event.addr; kind = Event.Plain; next = addr + 1 }
          | Instr.Nop -> { Event.addr; kind = Event.Plain; next = addr + 1 })
      | Linked.Term tm -> (
          match tm with
          | Term.Branch { cond; src1; src2; target; fall } ->
              let a = reg_get t src1 and b = operand_value t src2 in
              let taken = Term.eval_cond cond a b in
              let target = Linked.block_addr t.linked ~func:l.func ~block:target in
              let fall = Linked.block_addr t.linked ~func:l.func ~block:fall in
              { Event.addr; kind = Event.Branch { taken; target; fall };
                next = (if taken then target else fall) }
          | Term.Jump b ->
              let next = Linked.block_addr t.linked ~func:l.func ~block:b in
              { Event.addr; kind = Event.Plain; next }
          | Term.Ret -> (
              match t.call_stack with
              | return_to :: rest ->
                  t.call_stack <- rest;
                  { Event.addr; kind = Event.Return { return_to };
                    next = return_to }
              | [] ->
                  t.halted <- true;
                  { Event.addr; kind = Event.Return { return_to = -1 };
                    next = Event.halted_next })
          | Term.Halt ->
              t.halted <- true;
              { Event.addr; kind = Event.Plain; next = Event.halted_next })
    in
    t.pc <- event.Event.next;
    t.retired <- t.retired + 1;
    Some event
  end

let run ?(max_insts = max_int) t =
  let rec go () =
    if t.retired >= max_insts then ()
    else match step t with None -> () | Some _ -> go ()
  in
  go ();
  t.retired

let iter ?(max_insts = max_int) t f =
  let rec go () =
    if t.retired < max_insts then
      match step t with
      | None -> ()
      | Some e ->
          f e;
          go ()
  in
  go ()
