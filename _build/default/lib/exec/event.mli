(** One retired dynamic instruction of the architectural trace. *)

type kind =
  | Branch of { taken : bool; target : int; fall : int }
      (** conditional branch with its resolved direction and both
          static target addresses *)
  | Mem of { is_load : bool; location : int }
  | Call of { callee_entry : int }
  | Return of { return_to : int }
  | Plain

type t = { addr : int; kind : kind; next : int }

val halted_next : int
(** [next] value of the final event of a program. *)

val is_branch : t -> bool
val pp : t Fmt.t
