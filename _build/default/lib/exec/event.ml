type kind =
  | Branch of { taken : bool; target : int; fall : int }
  | Mem of { is_load : bool; location : int }
  | Call of { callee_entry : int }
  | Return of { return_to : int }
  | Plain

type t = { addr : int; kind : kind; next : int }

let halted_next = -1
let is_branch e = match e.kind with Branch _ -> true | _ -> false

let pp ppf e =
  let pp_kind ppf = function
    | Branch { taken; target; fall } ->
        Fmt.pf ppf "branch %s -> %d (fall %d)"
          (if taken then "taken" else "not-taken")
          target fall
    | Mem { is_load; location } ->
        Fmt.pf ppf "%s @%d" (if is_load then "load" else "store") location
    | Call { callee_entry } -> Fmt.pf ppf "call -> %d" callee_entry
    | Return { return_to } -> Fmt.pf ppf "ret -> %d" return_to
    | Plain -> Fmt.pf ppf "plain"
  in
  Fmt.pf ppf "{%d %a next=%d}" e.addr pp_kind e.kind e.next
