lib/exec/event.ml: Fmt
