lib/exec/emulator.mli: Dmp_ir Event Linked Reg
