lib/exec/event.mli: Fmt
