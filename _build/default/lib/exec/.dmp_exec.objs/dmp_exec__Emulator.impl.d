lib/exec/emulator.ml: Array Dmp_ir Event Hashtbl Instr Linked List Reg Term
