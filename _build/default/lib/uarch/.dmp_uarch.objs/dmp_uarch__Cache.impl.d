lib/uarch/cache.ml: Array Config Int List
