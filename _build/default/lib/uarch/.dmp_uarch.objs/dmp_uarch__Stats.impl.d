lib/uarch/stats.ml: Fmt
