lib/uarch/config.mli: Fmt
