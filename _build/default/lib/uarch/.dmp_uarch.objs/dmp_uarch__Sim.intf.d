lib/uarch/sim.mli: Annotation Config Dmp_core Dmp_ir Linked Stats
