lib/uarch/stats.mli: Fmt
