lib/uarch/cache.mli: Config
