lib/uarch/static_info.ml: Array Config Dmp_ir Instr Linked List Reg Term
