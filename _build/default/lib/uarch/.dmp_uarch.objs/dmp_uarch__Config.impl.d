lib/uarch/config.ml: Fmt Printf
