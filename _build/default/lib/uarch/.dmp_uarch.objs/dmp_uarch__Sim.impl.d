lib/uarch/sim.ml: Annotation Array Cache Conf Config Dmp_core Dmp_exec Dmp_ir Dmp_predictor Emulator Event Linked List Predictor Reg Static_info Stats
