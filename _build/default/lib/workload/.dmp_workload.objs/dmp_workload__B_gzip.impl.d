lib/workload/b_gzip.ml: Build Cold_code Dmp_ir Input_gen Motifs Program Reg Spec Term
