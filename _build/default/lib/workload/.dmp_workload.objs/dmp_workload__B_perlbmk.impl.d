lib/workload/b_perlbmk.ml: Build Cold_code Dmp_ir Funcs Input_gen Motifs Program Reg Spec Term
