lib/workload/b_gcc.ml: Array Build Cold_code Dmp_ir Input_gen Motifs Printf Program Spec Term
