lib/workload/b_m88ksim.ml: Build Cold_code Dmp_ir Input_gen Motifs Program Reg Spec Term
