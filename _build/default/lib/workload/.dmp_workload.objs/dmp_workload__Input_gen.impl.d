lib/workload/input_gen.ml: Array Random
