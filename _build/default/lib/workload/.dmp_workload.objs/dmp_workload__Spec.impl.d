lib/workload/spec.ml: Build Dmp_ir Input_gen Lazy Linked Motifs Program Reg Term
