lib/workload/b_gap.ml: Build Cold_code Dmp_ir Input_gen Motifs Program Spec Term
