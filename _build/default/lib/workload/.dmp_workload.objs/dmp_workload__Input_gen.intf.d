lib/workload/input_gen.mli:
