lib/workload/b_compress.ml: Build Cold_code Dmp_ir Input_gen Motifs Program Reg Spec
