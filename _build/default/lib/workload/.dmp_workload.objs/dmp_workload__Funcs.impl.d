lib/workload/funcs.ml: Build Dmp_ir Motifs Term
