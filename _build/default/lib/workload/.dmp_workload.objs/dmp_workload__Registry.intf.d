lib/workload/registry.mli: Spec
