lib/workload/motifs.ml: Build Dmp_ir Instr Reg Term
