lib/workload/b_go.ml: Build Cold_code Dmp_ir Funcs Input_gen Motifs Program Reg Spec
