lib/workload/cold_code.ml: Build Dmp_ir List Printf Random Reg Spec Term
