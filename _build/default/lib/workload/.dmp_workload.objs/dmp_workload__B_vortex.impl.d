lib/workload/b_vortex.ml: Build Cold_code Dmp_ir Funcs Input_gen Motifs Program Reg Spec Term
