lib/workload/spec.mli: Build Dmp_ir Input_gen Lazy Linked Program Reg
