lib/workload/b_mcf.ml: Build Cold_code Dmp_ir Input_gen Motifs Program Reg Spec Term
