lib/workload/b_bzip2.ml: Build Cold_code Dmp_ir Input_gen Motifs Program Reg Spec Term
