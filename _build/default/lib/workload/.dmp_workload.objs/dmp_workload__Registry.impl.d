lib/workload/registry.ml: B_bzip2 B_compress B_crafty B_eon B_gap B_gcc B_go B_gzip B_ijpeg B_li B_m88ksim B_mcf B_parser B_perlbmk B_twolf B_vortex B_vpr List Spec String
