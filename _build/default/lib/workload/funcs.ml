(* Common callee shapes shared by the benchmarks. *)

open Dmp_ir
module B = Build

(* Straight-line leaf function. *)
let leaf ~name ~size =
  let f = B.func name in
  Motifs.work f size;
  B.ret f;
  B.finish f

(* A function whose branch sides end in *different* returns: the
   canonical return-CFM shape of Section 3.5. The condition arrives in
   [cond]. *)
let ret_hammock ~name ~cond ~a_size ~b_size =
  let f = B.func name in
  B.branch f Term.Ne cond (B.imm 0) ~target:"a" ();
  B.label f "b";
  Motifs.work f b_size;
  B.ret f;
  B.label f "a";
  Motifs.work f a_size;
  B.ret f;
  B.finish f

(* A function containing a simple hammock that merges before a single
   return. *)
let hammock_callee ~name ~cond ~then_size ~else_size ~tail =
  let f = B.func name in
  Motifs.simple_hammock f ~prefix:"h" ~cond ~then_size ~else_size;
  Motifs.work f tail;
  B.ret f;
  B.finish f

(* A function with a small data-dependent loop (trip in [trip]). *)
let loop_callee ~name ~trip ~body_size =
  let f = B.func name in
  Motifs.data_loop f ~prefix:"l" ~trip ~body_size;
  B.ret f;
  B.finish f
