(* Cold code: generated library functions that are present in the
   binary but never executed (guarded by an impossible mode check), as
   the bulk of any real program's static code is. They give the
   synthetic binaries realistic static instruction and branch counts
   (the paper's Table 2 reports hundreds to thousands of static
   branches per benchmark), exercise the analysis passes on much larger
   CFGs, and cost nothing at run time.

   Everything is generated deterministically from a seed. *)

open Dmp_ir
module B = Build

let fresh_name seed i = Printf.sprintf "cold_%d_%d" seed i

(* One cold function: a few hammocks and a loop over the argument
   registers, shaped like ordinary utility code. *)
let cold_function st ~name =
  let f = B.func name in
  let a = Reg.of_int 4 and b = Reg.of_int 5 and t = Reg.of_int 10 in
  let acc = Reg.of_int 11 in
  let n_sections = 2 + Random.State.int st 3 in
  for s = 0 to n_sections - 1 do
    let lbl suffix = Printf.sprintf "s%d_%s" s suffix in
    match Random.State.int st 3 with
    | 0 ->
        (* simple hammock on an argument *)
        B.rem f t a (B.imm (2 + Random.State.int st 5));
        B.branch f Term.Ne t (B.imm 0) ~target:(lbl "t") ();
        B.label f (lbl "f");
        for _ = 0 to Random.State.int st 4 do
          B.add f acc acc (B.imm (1 + Random.State.int st 9))
        done;
        B.jump f (lbl "j");
        B.label f (lbl "t");
        for _ = 0 to Random.State.int st 4 do
          B.sub f acc acc (B.imm (1 + Random.State.int st 9))
        done;
        B.label f (lbl "j")
    | 1 ->
        (* bounded loop *)
        B.rem f t b (B.imm (3 + Random.State.int st 5));
        B.add f t t (B.imm 1);
        B.label f (lbl "head");
        B.add f acc acc (B.reg a);
        B.xor f acc acc (B.imm (Random.State.int st 255));
        B.sub f t t (B.imm 1);
        B.branch f Term.Gt t (B.imm 0) ~target:(lbl "head") ();
        B.label f (lbl "x")
    | _ ->
        (* early-return check *)
        B.branch f Term.Lt a (B.imm (Random.State.int st 100))
          ~target:(lbl "ret") ();
        B.label f (lbl "go");
        B.mul f acc acc (B.imm 3);
        B.jump f (lbl "x");
        B.label f (lbl "ret");
        B.ret f;
        B.label f (lbl "x")
  done;
  B.mov f (Reg.of_int 1) acc;
  B.ret f;
  B.finish f

(* The library plus its dispatcher, which calls every function in turn
   (so all of them are statically reachable and the program validates). *)
let library ~seed ~functions =
  let st = Random.State.make [| seed; 0xC01D |] in
  let names = List.init functions (fresh_name seed) in
  let funcs = List.map (fun name -> cold_function st ~name) names in
  let entry_name = Printf.sprintf "cold_entry_%d" seed in
  let d = B.func entry_name in
  List.iter (fun name -> B.call d name) names;
  B.ret d;
  (B.finish d :: funcs, entry_name)

(* Emit the impossible guard that keeps the library statically reachable
   but dynamically dead: the benchmark mode word is never 0. *)
let call_gate f ~entry_name =
  B.branch f Term.Ne Spec.mode_reg (B.imm 0)
    ~target:("skip_" ^ entry_name) ();
  B.label f ("enter_" ^ entry_name);
  B.call f entry_name;
  B.label f ("skip_" ^ entry_name)
