open Dmp_ir
module B = Build

type t = {
  name : string;
  description : string;
  program : Program.t Lazy.t;
  input : Input_gen.set -> int array;
}

let mode_reg = Reg.of_int 2
let arg_reg = Reg.of_int 14  (* condition argument for helper callees *)
let counter_reg = Reg.of_int 3
let value_reg n = Reg.of_int (4 + n)  (* r4..r9 *)
let cond_reg n = Reg.of_int (10 + n)  (* r10..r13 *)

(* Standard driver: read the mode word, run [body] [iterations] times,
   halt. [prologue] runs once before the loop (e.g. memory priming). *)
let outer_loop f ~iterations ?(prologue = fun () -> ()) body =
  B.read f mode_reg;
  prologue ();
  B.li f counter_reg iterations;
  B.label f "outer";
  body ();
  B.label f "outer_latch";
  (* Consume the motif accumulator so it is live across every join. *)
  B.write f Motifs.acc_reg;
  B.sub f counter_reg counter_reg (B.imm 1);
  B.branch f Term.Gt counter_reg (B.imm 0) ~target:"outer" ();
  B.label f "end";
  B.halt f

let linked spec = Linked.link (Lazy.force spec.program)
