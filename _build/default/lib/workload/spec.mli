(** A benchmark: a program plus its input-set generators.

    Register conventions used by the benchmark builders:
    r2 mode word, r3 outer counter, r4..r9 per-iteration values,
    r10..r13 condition/trip registers, r14 callee argument, r16 the
    motif accumulator, r17..r19 motif-private, r20..r27 filler scratch. *)

open Dmp_ir

type t = {
  name : string;
  description : string;
  program : Program.t Lazy.t;
  input : Input_gen.set -> int array;
}

val mode_reg : Reg.t
val arg_reg : Reg.t
val counter_reg : Reg.t
val value_reg : int -> Reg.t
val cond_reg : int -> Reg.t

val outer_loop :
  Build.fn -> iterations:int -> ?prologue:(unit -> unit) ->
  (unit -> unit) -> unit
(** Standard driver: read the mode word, run the body [iterations]
    times (consuming the motif accumulator at the [outer_latch] label so
    it stays live across every join), halt. *)

val linked : t -> Linked.t
