(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Section 7) on the synthetic SPEC stand-ins, and
   optionally runs Bechamel micro-benchmarks of the compiler algorithms
   themselves.

   Usage:
     bench/main.exe                 regenerate all tables and figures
     bench/main.exe table1 fig5l …  regenerate a subset
     bench/main.exe micro           Bechamel micro-benchmarks *)

open Dmp_experiments

let all_targets =
  [ "table1"; "table2"; "fig5l"; "fig5r"; "fig6"; "fig7"; "fig8"; "fig9";
    "fig10"; "ablations" ]

let run_target runner = function
  | "table1" -> print_string (Table1.render ())
  | "table2" -> print_string (Table2.render (Table2.compute runner))
  | "fig5l" -> print_string (Report.render (Fig5.left runner))
  | "fig5r" -> print_string (Report.render (Fig5.right runner))
  | "fig6" -> print_string (Report.render (Fig6.run runner))
  | "fig7" -> print_string (Fig7.render (Fig7.run runner))
  | "fig8" -> print_string (Report.render (Fig8.run runner))
  | "fig9" -> print_string (Report.render (Fig9.run runner))
  | "fig10" -> print_string (Fig10.render (Fig10.run runner))
  | "ablations" -> print_string (Ablations.render (Ablations.run runner))
  | t -> Printf.eprintf "unknown target %s\n" t

(* Bechamel micro-benchmarks: the compile-time cost of each analysis
   stage on a real workload binary (gcc has the largest CFG). One
   Test.make per pipeline stage. *)
let micro () =
  let open Bechamel in
  let open Toolkit in
  let spec = Dmp_workload.Registry.find "gcc" in
  let linked = Dmp_workload.Spec.linked spec in
  let input = spec.Dmp_workload.Spec.input Dmp_workload.Input_gen.Reduced in
  let profile =
    Dmp_profile.Profile.collect ~max_insts:100_000 linked ~input
  in
  let ctx = Dmp_core.Context.create linked profile in
  let tests =
    [
      Test.make ~name:"context-build"
        (Staged.stage (fun () ->
             ignore (Dmp_core.Context.create linked profile)));
      Test.make ~name:"alg-exact"
        (Staged.stage (fun () -> ignore (Dmp_core.Alg_exact.find ctx)));
      Test.make ~name:"alg-freq"
        (Staged.stage (fun () -> ignore (Dmp_core.Alg_freq.find ctx)));
      Test.make ~name:"loop-select"
        (Staged.stage (fun () -> ignore (Dmp_core.Loop_select.find ctx)));
      Test.make ~name:"select-all-best-heur"
        (Staged.stage (fun () ->
             ignore (Dmp_core.Select.run linked profile)));
      Test.make ~name:"profile-100k"
        (Staged.stage (fun () ->
             ignore
               (Dmp_profile.Profile.collect ~max_insts:100_000 linked
                  ~input)));
      Test.make ~name:"simulate-100k-baseline"
        (Staged.stage (fun () ->
             ignore
               (Dmp_uarch.Sim.run ~config:Dmp_uarch.Config.baseline
                  ~max_insts:100_000 linked ~input)));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ())
          Instance.[ monotonic_clock ]
          test
      in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) ->
              Printf.printf "%-32s %12.0f ns/run\n" name est
          | Some [] | None -> Printf.printf "%-32s (no estimate)\n" name)
        analysis)
    tests

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "micro" ] -> micro ()
  | [] ->
      let runner = Runner.create () in
      List.iter
        (fun t ->
          run_target runner t;
          print_newline ())
        all_targets
  | targets ->
      let runner = Runner.create () in
      List.iter
        (fun t ->
          run_target runner t;
          print_newline ())
        targets
