open Dmp_experiments
open Dmp_workload

let check = Alcotest.check

(* A tiny runner over two benchmarks with capped simulations keeps the
   suite fast. *)
let small_runner () =
  Runner.create
    ~benchmarks:[ Registry.find "vpr"; Registry.find "li" ]
    ~max_insts:120_000 ()

let test_runner_caching () =
  let r = small_runner () in
  let p1 = Runner.profile r "vpr" Input_gen.Reduced in
  let p2 = Runner.profile r "vpr" Input_gen.Reduced in
  check Alcotest.bool "profile cached (physical equality)" true (p1 == p2);
  let b1 = Runner.baseline r "vpr" in
  let b2 = Runner.baseline r "vpr" in
  check Alcotest.bool "baseline cached" true (b1 == b2)

let test_runner_unknown () =
  let r = small_runner () in
  Alcotest.check_raises "unknown benchmark"
    (Invalid_argument "Runner: unknown benchmark nope") (fun () ->
      ignore (Runner.linked r "nope"))

let test_amean () =
  check (Alcotest.float 1e-9) "mean" 2. (Runner.amean [ 1.; 2.; 3. ]);
  check (Alcotest.float 1e-9) "empty" 0. (Runner.amean [])

let test_variants_lookup () =
  List.iter
    (fun name ->
      match Variants.of_string name with
      | Some _ -> ()
      | None -> Alcotest.failf "variant %s not found" name)
    Variants.names;
  check Alcotest.bool "unknown variant" true (Variants.of_string "x" = None)

let test_table2 () =
  let r = small_runner () in
  let rows = Table2.compute r in
  check Alcotest.int "one row per benchmark" 2 (List.length rows);
  List.iter
    (fun row ->
      check Alcotest.bool "ipc positive" true (row.Table2.base_ipc > 0.);
      check Alcotest.bool "has static branches" true
        (row.Table2.static_branches > 0);
      check Alcotest.bool "diverge branches selected" true
        (row.Table2.diverge_branches > 0);
      check Alcotest.bool "avg cfm in [1, max_cfm]" true
        (row.Table2.avg_cfm >= 1.
         && row.Table2.avg_cfm
            <= float_of_int Dmp_core.Params.default.Dmp_core.Params.max_cfm))
    rows;
  let rendered = Table2.render rows in
  check Alcotest.bool "render mentions benchmarks" true
    (Astring_contains.contains rendered "vpr"
     && Astring_contains.contains rendered "li")

let test_fig5_left () =
  let r = small_runner () in
  let fig = Fig5.left r in
  check Alcotest.int "five series" 5 (List.length fig.Report.series);
  List.iter
    (fun s ->
      check Alcotest.int "value per benchmark" 2
        (List.length s.Report.values))
    fig.Report.series;
  (* all-best-heur must beat exact alone on these hammock-heavy
     benchmarks *)
  let mean label =
    Report.mean_of
      (List.find (fun s -> s.Report.label = label) fig.Report.series)
  in
  check Alcotest.bool "cumulative techniques help" true
    (mean "all-best-h" >= mean "exact")

let test_fig10_percentages () =
  let r = small_runner () in
  List.iter
    (fun row ->
      let total =
        row.Fig10.pct_only_run +. row.Fig10.pct_only_train
        +. row.Fig10.pct_either
      in
      check Alcotest.bool "sums to 100" true (abs_float (total -. 100.) < 1e-6))
    (Fig10.run r)

let test_fig7_grid () =
  let r = small_runner () in
  let points =
    Fig7.run ~max_instrs:[ 10; 50 ] ~merge_probs:[ 0.01; 0.9 ] r
  in
  check Alcotest.int "grid size" 4 (List.length points);
  let rendered = Fig7.render points in
  check Alcotest.bool "mentions MAX_INSTR" true
    (Astring_contains.contains rendered "MAX_INSTR")

let test_report_render () =
  let fig =
    {
      Report.title = "t";
      unit_label = "u";
      benchmarks = [ "a"; "b" ];
      series =
        [ { Report.label = "s1"; values = [ ("a", 1.); ("b", 3.) ] } ];
    }
  in
  let s = Report.render fig in
  check Alcotest.bool "has mean row" true
    (Astring_contains.contains s "amean");
  check Alcotest.bool "mean correct" true (Astring_contains.contains s "2.00")

let () =
  Alcotest.run "dmp_experiments"
    [
      ( "runner",
        [
          Alcotest.test_case "caching" `Quick test_runner_caching;
          Alcotest.test_case "unknown" `Quick test_runner_unknown;
          Alcotest.test_case "amean" `Quick test_amean;
        ] );
      ( "variants",
        [ Alcotest.test_case "lookup" `Quick test_variants_lookup ] );
      ( "figures",
        [
          Alcotest.test_case "table2" `Slow test_table2;
          Alcotest.test_case "fig5 left" `Slow test_fig5_left;
          Alcotest.test_case "fig10 sums" `Slow test_fig10_percentages;
          Alcotest.test_case "fig7 grid" `Slow test_fig7_grid;
          Alcotest.test_case "report render" `Quick test_report_render;
        ] );
    ]
