open Dmp_ir
open Dmp_workload

let check = Alcotest.check

let test_registry () =
  check Alcotest.int "12 + 5 benchmarks" 17 (List.length Registry.all);
  check Alcotest.int "int2000" 12 (List.length Registry.int2000);
  check Alcotest.int "int95" 5 (List.length Registry.int95);
  check Alcotest.bool "names unique" true
    (List.length (List.sort_uniq compare Registry.names)
     = List.length Registry.names);
  check Alcotest.string "lookup" "mcf" (Registry.find "mcf").Spec.name;
  Alcotest.check_raises "unknown"
    (Invalid_argument "Registry.find: unknown benchmark nope") (fun () ->
      ignore (Registry.find "nope"))

let test_programs_validate () =
  List.iter
    (fun spec ->
      let program = Lazy.force spec.Spec.program in
      match Program.validate program with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" spec.Spec.name m)
    Registry.all

let test_programs_halt () =
  (* Every benchmark must run to completion on every input set, within a
     generous instruction bound, and never exhaust its input stream. *)
  List.iter
    (fun spec ->
      let linked = Spec.linked spec in
      List.iter
        (fun set ->
          let input = spec.Spec.input set in
          let emu = Dmp_exec.Emulator.create linked ~input in
          let retired = Dmp_exec.Emulator.run ~max_insts:3_000_000 emu in
          if not (Dmp_exec.Emulator.halted emu) then
            Alcotest.failf "%s (%s) did not halt after %d insts"
              spec.Spec.name
              (Input_gen.set_to_string set)
              retired)
        [ Input_gen.Reduced; Input_gen.Train ])
    Registry.all

let test_dynamic_sizes () =
  List.iter
    (fun spec ->
      let linked = Spec.linked spec in
      let emu =
        Dmp_exec.Emulator.create linked
          ~input:(spec.Spec.input Input_gen.Reduced)
      in
      let retired = Dmp_exec.Emulator.run emu in
      if retired < 50_000 || retired > 2_000_000 then
        Alcotest.failf "%s: %d dynamic instructions out of range"
          spec.Spec.name retired)
    Registry.all

let test_input_sets_differ () =
  List.iter
    (fun spec ->
      let r = spec.Spec.input Input_gen.Reduced in
      let t = spec.Spec.input Input_gen.Train in
      check Alcotest.bool
        (spec.Spec.name ^ ": reduced and train differ")
        true (r <> t))
    Registry.all

let test_inputs_deterministic () =
  List.iter
    (fun spec ->
      check Alcotest.bool
        (spec.Spec.name ^ ": input generation deterministic")
        true
        (spec.Spec.input Input_gen.Reduced = spec.Spec.input Input_gen.Reduced))
    Registry.all

let test_mpki_spread () =
  (* The suite must span easy and hard benchmarks, like Table 2. *)
  let mpkis =
    List.map
      (fun spec ->
        let linked = Spec.linked spec in
        let profile =
          Dmp_profile.Profile.collect ~max_insts:150_000 linked
            ~input:(spec.Spec.input Input_gen.Reduced)
        in
        (spec.Spec.name, Dmp_profile.Profile.mpki profile))
      Registry.all
  in
  let values = List.map snd mpkis in
  let lo = List.fold_left min infinity values in
  let hi = List.fold_left max neg_infinity values in
  check Alcotest.bool "some easy benchmark (MPKI < 5)" true (lo < 5.);
  check Alcotest.bool "some hard benchmark (MPKI > 9)" true (hi > 9.);
  (* go must be among the most mispredicted, as in the paper *)
  let go = List.assoc "go" mpkis in
  let harder = List.filter (fun v -> v > go) values in
  check Alcotest.bool "go among the most mispredicted (top five)" true
    (List.length harder <= 4)

let test_input_gen_distributions () =
  let u = Input_gen.uniform ~seed:1 ~n:10_000 ~bound:100 in
  check Alcotest.int "length" 10_000 (Array.length u);
  Array.iter (fun v -> assert (v >= 0 && v < 100)) u;
  let mean = Array.fold_left ( + ) 0 u / 10_000 in
  check Alcotest.bool "mean near 50" true (mean > 45 && mean < 55);
  let m =
    Input_gen.mixture ~seed:2 ~n:10_000 ~bound:1000 ~small_bound:10
      ~p_small:0.5
  in
  let small = Array.fold_left (fun a v -> if v < 10 then a + 1 else a) 0 m in
  check Alcotest.bool "mixture has both modes" true
    (small > 4_000 && small < 7_000);
  let ph = Input_gen.phased ~seed:3 ~n:100 ~phase:10 ~bounds:[| 10; 1000 |] in
  check Alcotest.int "phased length" 100 (Array.length ph);
  let w = Input_gen.with_mode 42 [| 1; 2 |] in
  check Alcotest.(list int) "mode prefix" [ 42; 1; 2 ] (Array.to_list w)

let () =
  Alcotest.run "dmp_workload"
    [
      ( "registry",
        [ Alcotest.test_case "contents" `Quick test_registry ] );
      ( "programs",
        [
          Alcotest.test_case "validate" `Quick test_programs_validate;
          Alcotest.test_case "halt" `Slow test_programs_halt;
          Alcotest.test_case "dynamic sizes" `Slow test_dynamic_sizes;
        ] );
      ( "inputs",
        [
          Alcotest.test_case "sets differ" `Quick test_input_sets_differ;
          Alcotest.test_case "deterministic" `Quick test_inputs_deterministic;
          Alcotest.test_case "distributions" `Quick
            test_input_gen_distributions;
        ] );
      ( "characteristics",
        [ Alcotest.test_case "MPKI spread" `Slow test_mpki_spread ] );
    ]
