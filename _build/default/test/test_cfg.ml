open Dmp_ir
open Dmp_cfg
module B = Build

let check = Alcotest.check
let reg = Reg.of_int

(* Diamond: 0 -> {1,2} -> 3(halt). *)
let diamond () =
  let f = B.func "d" in
  B.branch f Term.Ne (reg 4) (B.imm 0) ~target:"t" ();
  B.label f "f";
  B.nop f;
  B.jump f "j";
  B.label f "t";
  B.nop f;
  B.label f "j";
  B.halt f;
  B.finish f

(* Self loop: 0 -> 1 -> 1 | 2(halt). *)
let self_loop () =
  let f = B.func "l" in
  B.li f (reg 4) 5;
  B.label f "head";
  B.sub f (reg 4) (reg 4) (B.imm 1);
  B.branch f Term.Gt (reg 4) (B.imm 0) ~target:"head" ();
  B.label f "exit";
  B.halt f;
  B.finish f

let test_successors () =
  let cfg = Cfg.of_func (diamond ()) in
  check Alcotest.(list int) "entry succs" [ 2; 1 ]
    (Cfg.successor_blocks cfg 0);
  check Alcotest.(list int) "join preds sorted" [ 1; 2 ]
    (List.sort compare (Cfg.predecessors cfg 3));
  check Alcotest.(list int) "exits" [ 3 ] (Cfg.exits cfg)

let test_reverse_postorder () =
  let cfg = Cfg.of_func (diamond ()) in
  let rpo = Cfg.reverse_postorder cfg in
  check Alcotest.int "starts at entry" 0 (List.hd rpo);
  check Alcotest.int "all reachable" 4 (List.length rpo);
  (* join must come after both arms *)
  let pos x = ref (-1) |> fun r ->
    List.iteri (fun i b -> if b = x then r := i) rpo;
    !r
  in
  Alcotest.(check bool) "join last" true (pos 3 > pos 1 && pos 3 > pos 2)

let test_dominators () =
  let cfg = Cfg.of_func (diamond ()) in
  let dom = Dom.of_cfg cfg in
  check Alcotest.(option int) "idom of arm" (Some 0) (Dom.idom dom 1);
  check Alcotest.(option int) "idom of join" (Some 0) (Dom.idom dom 3);
  check Alcotest.bool "entry dominates all" true (Dom.dominates dom 0 3);
  check Alcotest.bool "arm does not dominate join" false
    (Dom.dominates dom 1 3);
  check Alcotest.bool "strict" false (Dom.strictly_dominates dom 3 3)

let test_postdominators () =
  let cfg = Cfg.of_func (diamond ()) in
  let pd = Postdom.of_cfg cfg in
  check Alcotest.(option int) "ipostdom of entry is join" (Some 3)
    (Postdom.ipostdom pd 0);
  check Alcotest.(option int) "ipostdom of arm" (Some 3)
    (Postdom.ipostdom pd 1);
  check Alcotest.(option int) "join has none" None (Postdom.ipostdom pd 3);
  check Alcotest.bool "join postdominates entry" true
    (Postdom.postdominates pd 3 0)

let test_postdom_two_returns () =
  (* Arms that return separately: no IPOSDOM for the branch block. *)
  let f = B.func "r" in
  B.branch f Term.Ne (reg 4) (B.imm 0) ~target:"a" ();
  B.label f "b";
  B.ret f;
  B.label f "a";
  B.ret f;
  let cfg = Cfg.of_func (B.finish f) in
  let pd = Postdom.of_cfg cfg in
  check Alcotest.(option int) "no ipostdom" None (Postdom.ipostdom pd 0)

let test_loops () =
  let cfg = Cfg.of_func (self_loop ()) in
  let loops = Loops.of_cfg cfg in
  check Alcotest.int "one loop" 1 (List.length loops);
  let l = List.hd loops in
  check Alcotest.int "header" 1 l.Loops.header;
  check Alcotest.(list int) "body" [ 1 ] l.Loops.body;
  check Alcotest.(list int) "exit branch" [ 1 ] l.Loops.exit_branches;
  match Loops.loop_of_branch loops 1 with
  | Some l' -> check Alcotest.int "lookup" l.Loops.header l'.Loops.header
  | None -> Alcotest.fail "exit branch not found"

let test_nested_loops () =
  let f = B.func "n" in
  B.li f (reg 4) 3;
  B.label f "outer";
  B.li f (reg 5) 3;
  B.label f "inner";
  B.sub f (reg 5) (reg 5) (B.imm 1);
  B.branch f Term.Gt (reg 5) (B.imm 0) ~target:"inner" ();
  B.label f "latch";
  B.sub f (reg 4) (reg 4) (B.imm 1);
  B.branch f Term.Gt (reg 4) (B.imm 0) ~target:"outer" ();
  B.label f "exit";
  B.halt f;
  let cfg = Cfg.of_func (B.finish f) in
  let loops = Loops.of_cfg cfg in
  check Alcotest.int "two loops" 2 (List.length loops);
  (* inner loop body strictly smaller *)
  let sizes =
    List.sort compare (List.map (fun l -> List.length l.Loops.body) loops)
  in
  check Alcotest.bool "nesting" true (List.hd sizes < List.nth sizes 1)

let test_liveness () =
  (* r4 live through the hammock (read at join), r5 dead after branch. *)
  let f = B.func "v" in
  B.read f (reg 4);
  B.read f (reg 5);
  B.branch f Term.Ne (reg 5) (B.imm 0) ~target:"t" ();
  B.label f "f";
  B.li f (reg 6) 1;
  B.jump f "j";
  B.label f "t";
  B.li f (reg 6) 2;
  B.label f "j";
  B.add f (reg 7) (reg 4) (B.reg (reg 6));
  B.write f (reg 7);
  B.halt f;
  let fn = B.finish f in
  let live = Live.of_func fn in
  check Alcotest.bool "r4 live into join" true
    (Live.is_live_in live ~block:3 ~reg:4);
  check Alcotest.bool "r6 live into join" true
    (Live.is_live_in live ~block:3 ~reg:6);
  check Alcotest.bool "r5 dead into arm" false
    (Live.is_live_in live ~block:1 ~reg:5);
  check Alcotest.bool "r4 live into arm" true
    (Live.is_live_in live ~block:1 ~reg:4)

let test_dot () =
  let s = Dot.of_cfg (Cfg.of_func (diamond ())) in
  check Alcotest.bool "digraph" true
    (String.length s > 0 && String.sub s 0 7 = "digraph")

(* ---------- property tests on random CFGs ---------- *)

let with_random_cfg n k =
  let st = Random.State.make [| n; 23 |] in
  let program = Helpers.random_program st ~nblocks:n in
  k (Cfg.of_func (Program.main_func program))

let qcheck_dominator_props =
  QCheck.Test.make ~name:"dominator invariants" ~count:80
    QCheck.(int_range 2 25)
    (fun n ->
      with_random_cfg n (fun cfg ->
          let dom = Dom.of_cfg cfg in
          let reach = Cfg.reachable cfg in
          let ok = ref true in
          for b = 0 to Cfg.num_nodes cfg - 1 do
            if reach.(b) then begin
              (* entry dominates every reachable node *)
              if not (Dom.dominates dom Cfg.entry b) then ok := false;
              (* idom strictly dominates *)
              match Dom.idom dom b with
              | Some d ->
                  if not (Dom.strictly_dominates dom d b) then ok := false
              | None -> if b <> Cfg.entry then ok := false
            end
          done;
          !ok))

let qcheck_postdom_props =
  QCheck.Test.make ~name:"postdominator invariants" ~count:80
    QCheck.(int_range 2 25)
    (fun n ->
      with_random_cfg n (fun cfg ->
          let pd = Postdom.of_cfg cfg in
          let ok = ref true in
          for b = 0 to Cfg.num_nodes cfg - 1 do
            match Postdom.ipostdom pd b with
            | Some d ->
                if d = b then ok := false;
                if not (Postdom.postdominates pd d b) then ok := false
            | None -> ()
          done;
          !ok))

let qcheck_loop_headers_dominate =
  QCheck.Test.make ~name:"loop headers dominate their bodies" ~count:80
    QCheck.(int_range 2 25)
    (fun n ->
      with_random_cfg n (fun cfg ->
          let dom = Dom.of_cfg cfg in
          List.for_all
            (fun l ->
              List.for_all
                (fun b -> Dom.dominates dom l.Loops.header b)
                l.Loops.body)
            (Loops.of_cfg cfg)))

let () =
  Alcotest.run "dmp_cfg"
    [
      ( "cfg",
        [
          Alcotest.test_case "successors" `Quick test_successors;
          Alcotest.test_case "reverse postorder" `Quick
            test_reverse_postorder;
          Alcotest.test_case "dot" `Quick test_dot;
        ] );
      ( "dominators",
        [
          Alcotest.test_case "diamond" `Quick test_dominators;
          Alcotest.test_case "postdominators" `Quick test_postdominators;
          Alcotest.test_case "two returns" `Quick test_postdom_two_returns;
        ] );
      ( "loops",
        [
          Alcotest.test_case "self loop" `Quick test_loops;
          Alcotest.test_case "nested" `Quick test_nested_loops;
        ] );
      ( "liveness", [ Alcotest.test_case "hammock" `Quick test_liveness ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_dominator_props;
          QCheck_alcotest.to_alcotest qcheck_postdom_props;
          QCheck_alcotest.to_alcotest qcheck_loop_headers_dominate;
        ] );
    ]
