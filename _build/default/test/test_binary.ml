(* Binary encode / decode / CFG-recovery tests. The strongest check is
   semantic: a program recovered from its own binary image must produce
   the same architectural behaviour (trace length and output) as the
   original on the same input. *)

open Dmp_ir
open Dmp_exec

let check = Alcotest.check

let behaviour program ~input =
  let linked = Linked.link program in
  let emu = Emulator.create linked ~input in
  let retired = Emulator.run emu in
  (retired, Emulator.output emu)

let round_trip program =
  let linked = Linked.link program in
  let image = Encode.encode linked in
  match Recover.program image with
  | Ok p -> p
  | Error m -> Alcotest.failf "recover failed: %s" m

let test_word_round_trip () =
  (* encode/decode individual words across the full instruction set *)
  let program = Helpers.ret_cfm_program ~iters:3 () in
  let linked = Linked.link program in
  let image = Encode.encode linked in
  Array.iteri
    (fun addr w ->
      let s = Encode.disassemble_word w in
      check Alcotest.bool
        (Printf.sprintf "word %d disassembles" addr)
        true
        (String.length s > 0))
    image.Encode.code;
  check Alcotest.int "one word per instruction" (Linked.size linked)
    (Array.length image.Encode.code)

let test_symbols () =
  let program = Helpers.ret_cfm_program ~iters:3 () in
  let linked = Linked.link program in
  let image = Encode.encode linked in
  check Alcotest.int "two symbols" 2 (List.length image.Encode.symbols);
  let name, entry, size = List.hd image.Encode.symbols in
  check Alcotest.string "main first" "main" name;
  check Alcotest.int "main entry" (Linked.entry_addr linked) entry;
  check Alcotest.bool "sizes positive" true (size > 0)

let test_semantic_equivalence () =
  List.iter
    (fun program ->
      let input = Helpers.uniform_input 600 in
      let recovered = round_trip program in
      check
        Alcotest.(pair int (list int))
        "same trace length and output"
        (behaviour program ~input)
        (behaviour recovered ~input))
    [
      Helpers.simple_hammock_program ~iters:500 ();
      Helpers.freq_hammock_program ~iters:500 ();
      Helpers.data_loop_program ~iters:500 ();
      Helpers.ret_cfm_program ~iters:500 ();
    ]

let test_workload_binaries_recover () =
  (* Every benchmark binary encodes and recovers to an equivalent
     program (checked on a truncated run for speed). *)
  List.iter
    (fun spec ->
      let program = Lazy.force spec.Dmp_workload.Spec.program in
      let input = spec.Dmp_workload.Spec.input Dmp_workload.Input_gen.Reduced in
      let recovered = round_trip program in
      let run p =
        let emu = Emulator.create (Linked.link p) ~input in
        let n = Emulator.run ~max_insts:50_000 emu in
        (n, Emulator.output emu)
      in
      check
        Alcotest.(pair int (list int))
        (spec.Dmp_workload.Spec.name ^ " equivalent")
        (run program) (run recovered))
    [
      Dmp_workload.Registry.find "gzip";
      Dmp_workload.Registry.find "gcc";
      Dmp_workload.Registry.find "twolf";
      Dmp_workload.Registry.find "go";
    ]

let test_selection_on_recovered_binary () =
  (* The full compiler pipeline works on a recovered binary: this is
     exactly the paper's flow (binary in, annotations out). *)
  let program = Helpers.freq_hammock_program () in
  let input = Helpers.uniform_input 2100 in
  let recovered = round_trip program in
  let linked = Linked.link recovered in
  let profile = Dmp_profile.Profile.collect linked ~input in
  let ann = Dmp_core.Select.run linked profile in
  check Alcotest.bool "diverge branches found on recovered binary" true
    (Dmp_core.Annotation.count ann > 0)

let qcheck_double_round_trip =
  QCheck.Test.make ~name:"recover is idempotent" ~count:20
    QCheck.(int_range 0 3)
    (fun i ->
      let program =
        match i with
        | 0 -> Helpers.simple_hammock_program ~iters:50 ()
        | 1 -> Helpers.freq_hammock_program ~iters:50 ()
        | 2 -> Helpers.data_loop_program ~iters:50 ()
        | _ -> Helpers.ret_cfm_program ~iters:50 ()
      in
      let once = round_trip program in
      let twice = round_trip once in
      (* recovered programs are already leader-normalised, so a second
         round trip is the identity on structure *)
      Program.size once = Program.size twice
      && Program.num_funcs once = Program.num_funcs twice)

let () =
  Alcotest.run "dmp_binary"
    [
      ( "encode",
        [
          Alcotest.test_case "word round trip" `Quick test_word_round_trip;
          Alcotest.test_case "symbols" `Quick test_symbols;
        ] );
      ( "recover",
        [
          Alcotest.test_case "semantic equivalence" `Quick
            test_semantic_equivalence;
          Alcotest.test_case "workload binaries" `Slow
            test_workload_binaries_recover;
          Alcotest.test_case "selection on recovered binary" `Quick
            test_selection_on_recovered_binary;
          QCheck_alcotest.to_alcotest qcheck_double_round_trip;
        ] );
    ]
