open Dmp_predictor

let check = Alcotest.check

(* ---------- History ---------- *)

let test_history () =
  let h = History.make 4 in
  let x = History.shift h History.empty ~taken:true in
  check Alcotest.bool "bit 0" true (History.bit h x 0);
  let x = History.shift h x ~taken:false in
  check Alcotest.bool "bit 0 now nt" false (History.bit h x 0);
  check Alcotest.bool "bit 1 taken" true (History.bit h x 1);
  (* length masking *)
  let x = ref History.empty in
  for _ = 1 to 10 do
    x := History.shift h !x ~taken:true
  done;
  check Alcotest.int "masked" 15 (History.fold h !x)

let train predictor outcomes =
  List.iter
    (fun (addr, taken) ->
      ignore (predictor.Predictor.predict ~addr);
      predictor.Predictor.update ~addr ~taken)
    outcomes

let accuracy predictor outcomes =
  let correct = ref 0 and total = ref 0 in
  List.iter
    (fun (addr, taken) ->
      if predictor.Predictor.predict ~addr = taken then incr correct;
      incr total;
      predictor.Predictor.update ~addr ~taken)
    outcomes;
  float_of_int !correct /. float_of_int !total

let biased_stream ~addr ~p ~n ~seed =
  let st = Random.State.make [| seed |] in
  List.init n (fun _ -> (addr, Random.State.float st 1. < p))

let alternating_stream ~addr ~n = List.init n (fun i -> (addr, i mod 2 = 0))

(* ---------- Perceptron ---------- *)

let test_perceptron_biased () =
  let p = Predictor.perceptron () in
  train p (biased_stream ~addr:100 ~p:0.9 ~n:500 ~seed:1);
  let acc = accuracy p (biased_stream ~addr:100 ~p:0.9 ~n:500 ~seed:2) in
  check Alcotest.bool "learns 90% bias" true (acc > 0.8)

let test_perceptron_alternating () =
  let p = Predictor.perceptron () in
  train p (alternating_stream ~addr:100 ~n:400);
  let acc = accuracy p (alternating_stream ~addr:100 ~n:400) in
  check Alcotest.bool "learns alternation" true (acc > 0.95)

let test_perceptron_speculative_no_mutation () =
  let p = Predictor.perceptron () in
  train p (biased_stream ~addr:4 ~p:0.7 ~n:200 ~seed:3);
  let h = p.Predictor.history () in
  let before = p.Predictor.predict ~addr:4 in
  (* speculative queries with a private history must not disturb state *)
  let h' = p.Predictor.shift_history ~history:h ~taken:false in
  ignore (p.Predictor.predict_with_history ~history:h' ~addr:4);
  ignore (p.Predictor.predict_with_history ~history:h' ~addr:8);
  check Alcotest.bool "prediction unchanged" before (p.Predictor.predict ~addr:4);
  check Alcotest.int "history unchanged" h (p.Predictor.history ())

(* ---------- Gshare ---------- *)

let test_gshare_biased () =
  (* short history so the bias is learnable from few samples *)
  let p = Predictor.gshare ~history_length:4 () in
  train p (biased_stream ~addr:100 ~p:0.95 ~n:500 ~seed:4);
  let acc = accuracy p (biased_stream ~addr:100 ~p:0.95 ~n:500 ~seed:5) in
  check Alcotest.bool "learns bias" true (acc > 0.85)

let test_gshare_alternating () =
  let p = Predictor.gshare () in
  train p (alternating_stream ~addr:64 ~n:600);
  let acc = accuracy p (alternating_stream ~addr:64 ~n:200) in
  check Alcotest.bool "history helps" true (acc > 0.9)

(* ---------- Confidence ---------- *)

let test_conf_easy_branch_high () =
  let c = Conf.create () in
  (* always correctly predicted: counters saturate -> high confidence *)
  for _ = 1 to 200 do
    Conf.update c ~addr:12 ~taken:true ~mispredicted:false
  done;
  check Alcotest.bool "high confidence" true
    (Conf.estimate c ~addr:12 = Conf.High_confidence)

let test_conf_hard_branch_low () =
  let c = Conf.create () in
  let st = Random.State.make [| 6 |] in
  let low = ref 0 in
  for _ = 1 to 500 do
    let taken = Random.State.bool st in
    if Conf.is_low (Conf.estimate c ~addr:12) then incr low;
    (* ~45% misprediction rate *)
    Conf.update c ~addr:12 ~taken ~mispredicted:(Random.State.float st 1. < 0.45)
  done;
  check Alcotest.bool "mostly low confidence" true (!low > 400)

let test_conf_moderate_branch_mixed () =
  (* With the saturating decrement, a 95%-correct branch reaches high
     confidence a meaningful fraction of the time. *)
  let c = Conf.create () in
  let st = Random.State.make [| 7 |] in
  let high = ref 0 in
  for _ = 1 to 2000 do
    if not (Conf.is_low (Conf.estimate c ~addr:12)) then incr high;
    Conf.update c ~addr:12 ~taken:true
      ~mispredicted:(Random.State.float st 1. < 0.05)
  done;
  check Alcotest.bool "sometimes high" true (!high > 500)

(* ---------- RAS ---------- *)

let test_ras () =
  let r = Ras.create ~size:4 () in
  check Alcotest.(option int) "empty pops None" None (Ras.pop r);
  Ras.push r 10;
  Ras.push r 20;
  check Alcotest.(option int) "lifo" (Some 20) (Ras.pop r);
  check Alcotest.(option int) "lifo2" (Some 10) (Ras.pop r);
  (* overflow wraps, dropping the oldest *)
  List.iter (Ras.push r) [ 1; 2; 3; 4; 5 ];
  check Alcotest.int "depth capped" 4 (Ras.depth r);
  check Alcotest.(option int) "newest first" (Some 5) (Ras.pop r);
  check Alcotest.(option int) "then 4" (Some 4) (Ras.pop r)

(* ---------- properties ---------- *)

let qcheck_predict_total =
  QCheck.Test.make ~name:"predictors total over addresses" ~count:200
    QCheck.(pair (int_range 0 1_000_000) bool)
    (fun (addr, taken) ->
      List.for_all
        (fun p ->
          ignore (p.Predictor.predict ~addr);
          p.Predictor.update ~addr ~taken;
          true)
        [ Predictor.perceptron (); Predictor.gshare ();
          Predictor.always ~taken:true ])

let qcheck_shift_history_pure =
  QCheck.Test.make ~name:"shift_history is pure" ~count:200
    QCheck.(pair (int_range 0 10000) bool)
    (fun (h, taken) ->
      let p = Predictor.perceptron () in
      let a = p.Predictor.shift_history ~history:h ~taken in
      let b = p.Predictor.shift_history ~history:h ~taken in
      a = b)

let () =
  Alcotest.run "dmp_predictor"
    [
      ("history", [ Alcotest.test_case "shift/bit/fold" `Quick test_history ]);
      ( "perceptron",
        [
          Alcotest.test_case "biased" `Quick test_perceptron_biased;
          Alcotest.test_case "alternating" `Quick
            test_perceptron_alternating;
          Alcotest.test_case "speculative queries pure" `Quick
            test_perceptron_speculative_no_mutation;
        ] );
      ( "gshare",
        [
          Alcotest.test_case "biased" `Quick test_gshare_biased;
          Alcotest.test_case "alternating" `Quick test_gshare_alternating;
        ] );
      ( "confidence",
        [
          Alcotest.test_case "easy -> high" `Quick
            test_conf_easy_branch_high;
          Alcotest.test_case "hard -> low" `Quick test_conf_hard_branch_low;
          Alcotest.test_case "moderate -> mixed" `Quick
            test_conf_moderate_branch_mixed;
        ] );
      ("ras", [ Alcotest.test_case "push/pop/overflow" `Quick test_ras ]);
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_predict_total;
          QCheck_alcotest.to_alcotest qcheck_shift_history_pure;
        ] );
    ]
