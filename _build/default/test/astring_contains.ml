(* Tiny substring check so the tests avoid an extra dependency. *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then true
  else
    let rec go i =
      if i + n > h then false
      else if String.sub haystack i n = needle then true
      else go (i + 1)
    in
    go 0
