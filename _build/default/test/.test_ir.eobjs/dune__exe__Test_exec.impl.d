test/test_exec.ml: Alcotest Build Dmp_exec Dmp_ir Emulator Event Helpers Linked Program QCheck QCheck_alcotest Random Reg Term
