test/helpers.ml: Array Build Dmp_ir Instr Printf Program Random Reg Term
