test/test_predictor.ml: Alcotest Conf Dmp_predictor History List Predictor QCheck QCheck_alcotest Random Ras
