test/test_ir.ml: Alcotest Array Asm Block Build Dmp_exec Dmp_ir Func Helpers Instr Linked List Program QCheck QCheck_alcotest Random Reg Term
