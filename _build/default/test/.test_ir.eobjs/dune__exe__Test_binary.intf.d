test/test_binary.mli:
