test/test_experiments.ml: Alcotest Astring_contains Dmp_core Dmp_experiments Dmp_workload Fig10 Fig5 Fig7 Input_gen List Registry Report Runner Table2 Variants
