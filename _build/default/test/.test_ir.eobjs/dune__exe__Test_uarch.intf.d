test/test_uarch.mli:
