test/test_uarch.ml: Alcotest Build Cache Config Dmp_core Dmp_exec Dmp_ir Dmp_profile Dmp_uarch Helpers Linked Program QCheck QCheck_alcotest Random Reg Sim Static_info Stats Term
