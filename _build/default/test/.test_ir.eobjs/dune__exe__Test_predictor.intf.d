test/test_predictor.mli:
