test/test_cfg.ml: Alcotest Array Build Cfg Dmp_cfg Dmp_ir Dom Dot Helpers List Live Loops Postdom Program QCheck QCheck_alcotest Random Reg String Term
