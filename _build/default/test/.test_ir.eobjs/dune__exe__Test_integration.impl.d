test/test_integration.ml: Alcotest Annotation Config Dmp_core Dmp_profile Dmp_uarch Dmp_workload Hashtbl Input_gen List Registry Select Sim Simple_select Spec Stats
