test/test_workload.ml: Alcotest Array Dmp_exec Dmp_ir Dmp_profile Dmp_workload Input_gen Lazy List Program Registry Spec
