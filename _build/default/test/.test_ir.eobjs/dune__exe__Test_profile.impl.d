test/test_profile.ml: Alcotest Array Block Build Dmp_cfg Dmp_exec Dmp_ir Dmp_profile Func Helpers Linked List Option Profile Program QCheck QCheck_alcotest Random Term Two_d
