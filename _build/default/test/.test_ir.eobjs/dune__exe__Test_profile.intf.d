test/test_profile.mli:
