test/test_binary.ml: Alcotest Array Dmp_core Dmp_exec Dmp_ir Dmp_profile Dmp_workload Emulator Encode Helpers Lazy Linked List Printf Program QCheck QCheck_alcotest Recover String
