open Dmp_ir
module B = Build

let check = Alcotest.check
let reg = Reg.of_int

(* ---------- Reg ---------- *)

let test_reg_bounds () =
  check Alcotest.int "zero is r0" 0 (Reg.to_int Reg.zero);
  check Alcotest.bool "valid" true (Reg.equal (Reg.of_int 5) (Reg.of_int 5));
  Alcotest.check_raises "negative" (Invalid_argument "Reg.of_int: out of range")
    (fun () -> ignore (Reg.of_int (-1)));
  Alcotest.check_raises "too large"
    (Invalid_argument "Reg.of_int: out of range") (fun () ->
      ignore (Reg.of_int Reg.count))

(* ---------- Instr ---------- *)

let test_eval_alu () =
  check Alcotest.int "add" 7 (Instr.eval_alu Instr.Add 3 4);
  check Alcotest.int "sub" (-1) (Instr.eval_alu Instr.Sub 3 4);
  check Alcotest.int "mul" 12 (Instr.eval_alu Instr.Mul 3 4);
  check Alcotest.int "div" 2 (Instr.eval_alu Instr.Div 9 4);
  check Alcotest.int "div0" 0 (Instr.eval_alu Instr.Div 9 0);
  check Alcotest.int "rem" 1 (Instr.eval_alu Instr.Rem 9 4);
  check Alcotest.int "rem0" 0 (Instr.eval_alu Instr.Rem 9 0);
  check Alcotest.int "slt" 1 (Instr.eval_alu Instr.Slt 3 4);
  check Alcotest.int "sge" 0 (Instr.eval_alu Instr.Slt 4 4);
  check Alcotest.int "min" 3 (Instr.eval_alu Instr.Min 3 4);
  check Alcotest.int "max" 4 (Instr.eval_alu Instr.Max 3 4);
  check Alcotest.int "shl" 12 (Instr.eval_alu Instr.Shl 3 2);
  check Alcotest.int "shr" 3 (Instr.eval_alu Instr.Shr 12 2)

let test_defs_uses () =
  let i =
    Instr.Alu { op = Instr.Add; dst = reg 3; src1 = reg 4;
                src2 = Instr.Reg (reg 5) }
  in
  check Alcotest.(list int) "defs" [ 3 ] (List.map Reg.to_int (Instr.defs i));
  check Alcotest.(list int) "uses" [ 4; 5 ]
    (List.map Reg.to_int (Instr.uses i));
  let z =
    Instr.Alu { op = Instr.Add; dst = Reg.zero; src1 = reg 4;
                src2 = Instr.Imm 1 }
  in
  check Alcotest.(list int) "writes to r0 discarded" []
    (List.map Reg.to_int (Instr.defs z));
  let st = Instr.Store { src = reg 2; base = reg 3; offset = 0 } in
  check Alcotest.(list int) "store defs" []
    (List.map Reg.to_int (Instr.defs st));
  check Alcotest.(list int) "store uses" [ 2; 3 ]
    (List.map Reg.to_int (Instr.uses st))

let test_alu_op_round_trip () =
  List.iter
    (fun op ->
      match Instr.alu_op_of_string (Instr.alu_op_to_string op) with
      | Some op' -> check Alcotest.bool "round trip" true (op = op')
      | None -> Alcotest.fail "no parse")
    [ Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Rem; Instr.And;
      Instr.Or; Instr.Xor; Instr.Shl; Instr.Shr; Instr.Slt; Instr.Sle;
      Instr.Seq; Instr.Sne; Instr.Min; Instr.Max ]

(* ---------- Term ---------- *)

let test_cond_eval () =
  check Alcotest.bool "eq" true (Term.eval_cond Term.Eq 3 3);
  check Alcotest.bool "ne" true (Term.eval_cond Term.Ne 3 4);
  check Alcotest.bool "lt" true (Term.eval_cond Term.Lt 3 4);
  check Alcotest.bool "ge" false (Term.eval_cond Term.Ge 3 4);
  check Alcotest.bool "le" true (Term.eval_cond Term.Le 4 4);
  check Alcotest.bool "gt" false (Term.eval_cond Term.Gt 4 4)

let test_negate_cond () =
  List.iter
    (fun c ->
      check Alcotest.bool "involutive" true
        (Term.negate_cond (Term.negate_cond c) = c);
      for a = -2 to 2 do
        for b = -2 to 2 do
          check Alcotest.bool "negation flips outcome"
            (not (Term.eval_cond c a b))
            (Term.eval_cond (Term.negate_cond c) a b)
        done
      done)
    [ Term.Eq; Term.Ne; Term.Lt; Term.Ge; Term.Le; Term.Gt ]

(* ---------- Build ---------- *)

let test_build_fallthrough () =
  let f = B.func "t" in
  B.li f (reg 4) 1;
  B.label f "next";
  B.li f (reg 4) 2;
  B.halt f;
  let fn = B.finish f in
  check Alcotest.int "two blocks" 2 (Func.num_blocks fn);
  match (Func.block fn 0).Block.term with
  | Term.Jump 1 -> ()
  | _ -> Alcotest.fail "expected fall-through jump to block 1"

let test_build_branch_default_fall () =
  let f = B.func "t" in
  B.branch f Term.Ne (reg 4) (B.imm 0) ~target:"t1" ();
  B.label f "f1";
  B.halt f;
  B.label f "t1";
  B.halt f;
  let fn = B.finish f in
  match (Func.block fn 0).Block.term with
  | Term.Branch { target; fall; _ } ->
      check Alcotest.int "target resolves" 2 target;
      check Alcotest.int "fall is next block" 1 fall
  | _ -> Alcotest.fail "expected branch"

let test_build_errors () =
  (* duplicate label *)
  let f = B.func "t" in
  B.halt f;
  B.label f "x";
  B.halt f;
  (try
     B.label f "x";
     B.halt f;
     ignore (B.finish f);
     Alcotest.fail "expected duplicate label error"
   with Invalid_argument _ -> ());
  (* unknown label *)
  let f = B.func "t" in
  B.jump f "nowhere";
  (try
     ignore (B.finish f);
     Alcotest.fail "expected unknown label error"
   with Invalid_argument _ -> ());
  (* trailing fallthrough *)
  let f = B.func "t" in
  B.li f (reg 4) 1;
  try
    ignore (B.finish f);
    Alcotest.fail "expected trailing fall-through error"
  with Invalid_argument _ -> ()

(* ---------- Program / Linked ---------- *)

let test_program_validation () =
  let ok = Helpers.simple_hammock_program () in
  check Alcotest.bool "valid" true (Program.validate ok = Ok ());
  let f = B.func "main" in
  B.call f "missing";
  B.halt f;
  match Program.of_funcs ~main:"main" [ B.finish f ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown-callee error"

let test_linked_addresses () =
  let program = Helpers.simple_hammock_program () in
  let linked = Linked.link program in
  check Alcotest.int "dense addresses" (Program.size program)
    (Linked.size linked);
  for a = 0 to Linked.size linked - 1 do
    check Alcotest.int "addr field" a (Linked.loc linked a).Linked.addr
  done;
  (* branch targets point at block starts *)
  Linked.iter_branches linked (fun l ->
      match Linked.branch_targets linked l with
      | Some (t, fall) ->
          check Alcotest.int "taken target is block start" 0
            (Linked.loc linked t).Linked.pos;
          check Alcotest.int "fall target is block start" 0
            (Linked.loc linked fall).Linked.pos
      | None -> Alcotest.fail "branch without targets")

let test_linked_entry () =
  let program = Helpers.ret_cfm_program () in
  let linked = Linked.link program in
  let main_idx = Linked.func_of_name linked "main" in
  check Alcotest.int "entry addr" (Linked.func_entry linked main_idx)
    (Linked.entry_addr linked)

(* ---------- Asm round trip ---------- *)

let program_equal (a : Program.t) (b : Program.t) =
  Program.num_funcs a = Program.num_funcs b
  && Array.for_all2
       (fun (fa : Func.t) (fb : Func.t) ->
         fa.Func.name = fb.Func.name && fa.Func.blocks = fb.Func.blocks)
       a.Program.funcs b.Program.funcs

let test_asm_round_trip () =
  List.iter
    (fun program ->
      let text = Asm.to_string program in
      match Asm.of_string_res text with
      | Ok program' ->
          check Alcotest.bool "round trip preserves structure" true
            (program_equal program program')
      | Error m -> Alcotest.failf "parse failed: %s\n%s" m text)
    [
      Helpers.simple_hammock_program ();
      Helpers.freq_hammock_program ();
      Helpers.data_loop_program ();
      Helpers.ret_cfm_program ();
    ]

let test_asm_parse_errors () =
  List.iter
    (fun (text, what) ->
      match Asm.of_string_res text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected error: %s" what)
    [
      ("func f {\nentry:\n  bogus r1\n  halt\n}", "unknown mnemonic");
      ("func f {\nentry:\n  li r99, 1\n  halt\n}", "bad register");
      ("entry:\n  halt", "statement outside func");
      ("func f {\nentry:\n  halt\n", "missing brace");
      ("func f {\nentry:\n  jmp nowhere\n}", "unknown label");
    ]

let test_asm_comments_and_whitespace () =
  let text =
    "; a program\nfunc main {\nentry:   \n  li r4, 7 ; seven\n\n       write r4\n  halt\n}\n"
  in
  match Asm.of_string_res text with
  | Ok p ->
      let linked = Linked.link p in
      let emu = Dmp_exec.Emulator.create linked ~input:[||] in
      ignore (Dmp_exec.Emulator.run emu);
      check Alcotest.(list int) "runs" [ 7 ] (Dmp_exec.Emulator.output emu)
  | Error m -> Alcotest.fail m

let qcheck_asm_round_trip_random =
  QCheck.Test.make ~name:"asm round trip on random programs" ~count:60
    QCheck.(int_range 2 18)
    (fun n ->
      let st = Random.State.make [| n; 47 |] in
      let program = Helpers.random_program st ~nblocks:n in
      match Asm.of_string_res (Asm.to_string program) with
      | Ok program' -> program_equal program program'
      | Error _ -> false)

(* ---------- qcheck properties ---------- *)

let qcheck_eval_total =
  QCheck.Test.make ~name:"eval_alu total" ~count:500
    QCheck.(triple (int_range 0 15) int int)
    (fun (opi, a, b) ->
      let ops =
        [| Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Rem; Instr.And;
           Instr.Or; Instr.Xor; Instr.Shl; Instr.Shr; Instr.Slt; Instr.Sle;
           Instr.Seq; Instr.Sne; Instr.Min; Instr.Max |]
      in
      ignore (Instr.eval_alu ops.(opi) a b);
      true)

let qcheck_random_programs_validate =
  QCheck.Test.make ~name:"random programs validate" ~count:100
    QCheck.(int_range 1 20)
    (fun n ->
      let st = Random.State.make [| n; 17 |] in
      let program = Helpers.random_program st ~nblocks:n in
      Program.validate program = Ok ()
      && Linked.size (Linked.link program) = Program.size program)

let () =
  Alcotest.run "dmp_ir"
    [
      ( "reg",
        [ Alcotest.test_case "bounds" `Quick test_reg_bounds ] );
      ( "instr",
        [
          Alcotest.test_case "eval_alu" `Quick test_eval_alu;
          Alcotest.test_case "defs/uses" `Quick test_defs_uses;
          Alcotest.test_case "alu_op round trip" `Quick
            test_alu_op_round_trip;
        ] );
      ( "term",
        [
          Alcotest.test_case "cond eval" `Quick test_cond_eval;
          Alcotest.test_case "negate" `Quick test_negate_cond;
        ] );
      ( "build",
        [
          Alcotest.test_case "fallthrough" `Quick test_build_fallthrough;
          Alcotest.test_case "default fall" `Quick
            test_build_branch_default_fall;
          Alcotest.test_case "errors" `Quick test_build_errors;
        ] );
      ( "program",
        [
          Alcotest.test_case "validation" `Quick test_program_validation;
          Alcotest.test_case "linked addresses" `Quick test_linked_addresses;
          Alcotest.test_case "entry" `Quick test_linked_entry;
        ] );
      ( "asm",
        [
          Alcotest.test_case "round trip" `Quick test_asm_round_trip;
          Alcotest.test_case "parse errors" `Quick test_asm_parse_errors;
          Alcotest.test_case "comments" `Quick test_asm_comments_and_whitespace;
          QCheck_alcotest.to_alcotest qcheck_asm_round_trip_random;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_eval_total;
          QCheck_alcotest.to_alcotest qcheck_random_programs_validate;
        ] );
    ]
