type t = {
  mutable cycles : int;
  mutable retired : int;
  mutable cond_branches : int;
  mutable mispredictions : int;
  mutable flushes : int;
  mutable low_confidence : int;
  mutable low_confidence_mispredicted : int;
  (* DMP counters. *)
  mutable dpred_entries : int;
  mutable dpred_hammock_entries : int;
  mutable dpred_loop_entries : int;
  mutable dpred_merges : int;
  mutable dpred_resolved_before_merge : int;
  mutable dpred_flushes_avoided : int;
  mutable dpred_useless_entries : int;
  mutable select_uops : int;
  mutable wrong_side_insts : int;
  mutable loop_early_exits : int;
  mutable loop_late_exits : int;
  mutable loop_no_exits : int;
  mutable loop_correct : int;
  mutable loop_extra_insts : int;
  (* Cycle breakdown. *)
  mutable dpred_cycles : int;
  mutable recovery_cycles : int;
  mutable rob_full_cycles : int;
  (* Dynamic merge-point predictor (Config.Dynamic provider). *)
  mutable mpp_lookups : int;
  mutable mpp_predicted : int;
  mutable mpp_warmup_retired : int;
}

let create () =
  {
    cycles = 0;
    retired = 0;
    cond_branches = 0;
    mispredictions = 0;
    flushes = 0;
    low_confidence = 0;
    low_confidence_mispredicted = 0;
    dpred_entries = 0;
    dpred_hammock_entries = 0;
    dpred_loop_entries = 0;
    dpred_merges = 0;
    dpred_resolved_before_merge = 0;
    dpred_flushes_avoided = 0;
    dpred_useless_entries = 0;
    select_uops = 0;
    wrong_side_insts = 0;
    loop_early_exits = 0;
    loop_late_exits = 0;
    loop_no_exits = 0;
    loop_correct = 0;
    loop_extra_insts = 0;
    dpred_cycles = 0;
    recovery_cycles = 0;
    rob_full_cycles = 0;
    mpp_lookups = 0;
    mpp_predicted = 0;
    mpp_warmup_retired = 0;
  }

let fields t =
  [
    ("cycles", t.cycles);
    ("retired", t.retired);
    ("cond_branches", t.cond_branches);
    ("mispredictions", t.mispredictions);
    ("flushes", t.flushes);
    ("low_confidence", t.low_confidence);
    ("low_confidence_mispredicted", t.low_confidence_mispredicted);
    ("dpred_entries", t.dpred_entries);
    ("dpred_hammock_entries", t.dpred_hammock_entries);
    ("dpred_loop_entries", t.dpred_loop_entries);
    ("dpred_merges", t.dpred_merges);
    ("dpred_resolved_before_merge", t.dpred_resolved_before_merge);
    ("dpred_flushes_avoided", t.dpred_flushes_avoided);
    ("dpred_useless_entries", t.dpred_useless_entries);
    ("select_uops", t.select_uops);
    ("wrong_side_insts", t.wrong_side_insts);
    ("loop_early_exits", t.loop_early_exits);
    ("loop_late_exits", t.loop_late_exits);
    ("loop_no_exits", t.loop_no_exits);
    ("loop_correct", t.loop_correct);
    ("loop_extra_insts", t.loop_extra_insts);
    ("dpred_cycles", t.dpred_cycles);
    ("recovery_cycles", t.recovery_cycles);
    ("rob_full_cycles", t.rob_full_cycles);
    ("mpp_lookups", t.mpp_lookups);
    ("mpp_predicted", t.mpp_predicted);
    ("mpp_warmup_retired", t.mpp_warmup_retired);
  ]

let map2 f a b =
  {
    cycles = f a.cycles b.cycles;
    retired = f a.retired b.retired;
    cond_branches = f a.cond_branches b.cond_branches;
    mispredictions = f a.mispredictions b.mispredictions;
    flushes = f a.flushes b.flushes;
    low_confidence = f a.low_confidence b.low_confidence;
    low_confidence_mispredicted =
      f a.low_confidence_mispredicted b.low_confidence_mispredicted;
    dpred_entries = f a.dpred_entries b.dpred_entries;
    dpred_hammock_entries = f a.dpred_hammock_entries b.dpred_hammock_entries;
    dpred_loop_entries = f a.dpred_loop_entries b.dpred_loop_entries;
    dpred_merges = f a.dpred_merges b.dpred_merges;
    dpred_resolved_before_merge =
      f a.dpred_resolved_before_merge b.dpred_resolved_before_merge;
    dpred_flushes_avoided = f a.dpred_flushes_avoided b.dpred_flushes_avoided;
    dpred_useless_entries = f a.dpred_useless_entries b.dpred_useless_entries;
    select_uops = f a.select_uops b.select_uops;
    wrong_side_insts = f a.wrong_side_insts b.wrong_side_insts;
    loop_early_exits = f a.loop_early_exits b.loop_early_exits;
    loop_late_exits = f a.loop_late_exits b.loop_late_exits;
    loop_no_exits = f a.loop_no_exits b.loop_no_exits;
    loop_correct = f a.loop_correct b.loop_correct;
    loop_extra_insts = f a.loop_extra_insts b.loop_extra_insts;
    dpred_cycles = f a.dpred_cycles b.dpred_cycles;
    recovery_cycles = f a.recovery_cycles b.recovery_cycles;
    rob_full_cycles = f a.rob_full_cycles b.rob_full_cycles;
    mpp_lookups = f a.mpp_lookups b.mpp_lookups;
    mpp_predicted = f a.mpp_predicted b.mpp_predicted;
    mpp_warmup_retired = f a.mpp_warmup_retired b.mpp_warmup_retired;
  }

let merge a b = map2 ( + ) a b
let diff a b = map2 ( - ) a b
let copy t = map2 (fun v _ -> v) t t

let scale_round factor t =
  map2 (fun v _ -> int_of_float (Float.round (float_of_int v *. factor))) t t

let to_array t = Array.of_list (List.map snd (fields t))
let equal a b = to_array a = to_array b

let load t values =
  if Array.length values <> List.length (fields t) then
    invalid_arg "Stats.load: field count mismatch";
  t.cycles <- values.(0);
  t.retired <- values.(1);
  t.cond_branches <- values.(2);
  t.mispredictions <- values.(3);
  t.flushes <- values.(4);
  t.low_confidence <- values.(5);
  t.low_confidence_mispredicted <- values.(6);
  t.dpred_entries <- values.(7);
  t.dpred_hammock_entries <- values.(8);
  t.dpred_loop_entries <- values.(9);
  t.dpred_merges <- values.(10);
  t.dpred_resolved_before_merge <- values.(11);
  t.dpred_flushes_avoided <- values.(12);
  t.dpred_useless_entries <- values.(13);
  t.select_uops <- values.(14);
  t.wrong_side_insts <- values.(15);
  t.loop_early_exits <- values.(16);
  t.loop_late_exits <- values.(17);
  t.loop_no_exits <- values.(18);
  t.loop_correct <- values.(19);
  t.loop_extra_insts <- values.(20);
  t.dpred_cycles <- values.(21);
  t.recovery_cycles <- values.(22);
  t.rob_full_cycles <- values.(23);
  t.mpp_lookups <- values.(24);
  t.mpp_predicted <- values.(25);
  t.mpp_warmup_retired <- values.(26)

let ipc t =
  if t.cycles = 0 then 0. else float_of_int t.retired /. float_of_int t.cycles

let mpki t =
  if t.retired = 0 then 0.
  else float_of_int t.mispredictions *. 1000. /. float_of_int t.retired

let flushes_per_ki t =
  if t.retired = 0 then 0.
  else float_of_int t.flushes *. 1000. /. float_of_int t.retired

let confidence_pvn t =
  if t.low_confidence = 0 then 0.
  else
    float_of_int t.low_confidence_mispredicted
    /. float_of_int t.low_confidence

let pp ppf t =
  Fmt.pf ppf
    "@[<v>cycles=%d retired=%d ipc=%.3f@,\
     branches=%d mispredicted=%d (mpki %.2f) flushes=%d@,\
     dpred: entries=%d (hammock %d, loop %d) merges=%d resolved-first=%d@,\
     flushes-avoided=%d useless=%d selects=%d wrong-side=%d@,\
     loop: correct=%d early=%d late=%d no-exit=%d extra-insts=%d@]"
    t.cycles t.retired (ipc t) t.cond_branches t.mispredictions (mpki t)
    t.flushes t.dpred_entries t.dpred_hammock_entries t.dpred_loop_entries
    t.dpred_merges t.dpred_resolved_before_merge t.dpred_flushes_avoided
    t.dpred_useless_entries t.select_uops t.wrong_side_insts t.loop_correct
    t.loop_early_exits t.loop_late_exits t.loop_no_exits t.loop_extra_insts;
  Fmt.pf ppf "@,cycles: dpred=%d recovery=%d rob-full=%d" t.dpred_cycles
    t.recovery_cycles t.rob_full_cycles
