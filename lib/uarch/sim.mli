(** Cycle-level execution-driven simulator of the baseline processor
    and the diverge-merge processor.

    The correct path comes from the architectural emulator's event
    stream; wrong-path and dynamically-predicated wrong-side fetch walk
    the static code under the branch predictor with a speculative
    history copy. Timing comes from a dataflow model (dispatch
    [front_depth] cycles after fetch; start when source registers are
    ready; loads ask the cache hierarchy) with in-order retirement
    through a reorder buffer.

    With [config.dmp_enabled] and an annotation, fetching a
    low-confidence (or always-predicate) diverge branch enters
    dpred-mode: both paths are fetched in alternate cycles until they
    reach the same CFM point (select-µops are then inserted) or the
    branch resolves — either way without a pipeline flush. Loop diverge
    branches use the iteration-oriented mechanism with the paper's
    correct / early-exit / late-exit / no-exit cases.

    The correct path is supplied three ways with bit-identical
    statistics: a live emulator ({!create}), a packed-trace cursor
    ({!create_replay}), or a pre-decoded {!Dmp_exec.Image.t}
    ({!create_image}). The image path runs a specialised fetch loop
    over the image's flat buffers — the fastest of the three; the
    experiment sweep uses it for every simulation of a cached trace. *)

open Dmp_ir
open Dmp_exec
open Dmp_core

type t

val create :
  ?config:Config.t -> ?annotation:Annotation.t -> ?max_insts:int ->
  Linked.t -> input:int array -> t
(** Execution-driven: the correct path is supplied by a live emulator
    over [input]. *)

val create_replay :
  ?config:Config.t -> ?annotation:Annotation.t -> ?max_insts:int ->
  Linked.t -> Trace.t -> t
(** Trace-driven: the correct path is replayed from a packed trace of
    the same linked program, producing statistics identical to
    {!create} over the input the trace was captured from. The trace
    must cover [max_insts] instructions (i.e. be captured with the same
    or a larger cap, or be {!Trace.complete}); the replay hot path does
    not allocate per event. *)

val create_image :
  ?config:Config.t -> ?annotation:Annotation.t -> ?max_insts:int ->
  Linked.t -> Image.t -> t
(** Trace-driven from a pre-decoded image of a trace of the same linked
    program; statistics are identical to {!create_replay} over the
    trace the image was decoded from. The per-event cost is plain array
    indexing: decode the trace once with {!Image.of_trace}, then share
    the image across every simulation of that (benchmark, input) pair.
    @raise Invalid_argument if the image contains an address outside
    the linked program (it was decoded from some other program's
    trace). *)

val run_to_completion : t -> Stats.t

val run :
  ?config:Config.t -> ?annotation:Annotation.t -> ?max_insts:int ->
  Linked.t -> input:int array -> Stats.t
(** Convenience: [create] + [run_to_completion]. *)

val run_replay :
  ?config:Config.t -> ?annotation:Annotation.t -> ?max_insts:int ->
  Linked.t -> Trace.t -> Stats.t
(** Convenience: [create_replay] + [run_to_completion]. *)

val run_image :
  ?config:Config.t -> ?annotation:Annotation.t -> ?max_insts:int ->
  Linked.t -> Image.t -> Stats.t
(** Convenience: [create_image] + [run_to_completion]. *)

val stats : t -> Stats.t
