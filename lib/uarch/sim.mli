(** Cycle-level execution-driven simulator of the baseline processor
    and the diverge-merge processor.

    The correct path comes from the architectural emulator's event
    stream; wrong-path and dynamically-predicated wrong-side fetch walk
    the static code under the branch predictor with a speculative
    history copy. Timing comes from a dataflow model (dispatch
    [front_depth] cycles after fetch; start when source registers are
    ready; loads ask the cache hierarchy) with in-order retirement
    through a reorder buffer.

    With [config.dmp_enabled] and an annotation, fetching a
    low-confidence (or always-predicate) diverge branch enters
    dpred-mode: both paths are fetched in alternate cycles until they
    reach the same CFM point (select-µops are then inserted) or the
    branch resolves — either way without a pipeline flush. Loop diverge
    branches use the iteration-oriented mechanism with the paper's
    correct / early-exit / late-exit / no-exit cases.

    The correct path is supplied three ways with bit-identical
    statistics: a live emulator ({!create}), a packed-trace cursor
    ({!create_replay}), or a pre-decoded {!Dmp_exec.Image.t}
    ({!create_image}). The image path runs a specialised fetch loop
    over the image's flat buffers — the fastest of the three; the
    experiment sweep uses it for every simulation of a cached trace. *)

open Dmp_ir
open Dmp_exec
open Dmp_core

type t

val create :
  ?config:Config.t -> ?annotation:Annotation.t -> ?max_insts:int ->
  Linked.t -> input:int array -> t
(** Execution-driven: the correct path is supplied by a live emulator
    over [input]. *)

val create_replay :
  ?config:Config.t -> ?annotation:Annotation.t -> ?max_insts:int ->
  Linked.t -> Trace.t -> t
(** Trace-driven: the correct path is replayed from a packed trace of
    the same linked program, producing statistics identical to
    {!create} over the input the trace was captured from. The trace
    must cover [max_insts] instructions (i.e. be captured with the same
    or a larger cap, or be {!Trace.complete}); the replay hot path does
    not allocate per event. *)

val create_image :
  ?config:Config.t -> ?annotation:Annotation.t -> ?max_insts:int ->
  Linked.t -> Image.t -> t
(** Trace-driven from a pre-decoded image of a trace of the same linked
    program; statistics are identical to {!create_replay} over the
    trace the image was decoded from. The per-event cost is plain array
    indexing: decode the trace once with {!Image.of_trace}, then share
    the image across every simulation of that (benchmark, input) pair.
    @raise Invalid_argument if the image contains an address outside
    the linked program (it was decoded from some other program's
    trace). *)

val run_to_completion : t -> Stats.t

val run :
  ?config:Config.t -> ?annotation:Annotation.t -> ?max_insts:int ->
  Linked.t -> input:int array -> Stats.t
(** Convenience: [create] + [run_to_completion]. *)

val run_replay :
  ?config:Config.t -> ?annotation:Annotation.t -> ?max_insts:int ->
  Linked.t -> Trace.t -> Stats.t
(** Convenience: [create_replay] + [run_to_completion]. *)

val run_image :
  ?config:Config.t -> ?annotation:Annotation.t -> ?max_insts:int ->
  Linked.t -> Image.t -> Stats.t
(** Convenience: [create_image] + [run_to_completion]. *)

val stats : t -> Stats.t

val merge_predictions : t -> (int * int * int) list
(** Under a [Config.Dynamic] merge provider, the Merge Point Table's
    current (branch, merge, confidence) entries
    ({!Dmp_mpp.Mpt.predictions}); [[]] under the static provider. The
    invariant checker validates each predicted merge point against the
    true CFG. *)

val run_image_fused :
  ?config:Config.t -> ?max_insts:int -> Linked.t -> Image.t ->
  (Annotation.t option * Dmp_exec.Checkpoint.t option) list -> Stats.t list
(** Fused multi-annotation sweep: advance one simulator lane per list
    element in lock-step strides of consumed events over a single
    shared image pass. Every lane owns its complete microarchitectural
    state (predictor, confidence estimator, caches, ROB, statistics);
    the image buffers, linked program and one shared [Static_info]
    table are read-only, so each lane executes exactly the cycle
    sequence of its solo run. Lane [i]'s statistics are byte-identical
    to [run_image ?config ~annotation linked image] — or, when a
    checkpoint is given, to [resume_image] over that checkpoint
    followed by [run_to_completion]. The fusion pays the per-event
    image traffic once per stride for all lanes instead of once per
    annotation.

    Checkpoint contract (what the runner's prefix-elision planner
    guarantees): a lane's checkpoint must have been captured over the
    same image, configuration and [max_insts] by a run whose behaviour
    matches the lane's own up to the capture point — e.g. an
    annotation-free run, provided no diverge branch of the lane's
    compiled annotation occurs in the image before
    [Checkpoint.consumed]; only then is the resumed lane's tail (and
    hence its statistics) identical to its from-scratch run.
    @raise Invalid_argument on an image/configuration mismatch, as
    {!create_image} / {!resume_image}. *)

(** {2 Checkpoints}

    A checkpoint ({!Dmp_exec.Checkpoint}) snapshots the full machine
    state — trace position, pipeline timing, statistics, branch
    predictor and confidence tables, cache contents — at a {e safe
    point}: a cycle boundary in normal mode with no dpred episode and
    no misprediction recovery in flight. Episodes are bounded, so safe
    boundaries recur; restricting capture to them keeps the episode
    state machines out of the snapshot. Only image-supplied simulations
    are checkpointable (the image makes the trace position
    restorable). *)

val checkpoint : t -> Dmp_exec.Checkpoint.t
(** Snapshot the current state.
    @raise Invalid_argument unless the simulation uses an image supply
    and sits at a safe point. *)

val resume_image :
  ?config:Config.t -> ?annotation:Annotation.t -> ?max_insts:int ->
  Linked.t -> Image.t -> Dmp_exec.Checkpoint.t -> t
(** Rebuild a simulation from a checkpoint over the same image, linked
    program, configuration and annotation as the run that captured it;
    [run_to_completion] on the result reproduces the original run's
    final statistics byte-identically (the round-trip property).
    @raise Invalid_argument when the checkpoint's shape fingerprints
    (image length, ROB size, register count) do not match. *)

val run_image_checkpointed :
  ?config:Config.t -> ?annotation:Annotation.t -> ?max_insts:int ->
  interval:int -> Linked.t -> Image.t -> Stats.t * Dmp_exec.Checkpoint.t list
(** Like {!run_image}, additionally capturing a checkpoint at the first
    safe cycle boundary at or after every multiple of [interval]
    consumed events (while the trace is live). The statistics are
    byte-identical to {!run_image}'s; the checkpoints split the run
    into [1 + length ckpts] segments. *)

val run_image_segment :
  ?config:Config.t -> ?annotation:Annotation.t -> ?max_insts:int ->
  ?from:Dmp_exec.Checkpoint.t -> interval:int -> to_completion:bool ->
  Linked.t -> Image.t -> Stats.t
(** Exactly re-simulate one segment of a checkpointed run: start from
    [from] (or from the beginning) and stop where the capturing run
    with the same [interval] took its next checkpoint — or run to the
    end when [to_completion] is set (the last segment). Returns the
    segment's {e delta} statistics; folding every segment's delta with
    {!Stats.merge} reproduces the whole-run statistics exactly. *)

val run_image_sampled :
  ?config:Config.t -> ?annotation:Annotation.t -> ?max_insts:int ->
  ?from:Dmp_exec.Checkpoint.t -> length:int -> warmup:int -> window:int ->
  Linked.t -> Image.t -> Stats.t
(** Interval sampling: estimate the statistics of a [length]-event
    segment starting at [from] by simulating only a [warmup] prefix
    (timing warm-up; discarded) and a [window] measurement, then
    scaling the measured counters by [length/window]. The architectural
    state (trace position, predictor, confidence, caches) is restored
    exactly from the checkpoint — those tables are a function of the
    consumed event prefix only, hence valid for {e any} annotation —
    while the pipeline timing starts cold. Segments no longer than
    [warmup + window] are simulated in full instead of scaled. *)
