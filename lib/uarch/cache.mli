(** Set-associative LRU caches and a two-level + memory hierarchy. *)

type t

val create : log2_sets:int -> ways:int -> line_bytes:int -> t

val access : t -> int -> bool
(** Touch the line containing the byte address; true on hit. *)

val miss_rate : t -> float

val export : t -> int array
(** Flat snapshot of the mutable state (hit counters + per-set LRU tag
    lists), suitable for a {!Dmp_exec.Checkpoint} section. *)

val import : t -> int array -> unit
(** Restore an {!export} snapshot into an identically configured cache.
    @raise Invalid_argument on a geometry or length mismatch. *)

type hierarchy = {
  l1 : t;
  l2 : t;
  l1_hit_latency : int;
  l2_hit_latency : int;
  memory_latency : int;
}

val hierarchy : Config.t -> hierarchy

val load_latency : hierarchy -> int -> int
(** Latency of a load to the given address, updating cache state. *)

val store : hierarchy -> int -> unit
