(** Machine configuration, following Table 1 of the paper. [baseline]
    is the aggressive 8-wide processor; [dmp] is the same machine with
    DMP support enabled. *)

type merge_provider =
  | Static  (** diverge decisions consult the compiled annotation table *)
  | Dynamic of Dmp_mpp.Mpt.config
      (** diverge decisions consult an online Merge Point Table trained
          from retired control flow (TR-HPS-2020-001); any compiled
          annotation is ignored *)

type t = {
  fetch_width : int;
  max_branches_per_cycle : int;
  front_depth : int;
  rob_size : int;
  retire_width : int;
  int_latency : int;
  mul_latency : int;
  div_latency : int;
  l1_log2_sets : int;
  l1_ways : int;
  l1_hit_latency : int;
  l2_log2_sets : int;
  l2_ways : int;
  l2_hit_latency : int;
  line_bytes : int;
  memory_latency : int;
  store_latency : int;
  predictor : string;
  ras_size : int;
  conf_log2_entries : int;
  conf_history_length : int;
  conf_threshold : int;
  dmp_enabled : bool;
  num_cfm_registers : int;
  select_uop_latency : int;
  max_walk_insts : int;
  max_loop_extra_iterations : int;
  merge_provider : merge_provider;
}

val baseline : t
val dmp : t

val dmp_dynamic : Dmp_mpp.Mpt.config -> t
(** The DMP machine with the static annotation table replaced by a
    dynamic merge-point predictor of the given geometry. *)

val min_misp_penalty : t -> int
(** Front-end depth plus redirect plus execute latency (25 cycles with
    the default configuration, as in Table 1). *)

val pp : t Fmt.t

val describe_table1 : t -> (string * string) list
(** (section, description) rows mirroring Table 1. *)
