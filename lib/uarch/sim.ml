(* Cycle-level execution-driven simulator of the baseline processor and
   the diverge-merge processor (DMP).

   The correct path comes from the architectural emulator's event
   stream; wrong-path and dynamically-predicated wrong-side fetch walk
   the static code under the branch predictor with a speculative history
   copy. Timing comes from a dataflow model: every fetched instruction
   dispatches [front_depth] cycles after fetch, starts when its source
   registers are ready, and completes after its latency (loads ask the
   cache hierarchy). Retirement is in-order through a reorder buffer;
   fetch stalls when the ROB is full.

   The correct path is supplied three ways with bit-identical results:
   a live emulator or a packed-trace cursor (both behind [Source.t]),
   or a pre-decoded [Image.t], for which [fetch_image_cycle] mirrors
   the generic fetch loop with per-event array reads instead of cursor
   decoding and accessor calls — the experiment sweep replays each
   image hundreds of times, so this is the simulator's hottest path.

   Modelling simplifications (documented in DESIGN.md):
   - ordinary wrong-path fetch after a misprediction is a fetch bubble
     until the branch resolves (wrong-path µops are not executed);
   - inside dpred-mode the correct side follows the architectural trace
     (paper Section 4.4, assumption 2);
   - wrong-side loads are treated as L1 hits and do not pollute the
     cache;
   - the I-cache always hits (paper Section 4.4, assumption 1). *)

open Dmp_ir
open Dmp_exec
open Dmp_predictor
open Dmp_core
module Mpt = Dmp_mpp.Mpt

type walker = {
  mutable w_pc : int;
  mutable w_hist : int;
  mutable w_stack : int list;
  mutable w_count : int;
  mutable w_dead : bool;
}

type dpred = {
  d_branch_addr : int;
  d_done : int;  (* resolution cycle of the diverge branch *)
  d_mispredicted : bool;
  d_cfm : Annotation.compiled;  (* CFM points as flat sorted arrays *)
  d_return_cfm : bool;
  mutable d_correct_stop : int;  (* -1 active; -2 return; else CFM addr *)
  mutable d_wrong_stop : int;
  d_wrong : walker;
  mutable d_turn : bool;  (* true: correct side fetches this cycle *)
}

type loop_dpred = {
  l_branch_addr : int;
  l_exit_target : int;
  l_selects : int;
  l_body_insts : int;
  l_exit_taken : bool;  (* direction that leaves the loop *)
  mutable l_iterations : int;
}

type mode = M_normal | M_dpred of dpred | M_loop of loop_dpred

(* Misprediction recovery: until the branch resolves, the front end
   keeps fetching down the wrong path, polluting the reorder buffer;
   at resolution those entries are squashed from the tail. *)
type recovery = {
  r_done : int;
  r_walker : walker;
  mutable r_pushed : int;
}

(* Correct-path supply: the generic [Source.t] abstraction (live
   emulator or packed-trace cursor) or a pre-decoded image indexed by
   [pos]. *)
type supply = S_source of Source.t | S_image of Image.t

type t = {
  config : Config.t;
  linked : Linked.t;
  sinfo : Static_info.t;
  (* Dense per-address diverge-branch table (Annotation.compile). *)
  diverge_at : Annotation.compiled option array;
  supply : supply;
  predictor : Predictor.t;
  conf : Conf.t;
  (* Dynamic merge-point predictor (Config.Dynamic provider only):
     trained on every consumed correct-path event, consulted by
     [branch_event] instead of [diverge_at]. *)
  mpt : Mpt.t option;
  hier : Cache.hierarchy;
  stats : Stats.t;
  (* Reorder buffer: completion cycles in fetch order. *)
  rob : int array;
  mutable rob_head : int;
  mutable rob_count : int;
  reg_ready : int array;
  mutable cycle : int;
  mutable fetch_resume : int;
  mutable select_pending : int;
  (* The supply's current event has been loaded but not yet fetched. *)
  mutable pending : bool;
  mutable trace_done : bool;
  (* Image supply: index of the current (loaded) event; -1 initially. *)
  mutable pos : int;
  mutable mode : mode;
  mutable recovery : recovery option;
  max_insts : int;
  mutable consumed : int;
}

let make_with ~sinfo ?(config = Config.baseline) ?annotation
    ?(max_insts = max_int) linked supply =
  let annotation =
    match annotation with Some a -> a | None -> Annotation.empty ()
  in
  {
    config;
    linked;
    sinfo;
    diverge_at = Annotation.compile ~size:(Static_info.size sinfo) annotation;
    supply;
    predictor = Predictor.of_name config.Config.predictor;
    conf =
      Conf.create ~log2_entries:config.Config.conf_log2_entries
        ~history_length:config.Config.conf_history_length
        ~threshold:config.Config.conf_threshold ();
    mpt =
      (match config.Config.merge_provider with
      | Config.Static -> None
      | Config.Dynamic mcfg -> Some (Mpt.create mcfg));
    hier = Cache.hierarchy config;
    stats = Stats.create ();
    rob = Array.make config.Config.rob_size 0;
    rob_head = 0;
    rob_count = 0;
    reg_ready = Array.make Reg.count 0;
    cycle = 0;
    fetch_resume = 0;
    select_pending = 0;
    pending = false;
    trace_done = false;
    pos = -1;
    mode = M_normal;
    recovery = None;
    max_insts;
    consumed = 0;
  }

let make ?config ?annotation ?max_insts linked supply =
  make_with ~sinfo:(Static_info.of_linked linked) ?config ?annotation
    ?max_insts linked supply

let create_source ?config ?annotation ?max_insts linked source =
  make ?config ?annotation ?max_insts linked (S_source source)

let create ?config ?annotation ?max_insts linked ~input =
  create_source ?config ?annotation ?max_insts linked
    (Source.live (Emulator.create linked ~input))

let create_replay ?config ?annotation ?max_insts linked trace =
  create_source ?config ?annotation ?max_insts linked (Source.replay trace)

(* [create_image] with the caller-supplied static-info table: the fused
   sweep derives it once per kernel and shares it — read-only — across
   every lane over the same linked program. *)
let create_image_with ~sinfo ?config ?annotation ?max_insts linked image =
  let t =
    make_with ~sinfo ?config ?annotation ?max_insts linked (S_image image)
  in
  (* One bounds check here licenses the unchecked static-info and
     diverge-table indexing in [fetch_image_cycle]. *)
  if Image.max_addr image >= Static_info.size t.sinfo then
    invalid_arg "Sim.create_image: image addresses exceed the linked program";
  t

let create_image ?config ?annotation ?max_insts linked image =
  create_image_with ~sinfo:(Static_info.of_linked linked) ?config ?annotation
    ?max_insts linked image

(* ---------- trace supply ----------

   [peek]/[consume] load the supply's next event; the event itself is
   read through the [Source] current-event accessors (or the image
   buffers at [t.pos]), which stay valid from the [peek] that loaded it
   until the next [peek] after its [consume]. *)

let peek t s =
  t.pending
  ||
  if t.trace_done then false
  else if t.consumed >= t.max_insts then begin
    t.trace_done <- true;
    false
  end
  else if Source.advance s then begin
    t.pending <- true;
    true
  end
  else begin
    t.trace_done <- true;
    false
  end

let consume t s =
  peek t s
  && begin
       t.pending <- false;
       t.consumed <- t.consumed + 1;
       true
     end

(* Image supply: same protocol with the cursor decode replaced by a
   position bump. *)

let ipeek t (img : Image.t) =
  t.pending
  ||
  if t.trace_done then false
  else if t.consumed >= t.max_insts then begin
    t.trace_done <- true;
    false
  end
  else if t.pos + 1 < img.Image.len then begin
    t.pos <- t.pos + 1;
    t.pending <- true;
    true
  end
  else begin
    t.trace_done <- true;
    false
  end

let iconsume t img =
  ipeek t img
  && begin
       t.pending <- false;
       t.consumed <- t.consumed + 1;
       true
     end

(* ---------- reorder buffer ---------- *)

let rob_full t = t.rob_count >= Array.length t.rob

(* [rob_head + rob_count] never reaches twice the ROB size, so the
   wrap-around is a compare-and-subtract, not a division. *)
let rob_push t done_cycle =
  let len = Array.length t.rob in
  let i = t.rob_head + t.rob_count in
  let i = if i >= len then i - len else i in
  Array.unsafe_set t.rob i done_cycle;
  t.rob_count <- t.rob_count + 1

let retire t =
  let n = ref 0 in
  while
    !n < t.config.Config.retire_width
    && t.rob_count > 0
    && Array.unsafe_get t.rob t.rob_head <= t.cycle
  do
    let h = t.rob_head + 1 in
    t.rob_head <- (if h >= Array.length t.rob then 0 else h);
    t.rob_count <- t.rob_count - 1;
    incr n
  done

(* ---------- dataflow timing ---------- *)

(* [loc] is the memory location of the correct-path event; the fetch
   loops pass it only for loads and stores (the trace guarantees those
   events carry their location) and 0 for every other class, and only
   the load/store arms below read it. *)
let complete t ~(info : Static_info.info) ~loc =
  let disp = t.cycle + t.config.Config.front_depth in
  let srcs = info.Static_info.srcs in
  let ready = ref disp in
  for i = 0 to Array.length srcs - 1 do
    let v = Array.unsafe_get t.reg_ready (Array.unsafe_get srcs i) in
    if v > !ready then ready := v
  done;
  let latency =
    match info.Static_info.klass with
    | Static_info.K_load -> Cache.load_latency t.hier loc
    | Static_info.K_store ->
        Cache.store t.hier loc;
        t.config.Config.store_latency
    | k -> Static_info.latency t.config k
  in
  let done_cycle = !ready + latency in
  if info.Static_info.dst >= 0 then
    Array.unsafe_set t.reg_ready info.Static_info.dst done_cycle;
  done_cycle

let predicated_done t = t.cycle + t.config.Config.front_depth + 1

(* ---------- wrong-side walker ---------- *)

let make_walker ~start ~hist =
  { w_pc = start; w_hist = hist; w_stack = []; w_count = 0; w_dead = false }

(* Advance the walker by one instruction; returns true when an
   instruction was emitted (pushed into the ROB with completion time
   [done_cycle]), false when the walker died. The caller checks stop
   conditions (CFM, return) before calling. *)
let walker_step t (w : walker) ~done_cycle =
  if w.w_dead then false
  else begin
    let info = Static_info.get t.sinfo w.w_pc in
    rob_push t done_cycle;
    t.stats.Stats.wrong_side_insts <- t.stats.Stats.wrong_side_insts + 1;
    w.w_count <- w.w_count + 1;
    if w.w_count > t.config.Config.max_walk_insts then w.w_dead <- true
    else begin
      (match info.Static_info.klass with
      | Static_info.K_branch ->
          let taken =
            t.predictor.Predictor.predict_with_history ~history:w.w_hist
              ~addr:w.w_pc
          in
          w.w_hist <- t.predictor.Predictor.shift_history ~history:w.w_hist
              ~taken;
          w.w_pc <-
            (if taken then info.Static_info.taken_addr
             else info.Static_info.fall_addr)
      | Static_info.K_jump -> w.w_pc <- info.Static_info.taken_addr
      | Static_info.K_call ->
          w.w_stack <- info.Static_info.fall_addr :: w.w_stack;
          w.w_pc <- info.Static_info.taken_addr
      | Static_info.K_ret -> (
          match w.w_stack with
          | a :: rest ->
              w.w_stack <- rest;
              w.w_pc <- a
          | [] -> w.w_dead <- true)
      | Static_info.K_halt -> w.w_dead <- true
      | Static_info.K_int | Static_info.K_mul | Static_info.K_div
      | Static_info.K_load | Static_info.K_store | Static_info.K_other ->
          w.w_pc <- w.w_pc + 1)
    end;
    true
  end

(* ---------- branch bookkeeping ---------- *)

type branch_outcome = {
  b_mispredicted : bool;
  b_low_confidence : bool;
  b_done : int;
  b_pre_history : int;
}

let process_cond_branch t ~addr ~taken ~(info : Static_info.info) =
  let pre_history = t.predictor.Predictor.history () in
  let predicted = t.predictor.Predictor.predict ~addr in
  let est = Conf.estimate t.conf ~addr in
  let mispredicted = predicted <> taken in
  t.predictor.Predictor.update ~addr ~taken;
  Conf.update t.conf ~addr ~taken ~mispredicted;
  t.stats.Stats.cond_branches <- t.stats.Stats.cond_branches + 1;
  if mispredicted then
    t.stats.Stats.mispredictions <- t.stats.Stats.mispredictions + 1;
  let low = Conf.is_low est in
  if low then begin
    t.stats.Stats.low_confidence <- t.stats.Stats.low_confidence + 1;
    if mispredicted then
      t.stats.Stats.low_confidence_mispredicted <-
        t.stats.Stats.low_confidence_mispredicted + 1
  end;
  let b_done = complete t ~info ~loc:0 in
  rob_push t b_done;
  { b_mispredicted = mispredicted; b_low_confidence = low; b_done;
    b_pre_history = pre_history }

let normal_flush ?wrong_path t ~done_cycle =
  t.stats.Stats.flushes <- t.stats.Stats.flushes + 1;
  t.fetch_resume <- max t.fetch_resume (done_cycle + 1);
  match wrong_path with
  | Some (start, hist) when done_cycle > t.cycle ->
      t.recovery <-
        Some
          {
            r_done = done_cycle;
            r_walker = make_walker ~start ~hist;
            r_pushed = 0;
          }
  | Some _ | None -> ()

(* ---------- dpred entry ---------- *)

let enter_hammock_dpred t ~addr ~taken (c : Annotation.compiled)
    (o : branch_outcome) =
  let info = Static_info.get t.sinfo addr in
  let wrong_start =
    if taken then info.Static_info.fall_addr else info.Static_info.taken_addr
  in
  let wrong_hist =
    t.predictor.Predictor.shift_history ~history:o.b_pre_history
      ~taken:(not taken)
  in
  t.stats.Stats.dpred_entries <- t.stats.Stats.dpred_entries + 1;
  t.stats.Stats.dpred_hammock_entries <-
    t.stats.Stats.dpred_hammock_entries + 1;
  if not o.b_mispredicted then
    t.stats.Stats.dpred_useless_entries <-
      t.stats.Stats.dpred_useless_entries + 1;
  t.mode <-
    M_dpred
      {
        d_branch_addr = addr;
        d_done = o.b_done;
        d_mispredicted = o.b_mispredicted;
        d_cfm = c;
        d_return_cfm = c.Annotation.c_diverge.Annotation.return_cfm;
        d_correct_stop = -1;
        d_wrong_stop = -1;
        d_wrong = make_walker ~start:wrong_start ~hist:wrong_hist;
        d_turn = true;
      }

(* Predict the number of phantom extra iterations the predictor would
   fetch after the actual loop exit: follows the speculative history
   until the loop branch is predicted in the exit direction. *)
let phantom_extra_iterations t ~addr ~pre_history ~exit_taken ~cap =
  let rec go hist n =
    if n >= cap then n
    else
      let p =
        t.predictor.Predictor.predict_with_history ~history:hist ~addr
      in
      if p = exit_taken then n
      else
        let hist' = t.predictor.Predictor.shift_history ~history:hist
            ~taken:p
        in
        go hist' (n + 1)
  in
  go
    (t.predictor.Predictor.shift_history ~history:pre_history
       ~taken:(not exit_taken))
    0

(* Handle one execution of a diverge loop branch while in (or entering)
   loop dpred-mode. Returns [`Stay] to remain in loop mode. *)
let loop_branch_event t (l : loop_dpred) ~addr ~taken (o : branch_outcome) =
  let actual_exits = taken = l.l_exit_taken in
  let predicted_taken = taken <> o.b_mispredicted in
  let predicted_exits = predicted_taken = l.l_exit_taken in
  (* Select-µops are inserted after every dynamically-predicated
     iteration (Equation 18). *)
  t.select_pending <- t.select_pending + l.l_selects;
  l.l_iterations <- l.l_iterations + 1;
  match (actual_exits, predicted_exits) with
  | false, false -> `Stay
  | false, true ->
      (* Early exit: the predicated loop stopped too soon; pipeline is
         flushed when the branch resolves. *)
      t.stats.Stats.loop_early_exits <- t.stats.Stats.loop_early_exits + 1;
      normal_flush t ~done_cycle:o.b_done;
      `Exit
  | true, true ->
      t.stats.Stats.loop_correct <- t.stats.Stats.loop_correct + 1;
      `Exit
  | true, false ->
      (* The predictor would keep iterating: late exit if it predicts
         the exit within the resolution window, no-exit otherwise. *)
      let cap = t.config.Config.max_loop_extra_iterations in
      let extra =
        phantom_extra_iterations t ~addr ~pre_history:o.b_pre_history
          ~exit_taken:l.l_exit_taken ~cap
      in
      let per_iter_cycles =
        (l.l_body_insts + l.l_selects + t.config.Config.fetch_width - 1)
        / t.config.Config.fetch_width
      in
      let fetch_after = t.cycle + (extra * per_iter_cycles) in
      if extra < cap && fetch_after < o.b_done then begin
        t.stats.Stats.loop_late_exits <- t.stats.Stats.loop_late_exits + 1;
        t.stats.Stats.loop_extra_insts <-
          t.stats.Stats.loop_extra_insts + (extra * l.l_body_insts);
        t.stats.Stats.dpred_flushes_avoided <-
          t.stats.Stats.dpred_flushes_avoided + 1;
        t.fetch_resume <- max t.fetch_resume fetch_after
      end
      else begin
        t.stats.Stats.loop_no_exits <- t.stats.Stats.loop_no_exits + 1;
        normal_flush t ~done_cycle:o.b_done
      end;
      `Exit

let enter_loop_dpred t ~addr ~taken (c : Annotation.compiled)
    (o : branch_outcome) =
  match c.Annotation.c_diverge.Annotation.loop with
  | None -> false
  | Some li ->
      let info = Static_info.get t.sinfo addr in
      let exit_taken =
        info.Static_info.taken_addr = li.Annotation.exit_target_addr
      in
      let l =
        {
          l_branch_addr = addr;
          l_exit_target = li.Annotation.exit_target_addr;
          l_selects = li.Annotation.loop_select_uops;
          l_body_insts = li.Annotation.body_insts;
          l_exit_taken = exit_taken;
          l_iterations = 0;
        }
      in
      t.stats.Stats.dpred_entries <- t.stats.Stats.dpred_entries + 1;
      t.stats.Stats.dpred_loop_entries <-
        t.stats.Stats.dpred_loop_entries + 1;
      (match loop_branch_event t l ~addr ~taken o with
      | `Stay -> t.mode <- M_loop l
      | `Exit -> ());
      true

(* A predicted merge point, packaged as a single-CFM compiled diverge
   so the dpred state machine runs unchanged. The predictor has no
   dataflow view: the select-µop cost is its configured constant. *)
let enter_predicted_dpred t ~addr ~taken ~merge (g : Mpt.config)
    (o : branch_outcome) =
  let c =
    {
      Annotation.c_diverge =
        {
          Annotation.branch_addr = addr;
          kind = Annotation.Simple_hammock;
          cfms = [];
          return_cfm = false;
          always_predicate = false;
          loop = None;
        };
      c_cfm_addrs = [| merge |];
      c_cfm_selects = [| g.Mpt.select_uops |];
      c_ret_selects = g.Mpt.select_uops;
    }
  in
  enter_hammock_dpred t ~addr ~taken c o

(* ---------- per-cycle fetch ---------- *)

exception Stop_fetch

(* Handle a just-fetched conditional branch shared by both fetch loops:
   diverge-branch decisions, inner-misprediction aborts, and the
   ordinary misprediction flush. Raises [Stop_fetch] when the fetch
   cycle must end. [target]/[fall] are the branch's architectural
   operands. *)
let[@inline] branch_event t ~(in_dpred : dpred option) ~addr ~taken ~target
    ~fall ~branches (o : branch_outcome) =
  (* Diverge-branch decisions only apply outside dpred-mode (DMP
     predicates one branch at a time). *)
  let handled =
    match (in_dpred, t.mode) with
    | None, M_normal when t.config.Config.dmp_enabled && t.mpt <> None -> (
        (* Dynamic provider: the Merge Point Table answers (or not) for
           every low-confidence conditional branch; the static table is
           not consulted. No loop mechanism — the MPT has no iteration
           counts, so loop branches predicate as hammocks when their
           learned merge point sticks. *)
        match t.mpt with
        | Some m when o.b_low_confidence -> (
            t.stats.Stats.mpp_lookups <- t.stats.Stats.mpp_lookups + 1;
            match Mpt.predict m ~addr with
            | Some merge ->
                t.stats.Stats.mpp_predicted <-
                  t.stats.Stats.mpp_predicted + 1;
                if t.stats.Stats.mpp_warmup_retired = 0 then
                  t.stats.Stats.mpp_warmup_retired <- t.consumed;
                enter_predicted_dpred t ~addr ~taken ~merge (Mpt.config m) o;
                true
            | None -> false)
        | Some _ | None -> false)
    | None, M_normal when t.config.Config.dmp_enabled -> (
        match Array.unsafe_get t.diverge_at addr with
        | Some c -> (
            match c.Annotation.c_diverge.Annotation.kind with
            | Annotation.Loop_branch ->
                if o.b_low_confidence then enter_loop_dpred t ~addr ~taken c o
                else false
            | Annotation.Simple_hammock | Annotation.Nested_hammock
            | Annotation.Frequently_hammock ->
                if o.b_low_confidence
                   || c.Annotation.c_diverge.Annotation.always_predicate
                then begin
                  enter_hammock_dpred t ~addr ~taken c o;
                  true
                end
                else false)
        | None -> false)
    | None, M_loop l -> (
        if addr = l.l_branch_addr then begin
          match loop_branch_event t l ~addr ~taken o with
          | `Stay -> true
          | `Exit ->
              t.mode <- M_normal;
              true
        end
        else false)
    | _, _ -> false
  in
  if handled then raise Stop_fetch;
  if o.b_mispredicted then begin
    (* Inside dpred-mode an inner misprediction also flushes and aborts
       predication. *)
    (match (in_dpred, t.mode) with
    | Some _, _ -> t.mode <- M_normal
    | None, M_loop _ -> t.mode <- M_normal
    | None, (M_normal | M_dpred _) -> ());
    let start = if taken then fall else target in
    let hist =
      t.predictor.Predictor.shift_history ~history:o.b_pre_history
        ~taken:(not taken)
    in
    normal_flush ~wrong_path:(start, hist) t ~done_cycle:o.b_done;
    raise Stop_fetch
  end;
  if branches >= t.config.Config.max_branches_per_cycle then raise Stop_fetch;
  if taken then raise Stop_fetch

(* Fetch correct-path (trace) instructions for one cycle from the
   generic supply. [in_dpred] carries the dpred state when the correct
   side is one of the two predicated paths. Returns unit; updates all
   machine state. *)
let fetch_trace_cycle t (s : Source.t) ~(in_dpred : dpred option) =
  let slots = ref t.config.Config.fetch_width in
  let branches = ref 0 in
  (try
     while !slots > 0 do
       if t.select_pending > 0 then begin
         if rob_full t then raise Stop_fetch;
         rob_push t (t.cycle + t.config.Config.front_depth
                     + t.config.Config.select_uop_latency);
         t.select_pending <- t.select_pending - 1;
         t.stats.Stats.select_uops <- t.stats.Stats.select_uops + 1;
         decr slots
       end
       else if rob_full t then raise Stop_fetch
       else begin
         (match in_dpred with
         | Some d when peek t s ->
             (* Stop the correct side at a CFM point before fetching it. *)
             let next_fetch = Source.addr s in
             if Annotation.is_cfm d.d_cfm next_fetch then begin
               d.d_correct_stop <- next_fetch;
               raise Stop_fetch
             end
         | Some _ | None -> ());
         if not (consume t s) then raise Stop_fetch
         else begin
           let addr = Source.addr s in
           let next = Source.next_addr s in
           (* Loop dpred-mode ends when the trace reaches the loop's
              exit target through any path. *)
           (match t.mode with
           | M_loop l when addr = l.l_exit_target -> t.mode <- M_normal
           | M_loop _ | M_normal | M_dpred _ -> ());
           let info = Static_info.get t.sinfo addr in
           (* Train the dynamic merge-point predictor on the consumed
              (architectural) stream; conditional branches train inside
              their arm, where the direction is known. *)
           (match t.mpt with
           | Some m -> (
               match info.Static_info.klass with
               | Static_info.K_branch -> ()
               | Static_info.K_call -> Mpt.observe_call m ~addr
               | Static_info.K_ret -> Mpt.observe_ret m
               | _ -> Mpt.observe m ~addr)
           | None -> ());
           match info.Static_info.klass with
           | Static_info.K_branch ->
               incr branches;
               let taken = Source.taken s in
               let target = Source.p1 s in
               let fall = Source.p2 s in
               (match t.mpt with
               | Some m -> Mpt.observe_branch m ~addr ~taken
               | None -> ());
               let o = process_cond_branch t ~addr ~taken ~info in
               decr slots;
               branch_event t ~in_dpred ~addr ~taken ~target ~fall
                 ~branches:!branches o
           | Static_info.K_ret ->
               let d = complete t ~info ~loc:0 in
               rob_push t d;
               decr slots;
               (match in_dpred with
               | Some dp when dp.d_return_cfm ->
                   dp.d_correct_stop <- -2;
                   raise Stop_fetch
               | _ -> ());
               if next <> addr + 1 then raise Stop_fetch
           | Static_info.K_load | Static_info.K_store ->
               (* Memory events always carry their location. *)
               let d = complete t ~info ~loc:(Source.p1 s) in
               rob_push t d;
               decr slots;
               if next <> addr + 1 && next <> Event.halted_next then
                 raise Stop_fetch
           | _ ->
               let d = complete t ~info ~loc:0 in
               rob_push t d;
               decr slots;
               (* Taken control transfers end the fetch cycle, except
                  fall-through jumps to the next address. *)
               if next <> addr + 1 && next <> Event.halted_next then
                 raise Stop_fetch
         end
       end
     done
   with Stop_fetch -> ())

(* The same fetch cycle specialised on a pre-decoded image: per-event
   fields are single array reads at [t.pos] (no cursor decode, no
   accessor calls) and the static-info lookup indexes the dense table
   unchecked — [create_image] validated every image address against the
   table size. Must stay a line-for-line mirror of [fetch_trace_cycle]
   (the equivalence is enforced by qcheck and integration tests). *)
let fetch_image_cycle t (img : Image.t) ~(in_dpred : dpred option) =
  let addrs = img.Image.addr
  and nexts = img.Image.next
  and tags = img.Image.tag
  and p1s = img.Image.p1
  and p2s = img.Image.p2
  and infos = Static_info.table t.sinfo in
  let slots = ref t.config.Config.fetch_width in
  let branches = ref 0 in
  (try
     while !slots > 0 do
       if t.select_pending > 0 then begin
         if rob_full t then raise Stop_fetch;
         rob_push t (t.cycle + t.config.Config.front_depth
                     + t.config.Config.select_uop_latency);
         t.select_pending <- t.select_pending - 1;
         t.stats.Stats.select_uops <- t.stats.Stats.select_uops + 1;
         decr slots
       end
       else if rob_full t then raise Stop_fetch
       else begin
         (match in_dpred with
         | Some d when ipeek t img ->
             let next_fetch = Bigarray.Array1.unsafe_get addrs t.pos in
             if Annotation.is_cfm d.d_cfm next_fetch then begin
               d.d_correct_stop <- next_fetch;
               raise Stop_fetch
             end
         | Some _ | None -> ());
         if not (iconsume t img) then raise Stop_fetch
         else begin
           let pos = t.pos in
           let addr = Bigarray.Array1.unsafe_get addrs pos in
           let next = Bigarray.Array1.unsafe_get nexts pos in
           (match t.mode with
           | M_loop l when addr = l.l_exit_target -> t.mode <- M_normal
           | M_loop _ | M_normal | M_dpred _ -> ());
           let info = Array.unsafe_get infos addr in
           (* Train the dynamic merge-point predictor on the consumed
              (architectural) stream; conditional branches train inside
              their arm, where the direction is known. *)
           (match t.mpt with
           | Some m -> (
               match info.Static_info.klass with
               | Static_info.K_branch -> ()
               | Static_info.K_call -> Mpt.observe_call m ~addr
               | Static_info.K_ret -> Mpt.observe_ret m
               | _ -> Mpt.observe m ~addr)
           | None -> ());
           match info.Static_info.klass with
           | Static_info.K_branch ->
               incr branches;
               let taken =
                 Bigarray.Array1.unsafe_get tags pos = Trace.tag_branch_taken
               in
               let target = Bigarray.Array1.unsafe_get p1s pos in
               let fall = Bigarray.Array1.unsafe_get p2s pos in
               (match t.mpt with
               | Some m -> Mpt.observe_branch m ~addr ~taken
               | None -> ());
               let o = process_cond_branch t ~addr ~taken ~info in
               decr slots;
               branch_event t ~in_dpred ~addr ~taken ~target ~fall
                 ~branches:!branches o
           | Static_info.K_ret ->
               let d = complete t ~info ~loc:0 in
               rob_push t d;
               decr slots;
               (match in_dpred with
               | Some dp when dp.d_return_cfm ->
                   dp.d_correct_stop <- -2;
                   raise Stop_fetch
               | _ -> ());
               if next <> addr + 1 then raise Stop_fetch
           | Static_info.K_load | Static_info.K_store ->
               let d =
                 complete t ~info ~loc:(Bigarray.Array1.unsafe_get p1s pos)
               in
               rob_push t d;
               decr slots;
               if next <> addr + 1 && next <> Event.halted_next then
                 raise Stop_fetch
           | _ ->
               let d = complete t ~info ~loc:0 in
               rob_push t d;
               decr slots;
               if next <> addr + 1 && next <> Event.halted_next then
                 raise Stop_fetch
         end
       end
     done
   with Stop_fetch -> ())

let fetch_correct t ~in_dpred =
  match t.supply with
  | S_source s -> fetch_trace_cycle t s ~in_dpred
  | S_image img -> fetch_image_cycle t img ~in_dpred

(* Fetch wrong-side (walker) instructions for one cycle during
   dpred-mode. *)
let fetch_walker_cycle t (d : dpred) =
  let w = d.d_wrong in
  let slots = ref t.config.Config.fetch_width in
  (try
     while !slots > 0 do
       if w.w_dead then raise Stop_fetch;
       if rob_full t then raise Stop_fetch;
       if Annotation.is_cfm d.d_cfm w.w_pc then begin
         d.d_wrong_stop <- w.w_pc;
         raise Stop_fetch
       end;
       let info = Static_info.get t.sinfo w.w_pc in
       let was_ret = info.Static_info.klass = Static_info.K_ret in
       if not (walker_step t w ~done_cycle:(predicated_done t)) then
         raise Stop_fetch;
       decr slots;
       if was_ret && d.d_return_cfm then begin
         d.d_wrong_stop <- -2;
         raise Stop_fetch
       end
     done
   with Stop_fetch -> ())

(* ---------- dpred-mode per-cycle driver ---------- *)

let exit_dpred t (d : dpred) ~merged =
  if merged then begin
    t.stats.Stats.dpred_merges <- t.stats.Stats.dpred_merges + 1;
    let selects =
      if d.d_correct_stop = -2 then d.d_cfm.Annotation.c_ret_selects
      else Annotation.cfm_selects d.d_cfm d.d_correct_stop
    in
    t.select_pending <- t.select_pending + selects
  end
  else
    t.stats.Stats.dpred_resolved_before_merge <-
      t.stats.Stats.dpred_resolved_before_merge + 1;
  if d.d_mispredicted then
    t.stats.Stats.dpred_flushes_avoided <-
      t.stats.Stats.dpred_flushes_avoided + 1;
  t.mode <- M_normal

let dpred_cycle t (d : dpred) =
  (* Merge: both sides stopped at the same CFM point (or both at a
     return when the branch has a return CFM). *)
  if d.d_correct_stop <> -1 && d.d_correct_stop = d.d_wrong_stop then
    exit_dpred t d ~merged:true
  else if t.cycle >= d.d_done then
    (* The diverge branch resolved: predicated-FALSE instructions become
       NOPs; fetch continues on the correct path with no flush. *)
    exit_dpred t d ~merged:false
  else begin
    let correct_active = d.d_correct_stop = -1 && not t.trace_done in
    let wrong_active = d.d_wrong_stop = -1 && not d.d_wrong.w_dead in
    let pick_correct =
      match (correct_active, wrong_active) with
      | true, false -> true
      | false, true -> false
      | _, _ -> d.d_turn
    in
    d.d_turn <- not d.d_turn;
    if correct_active || wrong_active then
      if pick_correct && correct_active then
        fetch_correct t ~in_dpred:(Some d)
      else if wrong_active then fetch_walker_cycle t d
  end

(* ---------- main loop ---------- *)

let finished t = t.trace_done && t.rob_count = 0 && not t.pending

(* Wrong-path fetch between a misprediction and its resolution: pollute
   the ROB with entries that never complete; squash them from the tail
   at resolution. *)
let recovery_cycle t (r : recovery) =
  if t.cycle >= r.r_done then begin
    t.rob_count <- t.rob_count - r.r_pushed;
    t.recovery <- None
  end
  else begin
    let budget = ref t.config.Config.fetch_width in
    while
      !budget > 0 && (not r.r_walker.w_dead) && not (rob_full t)
    do
      if walker_step t r.r_walker ~done_cycle:max_int then
        r.r_pushed <- r.r_pushed + 1
      else budget := 0;
      decr budget
    done
  end

let max_sim_cycles = 400_000_000

let step_cycle t =
  t.cycle <- t.cycle + 1;
  retire t;
  if rob_full t then
    t.stats.Stats.rob_full_cycles <- t.stats.Stats.rob_full_cycles + 1;
  (match t.mode with
  | M_dpred _ ->
      t.stats.Stats.dpred_cycles <- t.stats.Stats.dpred_cycles + 1
  | M_normal | M_loop _ -> ());
  match t.recovery with
  | Some r ->
      t.stats.Stats.recovery_cycles <- t.stats.Stats.recovery_cycles + 1;
      recovery_cycle t r
  | None ->
      if t.cycle >= t.fetch_resume then begin
        match t.mode with
        | M_normal | M_loop _ ->
            if not t.trace_done then fetch_correct t ~in_dpred:None
        | M_dpred d -> dpred_cycle t d
      end

let finalize t =
  t.stats.Stats.cycles <- t.cycle;
  t.stats.Stats.retired <- t.consumed;
  t.stats

let run_to_completion t =
  let guard = ref 0 in
  while (not (finished t)) && !guard < max_sim_cycles do
    incr guard;
    step_cycle t
  done;
  finalize t

let run ?config ?annotation ?max_insts linked ~input =
  let t = create ?config ?annotation ?max_insts linked ~input in
  run_to_completion t

let run_replay ?config ?annotation ?max_insts linked trace =
  let t = create_replay ?config ?annotation ?max_insts linked trace in
  run_to_completion t

let run_image ?config ?annotation ?max_insts linked image =
  let t = create_image ?config ?annotation ?max_insts linked image in
  run_to_completion t

let stats t = t.stats

let merge_predictions t =
  match t.mpt with Some m -> Mpt.predictions m | None -> []

(* ---------- checkpoints ----------

   A checkpoint captures the full machine state at a safe point: normal
   mode, no recovery walker, between cycles. Dpred episodes, loop
   predication and misprediction recovery are all bounded, so a safe
   cycle boundary recurs; restricting capture to those points keeps the
   episode state machines (walkers, dpred context) out of the snapshot
   entirely. Only the image supply is checkpointable — [pos] makes the
   trace position restorable, which a live emulator is not.

   Layout: "core" holds the scalar machine state plus three shape
   fingerprints (image length, ROB size, register count) validated on
   resume; "rob" holds the live completion cycles in retire order (the
   head index is not state — rebuilding at index 0 is equivalent);
   "reg"/"stats"/"pred"/"conf"/"l1"/"l2" are the flat snapshots of the
   respective subsystems. Note [Stats.cycles]/[Stats.retired] are dead
   in the snapshot: they are derived from [t.cycle]/[t.consumed] by
   [finalize] at the end of any run. *)

let at_safe_point t =
  (match t.mode with M_normal -> true | M_dpred _ | M_loop _ -> false)
  && match t.recovery with None -> true | Some _ -> false

let checkpoint t =
  let image =
    match t.supply with
    | S_image img -> img
    | S_source _ -> invalid_arg "Sim.checkpoint: requires an image supply"
  in
  if not (at_safe_point t) then
    invalid_arg "Sim.checkpoint: not at a safe point (episode in progress)";
  let core =
    [|
      t.cycle; t.fetch_resume; t.select_pending;
      (if t.pending then 1 else 0);
      (if t.trace_done then 1 else 0);
      t.pos; Image.length image; Array.length t.rob; Array.length t.reg_ready;
    |]
  in
  let len = Array.length t.rob in
  let rob =
    Array.init t.rob_count (fun i ->
        let j = t.rob_head + i in
        t.rob.(if j >= len then j - len else j))
  in
  Checkpoint.create ~consumed:t.consumed
    ([
       ("core", core);
       ("rob", rob);
       ("reg", Array.copy t.reg_ready);
       ("stats", Stats.to_array t.stats);
       ("pred", t.predictor.Predictor.export_state ());
       ("conf", Conf.export t.conf);
       ("l1", Cache.export t.hier.Cache.l1);
       ("l2", Cache.export t.hier.Cache.l2);
     ]
    @
    (* The merge-point predictor is trained by the consumed stream, so
       its table belongs with the architectural prefix state. *)
    match t.mpt with
    | Some m -> [ ("mpt", Mpt.export m) ]
    | None -> [])

(* Restore the trace position and the architectural long-lived state
   (predictor, confidence estimator, caches) — everything in a
   checkpoint that is a pure function of the consumed event prefix.
   Shared by the exact resume (which also restores the timing state)
   and the sampled mode (which deliberately does not). *)
let restore_arch t image ck =
  let core = Checkpoint.section ck "core" in
  if Array.length core <> 9 then
    invalid_arg "Sim.resume: bad core section";
  if core.(6) <> Image.length image then
    invalid_arg "Sim.resume: checkpoint is for a different image";
  if core.(7) <> Array.length t.rob || core.(8) <> Array.length t.reg_ready
  then invalid_arg "Sim.resume: checkpoint is for a different configuration";
  t.pending <- core.(3) = 1;
  t.trace_done <- core.(4) = 1;
  t.pos <- core.(5);
  t.consumed <- Checkpoint.consumed ck;
  t.predictor.Predictor.import_state (Checkpoint.section ck "pred");
  Conf.import t.conf (Checkpoint.section ck "conf");
  Cache.import t.hier.Cache.l1 (Checkpoint.section ck "l1");
  Cache.import t.hier.Cache.l2 (Checkpoint.section ck "l2");
  (* A checkpoint captured under the static provider (the sampled
     mode's shared annotation-independent references) has no "mpt"
     section: a dynamic-provider restore then starts its predictor
     cold, which is deterministic and part of the sampling estimate. *)
  (match t.mpt with
  | Some m -> (
      match Checkpoint.section_opt ck "mpt" with
      | Some snap -> Mpt.import m snap
      | None -> ())
  | None -> ());
  core

(* Restore the full machine state (timing included) into a freshly
   created simulation over the same image — the body of [resume_image],
   shared with the fused kernel's per-lane checkpoint starts. *)
let resume_into t image ck =
  (* An exact resume must reproduce the capturing run byte-identically,
     so a dynamic-provider lane cannot silently start its predictor
     cold from a static-provider checkpoint. *)
  (match t.mpt with
  | Some _ when Checkpoint.section_opt ck "mpt" = None ->
      invalid_arg
        "Sim.resume_image: checkpoint lacks merge-point predictor state"
  | Some _ | None -> ());
  let core = restore_arch t image ck in
  t.cycle <- core.(0);
  t.fetch_resume <- core.(1);
  t.select_pending <- core.(2);
  let rob = Checkpoint.section ck "rob" in
  if Array.length rob > Array.length t.rob then
    invalid_arg "Sim.resume_image: bad rob section";
  Array.blit rob 0 t.rob 0 (Array.length rob);
  t.rob_head <- 0;
  t.rob_count <- Array.length rob;
  let reg = Checkpoint.section ck "reg" in
  if Array.length reg <> Array.length t.reg_ready then
    invalid_arg "Sim.resume_image: bad reg section";
  Array.blit reg 0 t.reg_ready 0 (Array.length reg);
  Stats.load t.stats (Checkpoint.section ck "stats");
  t

let resume_image ?config ?annotation ?max_insts linked image ck =
  resume_into (create_image ?config ?annotation ?max_insts linked image)
    image ck

(* ---------- fused multi-annotation sweep ----------

   K lanes advance in lock-step strides of consumed events over one
   shared image pass. Lanes are fully independent machines — each owns
   its predictor, confidence estimator, caches, ROB and statistics; the
   sharing is the image buffers, the linked program and one
   [Static_info] table, all read-only. Each lane therefore executes
   exactly the [step_cycle] sequence its solo run would, so its
   statistics are byte-identical to [run_image] (or to
   [resume_image] + [run_to_completion] for checkpoint-started lanes);
   the fusion wins by keeping the shared per-event buffers hot across
   lanes instead of streaming the whole image through the cache once
   per annotation. *)

let fused_stride = 32_768

let run_image_fused ?config ?max_insts linked image lanes =
  match lanes with
  | [] -> []
  | _ ->
      let sinfo = Static_info.of_linked linked in
      let sims =
        Array.of_list
          (List.map
             (fun (annotation, from) ->
               let t =
                 create_image_with ~sinfo ?config ?annotation ?max_insts
                   linked image
               in
               match from with None -> t | Some ck -> resume_into t image ck)
             lanes)
      in
      (* Per-lane cycle guards: each lane gets the same [max_sim_cycles]
         budget its solo [run_to_completion] would. *)
      let guards = Array.map (fun _ -> 0) sims in
      let front = ref 0 in
      let all_done = ref (Array.for_all finished sims) in
      while not !all_done do
        front := !front + fused_stride;
        all_done := true;
        Array.iteri
          (fun i t ->
            let g = ref guards.(i) in
            (* Once the lane's trace is done, [consumed] stops moving
               and the stride bound no longer binds: the loop drains the
               ROB to [finished], exactly like a solo run's tail. *)
            while
              (not (finished t))
              && t.consumed < !front
              && !g < max_sim_cycles
            do
              incr g;
              step_cycle t
            done;
            guards.(i) <- !g;
            if (not (finished t)) && !g < max_sim_cycles then
              all_done := false)
          sims
      done;
      Array.to_list (Array.map finalize sims)

(* Capture rule shared by the checkpointing run and the segment stop
   rule (they must trigger at exactly the same machine states): the
   first safe cycle boundary at or after a multiple of [interval]
   consumed events, while the trace is still live. *)
let next_boundary ~interval consumed = ((consumed / interval) + 1) * interval

let at_capture_point t ~next =
  (not t.trace_done) && t.consumed >= next && at_safe_point t

let run_image_checkpointed ?config ?annotation ?max_insts ~interval linked
    image =
  if interval <= 0 then
    invalid_arg "Sim.run_image_checkpointed: interval must be positive";
  let t = create_image ?config ?annotation ?max_insts linked image in
  let ckpts = ref [] in
  let next = ref interval in
  let guard = ref 0 in
  while (not (finished t)) && !guard < max_sim_cycles do
    incr guard;
    step_cycle t;
    if at_capture_point t ~next:!next then begin
      ckpts := checkpoint t :: !ckpts;
      next := next_boundary ~interval t.consumed
    end
  done;
  (finalize t, List.rev !ckpts)

(* Per-segment counter deltas: [base] snapshots the cumulative counters
   at segment entry (with the derived cycles/retired patched to their
   entry values), the diff after the run is the segment's contribution.
   Merging every segment's delta telescopes back to the whole-run
   statistics exactly. *)
let delta_base t =
  let base = Stats.copy t.stats in
  base.Stats.cycles <- t.cycle;
  base.Stats.retired <- t.consumed;
  base

let run_image_segment ?config ?annotation ?max_insts ?from ~interval
    ~to_completion linked image =
  if interval <= 0 then
    invalid_arg "Sim.run_image_segment: interval must be positive";
  let t =
    match from with
    | None -> create_image ?config ?annotation ?max_insts linked image
    | Some ck -> resume_image ?config ?annotation ?max_insts linked image ck
  in
  let base = delta_base t in
  if to_completion then ignore (run_to_completion t : Stats.t)
  else begin
    let next = next_boundary ~interval t.consumed in
    let guard = ref 0 in
    let stop = ref false in
    while (not !stop) && (not (finished t)) && !guard < max_sim_cycles do
      incr guard;
      step_cycle t;
      if at_capture_point t ~next then stop := true
    done;
    ignore (finalize t : Stats.t)
  end;
  Stats.diff t.stats base

(* Run (at most) until [target] consumed events, without marking the
   trace done: unlike the [max_insts] cap this can be resumed, so the
   sampled mode strings warmup and measurement phases together. When
   the trace genuinely ends first, the loop drains the ROB ([finished]
   flips only once it is empty). *)
let run_until_consumed t target =
  let guard = ref 0 in
  while
    (not (finished t)) && t.consumed < target && !guard < max_sim_cycles
  do
    incr guard;
    step_cycle t
  done;
  (* When the trace genuinely ended inside the window, drain the ROB so
     the tail cycles are accounted exactly as a run to completion. *)
  if t.trace_done then
    while (not (finished t)) && !guard < max_sim_cycles do
      incr guard;
      step_cycle t
    done

let run_image_sampled ?config ?annotation ?max_insts ?from ~length ~warmup
    ~window linked image =
  if length < 0 then invalid_arg "Sim.run_image_sampled: negative length";
  if warmup < 0 || window <= 0 then
    invalid_arg "Sim.run_image_sampled: bad warmup/window";
  let t = create_image ?config ?annotation ?max_insts linked image in
  (* Architectural state (trace position, predictor, confidence, cache)
     is exact from the checkpoint; the timing state (pipeline, ROB,
     register timestamps, cycle counter) deliberately starts cold and
     is warmed by the prefix. *)
  (match from with
  | Some ck -> ignore (restore_arch t image ck : int array)
  | None -> ());
  let start = t.consumed in
  if length <= warmup + window then begin
    (* Segment no larger than one measurement: simulate all of it. *)
    run_until_consumed t (start + length);
    t.stats.Stats.cycles <- t.cycle;
    t.stats.Stats.retired <- t.consumed - start;
    t.stats
  end
  else begin
    run_until_consumed t (start + warmup);
    let base = delta_base t in
    run_until_consumed t (start + warmup + window);
    ignore (finalize t : Stats.t);
    let d = Stats.diff t.stats base in
    let measured = d.Stats.retired in
    if measured <= 0 then begin
      (* The trace ended inside the warmup (a capped run): fall back to
         what was actually simulated. *)
      t.stats.Stats.cycles <- t.cycle;
      t.stats.Stats.retired <- t.consumed - start;
      t.stats
    end
    else
      Stats.scale_round (float_of_int length /. float_of_int measured) d
  end
