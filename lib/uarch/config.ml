(* Machine configuration, following Table 1 of the paper. *)

(* Where diverge decisions get their merge points: the compiled
   annotation table (the paper), or an online Merge Point Table
   (TR-HPS-2020-001) learning them from retired control flow. *)
type merge_provider = Static | Dynamic of Dmp_mpp.Mpt.config

type t = {
  (* Front end. *)
  fetch_width : int;
  max_branches_per_cycle : int;
  front_depth : int;
      (* fetch-to-execute pipeline depth; together with the 1-cycle
         redirect and the execute latency this yields the paper's
         minimum misprediction penalty of 25 cycles *)
  (* Execution core. *)
  rob_size : int;
  retire_width : int;
  int_latency : int;
  mul_latency : int;
  div_latency : int;
  (* Memory system. *)
  l1_log2_sets : int;
  l1_ways : int;
  l1_hit_latency : int;
  l2_log2_sets : int;
  l2_ways : int;
  l2_hit_latency : int;
  line_bytes : int;
  memory_latency : int;
  store_latency : int;
  (* Predictors. *)
  predictor : string;
  ras_size : int;
  conf_log2_entries : int;
  conf_history_length : int;
  conf_threshold : int;
  (* DMP support. *)
  dmp_enabled : bool;
  num_cfm_registers : int;
  select_uop_latency : int;
  max_walk_insts : int;  (* wrong-side fetch walker bound *)
  max_loop_extra_iterations : int;
  merge_provider : merge_provider;
}

let baseline =
  {
    fetch_width = 8;
    max_branches_per_cycle = 3;
    front_depth = 23;
    rob_size = 512;
    retire_width = 8;
    int_latency = 1;
    mul_latency = 3;
    div_latency = 12;
    l1_log2_sets = 8;
    l1_ways = 4;
    l1_hit_latency = 2;
    l2_log2_sets = 11;
    l2_ways = 8;
    l2_hit_latency = 10;
    line_bytes = 64;
    memory_latency = 300;
    store_latency = 1;
    predictor = "perceptron";
    ras_size = 64;
    conf_log2_entries = 8;
    conf_history_length = 12;
    conf_threshold = 14;
    dmp_enabled = false;
    num_cfm_registers = 3;
    select_uop_latency = 1;
    max_walk_insts = 512;
    max_loop_extra_iterations = 3;
    merge_provider = Static;
  }

let dmp = { baseline with dmp_enabled = true }

let dmp_dynamic mpt =
  { baseline with dmp_enabled = true; merge_provider = Dynamic mpt }

let min_misp_penalty t = t.front_depth + 1 + t.int_latency

let pp ppf t =
  Fmt.pf ppf
    "fetch=%d rob=%d depth=%d penalty>=%d pred=%s dmp=%b cfm-regs=%d"
    t.fetch_width t.rob_size t.front_depth (min_misp_penalty t) t.predictor
    t.dmp_enabled t.num_cfm_registers

let describe_table1 t =
  [
    ( "Front End",
      Printf.sprintf
        "%d-wide fetch; up to %d conditional branches per cycle; \
         %d-cycle front-end depth (min. misprediction penalty %d cycles)"
        t.fetch_width t.max_branches_per_cycle t.front_depth
        (min_misp_penalty t) );
    ( "Branch Predictors",
      Printf.sprintf "%s predictor; %d-entry return address stack"
        t.predictor t.ras_size );
    ( "Execution Core",
      Printf.sprintf
        "%d-wide issue/retire; %d-entry reorder buffer; latencies: \
         int %d, mul %d, div %d"
        t.retire_width t.rob_size t.int_latency t.mul_latency t.div_latency );
    ( "Memory System",
      Printf.sprintf
        "L1 D-cache %d sets x %d ways x %dB, %d-cycle; L2 %d sets x %d \
         ways, %d-cycle; %d-cycle memory"
        (1 lsl t.l1_log2_sets) t.l1_ways t.line_bytes t.l1_hit_latency
        (1 lsl t.l2_log2_sets) t.l2_ways t.l2_hit_latency t.memory_latency );
    ( "DMP Support",
      Printf.sprintf
        "enhanced JRS confidence estimator (2^%d entries, %d-bit \
         history, threshold %d); %d CFM registers; select-uop latency %d"
        t.conf_log2_entries t.conf_history_length t.conf_threshold
        t.num_cfm_registers t.select_uop_latency );
  ]
