(* Per-address static metadata precomputed from the linked program so
   the per-cycle simulator loop avoids list allocation. *)

open Dmp_ir

type klass =
  | K_int
  | K_mul
  | K_div
  | K_load
  | K_store
  | K_branch
  | K_jump
  | K_call
  | K_ret
  | K_halt
  | K_other

type info = {
  klass : klass;
  srcs : int array;  (* register numbers *)
  dst : int;  (* -1 when none *)
  taken_addr : int;  (* -1 unless branch/jump/call *)
  fall_addr : int;  (* -1 unless branch; addr+1 for call *)
}

type t = { infos : info array; linked : Linked.t }

let regs_of l = Array.of_list (List.map Reg.to_int l)

let info_of_loc linked (l : Linked.loc) =
  let no = -1 in
  match l.Linked.slot with
  | Linked.Body ins ->
      let klass =
        match ins with
        | Instr.Alu { op = Instr.Mul; _ } -> K_mul
        | Instr.Alu { op = Instr.Div | Instr.Rem; _ } -> K_div
        | Instr.Alu _ | Instr.Li _ | Instr.Mov _ | Instr.Select _ -> K_int
        | Instr.Load _ -> K_load
        | Instr.Store _ -> K_store
        | Instr.Call _ -> K_call
        | Instr.Read _ | Instr.Write _ | Instr.Nop -> K_other
      in
      let taken_addr, fall_addr =
        match ins with
        | Instr.Call { callee } ->
            ( Linked.func_entry linked (Linked.func_of_name linked callee),
              l.Linked.addr + 1 )
        | _ -> (no, no)
      in
      let dst =
        match Instr.defs ins with r :: _ -> Reg.to_int r | [] -> no
      in
      { klass; srcs = regs_of (Instr.uses ins); dst; taken_addr; fall_addr }
  | Linked.Term tm -> (
      match tm with
      | Term.Branch _ ->
          let taken, fall =
            match Linked.branch_targets linked l with
            | Some tf -> tf
            | None -> (no, no)
          in
          { klass = K_branch; srcs = regs_of (Term.uses tm); dst = no;
            taken_addr = taken; fall_addr = fall }
      | Term.Jump _ ->
          let target =
            match Linked.jump_target linked l with Some a -> a | None -> no
          in
          { klass = K_jump; srcs = [||]; dst = no; taken_addr = target;
            fall_addr = no }
      | Term.Ret ->
          { klass = K_ret; srcs = [||]; dst = no; taken_addr = no;
            fall_addr = no }
      | Term.Halt ->
          { klass = K_halt; srcs = [||]; dst = no; taken_addr = no;
            fall_addr = no })

let of_linked linked =
  {
    infos = Array.map (info_of_loc linked) linked.Linked.locs;
    linked;
  }

let get t addr = t.infos.(addr)
let size t = Array.length t.infos

(* The dense table itself, for consumers that validate their address
   range against [size] once and then index with [Array.unsafe_get]
   (the simulator's pre-decoded image path). The array is owned by [t];
   callers must not mutate it. *)
let table t = t.infos

let latency (cfg : Config.t) = function
  | K_int | K_other | K_jump | K_call | K_ret | K_halt ->
      cfg.Config.int_latency
  | K_mul -> cfg.Config.mul_latency
  | K_div -> cfg.Config.div_latency
  | K_load -> cfg.Config.l1_hit_latency (* refined by the cache model *)
  | K_store -> cfg.Config.store_latency
  | K_branch -> cfg.Config.int_latency
