(* Set-associative cache with LRU replacement. Tags are stored per set
   in recency order (most recent first). *)

type t = {
  log2_sets : int;
  ways : int;
  line_shift : int;
  sets : int list array;  (* line tags, most recently used first *)
  mutable accesses : int;
  mutable misses : int;
}

let create ~log2_sets ~ways ~line_bytes =
  let line_shift =
    let rec go n b = if b <= 1 then n else go (n + 1) (b / 2) in
    go 0 line_bytes
  in
  {
    log2_sets;
    ways;
    line_shift;
    sets = Array.make (1 lsl log2_sets) [];
    accesses = 0;
    misses = 0;
  }

let access t address =
  t.accesses <- t.accesses + 1;
  let line = address asr t.line_shift in
  let set_index = line land ((1 lsl t.log2_sets) - 1) in
  let set = t.sets.(set_index) in
  let hit = List.exists (Int.equal line) set in
  let set' =
    if hit then line :: List.filter (fun l -> l <> line) set
    else begin
      t.misses <- t.misses + 1;
      let set = if List.length set >= t.ways then
          List.filteri (fun i _ -> i < t.ways - 1) set
        else set
      in
      line :: set
    end
  in
  t.sets.(set_index) <- set';
  hit

let miss_rate t =
  if t.accesses = 0 then 0.
  else float_of_int t.misses /. float_of_int t.accesses

(* Flat state snapshot: the hit counters, then every set as its length
   followed by its tags in recency order. Restoring rebuilds each LRU
   list exactly, so a resumed simulation replays the same hits and
   misses as the original. *)
let export t =
  let nsets = Array.length t.sets in
  let total =
    Array.fold_left (fun acc set -> acc + List.length set) 0 t.sets
  in
  let out = Array.make (3 + nsets + total) 0 in
  out.(0) <- t.accesses;
  out.(1) <- t.misses;
  out.(2) <- nsets;
  let pos = ref 3 in
  Array.iter
    (fun set ->
      out.(!pos) <- List.length set;
      incr pos;
      List.iter
        (fun line ->
          out.(!pos) <- line;
          incr pos)
        set)
    t.sets;
  out

let import t state =
  let nsets = Array.length t.sets in
  let len = Array.length state in
  if len < 3 || state.(2) <> nsets then
    invalid_arg "Cache.import: geometry mismatch";
  t.accesses <- state.(0);
  t.misses <- state.(1);
  let pos = ref 3 in
  for i = 0 to nsets - 1 do
    if !pos >= len then invalid_arg "Cache.import: truncated state";
    let n = state.(!pos) in
    incr pos;
    if n < 0 || n > t.ways || !pos + n > len then
      invalid_arg "Cache.import: bad set length";
    t.sets.(i) <- List.init n (fun j -> state.(!pos + j));
    pos := !pos + n
  done;
  if !pos <> len then invalid_arg "Cache.import: trailing state"

type hierarchy = {
  l1 : t;
  l2 : t;
  l1_hit_latency : int;
  l2_hit_latency : int;
  memory_latency : int;
}

let hierarchy (cfg : Config.t) =
  {
    l1 =
      create ~log2_sets:cfg.Config.l1_log2_sets ~ways:cfg.Config.l1_ways
        ~line_bytes:cfg.Config.line_bytes;
    l2 =
      create ~log2_sets:cfg.Config.l2_log2_sets ~ways:cfg.Config.l2_ways
        ~line_bytes:cfg.Config.line_bytes;
    l1_hit_latency = cfg.Config.l1_hit_latency;
    l2_hit_latency = cfg.Config.l2_hit_latency;
    memory_latency = cfg.Config.memory_latency;
  }

let load_latency h address =
  if access h.l1 address then h.l1_hit_latency
  else if access h.l2 address then h.l2_hit_latency
  else h.memory_latency

let store h address =
  (* Stores allocate but complete through the write buffer. *)
  ignore (access h.l1 address);
  ignore (access h.l2 address)
