(** Simulation statistics. All counters are cumulative over one run. *)

type t = {
  mutable cycles : int;
  mutable retired : int;  (** architectural instructions (trace length) *)
  mutable cond_branches : int;
  mutable mispredictions : int;
  mutable flushes : int;  (** pipeline flushes actually taken *)
  mutable low_confidence : int;
  mutable low_confidence_mispredicted : int;
  mutable dpred_entries : int;
  mutable dpred_hammock_entries : int;
  mutable dpred_loop_entries : int;
  mutable dpred_merges : int;
      (** dpred episodes that reached the CFM point on both paths *)
  mutable dpred_resolved_before_merge : int;
  mutable dpred_flushes_avoided : int;
      (** mispredictions whose flush dynamic predication removed *)
  mutable dpred_useless_entries : int;
      (** dpred entries whose branch was actually correctly predicted *)
  mutable select_uops : int;
  mutable wrong_side_insts : int;
      (** wrong-path instructions fetched (dpred wrong side + recovery) *)
  mutable loop_early_exits : int;
  mutable loop_late_exits : int;
  mutable loop_no_exits : int;
  mutable loop_correct : int;
  mutable loop_extra_insts : int;
  mutable dpred_cycles : int;
  mutable recovery_cycles : int;
  mutable rob_full_cycles : int;
}

val create : unit -> t

val fields : t -> (string * int) list
(** Every counter as a (name, value) pair, in declaration order — the
    differential oracle diffs two stats structs field-by-field with it. *)

val ipc : t -> float
val mpki : t -> float
val flushes_per_ki : t -> float

val confidence_pvn : t -> float
(** Fraction of low-confidence estimates that were actual
    mispredictions — the paper's Acc_Conf / PVN. *)

val pp : t Fmt.t
