(** Simulation statistics. All counters are cumulative over one run. *)

type t = {
  mutable cycles : int;
  mutable retired : int;  (** architectural instructions (trace length) *)
  mutable cond_branches : int;
  mutable mispredictions : int;
  mutable flushes : int;  (** pipeline flushes actually taken *)
  mutable low_confidence : int;
  mutable low_confidence_mispredicted : int;
  mutable dpred_entries : int;
  mutable dpred_hammock_entries : int;
  mutable dpred_loop_entries : int;
  mutable dpred_merges : int;
      (** dpred episodes that reached the CFM point on both paths *)
  mutable dpred_resolved_before_merge : int;
  mutable dpred_flushes_avoided : int;
      (** mispredictions whose flush dynamic predication removed *)
  mutable dpred_useless_entries : int;
      (** dpred entries whose branch was actually correctly predicted *)
  mutable select_uops : int;
  mutable wrong_side_insts : int;
      (** wrong-path instructions fetched (dpred wrong side + recovery) *)
  mutable loop_early_exits : int;
  mutable loop_late_exits : int;
  mutable loop_no_exits : int;
  mutable loop_correct : int;
  mutable loop_extra_insts : int;
  mutable dpred_cycles : int;
  mutable recovery_cycles : int;
  mutable rob_full_cycles : int;
  mutable mpp_lookups : int;
      (** low-confidence diverge decisions that consulted the dynamic
          merge-point predictor (0 under the static provider) *)
  mutable mpp_predicted : int;
      (** lookups the predictor answered, i.e. dpred episodes entered
          on a {e predicted} merge point *)
  mutable mpp_warmup_retired : int;
      (** retired-instruction count at the predictor's first answered
          lookup — the warm-up distance (0 = never answered) *)
}

val create : unit -> t

val fields : t -> (string * int) list
(** Every counter as a (name, value) pair, in declaration order — the
    differential oracle diffs two stats structs field-by-field with it. *)

val merge : t -> t -> t
(** Fieldwise sum, as a fresh record. [merge] is associative and
    commutative with {!create} as identity (plain integer addition per
    counter), so per-segment statistics of a checkpointed run fold into
    the whole-run statistics in any grouping. *)

val diff : t -> t -> t
(** Fieldwise difference [a - b], as a fresh record: the per-segment
    delta between two cumulative snapshots. [merge b (diff a b) = a]. *)

val copy : t -> t

val equal : t -> t -> bool
(** Fieldwise equality of every counter — what "byte-identical
    statistics" means throughout the fused-sweep and checkpoint
    equivalence tests. *)

val scale_round : float -> t -> t
(** Every counter multiplied by the factor and rounded to nearest, as a
    fresh record — extrapolates a sampled window to its full segment. *)

val to_array : t -> int array
(** The counter values in declaration order ({!fields} without the
    names) — the layout {!load} expects and checkpoints store. *)

val load : t -> int array -> unit
(** Overwrite every counter from a {!to_array} snapshot.
    @raise Invalid_argument on a length mismatch. *)

val ipc : t -> float
val mpki : t -> float
val flushes_per_ki : t -> float

val confidence_pvn : t -> float
(** Fraction of low-confidence estimates that were actual
    mispredictions — the paper's Acc_Conf / PVN. *)

val pp : t Fmt.t
