(** Edge/branch profiler.

    Consumes the architectural event stream of a profiling input set —
    from a live emulator or a replayed packed trace — and records, per
    static conditional branch: execution count, taken count, and
    mispredictions under a software profiling predictor. Block
    execution counts give the edge profile the paper's Alg-freq
    consumes. *)

open Dmp_ir
open Dmp_exec
open Dmp_predictor

type branch = {
  mutable executed : int;
  mutable taken : int;
  mutable mispredicted : int;
}

type t

val collect :
  ?predictor:Predictor.t -> ?max_insts:int -> Linked.t -> input:int array -> t
(** Profile by emulating [input] live. *)

val collect_trace :
  ?predictor:Predictor.t -> ?max_insts:int -> Linked.t -> Trace.t -> t
(** Profile by replaying a packed trace of the same linked program;
    yields a profile identical to {!collect} over the input the trace
    was captured from (same cap caveat as {!Dmp_uarch.Sim.create_replay}). *)

val collect_source :
  ?predictor:Predictor.t -> ?max_insts:int -> Linked.t -> Source.t -> t
(** Profile an arbitrary trace source (the general form of the two
    above). *)

val retired : t -> int
val branch : t -> addr:int -> branch option
val executed : t -> addr:int -> int

val taken_prob : t -> addr:int -> float
(** 0.5 for branches never seen during profiling. *)

val misp_rate : t -> addr:int -> float
val mispredictions : t -> addr:int -> int
val block_count : t -> func:int -> block:int -> int

val edge_prob : t -> func:int -> block:int -> dir:Dmp_cfg.Cfg.dir -> float
(** Profiled probability of leaving [block] in direction [dir]. *)

val total_branch_executions : t -> int
val total_mispredictions : t -> int

val mpki : t -> float
(** Mispredictions per kilo-instruction under the profiling predictor. *)

val branch_addrs : t -> int list

type raw
(** Marshal-friendly image of a profile: all collected counters, but not
    the [Linked.t] the profile was collected against (programs contain
    structure that must not be serialised and is cheap to rebuild).
    Two profiles with equal counters have byte-identical
    [Marshal]-serialised raws. *)

val to_raw : t -> raw
val of_raw : Linked.t -> raw -> t

val make_raw :
  branches:(int * branch) list -> block_counts:int array array ->
  retired:int -> raw
(** Build a raw image from explicit counters — the construction path
    for profiles that were not collected from an event stream (e.g.
    reconstructed from sparse hardware samples by
    [Dmp_sampling.Reconstruct]). Branches are copied and sorted by
    address; [block_counts] must be shaped like the linked program the
    raw will be materialised against ([of_raw] does not check). A raw
    built from the counters of an existing profile serialises
    byte-identically to that profile's {!to_raw}. *)
