(** Edge/branch profiler.

    Runs the architectural emulator over a profiling input set and
    records, per static conditional branch: execution count, taken
    count, and mispredictions under a software profiling predictor.
    Block execution counts give the edge profile the paper's Alg-freq
    consumes. *)

open Dmp_ir
open Dmp_predictor

type branch = {
  mutable executed : int;
  mutable taken : int;
  mutable mispredicted : int;
}

type t

val collect :
  ?predictor:Predictor.t -> ?max_insts:int -> Linked.t -> input:int array -> t

val retired : t -> int
val branch : t -> addr:int -> branch option
val executed : t -> addr:int -> int

val taken_prob : t -> addr:int -> float
(** 0.5 for branches never seen during profiling. *)

val misp_rate : t -> addr:int -> float
val mispredictions : t -> addr:int -> int
val block_count : t -> func:int -> block:int -> int

val edge_prob : t -> func:int -> block:int -> dir:Dmp_cfg.Cfg.dir -> float
(** Profiled probability of leaving [block] in direction [dir]. *)

val total_branch_executions : t -> int
val total_mispredictions : t -> int

val mpki : t -> float
(** Mispredictions per kilo-instruction under the profiling predictor. *)

val branch_addrs : t -> int list

type raw
(** Marshal-friendly image of a profile: all collected counters, but not
    the [Linked.t] the profile was collected against (programs contain
    structure that must not be serialised and is cheap to rebuild).
    Two profiles with equal counters have byte-identical
    [Marshal]-serialised raws. *)

val to_raw : t -> raw
val of_raw : Linked.t -> raw -> t
