open Dmp_ir
open Dmp_exec
open Dmp_predictor

type branch = {
  mutable executed : int;
  mutable taken : int;
  mutable mispredicted : int;
}

type t = {
  linked : Linked.t;
  branch_stats : (int, branch) Hashtbl.t;
  block_counts : int array array;
  mutable retired : int;
}

let stats_for t addr =
  match Hashtbl.find_opt t.branch_stats addr with
  | Some s -> s
  | None ->
      let s = { executed = 0; taken = 0; mispredicted = 0 } in
      Hashtbl.replace t.branch_stats addr s;
      s

let collect_source ?(predictor = Predictor.perceptron ())
    ?(max_insts = max_int) linked source =
  let block_counts =
    Array.init (Program.num_funcs linked.Linked.program) (fun fi ->
        Array.make
          (Func.num_blocks (Program.func linked.Linked.program fi))
          0)
  in
  let t = { linked; branch_stats = Hashtbl.create 256; block_counts;
            retired = 0 }
  in
  let count_block addr =
    let fi, bi = Linked.block_of_addr linked addr in
    block_counts.(fi).(bi) <- block_counts.(fi).(bi) + 1
  in
  count_block (Linked.entry_addr linked);
  let retired = ref 0 in
  while !retired < max_insts && Source.advance source do
    incr retired;
    if Source.is_cond_branch source then begin
      let addr = Source.addr source in
      let taken = Source.taken source in
      let s = stats_for t addr in
      s.executed <- s.executed + 1;
      if taken then s.taken <- s.taken + 1;
      let predicted = predictor.Predictor.predict ~addr in
      if predicted <> taken then s.mispredicted <- s.mispredicted + 1;
      predictor.Predictor.update ~addr ~taken
    end;
    (* Count entry into the next basic block: any control transfer or a
       fall into a block boundary. *)
    let next = Source.next_addr source in
    if next <> Event.halted_next then begin
      let l = Linked.loc linked next in
      if l.Linked.pos = 0 then count_block next
    end
  done;
  t.retired <- !retired;
  t

let collect ?predictor ?max_insts linked ~input =
  collect_source ?predictor ?max_insts linked
    (Source.live (Emulator.create linked ~input))

let collect_trace ?predictor ?max_insts linked trace =
  collect_source ?predictor ?max_insts linked (Source.replay trace)

let retired t = t.retired
let branch t ~addr = Hashtbl.find_opt t.branch_stats addr

let executed t ~addr =
  match branch t ~addr with Some s -> s.executed | None -> 0

let taken_prob t ~addr =
  match branch t ~addr with
  | Some s when s.executed > 0 -> float_of_int s.taken /. float_of_int s.executed
  | Some _ | None -> 0.5

let misp_rate t ~addr =
  match branch t ~addr with
  | Some s when s.executed > 0 ->
      float_of_int s.mispredicted /. float_of_int s.executed
  | Some _ | None -> 0.

let mispredictions t ~addr =
  match branch t ~addr with Some s -> s.mispredicted | None -> 0

let block_count t ~func ~block = t.block_counts.(func).(block)

let edge_prob t ~func ~block ~dir =
  let f = Program.func t.linked.Linked.program func in
  let b = Func.block f block in
  match (b.Block.term, dir) with
  | Term.Branch _, Dmp_cfg.Cfg.Taken ->
      let addr = Linked.block_addr t.linked ~func ~block
                 + Array.length b.Block.body
      in
      taken_prob t ~addr
  | Term.Branch _, Dmp_cfg.Cfg.Fallthrough ->
      let addr = Linked.block_addr t.linked ~func ~block
                 + Array.length b.Block.body
      in
      1. -. taken_prob t ~addr
  | _, Dmp_cfg.Cfg.Always -> 1.
  | (Term.Jump _ | Term.Ret | Term.Halt), (Dmp_cfg.Cfg.Taken | Dmp_cfg.Cfg.Fallthrough) ->
      0.

let total_branch_executions t =
  Hashtbl.fold (fun _ s acc -> acc + s.executed) t.branch_stats 0

let total_mispredictions t =
  Hashtbl.fold (fun _ s acc -> acc + s.mispredicted) t.branch_stats 0

let mpki t =
  if t.retired = 0 then 0.
  else float_of_int (total_mispredictions t) *. 1000. /. float_of_int t.retired

let branch_addrs t =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) t.branch_stats []
  |> List.sort Int.compare

(* Branches are kept as a sorted association list so the serialised
   bytes do not depend on hash-table insertion order. *)
type raw = {
  raw_branches : (int * branch) list;
  raw_block_counts : int array array;
  raw_retired : int;
}

let to_raw t =
  {
    raw_branches =
      Hashtbl.fold (fun addr s acc -> (addr, s) :: acc) t.branch_stats []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
    raw_block_counts = t.block_counts;
    raw_retired = t.retired;
  }

let make_raw ~branches ~block_counts ~retired =
  {
    raw_branches =
      List.map
        (fun (addr, s) ->
          ( addr,
            { executed = s.executed; taken = s.taken;
              mispredicted = s.mispredicted } ))
        branches
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
    raw_block_counts = Array.map Array.copy block_counts;
    raw_retired = retired;
  }

let of_raw linked raw =
  let branch_stats = Hashtbl.create 256 in
  List.iter
    (fun (addr, s) ->
      Hashtbl.replace branch_stats addr
        { executed = s.executed; taken = s.taken;
          mispredicted = s.mispredicted })
    raw.raw_branches;
  {
    linked;
    branch_stats;
    block_counts = Array.map Array.copy raw.raw_block_counts;
    retired = raw.raw_retired;
  }
