open Dmp_ir

type bump = {
  mutable melded : int;
  mutable hoisted : int;
  mutable selects : int;
  mutable rejected_shape : int;
  mutable rejected_profile : int;
  mutable rejected_size : int;
  mutable rejected_regs : int;
}

let to_stats b =
  { Stats.zero with
    Stats.melded = b.melded;
    hoisted = b.hoisted;
    selects = b.selects;
    rejected_shape = b.rejected_shape;
    rejected_profile = b.rejected_profile;
    rejected_size = b.rejected_size;
    rejected_regs = b.rejected_regs }

let gap_instr = function
  | Align.Shared _ -> None
  | Align.Left i | Align.Right i -> Some i

let sweep ~config ~profile ~branch_addr ~pool ~record_fresh (st : Region.t)
    =
  let preds = Hammock.pred_counts st.Region.blocks in
  let b = { melded = 0; hoisted = 0; selects = 0; rejected_shape = 0;
            rejected_profile = 0; rejected_size = 0; rejected_regs = 0 }
  in
  let changed = ref false in
  let n = Array.length st.Region.blocks in
  for i = 0 to n - 1 do
    let reject_shape () = b.rejected_shape <- b.rejected_shape + 1 in
    match Hammock.find ~preds st.Region.blocks i with
    | None -> (
        match st.Region.blocks.(i).Block.term with
        | Term.Branch _ -> reject_shape ()
        | _ -> ())
    | Some { Hammock.taken_arm = None; _ }
    | Some { Hammock.fall_arm = None; _ } ->
        (* Melding needs two arms to align; triangles belong to
           if-conversion. *)
        reject_shape ()
    | Some h -> (
        let tb = Hammock.arm_body st.Region.blocks h.Hammock.taken_arm in
        let fb = Hammock.arm_body st.Region.blocks h.Hammock.fall_arm in
        let steps = Align.align tb fb in
        let shared = Align.shared_count steps in
        let gaps_pure =
          List.for_all
            (fun s ->
              match gap_instr s with
              | Some ins -> Region.predicable ins
              | None -> true)
            steps
        in
        let similarity =
          2. *. float_of_int shared
          /. float_of_int (Array.length tb + Array.length fb)
        in
        if
          shared = 0 || (not gaps_pure)
          || similarity < config.Pass_config.min_similarity
        then reject_shape ()
        else
          match
            Region.pick_regs ~pool ~avoid:(Region.mentioned_regs [ tb; fb ])
          with
          | None -> b.rejected_regs <- b.rejected_regs + 1
          | Some (p, t) -> (
              let pred =
                Predicate.materialize ~p h.Hammock.cond h.Hammock.src1
                  h.Hammock.src2
              in
              let eff_gaps =
                List.fold_left
                  (fun acc s ->
                    match gap_instr s with
                    | Some ins when Instr.defs ins <> [] -> acc + 1
                    | _ -> acc)
                  0 steps
              in
              let blk = st.Region.blocks.(i) in
              let est_size =
                Array.length blk.Block.body
                + List.length pred.Predicate.insts
                + shared + (2 * eff_gaps)
              in
              let absorbed_cbrs =
                1 + st.Region.absorbed.(i)
                + st.Region.absorbed.(Option.get h.Hammock.taken_arm)
                + st.Region.absorbed.(Option.get h.Hammock.fall_arm)
              in
              match
                Profitability.decide ~config profile ~addr:(branch_addr i)
                  ~est_size ~absorbed_cbrs
              with
              | Profitability.Convert ->
                  let melded =
                    List.concat_map
                      (function
                        | Align.Shared ins -> [ ins ]
                        | Align.Left ins ->
                            Region.predicated ~pred ~on_taken_path:true
                              ~tmp:t ins
                        | Align.Right ins ->
                            Region.predicated ~pred ~on_taken_path:false
                              ~tmp:t ins)
                      steps
                  in
                  let body =
                    Array.concat
                      [
                        blk.Block.body;
                        Array.of_list pred.Predicate.insts;
                        Array.of_list melded;
                      ]
                  in
                  st.Region.blocks.(i) <-
                    { blk with Block.body = body;
                      term = Term.Jump h.Hammock.join };
                  st.Region.absorbed.(i) <- absorbed_cbrs;
                  st.Region.changed <- true;
                  record_fresh p;
                  record_fresh t;
                  changed := true;
                  b.melded <- b.melded + 1;
                  b.hoisted <- b.hoisted + shared;
                  b.selects <- b.selects + eff_gaps
              | Profitability.Skip_too_large ->
                  b.rejected_size <- b.rejected_size + 1
              | Profitability.Skip_too_many_branches ->
                  b.rejected_size <- b.rejected_size + 1
              | Profitability.Skip_disabled | Profitability.Skip_cold
              | Profitability.Skip_well_predicted ->
                  b.rejected_profile <- b.rejected_profile + 1))
  done;
  (to_stats b, !changed)

let run ~config ~profile ~branch_addr ~pool ~record_fresh st =
  let acc = ref Stats.zero in
  let rec go fuel =
    let stats, changed =
      sweep ~config ~profile ~branch_addr ~pool ~record_fresh st
    in
    if changed && fuel > 0 then begin
      acc :=
        Stats.add !acc
          { stats with Stats.rejected_shape = 0; rejected_profile = 0;
            rejected_size = 0; rejected_regs = 0 };
      go (fuel - 1)
    end
    else Stats.add !acc stats
  in
  go (Array.length st.Region.blocks)
