open Dmp_ir

(* Swap the arms of every register-form select. Inverting all the
   guards of a conversion exchanges the two predicated arms wholesale,
   so the corruption is observable whenever any converted hammock
   executes with both branch outcomes — a single swapped select can be
   masked by a later unconditional redefinition of its destination,
   which is why the smoke test inverts them all. *)
let swap_selects (program : Program.t) =
  let count = ref 0 in
  let funcs =
    Array.to_list
      (Array.map
         (fun (f : Func.t) ->
           let blocks =
             Array.map
               (fun (blk : Block.t) ->
                 let body =
                   Array.map
                     (fun ins ->
                       match ins with
                       | Instr.Select
                           { dst; cond; if_true; if_false = Instr.Reg fr } ->
                           incr count;
                           Instr.Select
                             { dst; cond; if_true = fr;
                               if_false = Instr.Reg if_true }
                       | _ -> ins)
                     blk.Block.body
                 in
                 { blk with Block.body })
               f.Func.blocks
           in
           { f with Func.blocks })
         program.Program.funcs)
  in
  if !count = 0 then None
  else
    let main = (Program.main_func program).Func.name in
    Some (Program.of_funcs_exn ~main funcs)
