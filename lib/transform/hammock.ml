open Dmp_ir

type t = {
  branch : int;
  cond : Term.cond;
  src1 : Reg.t;
  src2 : Instr.operand;
  taken_arm : int option;
  fall_arm : int option;
  join : int;
}

let pred_counts blocks =
  let n = Array.length blocks in
  let preds = Array.make n [] in
  Array.iteri
    (fun i b ->
      List.iter
        (fun s -> if s >= 0 && s < n then preds.(s) <- i :: preds.(s))
        (Block.successors b))
    blocks;
  Array.map (fun l -> Array.of_list (List.rev l)) preds

(* An arm block qualifies when the branch is its only way in, it is
   not the function entry, and it exits with an unconditional jump. *)
let arm_exit ~preds blocks ~branch a =
  if a = Func.entry then None
  else if preds.(a) <> [| branch |] then None
  else match blocks.(a).Block.term with Term.Jump j -> Some j | _ -> None

let find ~preds blocks i =
  match blocks.(i).Block.term with
  | Term.Branch { cond; src1; src2; target; fall }
    when target <> fall && target <> i && fall <> i -> (
      let mk ~taken_arm ~fall_arm ~join =
        if join = i then None
        else
          Some
            { branch = i; cond; src1; src2; taken_arm; fall_arm; join }
      in
      let t_exit = arm_exit ~preds blocks ~branch:i target in
      let f_exit = arm_exit ~preds blocks ~branch:i fall in
      match (t_exit, f_exit) with
      | Some jt, Some jf when jt = jf && jt <> target && jt <> fall ->
          mk ~taken_arm:(Some target) ~fall_arm:(Some fall) ~join:jt
      | Some jt, _ when jt = fall ->
          mk ~taken_arm:(Some target) ~fall_arm:None ~join:fall
      | _, Some jf when jf = target ->
          mk ~taken_arm:None ~fall_arm:(Some fall) ~join:target
      | _ -> None)
  | _ -> None

let arm_body blocks = function
  | None -> [||]
  | Some a -> blocks.(a).Block.body
