(** Longest-common-subsequence alignment of two instruction
    sequences, the core of DARM-style melding: aligned (structurally
    equal) instructions are emitted once, unaligned ones are
    predicated. *)

open Dmp_ir

type step =
  | Shared of Instr.t  (** present in both arms at aligned positions *)
  | Left of Instr.t  (** only in the first (taken) arm *)
  | Right of Instr.t  (** only in the second (fall-through) arm *)

val align : Instr.t array -> Instr.t array -> step list
(** An LCS alignment; both sequences' relative orders are preserved.
    Deterministic: ties prefer consuming the first sequence. *)

val shared_count : step list -> int

val similarity : Instr.t array -> Instr.t array -> float
(** [2*|LCS| / (|a| + |b|)]; 0 when both arms are empty. *)
