(** The profitability gate shared by both passes.

    A software-predicated region pays the both-arms cost on every
    execution, so converting a branch the hardware predictor already
    handles is a pure loss (the hwpgo lesson): only branches at or
    above the configured misprediction-rate threshold convert, and
    only when the resulting straight-line region respects the paper's
    MAX_INSTR / MAX_CBR limits. *)

type verdict =
  | Convert
  | Skip_disabled  (** bias threshold >= 1.0: pipeline is the identity *)
  | Skip_cold  (** branch never executed under the profile *)
  | Skip_well_predicted  (** misprediction rate below the threshold *)
  | Skip_too_large  (** estimated region size exceeds MAX_INSTR *)
  | Skip_too_many_branches  (** absorbed branches would exceed MAX_CBR *)

val decide :
  config:Pass_config.t -> Dmp_profile.Profile.t -> addr:int ->
  est_size:int -> absorbed_cbrs:int -> verdict
(** [addr] is the branch's address in the original linked program;
    [est_size] the estimated instruction count of the flattened
    region; [absorbed_cbrs] the conditional branches the region would
    swallow (this branch included). *)

val to_string : verdict -> string
