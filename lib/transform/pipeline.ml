open Dmp_ir

type result = {
  program : Program.t;
  linked : Linked.t;
  stats : Stats.t;
  fresh_regs : Reg.t list;
  changed : bool;
  config : Pass_config.t;
}

let free_regs (program : Program.t) =
  let used = Array.make Reg.count false in
  used.(Reg.to_int Reg.zero) <- true;
  Array.iter
    (fun (f : Func.t) ->
      Array.iter
        (fun (blk : Block.t) ->
          Array.iter
            (fun ins ->
              List.iter
                (fun r -> used.(Reg.to_int r) <- true)
                (Instr.defs ins @ Instr.uses ins))
            blk.Block.body;
          List.iter
            (fun r -> used.(Reg.to_int r) <- true)
            (Term.uses blk.Block.term))
        f.Func.blocks)
    program.Program.funcs;
  let pool = ref [] in
  for r = Reg.count - 1 downto 0 do
    if not used.(r) then pool := Reg.of_int r :: !pool
  done;
  !pool

let run ?(config = Pass_config.default) (linked : Linked.t) profile =
  let program = linked.Linked.program in
  let pool = free_regs program in
  let fresh = Hashtbl.create 8 in
  let record_fresh r = Hashtbl.replace fresh r () in
  let stats = ref Stats.zero in
  let fstates = Array.map Region.of_func program.Program.funcs in
  List.iter
    (fun pass ->
      Array.iteri
        (fun fi st ->
          let orig = (Program.func program fi).Func.blocks in
          let branch_addr bi =
            Linked.block_addr linked ~func:fi ~block:bi
            + Array.length orig.(bi).Block.body
          in
          let delta =
            match pass with
            | Pass_config.If_convert ->
                If_convert.run ~config ~profile ~branch_addr ~pool
                  ~record_fresh st
            | Pass_config.Meld ->
                Meld.run ~config ~profile ~branch_addr ~pool ~record_fresh
                  st
          in
          stats := Stats.add !stats delta)
        fstates)
    config.Pass_config.passes;
  if not (Array.exists (fun st -> st.Region.changed) fstates) then
    { program; linked; stats = !stats; fresh_regs = []; changed = false;
      config }
  else begin
    let funcs =
      Array.to_list
        (Array.mapi
           (fun fi st ->
             let f = Program.func program fi in
             if st.Region.changed then
               Region.cleanup { f with Func.blocks = st.Region.blocks }
             else f)
           fstates)
    in
    let main = (Program.main_func program).Func.name in
    let program' = Program.of_funcs_exn ~main funcs in
    let fresh_regs =
      List.sort Reg.compare (Hashtbl.fold (fun r () acc -> r :: acc) fresh [])
    in
    { program = program'; linked = Linked.link program'; stats = !stats;
      fresh_regs; changed = true; config }
  end
