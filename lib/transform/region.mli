(** Shared rewriting machinery for the two passes: per-function
    mutable state, the predicable-instruction test, the
    compute-into-scratch + select-commit expansion, fresh-register
    selection, and dead-block cleanup. *)

open Dmp_ir

type t = {
  mutable blocks : Block.t array;
      (** current blocks; indices stay stable until {!cleanup}, so a
          block still ending in a conditional branch is untouched and
          keeps its original profile address *)
  absorbed : int array;
      (** conditional branches each block has swallowed, for the
          MAX_CBR gate on nested conversion *)
  mutable changed : bool;
}

val of_func : Func.t -> t

val predicable : Instr.t -> bool
(** Safe to execute on the wrong path with its destination guarded by
    a select: register-only computation and loads (memory semantics
    are total). Stores, calls and I/O are not; melding may still hoist
    those when both arms agree on them. *)

val effective : Instr.t array -> int
(** Instructions with an architectural effect (a real destination):
    what predication actually has to emit selects for. *)

val predicated :
  pred:Predicate.t -> on_taken_path:bool -> tmp:Reg.t -> Instr.t ->
  Instr.t list
(** [d <- f(...)] becomes [tmp <- f(...); sel d, ...]; instructions
    with no architectural effect vanish. *)

val mentioned_regs : Instr.t array list -> Reg.t list
(** Every register an instruction sequence reads or writes. *)

val pick_regs :
  pool:Reg.t list -> avoid:Reg.t list -> (Reg.t * Reg.t) option
(** Predicate and scratch registers for one conversion: the two
    lowest-numbered pool registers not mentioned by the region being
    predicated (nested regions contain earlier conversions' predicate
    and scratch registers, so each nesting level claims its own
    pair). *)

val cleanup : Func.t -> Func.t
(** Drop unreachable blocks (flattened arms) and renumber. Only
    called on functions a pass actually changed, so an untouched
    function round-trips physically identical. *)
