type t = {
  converted : int;
  melded : int;
  hoisted : int;
  selects : int;
  rejected_shape : int;
  rejected_profile : int;
  rejected_size : int;
  rejected_regs : int;
}

let zero =
  { converted = 0; melded = 0; hoisted = 0; selects = 0; rejected_shape = 0;
    rejected_profile = 0; rejected_size = 0; rejected_regs = 0 }

let add a b =
  {
    converted = a.converted + b.converted;
    melded = a.melded + b.melded;
    hoisted = a.hoisted + b.hoisted;
    selects = a.selects + b.selects;
    rejected_shape = a.rejected_shape + b.rejected_shape;
    rejected_profile = a.rejected_profile + b.rejected_profile;
    rejected_size = a.rejected_size + b.rejected_size;
    rejected_regs = a.rejected_regs + b.rejected_regs;
  }

let pp ppf t =
  Fmt.pf ppf
    "converted=%d melded=%d hoisted=%d selects=%d rejected: shape=%d \
     profile=%d size=%d regs=%d"
    t.converted t.melded t.hoisted t.selects t.rejected_shape
    t.rejected_profile t.rejected_size t.rejected_regs
