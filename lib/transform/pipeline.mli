(** The pass pipeline: run every configured pass (each to its own
    fixpoint) over a linked program under its edge profile.

    The pipeline is a pure function of (program, profile counters,
    config): no randomness, no iteration-order dependence — the same
    inputs always produce the structurally identical transformed
    program, which is what lets the Runner cache transformed artifacts
    under a config fingerprint and the property suite assert
    determinism across seeds and job counts. *)

open Dmp_ir

type result = {
  program : Program.t;  (** transformed (the original when unchanged) *)
  linked : Linked.t;  (** transformed program, linked *)
  stats : Stats.t;
  fresh_regs : Reg.t list;
      (** predicate/scratch registers the transform claimed; the
          equivalence oracle excludes them from final-register
          comparison (they are dead at every join, but hold pass
          residue) *)
  changed : bool;
  config : Pass_config.t;
}

val run :
  ?config:Pass_config.t -> Linked.t -> Dmp_profile.Profile.t -> result
(** When nothing converts (e.g. [bias_threshold >= 1.0]), [program]
    and [linked] are the originals, physically unchanged. *)

val free_regs : Program.t -> Reg.t list
(** Registers (r0 excluded) no instruction or terminator of any
    function mentions: the pool both passes draw predicate and scratch
    registers from. Program-wide, so a claimed register can never be
    clobbered across a hoisted call. *)
