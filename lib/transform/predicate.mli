(** Predicate materialisation and the select-guard idiom shared by
    both passes.

    The branch condition is computed once into a fresh register [p] as
    a 0/1 value using the ISA's set-compare operations. [Ge]/[Gt] have
    no direct set-compare; rather than spend an extra xor, [p] is
    computed as the *negated* condition and the guard swaps the select
    arms ([taken_when_set] records which way [p] points).

    A predicated instruction [d <- f(...)] becomes
    [t <- f(...); sel d, p, ...] — the compute lands in the scratch
    register and the select commits it only on the instruction's own
    path, so sequentially composing both predicated arms preserves
    each path's architectural state (wrong-path computes are
    discarded by their selects). *)

open Dmp_ir

type t = {
  reg : Reg.t;  (** the predicate register *)
  insts : Instr.t list;  (** instructions that materialise it *)
  taken_when_set : bool;
      (** [true]: [reg <> 0] means the branch would have been taken *)
}

val materialize : p:Reg.t -> Term.cond -> Reg.t -> Instr.operand -> t

val guard : t -> on_taken_path:bool -> dst:Reg.t -> tmp:Reg.t -> Instr.t
(** The select committing [tmp] into [dst] exactly when execution
    would have reached this instruction's arm. *)
