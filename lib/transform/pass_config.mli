(** Configuration of the software-predication pass pipeline.

    The two passes mirror the two software baselines the paper's
    introduction discusses: select-based if-conversion (full
    predication of simple hammocks) and DARM-style control-flow
    melding (alignment + hoisting of structurally similar arms).
    Both are gated by the same profitability heuristic
    ({!Profitability}): the hwpgo lesson says converting
    well-predicted branches only costs, so branches below
    [bias_threshold] misprediction rate are skipped, and region sizes
    reuse the paper's MAX_INSTR / MAX_CBR machinery via
    [params]. *)

type pass = If_convert | Meld

type t = {
  passes : pass list;  (** applied in order, each to a fixpoint *)
  bias_threshold : float;
      (** minimum profiled misprediction rate for conversion; a
          threshold >= 1.0 disables both passes, making the pipeline
          the identity transform *)
  min_similarity : float;
      (** melding only: minimum [2*|LCS| / (|then| + |else|)] arm
          similarity *)
  params : Dmp_core.Params.t;
      (** [max_instr] bounds the predicated region size,
          [max_cbr] the number of branches absorbed into one region *)
}

val default : t
(** Both passes, [bias_threshold] = 0.05 (the short-hammock
    [short_min_misp_rate] of the paper), [min_similarity] = 0.5,
    {!Dmp_core.Params.default}. *)

val pass_to_string : pass -> string
val passes_to_string : pass list -> string

val passes_of_string : string -> (pass list, string) result
(** Parse a comma-separated pass list, e.g. ["if-convert,meld"];
    ["none"] is the empty pipeline. *)

val fingerprint : t -> string
(** Stable hex digest of every semantic field; cache keys for
    transformed-program stages embed it so a config change can never
    alias a cached artifact. *)

val pp : t Fmt.t
