(** Counters accumulated by the pass pipeline: what was rewritten and
    why the rest was not. *)

type t = {
  converted : int;  (** hammocks flattened by if-conversion *)
  melded : int;  (** hammocks flattened by melding *)
  hoisted : int;  (** aligned instructions emitted once by melding *)
  selects : int;  (** select instructions emitted by both passes *)
  rejected_shape : int;
      (** branch is not a simple/nested hammock, or an arm has an
          unpredicable side effect *)
  rejected_profile : int;  (** branch predicted too well (hwpgo gate) *)
  rejected_size : int;  (** region exceeds MAX_INSTR or MAX_CBR *)
  rejected_regs : int;  (** no free registers for predicate/scratch *)
}

val zero : t
val add : t -> t -> t
val pp : t Fmt.t
