(** Hammock-shape detection over a function's (possibly already
    partially rewritten) block array.

    A hammock is a conditional branch whose two successors re-converge
    at a single join block after at most one side block per arm:
    a diamond ([b -> {T, F}], [T -> J], [F -> J]) or a triangle (one
    edge goes straight to the join). Arm blocks must be entered only
    from the branch, so flattening them cannot capture another path.
    Nested hammocks are handled by the passes' fixpoint: converting an
    inner hammock collapses its arm to a single block, exposing the
    outer one to this detector on the next sweep. *)

open Dmp_ir

type t = {
  branch : int;  (** block index of the diverging branch *)
  cond : Term.cond;
  src1 : Reg.t;
  src2 : Instr.operand;
  taken_arm : int option;  (** [None]: the taken edge goes to the join *)
  fall_arm : int option;  (** [None]: the fall edge goes to the join *)
  join : int;
}

val pred_counts : Block.t array -> int array array
(** Predecessor block indices (with multiplicity) per block. *)

val find : preds:int array array -> Block.t array -> int -> t option
(** The hammock rooted at block [i], if its shape qualifies. At least
    one arm is present ([target <> fall] and the degenerate
    both-edges-to-join case is rejected as a shape). *)

val arm_body : Block.t array -> int option -> Instr.t array
(** The arm's instructions; [[||]] for an absent arm. *)
