(** Select-based if-conversion: a profile-eligible hammock whose arms
    are pure straight-line computation is flattened into the branch
    block — predicate materialisation, then both arms with every
    write select-guarded — and the branch becomes a jump to the join.
    Runs to a fixpoint, so nested hammocks collapse inside-out. *)

open Dmp_ir

val run :
  config:Pass_config.t -> profile:Dmp_profile.Profile.t ->
  branch_addr:(int -> int) -> pool:Reg.t list ->
  record_fresh:(Reg.t -> unit) -> Region.t -> Stats.t
(** [branch_addr block] is the branch's address in the original
    linked program (profile lookups); [pool] the program-wide free
    registers; [record_fresh] is told every predicate/scratch register
    actually claimed. *)
