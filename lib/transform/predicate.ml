open Dmp_ir

type t = { reg : Reg.t; insts : Instr.t list; taken_when_set : bool }

let materialize ~p cond src1 src2 =
  let set op taken_when_set =
    { reg = p;
      insts = [ Instr.Alu { op; dst = p; src1; src2 } ];
      taken_when_set }
  in
  match cond with
  | Term.Eq -> set Instr.Seq true
  | Term.Ne -> set Instr.Sne true
  | Term.Lt -> set Instr.Slt true
  | Term.Le -> set Instr.Sle true
  (* No set-ge/set-gt compare: materialise the complement and let the
     guard swap its select arms. *)
  | Term.Ge -> set Instr.Slt false
  | Term.Gt -> set Instr.Sle false

let guard t ~on_taken_path ~dst ~tmp =
  if t.taken_when_set = on_taken_path then
    Instr.Select
      { dst; cond = t.reg; if_true = tmp; if_false = Instr.Reg dst }
  else
    Instr.Select
      { dst; cond = t.reg; if_true = dst; if_false = Instr.Reg tmp }
