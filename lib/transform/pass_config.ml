type pass = If_convert | Meld

type t = {
  passes : pass list;
  bias_threshold : float;
  min_similarity : float;
  params : Dmp_core.Params.t;
}

let default =
  {
    passes = [ If_convert; Meld ];
    bias_threshold = 0.05;
    min_similarity = 0.5;
    params = Dmp_core.Params.default;
  }

let pass_to_string = function If_convert -> "if-convert" | Meld -> "meld"

let passes_to_string = function
  | [] -> "none"
  | ps -> String.concat "," (List.map pass_to_string ps)

let passes_of_string s =
  match String.trim s with
  | "none" | "" -> Ok []
  | s ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | w :: tl -> (
            match String.trim w with
            | "if-convert" -> go (If_convert :: acc) tl
            | "meld" -> go (Meld :: acc) tl
            | w ->
                Error
                  (Printf.sprintf
                     "unknown pass %s (expected if-convert, meld or none)" w))
      in
      go [] (String.split_on_char ',' s)

let fingerprint t =
  let p = t.params in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "transform-v1|%s|bias=%h|sim=%h|mi=%d|mc=%d"
          (passes_to_string t.passes)
          t.bias_threshold t.min_similarity p.Dmp_core.Params.max_instr
          p.Dmp_core.Params.max_cbr))

let pp ppf t =
  Fmt.pf ppf "{passes=%s; bias>=%.3f; sim>=%.2f; max_instr=%d; max_cbr=%d}"
    (passes_to_string t.passes)
    t.bias_threshold t.min_similarity t.params.Dmp_core.Params.max_instr
    t.params.Dmp_core.Params.max_cbr
