(** Deliberate miscompilation for the oracle's mutation smoke test: a
    meld/if-conversion with its select operands swapped commits the
    wrong path's value, which {!Dmp_check.Oracle.check_transform} must
    catch. *)

open Dmp_ir

val swap_selects : Program.t -> Program.t option
(** Swap the [if_true]/[if_false] operands of every select instruction
    whose false operand is a register — every guard the transform
    emits has that form, so this exchanges the predicated arms of
    every conversion. [None] when the program has no such select — the
    transform never fired. *)
