type verdict =
  | Convert
  | Skip_disabled
  | Skip_cold
  | Skip_well_predicted
  | Skip_too_large
  | Skip_too_many_branches

let decide ~(config : Pass_config.t) profile ~addr ~est_size ~absorbed_cbrs =
  let params = config.Pass_config.params in
  if config.Pass_config.bias_threshold >= 1.0 then Skip_disabled
  else if Dmp_profile.Profile.executed profile ~addr = 0 then Skip_cold
  else if
    Dmp_profile.Profile.misp_rate profile ~addr
    < config.Pass_config.bias_threshold
  then Skip_well_predicted
  else if est_size > params.Dmp_core.Params.max_instr then Skip_too_large
  else if absorbed_cbrs > params.Dmp_core.Params.max_cbr then
    Skip_too_many_branches
  else Convert

let to_string = function
  | Convert -> "convert"
  | Skip_disabled -> "disabled"
  | Skip_cold -> "cold"
  | Skip_well_predicted -> "well-predicted"
  | Skip_too_large -> "too-large"
  | Skip_too_many_branches -> "too-many-branches"
