(** DARM-style control-flow melding: the two arms of a diamond
    hammock are LCS-aligned; aligned (structurally identical)
    instructions are hoisted once unpredicated, the per-arm gaps are
    select-guarded like if-conversion. Because a hoisted instruction
    runs exactly once with the active path's register state, melding
    also flattens arms with *matching* side effects (stores, calls,
    I/O) that if-conversion must reject — the gaps alone have to be
    pure. Gated by arm similarity on top of the shared profitability
    heuristic; runs to a fixpoint like {!If_convert}. *)

open Dmp_ir

val run :
  config:Pass_config.t -> profile:Dmp_profile.Profile.t ->
  branch_addr:(int -> int) -> pool:Reg.t list ->
  record_fresh:(Reg.t -> unit) -> Region.t -> Stats.t
