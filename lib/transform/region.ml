open Dmp_ir

type t = {
  mutable blocks : Block.t array;
  absorbed : int array;
  mutable changed : bool;
}

let of_func (f : Func.t) =
  {
    blocks = Array.copy f.Func.blocks;
    absorbed = Array.make (Array.length f.Func.blocks) 0;
    changed = false;
  }

let predicable = function
  | Instr.Alu _ | Instr.Li _ | Instr.Mov _ | Instr.Select _ | Instr.Load _
  | Instr.Nop ->
      true
  | Instr.Store _ | Instr.Call _ | Instr.Read _ | Instr.Write _ -> false

let effective body =
  Array.fold_left
    (fun acc ins -> if Instr.defs ins = [] then acc else acc + 1)
    0 body

let with_dst ins t =
  match ins with
  | Instr.Alu { op; dst = _; src1; src2 } ->
      Instr.Alu { op; dst = t; src1; src2 }
  | Instr.Load { dst = _; base; offset } ->
      Instr.Load { dst = t; base; offset }
  | Instr.Li { dst = _; imm } -> Instr.Li { dst = t; imm }
  | Instr.Mov { dst = _; src } -> Instr.Mov { dst = t; src }
  | Instr.Select { dst = _; cond; if_true; if_false } ->
      Instr.Select { dst = t; cond; if_true; if_false }
  | Instr.Store _ | Instr.Call _ | Instr.Read _ | Instr.Write _
  | Instr.Nop ->
      invalid_arg "Region.with_dst: instruction has no destination"

let predicated ~pred ~on_taken_path ~tmp ins =
  match Instr.defs ins with
  | [ d ] ->
      [ with_dst ins tmp; Predicate.guard pred ~on_taken_path ~dst:d ~tmp ]
  | _ ->
      (* A predicable instruction without a destination (nop, or a
         write to the discarding r0) has no architectural effect. *)
      []

let mentioned_regs bodies =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun body ->
      Array.iter
        (fun ins ->
          List.iter
            (fun r -> Hashtbl.replace seen r ())
            (Instr.defs ins @ Instr.uses ins))
        body)
    bodies;
  Hashtbl.fold (fun r () acc -> r :: acc) seen []

let pick_regs ~pool ~avoid =
  match List.filter (fun r -> not (List.mem r avoid)) pool with
  | p :: t :: _ -> Some (p, t)
  | _ -> None

let cleanup (f : Func.t) =
  let blocks = f.Func.blocks in
  let n = Array.length blocks in
  let keep = Array.make n false in
  let rec visit i =
    if not keep.(i) then begin
      keep.(i) <- true;
      List.iter visit (Block.successors blocks.(i))
    end
  in
  visit Func.entry;
  let map = Array.make n (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if keep.(i) then begin
      map.(i) <- !next;
      incr next
    end
  done;
  let kept = ref [] in
  for i = n - 1 downto 0 do
    if keep.(i) then
      kept :=
        { blocks.(i) with
          Block.term = Term.map_label (fun l -> map.(l)) blocks.(i).Block.term
        }
        :: !kept
  done;
  { f with Func.blocks = Array.of_list !kept }
