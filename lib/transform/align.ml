open Dmp_ir

type step = Shared of Instr.t | Left of Instr.t | Right of Instr.t

(* Classic O(n*m) LCS table; arms are bounded by MAX_INSTR so the
   quadratic cost is negligible. *)
let lcs_table a b =
  let n = Array.length a and m = Array.length b in
  let t = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      t.(i).(j) <-
        (if a.(i) = b.(j) then 1 + t.(i + 1).(j + 1)
         else max t.(i + 1).(j) t.(i).(j + 1))
    done
  done;
  t

let align a b =
  let n = Array.length a and m = Array.length b in
  let t = lcs_table a b in
  let rec walk i j acc =
    if i >= n && j >= m then List.rev acc
    else if i < n && j < m && a.(i) = b.(j) then
      walk (i + 1) (j + 1) (Shared a.(i) :: acc)
    else if j >= m || (i < n && t.(i + 1).(j) >= t.(i).(j + 1)) then
      walk (i + 1) j (Left a.(i) :: acc)
    else walk i (j + 1) (Right b.(j) :: acc)
  in
  walk 0 0 []

let shared_count steps =
  List.fold_left
    (fun acc s -> match s with Shared _ -> acc + 1 | _ -> acc)
    0 steps

let similarity a b =
  let n = Array.length a and m = Array.length b in
  if n + m = 0 then 0.
  else
    let t = lcs_table a b in
    2. *. float_of_int t.(0).(0) /. float_of_int (n + m)
