open Dmp_ir

type bump = {
  mutable converted : int;
  mutable selects : int;
  mutable rejected_shape : int;
  mutable rejected_profile : int;
  mutable rejected_size : int;
  mutable rejected_regs : int;
}

let to_stats b =
  { Stats.zero with
    Stats.converted = b.converted;
    selects = b.selects;
    rejected_shape = b.rejected_shape;
    rejected_profile = b.rejected_profile;
    rejected_size = b.rejected_size;
    rejected_regs = b.rejected_regs }

let absorbed_of (st : Region.t) = function
  | None -> 0
  | Some a -> st.Region.absorbed.(a)

let sweep ~config ~profile ~branch_addr ~pool ~record_fresh (st : Region.t)
    =
  let preds = Hammock.pred_counts st.Region.blocks in
  let b = { converted = 0; selects = 0; rejected_shape = 0;
            rejected_profile = 0; rejected_size = 0; rejected_regs = 0 }
  in
  let changed = ref false in
  let n = Array.length st.Region.blocks in
  for i = 0 to n - 1 do
    match Hammock.find ~preds st.Region.blocks i with
    | None -> (
        match st.Region.blocks.(i).Block.term with
        | Term.Branch _ -> b.rejected_shape <- b.rejected_shape + 1
        | _ -> ())
    | Some h -> (
        let tb = Hammock.arm_body st.Region.blocks h.Hammock.taken_arm in
        let fb = Hammock.arm_body st.Region.blocks h.Hammock.fall_arm in
        if
          not
            (Array.for_all Region.predicable tb
            && Array.for_all Region.predicable fb)
        then b.rejected_shape <- b.rejected_shape + 1
        else
          match
            Region.pick_regs ~pool ~avoid:(Region.mentioned_regs [ tb; fb ])
          with
          | None -> b.rejected_regs <- b.rejected_regs + 1
          | Some (p, t) -> (
              let pred =
                Predicate.materialize ~p h.Hammock.cond h.Hammock.src1
                  h.Hammock.src2
              in
              let eff = Region.effective tb + Region.effective fb in
              let blk = st.Region.blocks.(i) in
              let est_size =
                Array.length blk.Block.body
                + List.length pred.Predicate.insts
                + (2 * eff)
              in
              let absorbed_cbrs =
                 1 + st.Region.absorbed.(i)
                 + absorbed_of st h.Hammock.taken_arm
                 + absorbed_of st h.Hammock.fall_arm
              in
              match
                Profitability.decide ~config profile ~addr:(branch_addr i)
                  ~est_size ~absorbed_cbrs
              with
              | Profitability.Convert ->
                  let conv body ~on_taken =
                    Array.to_list body
                    |> List.concat_map
                         (Region.predicated ~pred ~on_taken_path:on_taken
                            ~tmp:t)
                  in
                  let body =
                    Array.concat
                      [
                        blk.Block.body;
                        Array.of_list pred.Predicate.insts;
                        Array.of_list (conv tb ~on_taken:true);
                        Array.of_list (conv fb ~on_taken:false);
                      ]
                  in
                  st.Region.blocks.(i) <-
                    { blk with Block.body = body;
                      term = Term.Jump h.Hammock.join };
                  st.Region.absorbed.(i) <- absorbed_cbrs;
                  st.Region.changed <- true;
                  record_fresh p;
                  record_fresh t;
                  changed := true;
                  b.converted <- b.converted + 1;
                  b.selects <- b.selects + eff
              | Profitability.Skip_too_large ->
                  b.rejected_size <- b.rejected_size + 1
              | Profitability.Skip_too_many_branches ->
                  b.rejected_size <- b.rejected_size + 1
              | Profitability.Skip_disabled | Profitability.Skip_cold
              | Profitability.Skip_well_predicted ->
                  b.rejected_profile <- b.rejected_profile + 1))
  done;
  (to_stats b, !changed)

(* Fixpoint: conversions accumulate across sweeps; the rejection
   census is taken from the final sweep only (every remaining branch
   is classified exactly once there). *)
let run ~config ~profile ~branch_addr ~pool ~record_fresh st =
  let acc = ref Stats.zero in
  let rec go fuel =
    let stats, changed =
      sweep ~config ~profile ~branch_addr ~pool ~record_fresh st
    in
    if changed && fuel > 0 then begin
      acc :=
        Stats.add !acc
          { stats with Stats.rejected_shape = 0; rejected_profile = 0;
            rejected_size = 0; rejected_regs = 0 };
      go (fuel - 1)
    end
    else Stats.add !acc stats
  in
  go (Array.length st.Region.blocks)
