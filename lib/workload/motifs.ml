(* Control-flow motif combinators used to assemble the synthetic
   benchmarks. Each motif emits blocks into a Build.fn under a unique
   label prefix and leaves the builder positioned at the motif's join
   point, so motifs compose sequentially.

   Register conventions (never touched by [work] filler):
     r2..r9   benchmark locals / arguments
     r10..r15 motif condition and trip registers
     r20..r27 scratch registers for filler work *)

open Dmp_ir
module B = Build

let scratch_base = 20
let scratch_count = 8
let scratch i = Reg.of_int (scratch_base + (i mod scratch_count))

(* Global accumulator: motif arms fold their result into it, so it is
   live at every join point and each dynamic hammock needs at least one
   select-uop, as in real code. *)
let acc_reg = Reg.of_int 16

(* The filler-variation counter is domain-local and reset at the start
   of every benchmark build (see [fresh_build]), so the program a
   benchmark builds depends neither on which benchmarks were built
   before it in this process nor on which domain builds it. Persistent
   profile caching and parallel prefetching both rely on this. *)
let work_counter = Domain.DLS.new_key (fun () -> ref 0)

let next_work_index () =
  let c = Domain.DLS.get work_counter in
  let k = !c in
  incr c;
  k

let fresh_build build () =
  Domain.DLS.get work_counter := 0;
  build ()

let bump_acc f =
  let k = next_work_index () in
  B.add f acc_reg acc_reg (B.imm ((k mod 11) + 1))

(* [work f n] emits [n] dependence-mixed ALU instructions over the
   scratch registers. Every read is of a register written earlier in the
   same call, so scratch registers are *dead* at every motif join point
   — select-µops only reconcile genuinely live state, as a real
   compiler's temporaries would. The op mix is deterministic but varied
   so different call sites produce different code. *)
let work f n =
  if n > 0 then begin
    let k0 = next_work_index () in
    let first = scratch k0 in
    B.li f first ((k0 mod 89) + 1);
    let last = ref first and prev = ref first in
    for _ = 2 to n do
      let k = next_work_index () in
      let dst = scratch k in
      let a = !last and b = !prev in
      (match k mod 5 with
      | 0 -> B.add f dst a (B.imm ((k mod 13) + 1))
      | 1 -> B.xor f dst a (B.reg b)
      | 2 -> B.sub f dst a (B.imm ((k mod 7) + 1))
      | 3 -> B.shl f dst a (B.imm ((k mod 3) + 1))
      | _ -> B.or_ f dst a (B.reg b));
      prev := a;
      last := dst
    done
  end

(* Heavier filler containing a serial multiply chain, lowering local
   IPC. Same liveness discipline as [work]. *)
let heavy_work f n =
  if n > 0 then begin
    let k0 = next_work_index () in
    let first = scratch k0 in
    B.li f first ((k0 mod 31) + 2);
    let last = ref first in
    for i = 2 to n do
      let k = next_work_index () in
      let dst = scratch k in
      if i mod 4 = 0 then B.mul f dst !last (B.imm ((k mod 5) + 3))
      else B.add f dst !last (B.imm 1);
      last := dst
    done
  end

(* dst <- 1 with probability [percent]/100, assuming [src] holds a
   uniformly distributed non-negative value. *)
let bit_from f ~dst ~src ~percent =
  B.rem f dst src (B.imm 100);
  B.alu f Instr.Slt dst dst (B.imm percent)

(* dst <- src mod modulus (loop trip counts, table indices). *)
let mod_of f ~dst ~src ~modulus = B.rem f dst src (B.imm modulus)

(* Read the next input value into [dst]. *)
let read f dst = B.read f dst

(* if cond <> 0 then <then_size insts> else <else_size insts>; join.
   An exact simple hammock (Figure 3a); [else_size = 0] gives the plain
   "if" shape. *)
let simple_hammock f ~prefix ~cond ~then_size ~else_size =
  let lbl s = prefix ^ "_" ^ s in
  B.branch f Term.Ne cond (B.imm 0) ~target:(lbl "then") ();
  B.label f (lbl "else");
  work f else_size;
  bump_acc f;
  B.jump f (lbl "join");
  B.label f (lbl "then");
  work f then_size;
  bump_acc f;
  B.label f (lbl "join")

(* Nested hammock (Figure 3b): the taken side contains an inner
   hammock on [cond2]. The IPOSDOM of the outer branch is the join. *)
let nested_hammock f ~prefix ~cond1 ~cond2 ~sizes =
  let s1, s2, s3, s4 = sizes in
  let lbl s = prefix ^ "_" ^ s in
  B.branch f Term.Ne cond1 (B.imm 0) ~target:(lbl "then") ();
  B.label f (lbl "else");
  work f s1;
  bump_acc f;
  B.jump f (lbl "join");
  B.label f (lbl "then");
  work f s2;
  B.branch f Term.Ne cond2 (B.imm 0) ~target:(lbl "ithen") ();
  B.label f (lbl "ielse");
  work f s3;
  bump_acc f;
  B.jump f (lbl "join");
  B.label f (lbl "ithen");
  work f s4;
  bump_acc f;
  B.label f (lbl "join")

(* Frequently-hammock (Figure 3c): both hot sides merge at "join", but
   the taken side has a rare exit ([rare] <> 0, low probability) to a
   long cold path that bypasses the join, so the join is only an
   approximate CFM point and the exact CFM (IPOSDOM) is far away. *)
let freq_hammock f ?cold_exit ~prefix ~cond ~rare ~hot_taken ~hot_fall
    ~join_size ~cold_size () =
  let lbl s = prefix ^ "_" ^ s in
  let cold_target = match cold_exit with Some l -> l | None -> lbl "after" in
  B.branch f Term.Ne cond (B.imm 0) ~target:(lbl "hot_t") ();
  B.label f (lbl "hot_nt");
  work f hot_fall;
  bump_acc f;
  B.jump f (lbl "join");
  B.label f (lbl "hot_t");
  work f (hot_taken / 2);
  B.branch f Term.Ne rare (B.imm 0) ~target:(lbl "cold") ();
  B.label f (lbl "hot_t2");
  work f (hot_taken - (hot_taken / 2));
  bump_acc f;
  B.jump f (lbl "join");
  B.label f (lbl "cold");
  work f cold_size;
  B.jump f cold_target;
  B.label f (lbl "join");
  work f join_size;
  B.label f (lbl "after")

(* Frequently-hammock with rare exits on both sides (lower merge
   probability, exercises MIN_MERGE_PROB). *)
let freq_hammock2 f ?cold_exit ~prefix ~cond ~rare_t ~rare_nt ~hot_taken
    ~hot_fall ~join_size ~cold_size () =
  let lbl s = prefix ^ "_" ^ s in
  let cold_target = match cold_exit with Some l -> l | None -> lbl "after" in
  B.branch f Term.Ne cond (B.imm 0) ~target:(lbl "hot_t") ();
  B.label f (lbl "hot_nt");
  work f (hot_fall / 2);
  B.branch f Term.Ne rare_nt (B.imm 0) ~target:(lbl "cold_nt") ();
  B.label f (lbl "hot_nt2");
  work f (hot_fall - (hot_fall / 2));
  bump_acc f;
  B.jump f (lbl "join");
  B.label f (lbl "hot_t");
  work f (hot_taken / 2);
  B.branch f Term.Ne rare_t (B.imm 0) ~target:(lbl "cold_t") ();
  B.label f (lbl "hot_t2");
  work f (hot_taken - (hot_taken / 2));
  bump_acc f;
  B.jump f (lbl "join");
  B.label f (lbl "cold_t");
  work f cold_size;
  B.jump f cold_target;
  B.label f (lbl "cold_nt");
  work f cold_size;
  B.jump f cold_target;
  B.label f (lbl "join");
  work f join_size;
  B.label f (lbl "after")

(* Short hammock with a rare bypass on the taken side: the join is an
   *approximate* CFM point (merge probability ~ 1 - p(rare)), so the
   branch is found by Alg-freq rather than Alg-exact, yet still
   qualifies for always-predication under the short-hammock heuristic
   (sides < 10 instructions, merge probability >= 95%). *)
let short_freq_hammock f ?cold_exit ~prefix ~cond ~rare ~then_size
    ~else_size ~cold_size () =
  let lbl s = prefix ^ "_" ^ s in
  let cold_target = match cold_exit with Some l -> l | None -> lbl "after" in
  B.branch f Term.Ne cond (B.imm 0) ~target:(lbl "then") ();
  B.label f (lbl "else");
  work f else_size;
  bump_acc f;
  B.jump f (lbl "join");
  B.label f (lbl "then");
  work f then_size;
  bump_acc f;
  B.branch f Term.Ne rare (B.imm 0) ~target:(lbl "cold") ();
  B.label f (lbl "join");
  work f 2;
  B.jump f (lbl "after");
  B.label f (lbl "cold");
  work f cold_size;
  B.jump f cold_target;
  B.label f (lbl "after")

(* A hard-to-predict branch whose arms are long and rejoin only far
   away: dynamic predication of it would fill the window with wrong-path
   instructions, so neither the threshold heuristics (MAX_INSTR) nor the
   cost-benefit model selects it. Its mispredictions are the ones DMP
   cannot remove — every real program has plenty. *)
let diffuse_hammock f ~prefix ~cond ~side =
  let lbl s = prefix ^ "_" ^ s in
  B.branch f Term.Ne cond (B.imm 0) ~target:(lbl "long_t") ();
  B.label f (lbl "long_nt");
  work f (side / 3);
  bump_acc f;
  work f (side - (side / 3));
  bump_acc f;
  B.jump f (lbl "join");
  B.label f (lbl "long_t");
  work f (side / 2);
  bump_acc f;
  work f (side - (side / 2));
  bump_acc f;
  B.label f (lbl "join")

(* Loop-carried serial dependency chain on a persistent register:
   models data-dependent computation that the out-of-order core cannot
   parallelise across iterations (board evaluation, graph updates).
   Caps the achievable baseline IPC. *)
let serial_chain f ~reg ~n =
  for i = 1 to n do
    if i mod 3 = 0 then B.rem f reg reg (B.imm 65521)
    else if i mod 3 = 1 then B.mul f reg reg (B.imm 3)
    else B.add f reg reg (B.imm 7)
  done

(* Fixed-trip loop: fully predictable after warm-up; dilutes the
   misprediction rate the way real programs' regular loops do. *)
let fixed_loop f ~prefix ~trips ~body_size =
  let t = Reg.of_int 19 in
  let lbl s = prefix ^ "_" ^ s in
  B.li f t trips;
  B.label f (lbl "head");
  work f body_size;
  B.sub f t t (B.imm 1);
  B.branch f Term.Gt t (B.imm 0) ~target:(lbl "head") ();
  B.label f (lbl "exit")

(* Data-dependent loop: executes the body [trip] times (trip >= 1).
   The exit branch mispredicts when the trip count is irregular. *)
let data_loop f ~prefix ~trip ~body_size =
  let lbl s = prefix ^ "_" ^ s in
  B.label f (lbl "head");
  work f body_size;
  bump_acc f;
  B.sub f trip trip (B.imm 1);
  B.branch f Term.Gt trip (B.imm 0) ~target:(lbl "head") ();
  B.label f (lbl "exit")

(* Loop with a hammock inside the body: mispredictions inside loops. *)
let loop_with_hammock f ~prefix ~trip ~cond_src ~body_size ~percent =
  let lbl s = prefix ^ "_" ^ s in
  let c = Reg.of_int 15 in
  B.label f (lbl "head");
  read f cond_src;
  bit_from f ~dst:c ~src:cond_src ~percent;
  simple_hammock f ~prefix:(lbl "h") ~cond:c ~then_size:(body_size / 2)
    ~else_size:(body_size / 2);
  B.sub f trip trip (B.imm 1);
  B.branch f Term.Gt trip (B.imm 0) ~target:(lbl "head") ();
  B.label f (lbl "exit")

(* Pointer-chase style loads: [n] dependent loads at pseudo-random
   addresses derived from [addr_src], over a [footprint]-byte region
   starting at [base]. Large footprints produce cache misses. After the
   chase, r18 holds the final (load-dependent) address and r17 the last
   loaded value — conditions derived from them resolve only after the
   cache misses, like real pointer-chasing code. *)
let chase_addr_reg = Reg.of_int 18
let chase_value_reg = Reg.of_int 17

let chase f ~addr_src ~base ~footprint ~n =
  let a = Reg.of_int 18 and v = Reg.of_int 17 in
  B.rem f a addr_src (B.imm footprint);
  B.add f a a (B.imm base);
  for _ = 1 to n do
    B.load f v a 0;
    B.sub f a a (B.imm base);
    B.add f a a (B.reg v);
    B.mul f a a (B.imm 1103);
    B.add f a a (B.reg addr_src);
    B.rem f a a (B.imm footprint);
    B.add f a a (B.imm base)
  done

(* Strided stores priming a memory region (so later chase loads find
   plausible values). *)
let prime_memory f ~prefix ~base ~words ~stride =
  let a = Reg.of_int 14 and v = Reg.of_int 13 and i = Reg.of_int 12 in
  let lbl s = prefix ^ "_" ^ s in
  B.li f i words;
  B.li f a base;
  B.li f v 17;
  B.label f (lbl "head");
  B.store f v a 0;
  B.add f a a (B.imm stride);
  B.mul f v v (B.imm 13);
  B.rem f v v (B.imm 97);
  B.sub f i i (B.imm 1);
  B.branch f Term.Gt i (B.imm 0) ~target:(lbl "head") ();
  B.label f (lbl "done")
