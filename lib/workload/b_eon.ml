(* eon stand-in: ray tracing in well-structured C++ style — almost all
   mispredictions come from clean *simple* hammocks, so even the naive
   selectors do well here (Section 7.2), and the ILP is high. *)

open Dmp_ir
module B = Build

let iterations = 1700
let reads_per_iteration = 2

let build () =
  let cold_funcs, cold_entry = Cold_code.library ~seed:7003 ~functions:32 in
  let f = B.func "main" in
  let v0 = Spec.value_reg 0 and v1 = Spec.value_reg 1 in
  let t = Spec.value_reg 2 in
  let c = Spec.cond_reg 0 in
  Spec.outer_loop f ~iterations
    ~prologue:(fun () -> Cold_code.call_gate f ~entry_name:cold_entry)
    (fun () ->
      B.read f v0;
      B.read f v1;
      (* Conditions for the late unpredicatable branches are
         computed early, so those branches resolve at the minimum
         misprediction penalty. *)
      B.div f (Reg.of_int 8) v0 (B.imm 10000);
      Motifs.bit_from f ~dst:(Reg.of_int 8) ~src:(Reg.of_int 8) ~percent:80;
      Motifs.bit_from f ~dst:c ~src:v0 ~percent:92;
      Motifs.simple_hammock f ~prefix:"shadow" ~cond:c ~then_size:10
        ~else_size:8;
      Motifs.work f 18;
      B.div f t v0 (B.imm 100);
      Motifs.bit_from f ~dst:c ~src:t ~percent:88;
      Motifs.simple_hammock f ~prefix:"specular" ~cond:c ~then_size:12
        ~else_size:9;
      Motifs.work f 20;
      Motifs.bit_from f ~dst:c ~src:v1 ~percent:90;
      Motifs.simple_hammock f ~prefix:"clip" ~cond:c ~then_size:7
        ~else_size:7;
      Motifs.work f 16;
      B.div f t v1 (B.imm 100);
      Motifs.bit_from f ~dst:c ~src:t ~percent:80;
      B.div f t v1 (B.imm 10000);
      Motifs.bit_from f ~dst:(Spec.cond_reg 1) ~src:t ~percent:4;
      Motifs.freq_hammock f ~cold_exit:"outer_latch" ~prefix:"bounce" ~cond:c
        ~rare:(Spec.cond_reg 1) ~hot_taken:9 ~hot_fall:11 ~join_size:6
        ~cold_size:140 ();
      Motifs.fixed_loop f ~prefix:"dot" ~trips:4 ~body_size:10;
      Motifs.diffuse_hammock f ~prefix:"refr" ~cond:(Reg.of_int 8) ~side:95;
      Motifs.work f 22);
  Program.of_funcs_exn ~main:"main" ([ B.finish f ] @ cold_funcs)

let input set =
  let n = 1 + (iterations * reads_per_iteration) + 64 in
  match set with
  | Input_gen.Reduced ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:77 ~n ~bound:1000000)
  | Input_gen.Train ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:1077 ~n ~bound:1000000)
  | Input_gen.Ref ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:2077 ~n ~bound:1000000)

let spec =
  {
    Spec.name = "eon";
    description = "ray tracing: biased simple hammocks, high ILP";
    program = lazy (Motifs.fresh_build build ());
    input;
  }
