(* twolf stand-in: standard-cell placement — short mispredicted
   hammocks plus utility functions whose arms return separately (the
   return-CFM mechanism is worth +8% on twolf in the paper). *)

open Dmp_ir
module B = Build

let iterations = 1900
let reads_per_iteration = 2

let build () =
  let overlap =
    Funcs.ret_hammock ~name:"overlap" ~cond:Spec.arg_reg ~a_size:7
      ~b_size:9
  in
  let pick_cell =
    Funcs.ret_hammock ~name:"pick_cell" ~cond:Spec.arg_reg ~a_size:5
      ~b_size:6
  in
  let cold_funcs, cold_entry = Cold_code.library ~seed:7014 ~functions:32 in
  let f = B.func "main" in
  let v0 = Spec.value_reg 0 and v1 = Spec.value_reg 1 in
  let t = Spec.value_reg 2 in
  let c = Spec.cond_reg 0 in
  Spec.outer_loop f ~iterations
    ~prologue:(fun () -> Cold_code.call_gate f ~entry_name:cold_entry)
    (fun () ->
      B.read f v0;
      B.read f v1;
      (* Conditions for the late unpredicatable branches are
         computed early, so those branches resolve at the minimum
         misprediction penalty. *)
      B.div f (Reg.of_int 8) v0 (B.imm 1000);
      Motifs.bit_from f ~dst:(Reg.of_int 8) ~src:(Reg.of_int 8) ~percent:48;
      B.div f (Reg.of_int 9) v1 (B.imm 10);
      Motifs.bit_from f ~dst:(Reg.of_int 9) ~src:(Reg.of_int 9) ~percent:50;
      (* Two short cost-comparison hammocks. *)
      B.div f (Spec.cond_reg 2) v0 (B.imm 100);
      Motifs.bit_from f ~dst:(Spec.cond_reg 2) ~src:(Spec.cond_reg 2)
        ~percent:3;
      Motifs.bit_from f ~dst:c ~src:v0 ~percent:60;
      Motifs.short_freq_hammock f ~cold_exit:"outer_latch" ~prefix:"cost" ~cond:c
        ~rare:(Spec.cond_reg 2) ~then_size:4 ~else_size:4 ~cold_size:110 ();
      B.div f t v0 (B.imm 100);
      Motifs.bit_from f ~dst:c ~src:t ~percent:80;
      Motifs.simple_hammock f ~prefix:"wire" ~cond:c ~then_size:3
        ~else_size:5;
      (* Return-CFM callees. *)
      Motifs.bit_from f ~dst:Spec.arg_reg ~src:v1 ~percent:82;
      B.call f "overlap";
      B.div f t v1 (B.imm 100);
      Motifs.bit_from f ~dst:Spec.arg_reg ~src:t ~percent:80;
      B.call f "pick_cell";
      (* A moderate frequently-hammock. *)
      Motifs.bit_from f ~dst:c ~src:v1 ~percent:63;
      B.div f t v1 (B.imm 10000);
      Motifs.bit_from f ~dst:(Spec.cond_reg 1) ~src:t ~percent:4;
      Motifs.freq_hammock f ~cold_exit:"outer_latch" ~prefix:"mv" ~cond:c ~rare:(Spec.cond_reg 1)
        ~hot_taken:11 ~hot_fall:12 ~join_size:7 ~cold_size:130 ();
      (* Penalty recomputation: long arms, no close merge. *)
      Motifs.diffuse_hammock f ~prefix:"pen" ~cond:(Reg.of_int 8) ~side:95;
      Motifs.diffuse_hammock f ~prefix:"ovl" ~cond:(Reg.of_int 9) ~side:95;
      B.branch f Term.Ne Spec.mode_reg (B.imm 1) ~target:"skip_dens" ();
      B.label f "dens";
      Motifs.bit_from f ~dst:c ~src:v0 ~percent:52;
      Motifs.simple_hammock f ~prefix:"dn" ~cond:c ~then_size:4
        ~else_size:5;
      B.label f "skip_dens";
      Motifs.fixed_loop f ~prefix:"row" ~trips:3 ~body_size:8;
      Motifs.work f 16);
  Program.of_funcs_exn ~main:"main"
    ([ B.finish f; overlap; pick_cell ] @ cold_funcs)

let input set =
  let n = 1 + (iterations * reads_per_iteration) + 64 in
  match set with
  | Input_gen.Reduced ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:133 ~n ~bound:500000)
  | Input_gen.Train ->
      Input_gen.with_mode 2 (Input_gen.uniform ~seed:1133 ~n ~bound:450000)
  | Input_gen.Ref ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:2133 ~n ~bound:500000)

let spec =
  {
    Spec.name = "twolf";
    description = "placement: short hammocks + return-CFM utilities";
    program = lazy (Motifs.fresh_build build ());
    input;
  }
