(* ijpeg (SPEC95) stand-in: image compression — multiply-heavy fixed
   inner loops (predictable), a quantisation hammock, and an edge-case
   frequently-hammock. 18% input-set-exclusive diverge branches. *)

open Dmp_ir
module B = Build

let iterations = 1500
let reads_per_iteration = 2

let build () =
  let cold_funcs, cold_entry = Cold_code.library ~seed:7008 ~functions:32 in
  let f = B.func "main" in
  let v0 = Spec.value_reg 0 and v1 = Spec.value_reg 1 in
  let c = Spec.cond_reg 0 and rare = Spec.cond_reg 1 in
  let trip = Spec.cond_reg 3 in
  Spec.outer_loop f ~iterations
    ~prologue:(fun () -> Cold_code.call_gate f ~entry_name:cold_entry)
    (fun () ->
      B.read f v0;
      B.read f v1;
      (* Conditions for the late unpredicatable branches are
         computed early, so those branches resolve at the minimum
         misprediction penalty. *)
      B.div f (Reg.of_int 8) v0 (B.imm 1000);
      Motifs.bit_from f ~dst:(Reg.of_int 8) ~src:(Reg.of_int 8) ~percent:75;
      (* 8-tap DCT-ish fixed loop: well predicted. *)
      B.li f trip 8;
      B.label f "dct_head";
      Motifs.heavy_work f 6;
      B.sub f trip trip (B.imm 1);
      B.branch f Term.Gt trip (B.imm 0) ~target:"dct_head" ();
      B.label f "dct_done";
      (* Quantisation clip: biased. *)
      Motifs.bit_from f ~dst:c ~src:v0 ~percent:86;
      Motifs.simple_hammock f ~prefix:"clip" ~cond:c ~then_size:6
        ~else_size:8;
      (* Huffman escape path: rare, bypasses the merge. *)
      Motifs.bit_from f ~dst:c ~src:v1 ~percent:60;
      B.div f rare v1 (B.imm 100);
      Motifs.bit_from f ~dst:rare ~src:rare ~percent:4;
      Motifs.freq_hammock f ~cold_exit:"outer_latch" ~prefix:"huff" ~cond:c ~rare ~hot_taken:10
        ~hot_fall:12 ~join_size:8 ~cold_size:150 ();
      (* Progressive-mode section: gated on large values. *)
      B.branch f Term.Lt v0 (B.imm 500000) ~target:"skip_prog" ();
      B.label f "prog";
      Motifs.bit_from f ~dst:c ~src:v1 ~percent:50;
      Motifs.simple_hammock f ~prefix:"pg" ~cond:c ~then_size:5
        ~else_size:4;
      B.label f "skip_prog";
      Motifs.diffuse_hammock f ~prefix:"mrk" ~cond:(Reg.of_int 8) ~side:95;
      Motifs.work f 10);
  Program.of_funcs_exn ~main:"main" ([ B.finish f ] @ cold_funcs)

let input set =
  let n = 1 + (iterations * reads_per_iteration) + 64 in
  match set with
  | Input_gen.Reduced ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:166 ~n ~bound:600000)
  | Input_gen.Train ->
      (* Small images: the progressive section never runs. *)
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:1166 ~n ~bound:400000)
  | Input_gen.Ref ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:2166 ~n ~bound:600000)

let spec =
  {
    Spec.name = "ijpeg";
    description = "image codec: fixed DCT loops, quantisation hammocks";
    program = lazy (Motifs.fresh_build build ());
    input;
  }
