(* mcf stand-in: network-simplex pointer chasing. Serialized dependent
   loads over an 8MB footprint dominate (base IPC is the lowest of the
   suite), and the hottest mispredicted branch is a *short* hammock
   whose always-predication buys a large win, as in the paper. *)

open Dmp_ir
module B = Build

let iterations = 900
let reads_per_iteration = 2
let heap_base = 1 lsl 16
let footprint = 1 lsl 21

let build () =
  let cold_funcs, cold_entry = Cold_code.library ~seed:7011 ~functions:32 in
  let f = B.func "main" in
  let v0 = Spec.value_reg 0 and v1 = Spec.value_reg 1 in
  let c0 = Spec.cond_reg 0 and c1 = Spec.cond_reg 1 in
  Spec.outer_loop f ~iterations
    ~prologue:(fun () ->
      Cold_code.call_gate f ~entry_name:cold_entry;
      Motifs.prime_memory f ~prefix:"prime" ~base:heap_base ~words:2048
        ~stride:64)
    (fun () ->
      B.read f v0;
      B.read f v1;
      (* Conditions for the late unpredicatable branches are
         computed early, so those branches resolve at the minimum
         misprediction penalty. *)
      B.div f (Reg.of_int 8) v0 (B.imm 1000);
      Motifs.bit_from f ~dst:(Reg.of_int 8) ~src:(Reg.of_int 8) ~percent:48;
      (* Arc-cost probe: a single load whose value decides the famous
         short hammock, so the branch resolves only after the cache
         access — a baseline flush costs the full load latency, while
         DMP merges at the CFM and keeps fetching. *)
      Motifs.mod_of f ~dst:c0 ~src:v0 ~modulus:(1 lsl 19);
      B.add f c0 c0 (B.imm heap_base);
      B.load f c0 c0 0;
      B.add f c0 c0 (B.reg v0);
      Motifs.bit_from f ~dst:c0 ~src:c0 ~percent:60;
      B.div f (Spec.cond_reg 2) v0 (B.imm 100);
      Motifs.bit_from f ~dst:(Spec.cond_reg 2) ~src:(Spec.cond_reg 2)
        ~percent:2;
      Motifs.short_freq_hammock f ~cold_exit:"outer_latch" ~prefix:"arc" ~cond:c0
        ~rare:(Spec.cond_reg 2) ~then_size:4 ~else_size:4 ~cold_size:100 ();
      (* Pointer chase through the node array (pure memory-boundness,
         no branches). *)
      Motifs.chase f ~addr_src:v1 ~base:heap_base ~footprint ~n:3;
      Motifs.work f 12;
      (* Basis-change test, biased, input-driven. *)
      Motifs.bit_from f ~dst:c1 ~src:v1 ~percent:99;
      Motifs.simple_hammock f ~prefix:"basis" ~cond:c1 ~then_size:6
        ~else_size:5;
      (* Out-of-core spill handling: only the production (reduced) input
         exercises it, so its diverge branch is only-run in Fig. 10. *)
      B.branch f Term.Ne Spec.mode_reg (B.imm 1) ~target:"skip_spill" ();
      B.label f "spill";
      Motifs.bit_from f ~dst:c1 ~src:v1 ~percent:55;
      Motifs.simple_hammock f ~prefix:"sp" ~cond:c1 ~then_size:4
        ~else_size:5;
      B.label f "skip_spill";
      (* Price refresh: unmergeable hard branch. *)
      Motifs.diffuse_hammock f ~prefix:"prc" ~cond:(Reg.of_int 8) ~side:95;
      Motifs.work f 21);
  Program.of_funcs_exn ~main:"main" ([ B.finish f ] @ cold_funcs)

let input set =
  let n = 1 + (iterations * reads_per_iteration) + 64 in
  match set with
  | Input_gen.Reduced ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:44 ~n ~bound:1000000)
  | Input_gen.Train ->
      (* A narrower value range: part of the footprint is never touched
         and one short hammock's bias shifts (contributes to mcf's
         only-run/only-train split in Fig. 10). *)
      Input_gen.with_mode 2
        (Input_gen.mixture ~seed:1044 ~n ~bound:1000000 ~small_bound:2048
           ~p_small:0.5)
  | Input_gen.Ref ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:2044 ~n ~bound:1000000)

let spec =
  {
    Spec.name = "mcf";
    description = "network simplex: pointer chasing + short hammock";
    program = lazy (Motifs.fresh_build build ());
    input;
  }
