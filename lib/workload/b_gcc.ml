(* gcc stand-in: a big opcode dispatcher over sections of very unequal
   length with few clean reconvergence points — complex CFGs with few
   good diverge-branch candidates but a very high misprediction rate, so
   naive Every-br does almost as well as careful selection (Section
   7.2). *)

open Dmp_ir
module B = Build

let iterations = 1600
let reads_per_iteration = 2

(* A dispatch chain: compare op against 0..k-1; each case runs a section
   of a different size, some with internal hammocks, then jumps to the
   common continuation. Long sections exceed MAX_INSTR, so the
   continuation is not a selectable exact CFM for the early compares. *)
let dispatch f ~op ~inner ~rare =
  let sizes = [| 18; 55; 30; 70; 12; 44; 62; 24 |] in
  let k = Array.length sizes in
  for i = 0 to k - 1 do
    B.branch f Term.Eq op (B.imm i) ~target:(Printf.sprintf "case%d" i)
      ~fall:(if i = k - 1 then "fallout" else Printf.sprintf "cmp%d" (i + 1))
      ();
    if i < k - 1 then B.label f (Printf.sprintf "cmp%d" (i + 1))
  done;
  B.label f "fallout";
  B.jump f "next";
  Array.iteri
    (fun i size ->
      B.label f (Printf.sprintf "case%d" i);
      Motifs.work f (size / 2);
      if i mod 3 = 1 then
        Motifs.freq_hammock f ~cold_exit:"outer_latch" ~prefix:(Printf.sprintf "cs%d" i) ~cond:inner
          ~rare ~hot_taken:6 ~hot_fall:8 ~join_size:4 ~cold_size:120 ();
      Motifs.work f (size - (size / 2));
      (* Odd cases re-enter through a secondary continuation, so "next"
         is only an approximate CFM for the dispatch compares. *)
      if i mod 2 = 0 then B.jump f "next" else B.jump f "next2")
    sizes;
  B.label f "next2";
  Motifs.work f 30;
  B.label f "next"

let build () =
  let cold_funcs, cold_entry = Cold_code.library ~seed:7005 ~functions:32 in
  let f = B.func "main" in
  let v0 = Spec.value_reg 0 and v1 = Spec.value_reg 1 in
  let op = Spec.cond_reg 0 and inner = Spec.cond_reg 1 in
  let c = Spec.cond_reg 2 in
  Spec.outer_loop f ~iterations
    ~prologue:(fun () -> Cold_code.call_gate f ~entry_name:cold_entry)
    (fun () ->
      B.read f v0;
      B.read f v1;
      Motifs.mod_of f ~dst:op ~src:v0 ~modulus:8;
      Motifs.bit_from f ~dst:inner ~src:v1 ~percent:50;
      B.div f c v1 (B.imm 100);
      Motifs.bit_from f ~dst:c ~src:c ~percent:3;
      B.jump f "cmp0";
      B.label f "cmp0";
      dispatch f ~op ~inner ~rare:c;
      (* A nested hammock the selector *can* use. *)
      Motifs.bit_from f ~dst:c ~src:v1 ~percent:70;
      Motifs.nested_hammock f ~prefix:"fold" ~cond1:c ~cond2:inner
        ~sizes:(9, 5, 6, 7);
      Motifs.fixed_loop f ~prefix:"scan" ~trips:3 ~body_size:8;
      Motifs.work f 8);
  Program.of_funcs_exn ~main:"main" ([ B.finish f ] @ cold_funcs)

let input set =
  let n = 1 + (iterations * reads_per_iteration) + 64 in
  match set with
  | Input_gen.Reduced ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:33 ~n ~bound:4096)
  | Input_gen.Train ->
      Input_gen.with_mode 1
        (Input_gen.phased ~seed:1033 ~n ~phase:512 ~bounds:[| 4096; 2048 |])
  | Input_gen.Ref ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:2033 ~n ~bound:4096)

let spec =
  {
    Spec.name = "gcc";
    description = "compiler: opcode dispatch over unequal sections";
    program = lazy (Motifs.fresh_build build ());
    input;
  }
