(* All benchmarks: the 12 SPEC CPU2000 INT stand-ins followed by the 5
   SPEC95 INT stand-ins, in the paper's Table 2 order. *)

let int2000 =
  [
    B_gzip.spec;
    B_vpr.spec;
    B_gcc.spec;
    B_mcf.spec;
    B_crafty.spec;
    B_parser.spec;
    B_eon.spec;
    B_perlbmk.spec;
    B_gap.spec;
    B_vortex.spec;
    B_bzip2.spec;
    B_twolf.spec;
  ]

let int95 =
  [ B_compress.spec; B_go.spec; B_ijpeg.spec; B_li.spec; B_m88ksim.spec ]

let all = int2000 @ int95

let find_opt name =
  List.find_opt (fun s -> String.equal s.Spec.name name) all

let find name =
  match find_opt name with
  | Some s -> s
  | None -> invalid_arg ("Registry.find: unknown benchmark " ^ name)

let names = List.map (fun s -> s.Spec.name) all
