(* go (SPEC95) stand-in: the branchiest program in the suite (MPKI ~23,
   lowest baseline IPC after mcf). Dense 50/50 tactical tests of every
   hammock shape, plus liberty-count functions whose arms return
   separately (go gains from return CFMs in the paper). *)

open Dmp_ir
module B = Build

let iterations = 1500
let reads_per_iteration = 3

let build () =
  let liberties =
    Funcs.ret_hammock ~name:"liberties" ~cond:Spec.arg_reg ~a_size:6
      ~b_size:8
  in
  let cold_funcs, cold_entry = Cold_code.library ~seed:7006 ~functions:32 in
  let f = B.func "main" in
  let v0 = Spec.value_reg 0 and v1 = Spec.value_reg 1 in
  let v2 = Spec.value_reg 2 and t = Spec.value_reg 3 in
  let c0 = Spec.cond_reg 0 and c1 = Spec.cond_reg 1 in
  let rare = Spec.cond_reg 2 in
  Spec.outer_loop f ~iterations
    ~prologue:(fun () -> Cold_code.call_gate f ~entry_name:cold_entry)
    (fun () ->
      B.read f v0;
      B.read f v1;
      B.read f v2;
      (* Conditions for the late unpredicatable branches are
         computed early, so those branches resolve at the minimum
         misprediction penalty. *)
      B.div f (Reg.of_int 8) v0 (B.imm 1000);
      Motifs.bit_from f ~dst:(Reg.of_int 8) ~src:(Reg.of_int 8) ~percent:50;
      B.div f (Reg.of_int 9) v1 (B.imm 10);
      Motifs.bit_from f ~dst:(Reg.of_int 9) ~src:(Reg.of_int 9) ~percent:50;
      B.div f rare v0 (B.imm 100);
      Motifs.bit_from f ~dst:rare ~src:rare ~percent:3;
      Motifs.bit_from f ~dst:c0 ~src:v0 ~percent:70;
      Motifs.short_freq_hammock f ~cold_exit:"outer_latch" ~prefix:"atari" ~cond:c0 ~rare
        ~then_size:4 ~else_size:5 ~cold_size:100 ();
      B.div f t v0 (B.imm 100);
      Motifs.bit_from f ~dst:c1 ~src:t ~percent:52;
      Motifs.bit_from f ~dst:c0 ~src:v1 ~percent:58;
      Motifs.nested_hammock f ~prefix:"lad" ~cond1:c1 ~cond2:c0
        ~sizes:(6, 4, 5, 5);
      Motifs.bit_from f ~dst:Spec.arg_reg ~src:v2 ~percent:66;
      B.call f "liberties";
      B.div f t v1 (B.imm 100);
      Motifs.bit_from f ~dst:c0 ~src:t ~percent:58;
      Motifs.short_freq_hammock f ~cold_exit:"outer_latch" ~prefix:"eye" ~cond:c0 ~rare ~then_size:3
        ~else_size:4 ~cold_size:90 ();
      B.div f t v2 (B.imm 1000);
      Motifs.bit_from f ~dst:rare ~src:t ~percent:5;
      Motifs.bit_from f ~dst:c1 ~src:v2 ~percent:60;
      Motifs.freq_hammock f ~cold_exit:"outer_latch" ~prefix:"cut" ~cond:c1 ~rare ~hot_taken:9
        ~hot_fall:8 ~join_size:6 ~cold_size:120 ();
      Motifs.bit_from f ~dst:c0 ~src:v0 ~percent:58;
      Motifs.short_freq_hammock f ~cold_exit:"outer_latch" ~prefix:"ko" ~cond:c0 ~rare ~then_size:4
        ~else_size:3 ~cold_size:100 ();
      (* Life-and-death reading: long arms, unmergeable. *)
      Motifs.diffuse_hammock f ~prefix:"ld" ~cond:(Reg.of_int 8) ~side:95;
      Motifs.diffuse_hammock f ~prefix:"sek" ~cond:(Reg.of_int 9) ~side:95;
      Motifs.diffuse_hammock f ~prefix:"inf" ~cond:(Reg.of_int 13) ~side:95;
      (* Serial board-evaluation chain carried across iterations. *)
      Motifs.serial_chain f ~reg:(Reg.of_int 15) ~n:24;
      Motifs.heavy_work f 10);
  Program.of_funcs_exn ~main:"main"
    ([ B.finish f; liberties ] @ cold_funcs)

let input set =
  let n = 1 + (iterations * reads_per_iteration) + 64 in
  match set with
  | Input_gen.Reduced ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:155 ~n ~bound:400000)
  | Input_gen.Train ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:1155 ~n ~bound:360000)
  | Input_gen.Ref ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:2155 ~n ~bound:400000)

let spec =
  {
    Spec.name = "go";
    description = "go engine: dense 50/50 tactical branches of all shapes";
    program = lazy (Motifs.fresh_build build ());
    input;
  }
