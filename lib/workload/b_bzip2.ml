(* bzip2 stand-in: block-sorting compression — frequently-hammocks in
   the sort comparisons, a data-dependent run loop, and a value-gated
   rare path (16% input-set-exclusive diverge branches in Fig. 10). *)

open Dmp_ir
module B = Build

let iterations = 1900
let reads_per_iteration = 2

let build () =
  let cold_funcs, cold_entry = Cold_code.library ~seed:7000 ~functions:32 in
  let f = B.func "main" in
  let v0 = Spec.value_reg 0 and v1 = Spec.value_reg 1 in
  let c = Spec.cond_reg 0 and rare = Spec.cond_reg 1 in
  let trip = Spec.cond_reg 3 in
  Spec.outer_loop f ~iterations
    ~prologue:(fun () -> Cold_code.call_gate f ~entry_name:cold_entry)
    (fun () ->
      B.read f v0;
      B.read f v1;
      (* Conditions for the late unpredicatable branches are
         computed early, so those branches resolve at the minimum
         misprediction penalty. *)
      B.div f (Reg.of_int 8) v0 (B.imm 1000);
      Motifs.bit_from f ~dst:(Reg.of_int 8) ~src:(Reg.of_int 8) ~percent:48;
      B.div f (Reg.of_int 9) v1 (B.imm 10);
      Motifs.bit_from f ~dst:(Reg.of_int 9) ~src:(Reg.of_int 9) ~percent:50;
      (* Suffix-comparison frequently-hammock with rare exits on both
         sides (lower merge probability). *)
      Motifs.bit_from f ~dst:c ~src:v0 ~percent:50;
      B.div f rare v0 (B.imm 100);
      Motifs.bit_from f ~dst:rare ~src:rare ~percent:6;
      Motifs.freq_hammock2 f ~cold_exit:"outer_latch" ~prefix:"cmp" ~cond:c ~rare_t:rare
        ~rare_nt:rare ~hot_taken:13 ~hot_fall:12 ~join_size:8
        ~cold_size:140 ();
      (* Run-length loop: trips 1..6. *)
      Motifs.mod_of f ~dst:trip ~src:v1 ~modulus:3;
      B.add f trip trip (B.imm 1);
      Motifs.data_loop f ~prefix:"run" ~trip ~body_size:4;
      (* Rare deep-rescan path, only reached for large values. *)
      B.branch f Term.Lt v1 (B.imm 220000) ~target:"skip_rescan" ();
      B.label f "rescan";
      Motifs.bit_from f ~dst:c ~src:v0 ~percent:45;
      Motifs.simple_hammock f ~prefix:"rs" ~cond:c ~then_size:7
        ~else_size:5;
      B.label f "skip_rescan";
      (* Depth-limited quicksort partition: unmergeable. *)
      Motifs.diffuse_hammock f ~prefix:"qs" ~cond:(Reg.of_int 8) ~side:95;
      Motifs.diffuse_hammock f ~prefix:"pt" ~cond:(Reg.of_int 9) ~side:95;
      Motifs.fixed_loop f ~prefix:"mtf" ~trips:3 ~body_size:9;
      Motifs.work f 12);
  Program.of_funcs_exn ~main:"main" ([ B.finish f ] @ cold_funcs)

let input set =
  let n = 1 + (iterations * reads_per_iteration) + 64 in
  match set with
  | Input_gen.Reduced ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:122 ~n ~bound:250000)
  | Input_gen.Train ->
      (* The rescan section is never reached during training. *)
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:1122 ~n ~bound:200000)
  | Input_gen.Ref ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:2122 ~n ~bound:250000)

let spec =
  {
    Spec.name = "bzip2";
    description = "block sort: freq-hammocks, run loop, value-gated rescan";
    program = lazy (Motifs.fresh_build build ());
    input;
  }
