(* gzip stand-in: run-length/match-length compression feel. A small
   data-dependent match loop (the diverge-loop winner in the paper), a
   frequently-hammock on literal-vs-match, and a biased format check. *)

open Dmp_ir
module B = Build

let iterations = 2500
let reads_per_iteration = 2

let build () =
  let cold_funcs, cold_entry = Cold_code.library ~seed:7007 ~functions:32 in
  let f = B.func "main" in
  let v0 = Spec.value_reg 0 and v1 = Spec.value_reg 1 in
  let c0 = Spec.cond_reg 0 and c1 = Spec.cond_reg 1 in
  let rare = Spec.cond_reg 2 and trip = Spec.cond_reg 3 in
  Spec.outer_loop f ~iterations
    ~prologue:(fun () -> Cold_code.call_gate f ~entry_name:cold_entry)
    (fun () ->
      B.read f v0;
      B.read f v1;
      (* Conditions for the late unpredicatable branches are
         computed early, so those branches resolve at the minimum
         misprediction penalty. *)
      B.div f (Reg.of_int 8) v1 (B.imm 10);
      Motifs.bit_from f ~dst:(Reg.of_int 8) ~src:(Reg.of_int 8) ~percent:45;
      B.div f (Reg.of_int 9) v0 (B.imm 10);
      Motifs.bit_from f ~dst:(Reg.of_int 9) ~src:(Reg.of_int 9) ~percent:50;
      (* Match-length loop: trip in 1..3, unpredictable exit; matches
         occur on about a quarter of the symbols. *)
      B.div f trip v0 (B.imm 100);
      B.rem f trip trip (B.imm 4);
      B.branch f Term.Ne trip (B.imm 0) ~target:"no_match" ();
      B.label f "match_entry";
      Motifs.mod_of f ~dst:trip ~src:v0 ~modulus:3;
      B.add f trip trip (B.imm 1);
      Motifs.data_loop f ~prefix:"match" ~trip ~body_size:7;
      B.label f "no_match";
      (* Literal vs match: hard to predict, merges on the hot paths. *)
      Motifs.bit_from f ~dst:c0 ~src:v1 ~percent:62;
      Motifs.bit_from f ~dst:rare ~src:v0 ~percent:4;
      Motifs.freq_hammock f ~cold_exit:"outer_latch" ~prefix:"lit" ~cond:c0 ~rare ~hot_taken:12
        ~hot_fall:10 ~join_size:8 ~cold_size:180 ();
      (* Format check: biased but occasionally surprising. *)
      Motifs.bit_from f ~dst:c1 ~src:v1 ~percent:88;
      Motifs.simple_hammock f ~prefix:"fmt" ~cond:c1 ~then_size:6
        ~else_size:6;
      (* Huffman table rebuild: hard branch over long, non-merging
         arms; DMP cannot help here. *)
      Motifs.diffuse_hammock f ~prefix:"tbl" ~cond:(Reg.of_int 8) ~side:95;
      Motifs.diffuse_hammock f ~prefix:"win" ~cond:(Reg.of_int 9) ~side:95;
      (* CRC update: predictable fixed loop. *)
      Motifs.fixed_loop f ~prefix:"crc" ~trips:3 ~body_size:9;
      Motifs.work f 10);
  Program.of_funcs_exn ~main:"main" ([ B.finish f ] @ cold_funcs)

let input set =
  let n = 1 + (iterations * reads_per_iteration) + 64 in
  match set with
  | Input_gen.Reduced ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:11 ~n ~bound:1000)
  | Input_gen.Train ->
      (* Different seed and a mildly different magnitude mix: match
         lengths shift, which is why gzip is the paper's most
         input-sensitive benchmark. *)
      Input_gen.with_mode 1
        (Input_gen.mixture ~seed:1011 ~n ~bound:1000 ~small_bound:150
           ~p_small:0.45)
  | Input_gen.Ref ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:2011 ~n ~bound:1000)

let spec =
  {
    Spec.name = "gzip";
    description = "compression: match-length loop + literal/match hammock";
    program = lazy (Motifs.fresh_build build ());
    input;
  }
