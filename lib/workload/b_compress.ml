(* compress (SPEC95) stand-in: LZW hash-table compression — hash probe
   loads over a table that partially misses L1, a hit/miss hammock, and
   a code-emission loop. *)

open Dmp_ir
module B = Build

let iterations = 1900
let reads_per_iteration = 2
let table_base = 1 lsl 18
let table_bytes = 1 lsl 18  (* 256KB: larger than L1, fits L2 *)

let build () =
  let cold_funcs, cold_entry = Cold_code.library ~seed:7001 ~functions:32 in
  let f = B.func "main" in
  let v0 = Spec.value_reg 0 and v1 = Spec.value_reg 1 in
  let a = Spec.value_reg 2 and h = Spec.value_reg 3 in
  let c = Spec.cond_reg 0 and trip = Spec.cond_reg 3 in
  Spec.outer_loop f ~iterations
    ~prologue:(fun () -> Cold_code.call_gate f ~entry_name:cold_entry)
    (fun () ->
      B.read f v0;
      B.read f v1;
      (* Conditions for the late unpredicatable branches are
         computed early, so those branches resolve at the minimum
         misprediction penalty. *)
      B.div f (Reg.of_int 8) v0 (B.imm 1000);
      Motifs.bit_from f ~dst:(Reg.of_int 8) ~src:(Reg.of_int 8) ~percent:40;
      (* Hash probe. *)
      B.mul f h v0 (B.imm 2654435761);
      Motifs.mod_of f ~dst:a ~src:h ~modulus:table_bytes;
      B.add f a a (B.imm table_base);
      B.load f h a 0;
      (* Hit/miss hammock: depends on the *loaded* table entry mixed
         with the probe key, so the branch is unpredictable and resolves
         only after the cache access. *)
      B.add f c h (B.reg v1);
      Motifs.bit_from f ~dst:c ~src:c ~percent:85;
      B.div f (Spec.cond_reg 2) v1 (B.imm 100);
      Motifs.bit_from f ~dst:(Spec.cond_reg 2) ~src:(Spec.cond_reg 2)
        ~percent:3;
      Motifs.short_freq_hammock f ~cold_exit:"outer_latch" ~prefix:"hit" ~cond:c
        ~rare:(Spec.cond_reg 2) ~then_size:7 ~else_size:9 ~cold_size:110 ();
      B.store f v0 a 0;
      (* Emit variable-length code: 1..4 chunks. *)
      Motifs.mod_of f ~dst:trip ~src:v1 ~modulus:4;
      B.add f trip trip (B.imm 1);
      Motifs.data_loop f ~prefix:"emit" ~trip ~body_size:5;
      Motifs.diffuse_hammock f ~prefix:"rst" ~cond:(Reg.of_int 8) ~side:95;
      Motifs.work f 14);
  Program.of_funcs_exn ~main:"main" ([ B.finish f ] @ cold_funcs)

let input set =
  let n = 1 + (iterations * reads_per_iteration) + 64 in
  match set with
  | Input_gen.Reduced ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:144 ~n ~bound:1000000)
  | Input_gen.Train ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:1144 ~n ~bound:900000)
  | Input_gen.Ref ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:2144 ~n ~bound:1000000)

let spec =
  {
    Spec.name = "compress";
    description = "LZW: hash probes, hit/miss hammock, emission loop";
    program = lazy (Motifs.fresh_build build ());
    input;
  }
