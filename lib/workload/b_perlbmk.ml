(* perlbmk stand-in: interpreter opcode dispatch plus simple hammocks
   and a return-CFM callee (string-compare returning from either arm). *)

open Dmp_ir
module B = Build

let iterations = 1700
let reads_per_iteration = 2

let build () =
  let strcmp =
    Funcs.ret_hammock ~name:"strcmp_like" ~cond:Spec.arg_reg ~a_size:6
      ~b_size:8
  in
  let cold_funcs, cold_entry = Cold_code.library ~seed:7013 ~functions:32 in
  let f = B.func "main" in
  let v0 = Spec.value_reg 0 and v1 = Spec.value_reg 1 in
  let op = Spec.cond_reg 0 and c = Spec.cond_reg 1 in
  Spec.outer_loop f ~iterations
    ~prologue:(fun () -> Cold_code.call_gate f ~entry_name:cold_entry)
    (fun () ->
      B.read f v0;
      B.read f v1;
      (* Conditions for the late unpredicatable branches are
         computed early, so those branches resolve at the minimum
         misprediction penalty. *)
      B.div f (Reg.of_int 8) v1 (B.imm 100);
      Motifs.bit_from f ~dst:(Reg.of_int 8) ~src:(Reg.of_int 8) ~percent:48;
      B.div f (Reg.of_int 9) v0 (B.imm 10);
      Motifs.bit_from f ~dst:(Reg.of_int 9) ~src:(Reg.of_int 9) ~percent:50;
      (* Opcode dispatch: three-way, biased towards case 0. *)
      Motifs.mod_of f ~dst:op ~src:v0 ~modulus:10;
      B.branch f Term.Ge op (B.imm 6) ~target:"op_rare" ();
      B.label f "op_check2";
      B.branch f Term.Ge op (B.imm 3) ~target:"op_mid" ();
      B.label f "op_hot";
      Motifs.work f 14;
      B.branch f Term.Gt op (B.imm 1) ~target:"op_done" ();
      B.label f "op_hot_tail";
      Motifs.work f 60;
      B.jump f "op_done";
      B.label f "op_mid";
      Motifs.work f 11;
      B.jump f "op_done";
      B.label f "op_rare";
      Motifs.work f 17;
      B.label f "op_done";
      (* Pattern-match hammock. *)
      Motifs.bit_from f ~dst:c ~src:v1 ~percent:65;
      B.div f (Spec.cond_reg 2) v1 (B.imm 100);
      Motifs.bit_from f ~dst:(Spec.cond_reg 2) ~src:(Spec.cond_reg 2)
        ~percent:3;
      Motifs.freq_hammock f ~cold_exit:"outer_latch" ~prefix:"pat" ~cond:c ~rare:(Spec.cond_reg 2)
        ~hot_taken:8 ~hot_fall:6 ~join_size:4 ~cold_size:110 ();
      (* String compare with different returns per arm. *)
      Motifs.bit_from f ~dst:Spec.arg_reg ~src:v0 ~percent:78;
      B.call f "strcmp_like";
      (* Regex backtracking: long unmergeable arms. *)
      Motifs.diffuse_hammock f ~prefix:"rx" ~cond:(Reg.of_int 8) ~side:95;
      Motifs.diffuse_hammock f ~prefix:"sub" ~cond:(Reg.of_int 9) ~side:95;
      B.branch f Term.Lt v0 (B.imm 36000) ~target:"skip_tie" ();
      B.label f "tie";
      Motifs.bit_from f ~dst:c ~src:v1 ~percent:50;
      Motifs.simple_hammock f ~prefix:"tie" ~cond:c ~then_size:4
        ~else_size:4;
      B.label f "skip_tie";
      Motifs.fixed_loop f ~prefix:"cp" ~trips:3 ~body_size:8;
      Motifs.work f 10);
  Program.of_funcs_exn ~main:"main"
    ([ B.finish f; strcmp ] @ cold_funcs)

let input set =
  let n = 1 + (iterations * reads_per_iteration) + 64 in
  match set with
  | Input_gen.Reduced ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:88 ~n ~bound:40000)
  | Input_gen.Train ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:1088 ~n ~bound:35000)
  | Input_gen.Ref ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:2088 ~n ~bound:40000)

let spec =
  {
    Spec.name = "perlbmk";
    description = "interpreter: dispatch, pattern hammocks, ret-CFM callee";
    program = lazy (Motifs.fresh_build build ());
    input;
  }
