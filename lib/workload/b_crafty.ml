(* crafty stand-in: chess move generation — bit-twiddling, nested
   hammocks, a callee hammock, and a mode-gated extension section that
   only some input sets exercise (crafty shows a 13% only-run/only-train
   split in Fig. 10). *)

open Dmp_ir
module B = Build

let iterations = 1800
let reads_per_iteration = 2

let build () =
  let eval_sq =
    Funcs.hammock_callee ~name:"eval_sq" ~cond:Spec.arg_reg ~then_size:7
      ~else_size:9 ~tail:6
  in
  let cold_funcs, cold_entry = Cold_code.library ~seed:7002 ~functions:32 in
  let f = B.func "main" in
  let v0 = Spec.value_reg 0 and v1 = Spec.value_reg 1 in
  let c0 = Spec.cond_reg 0 and c1 = Spec.cond_reg 1 in
  let rare = Spec.cond_reg 2 in
  Spec.outer_loop f ~iterations
    ~prologue:(fun () -> Cold_code.call_gate f ~entry_name:cold_entry)
    (fun () ->
      B.read f v0;
      B.read f v1;
      (* Conditions for the late unpredicatable branches are
         computed early, so those branches resolve at the minimum
         misprediction penalty. *)
      B.div f (Reg.of_int 8) v1 (B.imm 1000);
      Motifs.bit_from f ~dst:(Reg.of_int 8) ~src:(Reg.of_int 8) ~percent:35;
      (* Attack-table tests: nested and hard to predict. *)
      Motifs.bit_from f ~dst:c0 ~src:v0 ~percent:70;
      Motifs.bit_from f ~dst:c1 ~src:v1 ~percent:74;
      Motifs.nested_hammock f ~prefix:"atk" ~cond1:c0 ~cond2:c1
        ~sizes:(8, 6, 7, 5);
      (* Square evaluation in a callee (hammock behind a call). *)
      B.mov f Spec.arg_reg c1;
      B.call f "eval_sq";
      (* Capture-search frequently-hammock. *)
      B.div f rare v0 (B.imm 1000);
      Motifs.bit_from f ~dst:rare ~src:rare ~percent:5;
      Motifs.bit_from f ~dst:c0 ~src:v1 ~percent:50;
      Motifs.freq_hammock f ~cold_exit:"outer_latch" ~prefix:"cap" ~cond:c0 ~rare ~hot_taken:14
        ~hot_fall:11 ~join_size:9 ~cold_size:160 ();
      (* Endgame section: gated on the input mode word. *)
      B.branch f Term.Ne Spec.mode_reg (B.imm 1) ~target:"skip_endgame" ();
      B.label f "endgame";
      Motifs.bit_from f ~dst:c1 ~src:v0 ~percent:50;
      Motifs.simple_hammock f ~prefix:"eg" ~cond:c1 ~then_size:5
        ~else_size:6;
      B.label f "skip_endgame";
      (* Search extension decision: long arms, no nearby merge. *)
      Motifs.diffuse_hammock f ~prefix:"ext" ~cond:(Reg.of_int 8) ~side:105;
      Motifs.fixed_loop f ~prefix:"bits" ~trips:4 ~body_size:9;
      Motifs.work f 12);
  Program.of_funcs_exn ~main:"main"
    ([ B.finish f; eval_sq ] @ cold_funcs)

let input set =
  let n = 1 + (iterations * reads_per_iteration) + 64 in
  match set with
  | Input_gen.Reduced ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:55 ~n ~bound:100000)
  | Input_gen.Train ->
      (* mode 2: the endgame section never executes during training. *)
      Input_gen.with_mode 2 (Input_gen.uniform ~seed:1055 ~n ~bound:100000)
  | Input_gen.Ref ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:2055 ~n ~bound:100000)

let spec =
  {
    Spec.name = "crafty";
    description = "chess: nested hammocks, callee hammock, gated endgame";
    program = lazy (Motifs.fresh_build build ());
    input;
  }
