(* vortex stand-in: object database — highly predictable validation
   branches (MPKI ~1), deep call chains, high ILP, small-footprint
   loads that hit in the caches. *)

open Dmp_ir
module B = Build

let iterations = 2000
let reads_per_iteration = 2
let table_base = 1 lsl 14

let build () =
  let validate =
    Funcs.hammock_callee ~name:"validate" ~cond:Spec.arg_reg ~then_size:6
      ~else_size:5 ~tail:8
  in
  let pack = Funcs.leaf ~name:"pack" ~size:16 in
  let cold_funcs, cold_entry = Cold_code.library ~seed:7015 ~functions:32 in
  let f = B.func "main" in
  let v0 = Spec.value_reg 0 and v1 = Spec.value_reg 1 in
  let a = Spec.value_reg 2 in
  let c = Spec.cond_reg 0 in
  Spec.outer_loop f ~iterations
    ~prologue:(fun () ->
      Cold_code.call_gate f ~entry_name:cold_entry;
      Motifs.prime_memory f ~prefix:"prime" ~base:table_base ~words:512
        ~stride:8)
    (fun () ->
      B.read f v0;
      B.read f v1;
      (* Conditions for the late unpredicatable branches are
         computed early, so those branches resolve at the minimum
         misprediction penalty. *)
      Motifs.bit_from f ~dst:(Reg.of_int 8) ~src:v1 ~percent:47;
      B.div f (Reg.of_int 9) v0 (B.imm 1000);
      Motifs.bit_from f ~dst:(Reg.of_int 9) ~src:(Reg.of_int 9) ~percent:88;
      (* Object-type check: almost always the common case. *)
      Motifs.bit_from f ~dst:c ~src:v0 ~percent:88;
      Motifs.simple_hammock f ~prefix:"typ" ~cond:c ~then_size:8
        ~else_size:9;
      (* Small hash-table probe that stays in the L1. *)
      Motifs.mod_of f ~dst:a ~src:v1 ~modulus:4096;
      B.add f a a (B.imm table_base);
      B.load f Spec.arg_reg a 0;
      Motifs.work f 15;
      (* Validation layers. *)
      Motifs.bit_from f ~dst:Spec.arg_reg ~src:v1 ~percent:98;
      B.call f "validate";
      B.call f "pack";
      (* One genuinely hard branch, mode-gated, with long arms so it is
         not a predication candidate. *)
      B.branch f Term.Ne Spec.mode_reg (B.imm 1) ~target:"skip_compact" ();
      B.label f "compact";
      Motifs.diffuse_hammock f ~prefix:"cmp" ~cond:(Reg.of_int 8) ~side:95;
      Motifs.bit_from f ~dst:c ~src:v1 ~percent:55;
      Motifs.simple_hammock f ~prefix:"pack2" ~cond:c ~then_size:4
        ~else_size:4;
      B.label f "skip_compact";
      Motifs.diffuse_hammock f ~prefix:"idx" ~cond:(Reg.of_int 9) ~side:95;
      Motifs.fixed_loop f ~prefix:"fld" ~trips:4 ~body_size:9;
      Motifs.work f 22);
  Program.of_funcs_exn ~main:"main"
    ([ B.finish f; validate; pack ] @ cold_funcs)

let input set =
  let n = 1 + (iterations * reads_per_iteration) + 64 in
  match set with
  | Input_gen.Reduced ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:111 ~n ~bound:300000)
  | Input_gen.Train ->
      Input_gen.with_mode 2 (Input_gen.uniform ~seed:1111 ~n ~bound:300000)
  | Input_gen.Ref ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:2111 ~n ~bound:300000)

let spec =
  {
    Spec.name = "vortex";
    description = "object database: predictable validation, call chains";
    program = lazy (Motifs.fresh_build build ());
    input;
  }
