(* li (SPEC95) stand-in: lisp interpreter — type-dispatch via *simple*
   hammocks (the paper notes li's mispredictions are mostly simple
   hammocks, so even the If-else selector does well), plus cons-cell
   probing through small calls. *)

open Dmp_ir
module B = Build

let iterations = 2000
let reads_per_iteration = 2

let build () =
  let cons = Funcs.leaf ~name:"cons" ~size:10 in
  let eval_atom =
    Funcs.hammock_callee ~name:"eval_atom" ~cond:Spec.arg_reg ~then_size:5
      ~else_size:7 ~tail:4
  in
  let cold_funcs, cold_entry = Cold_code.library ~seed:7009 ~functions:32 in
  let f = B.func "main" in
  let v0 = Spec.value_reg 0 and v1 = Spec.value_reg 1 in
  let t = Spec.value_reg 2 in
  let c = Spec.cond_reg 0 in
  Spec.outer_loop f ~iterations
    ~prologue:(fun () -> Cold_code.call_gate f ~entry_name:cold_entry)
    (fun () ->
      B.read f v0;
      B.read f v1;
      (* Conditions for the late unpredicatable branches are
         computed early, so those branches resolve at the minimum
         misprediction penalty. *)
      B.div f (Reg.of_int 8) v0 (B.imm 1000);
      Motifs.bit_from f ~dst:(Reg.of_int 8) ~src:(Reg.of_int 8) ~percent:48;
      B.div f (Reg.of_int 9) v1 (B.imm 10);
      Motifs.bit_from f ~dst:(Reg.of_int 9) ~src:(Reg.of_int 9) ~percent:50;
      (* Atom vs pair. *)
      B.div f (Spec.cond_reg 2) v0 (B.imm 100);
      Motifs.bit_from f ~dst:(Spec.cond_reg 2) ~src:(Spec.cond_reg 2)
        ~percent:3;
      Motifs.bit_from f ~dst:c ~src:v0 ~percent:58;
      Motifs.short_freq_hammock f ~cold_exit:"outer_latch" ~prefix:"atom" ~cond:c
        ~rare:(Spec.cond_reg 2) ~then_size:6 ~else_size:6 ~cold_size:100 ();
      (* Symbol vs number. *)
      B.div f t v0 (B.imm 100);
      Motifs.bit_from f ~dst:c ~src:t ~percent:60;
      B.div f t v0 (B.imm 10000);
      Motifs.bit_from f ~dst:(Spec.cond_reg 1) ~src:t ~percent:5;
      Motifs.freq_hammock f ~cold_exit:"outer_latch" ~prefix:"sym" ~cond:c ~rare:(Spec.cond_reg 1)
        ~hot_taken:5 ~hot_fall:7 ~join_size:5 ~cold_size:120 ();
      (* nil test: biased. *)
      Motifs.bit_from f ~dst:c ~src:v1 ~percent:85;
      Motifs.simple_hammock f ~prefix:"nil" ~cond:c ~then_size:4
        ~else_size:4;
      Motifs.bit_from f ~dst:Spec.arg_reg ~src:v1 ~percent:66;
      B.call f "eval_atom";
      B.call f "cons";
      (* Deep-recursion spill path: unmergeable hard branch. *)
      Motifs.diffuse_hammock f ~prefix:"gc" ~cond:(Reg.of_int 8) ~side:95;
      Motifs.diffuse_hammock f ~prefix:"env" ~cond:(Reg.of_int 9) ~side:95;
      Motifs.fixed_loop f ~prefix:"mark" ~trips:3 ~body_size:8;
      Motifs.work f 12);
  Program.of_funcs_exn ~main:"main"
    ([ B.finish f; cons; eval_atom ] @ cold_funcs)

let input set =
  let n = 1 + (iterations * reads_per_iteration) + 64 in
  match set with
  | Input_gen.Reduced ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:177 ~n ~bound:70000)
  | Input_gen.Train ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:1177 ~n ~bound:65000)
  | Input_gen.Ref ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:2177 ~n ~bound:70000)

let spec =
  {
    Spec.name = "li";
    description = "lisp interpreter: simple-hammock type dispatch";
    program = lazy (Motifs.fresh_build build ());
    input;
  }
