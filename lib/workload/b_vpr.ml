(* vpr stand-in: placement cost comparisons — many highly-mispredicted
   *short* hammocks (always-predication wins big here in the paper),
   plus one frequently-hammock on the accept/reject path. *)

open Dmp_ir
module B = Build

let iterations = 2200
let reads_per_iteration = 2

let build () =
  let cold_funcs, cold_entry = Cold_code.library ~seed:7016 ~functions:32 in
  let f = B.func "main" in
  let v0 = Spec.value_reg 0 and v1 = Spec.value_reg 1 in
  let t = Spec.value_reg 2 in
  let c0 = Spec.cond_reg 0 and c1 = Spec.cond_reg 1 in
  let c2 = Spec.cond_reg 2 and rare = Spec.cond_reg 3 in
  Spec.outer_loop f ~iterations
    ~prologue:(fun () -> Cold_code.call_gate f ~entry_name:cold_entry)
    (fun () ->
      B.read f v0;
      B.read f v1;
      (* Conditions for the late unpredicatable branches are
         computed early, so those branches resolve at the minimum
         misprediction penalty. *)
      B.div f (Reg.of_int 8) v1 (B.imm 10);
      Motifs.bit_from f ~dst:(Reg.of_int 8) ~src:(Reg.of_int 8) ~percent:50;
      B.div f (Reg.of_int 9) v0 (B.imm 100);
      Motifs.bit_from f ~dst:(Reg.of_int 9) ~src:(Reg.of_int 9) ~percent:48;
      (* Three independent 50/50 comparisons with tiny arms. *)
      B.div f rare v0 (B.imm 100);
      Motifs.bit_from f ~dst:rare ~src:rare ~percent:2;
      Motifs.bit_from f ~dst:c0 ~src:v0 ~percent:82;
      Motifs.short_freq_hammock f ~cold_exit:"outer_latch" ~prefix:"dx" ~cond:c0 ~rare ~then_size:4
        ~else_size:3 ~cold_size:120 ();
      B.div f t v0 (B.imm 100);
      Motifs.bit_from f ~dst:c1 ~src:t ~percent:38;
      Motifs.short_freq_hammock f ~cold_exit:"outer_latch" ~prefix:"dy" ~cond:c1 ~rare ~then_size:3
        ~else_size:4 ~cold_size:110 ();
      Motifs.bit_from f ~dst:c2 ~src:v1 ~percent:60;
      Motifs.simple_hammock f ~prefix:"swap" ~cond:c2 ~then_size:4
        ~else_size:4;
      Motifs.diffuse_hammock f ~prefix:"rt" ~cond:(Reg.of_int 8) ~side:95;
      (* Accept/reject with a rare timing-driven recompute. *)
      Motifs.bit_from f ~dst:c0 ~src:v1 ~percent:66;
      B.div f t v1 (B.imm 100);
      Motifs.bit_from f ~dst:rare ~src:t ~percent:3;
      Motifs.freq_hammock f ~cold_exit:"outer_latch" ~prefix:"acc" ~cond:c0 ~rare ~hot_taken:15
        ~hot_fall:13 ~join_size:10 ~cold_size:150 ();
      (* Bounding-box recomputation: long unmergeable arms. *)
      Motifs.diffuse_hammock f ~prefix:"bb" ~cond:(Reg.of_int 9) ~side:95;
      Motifs.fixed_loop f ~prefix:"net" ~trips:4 ~body_size:8;
      Motifs.work f 14);
  Program.of_funcs_exn ~main:"main" ([ B.finish f ] @ cold_funcs)

let input set =
  let n = 1 + (iterations * reads_per_iteration) + 64 in
  match set with
  | Input_gen.Reduced ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:22 ~n ~bound:10000)
  | Input_gen.Train ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:1022 ~n ~bound:9000)
  | Input_gen.Ref ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:2022 ~n ~bound:10000)

let spec =
  {
    Spec.name = "vpr";
    description = "placement: short mispredicted hammocks + accept/reject";
    program = lazy (Motifs.fresh_build build ());
    input;
  }
