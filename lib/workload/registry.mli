(** The benchmark suite: 12 SPEC CPU2000 INT stand-ins followed by the 5
    SPEC95 INT stand-ins, in the paper's Table 2 order. *)

val int2000 : Spec.t list
val int95 : Spec.t list
val all : Spec.t list

val find : string -> Spec.t
(** @raise Invalid_argument on an unknown name. *)

val find_opt : string -> Spec.t option

val names : string list
