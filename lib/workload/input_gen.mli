(** Seeded input-set generators. The paper's MinneSPEC-reduced vs
    SPEC-train distinction maps to different seeds and distributions. *)

type set = Reduced | Train | Ref

val set_to_string : set -> string

val set_of_string : string -> set
(** @raise Invalid_argument on an unknown name. *)

val set_of_string_opt : string -> set option
val uniform : seed:int -> n:int -> bound:int -> int array

val mixture :
  seed:int -> n:int -> bound:int -> small_bound:int -> p_small:float ->
  int array
(** Mixture of two uniform ranges; shifts modulus-derived branch
    probabilities and loop trip counts between input sets. *)

val phased : seed:int -> n:int -> phase:int -> bounds:int array -> int array
(** The distribution changes every [phase] values (program phases). *)

val with_mode : int -> int array -> int array
(** Prefix the stream with a mode word; benchmarks dispatch on it so
    different input sets exercise different code sections (Fig. 10). *)

val concat : int array list -> int array
