(* gap stand-in: computer algebra — mostly predictable control flow (low
   MPKI), but with large input-gated sections: gap has the largest
   only-run/only-train diverge-branch split in Fig. 10 (26%). *)

open Dmp_ir
module B = Build

let iterations = 2400
let reads_per_iteration = 2

let build () =
  let cold_funcs, cold_entry = Cold_code.library ~seed:7004 ~functions:32 in
  let f = B.func "main" in
  let v0 = Spec.value_reg 0 and v1 = Spec.value_reg 1 in
  let c = Spec.cond_reg 0 and trip = Spec.cond_reg 3 in
  Spec.outer_loop f ~iterations
    ~prologue:(fun () -> Cold_code.call_gate f ~entry_name:cold_entry)
    (fun () ->
      B.read f v0;
      B.read f v1;
      (* Mostly-taken small-integer fast path. *)
      Motifs.bit_from f ~dst:c ~src:v0 ~percent:94;
      Motifs.simple_hammock f ~prefix:"fast" ~cond:c ~then_size:9
        ~else_size:12;
      Motifs.work f 20;
      (* Section A runs only when values are large (the reduced set has
         them; the train set's narrow range never reaches here). *)
      B.branch f Term.Lt v1 (B.imm 60000) ~target:"skip_big" ();
      B.label f "bigint";
      Motifs.bit_from f ~dst:c ~src:v1 ~percent:50;
      Motifs.simple_hammock f ~prefix:"carry" ~cond:c ~then_size:6
        ~else_size:7;
      B.label f "skip_big";
      (* Garbage-collection check loop: trip depends on the input set
         distribution; the loop heuristics accept it only when the
         average iteration count stays under LOOP_ITER. *)
      (* The gc scan runs on roughly one iteration in eight. *)
      Motifs.mod_of f ~dst:trip ~src:v0 ~modulus:8;
      B.branch f Term.Ne trip (B.imm 0) ~target:"skip_gc" ();
      B.label f "gc_entry";
      Motifs.mod_of f ~dst:trip ~src:v0 ~modulus:30;
      B.add f trip trip (B.imm 1);
      Motifs.data_loop f ~prefix:"gc" ~trip ~body_size:3;
      B.label f "skip_gc";
      (* Normalisation loop: small trips under every input set, so it is
         selected from either profile. *)
      Motifs.mod_of f ~dst:trip ~src:v1 ~modulus:8;
      B.add f trip trip (B.imm 1);
      Motifs.data_loop f ~prefix:"norm" ~trip ~body_size:4;
      Motifs.fixed_loop f ~prefix:"mul" ~trips:5 ~body_size:10;
      Motifs.work f 18);
  Program.of_funcs_exn ~main:"main" ([ B.finish f ] @ cold_funcs)

let input set =
  let n = 1 + (iterations * reads_per_iteration) + 64 in
  match set with
  | Input_gen.Reduced ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:99 ~n ~bound:100000)
  | Input_gen.Train ->
      (* Narrow range: the bigint section never executes and the gc loop
         trip average drops, flipping the loop-selection decision. *)
      Input_gen.with_mode 1
        (Input_gen.mixture ~seed:1099 ~n ~bound:59000 ~small_bound:20
           ~p_small:0.5)
  | Input_gen.Ref ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:2099 ~n ~bound:100000)

let spec =
  {
    Spec.name = "gap";
    description = "computer algebra: predictable paths, input-gated bigint";
    program = lazy (Motifs.fresh_build build ());
    input;
  }
