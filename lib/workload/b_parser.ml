(* parser stand-in: dictionary lookup — a hot, tiny word-comparison loop
   whose exit branch mispredicts on every unpredictable word length (the
   paper's flagship diverge-loop case, +14%), plus linkage hammocks. *)

open Dmp_ir
module B = Build

let iterations = 2400
let reads_per_iteration = 2

let build () =
  let cold_funcs, cold_entry = Cold_code.library ~seed:7012 ~functions:32 in
  let f = B.func "main" in
  let v0 = Spec.value_reg 0 and v1 = Spec.value_reg 1 in
  let c0 = Spec.cond_reg 0 and trip = Spec.cond_reg 3 in
  let trip2 = Spec.cond_reg 2 in
  Spec.outer_loop f ~iterations
    ~prologue:(fun () -> Cold_code.call_gate f ~entry_name:cold_entry)
    (fun () ->
      B.read f v0;
      B.read f v1;
      (* Conditions for the late unpredicatable branches are
         computed early, so those branches resolve at the minimum
         misprediction penalty. *)
      B.div f (Reg.of_int 8) v0 (B.imm 1000);
      Motifs.bit_from f ~dst:(Reg.of_int 8) ~src:(Reg.of_int 8) ~percent:48;
      B.div f (Reg.of_int 9) v1 (B.imm 10);
      Motifs.bit_from f ~dst:(Reg.of_int 9) ~src:(Reg.of_int 9) ~percent:50;
      (* Compare the input word with a dictionary word, one character
         per iteration; word lengths are 1..8 and unpredictable. *)
      Motifs.mod_of f ~dst:trip ~src:v0 ~modulus:6;
      B.add f trip trip (B.imm 1);
      Motifs.data_loop f ~prefix:"cmpw" ~trip ~body_size:4;
      (* Suffix table scan: fixed length, predictable. *)
      ignore trip2;
      Motifs.fixed_loop f ~prefix:"sfx" ~trips:3 ~body_size:6;
      (* Linkage viability hammock. *)
      Motifs.bit_from f ~dst:c0 ~src:v1 ~percent:60;
      Motifs.simple_hammock f ~prefix:"link" ~cond:c0 ~then_size:8
        ~else_size:7;
      (* Grammar backtracking: unmergeable hard branch. *)
      Motifs.diffuse_hammock f ~prefix:"bt" ~cond:(Reg.of_int 8) ~side:95;
      Motifs.diffuse_hammock f ~prefix:"and" ~cond:(Reg.of_int 9) ~side:95;
      Motifs.fixed_loop f ~prefix:"tok" ~trips:3 ~body_size:8;
      Motifs.work f 12);
  Program.of_funcs_exn ~main:"main" ([ B.finish f ] @ cold_funcs)

let input set =
  let n = 1 + (iterations * reads_per_iteration) + 64 in
  match set with
  | Input_gen.Reduced ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:66 ~n ~bound:100000)
  | Input_gen.Train ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:1066 ~n ~bound:90001)
  | Input_gen.Ref ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:2066 ~n ~bound:100000)

let spec =
  {
    Spec.name = "parser";
    description = "dictionary lookup: mispredicted word-compare loops";
    program = lazy (Motifs.fresh_build build ());
    input;
  }
