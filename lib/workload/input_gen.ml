(* Seeded input-set generators. Every benchmark reads one stream of
   non-negative integers and derives branch conditions, loop trip counts
   and memory addresses from it, so an input set is fully described by a
   seed, a length and a value distribution. The paper's
   MinneSPEC-reduced vs SPEC-train distinction maps to different seeds
   *and* different distributions. *)

type set = Reduced | Train | Ref

let set_to_string = function
  | Reduced -> "reduced"
  | Train -> "train"
  | Ref -> "ref"

let set_of_string_opt = function
  | "reduced" -> Some Reduced
  | "train" -> Some Train
  | "ref" -> Some Ref
  | _ -> None

let set_of_string s =
  match set_of_string_opt s with
  | Some set -> set
  | None -> invalid_arg ("Input_gen.set_of_string: " ^ s)

let uniform ~seed ~n ~bound =
  let st = Random.State.make [| seed |] in
  Array.init n (fun _ -> Random.State.int st bound)

(* A mixture of two uniform ranges; [p_small] selects the narrow one.
   Shifts modulus-derived branch probabilities between input sets. *)
let mixture ~seed ~n ~bound ~small_bound ~p_small =
  let st = Random.State.make [| seed |] in
  Array.init n (fun _ ->
      if Random.State.float st 1. < p_small then
        Random.State.int st small_bound
      else Random.State.int st bound)

(* Piecewise-phased stream: the distribution changes every [phase]
   values, modelling program phase behaviour (hurts history-based
   predictors in a controlled way). *)
let phased ~seed ~n ~phase ~bounds =
  let st = Random.State.make [| seed |] in
  let k = Array.length bounds in
  Array.init n (fun i ->
      let b = bounds.((i / phase) mod k) in
      Random.State.int st b)

(* Prefix the stream with a mode word: benchmarks dispatch on it, so
   different input sets can exercise different code sections (the
   only-run / only-train effect of Figure 10). *)
let with_mode mode values = Array.append [| mode |] values

let concat = Array.concat
