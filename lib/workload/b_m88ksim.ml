(* m88ksim (SPEC95) stand-in: CPU simulator — a strongly biased
   instruction-class dispatch (low MPKI) with occasional hard traps. *)

open Dmp_ir
module B = Build

let iterations = 2100
let reads_per_iteration = 2

let build () =
  let cold_funcs, cold_entry = Cold_code.library ~seed:7010 ~functions:32 in
  let f = B.func "main" in
  let v0 = Spec.value_reg 0 and v1 = Spec.value_reg 1 in
  let c = Spec.cond_reg 0 and op = Spec.cond_reg 1 in
  Spec.outer_loop f ~iterations
    ~prologue:(fun () -> Cold_code.call_gate f ~entry_name:cold_entry)
    (fun () ->
      B.read f v0;
      B.read f v1;
      (* Conditions for the late unpredicatable branches are
         computed early, so those branches resolve at the minimum
         misprediction penalty. *)
      B.div f (Reg.of_int 8) v0 (B.imm 1000);
      Motifs.bit_from f ~dst:(Reg.of_int 8) ~src:(Reg.of_int 8) ~percent:85;
      (* Instruction class: 85% ALU, 10% mem, 5% control. *)
      Motifs.mod_of f ~dst:op ~src:v0 ~modulus:100;
      B.branch f Term.Ge op (B.imm 85) ~target:"cls_mem" ();
      B.label f "cls_alu";
      Motifs.work f 16;
      B.jump f "decode_done";
      B.label f "cls_mem";
      B.branch f Term.Ge op (B.imm 95) ~target:"cls_ctl" ();
      B.label f "cls_mem_body";
      Motifs.work f 13;
      B.jump f "decode_done";
      B.label f "cls_ctl";
      Motifs.work f 18;
      B.label f "decode_done";
      (* Condition-code update hammock: moderately biased. *)
      Motifs.bit_from f ~dst:c ~src:v1 ~percent:86;
      Motifs.simple_hammock f ~prefix:"cc" ~cond:c ~then_size:7
        ~else_size:6;
      (* Exception check: rarely taken but unpredictable when taken. *)
      Motifs.bit_from f ~dst:c ~src:v1 ~percent:93;
      Motifs.simple_hammock f ~prefix:"exc" ~cond:c ~then_size:5
        ~else_size:9;
      Motifs.diffuse_hammock f ~prefix:"tlb" ~cond:(Reg.of_int 8) ~side:95;
      Motifs.fixed_loop f ~prefix:"dec" ~trips:4 ~body_size:9;
      Motifs.work f 20);
  Program.of_funcs_exn ~main:"main" ([ B.finish f ] @ cold_funcs)

let input set =
  let n = 1 + (iterations * reads_per_iteration) + 64 in
  match set with
  | Input_gen.Reduced ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:188 ~n ~bound:150000)
  | Input_gen.Train ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:1188 ~n ~bound:140000)
  | Input_gen.Ref ->
      Input_gen.with_mode 1 (Input_gen.uniform ~seed:2188 ~n ~bound:150000)

let spec =
  {
    Spec.name = "m88ksim";
    description = "CPU simulator: biased class dispatch, trap checks";
    program = lazy (Motifs.fresh_build build ());
    input;
  }
