(* Three-way CFM comparison: the comparison the literature never ran in
   one harness — profile-guided compile-time CFM selection (this paper)
   vs dynamic merge-point prediction (TR-HPS-2020-001) vs the oracle
   IPOSDOM annotation, per benchmark.

   The static axis covers the exact-profile selector, the exact+freq
   heuristic stack, and the stale-profile story: all-best-heur run on
   profiles reconstructed from periodic hardware samples (PR 4) at
   increasingly sparse periods. The dynamic axis covers two Merge Point
   Table geometries. Oracle rows simulate the IPOSDOM annotation under
   the static machinery.

   All Config.dmp tasks (static + oracle) go through one
   Runner.dmp_batch; each dynamic table geometry is its own batch under
   its own configuration — the batch boundary is the configuration, so
   every batch still sees all benchmarks at once and the output is
   byte-identical for any -j value. *)

open Dmp_core
open Dmp_workload
module Sampler = Dmp_sampling.Sampler
module Mpt = Dmp_mpp.Mpt

type variant =
  | V_static of string * Variants.t * int option
      (* label, selector, sampling period (None = exact profile) *)
  | V_dynamic of string * Mpt.config
  | V_oracle

type row = {
  provider : string;
  variant : string;
  bench : string;
  ipc : float;
  accuracy : float;  (* dpred episodes that merged at the CFM point *)
  coverage : float;  (* low-confidence branches that entered dpred *)
  warmup : int option;  (* retired count at the MPT's first answer *)
}

let seed = 42
let default_periods = [ 1_000; 100_000 ]

(* DMP_CFM_PERIODS="1000" overrides the stale-profile period axis — CI
   uses it to keep the smoke run small. Malformed values fail loudly
   rather than silently sweeping the wrong grid. *)
let periods_from_env () =
  match Sys.getenv_opt "DMP_CFM_PERIODS" with
  | None | Some "" -> None
  | Some s ->
      let parse p =
        match int_of_string_opt (String.trim p) with
        | Some v when v >= 1 -> v
        | Some _ | None ->
            invalid_arg
              (Printf.sprintf
                 "DMP_CFM_PERIODS: %S is not a period >= 1 (in %S)" p s)
      in
      Some (List.map parse (String.split_on_char ',' s))

let mpt_label (m : Mpt.config) =
  Printf.sprintf "mpt-%dx%d" (1 lsl m.Mpt.log2_sets) m.Mpt.ways

let variants ?periods () =
  let periods =
    match periods with
    | Some ps -> ps
    | None -> (
        match periods_from_env () with Some ps -> ps | None -> default_periods)
  in
  [
    V_static ("exact", Variants.all_best_heur, None);
    V_static ("freq", Variants.exact_freq, None);
  ]
  @ List.map
      (fun p ->
        V_static (Printf.sprintf "stale-%d" p, Variants.all_best_heur, Some p))
      periods
  @ [
      V_dynamic (mpt_label Mpt.default, Mpt.default);
      V_dynamic (mpt_label Mpt.small, Mpt.small);
      V_oracle;
    ]

let provider_of = function
  | V_static _ -> "static"
  | V_dynamic _ -> "dynamic"
  | V_oracle -> "oracle"

let variant_label = function
  | V_static (l, _, _) -> l
  | V_dynamic (l, _) -> l
  | V_oracle -> "iposdom"

let annotation_for runner name set = function
  | V_static (_, v, period) ->
      let linked = Runner.linked runner name in
      let profile =
        match period with
        | None -> Runner.profile runner name set
        | Some period ->
            Runner.sampled_profile runner name set
              { Sampler.mode = Sampler.Periodic; period; seed }
      in
      Variants.annotate v linked profile
  | V_oracle -> Dmp_mpp.Oracle.annotation (Runner.linked runner name)
  | V_dynamic _ -> Annotation.empty ()

let ratio num den =
  if den <= 0 then 0. else float_of_int num /. float_of_int den

let rec split_at n xs =
  if n = 0 then ([], xs)
  else
    match xs with
    | [] -> ([], [])
    | x :: tl ->
        let a, b = split_at (n - 1) tl in
        (x :: a, b)

let run ?periods runner =
  let vs = variants ?periods () in
  let names = Runner.names runner in
  let set = Input_gen.Reduced in
  let tasks v =
    List.map (fun name -> (name, annotation_for runner name set v)) names
  in
  let static_vs, dynamic_vs =
    List.partition (function V_dynamic _ -> false | _ -> true) vs
  in
  (* One batch for everything simulated under Config.dmp... *)
  let static_stats =
    Runner.dmp_batch runner (List.concat_map tasks static_vs)
  in
  (* ...then one batch per Merge Point Table geometry. *)
  let dynamic_stats =
    List.map
      (fun v ->
        match v with
        | V_dynamic (_, mcfg) ->
            Runner.dmp_batch runner
              ~config:(Dmp_uarch.Config.dmp_dynamic mcfg)
              (tasks v)
        | V_static _ | V_oracle -> assert false)
      dynamic_vs
  in
  let nb = List.length names in
  let rows_of v stats =
    List.map2
      (fun bench (s : Dmp_uarch.Stats.t) ->
        {
          provider = provider_of v;
          variant = variant_label v;
          bench;
          ipc = Dmp_uarch.Stats.ipc s;
          accuracy =
            ratio s.Dmp_uarch.Stats.dpred_merges
              s.Dmp_uarch.Stats.dpred_hammock_entries;
          coverage =
            ratio s.Dmp_uarch.Stats.dpred_entries
              s.Dmp_uarch.Stats.low_confidence;
          warmup =
            (match v with
            | V_dynamic _ -> Some s.Dmp_uarch.Stats.mpp_warmup_retired
            | V_static _ | V_oracle -> None);
        })
      names stats
  in
  let static_rows =
    let _, rows =
      List.fold_left
        (fun (rest, acc) v ->
          let stats, rest = split_at nb rest in
          (rest, acc @ rows_of v stats))
        (static_stats, []) static_vs
    in
    rows
  in
  let dynamic_rows = List.concat (List.map2 rows_of dynamic_vs dynamic_stats) in
  (* Present in declared variant order: static, dynamic, oracle last. *)
  let rows = static_rows @ dynamic_rows in
  List.stable_sort
    (fun a b ->
      let rank r =
        match r.provider with
        | "oracle" -> 2
        | "dynamic" -> 1
        | _ -> 0
      in
      compare (rank a) (rank b))
    rows

let render rows =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add
    "== CFM comparison: static (profile-guided) vs dynamic (MPT) vs oracle \
     (IPOSDOM) ==\n";
  add "%-8s %-12s %-10s %8s %9s %9s %9s\n" "provider" "variant" "bench" "IPC"
    "accuracy" "coverage" "warmup";
  List.iter
    (fun r ->
      add "%-8s %-12s %-10s %8.3f %9.3f %9.3f %9s\n" r.provider r.variant
        r.bench r.ipc r.accuracy r.coverage
        (match r.warmup with Some w -> string_of_int w | None -> "-"))
    rows;
  (* Per-variant arithmetic means over the benchmarks. *)
  let keys = ref [] in
  List.iter
    (fun r ->
      let k = (r.provider, r.variant) in
      if not (List.mem k !keys) then keys := k :: !keys)
    rows;
  add "-- amean over benchmarks --\n";
  add "%-8s %-12s %8s %9s %9s\n" "provider" "variant" "IPC" "accuracy"
    "coverage";
  List.iter
    (fun (p, v) ->
      let sel = List.filter (fun r -> r.provider = p && r.variant = v) rows in
      let mean f = Runner.amean (List.map f sel) in
      add "%-8s %-12s %8.3f %9.3f %9.3f\n" p v
        (mean (fun r -> r.ipc))
        (mean (fun r -> r.accuracy))
        (mean (fun r -> r.coverage)))
    (List.rev !keys);
  Buffer.contents buf
