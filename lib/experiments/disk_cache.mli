(** Persistent on-disk cache for the expensive pipeline stages.

    Profiles and baseline statistics are stored under
    [dir/<fingerprint>/<benchmark>-<input set>.<kind>], where the
    fingerprint digests the cache format version, the selection /
    cost-model parameters, the baseline machine configuration and the
    [max_insts] cap — changing any of these invalidates every entry at
    once by moving the cache to a fresh subdirectory. Entries carry a
    digest of their payload; a truncated, tampered-with or otherwise
    unreadable entry loads as [None] and the caller recomputes.

    Packed traces persist here too; their pre-decoded
    {!Dmp_exec.Image} form deliberately does not — an image is ~8x the
    trace's bytes and decoding the cached trace in-memory
    ({!Runner.image}) is cheaper than reading the flat form back from
    disk. *)

open Dmp_ir
open Dmp_exec
open Dmp_profile
open Dmp_uarch
open Dmp_workload

type t

val env_max_bytes : unit -> (int option, string) result
(** The [DMP_CACHE_BYTES] environment variable, validated: [Ok None]
    when unset or blank (unlimited), [Ok (Some n)] for a positive
    integer, [Error msg] otherwise. CLIs call this at startup and turn
    an [Error] into an exit-2 usage error, like [DMP_JOBS]. *)

val create :
  ?dir:string -> ?max_bytes:int -> max_insts:int option -> unit -> t
(** [dir] defaults to ["_cache"]. Creates the directory eagerly;
    raises [Sys_error] if that is impossible.

    [max_bytes] caps the total payload bytes stored under [dir] across
    {e all} fingerprint subdirectories; it defaults to the validated
    [DMP_CACHE_BYTES] environment variable (unset means unlimited —
    the historical behaviour). Every store re-checks the cap and evicts
    the least-recently-used entries (ordered by a per-entry [.atime]
    sidecar file, rewritten on every load and store; entries predating
    the sidecars order by mtime) until the total fits. Eviction is
    crash- and race-tolerant: concurrent loads of an evicted entry are
    ordinary misses and never raise.
    @raise Invalid_argument when no [max_bytes] is given and
    [DMP_CACHE_BYTES] is set but invalid. *)

val dir : t -> string
(** The fingerprinted subdirectory entries of this cache live in. *)

val load_profile :
  t -> Linked.t -> bench:string -> set:Input_gen.set -> Profile.t option

val store_profile :
  t -> bench:string -> set:Input_gen.set -> Profile.t -> unit

val load_sampled_profile :
  t ->
  Linked.t ->
  bench:string ->
  set:Input_gen.set ->
  sampling:Dmp_sampling.Sampler.config ->
  Profile.t option
(** Profiles reconstructed from sparse hardware samples. The sampling
    mode, period, seed and the sampler format version are part of the
    entry kind, so every distinct sampling configuration gets its own
    entry and can never serve a stale value for another. *)

val store_sampled_profile :
  t ->
  bench:string ->
  set:Input_gen.set ->
  sampling:Dmp_sampling.Sampler.config ->
  Profile.t ->
  unit

val load_baseline :
  t -> bench:string -> set:Input_gen.set -> Stats.t option

val store_baseline :
  t -> bench:string -> set:Input_gen.set -> Stats.t -> unit

val load_trace : t -> bench:string -> set:Input_gen.set -> Trace.t option
(** Packed architectural traces persist under the same fingerprint and
    digest discipline as profiles, so a cold process replays instead of
    re-emulating. *)

val store_trace : t -> bench:string -> set:Input_gen.set -> Trace.t -> unit
