(* Figure 5: DMP IPC improvement over the baseline for the cumulative
   heuristic selection algorithms (left) and the cost-benefit model
   variants (right). *)

(* Annotations for a labelled variant list. Whenever the label names
   the same registered variant (every built-in figure list does), the
   annotation is resolved through the runner's cached selection stage,
   so the figures and the serving daemon share one memoized selection
   per (benchmark, input set, algorithm); an unregistered variant falls
   back to a direct run of the selection compiler. *)
let annotations ?(set = Dmp_workload.Input_gen.Reduced) runner variants =
  let names = Runner.names runner in
  List.map
    (fun (label, variant) ->
      ( label,
        List.map
          (fun name ->
            let ann =
              match Variants.of_string label with
              | Some v when v = variant ->
                  Runner.selection runner name set ~algo:label
              | Some _ | None ->
                  Variants.annotate variant (Runner.linked runner name)
                    (Runner.profile runner name set)
            in
            (name, ann))
          names ))
    variants

let run_variants runner variants =
  let names = Runner.names runner in
  (* Annotations are derived sequentially (selection is cheap and the
     profiles are memoized); the independent DMP simulations — the
     dominant cost — fan out over one batch. *)
  let per_variant = annotations runner variants in
  let stats =
    Array.of_list
      (Runner.dmp_batch runner
         (List.concat_map (fun (_, tasks) -> tasks) per_variant))
  in
  let k = List.length names in
  List.mapi
    (fun vi (label, tasks) ->
      {
        Report.label = Report.abbreviate label;
        values =
          List.mapi
            (fun ni (name, _) ->
              let base = Runner.baseline runner name in
              (name, Runner.speedup_pct ~base stats.((vi * k) + ni)))
            tasks;
      })
    per_variant

let left runner =
  {
    Report.title = "Figure 5 (left): heuristic diverge-branch selection";
    unit_label = "% IPC improvement over baseline";
    benchmarks = Runner.names runner;
    series = run_variants runner Variants.fig5_left;
  }

let right runner =
  {
    Report.title = "Figure 5 (right): cost-benefit model selection";
    unit_label = "% IPC improvement over baseline";
    benchmarks = Runner.names runner;
    series = run_variants runner Variants.fig5_right;
  }
