(* Ablations of the design choices DESIGN.md calls out:

   1. confidence-estimator threshold (coverage/accuracy trade-off,
      paper footnote 5: performance is not sensitive to reasonable
      Acc_Conf variation);
   2. CFM points vs pure dual-path execution (what the merge points
      actually buy, cf. footnote 2);
   3. chain-of-CFM-point reduction on/off (Section 3.3.1);
   4. liveness-based select-µop counting vs counting every written
      register;
   5. 2D-profiling pre-filter (Section 8.3 extension): annotation-size
      reduction at equal performance. *)

open Dmp_core
open Dmp_uarch
open Dmp_workload

type row = { label : string; mean_improvement : float; note : string }

let mean_improvement runner ~annotate ?(config = Config.dmp) () =
  let tasks =
    List.map
      (fun name ->
        let linked = Runner.linked runner name in
        let profile = Runner.profile runner name Input_gen.Reduced in
        (name, annotate name linked profile))
      (Runner.names runner)
  in
  let stats = Runner.dmp_batch ~config runner tasks in
  Runner.amean
    (List.map2
       (fun (name, _) s ->
         Runner.speedup_pct ~base:(Runner.baseline runner name) s)
       tasks stats)

let strip_cfms ann =
  (* Dual-path: keep the diverge branches but remove every CFM point,
     return CFM and loop designation, so dpred-mode only ends at branch
     resolution. *)
  let out = Annotation.empty () in
  Annotation.iter
    (fun d ->
      match d.Annotation.kind with
      | Annotation.Loop_branch -> ()
      | _ ->
          Annotation.add out
            { d with Annotation.cfms = []; return_cfm = false;
              always_predicate = false })
    ann;
  out

let best name linked profile =
  ignore name;
  Select.run linked profile

let run runner =
  let heur = mean_improvement runner ~annotate:best () in
  let dual =
    mean_improvement runner
      ~annotate:(fun _ linked profile -> strip_cfms (Select.run linked profile))
      ()
  in
  let with_params params =
    mean_improvement runner
      ~annotate:(fun _ linked profile ->
        let config = { Select.all_heuristic with Select.params } in
        Select.run ~config linked profile)
      ()
  in
  let no_chain =
    with_params { Params.default with Params.chain_reduction = false }
  in
  let all_defs =
    with_params { Params.default with Params.live_selects = false }
  in
  let conf t =
    mean_improvement runner ~annotate:best
      ~config:{ Config.dmp with Config.conf_threshold = t }
      ()
  in
  let c8 = conf 8 and c11 = conf 11 and c14 = conf 14 in
  (* 2D pre-filter: performance and static annotation size. *)
  let count_with_2d name linked profile =
    let td =
      Dmp_profile.Two_d.collect ~max_insts:200_000 linked
        ~input:(Runner.input runner name Input_gen.Reduced)
    in
    Select.run ~two_d:td linked profile
  in
  let plain_count, filtered_count =
    List.fold_left
      (fun (a, b) name ->
        let linked = Runner.linked runner name in
        let profile = Runner.profile runner name Input_gen.Reduced in
        ( a + Annotation.count (Select.run linked profile),
          b + Annotation.count (count_with_2d name linked profile) ))
      (0, 0) (Runner.names runner)
  in
  let two_d_perf = mean_improvement runner ~annotate:count_with_2d () in
  [
    { label = "all-best-heur"; mean_improvement = heur; note = "reference" };
    { label = "dual-path (no CFM points)"; mean_improvement = dual;
      note = "what the compiler's merge points buy" };
    { label = "no chain reduction"; mean_improvement = no_chain;
      note = "Section 3.3.1 off" };
    { label = "selects = all defs"; mean_improvement = all_defs;
      note = "no liveness filtering of select-uops" };
    { label = "conf threshold 8"; mean_improvement = c8;
      note = "more coverage, lower PVN" };
    { label = "conf threshold 11"; mean_improvement = c11; note = "" };
    { label = "conf threshold 14 (default)"; mean_improvement = c14;
      note = "" };
    { label = "2D-profiling pre-filter"; mean_improvement = two_d_perf;
      note =
        Printf.sprintf "static diverge branches %d -> %d" plain_count
          filtered_count };
  ]

let render rows =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "== Ablations (mean %% IPC improvement over baseline) ==\n";
  List.iter
    (fun r ->
      add "%-30s %8.2f   %s\n" r.label r.mean_improvement r.note)
    rows;
  Buffer.contents buf
