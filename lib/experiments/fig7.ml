(* Figure 7: sensitivity of Alg-exact + Alg-freq to the MAX_INSTR and
   MIN_MERGE_PROB thresholds. Reports the mean IPC improvement for each
   (MAX_INSTR, MIN_MERGE_PROB) combination. *)

open Dmp_core

type point = {
  max_instr : int;
  min_merge_prob : float;
  mean_improvement : float;
}

let default_max_instrs = [ 10; 50; 100; 200 ]
let default_merge_probs = [ 0.01; 0.05; 0.30; 0.60; 0.90 ]

let run ?(max_instrs = default_max_instrs)
    ?(merge_probs = default_merge_probs) runner =
  let names = Runner.names runner in
  (* Selection runs per grid point sequentially; the 20 x 17 grid of
     independent simulations goes through one batch. *)
  let per_point =
    List.concat_map
      (fun max_instr ->
        List.map
          (fun min_merge_prob ->
            let params =
              { Params.default with
                Params.max_instr;
                max_cbr = max 1 (max_instr / 10);
                min_merge_prob;
              }
            in
            let config =
              { Select.mode = Select.Heuristic;
                techniques = [ Select.Exact; Select.Freq ];
                params }
            in
            ( max_instr,
              min_merge_prob,
              List.map
                (fun name ->
                  let linked = Runner.linked runner name in
                  let profile =
                    Runner.profile runner name Dmp_workload.Input_gen.Reduced
                  in
                  (name, Select.run ~config linked profile))
                names ))
          merge_probs)
      max_instrs
  in
  let stats =
    Array.of_list
      (Runner.dmp_batch runner
         (List.concat_map (fun (_, _, tasks) -> tasks) per_point))
  in
  let k = List.length names in
  List.mapi
    (fun pi (max_instr, min_merge_prob, tasks) ->
      let improvements =
        List.mapi
          (fun ni (name, _) ->
            Runner.speedup_pct
              ~base:(Runner.baseline runner name)
              stats.((pi * k) + ni))
          tasks
      in
      { max_instr; min_merge_prob;
        mean_improvement = Runner.amean improvements })
    per_point

let render points =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "== Figure 7: MAX_INSTR x MIN_MERGE_PROB sensitivity ==\n";
  add "(mean %% IPC improvement, Alg-exact + Alg-freq only)\n";
  let instrs =
    List.sort_uniq compare (List.map (fun p -> p.max_instr) points)
  in
  let probs =
    List.sort_uniq compare (List.map (fun p -> p.min_merge_prob) points)
  in
  add "%-18s" "MIN_MERGE_PROB";
  List.iter (fun i -> add " MAX_INSTR=%-4d" i) instrs;
  add "\n";
  List.iter
    (fun prob ->
      add "%-18s" (Printf.sprintf "%.0f%%" (prob *. 100.));
      List.iter
        (fun i ->
          match
            List.find_opt
              (fun p -> p.max_instr = i && p.min_merge_prob = prob)
              points
          with
          | Some p -> add " %13.2f " p.mean_improvement
          | None -> add " %13s " "-")
        instrs;
      add "\n")
    probs;
  Buffer.contents buf
