(** Software predication vs hardware dynamic predication vs both
    combined, per benchmark: the transformed binary
    ({!Dmp_transform.Pipeline}) on the baseline machine, the original
    binary under the all-best-heur annotation on the DMP machine, and
    the transformed binary re-profiled + re-selected on the DMP
    machine. Deterministic and byte-identical for every [-j] value. *)

type row = {
  bench : string;
  shape : string;
      (** dominant CFG shape among the benchmark's selected diverge
          branches (simple / nested / freq / short / ret / loop, or
          ["none"]) *)
  tstats : Dmp_transform.Stats.t;
  base_ipc : float;
  sw_ipc : float;
  hw_ipc : float;
  both_ipc : float;
}

val run : ?tconfig:Dmp_transform.Pass_config.t -> Runner.t -> row list
val render : row list -> string
