(** Merge-point providers: where a DMP simulation's diverge decisions
    get their merge points. [Static] is the paper's compiled
    profile-guided annotation; [Dynamic] is the online Merge Point
    Table of TR-HPS-2020-001 ({!Dmp_mpp.Mpt}); [Oracle] is the
    IPOSDOM annotation derived from the true CFG
    ({!Dmp_mpp.Oracle}, simulated under the static machinery). *)

open Dmp_ir
open Dmp_core
open Dmp_uarch

type t =
  | Static
  | Dynamic of Dmp_mpp.Mpt.config
  | Oracle

val all : (string * t) list
(** ["static"], ["dynamic"] (the default MPT geometry),
    ["dynamic-small"] (the constrained geometry), ["oracle"]. *)

val names : string list
val of_string : string -> t option

val kind_name : t -> string
(** The provider column value: "static", "dynamic" or "oracle". *)

val config : t -> Config.t
(** The simulator configuration the provider runs under: [Config.dmp]
    for [Static]/[Oracle], [Config.dmp_dynamic] for [Dynamic]. *)

val annotation : t -> Linked.t -> Annotation.t option
(** The compile-time annotation the provider needs beyond what the
    caller selected: [Oracle] derives its own ({!Dmp_mpp.Oracle}),
    [Dynamic] needs none (Some empty is not returned — the simulation
    ignores any table), [Static] is the caller's business ([None]). *)
