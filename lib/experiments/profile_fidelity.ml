(* Profile-fidelity sweep: how much annotation quality and DMP
   performance survive when the selection pipeline runs on profiles
   reconstructed from sparse hardware samples instead of the exact
   instrumentation profile.

   For every (sampling mode, period) combination the sweep collects a
   sampled profile per benchmark (Sampler over the shared packed trace,
   Reconstruct back to a dense profile), runs the reference selector
   (all-best-heur) on it, and compares against the exact-profile
   annotation by

   - Jaccard similarity of the diverge-branch address sets,
   - Jaccard similarity of the (diverge branch, CFM address) pair sets,
   - mean DMP IPC delta (sampled annotation vs exact annotation, both
     simulated), and
   - whether the rendered annotations are byte-for-byte identical
     across the whole suite — which period-1 periodic sampling must
     achieve by construction.

   All simulations (exact and every combination) go through one
   Runner.dmp_batch, so the domain pool sees every independent task at
   once and the output stays byte-identical for any -j value. *)

open Dmp_core
open Dmp_workload
module Sampler = Dmp_sampling.Sampler

type row = {
  mode : Sampler.mode;
  period : int;
  jaccard_diverge : float;
  jaccard_cfm : float;
  ipc_delta_pct : float;
  exact_bytes : bool;
}

let seed = 42
let default_periods = [ 1; 100; 1_000; 10_000; 100_000 ]
let default_modes = [ Sampler.Periodic; Sampler.Lbr 16; Sampler.Mispredict ]

(* DMP_FIDELITY_PERIODS="1,1000" overrides the period axis — CI uses it
   to keep the smoke run to two points. Malformed values fail loudly
   rather than silently sweeping the wrong grid. *)
let periods_from_env () =
  match Sys.getenv_opt "DMP_FIDELITY_PERIODS" with
  | None | Some "" -> None
  | Some s ->
      let parse p =
        match int_of_string_opt (String.trim p) with
        | Some v when v >= 1 -> v
        | Some _ | None ->
            invalid_arg
              (Printf.sprintf
                 "DMP_FIDELITY_PERIODS: %S is not a period >= 1 (in %S)" p s)
      in
      Some (List.map parse (String.split_on_char ',' s))

let jaccard compare a b =
  let a = List.sort_uniq compare a and b = List.sort_uniq compare b in
  match (a, b) with
  | [], [] -> 1.
  | _ ->
      let rec go i u a b =
        match (a, b) with
        | [], rest | rest, [] -> (i, u + List.length rest)
        | x :: xs, y :: ys ->
            let c = compare x y in
            if c = 0 then go (i + 1) (u + 1) xs ys
            else if c < 0 then go i (u + 1) xs (y :: ys)
            else go i (u + 1) (x :: xs) ys
      in
      let i, u = go 0 0 a b in
      float_of_int i /. float_of_int u

let cfm_pairs ann =
  Annotation.fold
    (fun d acc ->
      List.fold_left
        (fun acc c -> (d.Annotation.branch_addr, c.Annotation.cfm_addr) :: acc)
        acc d.Annotation.cfms)
    ann []

let rec split_at n xs =
  if n = 0 then ([], xs)
  else
    match xs with
    | [] -> ([], [])
    | x :: tl ->
        let a, b = split_at (n - 1) tl in
        (x :: a, b)

let run ?periods ?modes runner =
  let periods =
    match periods with
    | Some ps -> ps
    | None -> (
        match periods_from_env () with
        | Some ps -> ps
        | None -> default_periods)
  in
  let modes = Option.value ~default:default_modes modes in
  let names = Runner.names runner in
  let set = Input_gen.Reduced in
  let annotate linked profile =
    Variants.annotate Variants.all_best_heur linked profile
  in
  let exact =
    List.map
      (fun name ->
        let linked = Runner.linked runner name in
        (name, annotate linked (Runner.profile runner name set)))
      names
  in
  let combos =
    List.concat_map
      (fun mode -> List.map (fun period -> (mode, period)) periods)
      modes
  in
  let combo_anns =
    List.map
      (fun (mode, period) ->
        let sampling = { Sampler.mode; period; seed } in
        List.map
          (fun name ->
            let linked = Runner.linked runner name in
            ( name,
              annotate linked (Runner.sampled_profile runner name set sampling)
            ))
          names)
      combos
  in
  let all_stats = Runner.dmp_batch runner (exact @ List.concat combo_anns) in
  let nb = List.length names in
  let exact_stats, rest = split_at nb all_stats in
  let _, rows =
    List.fold_left2
      (fun (rest, rows) (mode, period) anns ->
        let stats, rest = split_at nb rest in
        let per_bench f = Runner.amean (List.map2 f exact anns) in
        let jaccard_diverge =
          per_bench (fun (_, e) (_, s) ->
              jaccard Int.compare
                (Annotation.diverge_addrs e)
                (Annotation.diverge_addrs s))
        in
        let jaccard_cfm =
          per_bench (fun (_, e) (_, s) ->
              jaccard compare (cfm_pairs e) (cfm_pairs s))
        in
        let ipc_delta_pct =
          Runner.amean
            (List.map2
               (fun base s -> Runner.speedup_pct ~base s)
               exact_stats stats)
        in
        let exact_bytes =
          List.for_all2
            (fun (_, e) (_, s) ->
              String.equal (Annotation.to_string e) (Annotation.to_string s))
            exact anns
        in
        ( rest,
          { mode; period; jaccard_diverge; jaccard_cfm; ipc_delta_pct;
            exact_bytes }
          :: rows ))
      (rest, []) combos combo_anns
  in
  List.rev rows

let render rows =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "== Profile fidelity: sampled vs exact profiles (all-best-heur) ==\n";
  add "%-10s %8s %8s %8s %8s  %s\n" "mode" "period" "jac-div" "jac-cfm"
    "dIPC%" "ann=exact";
  List.iter
    (fun r ->
      add "%-10s %8d %8.3f %8.3f %8.2f  %s\n"
        (Sampler.mode_to_string r.mode)
        r.period r.jaccard_diverge r.jaccard_cfm r.ipc_delta_pct
        (if r.exact_bytes then "yes" else "no"))
    rows;
  Buffer.contents buf
