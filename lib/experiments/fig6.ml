(* Figure 6: pipeline flushes (per kilo-instruction) in the baseline and
   in DMP with the cumulative selection algorithms. *)

open Dmp_uarch

let run runner =
  let names = Runner.names runner in
  let base_series =
    {
      Report.label = "baseline";
      values =
        List.map
          (fun name ->
            (name, Stats.flushes_per_ki (Runner.baseline runner name)))
          names;
    }
  in
  (* Same selections as figure 5 (left): resolved through the runner's
     cached selection stage, and their simulations dedup against
     figure 5's in the batch scheduler's fingerprint memo. *)
  let per_variant = Fig5.annotations runner Variants.fig5_left in
  let stats =
    Array.of_list
      (Runner.dmp_batch runner
         (List.concat_map (fun (_, tasks) -> tasks) per_variant))
  in
  let k = List.length names in
  let dmp_series =
    List.mapi
      (fun vi (label, tasks) ->
        {
          Report.label = Report.abbreviate label;
          values =
            List.mapi
              (fun ni (name, _) ->
                (name, Stats.flushes_per_ki stats.((vi * k) + ni)))
              tasks;
        })
      per_variant
  in
  {
    Report.title = "Figure 6: pipeline flushes due to branch mispredictions";
    unit_label = "flushes per kilo-instruction";
    benchmarks = names;
    series = base_series :: dmp_series;
  }
