(* Persistent stage cache. Each entry is one file:

     magic | Digest(payload) | payload

   with the payload a [Marshal]-serialised [Profile.raw], [Stats.t] or
   packed [Trace.t] (Bigarray buffers marshal their raw contents).
   Writes go through a temporary file in the same directory followed by
   a rename, so a crashed or concurrent writer can never leave a
   half-written entry under the final name; corruption that happens
   anyway (truncation, editing, format drift) fails the digest check
   and reads as a miss. *)

open Dmp_exec
open Dmp_profile
open Dmp_uarch
open Dmp_workload

type t = { root : string; dir : string; max_bytes : int option }

let magic = "DMPCACHE1\n"

(* DMP_CACHE_BYTES caps the whole cache root (all fingerprint
   subdirectories — the unbounded growth happens *across* sweeps with
   different fingerprints). Same operator contract as DMP_JOBS: a
   value that does not parse as a positive integer is an error, not a
   hint; unset or blank means unlimited. *)
let env_max_bytes () =
  match Sys.getenv_opt "DMP_CACHE_BYTES" with
  | None -> Ok None
  | Some s when String.trim s = "" -> Ok None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> Ok (Some n)
      | Some _ | None ->
          Error
            (Printf.sprintf "DMP_CACHE_BYTES must be a positive integer, got %S"
               s))

(* Bump when the emulator, profiler, predictor or simulator change in a
   way that alters profiles or baseline statistics: the fingerprint
   below only sees data that is explicit in the key. *)
let format_version = 2

let fingerprint ~max_insts =
  let key =
    ( format_version,
      Sys.ocaml_version,
      Dmp_core.Params.default,
      Dmp_core.Params.for_cost_model,
      Config.baseline,
      max_insts )
  in
  Digest.to_hex (Digest.string (Marshal.to_string key []))

let mkdir_if_absent d =
  match Sys.mkdir d 0o755 with
  | () -> ()
  | exception Sys_error _ when Sys.file_exists d && Sys.is_directory d -> ()

let create ?(dir = "_cache") ?max_bytes ~max_insts () =
  let max_bytes =
    match max_bytes with
    | Some _ as b -> b
    | None -> (
        match env_max_bytes () with
        | Ok b -> b
        | Error msg -> invalid_arg ("Disk_cache.create: " ^ msg))
  in
  mkdir_if_absent dir;
  let sub = Filename.concat dir (fingerprint ~max_insts) in
  mkdir_if_absent sub;
  { root = dir; dir = sub; max_bytes }

let dir t = t.dir

(* ---------- access-time bookkeeping and LRU eviction ----------

   Each entry carries a sidecar [<entry>.atime] file holding a
   wall-clock timestamp plus a process-local sequence number (the
   tiebreak for stores landing in the same microsecond). The sidecar is
   rewritten on every successful load and every store, so its content
   orders entries by last use across processes; an entry without a
   sidecar (pre-existing caches) falls back to its mtime. Eviction
   walks every fingerprint subdirectory under the root, sums the entry
   payload sizes, and removes oldest-access entries (and their
   sidecars) until the total fits the cap again. All filesystem races
   (a concurrent evictor or writer) are tolerated: a vanished file is
   simply skipped, and a load of an evicted entry is an ordinary
   miss. *)

let atime_suffix = ".atime"
let atime_seq = Atomic.make 0

let is_tmp name =
  (* store's temporaries: <entry>.tmp.<pid>.<domain> *)
  let rec has_tmp i =
    match String.index_from_opt name i '.' with
    | None -> false
    | Some j ->
        String.length name - j > 4 && String.sub name j 5 = ".tmp."
        || has_tmp (j + 1)
  in
  has_tmp 0

let touch_atime file =
  let stamp =
    Printf.sprintf "%.6f %d\n" (Unix.gettimeofday ())
      (Atomic.fetch_and_add atime_seq 1)
  in
  try
    let oc = open_out (file ^ atime_suffix) in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc stamp)
  with Sys_error _ -> ()

let read_atime file =
  let sidecar = file ^ atime_suffix in
  let from_sidecar () =
    let ic = open_in sidecar in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        Scanf.bscanf (Scanf.Scanning.from_string (input_line ic)) "%f %d"
          (fun t seq -> (t, seq)))
  in
  match from_sidecar () with
  | stamp -> Some stamp
  | exception (Sys_error _ | End_of_file | Scanf.Scan_failure _ | Failure _)
    -> (
      match Unix.stat file with
      | { Unix.st_mtime; _ } -> Some (st_mtime, 0)
      | exception Unix.Unix_error _ -> None)

let cache_entries root =
  let subdirs =
    match Sys.readdir root with
    | names ->
        Array.to_list names
        |> List.map (Filename.concat root)
        |> List.filter (fun d ->
               try Sys.is_directory d with Sys_error _ -> false)
    | exception Sys_error _ -> []
  in
  List.concat_map
    (fun d ->
      match Sys.readdir d with
      | names ->
          Array.to_list names
          |> List.filter (fun n ->
                 (not (Filename.check_suffix n atime_suffix))
                 && not (is_tmp n))
          |> List.filter_map (fun n ->
                 let file = Filename.concat d n in
                 match (Unix.stat file, read_atime file) with
                 | { Unix.st_size; _ }, Some atime ->
                     Some (file, st_size, atime)
                 | _, None -> None
                 | exception Unix.Unix_error _ -> None)
      | exception Sys_error _ -> [])
    subdirs

let remove_entry file =
  (try Sys.remove file with Sys_error _ -> ());
  try Sys.remove (file ^ atime_suffix) with Sys_error _ -> ()

let enforce_cap t =
  match t.max_bytes with
  | None -> ()
  | Some cap ->
      let entries = cache_entries t.root in
      let total = List.fold_left (fun a (_, s, _) -> a + s) 0 entries in
      if total > cap then begin
        let oldest_first =
          List.sort (fun (_, _, a) (_, _, b) -> compare a b) entries
        in
        let excess = ref (total - cap) in
        List.iter
          (fun (file, size, _) ->
            if !excess > 0 then begin
              remove_entry file;
              excess := !excess - size
            end)
          oldest_first
      end

let path t ~bench ~set ~kind =
  Filename.concat t.dir
    (Printf.sprintf "%s-%s.%s" bench (Input_gen.set_to_string set) kind)

let store t ~bench ~set ~kind value =
  let payload = Marshal.to_string value [] in
  let final = path t ~bench ~set ~kind in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" final (Unix.getpid ())
      (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      Digest.output oc (Digest.string payload);
      output_string oc payload);
  Sys.rename tmp final;
  touch_atime final;
  enforce_cap t

(* Any failure — missing file, bad magic, bad digest, Marshal noise —
   is a miss; a recognisably corrupt entry is also deleted so it cannot
   shadow the recomputed value if the later store fails too. *)
let load t ~bench ~set ~kind =
  let file = path t ~bench ~set ~kind in
  match open_in_bin file with
  | exception Sys_error _ -> None
  | ic -> (
      let r =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            try
              let m = really_input_string ic (String.length magic) in
              if m <> magic then None
              else
                let d = Digest.input ic in
                let len =
                  in_channel_length ic - String.length magic - 16
                in
                if len < 0 then None
                else
                  let payload = really_input_string ic len in
                  if Digest.string payload <> d then None
                  else Some (Marshal.from_string payload 0)
            with
            | End_of_file | Failure _ | Sys_error _ | Invalid_argument _ ->
              None)
      in
      (match r with
      | None -> remove_entry file
      | Some _ -> touch_atime file);
      r)

let load_profile t linked ~bench ~set =
  Option.map (Profile.of_raw linked) (load t ~bench ~set ~kind:"profile")

let store_profile t ~bench ~set profile =
  store t ~bench ~set ~kind:"profile" (Profile.to_raw profile)

(* Sampled/reconstructed profiles: mode, period, seed and the sampler
   format version are folded into the entry kind (and so the filename),
   so entries for different sampling parameters can never shadow each
   other or the exact profile. *)
let sampled_kind sampling =
  Printf.sprintf "sprofile%d-%s" Dmp_sampling.Sampler.format_version
    (Dmp_sampling.Sampler.config_to_string sampling)

let load_sampled_profile t linked ~bench ~set ~sampling =
  Option.map (Profile.of_raw linked)
    (load t ~bench ~set ~kind:(sampled_kind sampling))

let store_sampled_profile t ~bench ~set ~sampling profile =
  store t ~bench ~set ~kind:(sampled_kind sampling) (Profile.to_raw profile)

let load_baseline t ~bench ~set : Stats.t option =
  load t ~bench ~set ~kind:"baseline"

let store_baseline t ~bench ~set (stats : Stats.t) =
  store t ~bench ~set ~kind:"baseline" stats

let load_trace t ~bench ~set : Trace.t option =
  load t ~bench ~set ~kind:"trace"

let store_trace t ~bench ~set (trace : Trace.t) =
  store t ~bench ~set ~kind:"trace" trace
