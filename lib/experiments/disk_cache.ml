(* Persistent stage cache. Each entry is one file:

     magic | Digest(payload) | payload

   with the payload a [Marshal]-serialised [Profile.raw], [Stats.t] or
   packed [Trace.t] (Bigarray buffers marshal their raw contents).
   Writes go through a temporary file in the same directory followed by
   a rename, so a crashed or concurrent writer can never leave a
   half-written entry under the final name; corruption that happens
   anyway (truncation, editing, format drift) fails the digest check
   and reads as a miss. *)

open Dmp_exec
open Dmp_profile
open Dmp_uarch
open Dmp_workload

type t = { dir : string }

let magic = "DMPCACHE1\n"

(* Bump when the emulator, profiler, predictor or simulator change in a
   way that alters profiles or baseline statistics: the fingerprint
   below only sees data that is explicit in the key. *)
let format_version = 1

let fingerprint ~max_insts =
  let key =
    ( format_version,
      Sys.ocaml_version,
      Dmp_core.Params.default,
      Dmp_core.Params.for_cost_model,
      Config.baseline,
      max_insts )
  in
  Digest.to_hex (Digest.string (Marshal.to_string key []))

let mkdir_if_absent d =
  match Sys.mkdir d 0o755 with
  | () -> ()
  | exception Sys_error _ when Sys.file_exists d && Sys.is_directory d -> ()

let create ?(dir = "_cache") ~max_insts () =
  mkdir_if_absent dir;
  let sub = Filename.concat dir (fingerprint ~max_insts) in
  mkdir_if_absent sub;
  { dir = sub }

let dir t = t.dir

let path t ~bench ~set ~kind =
  Filename.concat t.dir
    (Printf.sprintf "%s-%s.%s" bench (Input_gen.set_to_string set) kind)

let store t ~bench ~set ~kind value =
  let payload = Marshal.to_string value [] in
  let final = path t ~bench ~set ~kind in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" final (Unix.getpid ())
      (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      Digest.output oc (Digest.string payload);
      output_string oc payload);
  Sys.rename tmp final

(* Any failure — missing file, bad magic, bad digest, Marshal noise —
   is a miss; a recognisably corrupt entry is also deleted so it cannot
   shadow the recomputed value if the later store fails too. *)
let load t ~bench ~set ~kind =
  let file = path t ~bench ~set ~kind in
  match open_in_bin file with
  | exception Sys_error _ -> None
  | ic -> (
      let r =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            try
              let m = really_input_string ic (String.length magic) in
              if m <> magic then None
              else
                let d = Digest.input ic in
                let len =
                  in_channel_length ic - String.length magic - 16
                in
                if len < 0 then None
                else
                  let payload = really_input_string ic len in
                  if Digest.string payload <> d then None
                  else Some (Marshal.from_string payload 0)
            with
            | End_of_file | Failure _ | Sys_error _ | Invalid_argument _ ->
              None)
      in
      (match r with
      | None -> ( try Sys.remove file with Sys_error _ -> ())
      | Some _ -> ());
      r)

let load_profile t linked ~bench ~set =
  Option.map (Profile.of_raw linked) (load t ~bench ~set ~kind:"profile")

let store_profile t ~bench ~set profile =
  store t ~bench ~set ~kind:"profile" (Profile.to_raw profile)

(* Sampled/reconstructed profiles: mode, period, seed and the sampler
   format version are folded into the entry kind (and so the filename),
   so entries for different sampling parameters can never shadow each
   other or the exact profile. *)
let sampled_kind sampling =
  Printf.sprintf "sprofile%d-%s" Dmp_sampling.Sampler.format_version
    (Dmp_sampling.Sampler.config_to_string sampling)

let load_sampled_profile t linked ~bench ~set ~sampling =
  Option.map (Profile.of_raw linked)
    (load t ~bench ~set ~kind:(sampled_kind sampling))

let store_sampled_profile t ~bench ~set ~sampling profile =
  store t ~bench ~set ~kind:(sampled_kind sampling) (Profile.to_raw profile)

let load_baseline t ~bench ~set : Stats.t option =
  load t ~bench ~set ~kind:"baseline"

let store_baseline t ~bench ~set (stats : Stats.t) =
  store t ~bench ~set ~kind:"baseline" stats

let load_trace t ~bench ~set : Trace.t option =
  load t ~bench ~set ~kind:"trace"

let store_trace t ~bench ~set (trace : Trace.t) =
  store t ~bench ~set ~kind:"trace" trace
