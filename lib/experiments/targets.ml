open Dmp_workload

let all =
  [ "table1"; "table2"; "fig5l"; "fig5r"; "fig6"; "fig7"; "fig8"; "fig9";
    "fig10"; "ablations"; "profile-fidelity"; "sim-fidelity";
    "cfm-comparison"; "sw-vs-hw" ]

let is_valid t = List.mem t all

let render runner = function
  | "table1" -> Ok (Table1.render ())
  | "table2" -> Ok (Table2.render (Table2.compute runner))
  | "fig5l" -> Ok (Report.render (Fig5.left runner))
  | "fig5r" -> Ok (Report.render (Fig5.right runner))
  | "fig6" -> Ok (Report.render (Fig6.run runner))
  | "fig7" -> Ok (Fig7.render (Fig7.run runner))
  | "fig8" -> Ok (Report.render (Fig8.run runner))
  | "fig9" -> Ok (Report.render (Fig9.run runner))
  | "fig10" -> Ok (Fig10.render (Fig10.run runner))
  | "ablations" -> Ok (Ablations.render (Ablations.run runner))
  | "profile-fidelity" ->
      Ok (Profile_fidelity.render (Profile_fidelity.run runner))
  | "sim-fidelity" -> Ok (Sim_fidelity.render (Sim_fidelity.run runner))
  | "cfm-comparison" ->
      Ok (Cfm_comparison.render (Cfm_comparison.run runner))
  | "sw-vs-hw" -> Ok (Sw_vs_hw.render (Sw_vs_hw.run runner))
  | t ->
      Error
        (Printf.sprintf "unknown target %s; valid targets: %s" t
           (String.concat ", " all))

let needs_train = function "fig9" | "fig10" -> true | _ -> false

let profile_sets targets =
  if List.exists needs_train targets then
    [ Input_gen.Reduced; Input_gen.Train ]
  else [ Input_gen.Reduced ]
