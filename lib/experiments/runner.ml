(* Shared experiment pipeline with caching of the expensive stages
   (linking, trace capture, profiling, baseline simulation) across
   figures. The architectural emulator runs once per (benchmark, input
   set): its event stream is captured into a packed [Trace.t] under the
   per-benchmark lock; the trace is decoded once into a flat [Image.t]
   and every later baseline / dmp call replays the image (profiling
   still walks the packed trace — it runs once per pair anyway).

   Storage: every stage value lives in one runner-wide byte-budgeted
   [Mem_cache] (an LRU keyed by "kind/benchmark/input-set[/params]"),
   layered over the optional persistent [Disk_cache]. With no budget
   (the offline default) nothing is ever evicted and the behaviour is
   the old unbounded memoisation; the serving daemon runs the same
   runner with a budget, so a long-lived process holds the hottest
   traces / images / profiles / selections in memory and transparently
   recomputes (or reloads from disk) anything evicted.

   Concurrency: every entry owns a lock that guards its one-shot
   linking and its stage computations, so a stage is computed exactly
   once no matter how many domains ask for it (while cached), and
   distinct benchmarks proceed in parallel. The runner-wide state
   (stage timings, the mem cache) has its own locking and is never
   held across a stage computation. *)

open Dmp_ir
open Dmp_exec
open Dmp_profile
open Dmp_uarch
open Dmp_workload

type sim_mode =
  | Exact
  | Segmented of int
  | Sampled of { segments : int; warmup : int; window : int }

type entry = {
  spec : Spec.t;
  lock : Mutex.t;
  mutable linked_v : Linked.t option;
}

(* One variant per stage kind so a single LRU (one recency order, one
   byte budget) covers them all; the key namespaces ("trace/...",
   "image/...") make a kind mismatch impossible. *)
type value =
  | VTrace of Trace.t
  | VImage of Image.t
  | VProfile of Profile.t
  | VStats of Stats.t
  | VCkpts of Checkpoint.t list
  | VAnn of Dmp_core.Annotation.t
  | VElide of Stats.t * Checkpoint.t list
      (* an annotation-free reference run under the *actual* simulation
         config: its final statistics plus its checkpoints, shared by
         the fused scheduler's prefix elision *)
  | VTransform of Dmp_transform.Pipeline.result
      (* the software-predication pipeline's output for one
         (benchmark, input set, pass config) *)

type timing = { mutable calls : int; mutable seconds : float }

type t = {
  entries : (string, entry) Hashtbl.t;
  order : string list;
  max_insts : int option;
  cache : Disk_cache.t option;
  jobs : int option;
  sim_mode : sim_mode;
  fused : bool;
  mem : value Mem_cache.t;
  timings : (string, timing) Hashtbl.t;
  timings_lock : Mutex.t;
}

let validate_sim_mode = function
  | Exact -> ()
  | Segmented n ->
      if n < 1 then invalid_arg "Runner: Segmented needs >= 1 segment"
  | Sampled { segments; warmup; window } ->
      if segments < 1 then invalid_arg "Runner: Sampled needs >= 1 segment";
      if warmup < 0 || window < 1 then
        invalid_arg "Runner: Sampled needs warmup >= 0 and window >= 1"

let create ?(benchmarks = Registry.all) ?max_insts ?cache_dir ?jobs
    ?(sim_mode = Exact) ?(fused = true) ?mem_budget () =
  validate_sim_mode sim_mode;
  let entries = Hashtbl.create 32 in
  List.iter
    (fun spec ->
      Hashtbl.replace entries spec.Spec.name
        { spec; lock = Mutex.create (); linked_v = None })
    benchmarks;
  let cache =
    Option.map (fun dir -> Disk_cache.create ~dir ~max_insts ()) cache_dir
  in
  {
    entries;
    order = List.map (fun s -> s.Spec.name) benchmarks;
    max_insts;
    cache;
    jobs;
    sim_mode;
    fused;
    mem = Mem_cache.create ?budget:mem_budget ~name:"stages" ();
    timings = Hashtbl.create 8;
    timings_lock = Mutex.create ();
  }

let mem_stats t = Mem_cache.stats t.mem

(* Stage keys. The set / sampling-config / arch-key components are
   rendered to strings (the arch key via a digest of its marshalled
   form) so one string-keyed LRU covers every kind. *)

let set_str = Input_gen.set_to_string
let key_trace name set = Printf.sprintf "trace/%s/%s" name (set_str set)
let key_image name set = Printf.sprintf "image/%s/%s" name (set_str set)
let key_profile name set = Printf.sprintf "profile/%s/%s" name (set_str set)

let key_sampled name set sampling =
  Printf.sprintf "sprofile/%s/%s/%s" name (set_str set)
    (Dmp_sampling.Sampler.config_to_string sampling)

let key_baseline name set = Printf.sprintf "baseline/%s/%s" name (set_str set)

let key_select name set algo =
  Printf.sprintf "select/%s/%s/%s" name (set_str set) algo

let names t = t.order
let jobs t = t.jobs

let entry t name =
  match Hashtbl.find_opt t.entries name with
  | Some e -> e
  | None -> invalid_arg ("Runner: unknown benchmark " ^ name)

let timed t stage f =
  let t0 = Unix.gettimeofday () in
  let finally () =
    let dt = Unix.gettimeofday () -. t0 in
    Mutex.lock t.timings_lock;
    (match Hashtbl.find_opt t.timings stage with
    | Some tm ->
        tm.calls <- tm.calls + 1;
        tm.seconds <- tm.seconds +. dt
    | None -> Hashtbl.replace t.timings stage { calls = 1; seconds = dt });
    Mutex.unlock t.timings_lock
  in
  Fun.protect ~finally f

(* Bump a stage's call counter without attributing wall time — for
   accounting events (dedup hits, elided lanes) whose cost is the point:
   approximately zero. *)
let counted t stage n =
  if n > 0 then begin
    Mutex.lock t.timings_lock;
    (match Hashtbl.find_opt t.timings stage with
    | Some tm -> tm.calls <- tm.calls + n
    | None -> Hashtbl.replace t.timings stage { calls = n; seconds = 0. });
    Mutex.unlock t.timings_lock
  end

let with_lock e f =
  Mutex.lock e.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock e.lock) f

(* Caller must hold [e.lock]. *)
let linked_locked t e =
  match e.linked_v with
  | Some l -> l
  | None ->
      let l = timed t "link" (fun () -> Spec.linked e.spec) in
      e.linked_v <- Some l;
      l

let linked t name =
  let e = entry t name in
  with_lock e (fun () -> linked_locked t e)

let input t name set = (entry t name).spec.Spec.input set

(* Caller must hold [e.lock]. Captured with the runner's own
   [max_insts] cap, which also fingerprints the disk cache, so a
   persisted trace always covers exactly what the replaying stages
   consume. *)
let trace_locked t e set =
  let key = key_trace e.spec.Spec.name set in
  match Mem_cache.find t.mem key with
  | Some (VTrace tr) -> tr
  | Some _ | None ->
      let linked = linked_locked t e in
      let name = e.spec.Spec.name in
      let cached =
        match t.cache with
        | None -> None
        | Some c ->
            timed t "trace (disk cache)" (fun () ->
                Disk_cache.load_trace c ~bench:name ~set)
      in
      let tr =
        match cached with
        | Some tr -> tr
        | None ->
            let tr =
              timed t "trace (capture)" (fun () ->
                  Trace.capture ?max_insts:t.max_insts linked
                    ~input:(e.spec.Spec.input set))
            in
            Option.iter
              (fun c -> Disk_cache.store_trace c ~bench:name ~set tr)
              t.cache;
            tr
      in
      Mem_cache.add t.mem key ~size:(Trace.byte_size tr) (VTrace tr);
      tr

let trace t name set =
  let e = entry t name in
  with_lock e (fun () -> trace_locked t e set)

(* Process-global decoded-image memo, layered under the runner-wide
   LRU: distinct runners in one process (a --repeat sweep, tests, a
   daemon restarted in-process) re-capture traces per runner but the
   decoded image of a registry benchmark is a pure function of
   (benchmark, input set, instruction cap) — decode it at most once per
   process. Guarded to specs physically identical to the registry's, so
   a test runner carrying a custom program under a registry name can
   never be served another program's image. Values are held weakly:
   the memo never extends an image's lifetime, so a budgeted
   [Mem_cache] eviction still frees the Bigarrays once every runner
   drops them. *)
let global_images : (string, Image.t Weak.t) Hashtbl.t = Hashtbl.create 16
let global_images_lock = Mutex.create ()

let global_image_key name set max_insts =
  Printf.sprintf "%s/%s/%s" name (set_str set)
    (match max_insts with Some n -> string_of_int n | None -> "full")

let global_image_find key =
  Mutex.lock global_images_lock;
  let r =
    match Hashtbl.find_opt global_images key with
    | Some w -> Weak.get w 0
    | None -> None
  in
  Mutex.unlock global_images_lock;
  r

let global_image_publish key img =
  let w = Weak.create 1 in
  Weak.set w 0 (Some img);
  Mutex.lock global_images_lock;
  Hashtbl.replace global_images key w;
  Mutex.unlock global_images_lock

(* Caller must hold [e.lock]. The image is decoded in-memory from the
   (possibly disk-cached) packed trace and never persisted itself: the
   decode is one sequential pass, cheaper than reading the ~8x larger
   flat form back from disk. One image per (benchmark, input set) is
   shared — read-only — by every simulation of that pair, across
   domains (and amortised to zero by a long-lived serving process). *)
let image_locked t e set =
  let name = e.spec.Spec.name in
  let key = key_image name set in
  match Mem_cache.find t.mem key with
  | Some (VImage img) -> img
  | Some _ | None ->
      let gkey = global_image_key name set t.max_insts in
      let eligible =
        match Registry.find_opt name with
        | Some s -> s == e.spec
        | None -> false
      in
      let img =
        match (if eligible then global_image_find gkey else None) with
        | Some img -> img
        | None ->
            let tr = trace_locked t e set in
            let img =
              timed t "image (decode)" (fun () -> Image.of_trace tr)
            in
            if eligible then global_image_publish gkey img;
            img
      in
      Mem_cache.add t.mem key ~size:(Image.byte_size img) (VImage img);
      img

let image t name set =
  let e = entry t name in
  with_lock e (fun () -> image_locked t e set)

(* Caller must hold [e.lock]. *)
let profile_locked t e set =
  let name = e.spec.Spec.name in
  let key = key_profile name set in
  match Mem_cache.find t.mem key with
  | Some (VProfile p) -> p
  | Some _ | None ->
      let linked = linked_locked t e in
      let cached =
        match t.cache with
        | None -> None
        | Some c ->
            timed t "profile (disk cache)" (fun () ->
                Disk_cache.load_profile c linked ~bench:name ~set)
      in
      let p =
        match cached with
        | Some p -> p
        | None ->
            let tr = trace_locked t e set in
            let p =
              timed t "profile (collect)" (fun () ->
                  Profile.collect_trace ?max_insts:t.max_insts linked tr)
            in
            Option.iter
              (fun c -> Disk_cache.store_profile c ~bench:name ~set p)
              t.cache;
            p
      in
      Mem_cache.add t.mem key ~size:(Mem_cache.approx_size p) (VProfile p);
      p

let profile t name set =
  let e = entry t name in
  with_lock e (fun () -> profile_locked t e set)

(* Sampled profiles walk the same packed trace as the exact profiler,
   then reconstruct; the collect+reconstruct pair is memoized (and
   disk-cached) per (input set, sampling config), so sweeping many
   configurations reuses one trace per pair. *)
let sampled_profile t name set sampling =
  let e = entry t name in
  with_lock e (fun () ->
      let key = key_sampled name set sampling in
      match Mem_cache.find t.mem key with
      | Some (VProfile p) -> p
      | Some _ | None ->
          let linked = linked_locked t e in
          let cached =
            match t.cache with
            | None -> None
            | Some c ->
                timed t "sprofile (disk cache)" (fun () ->
                    Disk_cache.load_sampled_profile c linked ~bench:name ~set
                      ~sampling)
          in
          let p =
            match cached with
            | Some p -> p
            | None ->
                let tr = trace_locked t e set in
                let p =
                  timed t "sprofile (collect)" (fun () ->
                      let s =
                        Dmp_sampling.Sampler.collect_trace
                          ?max_insts:t.max_insts ~config:sampling linked tr
                      in
                      Dmp_sampling.Reconstruct.profile linked s)
                in
                Option.iter
                  (fun c ->
                    Disk_cache.store_sampled_profile c ~bench:name ~set
                      ~sampling p)
                  t.cache;
                p
          in
          Mem_cache.add t.mem key ~size:(Mem_cache.approx_size p)
            (VProfile p);
          p)

let baseline ?(set = Input_gen.Reduced) t name =
  let e = entry t name in
  with_lock e (fun () ->
      let key = key_baseline name set in
      match Mem_cache.find t.mem key with
      | Some (VStats s) -> s
      | Some _ | None ->
          let linked = linked_locked t e in
          let cached =
            match t.cache with
            | None -> None
            | Some c ->
                timed t "baseline (disk cache)" (fun () ->
                    Disk_cache.load_baseline c ~bench:name ~set)
          in
          let s =
            match cached with
            | Some s -> s
            | None ->
                let img = image_locked t e set in
                let s =
                  timed t "baseline (simulate)" (fun () ->
                      Sim.run_image ~config:Config.baseline
                        ?max_insts:t.max_insts linked img)
                in
                Option.iter
                  (fun c -> Disk_cache.store_baseline c ~bench:name ~set s)
                  t.cache;
                s
          in
          Mem_cache.add t.mem key ~size:(Mem_cache.approx_size s) (VStats s);
          s)

(* Compiler selection as a cached stage: the annotation a named
   selection algorithm derives from the (benchmark, input set) profile.
   The serving daemon's annotate / run requests hit this instead of
   re-running Alg_exact / Alg_freq / the cost model per request. *)
let selection t name set ~algo =
  let variant =
    match Variants.of_string algo with
    | Some v -> v
    | None -> invalid_arg ("Runner.selection: unknown algorithm " ^ algo)
  in
  let e = entry t name in
  with_lock e (fun () ->
      let key = key_select name set algo in
      match Mem_cache.find t.mem key with
      | Some (VAnn a) -> a
      | Some _ | None ->
          let linked = linked_locked t e in
          let p = profile_locked t e set in
          let a =
            timed t "select (run)" (fun () ->
                Variants.annotate variant linked p)
          in
          Mem_cache.add t.mem key ~size:(Mem_cache.approx_size a) (VAnn a);
          a)

(* Configuration fields that shape the long-lived architectural state a
   checkpoint restores in sampled mode — predictor kind, confidence and
   cache geometry — plus the ROB size the resume validates against.
   Timing-only fields (widths, depths, latencies, the confidence
   threshold, the DMP episode limits) are normalised to the baseline so
   a sweep over them shares one set of reference checkpoints: the
   predictor / confidence / cache tables after k consumed events are a
   pure function of the consumed event prefix, which those fields do
   not alter. *)
let arch_key (c : Config.t) =
  {
    Config.baseline with
    Config.rob_size = c.Config.rob_size;
    predictor = c.Config.predictor;
    conf_log2_entries = c.Config.conf_log2_entries;
    conf_history_length = c.Config.conf_history_length;
    l1_log2_sets = c.Config.l1_log2_sets;
    l1_ways = c.Config.l1_ways;
    l2_log2_sets = c.Config.l2_log2_sets;
    l2_ways = c.Config.l2_ways;
    line_bytes = c.Config.line_bytes;
  }

let segment_interval img segments = max 1 (Image.length img / max 1 segments)

(* Reference checkpoints for the sampled mode: captured once per
   (input set, architectural key, segment count) by an annotation-free
   run under the normalised configuration, then shared — read-only —
   by every sampled simulation of that benchmark. Valid for any
   annotation and any same-key configuration because only the
   prefix-determined architectural sections are restored. *)
let key_refckpt name set config segments =
  Printf.sprintf "refckpt/%s/%s/%s/%d" name (set_str set)
    (Digest.to_hex (Digest.string (Marshal.to_string (arch_key config) [])))
    segments

let ref_checkpoints t e set config segments =
  with_lock e (fun () ->
      let key = key_refckpt e.spec.Spec.name set config segments in
      match Mem_cache.find t.mem key with
      | Some (VCkpts cks) -> cks
      | Some _ | None ->
          let linked = linked_locked t e in
          let img = image_locked t e set in
          let cks =
            timed t "ckpt (capture)" (fun () ->
                snd
                  (Sim.run_image_checkpointed ~config:(arch_key config)
                     ?max_insts:t.max_insts
                     ~interval:(segment_interval img segments) linked img))
          in
          Mem_cache.add t.mem key ~size:(Mem_cache.approx_size cks)
            (VCkpts cks);
          cks)

(* Per-segment task lists. Exact segments carry (start, last?) for
   [Sim.run_image_segment]; sampled segments carry (start, length) for
   [Sim.run_image_sampled]. *)
let exact_segment_tasks ckpts =
  let rec go from = function
    | [] -> [ (from, true) ]
    | ck :: tl -> (from, false) :: go (Some ck) tl
  in
  go None ckpts

let sampled_segment_tasks total ckpts =
  let rec go from start = function
    | [] -> [ (from, total - start) ]
    | ck :: tl ->
        let c = Checkpoint.consumed ck in
        (from, c - start) :: go (Some ck) c tl
  in
  go None 0 ckpts

let merge_deltas deltas = List.fold_left Stats.merge (Stats.create ()) deltas

(* ---------- annotation dedup + prefix elision (fused scheduler) ----------

   A DMP simulation's statistics are a pure function of
   (trace, configuration, simulation mode, compiled annotation table).
   The trace is pinned by (benchmark, input set, max_insts) — all
   runner-wide constants or key components — so the memo key below
   identifies a simulation exactly, and each distinct key is simulated
   once; every other requester receives a copy of the memoized
   statistics. The fingerprint is behavioural
   ({!Dmp_core.Annotation.Compiled.fingerprint}): annotations differing
   only in selection metadata (merge probabilities, expected iteration
   counts) share one simulation. *)

let config_digest (c : Config.t) =
  Digest.to_hex (Digest.string (Marshal.to_string c []))

let mode_str = function
  | Exact -> "exact"
  | Segmented n -> Printf.sprintf "segmented:%d" n
  | Sampled { segments; warmup; window } ->
      Printf.sprintf "sampled:%d:%d:%d" segments warmup window

let key_dmpstats name set config mode fp =
  Printf.sprintf "dmpstats/%s/%s/%s/%s/%s" name (set_str set)
    (config_digest config) (mode_str mode) fp

let compile_annotation linked ann =
  Dmp_core.Annotation.compile ~size:(Linked.size linked) ann

let annotation_fingerprint t name ann =
  Dmp_core.Annotation.Compiled.fingerprint
    (compile_annotation (linked t name) ann)

(* ---------- software-predication (transformed-program) stages ----------

   The {!Dmp_transform.Pipeline} is a pure function of
   (program, profile counters, pass config), so its artifacts cache
   like every other stage. Each key — and the synthetic benchmark name
   the disk-cached artifacts persist under — embeds the pass-config
   fingerprint, so a config change can never alias another pipeline's
   trace, profile or statistics. The transformed program's own trace /
   image / profile stages mirror the original ones: captured once per
   (benchmark, input set, pass config) and replayed by every
   simulation. *)

module Pass_config = Dmp_transform.Pass_config

let key_transform name set tfp =
  Printf.sprintf "transform/%s/%s/%s" name (set_str set) tfp

let key_ttrace name set tfp =
  Printf.sprintf "ttrace/%s/%s/%s" name (set_str set) tfp

let key_timage name set tfp =
  Printf.sprintf "timage/%s/%s/%s" name (set_str set) tfp

let key_tprofile name set tfp =
  Printf.sprintf "tprofile/%s/%s/%s" name (set_str set) tfp

let key_tbaseline name set tfp =
  Printf.sprintf "tbaseline/%s/%s/%s" name (set_str set) tfp

(* The benchmark name transformed-program artifacts persist under in
   the disk cache: fingerprint-qualified so they can never collide
   with the original program's entries (or another pass config's). *)
let sw_bench name tfp = Printf.sprintf "%s+sw-%s" name tfp

(* Caller must hold [e.lock]. *)
let transform_locked t e set tconfig =
  let tfp = Pass_config.fingerprint tconfig in
  let key = key_transform e.spec.Spec.name set tfp in
  match Mem_cache.find t.mem key with
  | Some (VTransform r) -> r
  | Some _ | None ->
      let linked = linked_locked t e in
      let p = profile_locked t e set in
      let r =
        timed t "transform (run)" (fun () ->
            Dmp_transform.Pipeline.run ~config:tconfig linked p)
      in
      Mem_cache.add t.mem key ~size:(Mem_cache.approx_size r) (VTransform r);
      r

(* Caller must hold [e.lock]. Same capture / disk-cache discipline as
   [trace_locked], on the transformed program. *)
let ttrace_locked t e set tconfig =
  let name = e.spec.Spec.name in
  let tfp = Pass_config.fingerprint tconfig in
  let key = key_ttrace name set tfp in
  match Mem_cache.find t.mem key with
  | Some (VTrace tr) -> tr
  | Some _ | None ->
      let r = transform_locked t e set tconfig in
      let bench = sw_bench name tfp in
      let cached =
        match t.cache with
        | None -> None
        | Some c ->
            timed t "ttrace (disk cache)" (fun () ->
                Disk_cache.load_trace c ~bench ~set)
      in
      let tr =
        match cached with
        | Some tr -> tr
        | None ->
            let tr =
              timed t "ttrace (capture)" (fun () ->
                  Trace.capture ?max_insts:t.max_insts
                    r.Dmp_transform.Pipeline.linked
                    ~input:(e.spec.Spec.input set))
            in
            Option.iter
              (fun c -> Disk_cache.store_trace c ~bench ~set tr)
              t.cache;
            tr
      in
      Mem_cache.add t.mem key ~size:(Trace.byte_size tr) (VTrace tr);
      tr

(* Caller must hold [e.lock]. Decoded in-memory only, like the
   original image (no global memo: the key already pins the pass
   config, and transformed images are far rarer than registry ones). *)
let timage_locked t e set tconfig =
  let key = key_timage e.spec.Spec.name set (Pass_config.fingerprint tconfig) in
  match Mem_cache.find t.mem key with
  | Some (VImage img) -> img
  | Some _ | None ->
      let tr = ttrace_locked t e set tconfig in
      let img = timed t "image (decode)" (fun () -> Image.of_trace tr) in
      Mem_cache.add t.mem key ~size:(Image.byte_size img) (VImage img);
      img

(* Caller must hold [e.lock]. The transformed program's own edge
   profile — what a second profile-guided compilation (the combined
   software + DMP variant) selects from. *)
let tprofile_locked t e set tconfig =
  let name = e.spec.Spec.name in
  let tfp = Pass_config.fingerprint tconfig in
  let key = key_tprofile name set tfp in
  match Mem_cache.find t.mem key with
  | Some (VProfile p) -> p
  | Some _ | None ->
      let r = transform_locked t e set tconfig in
      let tlinked = r.Dmp_transform.Pipeline.linked in
      let bench = sw_bench name tfp in
      let cached =
        match t.cache with
        | None -> None
        | Some c ->
            timed t "tprofile (disk cache)" (fun () ->
                Disk_cache.load_profile c tlinked ~bench ~set)
      in
      let p =
        match cached with
        | Some p -> p
        | None ->
            let tr = ttrace_locked t e set tconfig in
            let p =
              timed t "tprofile (collect)" (fun () ->
                  Profile.collect_trace ?max_insts:t.max_insts tlinked tr)
            in
            Option.iter
              (fun c -> Disk_cache.store_profile c ~bench ~set p)
              t.cache;
            p
      in
      Mem_cache.add t.mem key ~size:(Mem_cache.approx_size p) (VProfile p);
      p

let transform ?(tconfig = Pass_config.default) t name set =
  let e = entry t name in
  with_lock e (fun () -> transform_locked t e set tconfig)

let transformed_profile ?(tconfig = Pass_config.default) t name set =
  let e = entry t name in
  with_lock e (fun () -> tprofile_locked t e set tconfig)

let transformed_baseline ?(tconfig = Pass_config.default)
    ?(set = Input_gen.Reduced) t name =
  let e = entry t name in
  with_lock e (fun () ->
      let tfp = Pass_config.fingerprint tconfig in
      let key = key_tbaseline name set tfp in
      match Mem_cache.find t.mem key with
      | Some (VStats s) -> s
      | Some _ | None ->
          let r = transform_locked t e set tconfig in
          let bench = sw_bench name tfp in
          let cached =
            match t.cache with
            | None -> None
            | Some c ->
                timed t "tbaseline (disk cache)" (fun () ->
                    Disk_cache.load_baseline c ~bench ~set)
          in
          let s =
            match cached with
            | Some s -> s
            | None ->
                let img = timage_locked t e set tconfig in
                let s =
                  timed t "tbaseline (simulate)" (fun () ->
                      Sim.run_image ~config:Config.baseline
                        ?max_insts:t.max_insts
                        r.Dmp_transform.Pipeline.linked img)
                in
                Option.iter
                  (fun c -> Disk_cache.store_baseline c ~bench ~set s)
                  t.cache;
                s
          in
          Mem_cache.add t.mem key ~size:(Mem_cache.approx_size s) (VStats s);
          s)

(* One DMP simulation of the transformed program (the combined
   software + hardware variant). Memoized under the behavioural
   annotation fingerprint like [dmp_memo], with the pass-config
   fingerprint a key component. *)
let transformed_dmp ?(tconfig = Pass_config.default) ?(set = Input_gen.Reduced)
    ?(config = Config.dmp) t name annotation =
  let e = entry t name in
  with_lock e (fun () ->
      let r = transform_locked t e set tconfig in
      let tlinked = r.Dmp_transform.Pipeline.linked in
      let fp =
        Dmp_core.Annotation.Compiled.fingerprint
          (compile_annotation tlinked annotation)
      in
      let key =
        Printf.sprintf "tdmpstats/%s/%s/%s/%s/%s" name (set_str set)
          (Pass_config.fingerprint tconfig) (config_digest config) fp
      in
      match Mem_cache.find t.mem key with
      | Some (VStats s) ->
          counted t "dmp (dedup hit)" 1;
          Stats.copy s
      | Some _ | None ->
          let img = timage_locked t e set tconfig in
          let s =
            timed t "tdmp (simulate)" (fun () ->
                Sim.run_image ~config ~annotation ?max_insts:t.max_insts
                  tlinked img)
          in
          Mem_cache.add t.mem key ~size:(Mem_cache.approx_size s)
            (VStats (Stats.copy s));
          s)

(* Prefix elision: an annotation-free run and a run under annotation
   [A] evolve through byte-identical machine states until the first
   *consumed* image event whose address carries a compiled diverge
   branch of [A] — the table is consulted nowhere else (wrong-side
   walkers and recovery fetch never read it). A checkpoint of the
   annotation-free reference run at [consumed <= fo(A)] (fo = first
   image index of any compiled diverge address of [A]) is therefore an
   exact state of [A]'s own run, and a lane resumed from it finishes
   with statistics byte-identical to the from-scratch simulation. When
   fo(A) is past the (possibly capped) image end, the annotation never
   fires at all and the reference run's statistics *are* the lane's. *)

let elide_segments = 32
let elide_min_interval = 10_000

let effective_len img max_insts =
  match max_insts with
  | Some m -> min m (Image.length img)
  | None -> Image.length img

let elide_interval effective = max elide_min_interval (effective / elide_segments)

let key_elide name set config interval =
  Printf.sprintf "elide/%s/%s/%s/%d" name (set_str set)
    (config_digest config) interval

(* Caller must hold [e.lock]. One annotation-free reference run under
   the actual config, checkpointed; memoized per
   (benchmark, set, config, interval). *)
let elide_capture_locked t e set config interval =
  let key = key_elide e.spec.Spec.name set config interval in
  match Mem_cache.find t.mem key with
  | Some (VElide (s, cks)) -> (s, cks)
  | Some _ | None ->
      let linked = linked_locked t e in
      let img = image_locked t e set in
      let s, cks =
        timed t "ckpt (elide)" (fun () ->
            Sim.run_image_checkpointed ~config ?max_insts:t.max_insts
              ~interval linked img)
      in
      Mem_cache.add t.mem key
        ~size:
          (Mem_cache.approx_size s
          + List.fold_left (fun a c -> a + Checkpoint.byte_size c) 0 cks)
        (VElide (s, cks));
      (s, cks)

(* One distinct simulation of a batch: the representative annotation,
   its memo key, the compiled diverge addresses (for the elision bound)
   and the task slots its statistics fan out to. *)
type group = {
  g_name : string;
  g_ann : Dmp_core.Annotation.t;
  g_key : string;
  g_addrs : int list;
  mutable g_indices : int list;  (* result slots, reverse order *)
}

(* How independent per-segment simulations are spread; polymorphic so
   one fanner serves both segment task shapes. *)
type fanner = { fan : 'a 'b. ('a -> 'b) -> 'a list -> 'b list }

(* One DMP simulation under the runner's (or an explicit) simulation
   mode. [fan] says how independent per-segment simulations are spread:
   the plain [dmp] entry point runs them inline; [dmp_batch] nests them
   onto its worker pool, where the re-entrant [Pool.map] lets the
   submitting worker help drain its own segments. *)
let dmp_with ~fan:{ fan } ?(set = Input_gen.Reduced) ?(config = Config.dmp) ?mode t
    name annotation =
  let mode = Option.value mode ~default:t.sim_mode in
  validate_sim_mode mode;
  let e = entry t name in
  let linked, img =
    with_lock e (fun () -> (linked_locked t e, image_locked t e set))
  in
  match mode with
  | Exact ->
      timed t "dmp (simulate)" (fun () ->
          Sim.run_image ~config ~annotation ?max_insts:t.max_insts linked img)
  | Segmented segments ->
      (* Validation mode: capture this very run's checkpoints, then
         re-simulate every segment independently and merge the deltas —
         byte-identical to the exact statistics by construction. *)
      let interval = segment_interval img segments in
      let ckpts =
        timed t "ckpt (capture)" (fun () ->
            snd
              (Sim.run_image_checkpointed ~config ~annotation
                 ?max_insts:t.max_insts ~interval linked img))
      in
      timed t "dmp (simulate)" (fun () ->
          merge_deltas
            (fan
               (fun (from, last) ->
                 Sim.run_image_segment ~config ~annotation
                   ?max_insts:t.max_insts ?from ~interval ~to_completion:last
                   linked img)
               (exact_segment_tasks ckpts)))
  | Sampled { segments; warmup; window } ->
      let ckpts = ref_checkpoints t e set config segments in
      timed t "dmp (simulate)" (fun () ->
          merge_deltas
            (fan
               (fun (from, length) ->
                 Sim.run_image_sampled ~config ~annotation
                   ?max_insts:t.max_insts ?from ~length ~warmup ~window linked
                   img)
               (sampled_segment_tasks (Image.length img) ckpts)))

let dmp ?set ?config ?mode t name annotation =
  dmp_with ~fan:{ fan = List.map } ?set ?config ?mode t name annotation

(* Split a list into consecutive chunks of (at most) [w] elements. *)
let rec chunk w = function
  | [] -> []
  | xs ->
      let rec take n acc = function
        | tl when n = 0 -> (List.rev acc, tl)
        | [] -> (List.rev acc, [])
        | x :: tl -> take (n - 1) (x :: acc) tl
      in
      let c, rest = take w [] xs in
      c :: chunk w rest

(* The legacy batch: every task simulated independently, spread across
   the pool. Kept verbatim as the reference the fused scheduler is
   byte-compared against (bench [--no-fused], CI's cmp check). *)
let dmp_batch_unfused ~set ~config ~mode t tasks =
  (* Each simulation is independent and deterministic, and [Pool.map]
     returns results in submission order, so the caller sees the exact
     list a sequential [List.map] over [dmp] would produce — with any
     [-j 1] / [-j N] difference invisible in the output. Shared inputs
     (linked program, trace, image) are memoized under the entry lock,
     so concurrent tasks of one benchmark derive them exactly once.
     Under a segment-splitting mode each task additionally fans its
     segments onto the same pool (a nested, re-entrant [Pool.map]), so
     even a single benchmark's simulation spreads across the workers. *)
  Pool.with_pool ?jobs:t.jobs (fun pool ->
      let fan = { fan = (fun f xs -> Pool.map pool ~f xs) } in
      Pool.map pool
        ~f:(fun (name, annotation) ->
          dmp_with ~fan ~set ~config ~mode t name annotation)
        tasks)

let dmp_batch ?(set = Input_gen.Reduced) ?(config = Config.dmp) ?mode t tasks =
  let mode = Option.value mode ~default:t.sim_mode in
  validate_sim_mode mode;
  if not t.fused then dmp_batch_unfused ~set ~config ~mode t tasks
  else begin
    (* Fused scheduler. Dedup first: fingerprint every task's compiled
       annotation and collapse behaviourally identical tasks into one
       group per memo key, preserving first-occurrence order. Each
       group is simulated at most once (or not at all, on a memo hit
       from an earlier batch); its statistics fan out as copies to
       every requesting slot, so the result list is byte-identical to
       the unfused batch in task order. *)
    let n = List.length tasks in
    let results : Stats.t option array = Array.make n None in
    let groups_tbl : (string, group) Hashtbl.t = Hashtbl.create 32 in
    let order = ref [] in
    List.iteri
      (fun i (name, ann) ->
        let e = entry t name in
        let linked = with_lock e (fun () -> linked_locked t e) in
        let compiled = compile_annotation linked ann in
        let fp = Dmp_core.Annotation.Compiled.fingerprint compiled in
        let key = key_dmpstats name set config mode fp in
        match Hashtbl.find_opt groups_tbl key with
        | Some g -> g.g_indices <- i :: g.g_indices
        | None ->
            let g =
              {
                g_name = name;
                g_ann = ann;
                g_key = key;
                g_addrs = Dmp_core.Annotation.Compiled.diverge_indices compiled;
                g_indices = [ i ];
              }
            in
            Hashtbl.replace groups_tbl key g;
            order := g :: !order)
      tasks;
    let deliver g s =
      List.iter (fun i -> results.(i) <- Some (Stats.copy s)) g.g_indices
    in
    let publish g s =
      Mem_cache.add t.mem g.g_key ~size:(Mem_cache.approx_size s)
        (VStats (Stats.copy s));
      deliver g s;
      counted t "dmp (dedup hit)" (List.length g.g_indices - 1)
    in
    let pending =
      List.filter
        (fun g ->
          match Mem_cache.find t.mem g.g_key with
          | Some (VStats s) ->
              deliver g s;
              counted t "dmp (dedup hit)" (List.length g.g_indices);
              false
          | Some _ | None -> true)
        (List.rev !order)
    in
    (match mode with
    | Segmented _ | Sampled _ ->
        (* The segment-splitting modes already share their expensive
           state (reference checkpoints) across tasks; dedup alone
           collapses the batch, the representatives run unfused. *)
        Pool.with_pool ?jobs:t.jobs (fun pool ->
            let fan = { fan = (fun f xs -> Pool.map pool ~f xs) } in
            let stats =
              Pool.map pool
                ~f:(fun g -> dmp_with ~fan ~set ~config ~mode t g.g_name g.g_ann)
                pending
            in
            List.iter2 publish pending stats)
    | Exact ->
        (* Group the representatives by benchmark, plan each
           benchmark's lanes (prefix elision), then run K-wide fused
           kernels across the pool. *)
        let by_bench : (string, group list ref) Hashtbl.t = Hashtbl.create 8 in
        let border = ref [] in
        List.iter
          (fun g ->
            match Hashtbl.find_opt by_bench g.g_name with
            | Some l -> l := g :: !l
            | None ->
                Hashtbl.replace by_bench g.g_name (ref [ g ]);
                border := g.g_name :: !border)
          pending;
        let benches = List.rev !border in
        let jobs =
          match t.jobs with Some j -> j | None -> Pool.default_jobs ()
        in
        Pool.with_pool ?jobs:t.jobs (fun pool ->
            (* Phase 1 — one planning task per benchmark. Decide
               whether a prefix-elision capture pays for itself: the
               capture is one full annotation-free run, so it must save
               more simulated events than it costs. Groups whose
               compiled diverge branches never occur in the (capped)
               image are delivered straight from the capture's own
               statistics; the rest become lanes, elided ones starting
               from the latest reference checkpoint at or before their
               first diverge occurrence. *)
            let plans =
              Pool.map pool
                ~f:(fun name ->
                  let gs = List.rev !(Hashtbl.find by_bench name) in
                  let e = entry t name in
                  let img = with_lock e (fun () -> image_locked t e set) in
                  let effective = effective_len img t.max_insts in
                  let interval = elide_interval effective in
                  let fos =
                    List.map
                      (fun g ->
                        ( g,
                          List.fold_left
                            (fun m a -> min m (Image.first_index img a))
                            max_int g.g_addrs ))
                      gs
                  in
                  let savings =
                    List.fold_left
                      (fun acc (_, fo) ->
                        acc
                        + (if fo >= effective then effective
                           else fo / interval * interval))
                      0 fos
                  in
                  let have_capture =
                    match
                      Mem_cache.find t.mem (key_elide name set config interval)
                    with
                    | Some (VElide _) -> true
                    | Some _ | None -> false
                  in
                  let capture =
                    if have_capture || savings > effective then
                      Some
                        (with_lock e (fun () ->
                             elide_capture_locked t e set config interval))
                    else None
                  in
                  let lanes =
                    List.filter_map
                      (fun (g, fo) ->
                        match capture with
                        | Some (cs, _) when fo >= effective ->
                            publish g cs;
                            counted t "dmp (elide skip)" 1;
                            None
                        | Some (_, cks) ->
                            let from =
                              Checkpoint.latest_at_or_before cks ~consumed:fo
                            in
                            if from <> None then counted t "dmp (elided lane)" 1;
                            Some (g, from)
                        | None -> Some (g, None))
                      fos
                  in
                  (* Lanes starting near each other retire together, so
                     sort by start position before chunking: a kernel's
                     stride loop then wastes no lock-step iterations on
                     an already-finished lane. *)
                  let lanes =
                    List.stable_sort
                      (fun (_, a) (_, b) ->
                        let c = function
                          | None -> 0
                          | Some ck -> Checkpoint.consumed ck
                        in
                        compare (c a) (c b))
                      lanes
                  in
                  let width =
                    max 1 (min 8 ((List.length lanes + jobs - 1) / jobs))
                  in
                  List.map (fun c -> (name, c)) (chunk width lanes))
                benches
            in
            (* Phase 2 — the fused kernels, one pool task each. *)
            Pool.run pool
              (List.map
                 (fun (name, lanes) () ->
                   let e = entry t name in
                   let linked, img =
                     with_lock e (fun () ->
                         (linked_locked t e, image_locked t e set))
                   in
                   let stats =
                     timed t "dmp (simulate fused)" (fun () ->
                         Sim.run_image_fused ~config ?max_insts:t.max_insts
                           linked img
                           (List.map
                              (fun (g, from) -> (Some g.g_ann, from))
                              lanes))
                   in
                   List.iter2 (fun (g, _) s -> publish g s) lanes stats)
                 (List.concat plans))));
    Array.to_list (Array.map Option.get results)
  end

(* Memoized single simulation: same dedup memo as {!dmp_batch}, for
   callers that arrive one request at a time (the serving daemon). *)
let dmp_memo ?(set = Input_gen.Reduced) ?(config = Config.dmp) ?mode t name
    annotation =
  let mode = Option.value mode ~default:t.sim_mode in
  validate_sim_mode mode;
  let e = entry t name in
  let linked = with_lock e (fun () -> linked_locked t e) in
  let fp =
    Dmp_core.Annotation.Compiled.fingerprint (compile_annotation linked annotation)
  in
  let key = key_dmpstats name set config mode fp in
  match Mem_cache.find t.mem key with
  | Some (VStats s) ->
      counted t "dmp (dedup hit)" 1;
      Stats.copy s
  | Some _ | None ->
      let s = dmp ~set ~config ~mode t name annotation in
      Mem_cache.add t.mem key ~size:(Mem_cache.approx_size s)
        (VStats (Stats.copy s));
      s

let prefetch ?(profile_sets = [ Input_gen.Reduced ])
    ?(baseline_sets = [ Input_gen.Reduced ]) ?jobs t =
  let jobs = match jobs with Some _ -> jobs | None -> t.jobs in
  (* One task per benchmark: stages of the same benchmark share its
     lock anyway, so finer tasks would only make workers queue on it. *)
  Pool.with_pool ?jobs (fun pool ->
      Pool.run pool
        (List.map
           (fun name () ->
             List.iter (fun set -> ignore (profile t name set)) profile_sets;
             List.iter
               (fun set -> ignore (baseline ~set t name))
               baseline_sets)
           t.order))

let speedup_pct ~base stats =
  (Stats.ipc stats /. Stats.ipc base -. 1.) *. 100.

let amean xs =
  match xs with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let timings t =
  Mutex.lock t.timings_lock;
  let rows =
    Hashtbl.fold
      (fun stage tm acc -> (stage, tm.calls, tm.seconds) :: acc)
      t.timings []
  in
  Mutex.unlock t.timings_lock;
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) rows

let timings_json t =
  let b = Buffer.create 256 in
  Buffer.add_string b "[";
  List.iteri
    (fun i (stage, calls, seconds) ->
      if i > 0 then Buffer.add_string b ",";
      (* Stage labels are fixed ASCII strings without quotes or
         backslashes, so plain quoting is valid JSON. *)
      Buffer.add_string b
        (Printf.sprintf "\n  {\"stage\": %S, \"calls\": %d, \"seconds\": %.6f}"
           stage calls seconds))
    (timings t);
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let timing_summary t =
  let rows = timings t in
  let b = Buffer.create 256 in
  Buffer.add_string b "== Stage timings ==\n";
  Buffer.add_string b
    (Printf.sprintf "%-24s %8s %12s\n" "stage" "calls" "seconds");
  List.iter
    (fun (stage, calls, seconds) ->
      Buffer.add_string b
        (Printf.sprintf "%-24s %8d %12.3f\n" stage calls seconds))
    rows;
  Buffer.contents b
