(* Shared experiment pipeline with caching of the expensive stages
   (linking, trace capture, profiling, baseline simulation) across
   figures. The architectural emulator runs once per (benchmark, input
   set): its event stream is captured into a packed [Trace.t] under the
   per-benchmark lock; the trace is decoded once into a flat [Image.t]
   and every later baseline / dmp call replays the image (profiling
   still walks the packed trace — it runs once per pair anyway).

   Concurrency: every entry owns a lock that guards its memo tables and
   its one-shot linking, so a stage is computed exactly once no matter
   how many domains ask for it, and distinct benchmarks proceed in
   parallel. The runner-wide state (stage timings) has its own lock and
   is never held across a stage computation. *)

open Dmp_ir
open Dmp_exec
open Dmp_profile
open Dmp_uarch
open Dmp_workload

type entry = {
  spec : Spec.t;
  lock : Mutex.t;
  mutable linked_v : Linked.t option;
  traces : (Input_gen.set, Trace.t) Hashtbl.t;
  images : (Input_gen.set, Image.t) Hashtbl.t;
  profiles : (Input_gen.set, Profile.t) Hashtbl.t;
  sampled : (Input_gen.set * Dmp_sampling.Sampler.config, Profile.t) Hashtbl.t;
  baselines : (Input_gen.set, Stats.t) Hashtbl.t;
}

type timing = { mutable calls : int; mutable seconds : float }

type t = {
  entries : (string, entry) Hashtbl.t;
  order : string list;
  max_insts : int option;
  cache : Disk_cache.t option;
  jobs : int option;
  timings : (string, timing) Hashtbl.t;
  timings_lock : Mutex.t;
}

let create ?(benchmarks = Registry.all) ?max_insts ?cache_dir ?jobs () =
  let entries = Hashtbl.create 32 in
  List.iter
    (fun spec ->
      Hashtbl.replace entries spec.Spec.name
        {
          spec;
          lock = Mutex.create ();
          linked_v = None;
          traces = Hashtbl.create 4;
          images = Hashtbl.create 4;
          profiles = Hashtbl.create 4;
          sampled = Hashtbl.create 4;
          baselines = Hashtbl.create 4;
        })
    benchmarks;
  let cache =
    Option.map (fun dir -> Disk_cache.create ~dir ~max_insts ()) cache_dir
  in
  {
    entries;
    order = List.map (fun s -> s.Spec.name) benchmarks;
    max_insts;
    cache;
    jobs;
    timings = Hashtbl.create 8;
    timings_lock = Mutex.create ();
  }

let names t = t.order

let entry t name =
  match Hashtbl.find_opt t.entries name with
  | Some e -> e
  | None -> invalid_arg ("Runner: unknown benchmark " ^ name)

let timed t stage f =
  let t0 = Unix.gettimeofday () in
  let finally () =
    let dt = Unix.gettimeofday () -. t0 in
    Mutex.lock t.timings_lock;
    (match Hashtbl.find_opt t.timings stage with
    | Some tm ->
        tm.calls <- tm.calls + 1;
        tm.seconds <- tm.seconds +. dt
    | None -> Hashtbl.replace t.timings stage { calls = 1; seconds = dt });
    Mutex.unlock t.timings_lock
  in
  Fun.protect ~finally f

let with_lock e f =
  Mutex.lock e.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock e.lock) f

(* Caller must hold [e.lock]. *)
let linked_locked t e =
  match e.linked_v with
  | Some l -> l
  | None ->
      let l = timed t "link" (fun () -> Spec.linked e.spec) in
      e.linked_v <- Some l;
      l

let linked t name =
  let e = entry t name in
  with_lock e (fun () -> linked_locked t e)

let input t name set = (entry t name).spec.Spec.input set

(* Caller must hold [e.lock]. Captured with the runner's own
   [max_insts] cap, which also fingerprints the disk cache, so a
   persisted trace always covers exactly what the replaying stages
   consume. *)
let trace_locked t e set =
  match Hashtbl.find_opt e.traces set with
  | Some tr -> tr
  | None ->
      let linked = linked_locked t e in
      let name = e.spec.Spec.name in
      let cached =
        match t.cache with
        | None -> None
        | Some c ->
            timed t "trace (disk cache)" (fun () ->
                Disk_cache.load_trace c ~bench:name ~set)
      in
      let tr =
        match cached with
        | Some tr -> tr
        | None ->
            let tr =
              timed t "trace (capture)" (fun () ->
                  Trace.capture ?max_insts:t.max_insts linked
                    ~input:(e.spec.Spec.input set))
            in
            Option.iter
              (fun c -> Disk_cache.store_trace c ~bench:name ~set tr)
              t.cache;
            tr
      in
      Hashtbl.replace e.traces set tr;
      tr

let trace t name set =
  let e = entry t name in
  with_lock e (fun () -> trace_locked t e set)

(* Caller must hold [e.lock]. The image is decoded in-memory from the
   (possibly disk-cached) packed trace and never persisted itself: the
   decode is one sequential pass, cheaper than reading the ~8x larger
   flat form back from disk. One image per (benchmark, input set) is
   shared — read-only — by every simulation of that pair, across
   domains. *)
let image_locked t e set =
  match Hashtbl.find_opt e.images set with
  | Some img -> img
  | None ->
      let tr = trace_locked t e set in
      let img = timed t "image (decode)" (fun () -> Image.of_trace tr) in
      Hashtbl.replace e.images set img;
      img

let image t name set =
  let e = entry t name in
  with_lock e (fun () -> image_locked t e set)

let profile t name set =
  let e = entry t name in
  with_lock e (fun () ->
      match Hashtbl.find_opt e.profiles set with
      | Some p -> p
      | None ->
          let linked = linked_locked t e in
          let cached =
            match t.cache with
            | None -> None
            | Some c ->
                timed t "profile (disk cache)" (fun () ->
                    Disk_cache.load_profile c linked ~bench:name ~set)
          in
          let p =
            match cached with
            | Some p -> p
            | None ->
                let tr = trace_locked t e set in
                let p =
                  timed t "profile (collect)" (fun () ->
                      Profile.collect_trace ?max_insts:t.max_insts linked
                        tr)
                in
                Option.iter
                  (fun c -> Disk_cache.store_profile c ~bench:name ~set p)
                  t.cache;
                p
          in
          Hashtbl.replace e.profiles set p;
          p)

(* Sampled profiles walk the same packed trace as the exact profiler,
   then reconstruct; the collect+reconstruct pair is memoized (and
   disk-cached) per (input set, sampling config), so sweeping many
   configurations reuses one trace per pair. *)
let sampled_profile t name set sampling =
  let e = entry t name in
  with_lock e (fun () ->
      let key = (set, sampling) in
      match Hashtbl.find_opt e.sampled key with
      | Some p -> p
      | None ->
          let linked = linked_locked t e in
          let cached =
            match t.cache with
            | None -> None
            | Some c ->
                timed t "sprofile (disk cache)" (fun () ->
                    Disk_cache.load_sampled_profile c linked ~bench:name ~set
                      ~sampling)
          in
          let p =
            match cached with
            | Some p -> p
            | None ->
                let tr = trace_locked t e set in
                let p =
                  timed t "sprofile (collect)" (fun () ->
                      let s =
                        Dmp_sampling.Sampler.collect_trace
                          ?max_insts:t.max_insts ~config:sampling linked tr
                      in
                      Dmp_sampling.Reconstruct.profile linked s)
                in
                Option.iter
                  (fun c ->
                    Disk_cache.store_sampled_profile c ~bench:name ~set
                      ~sampling p)
                  t.cache;
                p
          in
          Hashtbl.replace e.sampled key p;
          p)

let baseline ?(set = Input_gen.Reduced) t name =
  let e = entry t name in
  with_lock e (fun () ->
      match Hashtbl.find_opt e.baselines set with
      | Some s -> s
      | None ->
          let linked = linked_locked t e in
          let cached =
            match t.cache with
            | None -> None
            | Some c ->
                timed t "baseline (disk cache)" (fun () ->
                    Disk_cache.load_baseline c ~bench:name ~set)
          in
          let s =
            match cached with
            | Some s -> s
            | None ->
                let img = image_locked t e set in
                let s =
                  timed t "baseline (simulate)" (fun () ->
                      Sim.run_image ~config:Config.baseline
                        ?max_insts:t.max_insts linked img)
                in
                Option.iter
                  (fun c -> Disk_cache.store_baseline c ~bench:name ~set s)
                  t.cache;
                s
          in
          Hashtbl.replace e.baselines set s;
          s)

let dmp ?(set = Input_gen.Reduced) ?(config = Config.dmp) t name annotation =
  let e = entry t name in
  let linked, img =
    with_lock e (fun () -> (linked_locked t e, image_locked t e set))
  in
  timed t "dmp (simulate)" (fun () ->
      Sim.run_image ~config ~annotation ?max_insts:t.max_insts linked img)

let dmp_batch ?set ?config t tasks =
  (* Each simulation is independent and deterministic, and [Pool.map]
     returns results in submission order, so the caller sees the exact
     list a sequential [List.map] over [dmp] would produce — with any
     [-j 1] / [-j N] difference invisible in the output. Shared inputs
     (linked program, trace, image) are memoized under the entry lock,
     so concurrent tasks of one benchmark derive them exactly once. *)
  Pool.with_pool ?jobs:t.jobs (fun pool ->
      Pool.map pool
        ~f:(fun (name, annotation) -> dmp ?set ?config t name annotation)
        tasks)

let prefetch ?(profile_sets = [ Input_gen.Reduced ])
    ?(baseline_sets = [ Input_gen.Reduced ]) ?jobs t =
  let jobs = match jobs with Some _ -> jobs | None -> t.jobs in
  (* One task per benchmark: stages of the same benchmark share its
     lock anyway, so finer tasks would only make workers queue on it. *)
  Pool.with_pool ?jobs (fun pool ->
      Pool.run pool
        (List.map
           (fun name () ->
             List.iter (fun set -> ignore (profile t name set)) profile_sets;
             List.iter
               (fun set -> ignore (baseline ~set t name))
               baseline_sets)
           t.order))

let speedup_pct ~base stats =
  (Stats.ipc stats /. Stats.ipc base -. 1.) *. 100.

let amean xs =
  match xs with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let timings t =
  Mutex.lock t.timings_lock;
  let rows =
    Hashtbl.fold
      (fun stage tm acc -> (stage, tm.calls, tm.seconds) :: acc)
      t.timings []
  in
  Mutex.unlock t.timings_lock;
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) rows

let timings_json t =
  let b = Buffer.create 256 in
  Buffer.add_string b "[";
  List.iteri
    (fun i (stage, calls, seconds) ->
      if i > 0 then Buffer.add_string b ",";
      (* Stage labels are fixed ASCII strings without quotes or
         backslashes, so plain quoting is valid JSON. *)
      Buffer.add_string b
        (Printf.sprintf "\n  {\"stage\": %S, \"calls\": %d, \"seconds\": %.6f}"
           stage calls seconds))
    (timings t);
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let timing_summary t =
  let rows = timings t in
  let b = Buffer.create 256 in
  Buffer.add_string b "== Stage timings ==\n";
  Buffer.add_string b
    (Printf.sprintf "%-24s %8s %12s\n" "stage" "calls" "seconds");
  List.iter
    (fun (stage, calls, seconds) ->
      Buffer.add_string b
        (Printf.sprintf "%-24s %8d %12.3f\n" stage calls seconds))
    rows;
  Buffer.contents b
