(* Merge-point providers for the three-way CFM comparison: the paper's
   compiled profile-guided tables, the TR-HPS-2020-001 dynamic Merge
   Point Table, and the oracle IPOSDOM annotation. *)

open Dmp_uarch

type t =
  | Static
  | Dynamic of Dmp_mpp.Mpt.config
  | Oracle

let all =
  [
    ("static", Static);
    ("dynamic", Dynamic Dmp_mpp.Mpt.default);
    ("dynamic-small", Dynamic Dmp_mpp.Mpt.small);
    ("oracle", Oracle);
  ]

let names = List.map fst all
let of_string name = List.assoc_opt name all

let kind_name = function
  | Static -> "static"
  | Dynamic _ -> "dynamic"
  | Oracle -> "oracle"

let config = function
  | Static | Oracle -> Config.dmp
  | Dynamic mcfg -> Config.dmp_dynamic mcfg

let annotation t linked =
  match t with
  | Static | Dynamic _ -> None
  | Oracle -> Some (Dmp_mpp.Oracle.annotation linked)
