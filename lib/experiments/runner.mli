(** Shared experiment pipeline with caching of linking, trace capture,
    profiling and baseline simulation across figures.

    The architectural emulator runs once per (benchmark, input set):
    its event stream is captured into a packed {!Dmp_exec.Trace} on
    first use and every later [profile] / [baseline] / [dmp] call
    replays the trace instead of re-emulating, with bit-identical
    results.

    A runner is safe for concurrent use from multiple domains: each
    benchmark's stages are guarded by a per-benchmark lock, so distinct
    benchmarks link / capture / profile / simulate in parallel while
    every cached stage is still computed exactly once. *)

open Dmp_ir
open Dmp_exec
open Dmp_profile
open Dmp_uarch
open Dmp_workload

type t

type sim_mode =
  | Exact  (** one full-length simulation per task (the default) *)
  | Segmented of int
      (** validation mode: run checkpointed, then re-simulate the [n]
          segments independently and {!Dmp_uarch.Stats.merge} their
          deltas — byte-identical to [Exact] by construction, with the
          segments fanned across the pool inside {!dmp_batch} *)
  | Sampled of { segments : int; warmup : int; window : int }
      (** interval sampling: per segment, restore the architectural
          state from a shared annotation-independent reference
          checkpoint, simulate [warmup] events to heat the cold
          pipeline plus a [window] measurement, and extrapolate to the
          segment length — an estimate, orders of magnitude cheaper on
          long traces *)

val create :
  ?benchmarks:Spec.t list -> ?max_insts:int -> ?cache_dir:string ->
  ?jobs:int -> ?sim_mode:sim_mode -> ?fused:bool -> ?mem_budget:int ->
  unit -> t
(** Defaults to the full 17-benchmark suite with uncapped simulations.
    [max_insts] caps trace capture, profiling and simulation alike (for
    quick runs and tests). When [cache_dir] is given, traces, profiles
    and baseline statistics additionally persist across processes in a
    {!Disk_cache} rooted there; corrupt or stale entries are recomputed
    transparently. [jobs] sets the worker count of every parallel stage
    ({!prefetch} without an explicit override, {!dmp_batch}); it
    defaults to [Dmp_exec.Pool.default_jobs ()] and [jobs = 1] runs
    every stage inline on the calling domain. The produced statistics
    and report output are byte-identical for every [jobs] value.
    [sim_mode] (default [Exact]) selects how {!dmp} / {!dmp_batch}
    simulate; {!baseline} always runs exactly. [fused] (default [true])
    enables the fused batch scheduler in {!dmp_batch} — annotation
    dedup, prefix elision and K-way lock-step kernels; [~fused:false]
    restores the one-simulation-per-task batch, with byte-identical
    results either way.

    Every stage value (traces, decoded images, exact and sampled
    profiles, baseline statistics, selections, reference checkpoints)
    lives in one runner-wide in-memory LRU ({!Dmp_exec.Mem_cache})
    layered over the disk cache. [mem_budget] bounds it in bytes; no
    budget (the default) means nothing is ever evicted — the old
    unbounded memoisation. Under a budget, evicted stages are
    recomputed (or re-loaded from disk) transparently, so results are
    identical for every budget value.
    @raise Invalid_argument on a malformed [sim_mode]. *)

val mem_stats : t -> Dmp_exec.Mem_cache.stats
(** Hit/miss/eviction counters and live bytes of the runner-wide
    in-memory stage cache (the daemon's stats request reports them). *)

val names : t -> string list

val jobs : t -> int option
(** The worker count the runner was created with ([None] = the
    {!Dmp_exec.Pool.default_jobs} default) — exposed so figure
    harnesses can spread their own per-benchmark work over a pool of
    the same width. *)

val linked : t -> string -> Linked.t
val input : t -> string -> Input_gen.set -> int array

val trace : t -> string -> Input_gen.set -> Trace.t
(** The packed architectural trace, captured (or loaded from the disk
    cache) on first use and then shared by every replaying stage.
    Cached per (benchmark, input set). *)

val image : t -> string -> Input_gen.set -> Image.t
(** The trace pre-decoded into a flat {!Dmp_exec.Image} on first use;
    every simulating stage ([baseline], [dmp], [dmp_batch]) replays the
    image rather than the packed trace. Cached in-memory per
    (benchmark, input set) — never persisted, since decoding the cached
    trace is cheaper than reading the flat form back from disk. *)

val profile : t -> string -> Input_gen.set -> Profile.t
(** Cached per (benchmark, input set). *)

val sampled_profile :
  t -> string -> Input_gen.set -> Dmp_sampling.Sampler.config -> Profile.t
(** A profile collected by sparse hardware-style sampling
    ({!Dmp_sampling.Sampler}) over the benchmark's packed trace and
    reconstructed to a dense profile ({!Dmp_sampling.Reconstruct}).
    Cached in-memory per (benchmark, input set, sampling config) and,
    when the runner has a disk cache, persisted with the sampling
    parameters folded into the entry kind. Stage labels:
    ["sprofile (collect)"] / ["sprofile (disk cache)"]. *)

val baseline : ?set:Input_gen.set -> t -> string -> Stats.t
(** Cached per (benchmark, input set). *)

val transform :
  ?tconfig:Dmp_transform.Pass_config.t -> t -> string -> Input_gen.set ->
  Dmp_transform.Pipeline.result
(** The software-predication pipeline ({!Dmp_transform.Pipeline}) run
    over the benchmark's linked program under its exact profile. Pure
    in (program, profile, config), so cached per
    (benchmark, input set, pass-config fingerprint); stage label
    ["transform (run)"]. *)

val transformed_profile :
  ?tconfig:Dmp_transform.Pass_config.t -> t -> string -> Input_gen.set ->
  Profile.t
(** The transformed program's own edge/misprediction profile, collected
    over its captured trace (stage ["tprofile (collect)"]) — what a
    second profile-guided selection runs on for the combined
    software + DMP variant. The trace capture (["ttrace (capture)"])
    and this profile both persist in the disk cache under a
    pass-fingerprint-qualified benchmark name. *)

val transformed_baseline :
  ?tconfig:Dmp_transform.Pass_config.t -> ?set:Input_gen.set -> t ->
  string -> Stats.t
(** Baseline-machine simulation of the transformed program — the pure
    software-predication data point. Cached (and disk-persisted) per
    (benchmark, input set, pass-config fingerprint); stage
    ["tbaseline (simulate)"]. *)

val transformed_dmp :
  ?tconfig:Dmp_transform.Pass_config.t -> ?set:Input_gen.set ->
  ?config:Config.t -> t -> string -> Dmp_core.Annotation.t -> Stats.t
(** One DMP simulation of the transformed program under [annotation]
    (selected from {!transformed_profile}) — the combined
    software + hardware variant. Memoized like {!dmp_memo} with the
    pass-config fingerprint a key component; stage
    ["tdmp (simulate)"]. *)

val selection : t -> string -> Input_gen.set -> algo:string -> Dmp_core.Annotation.t
(** The annotation the named selection algorithm (a {!Variants} name,
    e.g. ["all-best-heur"]) derives from the benchmark's profile.
    Cached per (benchmark, input set, algorithm) in the in-memory LRU;
    stage label ["select (run)"]. The serving daemon's annotate / run
    requests resolve selections through this instead of re-running the
    compiler per request.
    @raise Invalid_argument on an unknown algorithm name. *)

val dmp :
  ?set:Input_gen.set -> ?config:Config.t -> ?mode:sim_mode -> t -> string ->
  Dmp_core.Annotation.t -> Stats.t
(** Uncached: one DMP simulation under the given annotation. [mode]
    overrides the runner's {!sim_mode} for this call (the fidelity
    report uses it to compare the modes side by side); segment work
    runs inline on the calling domain here. *)

val dmp_batch :
  ?set:Input_gen.set -> ?config:Config.t -> ?mode:sim_mode -> t ->
  (string * Dmp_core.Annotation.t) list -> Stats.t list
(** [dmp] over every (benchmark, annotation) task, spread across a
    {!Dmp_exec.Pool} of the runner's [jobs] workers. Results match the
    order of the tasks, and each simulation is deterministic, so the
    batch returns exactly what the sequential [List.map] would — the
    figure harnesses use it for their independent per-variant sims.
    Under [Segmented] / [Sampled] each task additionally fans its
    per-segment simulations onto the same pool with a nested
    (re-entrant) [Pool.map]. The first exception raised by any task is
    re-raised after the batch settles.

    With the runner's [fused] flag set (the default), the batch is
    scheduled rather than mapped — with byte-identical results:
    {ul
    {- {e annotation dedup}: tasks whose compiled annotations share a
       behavioural fingerprint ({!Dmp_core.Annotation.Compiled}) under
       one (benchmark, set, config, mode) are simulated once; the
       statistics fan out as copies, and repeats across batches hit the
       runner-wide memo (stage ["dmp (dedup hit)"]).}
    {- {e prefix elision} (Exact mode): per benchmark, one
       annotation-free reference run under the actual configuration is
       checkpointed (stage ["ckpt (elide)"], taken only when the
       predicted savings exceed its cost); a representative whose first
       compiled diverge branch occurs at image index [fo] starts from
       the latest checkpoint at or before [fo] (["dmp (elided lane)"])
       — and one that never fires inside the (capped) image is answered
       by the reference run's own statistics (["dmp (elide skip)"]).}
    {- {e K-way fusion} (Exact mode): surviving lanes are sorted by
       start position and chunked into {!Dmp_uarch.Sim.run_image_fused}
       kernels (stage ["dmp (simulate fused)"]) sized to keep all
       [jobs] workers busy, paying the per-event image traffic once per
       kernel instead of once per lane.}} *)

val dmp_memo :
  ?set:Input_gen.set -> ?config:Config.t -> ?mode:sim_mode -> t -> string ->
  Dmp_core.Annotation.t -> Stats.t
(** {!dmp} through the same behavioural-fingerprint memo {!dmp_batch}
    uses, for callers that arrive one request at a time (the serving
    daemon): a repeat of an already-simulated
    (benchmark, set, config, mode, fingerprint) returns a copy of the
    memoized statistics without simulating. *)

val annotation_fingerprint : t -> string -> Dmp_core.Annotation.t -> string
(** The behavioural fingerprint
    ({!Dmp_core.Annotation.Compiled.fingerprint}) of [annotation]
    compiled against the named benchmark's linked program — the
    annotation component of the dedup memo key, exposed so the serving
    daemon can audit its response cache against it. *)

val prefetch :
  ?profile_sets:Input_gen.set list ->
  ?baseline_sets:Input_gen.set list -> ?jobs:int -> t -> unit
(** Warm link, profile and baseline for every benchmark, spreading the
    benchmarks over a {!Dmp_exec.Pool} of [jobs] workers (default:
    [Pool.default_jobs ()], i.e. the [DMP_JOBS] environment variable or
    the recommended domain count). [profile_sets] and [baseline_sets]
    both default to [[Input_gen.Reduced]]. The first exception raised
    by any stage is re-raised after the batch settles. *)

val speedup_pct : base:Stats.t -> Stats.t -> float
val amean : float list -> float

(** {2 Stage timing}

    Every stage records its wall-clock time under a stage label:
    ["link"], ["trace (capture)"] / ["trace (disk cache)"],
    ["profile (collect)"] / ["profile (disk cache)"],
    ["sprofile (collect)"] / ["sprofile (disk cache)"],
    ["baseline (simulate)"] / ["baseline (disk cache)"],
    ["dmp (simulate)"] and — under a segment-splitting {!sim_mode} —
    ["ckpt (capture)"] for checkpoint capture runs (shared reference
    captures in [Sampled] mode, per-task captures in [Segmented]
    mode). A warm persistent cache is visible as the
    capture/collect/simulate rows dropping to zero calls.

    The fused batch scheduler adds ["dmp (simulate fused)"] (one call
    per K-way kernel), ["ckpt (elide)"] (annotation-free reference
    captures for prefix elision) and the zero-cost accounting rows
    ["dmp (dedup hit)"], ["dmp (elided lane)"] and ["dmp (elide skip)"]
    (calls counted, no wall time attributed). ["image (decode)"] counts
    actual trace decodes — at most one per (benchmark, input set,
    instruction cap) per process, across every runner and simulation
    mode, thanks to a process-global weak memo of decoded images. *)

val timings : t -> (string * int * float) list
(** [(stage, calls, total seconds)], sorted by stage label. *)

val timings_json : t -> string
(** Render {!timings} as a JSON array of
    [{"stage": ..., "calls": ..., "seconds": ...}] rows. *)

val timing_summary : t -> string
(** Render {!timings} as an aligned table, one stage per line. *)
