(* Figure 9: effect of profiling with a different input set. The run
   always uses the reduced set; selection uses either the reduced
   profile ("same") or the train profile ("diff"). *)

open Dmp_workload

let variants =
  [
    ("heur-same", "all-best-heur", Input_gen.Reduced);
    ("heur-diff", "all-best-heur", Input_gen.Train);
    ("cost-same", "all-best-cost", Input_gen.Reduced);
    ("cost-diff", "all-best-cost", Input_gen.Train);
  ]

let run runner =
  let names = Runner.names runner in
  (* Selections resolve through the runner's cached stage keyed by
     (benchmark, profile set, algorithm); the "same" columns share the
     figure-5 selections outright, and when the train profile happens
     to pick the same diverge branches as the reduced one, the batch
     scheduler's fingerprint dedup collapses the simulations too. *)
  let per_variant =
    List.map
      (fun (label, algo, profile_set) ->
        ( label,
          List.map
            (fun name ->
              (name, Runner.selection runner name profile_set ~algo))
            names ))
      variants
  in
  let stats =
    Array.of_list
      (Runner.dmp_batch runner
         (List.concat_map (fun (_, tasks) -> tasks) per_variant))
  in
  let k = List.length names in
  let series =
    List.mapi
      (fun vi (label, tasks) ->
        {
          Report.label = label;
          values =
            List.mapi
              (fun ni (name, _) ->
                ( name,
                  Runner.speedup_pct
                    ~base:(Runner.baseline runner name)
                    stats.((vi * k) + ni) ))
              tasks;
        })
      per_variant
  in
  {
    Report.title = "Figure 9: profiling input-set sensitivity";
    unit_label = "% IPC improvement over baseline (run = reduced input)";
    benchmarks = names;
    series;
  }
