(* Figure 9: effect of profiling with a different input set. The run
   always uses the reduced set; selection uses either the reduced
   profile ("same") or the train profile ("diff"). *)

open Dmp_workload

let variants =
  [
    ("heur-same", Variants.all_best_heur, Input_gen.Reduced);
    ("heur-diff", Variants.all_best_heur, Input_gen.Train);
    ("cost-same", Variants.all_best_cost, Input_gen.Reduced);
    ("cost-diff", Variants.all_best_cost, Input_gen.Train);
  ]

let run runner =
  let names = Runner.names runner in
  let per_variant =
    List.map
      (fun (label, variant, profile_set) ->
        ( label,
          List.map
            (fun name ->
              let linked = Runner.linked runner name in
              let profile = Runner.profile runner name profile_set in
              (name, Variants.annotate variant linked profile))
            names ))
      variants
  in
  let stats =
    Array.of_list
      (Runner.dmp_batch runner
         (List.concat_map (fun (_, tasks) -> tasks) per_variant))
  in
  let k = List.length names in
  let series =
    List.mapi
      (fun vi (label, tasks) ->
        {
          Report.label = label;
          values =
            List.mapi
              (fun ni (name, _) ->
                ( name,
                  Runner.speedup_pct
                    ~base:(Runner.baseline runner name)
                    stats.((vi * k) + ni) ))
              tasks;
        })
      per_variant
  in
  {
    Report.title = "Figure 9: profiling input-set sensitivity";
    unit_label = "% IPC improvement over baseline (run = reduced input)";
    benchmarks = names;
    series;
  }
