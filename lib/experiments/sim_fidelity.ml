(* Simulation-fidelity report: the checkpoint-segmented and the
   interval-sampled simulation modes against the exact simulation, per
   benchmark, under the reference selector (all-best-heur).

   Segmented mode re-simulates the exact run's own checkpointed
   segments and merges the per-segment deltas, so its statistics must
   be byte-for-byte identical to the exact ones — the report asserts
   that, and CI greps for the resulting "segmented: byte-identical"
   line. Sampled mode restores shared annotation-independent reference
   checkpoints and extrapolates a warmup+window measurement per
   segment, so its IPC is an estimate; the report shows the per-bench
   and worst-case relative error, quantifying what the speed of
   [--sim-sampling] costs in accuracy.

   All simulations go through Runner.dmp_batch (one batch per mode), so
   the domain pool sees every independent task at once and the output
   stays byte-identical for any -j value. *)

open Dmp_uarch
open Dmp_workload

type row = {
  name : string;
  ipc_exact : float;
  ipc_seg : float;
  err_seg_pct : float;
  seg_bytes : bool;  (* segmented stats byte-identical to exact stats *)
  ipc_samp : float;
  err_samp_pct : float;
}

let default_segments = 4
let default_warmup = 2_000
let default_window = 10_000

let err_pct ~exact ipc = if exact = 0. then 0. else (ipc /. exact -. 1.) *. 100.

let run ?(segments = default_segments) ?(warmup = default_warmup)
    ?(window = default_window) runner =
  let names = Runner.names runner in
  let set = Input_gen.Reduced in
  let anns =
    List.map
      (fun name ->
        let linked = Runner.linked runner name in
        ( name,
          Variants.annotate Variants.all_best_heur linked
            (Runner.profile runner name set) ))
      names
  in
  let exact = Runner.dmp_batch ~set ~mode:Runner.Exact runner anns in
  let seg =
    Runner.dmp_batch ~set ~mode:(Runner.Segmented segments) runner anns
  in
  let samp =
    Runner.dmp_batch ~set
      ~mode:(Runner.Sampled { segments; warmup; window })
      runner anns
  in
  List.map2
    (fun name (e, (sg, sa)) ->
      let ipc_exact = Stats.ipc e in
      {
        name;
        ipc_exact;
        ipc_seg = Stats.ipc sg;
        err_seg_pct = err_pct ~exact:ipc_exact (Stats.ipc sg);
        seg_bytes = Marshal.to_string sg [] = Marshal.to_string e [];
        ipc_samp = Stats.ipc sa;
        err_samp_pct = err_pct ~exact:ipc_exact (Stats.ipc sa);
      })
    names
    (List.combine exact (List.combine seg samp))

let render rows =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "== Simulation fidelity: segmented / sampled vs exact ==\n";
  add "%-14s %9s %9s %9s %9s %9s\n" "bench" "ipc-exact" "ipc-seg" "err-seg%"
    "ipc-samp" "err-samp%";
  List.iter
    (fun r ->
      add "%-14s %9.3f %9.3f %9.2f %9.3f %9.2f\n" r.name r.ipc_exact
        r.ipc_seg r.err_seg_pct r.ipc_samp r.err_samp_pct)
    rows;
  let all_seg_exact = List.for_all (fun r -> r.seg_bytes) rows in
  let max_samp =
    List.fold_left (fun m r -> Float.max m (Float.abs r.err_samp_pct)) 0. rows
  in
  add "segmented: %s\n"
    (if all_seg_exact then "byte-identical" else "DIVERGED");
  add "sampled: max |err| %.2f%%\n" max_samp;
  Buffer.contents buf
