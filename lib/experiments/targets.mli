(** The named tables and figures of the paper's evaluation (Section 7),
    shared by [bench/main.exe] and [dmp experiment] so both agree on
    the valid target names. *)

val all : string list
(** In presentation order: tables first, then figures, then the
    ablations and the sampled-profile fidelity sweep. *)

val is_valid : string -> bool

val render : Runner.t -> string -> (string, string) result
(** [Ok output] for a valid target, [Error message] (naming the valid
    targets) otherwise. *)

val profile_sets : string list -> Dmp_workload.Input_gen.set list
(** The input sets whose profiles the given targets consume — what a
    prefetch should warm. [Train] is only needed by the
    input-sensitivity studies (fig9, fig10). *)
