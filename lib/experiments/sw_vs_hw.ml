(* Software predication vs hardware dynamic predication vs both
   combined — the comparison the paper's introduction gestures at but
   never runs in one harness. Three data points per benchmark, all on
   the same input:

     sw    the Dmp_transform pipeline (select-based if-conversion +
           DARM-style melding) applied to the binary, simulated on the
           plain baseline machine — predication with zero hardware
           support;
     hw    the original binary under the all-best-heur DMP annotation
           on the DMP machine — the paper's own configuration;
     both  the transformed binary re-profiled, re-selected
           (all-best-heur on the transformed program's own profile)
           and simulated on the DMP machine — software removes the
           cheap hammocks, hardware covers what remains.

   The hardware column goes through one Runner.dmp_batch so the fused
   scheduler sees every benchmark at once; the transformed-program
   columns fan per benchmark over a pool of the runner's width. Every
   stage is deterministic and both fan-outs preserve submission order,
   so the report is byte-identical for any -j value. *)

open Dmp_core
open Dmp_workload
module T = Dmp_transform

type row = {
  bench : string;
  shape : string;  (* dominant CFG shape among selected diverge branches *)
  tstats : T.Stats.t;  (* what the software pipeline rewrote, and why not *)
  base_ipc : float;  (* original binary, baseline machine *)
  sw_ipc : float;  (* transformed binary, baseline machine *)
  hw_ipc : float;  (* original binary + annotation, DMP machine *)
  both_ipc : float;  (* transformed binary + re-selection, DMP machine *)
}

let algo = "all-best-heur"

(* Dominant structural shape of the benchmark's selected diverge
   branches, mirroring the checker generator's classification: loop
   branches, always-predicate (short) hammocks, return CFMs, then the
   three hammock kinds. Ties resolve to the earlier class. *)
let shape_of_annotation ann =
  let simple = ref 0 and nested = ref 0 and freq = ref 0 in
  let shortc = ref 0 and retc = ref 0 and loopc = ref 0 in
  Annotation.iter
    (fun d ->
      match d.Annotation.kind with
      | Annotation.Loop_branch -> incr loopc
      | _ when d.Annotation.always_predicate -> incr shortc
      | _ when d.Annotation.return_cfm -> incr retc
      | Annotation.Simple_hammock -> incr simple
      | Annotation.Nested_hammock -> incr nested
      | Annotation.Frequently_hammock -> incr freq)
    ann;
  let counts =
    [ ("simple", !simple); ("nested", !nested); ("freq", !freq);
      ("short", !shortc); ("ret", !retc); ("loop", !loopc) ]
  in
  let best =
    List.fold_left
      (fun acc (n, c) ->
        match acc with
        | Some (_, b) when b >= c -> acc
        | _ -> if c > 0 then Some (n, c) else acc)
      None counts
  in
  match best with Some (n, _) -> n | None -> "none"

let run ?tconfig runner =
  let names = Runner.names runner in
  let set = Input_gen.Reduced in
  let anns =
    List.map (fun n -> (n, Runner.selection runner n set ~algo)) names
  in
  let hw = Runner.dmp_batch runner anns in
  let swboth =
    Dmp_exec.Pool.with_pool ?jobs:(Runner.jobs runner) (fun pool ->
        Dmp_exec.Pool.map pool
          ~f:(fun name ->
            let r = Runner.transform ?tconfig runner name set in
            let base = Runner.baseline ~set runner name in
            let sw = Runner.transformed_baseline ?tconfig ~set runner name in
            let tann =
              Variants.annotate Variants.all_best_heur
                r.T.Pipeline.linked
                (Runner.transformed_profile ?tconfig runner name set)
            in
            let both =
              Runner.transformed_dmp ?tconfig ~set runner name tann
            in
            (r, base, sw, both))
          names)
  in
  List.map2
    (fun ((name, ann), hws) (r, base, sw, both) ->
      {
        bench = name;
        shape = shape_of_annotation ann;
        tstats = r.T.Pipeline.stats;
        base_ipc = Dmp_uarch.Stats.ipc base;
        sw_ipc = Dmp_uarch.Stats.ipc sw;
        hw_ipc = Dmp_uarch.Stats.ipc hws;
        both_ipc = Dmp_uarch.Stats.ipc both;
      })
    (List.combine anns hw) swboth

let pct base ipc = if base <= 0. then 0. else (ipc /. base -. 1.) *. 100.

let render rows =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add
    "== sw-vs-hw: software predication (if-convert+meld) vs DMP vs \
     combined ==\n";
  add "%-10s %-7s %4s %4s %5s %4s %8s %8s %8s %8s %7s %7s %7s\n" "bench"
    "shape" "conv" "meld" "hoist" "sel" "base" "sw" "hw" "both" "sw%"
    "hw%" "both%";
  List.iter
    (fun r ->
      add "%-10s %-7s %4d %4d %5d %4d %8.3f %8.3f %8.3f %8.3f %7.2f %7.2f \
           %7.2f\n"
        r.bench r.shape r.tstats.T.Stats.converted r.tstats.T.Stats.melded
        r.tstats.T.Stats.hoisted r.tstats.T.Stats.selects r.base_ipc
        r.sw_ipc r.hw_ipc r.both_ipc
        (pct r.base_ipc r.sw_ipc)
        (pct r.base_ipc r.hw_ipc)
        (pct r.base_ipc r.both_ipc))
    rows;
  (* Speedup means per dominant CFG shape (first-appearance order),
     then over the whole suite. *)
  add "-- amean speedup vs base, by dominant CFG shape --\n";
  add "%-10s %4s %7s %7s %7s\n" "shape" "n" "sw%" "hw%" "both%";
  let shapes = ref [] in
  List.iter
    (fun r -> if not (List.mem r.shape !shapes) then shapes := r.shape :: !shapes)
    rows;
  let group label sel =
    let mean f = Runner.amean (List.map f sel) in
    add "%-10s %4d %7.2f %7.2f %7.2f\n" label (List.length sel)
      (mean (fun r -> pct r.base_ipc r.sw_ipc))
      (mean (fun r -> pct r.base_ipc r.hw_ipc))
      (mean (fun r -> pct r.base_ipc r.both_ipc))
  in
  List.iter
    (fun s -> group s (List.filter (fun r -> r.shape = s) rows))
    (List.rev !shapes);
  group "all" rows;
  Buffer.contents buf
