type branch_kind =
  | Simple_hammock
  | Nested_hammock
  | Frequently_hammock
  | Loop_branch

type cfm = {
  cfm_addr : int;
  exact : bool;
  merge_prob : float;
  select_uops : int;
}

type loop_info = {
  body_insts : int;
  exit_target_addr : int;
  avg_iterations : float;
  loop_select_uops : int;
}

type diverge = {
  branch_addr : int;
  kind : branch_kind;
  cfms : cfm list;
  return_cfm : bool;
  always_predicate : bool;
  loop : loop_info option;
}

type t = { table : (int, diverge) Hashtbl.t }

let branch_kind_to_string = function
  | Simple_hammock -> "simple"
  | Nested_hammock -> "nested"
  | Frequently_hammock -> "freq"
  | Loop_branch -> "loop"

let empty () = { table = Hashtbl.create 64 }

let add t d =
  if Hashtbl.mem t.table d.branch_addr then
    invalid_arg
      (Printf.sprintf "Annotation.add: branch %d already marked" d.branch_addr);
  Hashtbl.replace t.table d.branch_addr d

let replace t d = Hashtbl.replace t.table d.branch_addr d
let find t addr = Hashtbl.find_opt t.table addr
let is_diverge t addr = Hashtbl.mem t.table addr
let count t = Hashtbl.length t.table
let fold f t acc = Hashtbl.fold (fun _ d acc -> f d acc) t.table acc
let iter f t = Hashtbl.iter (fun _ d -> f d) t.table

let diverge_addrs t =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) t.table []
  |> List.sort Int.compare

let average_cfm_count t =
  let n, total =
    fold
      (fun d (n, total) ->
        match d.kind with
        | Loop_branch -> (n, total)
        | Simple_hammock | Nested_hammock | Frequently_hammock ->
            (n + 1, total + max 1 (List.length d.cfms)))
      t (0, 0)
  in
  if n = 0 then 0. else float_of_int total /. float_of_int n

(* ---------- compiled form ----------

   The simulator consults the annotation once per fetched conditional
   branch and scans the current diverge branch's CFM list once per
   fetch slot while in dpred-mode. The compiled form resolves both at
   load time: a dense per-address table (one slot per instruction of
   the program, so the lookup is an array read) and, per diverge
   branch, the hammock CFM points as parallel sorted int arrays plus
   the resolved return-CFM select count — replacing the [List.exists] /
   [List.assoc_opt] scans over boxed pairs in the per-slot loop. *)

type compiled = {
  c_diverge : diverge;
  c_cfm_addrs : int array;
  c_cfm_selects : int array;
  c_ret_selects : int;
}

let default_ret_selects = 4

let compile_diverge d =
  (* Entries with a negative address designate the return CFM and carry
     its select-µop count; the last one in declaration order wins, as
     does the last entry for a repeated CFM address. *)
  let tbl = Hashtbl.create 8 in
  let ret_selects = ref default_ret_selects in
  List.iter
    (fun c ->
      if c.cfm_addr >= 0 then Hashtbl.replace tbl c.cfm_addr c.select_uops
      else ret_selects := c.select_uops)
    d.cfms;
  let addrs =
    List.sort Int.compare (Hashtbl.fold (fun a _ acc -> a :: acc) tbl [])
  in
  {
    c_diverge = d;
    c_cfm_addrs = Array.of_list addrs;
    c_cfm_selects =
      Array.of_list (List.map (fun a -> Hashtbl.find tbl a) addrs);
    c_ret_selects = !ret_selects;
  }

let compile ~size t =
  let table = Array.make size None in
  iter
    (fun d ->
      if d.branch_addr >= 0 && d.branch_addr < size then
        table.(d.branch_addr) <- Some (compile_diverge d))
    t;
  table

(* Behavioural fingerprint of a compiled table: a digest of exactly the
   fields the simulator reads (branch slot, kind, always/return flags,
   the resolved CFM address/select arrays, the return-CFM select count,
   and the loop geometry). Selection-time metadata the hardware never
   sees — [merge_prob], [exact], [avg_iterations] — is deliberately
   excluded, so two annotations that compile to the same hardware table
   fingerprint identically even when derived from different profiles.
   The rendering is integer-only (no float formatting), hence stable
   across platforms and insertion orders. *)
module Compiled = struct
  let render_slot b i (c : compiled) =
    let d = c.c_diverge in
    Buffer.add_string b
      (Printf.sprintf "%d:%s%s%s" i
         (branch_kind_to_string d.kind)
         (if d.always_predicate then ":a" else "")
         (if d.return_cfm then ":r" else ""));
    Array.iteri
      (fun j addr ->
        Buffer.add_string b
          (Printf.sprintf ";%d=%d" addr c.c_cfm_selects.(j)))
      c.c_cfm_addrs;
    Buffer.add_string b (Printf.sprintf "|%d" c.c_ret_selects);
    (match d.loop with
    | Some l ->
        Buffer.add_string b
          (Printf.sprintf "|L%d,%d,%d" l.body_insts l.exit_target_addr
             l.loop_select_uops)
    | None -> ());
    Buffer.add_char b '\n'

  let fingerprint table =
    let b = Buffer.create 256 in
    Buffer.add_string b (string_of_int (Array.length table));
    Buffer.add_char b '\n';
    Array.iteri
      (fun i slot ->
        match slot with Some c -> render_slot b i c | None -> ())
      table;
    Digest.to_hex (Digest.string (Buffer.contents b))

  let equal a b = String.equal (fingerprint a) (fingerprint b)

  let diverge_indices table =
    let acc = ref [] in
    for i = Array.length table - 1 downto 0 do
      if table.(i) <> None then acc := i :: !acc
    done;
    !acc
end

let cfm_index c addr =
  (* CFM lists are tiny (<= Params.max_cfm); a linear scan of the
     sorted array beats binary search at this size. *)
  let n = Array.length c.c_cfm_addrs in
  let rec go i =
    if i >= n then -1
    else
      let a = Array.unsafe_get c.c_cfm_addrs i in
      if a = addr then i else if a > addr then -1 else go (i + 1)
  in
  go 0

let is_cfm c addr = cfm_index c addr >= 0

let cfm_selects c addr =
  let i = cfm_index c addr in
  if i >= 0 then c.c_cfm_selects.(i) else 0

let pp_diverge ppf d =
  Fmt.pf ppf "@[<h>br@%d %s%s%s cfms=[%a]%a@]" d.branch_addr
    (branch_kind_to_string d.kind)
    (if d.always_predicate then " always" else "")
    (if d.return_cfm then " ret-cfm" else "")
    (Fmt.list ~sep:Fmt.comma (fun ppf c ->
         Fmt.pf ppf "%d(p=%.2f,sel=%d%s)" c.cfm_addr c.merge_prob
           c.select_uops
           (if c.exact then ",exact" else "")))
    d.cfms
    (Fmt.option (fun ppf l ->
         Fmt.pf ppf " loop(body=%d,exit=%d,iter=%.1f)" l.body_insts
           l.exit_target_addr l.avg_iterations))
    d.loop

(* ---------- serialisation ----------
   One line per diverge branch, mirroring the "list of diverge branches
   and CFM points attached to the binary" of Section 6.1:
     <addr> <kind> [always] [ret] cfm=<addr>:<exact01>:<prob>:<selects> ...
       [loop=<body>:<exit>:<iter>:<selects>] *)

let diverge_to_line d =
  let b = Buffer.create 64 in
  Buffer.add_string b
    (Printf.sprintf "%d %s" d.branch_addr (branch_kind_to_string d.kind));
  if d.always_predicate then Buffer.add_string b " always";
  if d.return_cfm then Buffer.add_string b " ret";
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf " cfm=%d:%d:%.6f:%d" c.cfm_addr
           (if c.exact then 1 else 0)
           c.merge_prob c.select_uops))
    d.cfms;
  (match d.loop with
  | Some l ->
      Buffer.add_string b
        (Printf.sprintf " loop=%d:%d:%.6f:%d" l.body_insts
           l.exit_target_addr l.avg_iterations l.loop_select_uops)
  | None -> ());
  Buffer.contents b

let to_string t =
  String.concat "\n"
    (List.filter_map
       (fun addr -> Option.map diverge_to_line (find t addr))
       (diverge_addrs t))
  ^ "\n"

let branch_kind_of_string = function
  | "simple" -> Some Simple_hammock
  | "nested" -> Some Nested_hammock
  | "freq" -> Some Frequently_hammock
  | "loop" -> Some Loop_branch
  | _ -> None

let line_of_string line =
  match String.split_on_char ' ' (String.trim line) with
  | [] | [ "" ] -> Ok None
  | [ _ ] -> Error (Printf.sprintf "bad line: %s" line)
  | addr :: kind :: rest -> (
      match (int_of_string_opt addr, branch_kind_of_string kind) with
      | Some branch_addr, Some kind ->
          let d =
            ref
              { branch_addr; kind; cfms = []; return_cfm = false;
                always_predicate = false; loop = None }
          in
          let bad = ref None in
          List.iter
            (fun tok ->
              if tok = "always" then
                d := { !d with always_predicate = true }
              else if tok = "ret" then d := { !d with return_cfm = true }
              else
                match String.index_opt tok '=' with
                | Some i -> (
                    let key = String.sub tok 0 i in
                    let v = String.sub tok (i + 1)
                        (String.length tok - i - 1)
                    in
                    match (key, String.split_on_char ':' v) with
                    | "cfm", [ a; e; p; s ] -> (
                        match
                          ( int_of_string_opt a, int_of_string_opt e,
                            float_of_string_opt p, int_of_string_opt s )
                        with
                        | Some cfm_addr, Some e, Some merge_prob,
                          Some select_uops ->
                            d :=
                              { !d with
                                cfms =
                                  !d.cfms
                                  @ [ { cfm_addr; exact = e = 1;
                                        merge_prob; select_uops } ];
                              }
                        | _ -> bad := Some tok)
                    | "loop", [ bi; ex; it; s ] -> (
                        match
                          ( int_of_string_opt bi, int_of_string_opt ex,
                            float_of_string_opt it, int_of_string_opt s )
                        with
                        | Some body_insts, Some exit_target_addr,
                          Some avg_iterations, Some loop_select_uops ->
                            d :=
                              { !d with
                                loop =
                                  Some
                                    { body_insts; exit_target_addr;
                                      avg_iterations; loop_select_uops };
                              }
                        | _ -> bad := Some tok)
                    | _ -> bad := Some tok)
                | None -> bad := Some tok)
            rest;
          (match !bad with
          | Some tok -> Error (Printf.sprintf "bad token %s" tok)
          | None -> Ok (Some !d))
      | _ -> Error (Printf.sprintf "bad line: %s" line))

let of_string text =
  let t = empty () in
  let err = ref None in
  List.iteri
    (fun i line ->
      if !err = None then
        match line_of_string line with
        | Ok (Some d) -> replace t d
        | Ok None -> ()
        | Error m -> err := Some (Printf.sprintf "line %d: %s" (i + 1) m))
    (String.split_on_char '\n' text);
  match !err with Some m -> Error m | None -> Ok t

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun addr ->
      match find t addr with
      | Some d -> Fmt.pf ppf "%a@," pp_diverge d
      | None -> ())
    (diverge_addrs t);
  Fmt.pf ppf "@]"
