(* Analytical profile-driven cost-benefit model (Sections 4 and 5.1).

   All overheads are in fetch cycles. A branch is selected as a diverge
   branch when the expected cost of dynamic predication (Equation 1) is
   negative, i.e. the expected saved misprediction penalty outweighs the
   expected wasted fetch bandwidth:

     dpred_cost = dpred_overhead * P(enter dpred | correct)
                + (dpred_overhead - misp_penalty) * P(enter dpred | misp)

   with P(enter dpred | misp) = Acc_Conf, the confidence-estimator
   accuracy (PVN). *)

type path_method = Most_frequent | Longest | Edge_weighted

let path_method_to_string = function
  | Most_frequent -> "freq-path"
  | Longest -> "cost-long"
  | Edge_weighted -> "cost-edge"

let side_insts method_ (c : Candidate.cfm_candidate) =
  match method_ with
  | Most_frequent ->
      (float_of_int c.Candidate.freq_t, float_of_int c.Candidate.freq_nt)
  | Longest ->
      (float_of_int c.Candidate.longest_t, float_of_int c.Candidate.longest_nt)
  | Edge_weighted -> (c.Candidate.avg_t, c.Candidate.avg_nt)

(* Equations 5-13: instructions fetched in dpred-mode and the useless
   fraction. [taken_prob] is the profiled P(taken) of the diverge
   branch: the taken side is useful with that probability. *)
let useless_insts method_ cfm ~taken_prob =
  let n_t, n_nt = side_insts method_ cfm in
  let dpred = n_t +. n_nt in
  let useful = (taken_prob *. n_t) +. ((1. -. taken_prob) *. n_nt) in
  Float.max 0. (dpred -. useful)

(* Equations 14, 16 and 17: fetch-cycle overhead of one entry into
   dpred-mode for a branch with one or more CFM points. When the paths
   do not merge, half of the fetch bandwidth is wasted until the branch
   resolves.

   One dpred episode merges at most once, so each CFM point's
   probability is capped by whatever the earlier (closer) CFM points
   left over: profiled per-CFM probabilities can overlap and sum above
   1, and an uncapped sum would charge the useless-instruction term for
   more than one merge per entry. The cap also makes the total merge
   probability at most 1 by construction. *)
let dpred_overhead params method_ cfms ~taken_prob =
  let fw = float_of_int params.Params.fetch_width in
  let resol = float_of_int params.Params.misp_penalty in
  let merged, p_merge_total =
    List.fold_left
      (fun (acc, ptot) cfm ->
        let p =
          Float.max 0. (Float.min cfm.Candidate.merge_prob (1. -. ptot))
        in
        (acc +. (p *. useless_insts method_ cfm ~taken_prob), ptot +. p))
      (0., 0.) cfms
  in
  (merged /. fw) +. ((1. -. p_merge_total) *. (resol /. 2.))

(* Equation 1. *)
let dpred_cost params ~overhead =
  let acc = params.Params.acc_conf in
  let penalty = float_of_int params.Params.misp_penalty in
  (overhead *. (1. -. acc)) +. ((overhead -. penalty) *. acc)

(* Equation 15 generalised over Equations 16-17: positive benefit. *)
let select_hammock params method_ (c : Candidate.t) ~taken_prob =
  match c.Candidate.cfms with
  | [] -> false
  | cfms ->
      let overhead = dpred_overhead params method_ cfms ~taken_prob in
      dpred_cost params ~overhead < 0.

(* Equation 18: select-µop overhead of a predicated loop. *)
let loop_select_overhead params ~n_select ~dpred_iter =
  float_of_int n_select *. dpred_iter /. float_of_int params.Params.fetch_width

(* Equation 19: late-exit overhead adds the NOP-ed extra iterations. *)
let loop_late_exit_overhead params ~n_body ~n_select ~dpred_iter ~extra_iter =
  (float_of_int n_body *. extra_iter /. float_of_int params.Params.fetch_width)
  +. loop_select_overhead params ~n_select ~dpred_iter

(* Equation 20 (reconstructed): expected cost over the four dynamic
   predication cases of a loop branch (Section 5.1).

   - correct: the exit was predicted correctly; the episode only pays
     the select-µops of the predicated iterations.
   - early-exit: the loop exits while still in dpred-mode; the fetched
     iterations were all real iterations, so again only select-µops.
   - late-exit: the loop runs past the predicted exit; the extra
     iterations are fetched as NOPs (plus their select-µops) but the
     misprediction flush is avoided.
   - no-exit: the branch resolves after more than the supported extra
     iterations, so the machine flushes anyway: it pays for the same
     uselessly fetched extra-iteration bodies as late-exit *and* still
     takes the flush (no penalty saved). *)
let loop_cost params ~n_body ~n_select ~dpred_iter ~extra_iter ~p_correct
    ~p_early ~p_late ~p_noexit =
  let ovh_sel = loop_select_overhead params ~n_select ~dpred_iter in
  let ovh_late =
    loop_late_exit_overhead params ~n_body ~n_select ~dpred_iter ~extra_iter
  in
  let penalty = float_of_int params.Params.misp_penalty in
  (p_correct *. ovh_sel) +. (p_early *. ovh_sel)
  +. (p_late *. (ovh_late -. penalty))
  +. (p_noexit *. ovh_late)
