(* Static if-conversion: the classic software predication baseline the
   paper's introduction argues against. Simple hammocks whose arms are
   pure straight-line computation are rewritten into branchless code:
   both arms execute into fresh temporaries and arithmetic selects
   (p*x + (1-p)*y) reconcile the results — the software analogue of
   predicated execution on an ISA without predication support.

   Like the if-conversion literature the paper cites (Chang et al. [3],
   Pnevmatikatos & Sohi [20], Tyson [23]), conversion is profile-driven:
   only branches above a misprediction-rate threshold and below a size
   limit are converted. The contrast with DMP (run `bench/main.exe
   ablations` or `examples/static_vs_dynamic.exe`): a statically
   converted branch pays the both-arms cost on *every* execution, even
   in phases where it is perfectly predictable, and conversion cannot
   touch arms with memory writes or calls. *)

open Dmp_ir
open Dmp_profile

type stats = { converted : int; rejected_shape : int; rejected_profile : int }

let temp_pool = Array.init 20 (fun i -> Reg.of_int (44 + i))

(* An arm is convertible when it is pure straight-line computation. *)
let pure_instr = function
  | Instr.Alu _ | Instr.Li _ | Instr.Mov _ | Instr.Select _ | Instr.Nop ->
      true
  | Instr.Load _ | Instr.Store _ | Instr.Call _ | Instr.Read _
  | Instr.Write _ -> false

let arm_ok (b : Block.t) ~join =
  Array.for_all pure_instr b.Block.body
  &&
  match b.Block.term with Term.Jump j -> j = join | _ -> false

(* Copy an arm's body, renaming every written register to a fresh
   temporary (local forward renaming); returns the emitted instructions
   and the final reg -> temp map. *)
let rename_arm body ~fresh =
  let map = Hashtbl.create 8 in
  let subst r = match Hashtbl.find_opt map r with Some t -> t | None -> r in
  let subst_operand = function
    | Instr.Reg r -> Instr.Reg (subst r)
    | Instr.Imm _ as o -> o
  in
  let out = ref [] in
  Array.iter
    (fun ins ->
      match ins with
      | Instr.Alu { op; dst; src1; src2 } ->
          let src1 = subst src1 and src2 = subst_operand src2 in
          let t = fresh dst in
          Hashtbl.replace map dst t;
          out := Instr.Alu { op; dst = t; src1; src2 } :: !out
      | Instr.Li { dst; imm } ->
          let t = fresh dst in
          Hashtbl.replace map dst t;
          out := Instr.Li { dst = t; imm } :: !out
      | Instr.Mov { dst; src } ->
          let src = subst src in
          let t = fresh dst in
          Hashtbl.replace map dst t;
          out := Instr.Mov { dst = t; src } :: !out
      | Instr.Select { dst; cond; if_true; if_false } ->
          let cond = subst cond and if_true = subst if_true in
          let if_false = subst_operand if_false in
          let t = fresh dst in
          Hashtbl.replace map dst t;
          out := Instr.Select { dst = t; cond; if_true; if_false } :: !out
      | Instr.Nop -> ()
      | Instr.Load _ | Instr.Store _ | Instr.Call _ | Instr.Read _
      | Instr.Write _ -> assert false)
    body;
  (List.rev !out, map)

(* Materialise the branch predicate as 0/1 into [p]. *)
let predicate_insts ~p ~cond ~src1 ~src2 =
  let set op = [ Instr.Alu { op; dst = p; src1; src2 } ] in
  match cond with
  | Term.Eq -> set Instr.Seq
  | Term.Ne -> set Instr.Sne
  | Term.Lt -> set Instr.Slt
  | Term.Le -> set Instr.Sle
  | Term.Ge ->
      (* p = 1 - (src1 < src2) *)
      Instr.Alu { op = Instr.Slt; dst = p; src1; src2 }
      :: [ Instr.Alu { op = Instr.Xor; dst = p; src1 = p; src2 = Instr.Imm 1 } ]
  | Term.Gt ->
      Instr.Alu { op = Instr.Sle; dst = p; src1; src2 }
      :: [ Instr.Alu { op = Instr.Xor; dst = p; src1 = p; src2 = Instr.Imm 1 } ]

(* w = else_val + p * (then_val - else_val), using [scratch]. *)
let select_insts ~p ~scratch ~dst ~then_reg ~else_reg =
  [
    Instr.Alu { op = Instr.Sub; dst = scratch; src1 = then_reg;
                src2 = Instr.Reg else_reg };
    Instr.Alu { op = Instr.Mul; dst = scratch; src1 = scratch;
                src2 = Instr.Reg p };
    Instr.Alu { op = Instr.Add; dst; src1 = else_reg;
                src2 = Instr.Reg scratch };
  ]

(* Attempt to convert the hammock rooted at [block] in function [f].
   Returns the rewritten branch block on success. *)
let convert_block (f : Func.t) ~block =
  let b = f.Func.blocks.(block) in
  match b.Block.term with
  | Term.Branch { cond; src1; src2; target; fall }
    when target <> fall && target <> block && fall <> block -> (
      let tb = f.Func.blocks.(target) and fb = f.Func.blocks.(fall) in
      match (tb.Block.term, fb.Block.term) with
      | Term.Jump jt, Term.Jump jf
        when jt = jf && jt <> target && jt <> fall
             && arm_ok tb ~join:jt && arm_ok fb ~join:jf ->
          let next = ref 0 in
          let fresh_temp () =
            if !next >= Array.length temp_pool then raise Exit
            else begin
              let t = temp_pool.(!next) in
              incr next;
              t
            end
          in
          (try
             let p = fresh_temp () in
             let scratch = fresh_temp () in
             let then_map_fresh = Hashtbl.create 8 in
             let fresh_then r =
               let t = fresh_temp () in
               Hashtbl.replace then_map_fresh r t;
               t
             in
             let then_insts, then_map = rename_arm tb.Block.body ~fresh:fresh_then in
             ignore then_map;
             let else_map_fresh = Hashtbl.create 8 in
             let fresh_else r =
               let t = fresh_temp () in
               Hashtbl.replace else_map_fresh r t;
               t
             in
             let else_insts, _ = rename_arm fb.Block.body ~fresh:fresh_else in
             let written =
               List.sort_uniq compare
                 (Hashtbl.fold (fun r _ acc -> r :: acc) then_map_fresh []
                 @ Hashtbl.fold (fun r _ acc -> r :: acc) else_map_fresh [])
             in
             let selects =
               List.concat_map
                 (fun w ->
                   let then_reg =
                     match Hashtbl.find_opt then_map_fresh w with
                     | Some t -> t
                     | None -> w
                   in
                   let else_reg =
                     match Hashtbl.find_opt else_map_fresh w with
                     | Some t -> t
                     | None -> w
                   in
                   select_insts ~p ~scratch ~dst:w ~then_reg ~else_reg)
                 written
             in
             let body =
               Array.concat
                 [
                   b.Block.body;
                   Array.of_list (predicate_insts ~p ~cond ~src1 ~src2);
                   Array.of_list then_insts;
                   Array.of_list else_insts;
                   Array.of_list selects;
                 ]
             in
             Some { b with Block.body; term = Term.Jump jt }
           with Exit -> None)
      | _, _ -> None)
  | _ -> None

(* Convert every sufficiently mispredicted, sufficiently small simple
   hammock in the program. *)
let run ?(min_misp = 0.05) ?(max_arm = 16) linked profile =
  let program = linked.Linked.program in
  let rejected_shape = ref 0 and rejected_profile = ref 0 in
  let converted = ref 0 in
  let funcs =
    Array.to_list
      (Array.mapi
         (fun fi (f : Func.t) ->
           let blocks = Array.copy f.Func.blocks in
           Array.iteri
             (fun bi (b : Block.t) ->
               match b.Block.term with
               | Term.Branch { target; fall; _ } ->
                   let small j =
                     Array.length f.Func.blocks.(j).Block.body <= max_arm
                   in
                   if not (small target && small fall) then
                     incr rejected_shape
                   else begin
                     let addr = Context.branch_addr' linked ~func:fi ~block:bi in
                     if Profile.misp_rate profile ~addr < min_misp then
                       incr rejected_profile
                     else
                       match convert_block f ~block:bi with
                       | Some b' ->
                           blocks.(bi) <- b';
                           incr converted
                       | None -> incr rejected_shape
                   end
               | Term.Jump _ | Term.Ret | Term.Halt -> ())
             f.Func.blocks;
           { f with Func.blocks })
         program.Program.funcs)
  in
  let main = (Program.main_func program).Func.name in
  ( Program.of_funcs_exn ~main funcs,
    { converted = !converted; rejected_shape = !rejected_shape;
      rejected_profile = !rejected_profile } )
