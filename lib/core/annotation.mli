(** DMP binary annotations: the list of diverge branches and their CFM
    points the compiler attaches to the binary and the ISA conveys to
    the hardware (Section 2.2). *)

type branch_kind =
  | Simple_hammock
  | Nested_hammock
  | Frequently_hammock
  | Loop_branch

type cfm = {
  cfm_addr : int;  (** address of the first instruction of the CFM block *)
  exact : bool;  (** exact (IPOSDOM) vs approximate (Section 3.1) *)
  merge_prob : float;
  select_uops : int;
      (** select-µops to insert when the paths merge at this point *)
}

type loop_info = {
  body_insts : int;
  exit_target_addr : int;
  avg_iterations : float;
  loop_select_uops : int;
}

type diverge = {
  branch_addr : int;
  kind : branch_kind;
  cfms : cfm list;  (** at most [Params.max_cfm]; may be empty for
      return-CFM or CFM-less (dual-path) diverge branches *)
  return_cfm : bool;
      (** dpred-mode ends when both paths execute a return (Section 3.5) *)
  always_predicate : bool;
      (** short hammock: predicate regardless of confidence (Section 3.4) *)
  loop : loop_info option;
}

type t

val branch_kind_to_string : branch_kind -> string
val empty : unit -> t

val add : t -> diverge -> unit
(** @raise Invalid_argument if the branch is already marked. *)

val replace : t -> diverge -> unit
val find : t -> int -> diverge option
val is_diverge : t -> int -> bool
val count : t -> int
val fold : (diverge -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (diverge -> unit) -> t -> unit
val diverge_addrs : t -> int list

val average_cfm_count : t -> float
(** Average number of CFM points per non-loop diverge branch (Table 2's
    "Avg. # CFM"). *)

(** {2 Compiled form}

    The cycle simulator consults the annotation once per fetched
    conditional branch and tests "is this address a CFM of the current
    diverge branch" once per fetch slot in dpred-mode. {!compile}
    resolves both queries at annotation-load time into flat structures
    so neither appears as a hash lookup or a list scan on the per-slot
    path. *)

type compiled = {
  c_diverge : diverge;  (** the source diverge branch *)
  c_cfm_addrs : int array;
      (** hammock CFM addresses, sorted ascending, duplicates resolved
          to the last declaration *)
  c_cfm_selects : int array;  (** select-µop counts, parallel to
      [c_cfm_addrs] *)
  c_ret_selects : int;
      (** select-µop count of the return CFM (the negative-address
          [cfm] entry), or a default of 4 when none is declared *)
}

val compile : size:int -> t -> compiled option array
(** Dense per-address table with one slot per instruction address in
    [0, size): slot [a] holds the compiled diverge branch at [a], if
    any. Diverge branches outside the range are dropped (they can never
    be fetched). The result is immutable by convention and safe to
    share across domains. *)

module Compiled : sig
  val fingerprint : compiled option array -> string
  (** Hex digest of a canonical, integer-only rendering of exactly the
      fields the simulator reads from the table (slot index, branch
      kind, always/return flags, the resolved CFM address/select
      arrays, the return-CFM select count, loop geometry). Two
      annotations that compile to behaviourally identical tables — even
      when built in different orders or carrying different selection
      metadata ([merge_prob], [exact], [avg_iterations]) — fingerprint
      identically, so the fingerprint is a sound key for deduplicating
      simulations of the same (benchmark, configuration). *)

  val equal : compiled option array -> compiled option array -> bool
  (** Behavioural equality: {!fingerprint} agreement. *)

  val diverge_indices : compiled option array -> int list
  (** Slot indices holding a compiled diverge branch, ascending — the
      addresses at which the table can influence a simulation. *)
end

val is_cfm : compiled -> int -> bool
(** Membership in [c_cfm_addrs] (linear scan of the sorted array; CFM
    lists have at most [Params.max_cfm] entries). *)

val cfm_selects : compiled -> int -> int
(** Select-µop count for the given CFM address, 0 when the address is
    not a CFM of this branch. *)

val to_string : t -> string
(** One line per diverge branch; the format {!of_string} parses — the
    "list attached to the binary" of Section 6.1. *)

val of_string : string -> (t, string) result

val pp_diverge : diverge Fmt.t
val pp : t Fmt.t
