(** Non-control instructions of the IR.

    The instruction set is a small load/store RISC machine in the spirit
    of the Alpha ISA the paper targets. Control transfer lives in
    {!Term}; a basic block is a sequence of these instructions followed
    by one terminator. *)

type alu_op =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Slt  (** set if less-than *)
  | Sle  (** set if less-or-equal *)
  | Seq  (** set if equal *)
  | Sne  (** set if not-equal *)
  | Min
  | Max

type operand = Reg of Reg.t | Imm of int

type t =
  | Alu of { op : alu_op; dst : Reg.t; src1 : Reg.t; src2 : operand }
  | Load of { dst : Reg.t; base : Reg.t; offset : int }
  | Store of { src : Reg.t; base : Reg.t; offset : int }
  | Li of { dst : Reg.t; imm : int }
  | Mov of { dst : Reg.t; src : Reg.t }
  | Call of { callee : string }
      (** direct call; the return address is managed by the machine *)
  | Read of { dst : Reg.t }
      (** read the next value of the program's input stream (models
          input data; 0 once the stream is exhausted) *)
  | Write of { src : Reg.t }  (** append a value to the output stream *)
  | Select of { dst : Reg.t; cond : Reg.t; if_true : Reg.t;
                if_false : operand }
      (** conditional move: [dst <- if cond <> 0 then if_true else
          if_false]. The predicated-execution primitive emitted by the
          software if-conversion and melding passes ({!Dmp_transform});
          a plain single-cycle ALU-class operation for the
          micro-architecture. *)
  | Nop

val alu_op_to_string : alu_op -> string
val alu_op_of_string : string -> alu_op option

val eval_alu : alu_op -> int -> int -> int
(** Arithmetic semantics. Division and remainder by zero yield 0 (the
    emulator never traps). *)

val defs : t -> Reg.t list
(** Registers written. Writes to {!Reg.zero} are discarded and not
    reported. *)

val uses : t -> Reg.t list
(** Registers read. *)

val is_memory : t -> bool
val is_call : t -> bool
val pp_operand : operand Fmt.t
val pp : t Fmt.t
