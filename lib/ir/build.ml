type label = string

type pterm =
  | P_branch of Term.cond * Reg.t * Instr.operand * label * label option
  | P_jump of label
  | P_ret
  | P_halt
  | P_fall

type pblock = {
  plabel : label;
  mutable body_rev : Instr.t list;
  mutable pterm : pterm option;
}

type fn = {
  name : string;
  mutable blocks_rev : pblock list;
  mutable current : pblock;
}

let reg r = Instr.Reg r
let imm i = Instr.Imm i

let func ?(entry = "entry") name =
  let b = { plabel = entry; body_rev = []; pterm = None } in
  { name; blocks_rev = [ b ]; current = b }

(* Rename the (still empty) entry block; used by the assembly parser,
   which learns the entry label only when it reaches the first label
   line. *)
let rename_entry fn l =
  match fn.blocks_rev with
  | [ b ] when b.body_rev = [] && b.pterm = None ->
      let b' = { b with plabel = l } in
      fn.blocks_rev <- [ b' ];
      fn.current <- b'
  | _ -> invalid_arg "Build.rename_entry: entry already populated"

let label fn l =
  (match fn.current.pterm with
  | None -> fn.current.pterm <- Some P_fall
  | Some _ -> ());
  let b = { plabel = l; body_rev = []; pterm = None } in
  fn.blocks_rev <- b :: fn.blocks_rev;
  fn.current <- b

let emit fn i =
  if fn.current.pterm <> None then
    invalid_arg
      (Printf.sprintf "Build: emitting into terminated block %s in %s"
         fn.current.plabel fn.name);
  fn.current.body_rev <- i :: fn.current.body_rev

let alu fn op dst src1 src2 = emit fn (Instr.Alu { op; dst; src1; src2 })
let add fn dst src1 src2 = alu fn Instr.Add dst src1 src2
let sub fn dst src1 src2 = alu fn Instr.Sub dst src1 src2
let mul fn dst src1 src2 = alu fn Instr.Mul dst src1 src2
let div fn dst src1 src2 = alu fn Instr.Div dst src1 src2
let rem fn dst src1 src2 = alu fn Instr.Rem dst src1 src2
let and_ fn dst src1 src2 = alu fn Instr.And dst src1 src2
let or_ fn dst src1 src2 = alu fn Instr.Or dst src1 src2
let xor fn dst src1 src2 = alu fn Instr.Xor dst src1 src2
let shl fn dst src1 src2 = alu fn Instr.Shl dst src1 src2
let shr fn dst src1 src2 = alu fn Instr.Shr dst src1 src2
let li fn dst v = emit fn (Instr.Li { dst; imm = v })
let mov fn dst src = emit fn (Instr.Mov { dst; src })
let load fn dst base offset = emit fn (Instr.Load { dst; base; offset })
let store fn src base offset = emit fn (Instr.Store { src; base; offset })
let call fn callee = emit fn (Instr.Call { callee })
let read fn dst = emit fn (Instr.Read { dst })
let write fn src = emit fn (Instr.Write { src })

let select fn dst cond if_true if_false =
  emit fn (Instr.Select { dst; cond; if_true; if_false })

let nop fn = emit fn Instr.Nop

let nops fn n =
  for _ = 1 to n do
    nop fn
  done

let set_term fn t =
  if fn.current.pterm <> None then
    invalid_arg
      (Printf.sprintf "Build: block %s in %s already terminated"
         fn.current.plabel fn.name);
  fn.current.pterm <- Some t

let branch fn cond src1 src2 ~target ?fall () =
  set_term fn (P_branch (cond, src1, src2, target, fall))

let jump fn l = set_term fn (P_jump l)
let ret fn = set_term fn P_ret
let halt fn = set_term fn P_halt

let finish fn =
  (match fn.current.pterm with
  | None ->
      invalid_arg
        (Printf.sprintf "Build.finish: last block %s of %s falls through"
           fn.current.plabel fn.name)
  | Some _ -> ());
  let pblocks = Array.of_list (List.rev fn.blocks_rev) in
  let n = Array.length pblocks in
  let index = Hashtbl.create n in
  Array.iteri
    (fun i b ->
      if Hashtbl.mem index b.plabel then
        invalid_arg
          (Printf.sprintf "Build.finish: duplicate label %s in %s" b.plabel
             fn.name);
      Hashtbl.replace index b.plabel i)
    pblocks;
  let resolve here l =
    match Hashtbl.find_opt index l with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf "Build.finish: unknown label %s in block %s of %s" l
             here fn.name)
  in
  let next_of i here =
    if i + 1 >= n then
      invalid_arg
        (Printf.sprintf "Build.finish: block %s of %s falls off the end" here
           fn.name)
    else i + 1
  in
  let blocks =
    Array.mapi
      (fun i b ->
        let term =
          match b.pterm with
          | Some (P_branch (cond, src1, src2, target, fall)) ->
              let fall =
                match fall with
                | Some l -> resolve b.plabel l
                | None -> next_of i b.plabel
              in
              Term.Branch
                { cond; src1; src2; target = resolve b.plabel target; fall }
          | Some (P_jump l) -> Term.Jump (resolve b.plabel l)
          | Some P_ret -> Term.Ret
          | Some P_halt -> Term.Halt
          | Some P_fall | None -> Term.Jump (next_of i b.plabel)
        in
        { Block.label = b.plabel; body = Array.of_list (List.rev b.body_rev);
          term })
      pblocks
  in
  { Func.name = fn.name; blocks }
