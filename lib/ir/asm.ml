(* Textual assembly syntax for IR programs: a printer whose output the
   parser accepts, so programs can be written, stored and diffed as
   text.

     func main {
     entry:
       li r4, 100
       add r5, r4, 3
       sub r5, r5, r4
       ld r6, 8(r5)
       st r6, 0(r5)
       call helper
       read r7
       write r7
       bne r4, 0, then_lbl, else_lbl
     then_lbl:
       jmp join
     ...
     }

   A conditional branch lists the taken target and then the fall-through
   target. *)

(* ---------- printing ---------- *)

let pp_operand buf = function
  | Instr.Reg r -> Buffer.add_string buf (Fmt.str "%a" Reg.pp r)
  | Instr.Imm i -> Buffer.add_string buf (string_of_int i)

let print_instr buf ins =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let r fmt_r = Fmt.str "%a" Reg.pp fmt_r in
  match ins with
  | Instr.Alu { op; dst; src1; src2 } ->
      add "  %s %s, %s, " (Instr.alu_op_to_string op) (r dst) (r src1);
      pp_operand buf src2;
      add "\n"
  | Instr.Load { dst; base; offset } ->
      add "  ld %s, %d(%s)\n" (r dst) offset (r base)
  | Instr.Store { src; base; offset } ->
      add "  st %s, %d(%s)\n" (r src) offset (r base)
  | Instr.Li { dst; imm } -> add "  li %s, %d\n" (r dst) imm
  | Instr.Mov { dst; src } -> add "  mov %s, %s\n" (r dst) (r src)
  | Instr.Call { callee } -> add "  call %s\n" callee
  | Instr.Read { dst } -> add "  read %s\n" (r dst)
  | Instr.Write { src } -> add "  write %s\n" (r src)
  | Instr.Select { dst; cond; if_true; if_false } ->
      add "  sel %s, %s, %s, " (r dst) (r cond) (r if_true);
      pp_operand buf if_false;
      add "\n"
  | Instr.Nop -> add "  nop\n"

let print_func buf (f : Func.t) =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "func %s {\n" f.Func.name;
  Array.iter
    (fun b ->
      add "%s:\n" b.Block.label;
      Array.iter (print_instr buf) b.Block.body;
      let label j = (Func.block f j).Block.label in
      match b.Block.term with
      | Term.Branch { cond; src1; src2; target; fall } ->
          add "  %s %s, " (Term.cond_to_string cond) (Fmt.str "%a" Reg.pp src1);
          pp_operand buf src2;
          add ", %s, %s\n" (label target) (label fall)
      | Term.Jump l -> add "  jmp %s\n" (label l)
      | Term.Ret -> add "  ret\n"
      | Term.Halt -> add "  halt\n")
    f.Func.blocks;
  add "}\n"

let to_string (p : Program.t) =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf '\n';
      print_func buf f)
    p.Program.funcs;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char ',')
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_reg line w =
  if String.length w >= 2 && w.[0] = 'r' then
    match int_of_string_opt (String.sub w 1 (String.length w - 1)) with
    | Some i when i >= 0 && i < Reg.count -> Reg.of_int i
    | _ -> fail line "bad register %s" w
  else fail line "expected register, got %s" w

let parse_operand line w =
  if String.length w >= 2 && w.[0] = 'r' && w.[1] >= '0' && w.[1] <= '9' then
    Instr.Reg (parse_reg line w)
  else
    match int_of_string_opt w with
    | Some i -> Instr.Imm i
    | None -> fail line "expected operand, got %s" w

(* "8(r5)" -> (8, r5) *)
let parse_mem line w =
  match String.index_opt w '(' with
  | Some i when String.length w > i + 1 && w.[String.length w - 1] = ')' ->
      let off = String.sub w 0 i in
      let base = String.sub w (i + 1) (String.length w - i - 2) in
      (match int_of_string_opt off with
      | Some offset -> (offset, parse_reg line base)
      | None -> fail line "bad memory offset in %s" w)
  | _ -> fail line "expected offset(reg), got %s" w

let cond_of_mnemonic = function
  | "beq" -> Some Term.Eq
  | "bne" -> Some Term.Ne
  | "blt" -> Some Term.Lt
  | "bge" -> Some Term.Ge
  | "ble" -> Some Term.Le
  | "bgt" -> Some Term.Gt
  | _ -> None

let of_string text =
  let lines = String.split_on_char '\n' text in
  let funcs = ref [] in
  let current : Build.fn option ref = ref None in
  let started_blocks = ref false in
  let main = ref None in
  let finish_current () =
    match !current with
    | Some fn ->
        funcs := Build.finish fn :: !funcs;
        current := None
    | None -> ()
  in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      let line =
        match String.index_opt line ';' with
        | Some i -> String.trim (String.sub line 0 i)
        | None -> line
      in
      if line = "" then ()
      else if String.length line > 5 && String.sub line 0 5 = "func " then begin
        if !current <> None then fail lineno "func inside func";
        let rest = String.trim (String.sub line 5 (String.length line - 5)) in
        let name =
          match String.index_opt rest '{' with
          | Some i -> String.trim (String.sub rest 0 i)
          | None -> fail lineno "expected '{' after func name"
        in
        if name = "" then fail lineno "empty function name";
        if !main = None then main := Some name;
        (* The first label line names the entry block; create the
           builder lazily so we can use that label. *)
        current := Some (Build.func ~entry:"__pending__" name);
        started_blocks := false
      end
      else if line = "}" then finish_current ()
      else
        match !current with
        | None -> fail lineno "statement outside func"
        | Some fn ->
            if String.length line > 1 && line.[String.length line - 1] = ':'
            then begin
              let label = String.sub line 0 (String.length line - 1) in
              if !started_blocks then Build.label fn label
              else begin
                (* rename the pending entry block by starting fresh *)
                Build.rename_entry fn label;
                started_blocks := true
              end
            end
            else begin
              if not !started_blocks then
                fail lineno "instruction before first label";
              match split_words line with
              | [] -> ()
              | op :: args -> (
                  match (op, args) with
                  | "li", [ d; i ] -> (
                      match int_of_string_opt i with
                      | Some imm -> Build.li fn (parse_reg lineno d) imm
                      | None -> fail lineno "bad immediate %s" i)
                  | "mov", [ d; s ] ->
                      Build.mov fn (parse_reg lineno d) (parse_reg lineno s)
                  | "ld", [ d; m ] ->
                      let offset, base = parse_mem lineno m in
                      Build.load fn (parse_reg lineno d) base offset
                  | "st", [ s; m ] ->
                      let offset, base = parse_mem lineno m in
                      Build.store fn (parse_reg lineno s) base offset
                  | "call", [ callee ] -> Build.call fn callee
                  | "read", [ d ] -> Build.read fn (parse_reg lineno d)
                  | "write", [ s ] -> Build.write fn (parse_reg lineno s)
                  | "sel", [ d; c; t; f ] ->
                      Build.select fn (parse_reg lineno d)
                        (parse_reg lineno c) (parse_reg lineno t)
                        (parse_operand lineno f)
                  | "nop", [] -> Build.nop fn
                  | "jmp", [ l ] -> Build.jump fn l
                  | "ret", [] -> Build.ret fn
                  | "halt", [] -> Build.halt fn
                  | _, [ s1; s2; target; fall ]
                    when cond_of_mnemonic op <> None ->
                      let cond = Option.get (cond_of_mnemonic op) in
                      Build.branch fn cond (parse_reg lineno s1)
                        (parse_operand lineno s2)
                        ~target ~fall ()
                  | _, [ s1; s2; target ] when cond_of_mnemonic op <> None ->
                      let cond = Option.get (cond_of_mnemonic op) in
                      Build.branch fn cond (parse_reg lineno s1)
                        (parse_operand lineno s2)
                        ~target ()
                  | _, _ -> (
                      match Instr.alu_op_of_string op with
                      | Some alu -> (
                          match args with
                          | [ d; s1; s2 ] ->
                              Build.alu fn alu (parse_reg lineno d)
                                (parse_reg lineno s1)
                                (parse_operand lineno s2)
                          | _ -> fail lineno "bad ALU operands")
                      | None -> fail lineno "unknown mnemonic %s" op))
            end)
    lines;
  if !current <> None then fail 0 "missing closing '}'";
  match !main with
  | None -> Error "no functions"
  | Some main -> (
      match Program.of_funcs ~main (List.rev !funcs) with
      | Ok p -> Ok p
      | Error m -> Error m)

let of_string_res text =
  try of_string text with
  | Parse_error (line, m) -> Error (Printf.sprintf "line %d: %s" line m)
  | Invalid_argument m -> Error m
