(* Binary encoding of linked programs.

   The paper's toolchain analyses Alpha *binaries*; this module provides
   the equivalent substrate: every instruction of a linked program is
   encoded into one 63-bit word, together with a symbol table giving
   each function's name, entry address and size. {!Recover} rebuilds a
   structured program from the flat image, which is what the
   diverge-branch analysis of a real binary starts from.

   Word layout (LSB first):
     bits 0..5    opcode
     bits 6..11   register a (dst / src1)
     bits 12..17  register b (src1 / base)
     bits 18..23  register c (register operand)
     bit  24      operand-is-immediate flag
     bits 25..62  payload (38 bits)

   Payload:
   - plain instructions: signed immediate / offset;
   - jump / call: absolute target address;
   - conditional branch: taken target in the low 18 bits, signed operand
     immediate in the high 20 bits. The fall-through target is the next
     address — as on a real ISA, the not-taken successor must follow the
     branch, and [encode] rejects programs violating this. *)

type image = {
  code : int array;
  symbols : (string * int * int) list;  (* name, entry address, size *)
}

let op_alu_base = 0 (* ..15 *)
let op_load = 16
let op_store = 17
let op_li = 18
let op_mov = 19
let op_call = 20
let op_read = 21
let op_write = 22
let op_nop = 23
let op_jump = 24
let op_ret = 25
let op_halt = 26
let op_select = 27
let op_branch_base = 32 (* ..37 *)

let alu_ops =
  [| Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Rem; Instr.And;
     Instr.Or; Instr.Xor; Instr.Shl; Instr.Shr; Instr.Slt; Instr.Sle;
     Instr.Seq; Instr.Sne; Instr.Min; Instr.Max |]

let conds = [| Term.Eq; Term.Ne; Term.Lt; Term.Ge; Term.Le; Term.Gt |]

let index_of arr x =
  let rec go i = if arr.(i) = x then i else go (i + 1) in
  go 0

let payload_bits = 38
let payload_min = -(1 lsl (payload_bits - 1))
let payload_max = (1 lsl (payload_bits - 1)) - 1
let addr_bits = 18
let br_imm_bits = 20
let br_imm_min = -(1 lsl (br_imm_bits - 1))
let br_imm_max = (1 lsl (br_imm_bits - 1)) - 1

let pack ~op ~ra ~rb ~rc ~is_imm ~payload =
  if payload < payload_min || payload > payload_max then
    invalid_arg "Encode: immediate out of range";
  op land 0x3f
  lor ((ra land 0x3f) lsl 6)
  lor ((rb land 0x3f) lsl 12)
  lor ((rc land 0x3f) lsl 18)
  lor ((if is_imm then 1 else 0) lsl 24)
  lor ((payload land ((1 lsl payload_bits) - 1)) lsl 25)

let unpack w =
  let raw = (w lsr 25) land ((1 lsl payload_bits) - 1) in
  let payload =
    if raw land (1 lsl (payload_bits - 1)) <> 0 then
      raw - (1 lsl payload_bits)
    else raw
  in
  ( w land 0x3f,
    (w lsr 6) land 0x3f,
    (w lsr 12) land 0x3f,
    (w lsr 18) land 0x3f,
    (w lsr 24) land 1 = 1,
    payload )

let pack_branch_payload ~taken ~imm =
  if taken < 0 || taken >= 1 lsl addr_bits then
    invalid_arg "Encode: branch target out of range";
  if imm < br_imm_min || imm > br_imm_max then
    invalid_arg "Encode: branch operand immediate out of range";
  taken lor ((imm land ((1 lsl br_imm_bits) - 1)) lsl addr_bits)

let unpack_branch_payload payload =
  let payload = payload land ((1 lsl payload_bits) - 1) in
  let taken = payload land ((1 lsl addr_bits) - 1) in
  let raw = (payload lsr addr_bits) land ((1 lsl br_imm_bits) - 1) in
  let imm =
    if raw land (1 lsl (br_imm_bits - 1)) <> 0 then raw - (1 lsl br_imm_bits)
    else raw
  in
  (taken, imm)

let encode_operand = function
  | Instr.Reg r -> (Reg.to_int r, false, 0)
  | Instr.Imm i -> (0, true, i)

let encode_slot linked (l : Linked.loc) =
  let r = Reg.to_int in
  match l.Linked.slot with
  | Linked.Body ins -> (
      match ins with
      | Instr.Alu { op; dst; src1; src2 } ->
          let rc, is_imm, payload = encode_operand src2 in
          pack ~op:(op_alu_base + index_of alu_ops op) ~ra:(r dst)
            ~rb:(r src1) ~rc ~is_imm ~payload
      | Instr.Load { dst; base; offset } ->
          pack ~op:op_load ~ra:(r dst) ~rb:(r base) ~rc:0 ~is_imm:true
            ~payload:offset
      | Instr.Store { src; base; offset } ->
          pack ~op:op_store ~ra:(r src) ~rb:(r base) ~rc:0 ~is_imm:true
            ~payload:offset
      | Instr.Li { dst; imm } ->
          pack ~op:op_li ~ra:(r dst) ~rb:0 ~rc:0 ~is_imm:true ~payload:imm
      | Instr.Mov { dst; src } ->
          pack ~op:op_mov ~ra:(r dst) ~rb:(r src) ~rc:0 ~is_imm:false
            ~payload:0
      | Instr.Call { callee } ->
          let fi = Linked.func_of_name linked callee in
          pack ~op:op_call ~ra:0 ~rb:0 ~rc:0 ~is_imm:true
            ~payload:(Linked.func_entry linked fi)
      | Instr.Read { dst } ->
          pack ~op:op_read ~ra:(r dst) ~rb:0 ~rc:0 ~is_imm:false ~payload:0
      | Instr.Write { src } ->
          pack ~op:op_write ~ra:(r src) ~rb:0 ~rc:0 ~is_imm:false ~payload:0
      | Instr.Select { dst; cond; if_true; if_false } ->
          (* ra/rb/rc hold dst/cond/if_true; the if_false operand rides
             in the payload (immediate, or register index). *)
          let is_imm, payload =
            match if_false with
            | Instr.Reg fr -> (false, Reg.to_int fr)
            | Instr.Imm i -> (true, i)
          in
          pack ~op:op_select ~ra:(r dst) ~rb:(r cond) ~rc:(r if_true)
            ~is_imm ~payload
      | Instr.Nop ->
          pack ~op:op_nop ~ra:0 ~rb:0 ~rc:0 ~is_imm:false ~payload:0)
  | Linked.Term tm -> (
      match tm with
      | Term.Branch { cond; src1; src2; _ } ->
          let taken, fall = Option.get (Linked.branch_targets linked l) in
          if fall <> l.Linked.addr + 1 then
            invalid_arg
              "Encode: the not-taken successor must follow the branch";
          let rc, is_imm, imm = encode_operand src2 in
          pack
            ~op:(op_branch_base + index_of conds cond)
            ~ra:(r src1) ~rb:0 ~rc ~is_imm
            ~payload:(pack_branch_payload ~taken ~imm)
      | Term.Jump _ ->
          let target = Option.get (Linked.jump_target linked l) in
          pack ~op:op_jump ~ra:0 ~rb:0 ~rc:0 ~is_imm:true ~payload:target
      | Term.Ret ->
          pack ~op:op_ret ~ra:0 ~rb:0 ~rc:0 ~is_imm:false ~payload:0
      | Term.Halt ->
          pack ~op:op_halt ~ra:0 ~rb:0 ~rc:0 ~is_imm:false ~payload:0)

let encode linked =
  {
    code = Array.map (encode_slot linked) linked.Linked.locs;
    symbols =
      Array.to_list
        (Array.mapi
           (fun fi (f : Func.t) ->
             (f.Func.name, Linked.func_entry linked fi, Func.size f))
           linked.Linked.program.Program.funcs);
  }

(* ---------- decoding ---------- *)

type decoded =
  | D_instr of Instr.t
  | D_branch of { cond : Term.cond; src1 : Reg.t; src2 : Instr.operand;
                  taken_addr : int }
  | D_jump of int
  | D_ret
  | D_halt
  | D_call of int  (* callee entry address *)

let decode_word w =
  let op, ra, rb, rc, is_imm, payload = unpack w in
  let reg = Reg.of_int in
  if op < 16 then
    let src2 = if is_imm then Instr.Imm payload else Instr.Reg (reg rc) in
    D_instr
      (Instr.Alu { op = alu_ops.(op); dst = reg ra; src1 = reg rb; src2 })
  else if op >= op_branch_base && op < op_branch_base + 6 then begin
    let taken_addr, imm = unpack_branch_payload payload in
    let src2 = if is_imm then Instr.Imm imm else Instr.Reg (reg rc) in
    D_branch { cond = conds.(op - op_branch_base); src1 = reg ra; src2;
               taken_addr }
  end
  else
    match op with
    | x when x = op_load ->
        D_instr (Instr.Load { dst = reg ra; base = reg rb; offset = payload })
    | x when x = op_store ->
        D_instr (Instr.Store { src = reg ra; base = reg rb; offset = payload })
    | x when x = op_li -> D_instr (Instr.Li { dst = reg ra; imm = payload })
    | x when x = op_mov ->
        D_instr (Instr.Mov { dst = reg ra; src = reg rb })
    | x when x = op_call -> D_call payload
    | x when x = op_read -> D_instr (Instr.Read { dst = reg ra })
    | x when x = op_write -> D_instr (Instr.Write { src = reg ra })
    | x when x = op_select ->
        let if_false =
          if is_imm then Instr.Imm payload
          else Instr.Reg (reg (payload land 0x3f))
        in
        D_instr
          (Instr.Select
             { dst = reg ra; cond = reg rb; if_true = reg rc; if_false })
    | x when x = op_nop -> D_instr Instr.Nop
    | x when x = op_jump -> D_jump payload
    | x when x = op_ret -> D_ret
    | x when x = op_halt -> D_halt
    | _ -> invalid_arg (Printf.sprintf "Decode: bad opcode %d" op)

let disassemble_word w =
  match decode_word w with
  | D_instr i -> Fmt.str "%a" Instr.pp i
  | D_branch { cond; src1; src2; taken_addr } ->
      Fmt.str "%s %a, %a -> @%d" (Term.cond_to_string cond) Reg.pp src1
        Instr.pp_operand src2 taken_addr
  | D_jump a -> Printf.sprintf "jmp @%d" a
  | D_ret -> "ret"
  | D_halt -> "halt"
  | D_call a -> Printf.sprintf "call @%d" a
