type alu_op =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Slt
  | Sle
  | Seq
  | Sne
  | Min
  | Max

type operand = Reg of Reg.t | Imm of int

type t =
  | Alu of { op : alu_op; dst : Reg.t; src1 : Reg.t; src2 : operand }
  | Load of { dst : Reg.t; base : Reg.t; offset : int }
  | Store of { src : Reg.t; base : Reg.t; offset : int }
  | Li of { dst : Reg.t; imm : int }
  | Mov of { dst : Reg.t; src : Reg.t }
  | Call of { callee : string }
  | Read of { dst : Reg.t }
  | Write of { src : Reg.t }
  | Select of { dst : Reg.t; cond : Reg.t; if_true : Reg.t;
                if_false : operand }
  | Nop

let alu_op_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Slt -> "slt"
  | Sle -> "sle"
  | Seq -> "seq"
  | Sne -> "sne"
  | Min -> "min"
  | Max -> "max"

let alu_op_of_string = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "div" -> Some Div
  | "rem" -> Some Rem
  | "and" -> Some And
  | "or" -> Some Or
  | "xor" -> Some Xor
  | "shl" -> Some Shl
  | "shr" -> Some Shr
  | "slt" -> Some Slt
  | "sle" -> Some Sle
  | "seq" -> Some Seq
  | "sne" -> Some Sne
  | "min" -> Some Min
  | "max" -> Some Max
  | _ -> None

let eval_alu op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 62)
  | Shr -> a asr (b land 62)
  | Slt -> if a < b then 1 else 0
  | Sle -> if a <= b then 1 else 0
  | Seq -> if a = b then 1 else 0
  | Sne -> if a <> b then 1 else 0
  | Min -> min a b
  | Max -> max a b

let defs = function
  | Alu { dst; _ } | Load { dst; _ } | Li { dst; _ } | Mov { dst; _ }
  | Read { dst; _ } | Select { dst; _ } ->
      if Reg.equal dst Reg.zero then [] else [ dst ]
  | Store _ | Call _ | Write _ | Nop -> []

let uses = function
  | Alu { src1; src2; _ } -> (
      match src2 with Reg r -> [ src1; r ] | Imm _ -> [ src1 ])
  | Load { base; _ } -> [ base ]
  | Store { src; base; _ } -> [ src; base ]
  | Mov { src; _ } -> [ src ]
  | Write { src; _ } -> [ src ]
  | Select { cond; if_true; if_false; _ } -> (
      match if_false with
      | Reg r -> [ cond; if_true; r ]
      | Imm _ -> [ cond; if_true ])
  | Li _ | Call _ | Read _ | Nop -> []

let is_memory = function Load _ | Store _ -> true | _ -> false
let is_call = function Call _ -> true | _ -> false

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm i -> Fmt.pf ppf "%d" i

let pp ppf = function
  | Alu { op; dst; src1; src2 } ->
      Fmt.pf ppf "%s %a, %a, %a" (alu_op_to_string op) Reg.pp dst Reg.pp src1
        pp_operand src2
  | Load { dst; base; offset } ->
      Fmt.pf ppf "ld %a, %d(%a)" Reg.pp dst offset Reg.pp base
  | Store { src; base; offset } ->
      Fmt.pf ppf "st %a, %d(%a)" Reg.pp src offset Reg.pp base
  | Li { dst; imm } -> Fmt.pf ppf "li %a, %d" Reg.pp dst imm
  | Mov { dst; src } -> Fmt.pf ppf "mov %a, %a" Reg.pp dst Reg.pp src
  | Call { callee } -> Fmt.pf ppf "call %s" callee
  | Read { dst } -> Fmt.pf ppf "read %a" Reg.pp dst
  | Write { src } -> Fmt.pf ppf "write %a" Reg.pp src
  | Select { dst; cond; if_true; if_false } ->
      Fmt.pf ppf "sel %a, %a, %a, %a" Reg.pp dst Reg.pp cond Reg.pp if_true
        pp_operand if_false
  | Nop -> Fmt.pf ppf "nop"
