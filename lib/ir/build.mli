(** Sequential builder EDSL for IR functions.

    A function starts with an implicit entry block. [label] closes the
    current block (inserting a fall-through jump if it has no
    terminator) and opens a new one. [finish] resolves string labels to
    block indices; a conditional branch without an explicit [?fall]
    falls through to the lexically next block. *)

type label = string
type fn

val reg : Reg.t -> Instr.operand
val imm : int -> Instr.operand
val func : ?entry:label -> string -> fn
val label : fn -> label -> unit

(** Rename the still-empty entry block (assembly parser support).
    Raises [Invalid_argument] once anything was emitted. *)
val rename_entry : fn -> label -> unit

val emit : fn -> Instr.t -> unit
val alu : fn -> Instr.alu_op -> Reg.t -> Reg.t -> Instr.operand -> unit
val add : fn -> Reg.t -> Reg.t -> Instr.operand -> unit
val sub : fn -> Reg.t -> Reg.t -> Instr.operand -> unit
val mul : fn -> Reg.t -> Reg.t -> Instr.operand -> unit
val div : fn -> Reg.t -> Reg.t -> Instr.operand -> unit
val rem : fn -> Reg.t -> Reg.t -> Instr.operand -> unit
val and_ : fn -> Reg.t -> Reg.t -> Instr.operand -> unit
val or_ : fn -> Reg.t -> Reg.t -> Instr.operand -> unit
val xor : fn -> Reg.t -> Reg.t -> Instr.operand -> unit
val shl : fn -> Reg.t -> Reg.t -> Instr.operand -> unit
val shr : fn -> Reg.t -> Reg.t -> Instr.operand -> unit
val li : fn -> Reg.t -> int -> unit
val mov : fn -> Reg.t -> Reg.t -> unit
val load : fn -> Reg.t -> Reg.t -> int -> unit
val store : fn -> Reg.t -> Reg.t -> int -> unit
val call : fn -> string -> unit
val read : fn -> Reg.t -> unit
val write : fn -> Reg.t -> unit

val select : fn -> Reg.t -> Reg.t -> Reg.t -> Instr.operand -> unit
(** [select fn dst cond if_true if_false] — conditional move. *)

val nop : fn -> unit

val nops : fn -> int -> unit
(** Emit [n] nops; used by workloads to control hammock sizes. *)

val branch :
  fn -> Term.cond -> Reg.t -> Instr.operand -> target:label ->
  ?fall:label -> unit -> unit

val jump : fn -> label -> unit
val ret : fn -> unit
val halt : fn -> unit

val finish : fn -> Func.t
(** @raise Invalid_argument on unknown/duplicate labels or a trailing
    fall-through. *)
