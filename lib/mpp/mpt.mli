(** Merge Point Table: a hardware-style dynamic merge-point predictor
    trained online from retired control flow, after the Dynamic Merge
    Point Prediction scheme of Pruett & Patt (TR-HPS-2020-001).

    Every retired conditional branch opens a {e tracker} that records
    the PCs retiring after it — but only those at the branch's own call
    depth (calls push, returns pop; a return past the branch's frame
    ends the tracker), so a recorded PC is always intraprocedurally
    downstream of the branch. A tracker closes when its window fills or
    its frame returns, delivering the per-direction path into the
    branch's set-associative table entry. Once both directions have
    delivered a path, the candidate merge point is the earliest PC of
    the newly delivered path that also appears on the other direction's
    path; a candidate that re-confirms the stored merge point promotes
    its confidence, a conflicting candidate decays it and replaces the
    merge point once confidence is exhausted. {!predict} answers only
    from entries at or above the confidence threshold.

    All operations are deterministic: the same observation sequence
    yields the same table, exports and predictions. *)

type config = {
  log2_sets : int;
  ways : int;
  window : int;  (** retired events tracked past a branch before closing *)
  max_conf : int;  (** confidence saturation *)
  conf_threshold : int;  (** minimum confidence for {!predict} to answer *)
  select_uops : int;
      (** select-µop cost charged when a predicted merge point is
          reached — the predictor has no dataflow view, so a fixed cost
          stands in for the compiler's per-CFM select count *)
}

val default : config
(** 128 sets x 4 ways, 32-event window — the main evaluation point. *)

val small : config
(** 16 sets x 2 ways, 16-event window — the constrained design point
    for the table-size sensitivity axis. *)

type t

val create : config -> t
val config : t -> config

val observe : t -> addr:int -> unit
(** A retired non-control event at [addr]. *)

val observe_branch : t -> addr:int -> taken:bool -> unit
(** A retired conditional branch: recorded into open trackers, then a
    new tracker opens for it (evicting the oldest when all tracker
    slots are busy). *)

val observe_call : t -> addr:int -> unit
val observe_ret : t -> unit

val predict : t -> addr:int -> int option
(** The predicted merge-point address for a diverge branch at [addr],
    if its entry's confidence has reached the threshold. *)

val predictions : t -> (int * int * int) list
(** Every (branch, merge, confidence) currently tabled with a merge
    candidate — including below-threshold entries — sorted by branch
    address. The invariant checker validates each against the CFG. *)

val export : t -> int array
(** Full state: geometry header, every entry with both direction
    paths, and the open trackers in age order — {!import} restores it
    exactly ({!export} of the restored table is equal). *)

val import : t -> int array -> unit
(** @raise Invalid_argument when the snapshot's geometry does not match
    [config t] or the shape is inconsistent. *)
