(* Merge Point Table (Pruett & Patt, TR-HPS-2020-001): set-associative
   table of diverge branches -> candidate merge PC, trained by bounded
   path trackers over the retired control-flow stream. Everything is
   plain integer arrays so the whole state exports into a checkpoint
   section and the training loop never allocates per event. *)

type config = {
  log2_sets : int;
  ways : int;
  window : int;
  max_conf : int;
  conf_threshold : int;
  select_uops : int;
}

let default =
  {
    log2_sets = 7;
    ways = 4;
    window = 32;
    max_conf = 3;
    conf_threshold = 2;
    select_uops = 4;
  }

let small = { default with log2_sets = 4; ways = 2; window = 16 }

(* One open tracker: the path of depth-0 PCs retired after tr_branch.
   tr_depth counts call nesting relative to the branch's frame. *)
type tracker = {
  mutable tr_live : bool;
  mutable tr_branch : int;
  mutable tr_taken : bool;
  mutable tr_depth : int;
  mutable tr_len : int;
  tr_path : int array;
}

let max_trackers = 4

type t = {
  cfg : config;
  entries : int;  (* sets * ways *)
  tag : int array;  (* branch address, -1 = invalid *)
  merge : int array;  (* candidate merge PC, -1 = none yet *)
  conf : int array;
  lru : int array;  (* monotone use clock *)
  len_t : int array;  (* taken-direction path length, 0 = none *)
  len_nt : int array;
  path_t : int array array;
  path_nt : int array array;
  mutable clock : int;
  trackers : tracker array;
  mutable tracker_head : int;  (* oldest live tracker slot *)
  mutable tracker_count : int;
}

let config t = t.cfg

let create cfg =
  if cfg.log2_sets < 0 || cfg.log2_sets > 20 then
    invalid_arg "Mpt.create: log2_sets out of range";
  if cfg.ways < 1 then invalid_arg "Mpt.create: ways < 1";
  if cfg.window < 1 then invalid_arg "Mpt.create: window < 1";
  if cfg.max_conf < 1 then invalid_arg "Mpt.create: max_conf < 1";
  if cfg.conf_threshold < 1 || cfg.conf_threshold > cfg.max_conf then
    invalid_arg "Mpt.create: conf_threshold out of range";
  if cfg.select_uops < 0 then invalid_arg "Mpt.create: select_uops < 0";
  let entries = (1 lsl cfg.log2_sets) * cfg.ways in
  {
    cfg;
    entries;
    tag = Array.make entries (-1);
    merge = Array.make entries (-1);
    conf = Array.make entries 0;
    lru = Array.make entries 0;
    len_t = Array.make entries 0;
    len_nt = Array.make entries 0;
    path_t = Array.init entries (fun _ -> Array.make cfg.window 0);
    path_nt = Array.init entries (fun _ -> Array.make cfg.window 0);
    clock = 0;
    trackers =
      Array.init max_trackers (fun _ ->
          {
            tr_live = false;
            tr_branch = 0;
            tr_taken = false;
            tr_depth = 0;
            tr_len = 0;
            tr_path = Array.make cfg.window 0;
          });
    tracker_head = 0;
    tracker_count = 0;
  }

let set_of t addr = addr land ((1 lsl t.cfg.log2_sets) - 1)

let find_way t addr =
  let base = set_of t addr * t.cfg.ways in
  let rec go w =
    if w = t.cfg.ways then -1
    else if t.tag.(base + w) = addr then base + w
    else go (w + 1)
  in
  go 0

(* Victim selection is fully deterministic: an invalid way first, then
   the lowest confidence, ties broken by oldest use then lowest way. *)
let victim_way t addr =
  let base = set_of t addr * t.cfg.ways in
  let best = ref base in
  let better e =
    if t.tag.(e) = -1 then t.tag.(!best) <> -1
    else if t.tag.(!best) = -1 then false
    else if t.conf.(e) <> t.conf.(!best) then t.conf.(e) < t.conf.(!best)
    else t.lru.(e) < t.lru.(!best)
  in
  for w = 1 to t.cfg.ways - 1 do
    if better (base + w) then best := base + w
  done;
  !best

(* The earliest PC of [path] (length [len]) also present in the other
   direction's recorded path — the two walks' first common point. *)
let first_common path len other other_len =
  let rec go i =
    if i = len then -1
    else
      let pc = path.(i) in
      let rec mem j = j < other_len && (other.(j) = pc || mem (j + 1)) in
      if mem 0 then pc else go (i + 1)
  in
  go 0

let deliver t tk =
  if tk.tr_live then begin
  tk.tr_live <- false;
  if tk.tr_len > 0 then begin
    let e =
      match find_way t tk.tr_branch with
      | -1 ->
          let e = victim_way t tk.tr_branch in
          t.tag.(e) <- tk.tr_branch;
          t.merge.(e) <- -1;
          t.conf.(e) <- 0;
          t.len_t.(e) <- 0;
          t.len_nt.(e) <- 0;
          e
      | e -> e
    in
    t.clock <- t.clock + 1;
    t.lru.(e) <- t.clock;
    let mine, mine_len, other, other_len =
      if tk.tr_taken then (t.path_t, t.len_t, t.path_nt, t.len_nt)
      else (t.path_nt, t.len_nt, t.path_t, t.len_t)
    in
    Array.blit tk.tr_path 0 mine.(e) 0 tk.tr_len;
    mine_len.(e) <- tk.tr_len;
    if other_len.(e) > 0 then begin
      let cand = first_common tk.tr_path tk.tr_len other.(e) other_len.(e) in
      if cand >= 0 then
        if t.merge.(e) = cand then
          t.conf.(e) <- min (t.conf.(e) + 1) t.cfg.max_conf
        else if t.merge.(e) = -1 || t.conf.(e) = 0 then begin
          t.merge.(e) <- cand;
          t.conf.(e) <- 1
        end
        else t.conf.(e) <- t.conf.(e) - 1
    end
  end
  end

let kill_oldest t =
  let tk = t.trackers.(t.tracker_head) in
  t.tracker_head <- (t.tracker_head + 1) mod max_trackers;
  t.tracker_count <- t.tracker_count - 1;
  deliver t tk

(* Record a retired PC into every open tracker sitting at its branch's
   own call depth; a full window closes the tracker. *)
let record t addr =
  for i = 0 to t.tracker_count - 1 do
    let tk = t.trackers.((t.tracker_head + i) mod max_trackers) in
    if tk.tr_live && tk.tr_depth = 0 then
      (* A re-execution of the tracker's own branch means the loop
         wrapped: close here, or the path would pick up the next
         iteration's other arm and fake a pre-merge common PC. *)
      if addr = tk.tr_branch then deliver t tk
      else begin
        tk.tr_path.(tk.tr_len) <- addr;
        tk.tr_len <- tk.tr_len + 1;
        if tk.tr_len = t.cfg.window then deliver t tk
      end
  done;
  (* Compact delivered trackers off the front of the age queue. *)
  while t.tracker_count > 0 && not t.trackers.(t.tracker_head).tr_live do
    t.tracker_head <- (t.tracker_head + 1) mod max_trackers;
    t.tracker_count <- t.tracker_count - 1
  done

let observe t ~addr = record t addr

let observe_branch t ~addr ~taken =
  record t addr;
  if t.tracker_count = max_trackers then kill_oldest t;
  let slot = (t.tracker_head + t.tracker_count) mod max_trackers in
  let tk = t.trackers.(slot) in
  tk.tr_live <- true;
  tk.tr_branch <- addr;
  tk.tr_taken <- taken;
  tk.tr_depth <- 0;
  tk.tr_len <- 0;
  t.tracker_count <- t.tracker_count + 1

let observe_call t ~addr =
  record t addr;
  for i = 0 to t.tracker_count - 1 do
    let tk = t.trackers.((t.tracker_head + i) mod max_trackers) in
    if tk.tr_live then tk.tr_depth <- tk.tr_depth + 1
  done

let observe_ret t =
  for i = 0 to t.tracker_count - 1 do
    let tk = t.trackers.((t.tracker_head + i) mod max_trackers) in
    if tk.tr_live then
      if tk.tr_depth = 0 then deliver t tk
      else tk.tr_depth <- tk.tr_depth - 1
  done;
  while t.tracker_count > 0 && not t.trackers.(t.tracker_head).tr_live do
    t.tracker_head <- (t.tracker_head + 1) mod max_trackers;
    t.tracker_count <- t.tracker_count - 1
  done

let predict t ~addr =
  match find_way t addr with
  | -1 -> None
  | e ->
      if t.merge.(e) >= 0 && t.conf.(e) >= t.cfg.conf_threshold then
        Some t.merge.(e)
      else None

let predictions t =
  let acc = ref [] in
  for e = t.entries - 1 downto 0 do
    if t.tag.(e) >= 0 && t.merge.(e) >= 0 then
      acc := (t.tag.(e), t.merge.(e), t.conf.(e)) :: !acc
  done;
  List.sort compare !acc

(* Export layout: a geometry header guarding import, then the entry
   arrays (paths padded to [window]), then live trackers oldest first. *)
let header_len = 9

let export t =
  let w = t.cfg.window in
  let per_entry = 6 + (2 * w) in
  let live = t.tracker_count in
  let per_tracker = 4 + w in
  let out = Array.make (header_len + (t.entries * per_entry) + (live * per_tracker)) 0 in
  out.(0) <- 1;
  out.(1) <- t.cfg.log2_sets;
  out.(2) <- t.cfg.ways;
  out.(3) <- w;
  out.(4) <- t.cfg.max_conf;
  out.(5) <- t.cfg.conf_threshold;
  out.(6) <- t.cfg.select_uops;
  out.(7) <- t.clock;
  out.(8) <- live;
  let p = ref header_len in
  for e = 0 to t.entries - 1 do
    out.(!p) <- t.tag.(e);
    out.(!p + 1) <- t.merge.(e);
    out.(!p + 2) <- t.conf.(e);
    out.(!p + 3) <- t.lru.(e);
    out.(!p + 4) <- t.len_t.(e);
    out.(!p + 5) <- t.len_nt.(e);
    Array.blit t.path_t.(e) 0 out (!p + 6) w;
    Array.blit t.path_nt.(e) 0 out (!p + 6 + w) w;
    p := !p + per_entry
  done;
  for i = 0 to live - 1 do
    let tk = t.trackers.((t.tracker_head + i) mod max_trackers) in
    out.(!p) <- tk.tr_branch;
    out.(!p + 1) <- (if tk.tr_taken then 1 else 0);
    out.(!p + 2) <- tk.tr_depth;
    out.(!p + 3) <- tk.tr_len;
    Array.blit tk.tr_path 0 out (!p + 4) w;
    p := !p + per_tracker
  done;
  out

let import t snap =
  let fail msg = invalid_arg ("Mpt.import: " ^ msg) in
  let w = t.cfg.window in
  if Array.length snap < header_len then fail "truncated header";
  if snap.(0) <> 1 then fail "unknown version";
  if
    snap.(1) <> t.cfg.log2_sets || snap.(2) <> t.cfg.ways || snap.(3) <> w
    || snap.(4) <> t.cfg.max_conf
    || snap.(5) <> t.cfg.conf_threshold
    || snap.(6) <> t.cfg.select_uops
  then fail "geometry mismatch";
  let live = snap.(8) in
  if live < 0 || live > max_trackers then fail "tracker count out of range";
  let per_entry = 6 + (2 * w) in
  let per_tracker = 4 + w in
  if
    Array.length snap
    <> header_len + (t.entries * per_entry) + (live * per_tracker)
  then fail "length mismatch";
  t.clock <- snap.(7);
  let p = ref header_len in
  for e = 0 to t.entries - 1 do
    t.tag.(e) <- snap.(!p);
    t.merge.(e) <- snap.(!p + 1);
    t.conf.(e) <- snap.(!p + 2);
    t.lru.(e) <- snap.(!p + 3);
    t.len_t.(e) <- snap.(!p + 4);
    t.len_nt.(e) <- snap.(!p + 5);
    if t.len_t.(e) < 0 || t.len_t.(e) > w || t.len_nt.(e) < 0 || t.len_nt.(e) > w
    then fail "path length out of range";
    Array.blit snap (!p + 6) t.path_t.(e) 0 w;
    Array.blit snap (!p + 6 + w) t.path_nt.(e) 0 w;
    p := !p + per_entry
  done;
  t.tracker_head <- 0;
  t.tracker_count <- live;
  for i = 0 to max_trackers - 1 do
    t.trackers.(i).tr_live <- false
  done;
  for i = 0 to live - 1 do
    let tk = t.trackers.(i) in
    tk.tr_live <- true;
    tk.tr_branch <- snap.(!p);
    tk.tr_taken <- snap.(!p + 1) <> 0;
    tk.tr_depth <- snap.(!p + 2);
    tk.tr_len <- snap.(!p + 3);
    if tk.tr_len < 0 || tk.tr_len >= w then fail "tracker length out of range";
    Array.blit snap (!p + 4) tk.tr_path 0 w;
    p := !p + per_tracker
  done
