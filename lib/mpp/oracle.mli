(** Oracle merge points: the immediate post-dominator (IPOSDOM) of
    every conditional branch, computed from the true CFG — the
    perfect-information upper bound both the profile-guided compiler
    (this paper) and the dynamic predictor (TR-HPS-2020-001)
    approximate. *)

open Dmp_ir
open Dmp_core

val merge_points : Linked.t -> (int * int) list
(** [(branch_addr, merge_addr)] for every conditional branch whose
    block has an immediate post-dominator, sorted by branch address;
    [merge_addr] is the first instruction of the IPOSDOM block.
    Branches whose two sides reach the exit separately (no IPOSDOM)
    are omitted. *)

val annotation : Linked.t -> Annotation.t
(** The merge points of {!merge_points} as exact single-CFM hammock
    diverge annotations, restricted to branches passing the paper's
    structural hammock gates recomputed on the true CFG: the region
    between the branch and its IPOSDOM stays within
    [Params.default.max_instr] instructions and [max_cbr] conditional
    branches, and neither side can reach the branch again before the
    merge (loop back-edges go to the loop mechanism, not a hammock).
    Select-µop counts are derived from the registers actually written
    between the branch and its merge point (the same dataflow rule the
    compiler uses). Built against an all-zero profile — the oracle
    keeps the hardware's structural limits but needs no profile
    information. *)
