(* Oracle merge points: IPOSDOM of every conditional branch from the
   true CFG, packaged as an exact-CFM annotation. The analysis context
   is built over an all-zero profile — dominators, post-dominators and
   liveness are profile-independent, and the select-µop rule only needs
   the dataflow facts.

   [merge_points] is the raw oracle map (every branch with an
   IPOSDOM). [annotation] additionally applies the paper's structural
   hammock gates (Params.max_instr / max_cbr, and no path from a
   branch side back to the branch before the merge — i.e. no loop
   back-edges): those gates are CFG facts, not profile facts, and
   without them "predicate everything" drowns the machine in dual-path
   fetch for regions dynamic predication cannot win. The oracle axis
   removes the *profile* dependence while keeping the hardware's
   structural limits. *)

open Dmp_ir
open Dmp_cfg
open Dmp_profile
open Dmp_core

let empty_profile linked =
  let block_counts =
    Array.map
      (fun blocks -> Array.make (Array.length blocks) 0)
      linked.Linked.block_addr
  in
  Profile.of_raw linked (Profile.make_raw ~branches:[] ~block_counts ~retired:0)

let context linked = Context.create linked (empty_profile linked)

(* Blocks on any path from [start] to [stop] (exclusive), bounded by
   the function's own CFG; [seen] is scratch, reset by the caller. *)
let region cfg ~start ~stop seen =
  let acc = ref [] in
  let rec go b =
    if b <> stop && not seen.(b) then begin
      seen.(b) <- true;
      acc := b :: !acc;
      List.iter go (Cfg.successor_blocks cfg b)
    end
  in
  go start;
  !acc

let fold_merge_points ctx f acc =
  let acc = ref acc in
  for func = 0 to Context.num_fns ctx - 1 do
    let fn = Context.fn ctx func in
    for block = 0 to Cfg.num_nodes fn.Context.cfg - 1 do
      match Cfg.branch_successors fn.Context.cfg block with
      | None -> ()
      | Some (tk, ft) -> (
          match Postdom.ipostdom fn.Context.postdom block with
          | None -> ()
          | Some ip -> acc := f !acc ~func ~block ~taken:tk ~fall:ft ~ip)
    done
  done;
  !acc

let merge_points linked =
  let ctx = context linked in
  let pts =
    fold_merge_points ctx
      (fun acc ~func ~block ~taken:_ ~fall:_ ~ip ->
        ( Context.branch_addr ctx ~func ~block,
          Context.block_start_addr ctx ~func ~block:ip )
        :: acc)
      []
  in
  List.sort compare pts

let annotation linked =
  let ctx = context linked in
  let params = ctx.Context.params in
  let ann = Annotation.empty () in
  ignore
    (fold_merge_points ctx
       (fun () ~func ~block ~taken ~fall ~ip ->
         let fn = Context.fn ctx func in
         let cfg = fn.Context.cfg in
         let seen = Array.make (Cfg.num_nodes cfg) false in
         let blocks = region cfg ~start:taken ~stop:ip seen in
         let blocks = blocks @ region cfg ~start:fall ~stop:ip seen in
         (* A side reaching the branch again before the merge point is
            a loop around the branch: the hammock machinery cannot
            exploit it (the paper routes those to the loop mechanism). *)
         let cyclic = List.mem block blocks in
         let insts =
           List.fold_left (fun a b -> a + Cfg.block_size cfg b) 0 blocks
         in
         let cbrs =
           List.fold_left
             (fun a b -> a + if Cfg.is_conditional cfg b then 1 else 0)
             0 blocks
         in
         if
           (not cyclic)
           && insts <= params.Params.max_instr
           && cbrs <= params.Params.max_cbr
         then begin
           let defs =
             List.concat_map
               (fun b -> Context.block_defs ctx ~func ~block:b)
               blocks
           in
           let defs = List.sort_uniq compare defs in
           let select_uops =
             Context.select_count ctx ~func ~cfm_block:ip defs
           in
           Annotation.add ann
             {
               Annotation.branch_addr = Context.branch_addr ctx ~func ~block;
               kind = Annotation.Simple_hammock;
               cfms =
                 [
                   {
                     Annotation.cfm_addr =
                       Context.block_start_addr ctx ~func ~block:ip;
                     exact = true;
                     merge_prob = 1.0;
                     select_uops;
                   };
                 ];
               return_cfm = false;
               always_predicate = false;
               loop = None;
             }
         end)
       ());
  ann
