(** Differential oracle harness over the redundant execution paths.

    The repo deliberately keeps three correct-path supplies with a
    bit-identical-statistics contract (live emulator, packed-trace
    replay, pre-decoded image) and two profile paths (exact
    instrumentation, sampled + flow-conservation reconstruction, which
    at period 1 must degenerate to the exact profile). The oracle runs
    them against each other for one program + input and reports any
    divergence: event streams are diffed lockstep and the first
    diverging event is pinpointed by index and address; simulator
    statistics are diffed field-by-field; profiles are diffed down to
    the first differing branch or block counter. *)

open Dmp_ir
open Dmp_exec
open Dmp_core
open Dmp_uarch

val stats_mismatches : Stats.t -> Stats.t -> (string * int * int) list
(** Fields on which the two stats structs disagree, as
    [(field, left, right)] in declaration order. *)

val check_streams :
  ?max_insts:int -> Linked.t -> input:int array -> Trace.t -> Image.t ->
  Diagnostic.t list
(** Replay the packed trace and decode the image in lockstep with a
    live emulator; report the first diverging event (index + address)
    of either pair, and any length disagreement. *)

val check_sims :
  ?max_insts:int -> ?annotation:Annotation.t -> Linked.t ->
  input:int array -> Trace.t -> Image.t -> Diagnostic.t list
(** Run the baseline simulator (and, with [annotation], the DMP
    simulator) over all three correct-path supplies and diff the
    resulting statistics field-by-field. *)

val check_dmp_sim :
  ?max_insts:int -> label:string -> Annotation.t -> Linked.t ->
  input:int array -> Trace.t -> Image.t -> Diagnostic.t list
(** DMP-configuration three-way simulation diff for one annotation
    (no baseline runs — callers diffing several annotations over one
    trace run the baseline once via {!check_sims}). *)

val check_checkpoints :
  ?max_insts:int -> label:string -> Config.t -> Annotation.t option ->
  Linked.t -> Image.t -> Diagnostic.t list
(** Cross-check the checkpointed execution machinery (rule
    ["oracle-checkpoint"]): a checkpointing run, a resume from every
    captured checkpoint, and the {!Dmp_uarch.Stats.merge} of the
    per-segment deltas must each reproduce the plain image
    simulation's statistics field-for-field. *)

val check_profiles :
  ?max_insts:int -> Linked.t -> input:int array -> Trace.t ->
  Diagnostic.t list
(** Exact profile from the live emulator vs from the trace replay vs
    reconstructed from a period-1 periodic sampler; all three must have
    byte-identical serialised counters, and the period-1 reconstruction
    must satisfy flow conservation. *)

val check_transform :
  ?max_insts:int -> ?label:string -> original:Linked.t ->
  transformed:Linked.t -> ignore_regs:Reg.t list -> input:int array ->
  unit -> Diagnostic.t list
(** Architectural-equivalence diff between a program and its
    software-predicated rewrite ({!Dmp_transform.Pipeline}) replayed
    on the same input: output stream, retired-store sequence
    (location and value, in order), and — when both runs halt — the
    final register file minus [ignore_regs] (the transform's
    predicate/scratch residue) and the final memory image. The first
    divergence of each comparison is pinpointed by index. Under a
    [max_insts] cap only the common prefix of the sequences is
    compared (rules ["transform-*"]). *)

val run :
  ?max_insts:int -> ?annotations:(string * Annotation.t) list ->
  Linked.t -> input:int array -> Diagnostic.t list
(** Capture a trace and image, then run every check above; [annotations]
    are (label, annotation) pairs each given a DMP simulation diff. *)
