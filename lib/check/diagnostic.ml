type severity = Error | Warning

type t = {
  severity : severity;
  rule : string;
  func : int option;
  block : int option;
  addr : int option;
  message : string;
}

let make severity ?func ?block ?addr ~rule message =
  { severity; rule; func; block; addr; message }

let error ?func ?block ?addr ~rule message =
  make Error ?func ?block ?addr ~rule message

let warning ?func ?block ?addr ~rule message =
  make Warning ?func ?block ?addr ~rule message

let errorf ?func ?block ?addr ~rule fmt =
  Format.kasprintf (fun m -> error ?func ?block ?addr ~rule m) fmt

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds
let has_errors ds = List.exists is_error ds

let pp ppf d =
  let sev = match d.severity with Error -> "error" | Warning -> "warning" in
  let opt name = function
    | None -> ()
    | Some v -> Fmt.pf ppf " %s=%d" name v
  in
  Fmt.pf ppf "%s[%s]" sev d.rule;
  opt "func" d.func;
  opt "block" d.block;
  opt "addr" d.addr;
  Fmt.pf ppf ": %s" d.message
