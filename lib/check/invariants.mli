(** Invariant validator: IR/CFG well-formedness and DMP-annotation
    legality per the paper.

    CFG checks (per function): terminator targets in range, dominator
    and post-dominator consistency (the per-edge closure properties of
    both trees), dominator/DFS reachability agreement, and natural-loop
    sanity (header dominates the body, back edges land on the header,
    exit branches are conditional with a successor outside the body).

    Annotation checks (per diverge branch): the branch address names a
    conditional branch; every CFM point is the start of a block of the
    same function and is reachable from both the taken and not-taken
    successors (Sections 3.2/3.3); merge probabilities lie in [0, 1]
    and respect MIN_MERGE_PROB under threshold selection; at most
    MAX_CFM points, all within MAX_INSTR / MAX_CBR exploration bounds;
    the CFM set is chain-reduced (Section 3.3.1); exact CFMs are the
    branch's immediate post-dominator; short hammocks obey the Section
    3.4 bounds; return CFMs require both sides to reach a return
    (Section 3.5); loop diverge branches carry consistent loop info,
    with the CFM at the loop-exit target and the Section 5.2 heuristics
    satisfied. Candidate facts (path lengths, merge probabilities,
    select-µop counts) are cross-checked by re-running the deterministic
    per-branch analyses ([Alg_exact] / [Alg_freq] / [Loop_select]). *)

open Dmp_ir
open Dmp_profile
open Dmp_core

val check_linked : Linked.t -> Diagnostic.t list
(** Program-level well-formedness ({!Program.validate} verdict as a
    diagnostic). *)

val check_context : Context.t -> Diagnostic.t list
(** CFG / dominator / post-dominator / loop invariants of every
    function. Unreachable blocks are warnings (dead code is legal). *)

val check_annotation :
  Context.t -> mode:Select.mode -> Annotation.t -> Diagnostic.t list
(** Annotation legality against an analysis context built with the
    params the annotation was selected under. [mode] tells the
    validator which filters selection applied (threshold heuristics
    vs cost model). *)

val check :
  ?params:Params.t -> mode:Select.mode -> Linked.t -> Profile.t ->
  Annotation.t -> Diagnostic.t list
(** [check_linked] + [check_context] + [check_annotation] over a fresh
    context. [params] defaults to [Params.default] for [Heuristic] mode
    and [Params.for_cost_model] for [Cost] mode, matching
    {!Select.all_heuristic} / {!Select.all_cost}. *)

val check_predicted_merges :
  Linked.t -> (int * int * int) list -> Diagnostic.t list
(** Validate the merge points a dynamic Merge Point Table predicted
    (triples of branch address, merge address, confidence — the
    {!Dmp_uarch.Sim.merge_predictions} harvest) against the true CFG:
    the branch must be a conditional branch, the merge must be an
    in-range address of the same function, reachable from both the
    taken and not-taken successors. Predicted points are dynamic
    reconvergence points, not necessarily the IPOSDOM, so exactness is
    not required. Rules: [mpp-branch-out-of-range],
    [mpp-branch-not-conditional], [mpp-merge-out-of-range],
    [mpp-merge-foreign-function], [mpp-merge-unreachable]. *)
