(** Coverage-guided random program generator.

    Produces small well-formed programs (with matching inputs) built
    around the paper's structural motifs — simple / nested / frequently
    / short hammocks, return-CFM call shapes, data-dependent diverge
    loops — plus cold decorations (never-called functions) and fully
    irregular random CFGs. Coverage is {e observed}, not assumed: after
    selecting on each generated program the caller reports the
    resulting annotation with {!note}, and {!next} biases generation
    toward the structural shapes no selected diverge branch has
    exhibited yet. Deterministic for a given seed. *)

type shape = Simple | Nested | Freq | Short | Ret | Loop

type t

val all_shapes : shape list
val shape_to_string : shape -> string
val create : seed:int -> t

val next : t -> Dmp_ir.Program.t * int array
(** Generate the next program and an input stream that covers its
    reads. While any shape is uncovered, generation targets an
    uncovered shape; afterwards it mixes all motifs with irregular
    random CFGs. *)

val note : t -> Dmp_core.Annotation.t -> unit
(** Record the shapes actually exhibited by a selected annotation:
    loop branches, always-predicate (short) branches, return-CFM
    branches, and the three hammock kinds. *)

val generated : t -> int
val covered : t -> shape -> int

val all_covered : t -> bool
(** Every one of the six shapes has been observed at least once. *)

val coverage_report : t -> string
