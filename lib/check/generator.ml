open Dmp_ir
module B = Build

type shape = Simple | Nested | Freq | Short | Ret | Loop

let all_shapes = [ Simple; Nested; Freq; Short; Ret; Loop ]

let shape_to_string = function
  | Simple -> "simple"
  | Nested -> "nested"
  | Freq -> "freq"
  | Short -> "short"
  | Ret -> "ret"
  | Loop -> "loop"

let shape_index = function
  | Simple -> 0
  | Nested -> 1
  | Freq -> 2
  | Short -> 3
  | Ret -> 4
  | Loop -> 5

type t = {
  st : Random.State.t;
  counts : int array;
  mutable generated : int;
  mutable cold_programs : int;
  mutable irregular_programs : int;
}

let create ~seed =
  {
    st = Random.State.make [| seed; 0x05eed |];
    counts = Array.make (List.length all_shapes) 0;
    generated = 0;
    cold_programs = 0;
    irregular_programs = 0;
  }

let reg = Reg.of_int
let ri st lo hi = lo + Random.State.int st (hi - lo + 1)

(* Arm filler: accumulator-mutating ALU ops, so every arm defines a
   register that is live at the join (select-µops are counted). *)
let arm f st acc n =
  for _ = 1 to n do
    match Random.State.int st 3 with
    | 0 -> B.add f acc acc (B.imm (1 + Random.State.int st 7))
    | 1 -> B.sub f acc acc (B.imm (1 + Random.State.int st 7))
    | _ -> B.xor f acc acc (B.imm (1 + Random.State.int st 255))
  done

(* Shared driver skeleton: read one value per iteration, run the motif
   body, consume the accumulator, loop [iters] times. The outer back
   branch iterates far beyond LOOP_ITER, so it is never itself selected
   as a diverge loop branch. *)
let driver st ~emit_body =
  let f = B.func "main" in
  let v = reg 4 and n = reg 6 and acc = reg 7 in
  let iters = ri st 400 1200 in
  B.li f n iters;
  B.label f "loop";
  B.read f v;
  emit_body f ~v ~acc;
  B.label f "latch";
  B.add f acc acc (B.reg v);
  B.write f acc;
  B.sub f n n (B.imm 1);
  B.branch f Term.Gt n (B.imm 0) ~target:"loop" ();
  B.label f "end";
  B.halt f;
  (f, iters)

(* Unpredictable two-arm hammock; arm sizes pick between the short
   regime (< SHORT_MAX_INSTS on every path) and the plain-simple regime
   (past it, still under MAX_INSTR). *)
let hammock_body st ~lo ~hi f ~v ~acc =
  let c = reg 5 in
  let modulus = ri st 2 3 in
  B.rem f c v (B.imm modulus);
  B.branch f Term.Ne c (B.imm 0) ~target:"then" ();
  B.label f "else";
  arm f st acc (ri st lo hi);
  B.jump f "join";
  B.label f "then";
  arm f st acc (ri st lo hi);
  B.label f "join";
  B.nop f

(* Meldable variant of the simple hammock: both arms carry an identical
   unpredicable [write] plus an identical ALU tail, with differing
   predicable gaps up front. Software if-conversion must reject the
   region (the write cannot be predicated), while DARM-style melding
   hoists the shared suffix and predicates the gaps — this keeps the
   melding pass demonstrably exercised by the generated corpus. Arm
   sizes stay past the short-hammock bound so the hardware side still
   classifies the branch as a plain simple hammock. *)
let meldable_body st f ~v ~acc =
  let c = reg 5 in
  let modulus = ri st 2 3 in
  let gaps = ri st 2 4 in
  let shared_tail = ri st 10 14 in
  let tail_imm = 1 + Random.State.int st 7 in
  let emit_arm gap_op =
    for _ = 1 to gaps do
      gap_op acc (B.imm (1 + Random.State.int st 7))
    done;
    B.write f acc;
    for _ = 1 to shared_tail do
      B.add f acc acc (B.imm tail_imm)
    done
  in
  B.rem f c v (B.imm modulus);
  B.branch f Term.Ne c (B.imm 0) ~target:"then" ();
  B.label f "else";
  emit_arm (fun d s -> B.sub f d d s);
  B.jump f "join";
  B.label f "then";
  emit_arm (fun d s -> B.add f d d s);
  B.label f "join";
  B.nop f

let simple_program st =
  let body =
    if Random.State.int st 2 = 0 then meldable_body st
    else hammock_body st ~lo:12 ~hi:20
  in
  let f, iters = driver st ~emit_body:body in
  (Program.of_funcs_exn ~main:"main" [ B.finish f ], iters)

let short_program st =
  let f, iters = driver st ~emit_body:(hammock_body st ~lo:1 ~hi:3) in
  (Program.of_funcs_exn ~main:"main" [ B.finish f ], iters)

(* Outer hammock whose then-side contains an inner hammock: the outer
   branch classifies as a nested hammock (conditional branch inside the
   region), with each side past the short-hammock bound. *)
let nested_body st f ~v ~acc =
  let c = reg 5 and c2 = reg 8 in
  B.rem f c v (B.imm 2);
  B.rem f c2 v (B.imm 5);
  B.branch f Term.Ne c (B.imm 0) ~target:"then" ();
  B.label f "else";
  arm f st acc 9;
  B.jump f "join";
  B.label f "then";
  B.branch f Term.Lt c2 (B.imm 2) ~target:"then_a" ~fall:"then_b" ();
  B.label f "then_b";
  arm f st acc 9;
  B.jump f "join";
  B.label f "then_a";
  arm f st acc 9;
  B.label f "join";
  B.nop f

let nested_program st =
  let f, iters = driver st ~emit_body:(nested_body st) in
  (Program.of_funcs_exn ~main:"main" [ B.finish f ], iters)

(* Taken side rarely escapes to a cold path longer than MAX_INSTR that
   bypasses the join: the exact algorithm rejects the branch, Alg-freq
   finds the join as an approximate CFM point. The escape rate keeps
   the merge probability under the short-hammock threshold. *)
let freq_body st f ~v ~acc =
  let c = reg 5 and rare = reg 8 in
  let rare_pct = ri st 8 15 in
  let cold_len = ri st 55 110 in
  B.rem f c v (B.imm 2);
  B.rem f rare v (B.imm 100);
  B.alu f Instr.Slt rare rare (B.imm rare_pct);
  B.branch f Term.Ne c (B.imm 0) ~target:"hot_t" ();
  B.label f "hot_nt";
  arm f st acc (ri st 1 4);
  B.jump f "join";
  B.label f "hot_t";
  arm f st acc (ri st 1 4);
  B.branch f Term.Ne rare (B.imm 0) ~target:"cold" ();
  B.label f "hot_t2";
  B.add f acc acc (B.imm 2);
  B.jump f "join";
  B.label f "cold";
  arm f st acc cold_len;
  B.jump f "after_join";
  B.label f "join";
  B.add f acc acc (B.reg v);
  B.label f "after_join";
  B.nop f

let freq_program st =
  let f, iters = driver st ~emit_body:(freq_body st) in
  (Program.of_funcs_exn ~main:"main" [ B.finish f ], iters)

(* Caller + callee whose arms return separately: no intra-function
   post-dominator, both sides reach returns — the return-CFM shape. *)
let ret_program st =
  let callee = B.func "decide" in
  B.branch callee Term.Ne (reg 4) (B.imm 0) ~target:"a" ();
  B.label callee "b";
  arm callee st (reg 7) (ri st 1 6);
  B.ret callee;
  B.label callee "a";
  arm callee st (reg 7) (ri st 1 6);
  B.ret callee;
  let callee = B.finish callee in
  let f, iters =
    driver st ~emit_body:(fun f ~v ~acc:_ ->
        B.rem f (reg 4) v (B.imm (ri st 2 3));
        B.call f "decide")
  in
  (Program.of_funcs_exn ~main:"main" [ B.finish f; callee ], iters)

(* Data-dependent inner loop with a small body and few iterations:
   passes all three Section 5.2 loop heuristics. *)
let loop_body st f ~v ~acc =
  let trip = reg 5 in
  let modulus = ri st 3 6 in
  let body = ri st 1 3 in
  B.rem f trip v (B.imm modulus);
  B.add f trip trip (B.imm 1);
  B.label f "inner";
  arm f st acc body;
  B.sub f trip trip (B.imm 1);
  B.branch f Term.Gt trip (B.imm 0) ~target:"inner" ();
  B.label f "after_inner";
  B.nop f

let loop_program st =
  let f, iters = driver st ~emit_body:(loop_body st) in
  (Program.of_funcs_exn ~main:"main" [ B.finish f ], iters)

(* Never-called function: whole-function cold code, exercising the
   analyses and the validator on zero-weight regions. *)
let cold_func st =
  let f = B.func "never_called" in
  B.branch f Term.Gt (reg 20) (B.imm (ri st 0 7)) ~target:"a" ();
  B.label f "b";
  arm f st (reg 21) (ri st 1 5);
  B.ret f;
  B.label f "a";
  arm f st (reg 21) (ri st 1 5);
  B.ret f;
  B.finish f

(* Irregular random CFG (fuel-guarded against non-termination), for
   shapes no motif anticipates. *)
let irregular_program st =
  let nblocks = ri st 3 10 in
  let f = B.func "main" in
  let lbl i = Printf.sprintf "b%d" i in
  let fuel = reg 15 in
  B.li f fuel 3000;
  B.jump f (lbl 0);
  for i = 0 to nblocks - 1 do
    B.label f (lbl i);
    B.sub f fuel fuel (B.imm 1);
    B.branch f Term.Le fuel (B.imm 0) ~target:"end" ~fall:(lbl i ^ "_body")
      ();
    B.label f (lbl i ^ "_body");
    for _ = 1 to 1 + Random.State.int st 3 do
      let d = reg (4 + Random.State.int st 8) in
      let s = reg (4 + Random.State.int st 8) in
      B.alu f
        (match Random.State.int st 4 with
        | 0 -> Instr.Add
        | 1 -> Instr.Sub
        | 2 -> Instr.Xor
        | _ -> Instr.And)
        d s
        (B.imm (Random.State.int st 16))
    done;
    let target () = lbl (Random.State.int st nblocks) in
    match Random.State.int st 4 with
    | 0 -> B.jump f (target ())
    | 1 | 2 ->
        let c = reg (4 + Random.State.int st 8) in
        B.branch f Term.Gt c (B.imm (Random.State.int st 8))
          ~target:(target ()) ~fall:(target ()) ()
    | _ -> B.jump f "end"
  done;
  B.label f "end";
  B.halt f;
  Program.of_funcs_exn ~main:"main" [ B.finish f ]

let motif = function
  | Simple -> simple_program
  | Nested -> nested_program
  | Freq -> freq_program
  | Short -> short_program
  | Ret -> ret_program
  | Loop -> loop_program

let uncovered t =
  List.filter (fun s -> t.counts.(shape_index s) = 0) all_shapes

let next t =
  let st = t.st in
  t.generated <- t.generated + 1;
  let pick_shape shapes =
    List.nth shapes (Random.State.int st (List.length shapes))
  in
  let choice =
    match uncovered t with
    | [] ->
        if Random.State.float st 1.0 < 0.25 then `Irregular
        else `Shape (pick_shape all_shapes)
    | us -> `Shape (pick_shape us)
  in
  match choice with
  | `Irregular ->
      t.irregular_programs <- t.irregular_programs + 1;
      (irregular_program st, [||])
  | `Shape s ->
      let program, iters = (motif s) st in
      let program =
        (* Cold decoration: occasionally append a never-called
           function. *)
        if Random.State.float st 1.0 < 0.35 then begin
          t.cold_programs <- t.cold_programs + 1;
          let funcs =
            Array.to_list program.Program.funcs @ [ cold_func st ]
          in
          Program.of_funcs_exn ~main:"main" funcs
        end
        else program
      in
      let input =
        Array.init (iters + 16) (fun _ -> Random.State.int st 1_000_000)
      in
      (program, input)

let classify (d : Dmp_core.Annotation.diverge) =
  match d.Dmp_core.Annotation.kind with
  | Dmp_core.Annotation.Loop_branch -> Loop
  | _ when d.Dmp_core.Annotation.always_predicate -> Short
  | _ when d.Dmp_core.Annotation.return_cfm -> Ret
  | Dmp_core.Annotation.Simple_hammock -> Simple
  | Dmp_core.Annotation.Nested_hammock -> Nested
  | Dmp_core.Annotation.Frequently_hammock -> Freq

let note t ann =
  Dmp_core.Annotation.iter
    (fun d ->
      let i = shape_index (classify d) in
      t.counts.(i) <- t.counts.(i) + 1)
    ann

let generated t = t.generated
let covered t s = t.counts.(shape_index s)
let all_covered t = uncovered t = []

let coverage_report t =
  let per =
    String.concat " "
      (List.map
         (fun s ->
           Printf.sprintf "%s=%d" (shape_to_string s) (covered t s))
         all_shapes)
  in
  Printf.sprintf
    "coverage: %s (%d/%d shapes) over %d programs (%d with cold code, %d \
     irregular)"
    per
    (List.length all_shapes - List.length (uncovered t))
    (List.length all_shapes) t.generated t.cold_programs
    t.irregular_programs
