(** Checking-suite driver: runs the invariant validator and the
    differential oracle over registered benchmarks and over
    coverage-guided random programs. Used by [dmp check] and the test
    suite. *)

open Dmp_ir
open Dmp_core
open Dmp_workload

val configs : (string * Select.config) list
(** The selection configurations every program is validated under
    (the paper's all-best-heur and all-best-cost). *)

val mutate_annotation : Linked.t -> Annotation.t -> int option
(** Mutation smoke-test helper: corrupt the first hammock CFM of the
    annotation to point at its function's entry block (unreachable from
    the branch's successors in any non-cyclic prologue), in place.
    Returns the branch address mutated, or [None] if the annotation has
    no hammock CFM. *)

val check_program :
  ?max_insts:int -> ?mutate:bool -> ?mutate_transform:bool ->
  ?gen:Generator.t -> Linked.t -> input:int array -> Diagnostic.t list
(** Capture a trace, profile it, select under every configuration in
    {!configs}, validate structure and annotations, run the full
    differential oracle, and validate the software-predication
    pipeline ({!Dmp_transform.Pipeline}) against the transform
    equivalence oracle. With [mutate], the first configuration's
    annotation is corrupted via {!mutate_annotation} first (the result
    must then contain errors). With [mutate_transform], the
    transformed program's selects get their operands swapped instead
    (exchanging the predicated arms) — the transform oracle must
    object. With [gen], the
    heuristic annotation's shapes are recorded for coverage
    guidance. *)

type outcome = { name : string; diagnostics : Diagnostic.t list }

val check_benchmark :
  ?max_insts:int -> ?mutate:bool -> ?mutate_transform:bool ->
  set:Input_gen.set -> Spec.t -> outcome

val check_random :
  ?max_insts:int -> n:int -> seed:int -> unit ->
  outcome list * Generator.t
(** Generate and check [n] random programs; diagnostics of program [i]
    are reported under the name ["random-i"]. Returns the generator so
    callers can render its coverage report. *)
