open Dmp_ir
open Dmp_exec
open Dmp_core
open Dmp_workload
module D = Diagnostic

let tag label ds =
  List.map
    (fun d -> { d with D.message = "[" ^ label ^ "] " ^ d.D.message })
    ds

let configs =
  [ ("all-best-heur", Select.all_heuristic);
    ("all-best-cost", Select.all_cost) ]

let mutate_annotation linked ann =
  let target =
    Annotation.fold
      (fun d acc ->
        match acc with
        | Some _ -> acc
        | None ->
            if
              List.exists
                (fun c -> c.Annotation.cfm_addr >= 0)
                d.Annotation.cfms
            then Some d
            else None)
      ann None
  in
  match target with
  | None -> None
  | Some d ->
      let l = Linked.loc linked d.Annotation.branch_addr in
      let entry_addr =
        Linked.block_addr linked ~func:l.Linked.func ~block:0
      in
      let mutated =
        List.find
          (fun c -> c.Annotation.cfm_addr >= 0)
          d.Annotation.cfms
      in
      Annotation.replace ann
        { d with
          Annotation.cfms =
            [ { mutated with Annotation.cfm_addr = entry_addr } ] };
      Some d.Annotation.branch_addr

let check_program ?max_insts ?(mutate = false) ?(mutate_transform = false)
    ?gen linked ~input =
  let trace = Trace.capture ?max_insts linked ~input in
  let image = Image.of_trace trace in
  let profile = Dmp_profile.Profile.collect_trace ?max_insts linked trace in
  let structural =
    Invariants.check_linked linked
    @ Invariants.check_context (Context.create linked profile)
  in
  let annotated =
    List.map
      (fun (label, (config : Select.config)) ->
        (label, config, Select.run ~config linked profile))
      configs
  in
  (match (gen, annotated) with
  | Some g, (_, _, ann) :: _ -> Generator.note g ann
  | _ -> ());
  (if mutate then
     match annotated with
     | (_, _, ann) :: _ -> ignore (mutate_annotation linked ann)
     | [] -> ());
  let ann_checks =
    List.concat_map
      (fun (label, (config : Select.config), ann) ->
        let ctx =
          Context.create ~params:config.Select.params linked profile
        in
        tag label
          (Invariants.check_annotation ctx ~mode:config.Select.mode ann))
      annotated
  in
  let oracle =
    Oracle.check_streams ?max_insts linked ~input trace image
    @ Oracle.check_sims ?max_insts linked ~input trace image
    @ List.concat_map
        (fun (label, _, ann) ->
          Oracle.check_dmp_sim ?max_insts ~label:("dmp[" ^ label ^ "]") ann
            linked ~input trace image)
        annotated
    @ Oracle.check_profiles ?max_insts linked ~input trace
  in
  (* Dynamic merge-point provider: simulate with the small Merge Point
     Table, harvest every trained prediction and validate each against
     the true CFG. With [mutate], the first prediction is corrupted to
     the program entry (a different function, or at best a block no
     branch successor reaches) — the checker must object. *)
  let mpp =
    let sim =
      Dmp_uarch.Sim.create_image
        ~config:(Dmp_uarch.Config.dmp_dynamic Dmp_mpp.Mpt.small)
        ?max_insts linked image
    in
    ignore (Dmp_uarch.Sim.run_to_completion sim);
    let preds = Dmp_uarch.Sim.merge_predictions sim in
    let preds =
      if mutate then
        match preds with
        | (branch, _, conf) :: rest -> (branch, -1, conf) :: rest
        | [] ->
            (* No trained entry (tiny trace): fabricate a corrupt one so
               the mutation smoke still bites. *)
            [ (Linked.entry_addr linked, -1, 1) ]
      else preds
    in
    tag "mpp" (Invariants.check_predicted_merges linked preds)
  in
  (* Software-predication pipeline: the transformed program must pass
     the structural invariants and be architecturally equivalent to
     the original on this input. With [mutate_transform], every
     emitted select has its operands swapped (the predicated arms
     exchanged — a deliberately wrong conversion) and the equivalence
     oracle must object. *)
  let transform =
    let res = Dmp_transform.Pipeline.run linked profile in
    if mutate_transform then
      match
        Dmp_transform.Mutate.swap_selects
          res.Dmp_transform.Pipeline.program
      with
      | None ->
          [ D.error ~rule:"transform-mutation"
              "mutation smoke requested but the transform emitted no \
               select instruction to corrupt" ]
      | Some corrupted ->
          Oracle.check_transform ?max_insts ~original:linked
            ~transformed:(Linked.link corrupted)
            ~ignore_regs:res.Dmp_transform.Pipeline.fresh_regs ~input ()
    else if res.Dmp_transform.Pipeline.changed then
      tag "transform"
        (Invariants.check_linked res.Dmp_transform.Pipeline.linked)
      @ Oracle.check_transform ?max_insts ~original:linked
          ~transformed:res.Dmp_transform.Pipeline.linked
          ~ignore_regs:res.Dmp_transform.Pipeline.fresh_regs ~input ()
    else []
  in
  structural @ ann_checks @ oracle @ mpp @ transform

type outcome = { name : string; diagnostics : Diagnostic.t list }

let check_benchmark ?max_insts ?mutate ?mutate_transform ~set spec =
  let linked = Spec.linked spec in
  let input = spec.Spec.input set in
  { name = spec.Spec.name;
    diagnostics =
      check_program ?max_insts ?mutate ?mutate_transform linked ~input }

let check_random ?max_insts ~n ~seed () =
  let gen = Generator.create ~seed in
  let outcomes =
    List.init n (fun i ->
        let program, input = Generator.next gen in
        let linked = Linked.link program in
        { name = Printf.sprintf "random-%d" (i + 1);
          diagnostics = check_program ?max_insts ~gen linked ~input })
  in
  (outcomes, gen)
