open Dmp_ir
open Dmp_cfg
open Dmp_core
module D = Diagnostic

let feq a b =
  Float.abs (a -. b)
  <= 1e-9 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let check_linked linked =
  match Program.validate linked.Linked.program with
  | Ok () -> []
  | Error m -> [ D.error ~rule:"program-invalid" m ]

(* ---- CFG / dominator / post-dominator / loop well-formedness ---- *)

let strict_dominators dom v =
  let rec go acc v =
    match Dom.idom dom v with None -> acc | Some d -> go (d :: acc) d
  in
  go [] v

let strict_postdominators pd v =
  let rec go acc v =
    match Postdom.ipostdom pd v with None -> acc | Some d -> go (d :: acc) d
  in
  go [] v

let check_fn ctx func =
  let fn = Context.fn ctx func in
  let cfg = fn.Context.cfg in
  let dom = fn.Context.dom in
  let pd = fn.Context.postdom in
  let n = Cfg.num_nodes cfg in
  let reach = Cfg.reachable cfg in
  let out = ref [] in
  let err ?block ?addr rule msg = out := D.error ~func ?block ?addr ~rule msg :: !out in
  for b = 0 to n - 1 do
    (* Terminator targets in range (re-asserted independently of the
       builder, so hand-constructed or mutated IR is caught too). *)
    List.iter
      (fun s ->
        if s < 0 || s >= n then
          err ~block:b "target-range"
            (Printf.sprintf "successor %d out of range [0,%d)" s n))
      (Cfg.successor_blocks cfg b);
    if Dom.reachable dom b <> reach.(b) then
      err ~block:b "dom-reachable"
        "dominator-tree reachability disagrees with CFG reachability";
    if reach.(b) then begin
      (match Dom.idom dom b with
      | None ->
          if b <> Cfg.entry then
            err ~block:b "idom-missing" "reachable non-entry block has no idom"
      | Some d ->
          if b = Cfg.entry then
            err ~block:b "idom-entry" "entry block has an immediate dominator"
          else if not (Dom.strictly_dominates dom d b) then
            err ~block:b "idom-not-strict"
              (Printf.sprintf "idom %d does not strictly dominate %d" d b));
      (* Per-edge closure: every strict dominator of [s] dominates each
         of its predecessors [b]. *)
      List.iter
        (fun s ->
          List.iter
            (fun w ->
              if not (Dom.dominates dom w b) then
                err ~block:s "dom-edge"
                  (Printf.sprintf
                     "strict dominator %d of %d does not dominate \
                      predecessor %d"
                     w s b))
            (strict_dominators dom s))
        (Cfg.successor_blocks cfg b);
      (* Dual closure on the post-dominator tree: every strict
         post-dominator of [b] post-dominates each successor. *)
      if Postdom.reaches_exit pd b then
        List.iter
          (fun s ->
            List.iter
              (fun w ->
                if not (w = s || Postdom.postdominates pd w s) then
                  err ~block:b "postdom-edge"
                    (Printf.sprintf
                       "strict post-dominator %d of %d does not \
                        post-dominate successor %d"
                       w b s))
              (strict_postdominators pd b))
          (Cfg.successor_blocks cfg b)
    end
  done;
  let unreachable = ref 0 in
  Array.iteri (fun _ r -> if not r then incr unreachable) reach;
  if !unreachable > 0 then
    out :=
      D.warning ~func ~rule:"unreachable-block"
        (Printf.sprintf "%d block(s) unreachable from the entry" !unreachable)
      :: !out;
  List.iter
    (fun (loop : Loops.loop) ->
      let inside b = List.exists (Int.equal b) loop.Loops.body in
      let h = loop.Loops.header in
      if not (inside h) then
        err ~block:h "loop-header" "loop header not in its own body";
      List.iter
        (fun (latch, target) ->
          if target <> h then
            err ~block:latch "loop-back-edge"
              (Printf.sprintf "back edge targets %d, not the header %d" target
                 h);
          if not (inside latch) then
            err ~block:latch "loop-back-edge" "latch outside the loop body";
          if not (List.exists (Int.equal h) (Cfg.successor_blocks cfg latch))
          then
            err ~block:latch "loop-back-edge"
              "latch has no edge to the loop header")
        loop.Loops.back_edges;
      List.iter
        (fun b ->
          if reach.(b) && not (Dom.dominates dom h b) then
            err ~block:b "loop-body-dom"
              (Printf.sprintf "header %d does not dominate body block %d" h b))
        loop.Loops.body;
      List.iter
        (fun b ->
          if not (inside b) then
            err ~block:b "loop-exit-branch" "exit branch outside the body"
          else if not (Cfg.is_conditional cfg b) then
            err ~block:b "loop-exit-branch" "exit branch is not conditional"
          else if
            not
              (List.exists
                 (fun s -> not (inside s))
                 (Cfg.successor_blocks cfg b))
          then
            err ~block:b "loop-exit-branch"
              "exit branch has no successor outside the body")
        loop.Loops.exit_branches)
    fn.Context.loops;
  List.rev !out

let check_context ctx =
  List.concat
    (List.init (Context.num_fns ctx) (fun func -> check_fn ctx func))

(* ---- annotation legality ---- *)

let block_term cfg b = (Cfg.block cfg b).Block.term

let reaches_return cfg reach =
  let n = Cfg.num_nodes cfg in
  let found = ref false in
  for b = 0 to n - 1 do
    if reach.(b) then
      match block_term cfg b with Term.Ret -> found := true | _ -> ()
  done;
  !found

let check_diverge ctx ~mode (d : Annotation.diverge) =
  let linked = ctx.Context.linked in
  let params = ctx.Context.params in
  let heuristic = match mode with Select.Heuristic -> true | _ -> false in
  let out = ref [] in
  let addr = d.Annotation.branch_addr in
  let err ?func ?block ?a rule msg =
    out := D.error ?func ?block ~addr:(Option.value a ~default:addr) ~rule msg :: !out
  in
  if addr < 0 || addr >= Linked.size linked then
    err "branch-range"
      (Printf.sprintf "diverge branch address %d outside the program" addr)
  else if not (Linked.is_conditional_branch linked addr) then
    err "branch-not-conditional"
      "diverge branch address is not a conditional-branch terminator"
  else begin
    let l = Linked.loc linked addr in
    let func = l.Linked.func and block = l.Linked.block in
    let fn = Context.fn ctx func in
    let cfg = fn.Context.cfg in
    let err ?block:b ?a rule msg = err ~func ?block:b ?a rule msg in
    let hammock_cfms =
      List.filter (fun c -> c.Annotation.cfm_addr >= 0) d.Annotation.cfms
    in
    let ret_entries =
      List.filter (fun c -> c.Annotation.cfm_addr < 0) d.Annotation.cfms
    in
    if List.length hammock_cfms > params.Params.max_cfm then
      err ~block "max-cfm"
        (Printf.sprintf "%d CFM points exceed MAX_CFM=%d"
           (List.length hammock_cfms) params.Params.max_cfm);
    if List.length ret_entries > 1 then
      err ~block "ret-pseudo" "more than one return-CFM pseudo entry";
    if ret_entries <> [] && not d.Annotation.return_cfm then
      err ~block "ret-pseudo"
        "negative CFM address on a branch without return_cfm";
    let is_loop_kind = d.Annotation.kind = Annotation.Loop_branch in
    if is_loop_kind <> (d.Annotation.loop <> None) then
      err ~block "loop-info"
        "Loop_branch kind and loop info must appear together";
    if is_loop_kind
       && (d.Annotation.cfms <> [] || d.Annotation.return_cfm
          || d.Annotation.always_predicate)
    then
      err ~block "loop-info"
        "loop diverge branch with hammock CFMs / return CFM / \
         always-predicate";
    if (not is_loop_kind)
       && Loops.loop_of_branch fn.Context.loops block <> None
    then
      err ~block "hammock-on-loop-exit"
        "hammock diverge branch on a loop exit branch (Section 5.2 \
         reserves these for the loop mechanism)";
    let succs = Cfg.branch_successors cfg block in
    let reach_t, reach_nt =
      match succs with
      | Some (t, f) ->
          (Cfg.reachable_from cfg t, Cfg.reachable_from cfg f)
      | None -> (* unreachable: is_conditional_branch held *)
          (Array.make (Cfg.num_nodes cfg) true,
           Array.make (Cfg.num_nodes cfg) true)
    in
    (* Per-CFM structural checks (return-CFM pseudo entries have a
       negative address and no block to anchor to). *)
    List.iter
      (fun (cfm : Annotation.cfm) ->
        let caddr = cfm.Annotation.cfm_addr in
        if caddr < 0 then ()
        else if caddr >= Linked.size linked then
          err ~block ~a:caddr "cfm-range"
            (Printf.sprintf "CFM address %d outside the program" caddr)
        else begin
          let cf, cb = Linked.block_of_addr linked caddr in
          if cf <> func then
            err ~block ~a:caddr "cfm-function"
              (Printf.sprintf "CFM %d lies in function %d, branch in %d"
                 caddr cf func)
          else begin
            if Linked.block_addr linked ~func:cf ~block:cb <> caddr then
              err ~block:cb ~a:caddr "cfm-not-block-start"
                (Printf.sprintf "CFM address %d is not the start of a block"
                   caddr);
            if not (reach_t.(cb) && reach_nt.(cb)) then
              err ~block:cb ~a:caddr "cfm-unreachable"
                (Printf.sprintf
                   "CFM %d not reachable from the %s side of the branch"
                   caddr
                   (if not (reach_t.(cb) || reach_nt.(cb)) then "taken or \
                      not-taken"
                    else if not reach_t.(cb) then "taken"
                    else "not-taken"));
            if cfm.Annotation.exact
               && Postdom.ipostdom fn.Context.postdom block <> Some cb
            then
              err ~block:cb ~a:caddr "cfm-not-iposdom"
                "exact CFM is not the branch's immediate post-dominator"
          end
        end;
        if cfm.Annotation.merge_prob < 0. || cfm.Annotation.merge_prob > 1.
        then
          err ~block ~a:caddr "merge-prob-range"
            (Printf.sprintf "merge probability %g outside [0, 1]"
               cfm.Annotation.merge_prob);
        if cfm.Annotation.select_uops < 0 then
          err ~block ~a:caddr "selects-negative" "negative select-µop count";
        if heuristic
           && caddr >= 0
           && d.Annotation.kind = Annotation.Frequently_hammock
           && (not d.Annotation.always_predicate)
           && cfm.Annotation.merge_prob < params.Params.min_merge_prob
        then
          err ~block ~a:caddr "merge-prob-threshold"
            (Printf.sprintf "merge probability %g below MIN_MERGE_PROB=%g"
               cfm.Annotation.merge_prob params.Params.min_merge_prob))
      d.Annotation.cfms;
    if hammock_cfms = [] && (not d.Annotation.return_cfm) && not is_loop_kind
    then
      out :=
        D.warning ~func ~block ~addr ~rule:"cfm-less"
          "diverge branch with no CFM point and no return CFM (dual-path \
           until resolution)"
        :: !out;
    (* Semantic cross-check: re-run the deterministic per-branch
       analysis the annotation claims to come from. *)
    (match d.Annotation.kind with
    | Annotation.Loop_branch -> (
        match (d.Annotation.loop, Loop_select.candidate_of_branch ctx ~func ~block) with
        | None, _ -> () (* already reported as loop-info *)
        | Some _, None ->
            err ~block "loop-not-reconstructible"
              "no loop diverge candidate reconstructible for this branch"
        | Some li, Some lc ->
            if li.Annotation.body_insts <> lc.Loop_select.body_insts then
              err ~block "loop-body-insts"
                (Printf.sprintf "annotated body size %d, profiled %d"
                   li.Annotation.body_insts lc.Loop_select.body_insts);
            let exit_addr =
              Context.block_start_addr ctx ~func
                ~block:lc.Loop_select.exit_target
            in
            if li.Annotation.exit_target_addr <> exit_addr then
              err ~block "loop-exit-target"
                (Printf.sprintf
                   "annotated exit target %d, loop exits to block start %d"
                   li.Annotation.exit_target_addr exit_addr);
            if not (feq li.Annotation.avg_iterations
                      lc.Loop_select.avg_iterations)
            then
              err ~block "loop-avg-iter"
                (Printf.sprintf "annotated avg iterations %g, profiled %g"
                   li.Annotation.avg_iterations
                   lc.Loop_select.avg_iterations);
            if li.Annotation.loop_select_uops <> lc.Loop_select.select_uops
            then
              err ~block "loop-selects"
                (Printf.sprintf "annotated %d loop select-µops, computed %d"
                   li.Annotation.loop_select_uops lc.Loop_select.select_uops);
            if not (Loop_select.passes_heuristics params lc) then
              err ~block "loop-heuristics"
                (Printf.sprintf
                   "loop fails Section 5.2 heuristics (body %d insts, avg \
                    %.2f iterations)"
                   lc.Loop_select.body_insts lc.Loop_select.avg_iterations))
    | Annotation.Simple_hammock | Annotation.Nested_hammock
    | Annotation.Frequently_hammock ->
        let candidate =
          match d.Annotation.kind with
          | Annotation.Frequently_hammock ->
              Alg_freq.candidate_of_branch ~apply_min_merge_prob:heuristic
                ctx ~func ~block
          | _ -> Alg_exact.candidate_of_branch ctx ~func ~block
        in
        (match candidate with
        | None ->
            err ~block "candidate-not-reconstructible"
              (Printf.sprintf
                 "no %s candidate reconstructible for this branch"
                 (Annotation.branch_kind_to_string d.Annotation.kind))
        | Some c ->
            if c.Candidate.kind <> d.Annotation.kind then
              err ~block "kind-mismatch"
                (Printf.sprintf "annotated %s, analysis classifies %s"
                   (Annotation.branch_kind_to_string d.Annotation.kind)
                   (Annotation.branch_kind_to_string c.Candidate.kind));
            let matched =
              List.filter_map
                (fun (cfm : Annotation.cfm) ->
                  if cfm.Annotation.cfm_addr < 0 then None
                  else
                    match
                      List.find_opt
                        (fun (m : Candidate.cfm_candidate) ->
                          m.Candidate.cfm_addr = cfm.Annotation.cfm_addr)
                        c.Candidate.cfms
                    with
                    | None ->
                        err ~block ~a:cfm.Annotation.cfm_addr
                          "cfm-not-candidate"
                          (Printf.sprintf
                             "CFM %d is not a CFM candidate of this branch"
                             cfm.Annotation.cfm_addr);
                        None
                    | Some m ->
                        if
                          not (feq m.Candidate.merge_prob
                                 cfm.Annotation.merge_prob)
                        then
                          err ~block ~a:cfm.Annotation.cfm_addr
                            "merge-prob-mismatch"
                            (Printf.sprintf
                               "annotated merge probability %g, profile \
                                says %g"
                               cfm.Annotation.merge_prob
                               m.Candidate.merge_prob);
                        if m.Candidate.select_uops
                           <> cfm.Annotation.select_uops
                        then
                          err ~block ~a:cfm.Annotation.cfm_addr
                            "selects-mismatch"
                            (Printf.sprintf
                               "annotated %d select-µops, liveness says %d"
                               cfm.Annotation.select_uops
                               m.Candidate.select_uops);
                        if m.Candidate.longest_t > params.Params.max_instr
                           || m.Candidate.longest_nt > params.Params.max_instr
                        then
                          err ~block ~a:cfm.Annotation.cfm_addr "max-instr"
                            (Printf.sprintf
                               "longest path %d/%d exceeds MAX_INSTR=%d"
                               m.Candidate.longest_t m.Candidate.longest_nt
                               params.Params.max_instr);
                        if m.Candidate.max_cbr > params.Params.max_cbr then
                          err ~block ~a:cfm.Annotation.cfm_addr "max-cbr"
                            (Printf.sprintf
                               "%d conditional branches exceed MAX_CBR=%d"
                               m.Candidate.max_cbr params.Params.max_cbr);
                        Some m)
                d.Annotation.cfms
            in
            if params.Params.chain_reduction && List.length matched >= 2
               && List.length (Chains.reduce matched) <> List.length matched
            then
              err ~block "cfm-chain"
                "annotated CFM set is not chain-reduced (one CFM lies on a \
                 path to another, Section 3.3.1)";
            if d.Annotation.always_predicate then begin
              if Candidate.misp_rate c < params.Params.short_min_misp_rate
              then
                err ~block "short-misp-rate"
                  (Printf.sprintf
                     "always-predicate branch mispredicts at %.3f, below \
                      the Section 3.4 threshold %.3f"
                     (Candidate.misp_rate c)
                     params.Params.short_min_misp_rate);
              if hammock_cfms = [] then
                err ~block "short-empty"
                  "always-predicate branch with no CFM point";
              List.iter
                (fun (m : Candidate.cfm_candidate) ->
                  if m.Candidate.longest_t >= params.Params.short_max_insts
                     || m.Candidate.longest_nt
                        >= params.Params.short_max_insts
                     || m.Candidate.merge_prob
                        < params.Params.short_min_merge_prob
                  then
                    err ~block ~a:m.Candidate.cfm_addr "short-bounds"
                      (Printf.sprintf
                         "short hammock violates Section 3.4 bounds \
                          (paths %d/%d insts, merge %.3f)"
                         m.Candidate.longest_t m.Candidate.longest_nt
                         m.Candidate.merge_prob))
                matched
            end;
            if d.Annotation.return_cfm then begin
              let freq_c =
                match d.Annotation.kind with
                | Annotation.Frequently_hammock -> Some c
                | _ ->
                    Alg_freq.candidate_of_branch
                      ~apply_min_merge_prob:heuristic ctx ~func ~block
              in
              (match freq_c with
              | Some { Candidate.ret = Some r; _ } ->
                  if r.Candidate.ret_prob
                     < Float.max 0.01 params.Params.min_merge_prob
                  then
                    err ~block "ret-prob"
                      (Printf.sprintf
                         "return-CFM probability %.3f below the threshold"
                         r.Candidate.ret_prob)
              | Some { Candidate.ret = None; _ } | None ->
                  err ~block "ret-not-reconstructible"
                    "no return-merge evidence reconstructible for this \
                     branch");
              match succs with
              | None -> ()
              | Some _ ->
                  if not (reaches_return cfg reach_t) then
                    err ~block "ret-unreachable"
                      "taken side cannot reach a return";
                  if not (reaches_return cfg reach_nt) then
                    err ~block "ret-unreachable"
                      "not-taken side cannot reach a return"
            end))
  end;
  List.rev !out

let check_annotation ctx ~mode ann =
  Annotation.fold (fun d acc -> acc @ check_diverge ctx ~mode d) ann []

let default_params mode =
  match mode with
  | Select.Heuristic -> Params.default
  | Select.Cost _ -> Params.for_cost_model

let check ?params ~mode linked profile ann =
  let params =
    match params with Some p -> p | None -> default_params mode
  in
  let ctx = Context.create ~params linked profile in
  check_linked linked @ check_context ctx @ check_annotation ctx ~mode ann

(* ---- dynamic merge-point predictions ---- *)

(* The Merge Point Table learns from retired control flow, so every
   prediction it ever makes must still be a structurally sane merge
   point: a conditional branch as the key, and a same-function merge
   address reachable from both successor sides. Unlike exact CFMs the
   predicted point need not be the IPOSDOM (the trained point is a
   dynamic reconvergence point, often earlier), so there is no
   mpp-not-iposdom rule. *)
let check_predicted_merges linked preds =
  let out = ref [] in
  let cfgs = Hashtbl.create 16 in
  let cfg_of func =
    match Hashtbl.find_opt cfgs func with
    | Some cfg -> cfg
    | None ->
        let cfg =
          Cfg.of_func linked.Linked.program.Program.funcs.(func)
        in
        Hashtbl.add cfgs func cfg;
        cfg
  in
  List.iter
    (fun (branch, merge, _conf) ->
      let err ?func ?block ~a rule msg =
        out := D.error ?func ?block ~addr:a ~rule msg :: !out
      in
      if branch < 0 || branch >= Linked.size linked then
        err ~a:branch "mpp-branch-out-of-range"
          (Printf.sprintf "predicted branch address %d outside the program"
             branch)
      else if not (Linked.is_conditional_branch linked branch) then
        err ~a:branch "mpp-branch-not-conditional"
          (Printf.sprintf
             "merge point predicted for %d, which is not a conditional \
              branch"
             branch)
      else begin
        let bf, bb = Linked.block_of_addr linked branch in
        if merge < 0 || merge >= Linked.size linked then
          err ~func:bf ~block:bb ~a:merge "mpp-merge-out-of-range"
            (Printf.sprintf "predicted merge address %d outside the program"
               merge)
        else begin
          let mf, mb = Linked.block_of_addr linked merge in
          if mf <> bf then
            err ~func:bf ~block:bb ~a:merge "mpp-merge-foreign-function"
              (Printf.sprintf
                 "predicted merge %d lies in function %d, branch in %d"
                 merge mf bf)
          else
            let cfg = cfg_of bf in
            match Cfg.branch_successors cfg bb with
            | None ->
                (* is_conditional_branch held, so the terminator is a
                   conditional branch; no successors means a malformed
                   CFG, already caught structurally. *)
                ()
            | Some (tk, ft) ->
                let reach_t = Cfg.reachable_from cfg tk in
                let reach_nt = Cfg.reachable_from cfg ft in
                if not (reach_t.(mb) && reach_nt.(mb)) then
                  err ~func:bf ~block:mb ~a:merge "mpp-merge-unreachable"
                    (Printf.sprintf
                       "predicted merge %d not reachable from the %s side \
                        of branch %d"
                       merge
                       (if not (reach_t.(mb) || reach_nt.(mb)) then
                          "taken or not-taken"
                        else if not reach_t.(mb) then "taken"
                        else "not-taken")
                       branch)
        end
      end)
    preds;
  List.rev !out
