open Dmp_ir
open Dmp_exec
open Dmp_uarch
module D = Diagnostic

let stats_mismatches a b =
  List.filter_map
    (fun ((fa, va), (fb, vb)) ->
      assert (fa = fb);
      if va <> vb then Some (fa, va, vb) else None)
    (List.combine (Stats.fields a) (Stats.fields b))

let pp_event = Fmt.to_to_string Event.pp

let check_streams ?max_insts linked ~input trace image =
  let out = ref [] in
  let err ?addr rule msg = out := D.error ?addr ~rule msg :: !out in
  let n = Trace.length trace in
  if Image.length image <> n then
    err "oracle-image-length"
      (Printf.sprintf "image has %d events, trace %d" (Image.length image) n);
  let live = Source.live (Emulator.create linked ~input) in
  let cur = Trace.cursor trace in
  let cap = match max_insts with Some m -> min m n | None -> n in
  let i = ref 0 in
  let diverged = ref false in
  while (not !diverged) && !i < cap do
    let la = Source.advance live in
    let ta = Trace.advance cur in
    if not (la && ta) then begin
      err "oracle-stream-length"
        (Printf.sprintf
           "at event %d: live stream %s, trace replay %s (trace length %d)"
           !i
           (if la then "continues" else "ends")
           (if ta then "continues" else "ends")
           n);
      diverged := true
    end
    else begin
      let el = Source.current_event live in
      let et = Trace.current_event cur in
      if el <> et then begin
        err ~addr:et.Event.addr "oracle-trace-divergence"
          (Printf.sprintf "first diverging event %d: live %s, replay %s" !i
             (pp_event el) (pp_event et));
        diverged := true
      end;
      (if !i < Image.length image then
         let ei = Image.event image !i in
         if et <> ei then begin
           err ~addr:et.Event.addr "oracle-image-divergence"
             (Printf.sprintf "first diverging event %d: replay %s, image %s"
                !i (pp_event et) (pp_event ei));
           diverged := true
         end);
      incr i
    end
  done;
  (* A complete trace must end exactly where the program halts. *)
  if (not !diverged) && cap = n && Trace.complete trace
     && max_insts = None && Source.advance live
  then
    err "oracle-stream-length"
      (Printf.sprintf
         "live stream continues past the %d events of a complete trace" n);
  List.rev !out

let diff_stats ?(rule = "oracle-stats") ~label ~left ~right a b =
  match stats_mismatches a b with
  | [] -> []
  | ms ->
      let fields =
        String.concat ", "
          (List.map
             (fun (f, va, vb) -> Printf.sprintf "%s %d/%d" f va vb)
             ms)
      in
      [
        D.errorf ~rule "%s: %s and %s statistics disagree on %d field(s): %s"
          label left right (List.length ms) fields;
      ]

let sim_diff ?max_insts linked ~input trace image ~label config annotation =
  let live = Sim.run ~config ?annotation ?max_insts linked ~input in
  let replay = Sim.run_replay ~config ?annotation ?max_insts linked trace in
  let img = Sim.run_image ~config ?annotation ?max_insts linked image in
  diff_stats ~label ~left:"live" ~right:"replay" live replay
  @ diff_stats ~label ~left:"live" ~right:"image" live img

let check_sims ?max_insts ?annotation linked ~input trace image =
  sim_diff ?max_insts linked ~input trace image ~label:"baseline"
    Config.baseline None
  @
  match annotation with
  | None -> []
  | Some ann ->
      sim_diff ?max_insts linked ~input trace image ~label:"dmp" Config.dmp
        (Some ann)

let check_dmp_sim ?max_insts ~label ann linked ~input trace image =
  sim_diff ?max_insts linked ~input trace image ~label Config.dmp (Some ann)

(* ---- checkpoints ---- *)

(* Cross-check the checkpointed execution machinery against the plain
   image simulation: the capturing run itself, a resume +
   run-to-completion from every captured checkpoint, and the merge of
   the per-segment deltas must all reproduce the plain run's
   statistics field-for-field. *)
let check_checkpoints ?max_insts ~label config annotation linked image =
  let rule = "oracle-checkpoint" in
  let full = Sim.run_image ~config ?annotation ?max_insts linked image in
  let interval = max 1 (Image.length image / 4) in
  let ck_stats, ckpts =
    Sim.run_image_checkpointed ~config ?annotation ?max_insts ~interval
      linked image
  in
  let capture =
    diff_stats ~rule ~label ~left:"image" ~right:"checkpointing-run" full
      ck_stats
  in
  let resumes =
    List.concat_map
      (fun ck ->
        let t =
          Sim.resume_image ~config ?annotation ?max_insts linked image ck
        in
        diff_stats ~rule ~label ~left:"image"
          ~right:(Printf.sprintf "resume@%d" (Checkpoint.consumed ck))
          full (Sim.run_to_completion t))
      ckpts
  in
  let rec deltas from = function
    | [] ->
        [
          Sim.run_image_segment ~config ?annotation ?max_insts ?from
            ~interval ~to_completion:true linked image;
        ]
    | ck :: tl ->
        Sim.run_image_segment ~config ?annotation ?max_insts ?from ~interval
          ~to_completion:false linked image
        :: deltas (Some ck) tl
  in
  let merged =
    List.fold_left Stats.merge (Stats.create ()) (deltas None ckpts)
  in
  capture @ resumes
  @ diff_stats ~rule ~label ~left:"image" ~right:"segment-merge" full merged

(* ---- profiles ---- *)

let profile_bytes p =
  Marshal.to_string (Dmp_profile.Profile.to_raw p) []

let profile_divergence ~left ~right linked a b =
  let module P = Dmp_profile.Profile in
  if String.equal (profile_bytes a) (profile_bytes b) then []
  else
    (* Serialised counters differ; pinpoint the first counter. *)
    let pin = ref [] in
    let err ?addr msg = pin := D.error ?addr ~rule:"oracle-profile" msg :: !pin in
    if P.retired a <> P.retired b then
      err
        (Printf.sprintf "%s retired %d, %s retired %d" left (P.retired a)
           right (P.retired b));
    let addrs =
      List.sort_uniq Int.compare (P.branch_addrs a @ P.branch_addrs b)
    in
    List.iter
      (fun addr ->
        match (P.branch a ~addr, P.branch b ~addr) with
        | None, None -> ()
        | Some _, None | None, Some _ ->
            err ~addr
              (Printf.sprintf "branch %d profiled by %s only" addr
                 (match P.branch a ~addr with Some _ -> left | None -> right))
        | Some ba, Some bb ->
            if
              ba.P.executed <> bb.P.executed
              || ba.P.taken <> bb.P.taken
              || ba.P.mispredicted <> bb.P.mispredicted
            then
              err ~addr
                (Printf.sprintf
                   "branch %d: %s exec/taken/misp %d/%d/%d, %s %d/%d/%d"
                   addr left ba.P.executed ba.P.taken ba.P.mispredicted
                   right bb.P.executed bb.P.taken bb.P.mispredicted))
      addrs;
    let program = linked.Linked.program in
    for func = 0 to Program.num_funcs program - 1 do
      let f = Program.func program func in
      for block = 0 to Func.num_blocks f - 1 do
        let ca = P.block_count a ~func ~block in
        let cb = P.block_count b ~func ~block in
        if ca <> cb then
          err
            ~addr:(Linked.block_addr linked ~func ~block)
            (Printf.sprintf "block %d.%d counted %d by %s, %d by %s" func
               block ca left cb right)
      done
    done;
    match List.rev !pin with
    | [] ->
        [
          D.errorf ~rule:"oracle-profile"
            "%s and %s profiles serialise differently but no counter \
             disagrees"
            left right;
        ]
    | first :: _ -> [ first ]

let check_profiles ?max_insts linked ~input trace =
  let module P = Dmp_profile.Profile in
  let p_live = P.collect ?max_insts linked ~input in
  let p_trace = P.collect_trace ?max_insts linked trace in
  let config = { Dmp_sampling.Sampler.mode = Periodic; period = 1; seed = 0 } in
  let sampler =
    Dmp_sampling.Sampler.collect_trace ?max_insts ~config linked trace
  in
  let coverage =
    if Dmp_sampling.Sampler.complete_coverage sampler then []
    else
      [
        D.error ~rule:"oracle-sampler-coverage"
          "period-1 periodic sampler reports incomplete coverage";
      ]
  in
  let p_rec = Dmp_sampling.Reconstruct.profile linked sampler in
  let flow =
    match Dmp_sampling.Reconstruct.flow_violations linked sampler with
    | [] -> []
    | (func, block, inflow, outflow) :: _ as vs ->
        [
          D.errorf ~func ~block ~rule:"oracle-flow"
            "%d flow-conservation violation(s); first at block %d.%d \
             (inflow %d, outflow %d)"
            (List.length vs) func block inflow outflow;
        ]
  in
  profile_divergence ~left:"live" ~right:"replay" linked p_live p_trace
  @ profile_divergence ~left:"exact" ~right:"period-1-sampled" linked
      p_trace p_rec
  @ coverage @ flow

(* ---- transform equivalence ---- *)

(* A software-predicated program retires a different instruction
   stream, so unlike the stream checks above there is no lockstep
   event diff: equivalence is architectural. Both programs replay the
   same input; the output stream, the retired-store sequence (location
   and stored value, in retirement order) and — when both runs halt —
   the final register file (minus the transform's scratch registers)
   and the final memory image must agree, with the first divergence
   pinpointed. Under a [max_insts] cap that cuts either run short,
   only the common prefix of outputs and stores is compared: the two
   programs make different per-instruction progress, so final-state
   comparison is only meaningful at a real halt. *)

let rec first_diff i a b =
  match (a, b) with
  | [], [] -> None
  | x :: a', y :: b' -> if x = y then first_diff (i + 1) a' b' else Some i
  | _ :: _, [] | [], _ :: _ -> Some i

let rec truncate n = function
  | x :: tl when n > 0 -> x :: truncate (n - 1) tl
  | _ -> []

let check_transform ?max_insts ?(label = "transform") ~original ~transformed
    ~ignore_regs ~input () =
  let run_side linked =
    let emu = Emulator.create linked ~input in
    let stores = ref [] in
    Emulator.iter ?max_insts emu (fun e ->
        match e.Event.kind with
        | Event.Mem { is_load = false; location } ->
            (* The store just retired, so the freshly written value is
               readable at its location. *)
            stores := (location, Emulator.mem_load emu location) :: !stores
        | _ -> ());
    (emu, List.rev !stores)
  in
  let o_emu, o_stores = run_side original in
  let t_emu, t_stores = run_side transformed in
  let both_halted = Emulator.halted o_emu && Emulator.halted t_emu in
  let out = ref [] in
  let err rule fmt =
    Printf.ksprintf
      (fun m ->
        out := D.error ~rule (Printf.sprintf "[%s] %s" label m) :: !out)
      fmt
  in
  (match max_insts with
  | None ->
      if Emulator.halted o_emu <> Emulator.halted t_emu then
        err "transform-termination"
          "original %s, transformed %s (retired %d vs %d)"
          (if Emulator.halted o_emu then "halts" else "runs on")
          (if Emulator.halted t_emu then "halts" else "runs on")
          (Emulator.retired o_emu) (Emulator.retired t_emu)
  | Some _ ->
      (* Capped runs stop mid-flight at different architectural
         points; termination cannot be compared. *)
      ());
  let compare_seq ~rule ~what o t =
    let o, t =
      if both_halted then (o, t)
      else
        let n = min (List.length o) (List.length t) in
        (truncate n o, truncate n t)
    in
    match first_diff 0 o t with
    | None -> ()
    | Some i ->
        let show l =
          match List.nth_opt l i with
          | Some v -> v
          | None -> Printf.sprintf "<ended at %d>" (List.length l)
        in
        err rule "first diverging %s at index %d: original %s, transformed %s"
          what i (show o) (show t)
  in
  compare_seq ~rule:"transform-output" ~what:"output value"
    (List.map string_of_int (Emulator.output o_emu))
    (List.map string_of_int (Emulator.output t_emu));
  compare_seq ~rule:"transform-stores" ~what:"retired store"
    (List.map
       (fun (l, v) -> Printf.sprintf "[%d]<-%d" l v)
       o_stores)
    (List.map (fun (l, v) -> Printf.sprintf "[%d]<-%d" l v) t_stores);
  if both_halted then begin
    let ignored r = List.exists (Reg.equal r) ignore_regs in
    let o_regs = Emulator.registers o_emu in
    let t_regs = Emulator.registers t_emu in
    (try
       for r = 0 to Reg.count - 1 do
         if (not (ignored (Reg.of_int r))) && o_regs.(r) <> t_regs.(r)
         then begin
           err "transform-registers"
             "final r%d: original %d, transformed %d" r o_regs.(r)
             t_regs.(r);
           raise Exit
         end
       done
     with Exit -> ());
    compare_seq ~rule:"transform-memory" ~what:"memory binding"
      (List.map
         (fun (l, v) -> Printf.sprintf "[%d]=%d" l v)
         (Emulator.memory_bindings o_emu))
      (List.map
         (fun (l, v) -> Printf.sprintf "[%d]=%d" l v)
         (Emulator.memory_bindings t_emu))
  end;
  List.rev !out

let run ?max_insts ?(annotations = []) linked ~input =
  let trace = Trace.capture ?max_insts linked ~input in
  let image = Image.of_trace trace in
  check_streams ?max_insts linked ~input trace image
  @ sim_diff ?max_insts linked ~input trace image ~label:"baseline"
      Config.baseline None
  @ check_checkpoints ?max_insts ~label:"baseline" Config.baseline None
      linked image
  @ List.concat_map
      (fun (label, ann) ->
        let label = Printf.sprintf "dmp[%s]" label in
        sim_diff ?max_insts linked ~input trace image ~label Config.dmp
          (Some ann)
        @ check_checkpoints ?max_insts ~label Config.dmp (Some ann) linked
            image)
      annotations
  @ check_profiles ?max_insts linked ~input trace
