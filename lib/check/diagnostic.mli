(** Structured diagnostics of the checking layer. Every violation the
    invariant validator or the differential oracle finds is reported as
    one diagnostic with a stable rule slug and the most precise
    location available (function / block / instruction address). *)

type severity = Error | Warning

type t = {
  severity : severity;
  rule : string;  (** stable kebab-case slug, e.g. ["cfm-unreachable"] *)
  func : int option;
  block : int option;
  addr : int option;  (** instruction address the violation anchors to *)
  message : string;
}

val error :
  ?func:int -> ?block:int -> ?addr:int -> rule:string -> string -> t

val warning :
  ?func:int -> ?block:int -> ?addr:int -> rule:string -> string -> t

val errorf :
  ?func:int -> ?block:int -> ?addr:int -> rule:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val is_error : t -> bool
val errors : t list -> t list
val has_errors : t list -> bool
val pp : t Fmt.t
