type t = {
  name : string;
  predict : addr:int -> bool;
  update : addr:int -> taken:bool -> unit;
  history : unit -> int;
  predict_with_history : history:int -> addr:int -> bool;
  shift_history : history:int -> taken:bool -> int;
  export_state : unit -> int array;
  import_state : int array -> unit;
}

let perceptron ?entries ?history_length () =
  let p = Perceptron.create ?entries ?history_length () in
  {
    name = "perceptron";
    predict = (fun ~addr -> Perceptron.predict p ~addr);
    update = (fun ~addr ~taken -> Perceptron.update p ~addr ~taken);
    history = (fun () -> Perceptron.history p);
    predict_with_history =
      (fun ~history ~addr -> Perceptron.predict_with_history p ~history ~addr);
    shift_history =
      (fun ~history ~taken -> Perceptron.shift p ~history ~taken);
    export_state = (fun () -> Perceptron.export p);
    import_state = (fun state -> Perceptron.import p state);
  }

let gshare ?log2_entries ?history_length () =
  let p = Gshare.create ?log2_entries ?history_length () in
  {
    name = "gshare";
    predict = (fun ~addr -> Gshare.predict p ~addr);
    update = (fun ~addr ~taken -> Gshare.update p ~addr ~taken);
    history = (fun () -> Gshare.history p);
    predict_with_history =
      (fun ~history ~addr -> Gshare.predict_with_history p ~history ~addr);
    shift_history = (fun ~history ~taken -> Gshare.shift p ~history ~taken);
    export_state = (fun () -> Gshare.export p);
    import_state = (fun state -> Gshare.import p state);
  }

let always ~taken =
  {
    name = (if taken then "always-taken" else "always-not-taken");
    predict = (fun ~addr:_ -> taken);
    update = (fun ~addr:_ ~taken:_ -> ());
    history = (fun () -> 0);
    predict_with_history = (fun ~history:_ ~addr:_ -> taken);
    shift_history = (fun ~history ~taken:_ -> history);
    export_state = (fun () -> [||]);
    import_state =
      (fun state ->
        if Array.length state <> 0 then
          invalid_arg "Predictor.import_state: state length mismatch");
  }

let of_name = function
  | "perceptron" -> perceptron ()
  | "gshare" -> gshare ()
  | "always-taken" -> always ~taken:true
  | "always-not-taken" -> always ~taken:false
  | name -> invalid_arg ("Predictor.of_name: unknown predictor " ^ name)
