(** Gshare predictor: 2-bit counters indexed by PC xor history. *)

type t

val create : ?log2_entries:int -> ?history_length:int -> unit -> t
val history : t -> int
val predict : t -> addr:int -> bool
val predict_with_history : t -> history:int -> addr:int -> bool
val shift : t -> history:int -> taken:bool -> int
val update : t -> addr:int -> taken:bool -> unit

val export : t -> int array
(** Flat snapshot of the mutable state (global history + counters). *)

val import : t -> int array -> unit
(** Restore an {!export} snapshot from an identically configured
    predictor. @raise Invalid_argument on a length mismatch. *)
