(* Classic gshare: a table of 2-bit saturating counters indexed by
   PC xor global history. Used as a comparison predictor and by the
   profiler's cheap misprediction estimate. *)

type t = {
  hist : History.t;
  table : int array;
  mutable history : int;
}

let create ?(log2_entries = 14) ?(history_length = 14) () =
  let hist = History.make history_length in
  { hist; table = Array.make (1 lsl log2_entries) 1; history = History.empty }

let history t = t.history

let index t ~history ~addr =
  (addr lxor History.fold t.hist history) land (Array.length t.table - 1)

let predict_with_history t ~history ~addr =
  t.table.(index t ~history ~addr) >= 2

let predict t ~addr = predict_with_history t ~history:t.history ~addr
let shift t ~history ~taken = History.shift t.hist history ~taken

let update t ~addr ~taken =
  let i = index t ~history:t.history ~addr in
  let c = t.table.(i) in
  t.table.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
  t.history <- History.shift t.hist t.history ~taken

(* Flat state snapshot: global history followed by the counter table. *)
let export t =
  let n = Array.length t.table in
  let out = Array.make (1 + n) 0 in
  out.(0) <- t.history;
  Array.blit t.table 0 out 1 n;
  out

let import t state =
  let n = Array.length t.table in
  if Array.length state <> 1 + n then
    invalid_arg "Gshare.import: state length mismatch";
  t.history <- state.(0);
  Array.blit state 1 t.table 0 n
