(** Uniform conditional-branch predictor interface.

    [predict]/[update] drive the architectural (correct-path) stream;
    [predict_with_history]/[shift_history] let the simulator's
    wrong-path and dynamic-predication fetch engines follow speculative
    predictions on a private history copy without polluting the tables.
    [export_state]/[import_state] snapshot and restore the underlying
    tables and history as one flat int array (for simulation
    checkpoints); a snapshot only imports into a predictor of the same
    kind and geometry. *)

type t = {
  name : string;
  predict : addr:int -> bool;
  update : addr:int -> taken:bool -> unit;
  history : unit -> int;
  predict_with_history : history:int -> addr:int -> bool;
  shift_history : history:int -> taken:bool -> int;
  export_state : unit -> int array;
  import_state : int array -> unit;
}

val perceptron : ?entries:int -> ?history_length:int -> unit -> t
(** The paper's baseline: perceptron predictor (Jiménez & Lin). *)

val gshare : ?log2_entries:int -> ?history_length:int -> unit -> t
val always : taken:bool -> t
val of_name : string -> t
