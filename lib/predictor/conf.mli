(** Enhanced JRS confidence estimator (Table 1 of the paper: 2KB,
    12-bit history, threshold 14). [estimate] classifies the pending
    prediction; [update] must be called with the resolved outcome. *)

type estimate = High_confidence | Low_confidence
type t

val create :
  ?log2_entries:int -> ?history_length:int -> ?threshold:int ->
  ?miss_decrement:int -> unit -> t

val estimate : t -> addr:int -> estimate
val update : t -> addr:int -> taken:bool -> mispredicted:bool -> unit
val is_low : estimate -> bool

val export : t -> int array
(** Flat snapshot of the mutable state (history + miss-distance
    counters), suitable for a {!Dmp_exec.Checkpoint} section. *)

val import : t -> int array -> unit
(** Restore an {!export} snapshot from an identically configured
    estimator. @raise Invalid_argument on a length mismatch. *)
