(* Enhanced JRS confidence estimator (Jacobsen, Rotenberg & Smith,
   MICRO-29; enhancement per Grunwald et al., ISCA-25): a table of
   saturating miss-distance counters indexed by PC xor branch history.
   A counter is incremented on a correct prediction and decremented
   (saturating at 0) on a misprediction; a branch is high-confidence
   when its counter passes the threshold. The saturating decrement
   (rather than a full reset) lets moderately-biased branches reach high
   confidence, giving the estimator realistic, imperfect coverage. *)

type estimate = High_confidence | Low_confidence

type t = {
  hist : History.t;
  table : int array;
  threshold : int;
  counter_max : int;
  miss_decrement : int;
  mutable history : int;
}

let create ?(log2_entries = 12) ?(history_length = 12) ?(threshold = 14)
    ?(miss_decrement = 2) () =
  let hist = History.make history_length in
  {
    hist;
    table = Array.make (1 lsl log2_entries) 0;
    threshold;
    counter_max = 15;
    miss_decrement;
    history = History.empty;
  }

let index t ~addr =
  (addr lxor History.fold t.hist t.history) land (Array.length t.table - 1)

let estimate t ~addr =
  if t.table.(index t ~addr) >= t.threshold then High_confidence
  else Low_confidence

let update t ~addr ~taken ~mispredicted =
  let i = index t ~addr in
  t.table.(i) <-
    (if mispredicted then max 0 (t.table.(i) - t.miss_decrement)
     else min t.counter_max (t.table.(i) + 1));
  t.history <- History.shift t.hist t.history ~taken

let is_low = function Low_confidence -> true | High_confidence -> false

(* Flat state snapshot: confidence history followed by the counter
   table. *)
let export t =
  let n = Array.length t.table in
  let out = Array.make (1 + n) 0 in
  out.(0) <- t.history;
  Array.blit t.table 0 out 1 n;
  out

let import t state =
  let n = Array.length t.table in
  if Array.length state <> 1 + n then
    invalid_arg "Conf.import: state length mismatch";
  t.history <- state.(0);
  Array.blit state 1 t.table 0 n
