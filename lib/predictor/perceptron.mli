(** Perceptron branch predictor (Jiménez & Lin, HPCA-7). *)

type t

val create : ?entries:int -> ?history_length:int -> unit -> t
val history : t -> int
val predict : t -> addr:int -> bool
val predict_with_history : t -> history:int -> addr:int -> bool
val shift : t -> history:int -> taken:bool -> int
val update : t -> addr:int -> taken:bool -> unit
(** Train on the architectural outcome and shift the global history. *)

val export : t -> int array
(** Flat snapshot of the mutable state (global history + weights),
    suitable for a {!Dmp_exec.Checkpoint} section. *)

val import : t -> int array -> unit
(** Restore a snapshot taken by {!export} from an identically
    configured predictor.
    @raise Invalid_argument on a length mismatch. *)
