(* Perceptron branch predictor (Jiménez & Lin, HPCA-7), the paper's
   baseline predictor. One weight vector per table entry; prediction is
   the sign of the dot product of the weights with the global history. *)

type t = {
  hist : History.t;
  table : int array array;  (* entries x (hist_len + 1 bias) weights *)
  threshold : int;
  weight_max : int;
  weight_min : int;
  mutable history : int;
}

let create ?(entries = 256) ?(history_length = 31) () =
  let hist = History.make history_length in
  {
    hist;
    table = Array.init entries (fun _ -> Array.make (history_length + 1) 0);
    threshold = int_of_float ((1.93 *. float_of_int history_length) +. 14.);
    weight_max = 127;
    weight_min = -128;
    history = History.empty;
  }

let history t = t.history
let index t addr = addr mod Array.length t.table

(* Flat state snapshot: the global history followed by every weight in
   table order. [import] restores a snapshot taken from an identically
   shaped predictor; the length check catches geometry mismatches. *)
let export t =
  let entries = Array.length t.table in
  let width = Array.length t.table.(0) in
  let out = Array.make (1 + (entries * width)) 0 in
  out.(0) <- t.history;
  for e = 0 to entries - 1 do
    Array.blit t.table.(e) 0 out (1 + (e * width)) width
  done;
  out

let import t state =
  let entries = Array.length t.table in
  let width = Array.length t.table.(0) in
  if Array.length state <> 1 + (entries * width) then
    invalid_arg "Perceptron.import: state length mismatch";
  t.history <- state.(0);
  for e = 0 to entries - 1 do
    Array.blit state (1 + (e * width)) t.table.(e) 0 width
  done

let output t ~history ~addr =
  let w = t.table.(index t addr) in
  let n = History.length t.hist in
  let acc = ref w.(0) in
  for i = 0 to n - 1 do
    let x = if History.bit t.hist history i then 1 else -1 in
    acc := !acc + (w.(i + 1) * x)
  done;
  !acc

let predict_with_history t ~history ~addr = output t ~history ~addr >= 0
let predict t ~addr = predict_with_history t ~history:t.history ~addr
let shift t ~history ~taken = History.shift t.hist history ~taken

let clamp t v = if v > t.weight_max then t.weight_max
  else if v < t.weight_min then t.weight_min else v

let update t ~addr ~taken =
  let out = output t ~history:t.history ~addr in
  let predicted_taken = out >= 0 in
  let w = t.table.(index t addr) in
  if predicted_taken <> taken || abs out <= t.threshold then begin
    let sign = if taken then 1 else -1 in
    w.(0) <- clamp t (w.(0) + sign);
    let n = History.length t.hist in
    for i = 0 to n - 1 do
      let x = if History.bit t.hist t.history i then 1 else -1 in
      w.(i + 1) <- clamp t (w.(i + 1) + (sign * x))
    done
  end;
  t.history <- History.shift t.hist t.history ~taken
