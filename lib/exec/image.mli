(** Pre-decoded simulation image: a packed {!Trace} unpacked once into
    flat structure-of-arrays Bigarray buffers.

    A trace replay decodes each packed int32 word per event per replay;
    the experiment sweep replays the same traces hundreds of times, so
    decoding once and replaying by plain array indexing removes the
    whole per-event unpacking cost from the simulator's hot loop. The
    event's [addr] also doubles as the index into any dense per-address
    table (one slot per instruction of the linked program, e.g.
    [Dmp_uarch.Static_info]), which is how the simulator's specialised
    image path avoids per-slot lookups.

    An image is immutable after {!of_trace} and safe to share across
    domains; each consumer keeps its own position index. The buffer
    fields are exposed read-only (private record) so hot loops can
    bind them locally and index with [Bigarray.Array1.unsafe_get]
    after validating bounds once against {!length} / {!max_addr}. *)

type int_buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type tag_buf =
  (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private {
  addr : int_buf;  (** instruction address of event [i] *)
  next : int_buf;  (** architectural successor address ([Event.halted_next]
      for the final event of a halted program) *)
  tag : tag_buf;  (** the event's [Trace.tag_*] constant *)
  p1 : int_buf;  (** branch target / memory location / callee entry /
      return-to address; 0 when the tag defines no first operand *)
  p2 : int_buf;  (** conditional-branch fall-through address; 0 otherwise *)
  len : int;
  complete : bool;
  max_addr : int;
  first_at : int array;  (** per address: first event index, or [len]
      when the address never occurs — use {!first_index} *)
}

val of_trace : Trace.t -> t
(** Decode every event of the trace. One sequential pass; the result
    holds ~33 bytes per event. *)

val length : t -> int
(** Number of events (= retired instructions of the capture). *)

val complete : t -> bool
(** Whether the captured program halted within the capture cap (same
    contract as {!Trace.complete}). *)

val max_addr : t -> int
(** Largest instruction address appearing in the image, or -1 when
    empty. Consumers indexing a per-address table validate its size
    against this once, then index unchecked. *)

val first_index : t -> int -> int
(** Index of the first event at the given instruction address, or
    {!length} when the address never occurs (including out-of-range
    addresses). A simulation that has consumed at most
    [first_index img a] events has not yet consumed address [a] — the
    bound the fused sweep's shared-prefix elision relies on. *)

val byte_size : t -> int
(** Allocated bytes of the decoded buffers (~33 B per event; the
    Bigarray payloads live outside the OCaml heap) — the size
    {!Dmp_exec.Mem_cache} accounts for a cached image. *)

val event : t -> int -> Event.t
(** Decode event [i] into a boxed {!Event.t} (allocates; for tests and
    debugging). @raise Invalid_argument when out of bounds. *)
