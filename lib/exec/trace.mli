(** Packed architectural trace: capture the emulator's event stream
    once into flat Bigarray buffers, then replay it any number of times
    without re-emulating and without per-event heap allocation.

    Each event packs into one int32 main word ([(addr lsl 3) lor tag])
    plus 0-2 native-int operand words; [next] addresses are re-derived
    from the tag on replay, so ~95% of real-workload events (plain
    fall-throughs) cost 4 bytes. A trace is immutable after capture and
    safe to share across domains; every consumer owns its own
    {!cursor}. Traces marshal directly (Bigarrays serialise their
    contents), which is how {!Dmp_experiments.Disk_cache} persists
    them. *)

open Dmp_ir

type t

val capture : ?max_insts:int -> Linked.t -> input:int array -> t
(** Run a fresh emulator to completion (or [max_insts] retired
    instructions) and pack its event stream. Raises [Invalid_argument]
    if an instruction address exceeds the int32 packing range (2^28 —
    unreachable for any linkable program). *)

val length : t -> int
(** Number of captured events (= retired instructions). *)

val complete : t -> bool
(** Whether the program halted within the capture cap. A replay whose
    [max_insts] exceeds [length] of an incomplete trace would end
    early; capture and replay must use the same cap. *)

val byte_size : t -> int
(** Allocated bytes of the packed buffers (the Bigarray payloads live
    outside the OCaml heap, so generic heap-size estimates miss them) —
    the size {!Dmp_exec.Mem_cache} accounts for a cached trace. *)

(** {2 Allocation-free cursor}

    A cursor decodes one event at a time into mutable int fields; the
    accessors below read the current event and never allocate. The
    cursor is positioned before the first event; each {!advance} loads
    the next event and returns [false] at end of trace. *)

type cursor

val cursor : t -> cursor
val advance : cursor -> bool

val addr : cursor -> int
val next_addr : cursor -> int

val tag : cursor -> int
(** One of the [tag_*] constants below. *)

val taken : cursor -> bool
(** Direction of the current conditional branch (false otherwise). *)

val is_cond_branch : cursor -> bool

val p1 : cursor -> int
(** First operand: branch target / memory location / callee entry /
    return-to address. Meaningless for plain fall-through events. *)

val p2 : cursor -> int
(** Second operand: branch fall-through address. Only valid for
    conditional branches. *)

val tag_fall : int
val tag_jump : int
val tag_branch_taken : int
val tag_branch_not_taken : int
val tag_load : int
val tag_store : int
val tag_call : int
val tag_ret : int

(** {2 Decoding} *)

val current_event : cursor -> Event.t
(** Decode the cursor's current event into a boxed {!Event.t}
    (allocates; for tests and debugging). *)

val iter : ?max_insts:int -> t -> (Event.t -> unit) -> unit
(** Decode and visit every event in order (allocates one event per
    step; for tests and debugging). *)
