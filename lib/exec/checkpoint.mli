(** Compact serializable machine-state snapshot.

    A checkpoint pairs the number of consumed trace events with named
    sections of flat int arrays. The simulator packs its architectural,
    predictor and cache state into sections when it reaches a safe
    capture point and unpacks them on resume; this container only owns
    the (versioned, checksummed) wire format, so subsystems keep their
    own layouts private. *)

type t

val create : consumed:int -> (string * int array) list -> t
(** @raise Invalid_argument on a negative consumed count, a duplicate
    section name, or a name that is empty or longer than 255 bytes. *)

val consumed : t -> int
(** Trace events consumed before the snapshot was taken — the segment
    boundary this checkpoint represents. *)

val latest_at_or_before : t list -> consumed:int -> t option
(** The checkpoint with the greatest {!consumed} not exceeding the
    limit, or [None] when every checkpoint is past it. Ties resolve to
    the earliest such element. The fused sweep's prefix elision uses it
    to pick the deepest reference checkpoint still on an annotation's
    shared prefix. *)

val sections : t -> (string * int array) list
val section : t -> string -> int array
(** @raise Invalid_argument when the section is absent. *)

val section_opt : t -> string -> int array option

val byte_size : t -> int
(** Size of {!to_bytes}'s result, without building it. *)

val to_bytes : t -> bytes
(** Self-contained byte form: magic, counts, sections (8-byte
    little-endian integers), MD5 checksum. *)

val of_bytes : bytes -> (t, string) result
(** Inverse of {!to_bytes}; [Error] on truncated, corrupt, or
    foreign input (never raises). *)
