(** Trace-source abstraction: a single supply interface over a live
    {!Emulator} and a replayed packed {!Trace}, consumed by the
    cycle-level simulator and the profiler.

    Protocol: {!advance} loads the next retired instruction and returns
    [false] when the stream ends; the accessors then read the current
    event without allocating. Accessors are only meaningful after an
    {!advance} that returned [true], and remain valid until the next
    {!advance}. *)

type t

val live : Emulator.t -> t
(** Supply events by stepping the emulator. *)

val replay : Trace.t -> t
(** Supply events from a packed trace (no emulation, no allocation). *)

val advance : t -> bool

val addr : t -> int
val next_addr : t -> int

val taken : t -> bool
(** Direction of the current conditional branch (false otherwise). *)

val is_cond_branch : t -> bool

val p1 : t -> int
(** Branch target / memory location / callee entry / return-to. *)

val p2 : t -> int
(** Branch fall-through address (conditional branches only). *)

val current_event : t -> Event.t
(** Boxed decode of the current event (allocates on the replay path;
    for tests and debugging). *)
