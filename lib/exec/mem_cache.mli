(** Byte-budgeted in-memory LRU cache with hit/miss/eviction counters.

    The serving layer keys everything by strings (stage kind + benchmark
    + input set + parameters, or a whole-request fingerprint) and
    supplies an explicit byte size per value: Bigarray-backed traces and
    images keep their payload outside the OCaml heap, so no generic
    heap-walking size is trustworthy — use {!Dmp_exec.Trace.byte_size}
    / {!Dmp_exec.Image.byte_size} for those and {!approx_size} for
    ordinary heap values.

    A cache is safe to share across domains and sys-threads (every
    operation takes an internal mutex). Values are returned without
    copying and must therefore be treated as immutable by all
    sharers. *)

type 'v t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** live entries *)
  bytes : int;  (** accounted bytes of the live entries *)
  budget : int option;
}

val create : ?budget:int -> name:string -> unit -> 'v t
(** [budget] is the byte budget; omitted means unlimited (no eviction —
    the offline CLI default, preserving the old unbounded-memo
    behaviour). [name] labels the cache in stats dumps.
    @raise Invalid_argument on a negative budget. *)

val name : 'v t -> string

val find : 'v t -> string -> 'v option
(** Bumps the entry to most-recently-used and counts a hit; counts a
    miss when absent. *)

val mem : 'v t -> string -> bool
(** Membership without touching recency or the counters. *)

val add : 'v t -> string -> size:int -> 'v -> unit
(** Insert (or replace) the entry as most-recently-used, account
    [size] bytes, then evict least-recently-used entries until the live
    bytes fit the budget again. A single entry larger than the whole
    budget is evicted immediately — the budget is a hard bound, not
    advisory. @raise Invalid_argument on a negative size. *)

val remove : 'v t -> string -> unit

val stats : 'v t -> stats

val keys : 'v t -> string list
(** Live keys in recency order, most-recently-used first (tests and
    stats dumps). *)

val approx_size : 'a -> int
(** [Obj.reachable_words] scaled to bytes — an upper-ish estimate for
    ordinary heap values (shared substructure is charged to every
    entry; out-of-heap Bigarray payloads are not counted — use the
    exact [byte_size] accessors for traces and images). *)

val stats_line : string -> stats -> string
(** One aligned ["mem cache (<name>): hits=..."] line for stats
    dumps. *)
