(** Fixed-size domain pool for embarrassingly parallel per-benchmark
    work (linking, profiling, baseline simulation).

    Workers are OCaml 5 domains fed from a shared queue. Results come
    back in submission order regardless of completion order, and an
    exception raised by any task is re-raised (with its backtrace) from
    the submitting domain once every task of the batch has settled. *)

type t

val env_jobs : unit -> (int option, string) result
(** The [DMP_JOBS] environment variable, validated: [Ok None] when
    unset or blank, [Ok (Some n)] for a positive integer, [Error msg]
    otherwise.
    CLIs call this at startup and turn an [Error] into an exit-2 usage
    error, consistently with their unknown-target handling. *)

val default_jobs : unit -> int
(** Worker count used when [create] is given no [jobs]: the [DMP_JOBS]
    environment variable when set, otherwise
    [Domain.recommended_domain_count ()] — and never more than the
    recommended domain count either way, since oversubscribing domains
    on a small machine is strictly overhead. An explicit [create ~jobs]
    is not clamped (deliberate oversubscription, e.g. jobs-invariance
    checks, stays possible).
    @raise Invalid_argument when [DMP_JOBS] is set but is not a
    positive integer (zero, negative, or unparsable) — never a silent
    fallback. *)

val create : ?jobs:int -> unit -> t
(** [jobs] is clamped below at 1. A pool with [jobs = 1] runs tasks
    inline on the submitting domain, spawning no workers. *)

val jobs : t -> int

val map : t -> f:('a -> 'b) -> 'a list -> 'b list
(** [map t ~f xs] applies [f] to every element, in parallel across the
    pool's workers. The result list matches the order of [xs]. If one or
    more applications raise, the batch still runs to completion and the
    first exception (in submission order) is re-raised.

    [map] is re-entrant: a task may call [map] on the same pool. The
    nested submitter helps drain the shared queue while its batch is in
    flight instead of blocking a worker, so nesting cannot deadlock
    (the experiment runner nests per-segment simulations inside
    per-annotation tasks this way). *)

val run : t -> (unit -> unit) list -> unit
(** Like [map] for effectful thunks with no result. *)

val shutdown : t -> unit
(** Joins the worker domains. The pool must not be used afterwards;
    calling [shutdown] twice is harmless. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run the callback, and [shutdown] (also on exception). *)
