open Dmp_ir

(* Data memory is a paged flat-array store: locations in
   [0, direct_limit) index a page directory of plain int arrays (two
   array reads per access, no hashing, no boxed bindings), which covers
   every address the workloads touch. Pathological locations — negative
   or huge addresses computed by arbitrary arithmetic — fall back to a
   hashtable so semantics stay total. Absent pages and absent far
   bindings read as 0, preserving the default-zero memory model. *)

let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1
let direct_pages = 1 lsl 10
let direct_limit = direct_pages lsl page_bits
let no_page : int array = [||]

type t = {
  linked : Linked.t;
  regs : int array;
  mutable pages : int array array;  (* grows up to [direct_pages] *)
  far_memory : (int, int) Hashtbl.t;
  mutable call_stack : int list;
  input : int array;
  mutable input_pos : int;
  mutable output_rev : int list;
  mutable pc : int;
  mutable halted : bool;
  mutable retired : int;
}

let create linked ~input =
  {
    linked;
    regs = Array.make Reg.count 0;
    pages = Array.make 8 no_page;
    far_memory = Hashtbl.create 16;
    call_stack = [];
    input;
    input_pos = 0;
    output_rev = [];
    pc = Linked.entry_addr linked;
    halted = false;
    retired = 0;
  }

let reg_get t r = t.regs.(Reg.to_int r)

let reg_set t r v =
  if not (Reg.equal r Reg.zero) then t.regs.(Reg.to_int r) <- v

let operand_value t = function
  | Instr.Reg r -> reg_get t r
  | Instr.Imm i -> i

let mem_load t location =
  if location >= 0 && location < direct_limit then begin
    let p = location lsr page_bits in
    if p >= Array.length t.pages then 0
    else
      let page = Array.unsafe_get t.pages p in
      if page == no_page then 0
      else Array.unsafe_get page (location land page_mask)
  end
  else
    match Hashtbl.find_opt t.far_memory location with
    | Some v -> v
    | None -> 0

let mem_store t location v =
  if location >= 0 && location < direct_limit then begin
    let p = location lsr page_bits in
    if p >= Array.length t.pages then begin
      let len = ref (Array.length t.pages) in
      while p >= !len do
        len := min (2 * !len) direct_pages
      done;
      let pages = Array.make !len no_page in
      Array.blit t.pages 0 pages 0 (Array.length t.pages);
      t.pages <- pages
    end;
    let page =
      let pg = t.pages.(p) in
      if pg != no_page then pg
      else begin
        let pg = Array.make page_size 0 in
        t.pages.(p) <- pg;
        pg
      end
    in
    Array.unsafe_set page (location land page_mask) v
  end
  else Hashtbl.replace t.far_memory location v

let read_input t =
  if t.input_pos < Array.length t.input then begin
    let v = t.input.(t.input_pos) in
    t.input_pos <- t.input_pos + 1;
    v
  end
  else 0

let halted t = t.halted
let retired t = t.retired
let pc t = t.pc
let output t = List.rev t.output_rev

let registers t = Array.copy t.regs

(* Every non-zero data-memory binding, sorted by location. Zero values
   are skipped because absent locations read as 0: a machine that wrote
   0 somewhere and one that never touched it are architecturally
   indistinguishable. *)
let memory_bindings t =
  let acc = ref [] in
  Hashtbl.iter
    (fun location v -> if v <> 0 then acc := (location, v) :: !acc)
    t.far_memory;
  Array.iteri
    (fun p page ->
      if page != no_page then
        Array.iteri
          (fun i v ->
            if v <> 0 then acc := (((p lsl page_bits) lor i), v) :: !acc)
          page)
    t.pages;
  List.sort compare !acc

let step t =
  if t.halted then None
  else begin
    let l = Linked.loc t.linked t.pc in
    let addr = t.pc in
    let event =
      match l.Linked.slot with
      | Linked.Body ins -> (
          match ins with
          | Instr.Alu { op; dst; src1; src2 } ->
              reg_set t dst
                (Instr.eval_alu op (reg_get t src1) (operand_value t src2));
              { Event.addr; kind = Event.Plain; next = addr + 1 }
          | Instr.Load { dst; base; offset } ->
              let location = reg_get t base + offset in
              reg_set t dst (mem_load t location);
              { Event.addr; kind = Event.Mem { is_load = true; location };
                next = addr + 1 }
          | Instr.Store { src; base; offset } ->
              let location = reg_get t base + offset in
              mem_store t location (reg_get t src);
              { Event.addr; kind = Event.Mem { is_load = false; location };
                next = addr + 1 }
          | Instr.Li { dst; imm } ->
              reg_set t dst imm;
              { Event.addr; kind = Event.Plain; next = addr + 1 }
          | Instr.Mov { dst; src } ->
              reg_set t dst (reg_get t src);
              { Event.addr; kind = Event.Plain; next = addr + 1 }
          | Instr.Call { callee } ->
              let fi = Linked.func_of_name t.linked callee in
              let callee_entry = Linked.func_entry t.linked fi in
              t.call_stack <- (addr + 1) :: t.call_stack;
              { Event.addr; kind = Event.Call { callee_entry };
                next = callee_entry }
          | Instr.Read { dst } ->
              reg_set t dst (read_input t);
              { Event.addr; kind = Event.Plain; next = addr + 1 }
          | Instr.Write { src } ->
              t.output_rev <- reg_get t src :: t.output_rev;
              { Event.addr; kind = Event.Plain; next = addr + 1 }
          | Instr.Select { dst; cond; if_true; if_false } ->
              reg_set t dst
                (if reg_get t cond <> 0 then reg_get t if_true
                 else operand_value t if_false);
              { Event.addr; kind = Event.Plain; next = addr + 1 }
          | Instr.Nop -> { Event.addr; kind = Event.Plain; next = addr + 1 })
      | Linked.Term tm -> (
          match tm with
          | Term.Branch { cond; src1; src2; target; fall } ->
              let a = reg_get t src1 and b = operand_value t src2 in
              let taken = Term.eval_cond cond a b in
              let target = Linked.block_addr t.linked ~func:l.func ~block:target in
              let fall = Linked.block_addr t.linked ~func:l.func ~block:fall in
              { Event.addr; kind = Event.Branch { taken; target; fall };
                next = (if taken then target else fall) }
          | Term.Jump b ->
              let next = Linked.block_addr t.linked ~func:l.func ~block:b in
              { Event.addr; kind = Event.Plain; next }
          | Term.Ret -> (
              match t.call_stack with
              | return_to :: rest ->
                  t.call_stack <- rest;
                  { Event.addr; kind = Event.Return { return_to };
                    next = return_to }
              | [] ->
                  t.halted <- true;
                  { Event.addr; kind = Event.Return { return_to = -1 };
                    next = Event.halted_next })
          | Term.Halt ->
              t.halted <- true;
              { Event.addr; kind = Event.Plain; next = Event.halted_next })
    in
    t.pc <- event.Event.next;
    t.retired <- t.retired + 1;
    Some event
  end

let run ?(max_insts = max_int) t =
  let rec go () =
    if t.retired >= max_insts then ()
    else match step t with None -> () | Some _ -> go ()
  in
  go ();
  t.retired

let iter ?(max_insts = max_int) t f =
  let rec go () =
    if t.retired < max_insts then
      match step t with
      | None -> ()
      | Some e ->
          f e;
          go ()
  in
  go ()
