(** Architectural emulator producing a streaming dynamic-instruction
    trace. The profiler and the cycle-level simulator both consume
    {!Event.t} streams from here (execution-driven simulation). *)

open Dmp_ir

type t

val create : Linked.t -> input:int array -> t
(** Fresh machine at the entry of main. [input] is the value stream
    consumed by [Read] instructions; reads past the end yield 0. *)

val step : t -> Event.t option
(** Retire one instruction; [None] once halted. A program halts on
    [Halt] or when main returns with an empty call stack. *)

val run : ?max_insts:int -> t -> int
(** Run to completion (or [max_insts]); returns retired count. *)

val iter : ?max_insts:int -> t -> (Event.t -> unit) -> unit
val halted : t -> bool
val retired : t -> int
val pc : t -> int
val output : t -> int list
val reg_get : t -> Reg.t -> int
val mem_load : t -> int -> int

val registers : t -> int array
(** Copy of the architectural register file (indexed by register
    number). *)

val memory_bindings : t -> (int * int) list
(** Every non-zero data-memory binding as [(location, value)] pairs
    sorted by location — the canonical final-memory image used by the
    transform-equivalence oracle. *)
