(* Compact serializable machine-state snapshot.

   A checkpoint is the consumed-event count plus named sections of flat
   int arrays; the simulator (which this library cannot see) packs its
   architectural, predictor and cache state into sections and unpacks
   them on resume. Keeping the container generic means the wire format
   lives in one place while each subsystem owns its own layout.

   The byte form is versioned and checksummed: a fixed magic, the
   consumed count, then each section as (name, length, values), every
   integer as 8 little-endian bytes, followed by the MD5 digest of
   everything before it. [of_bytes] rejects truncated, corrupt or
   foreign buffers instead of decoding garbage. *)

type t = { consumed : int; sections : (string * int array) list }

let magic = "DMPCKPT1"

let create ~consumed sections =
  if consumed < 0 then invalid_arg "Checkpoint.create: negative consumed";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
      if String.length name = 0 || String.length name > 255 then
        invalid_arg "Checkpoint.create: section name length";
      if Hashtbl.mem seen name then
        invalid_arg ("Checkpoint.create: duplicate section " ^ name);
      Hashtbl.replace seen name ())
    sections;
  { consumed; sections }

let consumed t = t.consumed
let sections t = t.sections

let latest_at_or_before cks ~consumed:limit =
  List.fold_left
    (fun best ck ->
      if ck.consumed > limit then best
      else
        match best with
        | Some b when b.consumed >= ck.consumed -> best
        | Some _ | None -> Some ck)
    None cks
let section_opt t name = List.assoc_opt name t.sections

let section t name =
  match section_opt t name with
  | Some a -> a
  | None -> invalid_arg ("Checkpoint.section: no section " ^ name)

let byte_size t =
  List.fold_left
    (fun acc (name, a) -> acc + 1 + String.length name + 8 + (8 * Array.length a))
    (String.length magic + 8 + 8 + 16)
    t.sections

let add_int64 b (v : int) =
  let v = Int64.of_int v in
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let to_bytes t =
  let b = Buffer.create (byte_size t) in
  Buffer.add_string b magic;
  add_int64 b t.consumed;
  add_int64 b (List.length t.sections);
  List.iter
    (fun (name, a) ->
      Buffer.add_char b (Char.chr (String.length name));
      Buffer.add_string b name;
      add_int64 b (Array.length a);
      Array.iter (add_int64 b) a)
    t.sections;
  let payload = Buffer.contents b in
  Buffer.add_string b (Digest.string payload);
  Buffer.to_bytes b

let of_bytes buf =
  let len = Bytes.length buf in
  let pos = ref 0 in
  let fail msg = raise (Failure msg) in
  let need n = if !pos + n > len then fail "truncated" in
  let read_string n =
    need n;
    let s = Bytes.sub_string buf !pos n in
    pos := !pos + n;
    s
  in
  let read_int64 () =
    need 8;
    let v = ref 0L in
    for i = 7 downto 0 do
      v :=
        Int64.logor (Int64.shift_left !v 8)
          (Int64.of_int (Char.code (Bytes.get buf (!pos + i))))
    done;
    pos := !pos + 8;
    Int64.to_int !v
  in
  try
    if len < String.length magic + 16 then fail "truncated";
    let digest = Bytes.sub_string buf (len - 16) 16 in
    if Digest.subbytes buf 0 (len - 16) <> digest then fail "bad checksum";
    if read_string (String.length magic) <> magic then fail "bad magic";
    let consumed = read_int64 () in
    let nsections = read_int64 () in
    if nsections < 0 || nsections > 1024 then fail "bad section count";
    let sections =
      List.init nsections (fun _ ->
          need 1;
          let nlen = Char.code (Bytes.get buf !pos) in
          incr pos;
          let name = read_string nlen in
          let alen = read_int64 () in
          if alen < 0 || !pos + (8 * alen) > len - 16 then
            fail "bad section length";
          (name, Array.init alen (fun _ -> read_int64 ())))
    in
    if !pos <> len - 16 then fail "trailing bytes";
    Ok (create ~consumed sections)
  with
  | Failure msg -> Error ("Checkpoint.of_bytes: " ^ msg)
  | Invalid_argument msg -> Error ("Checkpoint.of_bytes: " ^ msg)
