(* Packed architectural trace: the emulator's event stream captured
   once into flat Bigarray buffers so later consumers replay it without
   re-emulating and without allocating one boxed Event.t per retired
   instruction.

   Encoding. Each event contributes one word to [main] and zero, one or
   two operand words to [aux]:

     main word  =  (addr lsl 3) lor tag          (int32)
     aux words  =  per-tag operands, in stream order

   with the tags below. [next] is never stored when it is derivable:
   plain fall-through and memory events continue at [addr + 1]; taken
   branches continue at their target, not-taken at their fall address;
   calls continue at the callee entry and returns at the return-to
   address (the final halting return carries -1, which is exactly
   [Event.halted_next]). Only jumps — Plain events whose [next] is not
   [addr + 1], including the Halt terminator — store [next] explicitly.
   On the real workloads ~95% of events are plain fall-throughs, so the
   packed form costs ~4-8 bytes per event against the 40+ bytes of a
   boxed event list.

   The main word is an int32, which bounds instruction addresses to
   2^28; linked programs are many orders of magnitude smaller. Operand
   words (memory locations in particular) are arbitrary ints and live
   in the native-int [aux] buffer. *)

type main_buf = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
type aux_buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let tag_fall = 0 (* plain, next = addr + 1; no operands *)
let tag_jump = 1 (* plain, explicit next (halt stores -1) *)
let tag_branch_taken = 2 (* operands: target, fall *)
let tag_branch_not_taken = 3 (* operands: target, fall *)
let tag_load = 4 (* operand: location *)
let tag_store = 5 (* operand: location *)
let tag_call = 6 (* operand: callee entry = next *)
let tag_ret = 7 (* operand: return-to = next *)

let max_addr = 1 lsl 28

type t = {
  main : main_buf;
  aux : aux_buf;
  len : int;
  complete : bool;  (* the program halted within the capture cap *)
}

let length t = t.len
let complete t = t.complete

let byte_size t =
  Bigarray.Array1.size_in_bytes t.main + Bigarray.Array1.size_in_bytes t.aux

let aux_words tag =
  if tag = tag_fall then 0
  else if tag = tag_branch_taken || tag = tag_branch_not_taken then 2
  else 1

(* ---------- capture ---------- *)

let create_main n = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout n
let create_aux n = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

(* Growth happens only when the buffer is exactly full, so the whole
   old buffer is live and blits into the first half of the new one. *)
let grow_main b =
  let d = Bigarray.Array1.dim b in
  let b' = create_main (2 * d) in
  Bigarray.Array1.blit b (Bigarray.Array1.sub b' 0 d);
  b'

let grow_aux b =
  let d = Bigarray.Array1.dim b in
  let b' = create_aux (2 * d) in
  Bigarray.Array1.blit b (Bigarray.Array1.sub b' 0 d);
  b'

let capture ?(max_insts = max_int) linked ~input =
  let emu = Emulator.create linked ~input in
  let main = ref (create_main 4096) in
  let aux = ref (create_aux 1024) in
  let n = ref 0 in
  let an = ref 0 in
  let push_main addr tag =
    if addr < 0 || addr >= max_addr then
      invalid_arg "Trace.capture: address out of int32 range";
    if !n >= Bigarray.Array1.dim !main then main := grow_main !main;
    Bigarray.Array1.unsafe_set !main !n
      (Int32.of_int ((addr lsl 3) lor tag));
    incr n
  and push_aux v =
    if !an >= Bigarray.Array1.dim !aux then aux := grow_aux !aux;
    Bigarray.Array1.unsafe_set !aux !an v;
    incr an
  in
  let rec go () =
    if !n < max_insts then
      match Emulator.step emu with
      | None -> ()
      | Some e ->
          (match e.Event.kind with
          | Event.Plain ->
              if e.Event.next = e.Event.addr + 1 then
                push_main e.Event.addr tag_fall
              else begin
                push_main e.Event.addr tag_jump;
                push_aux e.Event.next
              end
          | Event.Branch { taken; target; fall } ->
              push_main e.Event.addr
                (if taken then tag_branch_taken else tag_branch_not_taken);
              push_aux target;
              push_aux fall
          | Event.Mem { is_load; location } ->
              push_main e.Event.addr (if is_load then tag_load else tag_store);
              push_aux location
          | Event.Call { callee_entry } ->
              push_main e.Event.addr tag_call;
              push_aux callee_entry
          | Event.Return { return_to } ->
              push_main e.Event.addr tag_ret;
              push_aux return_to);
          go ()
  in
  go ();
  (* Trim to exact size so the marshalled form carries no slack. *)
  let main' = create_main !n and aux' = create_aux !an in
  if !n > 0 then
    Bigarray.Array1.blit (Bigarray.Array1.sub !main 0 !n) main';
  if !an > 0 then Bigarray.Array1.blit (Bigarray.Array1.sub !aux 0 !an) aux';
  { main = main'; aux = aux'; len = !n; complete = Emulator.halted emu }

(* ---------- allocation-free cursor ---------- *)

type cursor = {
  trace : t;
  mutable pos : int;  (* next event index *)
  mutable apos : int;  (* next aux index *)
  mutable c_addr : int;
  mutable c_tag : int;
  mutable c_p1 : int;
  mutable c_p2 : int;
}

let cursor trace =
  { trace; pos = 0; apos = 0; c_addr = -1; c_tag = tag_fall; c_p1 = 0;
    c_p2 = 0 }

let advance c =
  if c.pos >= c.trace.len then false
  else begin
    let w = Int32.to_int (Bigarray.Array1.unsafe_get c.trace.main c.pos) in
    c.pos <- c.pos + 1;
    let tag = w land 7 in
    c.c_tag <- tag;
    c.c_addr <- w lsr 3;
    let words = aux_words tag in
    if words > 0 then begin
      c.c_p1 <- Bigarray.Array1.unsafe_get c.trace.aux c.apos;
      if words = 2 then
        c.c_p2 <- Bigarray.Array1.unsafe_get c.trace.aux (c.apos + 1);
      c.apos <- c.apos + words
    end;
    true
  end

let addr c = c.c_addr
let tag c = c.c_tag
let p1 c = c.c_p1
let p2 c = c.c_p2

let next_addr c =
  match c.c_tag with
  | 0 | 4 | 5 (* fall, load, store *) -> c.c_addr + 1
  | 3 (* branch not taken *) -> c.c_p2
  | _ (* jump, branch taken, call, ret *) -> c.c_p1

let taken c = c.c_tag = tag_branch_taken

let is_cond_branch c =
  c.c_tag = tag_branch_taken || c.c_tag = tag_branch_not_taken

(* ---------- decoding (tests, debugging) ---------- *)

let current_event c =
  let kind =
    match c.c_tag with
    | 0 | 1 -> Event.Plain
    | 2 -> Event.Branch { taken = true; target = c.c_p1; fall = c.c_p2 }
    | 3 -> Event.Branch { taken = false; target = c.c_p1; fall = c.c_p2 }
    | 4 -> Event.Mem { is_load = true; location = c.c_p1 }
    | 5 -> Event.Mem { is_load = false; location = c.c_p1 }
    | 6 -> Event.Call { callee_entry = c.c_p1 }
    | _ -> Event.Return { return_to = c.c_p1 }
  in
  { Event.addr = c.c_addr; kind; next = next_addr c }

let iter ?(max_insts = max_int) t f =
  let c = cursor t in
  let rec go n = if n < max_insts && advance c then (f (current_event c); go (n + 1)) in
  go 0
