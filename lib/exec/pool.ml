(* Fixed-size domain pool. Tasks are closures pulled from a shared
   queue under a mutex; each batch ([map]/[run]) blocks the submitting
   domain until all its tasks settle, so the pool never outlives the
   work it was given and results can be collected positionally. *)

type task = unit -> unit

type t = {
  jobs : int;
  queue : task Queue.t;
  mutex : Mutex.t;
  work_available : Condition.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

(* DMP_JOBS is an operator-facing contract: a value that does not parse
   as a positive integer is a configuration error, not a hint, so it is
   reported instead of silently replaced by the domain count (matching
   the unknown-target policy of the CLIs, which surface [env_jobs]
   errors as exit 2 before any work starts). *)
let env_jobs () =
  match Sys.getenv_opt "DMP_JOBS" with
  | None -> Ok None
  | Some s when String.trim s = "" -> Ok None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> Ok (Some n)
      | Some _ | None ->
          Error
            (Printf.sprintf
               "DMP_JOBS must be a positive integer, got %S" s))

(* Domains are heavyweight: more workers than cores is strictly
   overhead (BENCH_4 measured -j 4 slower than -j 1 on a 1-cpu
   container), so the default never oversubscribes — DMP_JOBS is
   clamped to the recommended domain count. An explicit [create ~jobs]
   still takes the requested value verbatim, for callers (CI's
   jobs-invariance checks) that oversubscribe on purpose. *)
let default_jobs () =
  let cap = Domain.recommended_domain_count () in
  match env_jobs () with
  | Ok (Some n) -> min n cap
  | Ok None -> cap
  | Error msg -> invalid_arg ("Pool.default_jobs: " ^ msg)

let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.work_available t.mutex
    done;
    match Queue.take_opt t.queue with
    | Some task ->
        Mutex.unlock t.mutex;
        task ();
        loop ()
    | None ->
        (* stopping and drained *)
        Mutex.unlock t.mutex
  in
  loop ()

let create ?jobs () =
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  let t =
    {
      jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      work_available = Condition.create ();
      stopping = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init jobs (fun _ -> Domain.spawn (worker t));
  t

let jobs t = t.jobs

(* Every task writes its slot and bumps [done_count]; the submitter
   waits on [batch_done]. Exceptions are captured per-slot so the whole
   batch settles before the first one is re-raised in order.

   Re-entrancy: a submitter may itself be a pool worker (a task that
   calls [map] again). It cannot just sleep on [batch_done] — with
   every worker blocked the same way, the queued sub-tasks would never
   drain. Instead the submitter helps: while its batch is unfinished it
   keeps taking tasks (any batch's — each settles its own counter) off
   the shared queue and running them, and only waits when the queue is
   momentarily empty. Any batch's tasks are therefore drained by its
   own submitter at the latest, so nesting terminates by induction on
   depth. *)
let map t ~f xs =
  let xs = Array.of_list xs in
  let n = Array.length xs in
  let results = Array.make n None in
  if t.jobs = 1 || n <= 1 then
    Array.iteri
      (fun i x ->
        results.(i) <-
          (try Some (Ok (f x))
           with e -> Some (Error (e, Printexc.get_raw_backtrace ()))))
      xs
  else begin
    let done_count = ref 0 in
    let batch_done = Condition.create () in
    let task i () =
      let r =
        try Ok (f xs.(i))
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.mutex;
      results.(i) <- Some r;
      incr done_count;
      if !done_count = n then Condition.signal batch_done;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.map: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.work_available;
    while !done_count < n do
      match Queue.take_opt t.queue with
      | Some task ->
          Mutex.unlock t.mutex;
          task ();
          Mutex.lock t.mutex
      | None -> if !done_count < n then Condition.wait batch_done t.mutex
    done;
    Mutex.unlock t.mutex
  end;
  Array.to_list
    (Array.map
       (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
       results)

let run t thunks = ignore (map t ~f:(fun th -> th ()) thunks : unit list)

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
