(* Trace-source abstraction: one supply interface over a live emulator
   and a replayed packed trace, so the simulator and the profiler are
   written once against current-event accessors. The replay path never
   allocates; the live path allocates exactly the one Event.t the
   emulator produces per step. *)

type t =
  | Live of { emu : Emulator.t; mutable e : Event.t }
  | Replay of Trace.cursor

let dummy_event = { Event.addr = -1; kind = Event.Plain; next = -1 }
let live emu = Live { emu; e = dummy_event }
let replay trace = Replay (Trace.cursor trace)

let advance = function
  | Live s -> (
      match Emulator.step s.emu with
      | Some e ->
          s.e <- e;
          true
      | None -> false)
  | Replay c -> Trace.advance c

let addr = function
  | Live s -> s.e.Event.addr
  | Replay c -> Trace.addr c

let next_addr = function
  | Live s -> s.e.Event.next
  | Replay c -> Trace.next_addr c

let taken = function
  | Live s -> (
      match s.e.Event.kind with Event.Branch { taken; _ } -> taken | _ -> false)
  | Replay c -> Trace.taken c

let is_cond_branch = function
  | Live s -> (
      match s.e.Event.kind with Event.Branch _ -> true | _ -> false)
  | Replay c -> Trace.is_cond_branch c

let p1 = function
  | Live s -> (
      match s.e.Event.kind with
      | Event.Branch { target; _ } -> target
      | Event.Mem { location; _ } -> location
      | Event.Call { callee_entry } -> callee_entry
      | Event.Return { return_to } -> return_to
      | Event.Plain -> s.e.Event.next)
  | Replay c -> Trace.p1 c

let p2 = function
  | Live s -> (
      match s.e.Event.kind with Event.Branch { fall; _ } -> fall | _ -> 0)
  | Replay c -> Trace.p2 c

let current_event = function
  | Live s -> s.e
  | Replay c -> Trace.current_event c
