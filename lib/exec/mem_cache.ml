(* Byte-budgeted in-memory LRU. Entries form an intrusive doubly-linked
   recency list threaded through the hash table's values; [find] moves
   the entry to the front, [add] evicts from the back until the live
   bytes fit the budget again. All operations take the cache's own
   mutex, so a cache is safe to share across domains and sys-threads;
   values themselves are returned as-is and must be immutable (every
   caller in this repo shares read-only traces, images, profiles and
   rendered responses). *)

type 'v node = {
  key : string;
  value : 'v;
  size : int;
  mutable prev : 'v node option;  (* towards MRU *)
  mutable next : 'v node option;  (* towards LRU *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
  budget : int option;
}

type 'v t = {
  name : string;
  budget : int option;
  table : (string, 'v node) Hashtbl.t;
  mutable mru : 'v node option;
  mutable lru : 'v node option;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutex : Mutex.t;
}

let create ?budget ~name () =
  (match budget with
  | Some b when b < 0 -> invalid_arg "Mem_cache.create: negative budget"
  | _ -> ());
  {
    name;
    budget;
    table = Hashtbl.create 64;
    mru = None;
    lru = None;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    mutex = Mutex.create ();
  }

let name t = t.name

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* List surgery; callers hold the mutex. *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.mru;
  (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let drop t n =
  unlink t n;
  Hashtbl.remove t.table n.key;
  t.bytes <- t.bytes - n.size

let evict_over_budget t =
  match t.budget with
  | None -> ()
  | Some budget ->
      while t.bytes > budget && t.lru <> None do
        (match t.lru with
        | Some n ->
            drop t n;
            t.evictions <- t.evictions + 1
        | None -> ());
      done

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
          t.hits <- t.hits + 1;
          unlink t n;
          push_front t n;
          Some n.value
      | None ->
          t.misses <- t.misses + 1;
          None)

let mem t key = locked t (fun () -> Hashtbl.mem t.table key)

let add t key ~size value =
  if size < 0 then invalid_arg "Mem_cache.add: negative size";
  locked t (fun () ->
      (match Hashtbl.find_opt t.table key with
      | Some old -> drop t old
      | None -> ());
      let n = { key; value; size; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      push_front t n;
      t.bytes <- t.bytes + size;
      evict_over_budget t)

let remove t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n -> drop t n
      | None -> ())

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.table;
        bytes = t.bytes;
        budget = t.budget;
      })

(* Recency order for tests and the stats dump; MRU first. *)
let keys t =
  locked t (fun () ->
      let rec go acc = function
        | None -> List.rev acc
        | Some n -> go (n.key :: acc) n.next
      in
      go [] t.mru)

let approx_size v = Obj.reachable_words (Obj.repr v) * (Sys.word_size / 8)

let stats_line name (s : stats) =
  Printf.sprintf
    "mem cache (%s): hits=%d misses=%d evictions=%d entries=%d bytes=%d \
     budget=%s"
    name s.hits s.misses s.evictions s.entries s.bytes
    (match s.budget with Some b -> string_of_int b | None -> "unlimited")
