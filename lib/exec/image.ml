(* Pre-decoded simulation image: a packed [Trace.t] unpacked once into
   flat structure-of-arrays buffers, so every later replay of the same
   trace reads plain per-event arrays instead of re-splitting int32
   words and re-deriving fall-through addresses.

   A packed trace optimises for space (one int32 word per fall-through
   event); replaying it pays a decode per event per replay. The
   experiment sweep replays the same 17 traces hundreds of times, so
   the image trades memory (~33 B per event, still bounded by the
   trace cap) for a branch-free hot path: per-event [addr], [next],
   [tag], and operands are one array read each, and [addr] doubles as
   the index into any dense per-address table such as
   [Dmp_uarch.Static_info] (which stores one record per instruction
   address of the linked program).

   Buffers are immutable after [of_trace] and safe to share across
   domains; consumers keep their own position index. Operand slots an
   event does not define are 0 — unlike a {!Trace.cursor}, whose
   operand fields keep their previous values, so consumers must (and
   the simulator does) read operands only for tags that define them. *)

type int_buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type tag_buf =
  (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  addr : int_buf;  (* instruction address of event i *)
  next : int_buf;  (* architectural successor address *)
  tag : tag_buf;  (* Trace.tag_* of event i *)
  p1 : int_buf;  (* target / location / callee entry / return-to; else 0 *)
  p2 : int_buf;  (* branch fall-through address; else 0 *)
  len : int;
  complete : bool;
  max_addr : int;  (* largest [addr]; -1 when the image is empty *)
  first_at : int array;  (* per address: first event index, or [len] *)
}

let length t = t.len
let complete t = t.complete
let max_addr t = t.max_addr

let first_index t addr =
  if addr < 0 || addr >= Array.length t.first_at then t.len
  else Array.unsafe_get t.first_at addr

let byte_size t =
  Bigarray.Array1.size_in_bytes t.addr + Bigarray.Array1.size_in_bytes t.next
  + Bigarray.Array1.size_in_bytes t.tag
  + Bigarray.Array1.size_in_bytes t.p1
  + Bigarray.Array1.size_in_bytes t.p2
  + (8 * Array.length t.first_at)

let create_int n = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let create_tag n =
  Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout n

let of_trace trace =
  let n = Trace.length trace in
  let addr = create_int n
  and next = create_int n
  and tag = create_tag n
  and p1 = create_int n
  and p2 = create_int n in
  let c = Trace.cursor trace in
  let max_a = ref (-1) in
  for i = 0 to n - 1 do
    ignore (Trace.advance c : bool);
    let a = Trace.addr c and tg = Trace.tag c in
    if a > !max_a then max_a := a;
    Bigarray.Array1.unsafe_set addr i a;
    Bigarray.Array1.unsafe_set next i (Trace.next_addr c);
    Bigarray.Array1.unsafe_set tag i tg;
    (* Only store operands the tag defines; a cursor's operand fields
       are stale for later events, an image's are zero. *)
    if tg = Trace.tag_fall then begin
      Bigarray.Array1.unsafe_set p1 i 0;
      Bigarray.Array1.unsafe_set p2 i 0
    end
    else begin
      Bigarray.Array1.unsafe_set p1 i (Trace.p1 c);
      Bigarray.Array1.unsafe_set p2 i
        (if Trace.is_cond_branch c then Trace.p2 c else 0)
    end
  done;
  (* First occurrence per address: a reverse scan leaves the smallest
     event index in each slot; absent addresses keep the sentinel [n].
     The fused-sweep scheduler uses this to bound how far a simulation
     can run before a given annotation's diverge branches appear. *)
  let first_at = Array.make (!max_a + 1) n in
  for i = n - 1 downto 0 do
    Array.unsafe_set first_at (Bigarray.Array1.unsafe_get addr i) i
  done;
  { addr; next; tag; p1; p2; len = n; complete = Trace.complete trace;
    max_addr = !max_a; first_at }

(* ---------- decoding (tests, debugging) ---------- *)

let event t i =
  if i < 0 || i >= t.len then invalid_arg "Image.event: index out of bounds";
  let a = t.addr.{i} and nx = t.next.{i} in
  let p1 = t.p1.{i} and p2 = t.p2.{i} in
  let kind =
    let tg = t.tag.{i} in
    if tg = Trace.tag_fall || tg = Trace.tag_jump then Event.Plain
    else if tg = Trace.tag_branch_taken then
      Event.Branch { taken = true; target = p1; fall = p2 }
    else if tg = Trace.tag_branch_not_taken then
      Event.Branch { taken = false; target = p1; fall = p2 }
    else if tg = Trace.tag_load then Event.Mem { is_load = true; location = p1 }
    else if tg = Trace.tag_store then
      Event.Mem { is_load = false; location = p1 }
    else if tg = Trace.tag_call then Event.Call { callee_entry = p1 }
    else Event.Return { return_to = p1 }
  in
  { Event.addr = a; kind; next = nx }
