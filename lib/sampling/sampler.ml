(* Sampled hardware-profile collection: periodic / LBR / mispredict-
   event sampling over the same Source stream the exact profiler
   consumes. Free-running totals are exact (PMU fixed counters); the
   per-branch and per-block counters are sparse and scaled back up by
   Reconstruct. Trigger gaps carry a deterministic splitmix-seeded
   jitter of ±period/4 so sampling cannot lock onto loop periods while
   staying bit-reproducible for a given (config, stream). *)

open Dmp_ir
open Dmp_exec
open Dmp_predictor

type mode = Periodic | Lbr of int | Mispredict

type config = { mode : mode; period : int; seed : int }

let default_lbr_depth = 16
let format_version = 1

let mode_to_string = function
  | Periodic -> "periodic"
  | Lbr k -> Printf.sprintf "lbr%d" k
  | Mispredict -> "misp"

let mode_of_string s =
  match s with
  | "periodic" -> Some Periodic
  | "misp" | "mispredict" -> Some Mispredict
  | "lbr" -> Some (Lbr default_lbr_depth)
  | _ when String.length s > 3 && String.sub s 0 3 = "lbr" -> (
      match int_of_string_opt (String.sub s 3 (String.length s - 3)) with
      | Some k when k > 0 -> Some (Lbr k)
      | Some _ | None -> None)
  | _ -> None

let config_to_string c =
  Printf.sprintf "%s-p%d-s%d" (mode_to_string c.mode) c.period c.seed

type counters = {
  mutable s_executed : int;
  mutable s_taken : int;
  mutable s_mispredicted : int;
}

type t = {
  config : config;
  mutable retired : int;
  mutable total_branches : int;
  mutable total_mispredicted : int;
  mutable samples : int;
  mutable lbr_captured : int;
  block_tbl : (int, int) Hashtbl.t;
  ip_tbl : (int, counters) Hashtbl.t;
  lbr_tbl : (int, counters) Hashtbl.t;
}

(* splitmix64 finaliser: the jitter stream is a pure function of
   (seed, sample index). *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let jitter ~seed ~index =
  let z =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int seed) 0x9e3779b97f4a7c15L)
         (Int64.of_int index))
  in
  Int64.to_int (Int64.logand z 0x3fffffffL)

(* Gap to the next trigger: uniform in [period - period/4,
   period + period/4]. period <= 4 has no jitter, so period = 1 samples
   every trigger event. *)
let gap config ~index =
  let q = config.period / 4 in
  if q = 0 then config.period
  else config.period - q + (jitter ~seed:config.seed ~index mod ((2 * q) + 1))

let bump tbl addr ~taken ~misp =
  let c =
    match Hashtbl.find_opt tbl addr with
    | Some c -> c
    | None ->
        let c = { s_executed = 0; s_taken = 0; s_mispredicted = 0 } in
        Hashtbl.replace tbl addr c;
        c
  in
  c.s_executed <- c.s_executed + 1;
  if taken then c.s_taken <- c.s_taken + 1;
  if misp then c.s_mispredicted <- c.s_mispredicted + 1

let collect_source ?(predictor = Predictor.perceptron ())
    ?(max_insts = max_int) ~config linked source =
  if config.period < 1 then
    invalid_arg "Sampler.collect_source: period must be >= 1";
  let ring_depth =
    match config.mode with
    | Periodic -> 0
    | Lbr k ->
        if k < 1 then
          invalid_arg "Sampler.collect_source: LBR depth must be >= 1";
        k
    | Mispredict -> default_lbr_depth
  in
  let t =
    {
      config;
      retired = 0;
      total_branches = 0;
      total_mispredicted = 0;
      samples = 0;
      lbr_captured = 0;
      block_tbl = Hashtbl.create 256;
      ip_tbl = Hashtbl.create 256;
      lbr_tbl = Hashtbl.create 256;
    }
  in
  (* LBR ring: last [ring_depth] conditional-branch records, flushed
     (and cleared) into [lbr_tbl] at each sample. *)
  let ring_addr = Array.make (max 1 ring_depth) 0 in
  let ring_taken = Array.make (max 1 ring_depth) false in
  let ring_misp = Array.make (max 1 ring_depth) false in
  let ring_pos = ref 0 and ring_len = ref 0 in
  let ring_push addr taken misp =
    ring_addr.(!ring_pos) <- addr;
    ring_taken.(!ring_pos) <- taken;
    ring_misp.(!ring_pos) <- misp;
    ring_pos := (!ring_pos + 1) mod ring_depth;
    if !ring_len < ring_depth then incr ring_len
  in
  let ring_flush () =
    let start = (!ring_pos - !ring_len + ring_depth) mod ring_depth in
    for i = 0 to !ring_len - 1 do
      let j = (start + i) mod ring_depth in
      bump t.lbr_tbl ring_addr.(j) ~taken:ring_taken.(j) ~misp:ring_misp.(j)
    done;
    t.lbr_captured <- t.lbr_captured + !ring_len;
    ring_len := 0
  in
  let sample_ix = ref 0 in
  let countdown = ref (gap config ~index:0) in
  let rearm () =
    incr sample_ix;
    countdown := gap config ~index:!sample_ix
  in
  let fire ~is_branch ~addr ~taken ~misp ~next =
    t.samples <- t.samples + 1;
    if is_branch then bump t.ip_tbl addr ~taken ~misp;
    if ring_depth > 0 then ring_flush ();
    if next <> Event.halted_next then begin
      let l = Linked.loc linked next in
      if l.Linked.pos = 0 then
        Hashtbl.replace t.block_tbl next
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.block_tbl next))
    end;
    rearm ()
  in
  let retired = ref 0 in
  while !retired < max_insts && Source.advance source do
    incr retired;
    let is_branch = Source.is_cond_branch source in
    let addr = Source.addr source in
    let taken = is_branch && Source.taken source in
    let misp = ref false in
    if is_branch then begin
      t.total_branches <- t.total_branches + 1;
      let predicted = predictor.Predictor.predict ~addr in
      if predicted <> taken then begin
        misp := true;
        t.total_mispredicted <- t.total_mispredicted + 1
      end;
      predictor.Predictor.update ~addr ~taken;
      if ring_depth > 0 then ring_push addr taken !misp
    end;
    match config.mode with
    | Periodic | Lbr _ ->
        decr countdown;
        if !countdown <= 0 then
          fire ~is_branch ~addr ~taken ~misp:!misp
            ~next:(Source.next_addr source)
    | Mispredict ->
        if !misp then begin
          decr countdown;
          if !countdown <= 0 then
            fire ~is_branch ~addr ~taken ~misp:!misp
              ~next:(Source.next_addr source)
        end
  done;
  t.retired <- !retired;
  t

let collect_trace ?predictor ?max_insts ~config linked trace =
  collect_source ?predictor ?max_insts ~config linked (Source.replay trace)

let config t = t.config

let complete_coverage t =
  t.config.mode = Periodic && t.config.period = 1

let retired t = t.retired
let total_branches t = t.total_branches
let total_mispredicted t = t.total_mispredicted
let samples t = t.samples
let lbr_captured t = t.lbr_captured

let block_hits t =
  Hashtbl.fold (fun addr hits acc -> (addr, hits) :: acc) t.block_tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let block_hit t ~addr =
  Option.value ~default:0 (Hashtbl.find_opt t.block_tbl addr)

let sorted_addrs tbl =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) tbl [] |> List.sort Int.compare

let ip_branch t ~addr = Hashtbl.find_opt t.ip_tbl addr
let ip_branch_addrs t = sorted_addrs t.ip_tbl
let lbr_branch t ~addr = Hashtbl.find_opt t.lbr_tbl addr
let lbr_branch_addrs t = sorted_addrs t.lbr_tbl
