(** Sampled hardware-profile collection.

    The paper's compiler consumes an exact edge/misprediction profile;
    every production PGO pipeline instead feeds it sparse hardware
    counters — periodic PMU samples, LBR last-K-branch records, or
    mispredict-event samples à la HWPGO. This module models those three
    collection modes over the same architectural event stream the exact
    profiler consumes ({!Dmp_exec.Source}), so sampled and exact
    profiles of one run are directly comparable.

    What a sampler observes:

    - Free-running totals — retired instructions, conditional-branch
      retirements, mispredictions under the profiling predictor — are
      counted {e exactly}, like real PMU fixed counters read alongside
      the sampling event.
    - At each {e sample trigger} it records the current retirement:
      the (IP, next-IP) pair (charging a block-entry hit when the next
      instruction starts a basic block) and, when the sampled
      instruction is a conditional branch, its direction and whether
      the profiling predictor mispredicted it.
    - In {!Lbr} and {!Mispredict} modes a ring of the last K
      conditional-branch records (address, direction, misprediction) is
      flushed into the sample and cleared (clearing models the
      overlapping-window deduplication real LBR tools perform).

    Triggers: {!Periodic} and {!Lbr} fire every ~[period] retired
    instructions; {!Mispredict} fires every ~[period] misprediction
    events, which concentrates coverage on exactly the hard branches
    DMP cares about and leaves predictable code nearly unsampled. All
    gaps carry a deterministic seeded jitter (±period/4) so sampling
    never locks onto loop periods yet remains reproducible: the same
    (config, stream) always yields the same samples, on any domain.
    A [period] of 1 has no jitter and samples every trigger event.

    The profiling predictor runs over {e every} conditional branch
    regardless of the sampling period — mirroring the hardware
    predictor, whose outcome a sample merely reads — so the
    misprediction bits of sparse samples are drawn from the same
    predictor state the exact profiler sees. *)

open Dmp_ir
open Dmp_exec
open Dmp_predictor

type mode =
  | Periodic  (** retired-instruction trigger; records the IP only *)
  | Lbr of int
      (** retired-instruction trigger; each sample also flushes the
          last-K conditional-branch records *)
  | Mispredict
      (** misprediction-event trigger (HWPGO-style); each sample
          records the mispredicting branch plus the last
          {!default_lbr_depth} branch records *)

type config = { mode : mode; period : int; seed : int }

val default_lbr_depth : int

val format_version : int
(** Bump when sampling or reconstruction semantics change in a way that
    alters reconstructed profiles: {!Dmp_experiments.Disk_cache} folds
    it into the cache entry name of sampled profiles. *)

val mode_to_string : mode -> string
val mode_of_string : string -> mode option
(** Accepts ["periodic"], ["lbr"] (default depth), ["lbrK"] for a
    positive K, and ["misp"] / ["mispredict"]. *)

val config_to_string : config -> string
(** Filename-safe rendering, e.g. ["lbr16-p1000-s42"]. Injective on
    valid configs — two configs differing in mode, period or seed
    render differently. *)

type counters = {
  mutable s_executed : int;
  mutable s_taken : int;
  mutable s_mispredicted : int;
}

type t

val collect_source :
  ?predictor:Predictor.t -> ?max_insts:int -> config:config -> Linked.t ->
  Source.t -> t
(** Consume the stream and collect samples. The default [predictor] is
    the same profiling perceptron {!Dmp_profile.Profile.collect_source}
    uses, and the cap semantics are identical, so a period-1
    {!Periodic} sampler observes exactly the events the exact profiler
    counts. Raises [Invalid_argument] on [period < 1] or a
    non-positive LBR depth. *)

val collect_trace :
  ?predictor:Predictor.t -> ?max_insts:int -> config:config -> Linked.t ->
  Trace.t -> t
(** {!collect_source} over a packed-trace replay. *)

val config : t -> config

val complete_coverage : t -> bool
(** A {!Periodic} sampler with [period = 1] observed every retired
    instruction: reconstruction degenerates to the exact profile. *)

(** {2 Exact free-running totals} *)

val retired : t -> int
val total_branches : t -> int
val total_mispredicted : t -> int

val samples : t -> int
(** Number of trigger firings. *)

val lbr_captured : t -> int
(** Total branch records flushed from the LBR ring across all samples. *)

(** {2 Sparse sampled counters}

    Address lists are sorted ascending, so iteration over a sampler is
    deterministic regardless of hash-table internals. *)

val block_hits : t -> (int * int) list
(** [(block start address, hits)] — one hit per sample whose retirement
    crossed into that block. *)

val block_hit : t -> addr:int -> int

val ip_branch : t -> addr:int -> counters option
(** Trigger-point branch observations: in {!Periodic}/{!Lbr} mode,
    samples that landed on a conditional branch; in {!Mispredict} mode
    the sampled misprediction events themselves. *)

val ip_branch_addrs : t -> int list

val lbr_branch : t -> addr:int -> counters option
(** Branch observations from flushed LBR records. *)

val lbr_branch_addrs : t -> int list
