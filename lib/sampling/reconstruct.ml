(* Full-profile reconstruction from sparse samples.

   Stage 1 scales the sampled counters by measured sampling rates
   (exact free-running totals / observed sample counts). Stage 2 infers
   the blocks no sample hit by flow conservation over each function's
   CFG: degree-1 propagation, then a short Gauss-Seidel pass filling
   the rest from probability-weighted inflow. Stage 3 converts block
   counts to integer per-edge counts and repairs them so every
   constrained block satisfies inflow = outflow exactly: processing
   blocks in index order, a surplus is pushed along a BFS path of out-
   edges to the nearest unconstrained block (entry or exit) and a
   deficit is fed along a BFS path of in-edges from one; a push changes
   the in- and out-flow of every intermediate block equally, so fixing
   one block never unbalances another and a single pass suffices.
   Branch counters are finally re-derived from the conserved edges so
   edge probabilities and block counts agree.

   Everything here is deterministic: tables are walked through sorted
   accessors, BFS visits successors in CFG order, and rounding is plain
   Float.round — the same sampler always reconstructs byte-identical
   counters. *)

open Dmp_ir
open Dmp_profile
module Cfg = Dmp_cfg.Cfg

(* Written with [x > 0.] so a NaN (which compares false against
   everything) maps to 0 instead of reaching [int_of_float], whose
   result on NaN is unspecified: a rate estimate over a degenerate
   sample set (e.g. a branch-free function under LBR sampling) must
   reconstruct as zero counts, deterministically. *)
let round_nonneg x = if x > 0. then int_of_float (Float.round x) else 0

(* ---- complete coverage: period-1 periodic sampling saw every event,
   the sampled counters ARE the exact profile ---- *)

let exact_profile linked s =
  let program = linked.Linked.program in
  let nf = Program.num_funcs program in
  let block_counts =
    Array.init nf (fun fi ->
        Array.make (Func.num_blocks (Program.func program fi)) 0)
  in
  List.iter
    (fun (addr, hits) ->
      let fi, bi = Linked.block_of_addr linked addr in
      block_counts.(fi).(bi) <- block_counts.(fi).(bi) + hits)
    (Sampler.block_hits s);
  (* The exact profiler pre-counts the program entry block before the
     first event; samples only see block entries crossed by a
     retirement. *)
  let mf, mb = Linked.block_of_addr linked (Linked.entry_addr linked) in
  block_counts.(mf).(mb) <- block_counts.(mf).(mb) + 1;
  let branches =
    List.map
      (fun addr ->
        let c = Option.get (Sampler.ip_branch s ~addr) in
        ( addr,
          { Profile.executed = c.Sampler.s_executed;
            taken = c.Sampler.s_taken;
            mispredicted = c.Sampler.s_mispredicted } ))
      (Sampler.ip_branch_addrs s)
  in
  Profile.of_raw linked
    (Profile.make_raw ~branches ~block_counts ~retired:(Sampler.retired s))

(* ---- stage 1: scaled per-branch estimates, (executed, taken,
   mispredicted) floats keyed by branch address ---- *)

let lbr_scale s =
  let scale =
    if Sampler.lbr_captured s = 0 then 0.
    else
      float_of_int (Sampler.total_branches s)
      /. float_of_int (Sampler.lbr_captured s)
  in
  assert (Float.is_finite scale);
  scale

let branch_estimates s =
  let tbl = Hashtbl.create 128 in
  let fl = float_of_int in
  (match (Sampler.config s).Sampler.mode with
  | Sampler.Periodic ->
      (* An IP sample represents [retired / samples] instructions. *)
      let scale =
        if Sampler.samples s = 0 then 0.
        else fl (Sampler.retired s) /. fl (Sampler.samples s)
      in
      assert (Float.is_finite scale);
      List.iter
        (fun addr ->
          let c = Option.get (Sampler.ip_branch s ~addr) in
          Hashtbl.replace tbl addr
            ( fl c.Sampler.s_executed *. scale,
              fl c.Sampler.s_taken *. scale,
              fl c.Sampler.s_mispredicted *. scale ))
        (Sampler.ip_branch_addrs s)
  | Sampler.Lbr _ ->
      (* An LBR record represents [total branches / records captured]
         branch retirements. *)
      let scale = lbr_scale s in
      List.iter
        (fun addr ->
          let c = Option.get (Sampler.lbr_branch s ~addr) in
          Hashtbl.replace tbl addr
            ( fl c.Sampler.s_executed *. scale,
              fl c.Sampler.s_taken *. scale,
              fl c.Sampler.s_mispredicted *. scale ))
        (Sampler.lbr_branch_addrs s)
  | Sampler.Mispredict ->
      (* Execution/direction counts from the LBR windows around the
         sampled mispredictions; misprediction counts from the trigger
         events themselves (each represents [total mispredictions /
         samples] — the windows oversample mispredicting
         neighbourhoods, the triggers do not). *)
      let bscale = lbr_scale s in
      List.iter
        (fun addr ->
          let c = Option.get (Sampler.lbr_branch s ~addr) in
          Hashtbl.replace tbl addr
            ( fl c.Sampler.s_executed *. bscale,
              fl c.Sampler.s_taken *. bscale,
              0. ))
        (Sampler.lbr_branch_addrs s);
      let mscale =
        if Sampler.samples s = 0 then 0.
        else fl (Sampler.total_mispredicted s) /. fl (Sampler.samples s)
      in
      assert (Float.is_finite mscale);
      List.iter
        (fun addr ->
          let c = Option.get (Sampler.ip_branch s ~addr) in
          let m = fl c.Sampler.s_executed *. mscale in
          match Hashtbl.find_opt tbl addr with
          | Some (e, t, _) -> Hashtbl.replace tbl addr (Float.max e m, t, m)
          | None ->
              let tk =
                fl c.Sampler.s_taken /. fl (max 1 c.Sampler.s_executed)
              in
              Hashtbl.replace tbl addr (m, m *. tk, m))
        (Sampler.ip_branch_addrs s));
  tbl

(* ---- stages 2+3: per-function flow solve ---- *)

type fsolve = {
  g : Cfg.t;
  edges : int array array;  (** parallel to [Cfg.successors] *)
  counts : int array;
  branches : (int * Profile.branch) list;  (** keyed by branch address *)
}

let gauss_seidel_passes = 10

let solve linked s ests ~main_func ~main_entry fi =
  let f = Program.func linked.Linked.program fi in
  let g = Cfg.of_func f in
  let n = Cfg.num_nodes g in
  let mode = (Sampler.config s).Sampler.mode in
  let block_scale =
    if Sampler.samples s = 0 then 0.
    else
      float_of_int (Sampler.retired s) /. float_of_int (Sampler.samples s)
  in
  assert (Float.is_finite block_scale);
  let branch_addr b =
    Linked.block_addr linked ~func:fi ~block:b
    + Array.length (Cfg.block g b).Block.body
  in
  let est b =
    match (Cfg.block g b).Block.term with
    | Term.Branch _ -> Hashtbl.find_opt ests (branch_addr b)
    | Term.Jump _ | Term.Ret | Term.Halt -> None
  in
  let taken_prob b =
    match est b with Some (e, t, _) when e > 0. -> t /. e | _ -> 0.5
  in
  let c = Array.make n 0. and known = Array.make n false in
  (* Direct estimates. IP block hits are retired-instruction-triggered
     in Periodic/Lbr mode; Mispredict-mode triggers are biased towards
     mispredicting regions, so there only branch-record evidence is
     trusted. *)
  if mode <> Sampler.Mispredict then
    for b = 0 to n - 1 do
      let hits =
        Sampler.block_hit s ~addr:(Linked.block_addr linked ~func:fi ~block:b)
      in
      if hits > 0 then begin
        c.(b) <- float_of_int hits *. block_scale;
        known.(b) <- true
      end
    done;
  if mode <> Sampler.Periodic then begin
    let inflow_est = Array.make n 0. in
    for p = 0 to n - 1 do
      match (est p, Cfg.branch_successors g p) with
      | Some (e, tk, _), Some (t, fall) when e > 0. ->
          c.(p) <- Float.max c.(p) e;
          known.(p) <- true;
          inflow_est.(t) <- inflow_est.(t) +. tk;
          inflow_est.(fall) <- inflow_est.(fall) +. (e -. tk)
      | _ -> ()
    done;
    for b = 0 to n - 1 do
      if inflow_est.(b) > 0. then begin
        c.(b) <- Float.max c.(b) inflow_est.(b);
        known.(b) <- true
      end
    done
  end;
  if fi = main_func then begin
    (* The exact profiler pre-counts the program entry once. *)
    c.(main_entry) <- c.(main_entry) +. 1.;
    known.(main_entry) <- true
  end;
  (* Degree-1 propagation: an unknown block pinched between known flow
     on a single-successor/single-predecessor edge carries it exactly. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to n - 1 do
      if not known.(b) then begin
        (match Cfg.predecessors g b with
        | [ p ] when known.(p) && List.length (Cfg.successors g p) = 1 ->
            c.(b) <- c.(p);
            known.(b) <- true;
            changed := true
        | _ -> ());
        if not known.(b) then
          match Cfg.successors g b with
          | [ (sb, _) ] when known.(sb) && Cfg.predecessors g sb = [ b ] ->
              c.(b) <- c.(sb);
              known.(b) <- true;
              changed := true
          | _ -> ()
      end
    done
  done;
  (* Gauss-Seidel smoothing for the rest: probability-weighted inflow,
     a few reverse-postorder passes so loop-carried flow converges. *)
  let edge_prob_into p b =
    List.fold_left
      (fun acc (sb, dir) ->
        if sb <> b then acc
        else
          acc
          +.
          match dir with
          | Cfg.Always -> 1.
          | Cfg.Taken -> taken_prob p
          | Cfg.Fallthrough -> 1. -. taken_prob p)
      0. (Cfg.successors g p)
  in
  let rpo = Cfg.reverse_postorder g in
  for _pass = 1 to gauss_seidel_passes do
    List.iter
      (fun b ->
        if not known.(b) then
          c.(b) <-
            List.fold_left
              (fun acc p -> acc +. (c.(p) *. edge_prob_into p b))
              0. (Cfg.predecessors g b))
      rpo
  done;
  (* Integer edge counts: distribute each block's count over its out-
     edges (largest share to the profiled direction), summing exactly
     to the block count. *)
  let cN = Array.map round_nonneg c in
  let edges =
    Array.init n (fun p ->
        match (Cfg.block g p).Block.term with
        | Term.Branch _ ->
            let e_t =
              min cN.(p) (round_nonneg (float_of_int cN.(p) *. taken_prob p))
            in
            [| e_t; cN.(p) - e_t |]
        | Term.Jump _ -> [| cN.(p) |]
        | Term.Ret | Term.Halt -> [||])
  in
  let outflow b = Array.fold_left ( + ) 0 edges.(b) in
  let inflow b =
    List.fold_left
      (fun acc p ->
        let acc = ref acc in
        List.iteri
          (fun j (sb, _) -> if sb = b then acc := !acc + edges.(p).(j))
          (Cfg.successors g p);
        !acc)
      0 (Cfg.predecessors g b)
  in
  let unconstrained b = b = Cfg.entry || Cfg.successors g b = [] in
  (* Push [delta] units from [b] along a BFS path of out-edges to the
     nearest unconstrained block. *)
  let push_forward b delta =
    let link = Array.make n (-1, -1) in
    let visited = Array.make n false in
    visited.(b) <- true;
    let q = Queue.create () in
    Queue.add b q;
    let found = ref (-1) in
    while !found < 0 && not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iteri
        (fun j (sb, _) ->
          if !found < 0 && not visited.(sb) then begin
            visited.(sb) <- true;
            link.(sb) <- (v, j);
            if unconstrained sb then found := sb else Queue.add sb q
          end)
        (Cfg.successors g v)
    done;
    if !found >= 0 then begin
      let cur = ref !found in
      while !cur <> b do
        let parent, j = link.(!cur) in
        edges.(parent).(j) <- edges.(parent).(j) + delta;
        cur := parent
      done
    end
  in
  (* Feed [delta] units into [b] along a BFS path of in-edges from the
     nearest unconstrained block (the function entry, whose external
     call flow is unconstrained). *)
  let push_backward b delta =
    let link = Array.make n (-1, -1) in
    let visited = Array.make n false in
    visited.(b) <- true;
    let q = Queue.create () in
    Queue.add b q;
    let found = ref (-1) in
    while !found < 0 && not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun p ->
          if !found < 0 && not visited.(p) then begin
            visited.(p) <- true;
            let j = ref (-1) in
            List.iteri
              (fun k (sb, _) -> if !j < 0 && sb = v then j := k)
              (Cfg.successors g p);
            link.(p) <- (v, !j);
            if unconstrained p then found := p else Queue.add p q
          end)
        (Cfg.predecessors g v)
    done;
    if !found >= 0 then begin
      let cur = ref !found in
      while !cur <> b do
        let child, j = link.(!cur) in
        edges.(!cur).(j) <- edges.(!cur).(j) + delta;
        cur := child
      done
    end
  in
  for b = 0 to n - 1 do
    if not (unconstrained b) then begin
      let inf = inflow b and out = outflow b in
      if inf > out then push_forward b (inf - out)
      else if out > inf then push_backward b (out - inf)
    end
  done;
  let counts =
    Array.init n (fun b ->
        if Cfg.successors g b = [] then inflow b else outflow b)
  in
  (* Branch counters from the conserved edges, so Profile.edge_prob and
     the block counts agree; unobserved branches keep the profiler's
     cold defaults by omission. *)
  let branches = ref [] in
  for p = n - 1 downto 0 do
    match (Cfg.block g p).Block.term with
    | Term.Branch _ ->
        let executed = edges.(p).(0) + edges.(p).(1) in
        if executed > 0 then begin
          let rate =
            match est p with
            | Some (e, _, m) when e > 0. -> Float.min 1. (m /. e)
            | _ -> 0.
          in
          let misp =
            min executed (round_nonneg (float_of_int executed *. rate))
          in
          branches :=
            ( branch_addr p,
              { Profile.executed; taken = edges.(p).(0);
                mispredicted = misp } )
            :: !branches
        end
    | Term.Jump _ | Term.Ret | Term.Halt -> ()
  done;
  { g; edges; counts; branches = !branches }

let infer_profile linked s =
  let ests = branch_estimates s in
  let program = linked.Linked.program in
  let nf = Program.num_funcs program in
  let main_func, main_entry =
    Linked.block_of_addr linked (Linked.entry_addr linked)
  in
  let branches = ref [] in
  let block_counts =
    Array.init nf (fun fi ->
        let fs = solve linked s ests ~main_func ~main_entry fi in
        branches := !branches @ fs.branches;
        fs.counts)
  in
  Profile.of_raw linked
    (Profile.make_raw ~branches:!branches ~block_counts
       ~retired:(Sampler.retired s))

let profile linked s =
  if Sampler.complete_coverage s then exact_profile linked s
  else infer_profile linked s

let flow_violations linked s =
  let ests = branch_estimates s in
  let program = linked.Linked.program in
  let nf = Program.num_funcs program in
  let main_func, main_entry =
    Linked.block_of_addr linked (Linked.entry_addr linked)
  in
  let violations = ref [] in
  for fi = nf - 1 downto 0 do
    let fs = solve linked s ests ~main_func ~main_entry fi in
    let g = fs.g in
    let inflow b =
      List.fold_left
        (fun acc p ->
          let acc = ref acc in
          List.iteri
            (fun j (sb, _) -> if sb = b then acc := !acc + fs.edges.(p).(j))
            (Cfg.successors g p);
          !acc)
        0 (Cfg.predecessors g b)
    in
    for b = Cfg.num_nodes g - 1 downto 0 do
      if
        b <> Cfg.entry
        && Cfg.predecessors g b <> []
        && Cfg.successors g b <> []
      then begin
        let inf = inflow b and out = Array.fold_left ( + ) 0 fs.edges.(b) in
        if inf <> out then violations := (fi, b, inf, out) :: !violations
      end
    done
  done;
  !violations
