(** Full-profile reconstruction from sparse hardware samples.

    Turns a {!Sampler.t} back into a dense {!Dmp_profile.Profile.t} so
    the selection pipeline ([Alg_exact] / [Alg_freq] / [Cost_model] /
    [Select]) runs unchanged on sampled profiles:

    + sampled branch and block counters are scaled by the measured
      sampling rate (exact free-running totals over observed sample
      counts — more faithful than the nominal period under jitter);
    + blocks no sample hit are inferred by flow conservation over the
      per-function {!Dmp_cfg.Cfg}: counts propagate along
      single-successor/single-predecessor edges, then a short
      Gauss-Seidel smoothing pass fills the rest from probability-
      weighted inflow;
    + block counts are converted to integer per-edge counts and
      repaired — imbalances pushed along CFG paths towards
      unconstrained blocks (function entries and exits) — so every
      interior block of the result satisfies inflow = outflow exactly;
    + branch counters are re-derived from the conserved edge counts
      (so [Profile.edge_prob] and block counts agree), and branches no
      sample observed fall back to the profiler's cold-branch
      contracts ([taken_prob] 0.5, [misp_rate] 0).

    A {!Sampler.complete_coverage} sampler (periodic, period 1)
    observed every event: reconstruction is then the identity and the
    result's counters are byte-identical to
    {!Dmp_profile.Profile.collect_trace} over the same stream.

    Reconstruction is deterministic: the same sampler always yields a
    profile with byte-identical serialised counters, on any domain. *)

open Dmp_ir
open Dmp_profile

val profile : Linked.t -> Sampler.t -> Profile.t

val flow_violations : Linked.t -> Sampler.t -> (int * int * int * int) list
(** Re-run the inference and report every interior block — one with
    both predecessors and successors, other than the function entry —
    whose reconstructed integer edge counts break flow conservation,
    as [(func, block, inflow, outflow)]. Empty for every reachable CFG
    whose blocks can reach an exit (the repair pass above); the
    invariant the test suite pins. *)
