(** The daemon's request core, independent of any transport: the socket
    server, the tests and the bench load generator all call
    {!respond}.

    Every annotate / profile / run request is keyed by a fingerprint
    ["kind/bench/set[/algo]"] and served through three layers: a
    byte-budgeted response LRU of rendered report strings; an
    in-flight table that coalesces identical concurrent requests onto
    one computation (exactly one pipeline execution per key, checked
    deterministically by the tests via [compute_hook]); and an
    admission semaphore bounding concurrent pipeline executions to the
    worker count. Stage values (traces, images, profiles, baselines,
    selections) live in the underlying {!Dmp_experiments.Runner}'s own
    in-memory LRU over the disk cache.

    Response bodies are produced by {!Render}, so they are
    byte-identical to the offline CLI's stdout for the same request. *)

type t

val create :
  ?benchmarks:Dmp_workload.Spec.t list ->
  ?max_insts:int ->
  ?cache_dir:string ->
  ?jobs:int ->
  ?mem_budget:int ->
  ?response_budget:int ->
  ?compute_hook:(string -> unit) ->
  unit ->
  t
(** [jobs] (default {!Dmp_exec.Pool.default_jobs}, i.e. clamped to the
    recommended domain count) sizes both the runner's parallel stages
    and the admission semaphore. [mem_budget] bounds the runner's
    stage LRU, [response_budget] the response LRU (default 64 MiB).
    [compute_hook] fires once per actual (non-coalesced, non-cached)
    computation with the request fingerprint — test instrumentation.
    @raise Invalid_argument when [jobs < 1]. *)

val respond : t -> Protocol.request -> (string, string) result * int
(** Serve one request: the rendered body or an error message, plus the
    observed latency in nanoseconds (already recorded in the per-kind
    histogram). Never raises: computation exceptions become [Error]
    responses. Safe to call from any number of threads. *)

val stats_text : t -> string
(** The stats report: request / error / coalescing counters, both LRU
    caches' hit/miss/eviction lines, per-kind latency percentiles, and
    the runner's stage-call table (whose call counts are how CI proves
    coalescing: N identical requests leave exactly one
    ["dmp (simulate)"] call). *)

val runner : t -> Dmp_experiments.Runner.t
val jobs : t -> int
val coalesced : t -> int
(** How many requests joined an in-flight identical computation. *)

val fingerprint_audit : t -> int * int
(** [(fingerprints, aliased_runs)]: distinct
    (benchmark, set, selection fingerprint) triples observed across
    computed run requests, and how many run computations carried a
    fingerprint first computed under a {e different} algorithm — runs
    the response LRU keys apart (its key includes the algorithm name)
    but whose simulation {!Dmp_experiments.Runner.dmp_memo} answered
    from the fingerprint memo without simulating. Both also appear in
    {!stats_text} as the ["selections:"] line. *)

val response_stats : t -> Mem_cache.stats
val histogram : t -> Protocol.request -> Histogram.t
(** The latency histogram of the request's kind. *)
