(* The serving layer's in-memory LRU is the executor-level cache
   re-exported under the daemon's namespace: [Dmp_serve.Mem_cache] and
   [Dmp_exec.Mem_cache] are the same module (and the same types), so
   the runner's stage cache and the daemon's response cache share one
   implementation and one stats format. *)

include Dmp_exec.Mem_cache
