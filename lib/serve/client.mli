(** Blocking client for the serving daemon: one connection, any number
    of synchronous request/response round-trips. *)

type t

val connect_unix : ?wait_s:float -> string -> t
(** Connect to the daemon's Unix-domain socket. [wait_s] retries
    connection-refused / not-found for that many seconds (startup
    grace for scripts that launch the daemon and connect immediately);
    default is one immediate attempt.
    @raise Unix.Unix_error when the connection (still) fails. *)

val connect_tcp : string -> int -> t

val request : t -> Protocol.request -> (Protocol.response, string) result
(** One round-trip. [Error] is a transport or protocol-decode failure;
    a served error (unknown benchmark, failed computation) comes back
    as [Ok { ok = false; body = message; _ }]. *)

val close : t -> unit
