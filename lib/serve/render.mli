(** Report rendering shared by the offline CLI and the daemon, so both
    produce byte-identical output by construction. *)

val run_text :
  algo:string ->
  ann:Dmp_core.Annotation.t ->
  base:Dmp_uarch.Stats.t ->
  dmp:Dmp_uarch.Stats.t ->
  string
(** The [dmp run] report: baseline and DMP statistics blocks followed
    by the IPC comparison line. *)

val annotate_text : algo:string -> Dmp_core.Annotation.t -> string
(** The [dmp annotate] console report. *)

val profile_text : Dmp_ir.Linked.t -> Dmp_profile.Profile.t -> string
(** The [dmp profile] per-branch report (exact-profile part; the CLI's
    sampling mode prints its own header line before this). *)
