(** Fixed-bucket (HDR-style) latency histogram in nanoseconds.

    Log-linear buckets: exact below 32, then 32 sub-buckets per
    power-of-two octave, bounding relative error at ~3% across the
    whole range. The bucket array is allocated once; {!record} is
    allocation-free, so recording on the serving hot path costs an
    index computation and one increment. Thread-safe. *)

type t

val create : unit -> t
val record : t -> int -> unit
(** Record a latency in nanoseconds (negative values clamp to 0). *)

val count : t -> int
val max_ns : t -> int
(** The exact maximum recorded value (not bucket-quantised). *)

val percentile : t -> float -> int
(** [percentile t p] for [0 < p <= 100], in nanoseconds. Reports the
    inclusive upper bound of the target bucket (clamped to the exact
    max), so the estimate errs high. 0 when empty.
    @raise Invalid_argument when [p] is out of range. *)

val ns_string : int -> string
(** Render nanoseconds human-readable: ["850ns"], ["12.3us"],
    ["4.5ms"], ["1.20s"]. *)

val summary : t -> string
(** ["count=... p50=... p90=... p99=... max=..."]. *)
