(* The daemon's request core, transport-free so tests can drive it
   directly from threads.

   Layering per request:

     response LRU  (rendered report strings, keyed by the request
        |           fingerprint "kind/bench/set[/algo]")
     in-flight table (identical concurrent requests coalesce onto the
        |            first one's computation — exactly one execution)
     admission semaphore (at most [jobs] pipeline executions at once)
     Runner        (stage LRU over the disk cache: traces, images,
                    profiles, baselines, selections)

   The response-cache probe and the in-flight probe happen under one
   mutex, so a request either hits the cache, joins an in-flight
   computation, or becomes the unique computer of its key — there is
   no window for two computers of the same key. The computer publishes
   its result to the cache *before* leaving the in-flight table, so
   "exactly one execution per key" holds deterministically, not just
   probabilistically. Errors are published to waiters but never
   cached. *)

open Dmp_workload
open Dmp_experiments

type cell = {
  cond : Condition.t;
  mutable result : (string, string) result option;
}

type t = {
  runner : Runner.t;
  jobs : int;
  admit : Semaphore.Counting.t;
  responses : string Mem_cache.t;
  inflight : (string, cell) Hashtbl.t;
  m : Mutex.t;
  mutable coalesced : int;
  mutable requests : int;
  mutable errors : int;
  (* Response-LRU key audit: run responses are keyed by
     "run/bench/set/algo", but two algorithms can select behaviourally
     identical annotations — the table maps each distinct
     (bench, set, selection fingerprint) to the first algorithm that
     computed it, and [fp_aliased] counts later run computations whose
     simulation the runner's fingerprint memo answered without
     simulating. *)
  run_fps : (string, string) Hashtbl.t;
  mutable fp_aliased : int;
  hists : Histogram.t array;
  compute_hook : (string -> unit) option;
}

let default_response_budget = 64 * 1024 * 1024

let create ?benchmarks ?max_insts ?cache_dir ?jobs ?mem_budget
    ?(response_budget = default_response_budget) ?compute_hook () =
  let jobs =
    match jobs with Some j -> j | None -> Dmp_exec.Pool.default_jobs ()
  in
  if jobs < 1 then invalid_arg "Service.create: jobs must be >= 1";
  {
    runner =
      Runner.create ?benchmarks ?max_insts ?cache_dir ~jobs ?mem_budget ();
    jobs;
    admit = Semaphore.Counting.make jobs;
    responses = Mem_cache.create ~budget:response_budget ~name:"responses" ();
    inflight = Hashtbl.create 32;
    m = Mutex.create ();
    coalesced = 0;
    requests = 0;
    errors = 0;
    run_fps = Hashtbl.create 32;
    fp_aliased = 0;
    hists = Array.init Protocol.kind_count (fun _ -> Histogram.create ());
    compute_hook;
  }

let runner t = t.runner
let jobs t = t.jobs

let coalesced t =
  Mutex.lock t.m;
  let n = t.coalesced in
  Mutex.unlock t.m;
  n

let fingerprint_audit t =
  Mutex.lock t.m;
  let r = (Hashtbl.length t.run_fps, t.fp_aliased) in
  Mutex.unlock t.m;
  r

let response_stats t = Mem_cache.stats t.responses
let histogram t req = t.hists.(Protocol.kind_index req)

(* ---------- request validation (error bodies match the CLI's
   stderr diagnostics, newline excepted) ---------- *)

let validate_bench t bench =
  if List.mem bench (Runner.names t.runner) then Ok ()
  else
    Error
      (Printf.sprintf "unknown benchmark %s; known: %s" bench
         (String.concat ", " (Runner.names t.runner)))

let validate_set set =
  match Input_gen.set_of_string_opt set with
  | Some s -> Ok s
  | None ->
      Error
        (Printf.sprintf "unknown input set %s; known: reduced, train, ref" set)

let validate_algo algo =
  match Variants.of_string algo with
  | Some _ -> Ok ()
  | None ->
      Error
        (Printf.sprintf "unknown algorithm %s; known: %s" algo
           (String.concat ", " Variants.names))

let ( let* ) = Result.bind

(* ---------- coalescing response cache ---------- *)

let cached t key compute =
  Mutex.lock t.m;
  match Mem_cache.find t.responses key with
  | Some body ->
      Mutex.unlock t.m;
      Ok body
  | None -> (
      match Hashtbl.find_opt t.inflight key with
      | Some cell ->
          t.coalesced <- t.coalesced + 1;
          let rec wait () =
            match cell.result with
            | Some r -> r
            | None ->
                Condition.wait cell.cond t.m;
                wait ()
          in
          let r = wait () in
          Mutex.unlock t.m;
          r
      | None ->
          let cell = { cond = Condition.create (); result = None } in
          Hashtbl.replace t.inflight key cell;
          Mutex.unlock t.m;
          (match t.compute_hook with Some h -> h key | None -> ());
          let r =
            Semaphore.Counting.acquire t.admit;
            Fun.protect
              ~finally:(fun () -> Semaphore.Counting.release t.admit)
              (fun () ->
                try Ok (compute ()) with
                | Invalid_argument msg | Failure msg -> Error msg
                | e -> Error (Printexc.to_string e))
          in
          Mutex.lock t.m;
          (match r with
          | Ok body ->
              Mem_cache.add t.responses key
                ~size:(String.length key + String.length body + 64)
                body
          | Error _ -> ());
          cell.result <- Some r;
          Condition.broadcast cell.cond;
          Hashtbl.remove t.inflight key;
          Mutex.unlock t.m;
          r)

(* ---------- per-kind handlers ---------- *)

let annotate t ~bench ~set ~algo =
  let* () = validate_bench t bench in
  let* s = validate_set set in
  let* () = validate_algo algo in
  cached t
    (Printf.sprintf "annotate/%s/%s/%s" bench set algo)
    (fun () ->
      Render.annotate_text ~algo (Runner.selection t.runner bench s ~algo))

let profile t ~bench ~set =
  let* () = validate_bench t bench in
  let* s = validate_set set in
  cached t
    (Printf.sprintf "profile/%s/%s" bench set)
    (fun () ->
      Render.profile_text
        (Runner.linked t.runner bench)
        (Runner.profile t.runner bench s))

let audit_fingerprint t ~bench ~set ~algo fp =
  let fkey = Printf.sprintf "%s/%s/%s" bench set fp in
  Mutex.lock t.m;
  (match Hashtbl.find_opt t.run_fps fkey with
  | Some first -> if first <> algo then t.fp_aliased <- t.fp_aliased + 1
  | None -> Hashtbl.replace t.run_fps fkey algo);
  Mutex.unlock t.m

let run t ~bench ~set ~algo =
  let* () = validate_bench t bench in
  let* s = validate_set set in
  let* () = validate_algo algo in
  cached t
    (Printf.sprintf "run/%s/%s/%s" bench set algo)
    (fun () ->
      let ann = Runner.selection t.runner bench s ~algo in
      audit_fingerprint t ~bench ~set ~algo
        (Runner.annotation_fingerprint t.runner bench ann);
      let base = Runner.baseline ~set:s t.runner bench in
      (* Memoized by selection fingerprint: an aliased algorithm's run
         reuses the earlier simulation's statistics. *)
      let dmp = Runner.dmp_memo ~set:s t.runner bench ann in
      Render.run_text ~algo ~ann ~base ~dmp)

let stats_text t =
  let b = Buffer.create 1024 in
  Mutex.lock t.m;
  let requests = t.requests
  and errors = t.errors
  and coalesced = t.coalesced
  and inflight = Hashtbl.length t.inflight
  and fingerprints = Hashtbl.length t.run_fps
  and fp_aliased = t.fp_aliased in
  Mutex.unlock t.m;
  Printf.bprintf b "== dmp serve stats ==\n";
  Printf.bprintf b "requests=%d errors=%d coalesced=%d inflight=%d jobs=%d\n"
    requests errors coalesced inflight t.jobs;
  Printf.bprintf b "selections: fingerprints=%d aliased-runs=%d\n" fingerprints
    fp_aliased;
  Buffer.add_string b
    (Mem_cache.stats_line "responses" (Mem_cache.stats t.responses));
  Buffer.add_char b '\n';
  Buffer.add_string b (Mem_cache.stats_line "stages" (Runner.mem_stats t.runner));
  Buffer.add_char b '\n';
  Array.iteri
    (fun i h ->
      Printf.bprintf b "latency %-8s %s\n"
        Protocol.kind_names.(i)
        (Histogram.summary h))
    t.hists;
  Printf.bprintf b "stage calls:\n%s" (Runner.timing_summary t.runner);
  Buffer.contents b

let respond t req =
  let t0 = Unix.gettimeofday () in
  let r =
    match req with
    | Protocol.Stats -> Ok (stats_text t)
    | Protocol.Annotate { bench; set; algo } -> annotate t ~bench ~set ~algo
    | Protocol.Profile { bench; set } -> profile t ~bench ~set
    | Protocol.Run { bench; set; algo } -> run t ~bench ~set ~algo
  in
  let ns =
    let x = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
    if x < 0 then 0 else x
  in
  Histogram.record t.hists.(Protocol.kind_index req) ns;
  Mutex.lock t.m;
  t.requests <- t.requests + 1;
  (match r with Error _ -> t.errors <- t.errors + 1 | Ok _ -> ());
  Mutex.unlock t.m;
  (r, ns)
