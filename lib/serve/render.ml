(* Report rendering shared by the offline CLI and the daemon.

   The CLI's run / annotate / profile commands print exactly these
   strings and the daemon serves exactly these strings, so
   "daemon response = CLI stdout" is checked byte-for-byte in the
   serve tests and in CI — the renderer is the single source of the
   format. *)

open Dmp_ir
open Dmp_uarch
open Dmp_experiments

let run_text ~algo ~ann ~base ~dmp =
  Fmt.str "--- baseline ---@.%a@." Stats.pp base
  ^ Fmt.str "--- DMP (%s, %d diverge branches) ---@.%a@." algo
      (Dmp_core.Annotation.count ann)
      Stats.pp dmp
  ^ Fmt.str "IPC %.3f -> %.3f (%+.1f%%)@." (Stats.ipc base) (Stats.ipc dmp)
      (Runner.speedup_pct ~base dmp)

let annotate_text ~algo ann =
  Fmt.str "%d diverge branches (%s):@.%a@."
    (Dmp_core.Annotation.count ann)
    algo Dmp_core.Annotation.pp ann

let profile_text linked profile =
  let module P = Dmp_profile.Profile in
  let b = Buffer.create 1024 in
  Printf.bprintf b "retired=%d branch-execs=%d mispredictions=%d mpki=%.2f\n"
    (P.retired profile)
    (P.total_branch_executions profile)
    (P.total_mispredictions profile)
    (P.mpki profile);
  List.iter
    (fun addr ->
      match P.branch profile ~addr with
      | Some s when s.P.executed > 0 ->
          let l = Linked.loc linked addr in
          let f = Program.func linked.Linked.program l.Linked.func in
          let blk = Func.block f l.Linked.block in
          Printf.bprintf b "br@%-6d %-24s exec=%-8d taken=%.3f misp=%.3f\n"
            addr
            (f.Func.name ^ "/" ^ blk.Block.label)
            s.P.executed
            (float_of_int s.P.taken /. float_of_int s.P.executed)
            (float_of_int s.P.mispredicted /. float_of_int s.P.executed)
      | Some _ | None -> ())
    (P.branch_addrs profile);
  Buffer.contents b
