(** Socket front-end of the serving daemon: a Unix-domain listener
    (and optionally a loopback TCP one), one thread per connection,
    any number of length-prefixed requests per connection.

    Malformed input never kills the daemon: an undecodable request
    gets an error response and the connection continues; an oversized
    length prefix gets an error response and the connection closes
    (its framing is lost); a truncated frame or EOF closes quietly.

    {!stop} is async-signal-safe (a self-pipe write), so the CLI
    installs it as the SIGTERM / SIGINT handler: the accept loop wakes,
    refuses new connections, lets every in-flight request finish and
    flush, and {!run} returns — after which the caller dumps final
    stats covering every answered request. *)

type t

val create :
  service:Service.t ->
  ?unix_path:string ->
  ?tcp_port:int ->
  unit ->
  t
(** Bind and listen (at least one of [unix_path] / [tcp_port] is
    required; TCP binds loopback only). An existing file at
    [unix_path] is unlinked first — the daemon owns its socket path.
    @raise Invalid_argument when no listener is requested,
    [Unix.Unix_error] when binding fails. *)

val run : t -> unit
(** Serve until {!stop}; returns after the drain completes and the
    socket file is removed. Call from the main thread. *)

val stop : t -> unit
(** Request shutdown; safe to call from a signal handler or any
    thread. Idempotent. *)

val service : t -> Service.t
val accepted : t -> int
(** Connections accepted so far. *)
