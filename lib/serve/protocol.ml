(* Length-prefixed binary wire protocol.

   Frame:    u32 BE payload length | payload
   Request:  u8 kind | u8 field count | (u16 BE length, bytes) * count
             kinds: 1 annotate (bench, set, algo)
                    2 profile  (bench, set)
                    3 run      (bench, set, algo)
                    4 stats    (no fields)
   Response: u8 status (0 ok, 1 error) | u64 BE server latency ns | body

   Decoding never raises: every read is bounds-checked and a malformed
   payload (bad kind, wrong arity, field overrunning the payload,
   trailing garbage) is an [Error]. Frame reading classifies its
   failure modes — clean EOF between frames, truncation inside a
   frame, a length prefix over the limit — so the server can answer
   garbage with an error response instead of dying. *)

type request =
  | Annotate of { bench : string; set : string; algo : string }
  | Profile of { bench : string; set : string }
  | Run of { bench : string; set : string; algo : string }
  | Stats

type response = { ok : bool; latency_ns : int; body : string }

let kind_name = function
  | Annotate _ -> "annotate"
  | Profile _ -> "profile"
  | Run _ -> "run"
  | Stats -> "stats"

let kind_index = function
  | Annotate _ -> 0
  | Profile _ -> 1
  | Run _ -> 2
  | Stats -> 3

let kind_count = 4
let kind_names = [| "annotate"; "profile"; "run"; "stats" |]

(* Requests are a handful of short names; responses carry rendered
   reports (the largest experiment tables are well under a MiB, the
   margin is for future targets). *)
let max_request_frame = 4096
let max_response_frame = 1 lsl 26

let encode_request req =
  let kind, fields =
    match req with
    | Annotate { bench; set; algo } -> (1, [ bench; set; algo ])
    | Profile { bench; set } -> (2, [ bench; set ])
    | Run { bench; set; algo } -> (3, [ bench; set; algo ])
    | Stats -> (4, [])
  in
  let b = Buffer.create 64 in
  Buffer.add_uint8 b kind;
  Buffer.add_uint8 b (List.length fields);
  List.iter
    (fun f ->
      if String.length f > 0xffff then
        invalid_arg "Protocol.encode_request: field too long";
      Buffer.add_uint16_be b (String.length f);
      Buffer.add_string b f)
    fields;
  Buffer.contents b

let decode_request s =
  let len = String.length s in
  let pos = ref 0 in
  let u8 () =
    if !pos >= len then Error "truncated request"
    else begin
      let v = Char.code s.[!pos] in
      incr pos;
      Ok v
    end
  in
  let field () =
    if !pos + 2 > len then Error "truncated field length"
    else begin
      let n = (Char.code s.[!pos] lsl 8) lor Char.code s.[!pos + 1] in
      pos := !pos + 2;
      if !pos + n > len then Error "field overruns payload"
      else begin
        let f = String.sub s !pos n in
        pos := !pos + n;
        Ok f
      end
    end
  in
  let ( let* ) = Result.bind in
  let* kind = u8 () in
  let* count = u8 () in
  let rec fields acc n =
    if n = 0 then Ok (List.rev acc)
    else
      let* f = field () in
      fields (f :: acc) (n - 1)
  in
  let* fs = fields [] count in
  if !pos <> len then Error "trailing bytes after request"
  else
    match (kind, fs) with
    | 1, [ bench; set; algo ] -> Ok (Annotate { bench; set; algo })
    | 2, [ bench; set ] -> Ok (Profile { bench; set })
    | 3, [ bench; set; algo ] -> Ok (Run { bench; set; algo })
    | 4, [] -> Ok Stats
    | (1 | 2 | 3 | 4), _ ->
        Error
          (Printf.sprintf "wrong field count %d for request kind %d" count
             kind)
    | k, _ -> Error (Printf.sprintf "unknown request kind %d" k)

let encode_response r =
  let b = Buffer.create (String.length r.body + 16) in
  Buffer.add_uint8 b (if r.ok then 0 else 1);
  Buffer.add_int64_be b (Int64.of_int r.latency_ns);
  Buffer.add_string b r.body;
  Buffer.contents b

let decode_response s =
  if String.length s < 9 then Error "truncated response"
  else
    match Char.code s.[0] with
    | (0 | 1) as status ->
        let latency_ns = Int64.to_int (String.get_int64_be s 1) in
        Ok
          {
            ok = status = 0;
            latency_ns;
            body = String.sub s 9 (String.length s - 9);
          }
    | k -> Error (Printf.sprintf "unknown response status %d" k)

(* ---------- framing over a file descriptor ---------- *)

let rec write_all fd b pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd b pos len
      with Unix.Unix_error (EINTR, _, _) -> 0
    in
    write_all fd b (pos + n) (len - n)
  end

let write_frame fd payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  write_all fd b 0 (4 + n)

(* [`Eof got] distinguishes a clean close (0 bytes read) from a close
   mid-item. *)
let read_exact fd b pos len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    match Unix.read fd b (pos + !got) (len - !got) with
    | 0 -> eof := true
    | n -> got := !got + n
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done;
  if !eof then `Eof !got else `Ok

let read_frame ~max fd =
  let hdr = Bytes.create 4 in
  match read_exact fd hdr 0 4 with
  | `Eof 0 -> `Eof
  | `Eof _ -> `Truncated
  | `Ok -> (
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max then `Too_big len
      else
        let b = Bytes.create len in
        match read_exact fd b 0 len with
        | `Eof _ -> `Truncated
        | `Ok -> `Frame (Bytes.unsafe_to_string b))
