(* Socket front-end: accept loop on the main thread, one sys-thread
   per connection (connections spend most of their life blocked on
   socket I/O or on the service's coalescing condition variables, so
   threads — which share the runtime lock but release it around
   blocking syscalls — are the right weight; the CPU-bound work
   underneath runs on the runner's domains).

   Shutdown is cooperative: [stop] (callable from a signal handler)
   writes one byte to a self-pipe, which wakes the accept loop's
   [select]; the loop closes the listeners (new connections are
   refused from that point), then waits until every connection thread
   has drained — a thread finishes its in-flight request, writes the
   response, notices [stopping] and exits. Only then does [run]
   return, so the caller can dump final stats knowing they cover every
   answered request. *)

type t = {
  service : Service.t;
  listeners : Unix.file_descr list;
  unix_path : string option;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  m : Mutex.t;
  drained : Condition.t;
  mutable stopping : bool;
  mutable active : int;
  mutable accepted : int;
}

let create ~service ?unix_path ?tcp_port () =
  let listeners = ref [] in
  (match unix_path with
  | None -> ()
  | Some p ->
      (* The daemon owns its socket path: a leftover file from a
         previous run would make bind fail forever. *)
      (try Unix.unlink p with Unix.Unix_error _ -> ());
      let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
      Unix.bind fd (ADDR_UNIX p);
      Unix.listen fd 64;
      listeners := fd :: !listeners);
  (match tcp_port with
  | None -> ()
  | Some port ->
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      Unix.setsockopt fd SO_REUSEADDR true;
      Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      listeners := fd :: !listeners);
  if !listeners = [] then
    invalid_arg "Server.create: need a unix_path or a tcp_port";
  let stop_r, stop_w = Unix.pipe () in
  {
    service;
    listeners = !listeners;
    unix_path;
    stop_r;
    stop_w;
    m = Mutex.create ();
    drained = Condition.create ();
    stopping = false;
    active = 0;
    accepted = 0;
  }

let service t = t.service

let stop t =
  t.stopping <- true;
  (* Wake the select; safe from a signal handler (one write syscall,
     no locks). A full pipe or a second stop is fine — the loop only
     needs the flag plus any readable byte. *)
  try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

(* ---------- per-connection protocol loop ---------- *)

let send fd resp =
  match Protocol.write_frame fd (Protocol.encode_response resp) with
  | () -> true
  | exception Unix.Unix_error _ -> false (* client went away *)

let error_response body = { Protocol.ok = false; latency_ns = 0; body }

let rec serve_conn t fd =
  (* Poll with a short timeout so idle connections notice [stopping];
     a connection inside a request finishes it first (drain). *)
  match Unix.select [ fd ] [] [] 0.2 with
  | exception Unix.Unix_error (EINTR, _, _) ->
      if not t.stopping then serve_conn t fd
  | [], _, _ -> if not t.stopping then serve_conn t fd
  | _ -> (
      match Protocol.read_frame ~max:Protocol.max_request_frame fd with
      | `Eof | `Truncated -> ()
      | `Too_big n ->
          (* The oversized payload was never read, so framing is lost:
             answer once, then close. *)
          ignore
            (send fd
               (error_response
                  (Printf.sprintf "request frame too large (%d bytes, max %d)"
                     n Protocol.max_request_frame)))
      | `Frame payload -> (
          match Protocol.decode_request payload with
          | Error msg ->
              if send fd (error_response ("bad request: " ^ msg)) then
                serve_conn t fd
          | Ok req ->
              let r, latency_ns = Service.respond t.service req in
              let resp =
                match r with
                | Ok body -> { Protocol.ok = true; latency_ns; body }
                | Error body -> { Protocol.ok = false; latency_ns; body }
              in
              if send fd resp then serve_conn t fd))

let handle t fd =
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Mutex.lock t.m;
      t.active <- t.active - 1;
      Condition.broadcast t.drained;
      Mutex.unlock t.m)
    (fun () -> serve_conn t fd)

let accept_one t l =
  match Unix.accept l with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _)
    -> ()
  | fd, _ ->
      Mutex.lock t.m;
      t.active <- t.active + 1;
      t.accepted <- t.accepted + 1;
      Mutex.unlock t.m;
      ignore (Thread.create (handle t) fd)

let run t =
  let rec loop () =
    if not t.stopping then begin
      match Unix.select (t.stop_r :: t.listeners) [] [] (-1.) with
      | exception Unix.Unix_error (EINTR, _, _) -> loop ()
      | ready, _, _ ->
          if not (List.mem t.stop_r ready) then begin
            List.iter
              (fun l -> if List.mem l ready then accept_one t l)
              t.listeners;
            loop ()
          end
    end
  in
  loop ();
  (* Refuse new connections immediately, then drain the live ones. *)
  List.iter
    (fun l -> try Unix.close l with Unix.Unix_error _ -> ())
    t.listeners;
  Mutex.lock t.m;
  while t.active > 0 do
    Condition.wait t.drained t.m
  done;
  Mutex.unlock t.m;
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  match t.unix_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ()

let accepted t =
  Mutex.lock t.m;
  let n = t.accepted in
  Mutex.unlock t.m;
  n
