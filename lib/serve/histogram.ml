(* HDR-style log-linear latency histogram.

   Values (nanoseconds) land in fixed buckets: exact below [sub_count],
   then [sub_count] sub-buckets per power-of-two octave, giving a
   bounded relative error of 1/sub_count (~3%) at any magnitude. The
   bucket array is allocated once at [create]; [record] only does
   integer arithmetic and an increment under the mutex, so the serving
   hot path never allocates. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits (* 32 *)

(* Highest index: values up to 2^62 land in octave 62. *)
let num_buckets = ((62 - (sub_bits - 1)) * sub_count) + sub_count

type t = {
  counts : int array;
  mutable total : int;
  mutable max_v : int;
  m : Mutex.t;
}

let create () =
  { counts = Array.make num_buckets 0; total = 0; max_v = 0;
    m = Mutex.create () }

let msb v =
  let r = ref 0 and v = ref v in
  while !v > 1 do
    incr r;
    v := !v lsr 1
  done;
  !r

let bucket_of v =
  if v < sub_count then v
  else
    let p = msb v in
    (((p - (sub_bits - 1)) * sub_count) + (v lsr (p - sub_bits))) - sub_count

(* Inclusive upper bound of a bucket — what a percentile reports, so
   the estimate errs high (never promises a latency that was beaten). *)
let upper_of idx =
  if idx < sub_count then idx
  else
    let o = idx / sub_count and sub = idx mod sub_count in
    ((sub_count + sub + 1) lsl (o - 1)) - 1

let record t v =
  let v = if v < 0 then 0 else v in
  let idx = bucket_of v in
  let idx = if idx >= num_buckets then num_buckets - 1 else idx in
  Mutex.lock t.m;
  t.counts.(idx) <- t.counts.(idx) + 1;
  t.total <- t.total + 1;
  if v > t.max_v then t.max_v <- v;
  Mutex.unlock t.m

let count t =
  Mutex.lock t.m;
  let n = t.total in
  Mutex.unlock t.m;
  n

let max_ns t =
  Mutex.lock t.m;
  let v = t.max_v in
  Mutex.unlock t.m;
  v

let percentile t p =
  if p <= 0. || p > 100. then invalid_arg "Histogram.percentile";
  Mutex.lock t.m;
  let r =
    if t.total = 0 then 0
    else begin
      let target =
        let x = int_of_float (ceil (p /. 100. *. float_of_int t.total)) in
        if x < 1 then 1 else x
      in
      let cum = ref 0 and idx = ref 0 in
      while !cum < target && !idx < num_buckets do
        cum := !cum + t.counts.(!idx);
        incr idx
      done;
      min (upper_of (!idx - 1)) t.max_v
    end
  in
  Mutex.unlock t.m;
  r

let ns_string v =
  if v < 1_000 then Printf.sprintf "%dns" v
  else if v < 1_000_000 then Printf.sprintf "%.1fus" (float_of_int v /. 1e3)
  else if v < 1_000_000_000 then
    Printf.sprintf "%.1fms" (float_of_int v /. 1e6)
  else Printf.sprintf "%.2fs" (float_of_int v /. 1e9)

let summary t =
  Printf.sprintf "count=%d p50=%s p90=%s p99=%s max=%s" (count t)
    (ns_string (percentile t 50.))
    (ns_string (percentile t 90.))
    (ns_string (percentile t 99.))
    (ns_string (max_ns t))
