(* Minimal blocking client: one connection, synchronous
   request/response. The CLI's [dmp client], the bench load generator
   and the tests all sit on this. *)

type t = { fd : Unix.file_descr }

let connect_unix ?(wait_s = 0.) path =
  let deadline = Unix.gettimeofday () +. wait_s in
  let rec go () =
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect fd (ADDR_UNIX path) with
    | () -> { fd }
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED) as e, fn, arg) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () < deadline then begin
          (* Daemon still starting up: back off briefly and retry. *)
          ignore (Unix.select [] [] [] 0.05);
          go ()
        end
        else raise (Unix.Unix_error (e, fn, arg))
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  go ()

let connect_tcp host port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  match Unix.connect fd (ADDR_INET (addr, port)) with
  | () -> { fd }
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let request t req =
  match Protocol.write_frame t.fd (Protocol.encode_request req) with
  | exception Unix.Unix_error (e, _, _) ->
      Error ("send failed: " ^ Unix.error_message e)
  | () -> (
      match Protocol.read_frame ~max:Protocol.max_response_frame t.fd with
      | `Frame s -> Protocol.decode_response s
      | `Eof | `Truncated -> Error "connection closed by server"
      | `Too_big n -> Error (Printf.sprintf "oversized response (%d bytes)" n))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
