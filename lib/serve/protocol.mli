(** Wire protocol of the serving daemon.

    Frames are a 4-byte big-endian payload length followed by the
    payload. A request payload is [u8 kind, u8 field count] followed by
    [u16 BE length]-prefixed string fields (kind 1 annotate: bench,
    set, algo; 2 profile: bench, set; 3 run: bench, set, algo; 4 stats:
    none). A response payload is [u8 status] (0 ok, 1 error), [u64 BE]
    server-side latency in nanoseconds, then the body — the rendered
    report on success, the error message otherwise.

    Decoding never raises; malformed bytes come back as [Error]. *)

type request =
  | Annotate of { bench : string; set : string; algo : string }
  | Profile of { bench : string; set : string }
  | Run of { bench : string; set : string; algo : string }
  | Stats

type response = { ok : bool; latency_ns : int; body : string }

val kind_name : request -> string
val kind_index : request -> int
(** Dense index for per-kind tables (0 annotate, 1 profile, 2 run,
    3 stats). *)

val kind_count : int
val kind_names : string array

val max_request_frame : int
(** Frame-length limit the server enforces on requests (4 KiB). *)

val max_response_frame : int
(** Frame-length limit the client enforces on responses (64 MiB). *)

val encode_request : request -> string
val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result

val write_frame : Unix.file_descr -> string -> unit
(** Write one length-prefixed frame. Raises [Unix.Unix_error] on a
    broken connection (EINTR is retried). *)

val read_frame :
  max:int ->
  Unix.file_descr ->
  [ `Frame of string | `Eof | `Truncated | `Too_big of int ]
(** Read one frame. [`Eof] is a clean close between frames,
    [`Truncated] a close inside one, [`Too_big] a length prefix over
    [max] (the payload is left unread — the connection's framing is
    lost and it should be closed after reporting the error). *)
