(** Per-function control-flow graph over block indices. *)

open Dmp_ir

type dir = Taken | Fallthrough | Always

type t = {
  func : Func.t;
  succs : (int * dir) list array;
  preds : int list array;
  exits : int list;
}

val dir_to_string : dir -> string
val of_func : Func.t -> t
val num_nodes : t -> int
val entry : int
val successors : t -> int -> (int * dir) list
val successor_blocks : t -> int -> int list
val predecessors : t -> int -> int list
val block : t -> int -> Block.t
val block_size : t -> int -> int
val is_conditional : t -> int -> bool

val exits : t -> int list
(** Blocks ending in [Ret] or [Halt]. *)

val reachable : t -> bool array

val reachable_from : t -> int -> bool array
(** Blocks reachable from an arbitrary start block (start included);
    the annotation validator uses it to check that a CFM point can be
    reached from both sides of its diverge branch. *)

val postorder : t -> int list
val reverse_postorder : t -> int list

val branch_successors : t -> int -> (int * int) option
(** [(taken, fall)] if block [i] ends in a conditional branch. *)
