open Dmp_ir

type dir = Taken | Fallthrough | Always

type t = {
  func : Func.t;
  succs : (int * dir) list array;
  preds : int list array;
  exits : int list;
}

let dir_to_string = function
  | Taken -> "T"
  | Fallthrough -> "NT"
  | Always -> "U"

let of_func func =
  let n = Func.num_blocks func in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  let exits = ref [] in
  for i = 0 to n - 1 do
    let b = Func.block func i in
    match b.Block.term with
    | Term.Branch { target; fall; _ } ->
        succs.(i) <- [ (target, Taken); (fall, Fallthrough) ];
        preds.(target) <- i :: preds.(target);
        if target <> fall then preds.(fall) <- i :: preds.(fall)
    | Term.Jump l ->
        succs.(i) <- [ (l, Always) ];
        preds.(l) <- i :: preds.(l)
    | Term.Ret | Term.Halt -> exits := i :: !exits
  done;
  { func; succs; preds; exits = List.rev !exits }

let num_nodes t = Func.num_blocks t.func
let entry = Func.entry
let successors t i = t.succs.(i)
let successor_blocks t i = List.map fst t.succs.(i)
let predecessors t i = t.preds.(i)
let block t i = Func.block t.func i
let block_size t i = Block.size (block t i)
let is_conditional t i = Block.is_conditional (block t i)
let exits t = t.exits

let reachable_from t start =
  let n = num_nodes t in
  let seen = Array.make n false in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter go (successor_blocks t i)
    end
  in
  go start;
  seen

let reachable t = reachable_from t entry

let postorder t =
  let n = num_nodes t in
  let seen = Array.make n false in
  let order = ref [] in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter go (successor_blocks t i);
      order := i :: !order
    end
  in
  go entry;
  (* [order] is now reverse postorder; postorder is its reverse. *)
  List.rev !order

let reverse_postorder t = List.rev (postorder t)

let branch_successors t i =
  match (block t i).Block.term with
  | Term.Branch { target; fall; _ } -> Some (target, fall)
  | Term.Jump _ | Term.Ret | Term.Halt -> None
