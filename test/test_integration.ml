(* End-to-end pipeline tests over real workload binaries (capped
   simulations keep them fast). *)

open Dmp_workload
open Dmp_core
open Dmp_uarch

let check = Alcotest.check
let cap = 150_000

let pipeline name set =
  let spec = Registry.find name in
  let linked = Spec.linked spec in
  let input = spec.Spec.input set in
  let profile = Dmp_profile.Profile.collect ~max_insts:cap linked ~input in
  (linked, input, profile)

let test_all_best_heur_beats_baseline_overall () =
  (* Across a representative subset, the full technique stack must show
     a clear mean improvement. *)
  let names = [ "vpr"; "twolf"; "parser"; "li"; "go" ] in
  let improvements =
    List.map
      (fun name ->
        let linked, input, profile = pipeline name Input_gen.Reduced in
        let ann = Select.run linked profile in
        let base =
          Sim.run ~config:Config.baseline ~max_insts:cap linked ~input
        in
        let dmp =
          Sim.run ~config:Config.dmp ~annotation:ann ~max_insts:cap linked
            ~input
        in
        (Stats.ipc dmp /. Stats.ipc base -. 1.) *. 100.)
      names
  in
  let mean =
    List.fold_left ( +. ) 0. improvements
    /. float_of_int (List.length improvements)
  in
  check Alcotest.bool "mean improvement > 10%" true (mean > 10.);
  List.iter
    (fun imp -> check Alcotest.bool "no large regression" true (imp > -5.))
    improvements

let test_careful_selection_beats_every_br () =
  let linked, input, profile = pipeline "vpr" Input_gen.Reduced in
  let best = Select.run linked profile in
  let every = Simple_select.run Simple_select.Every_br linked profile in
  let run ann =
    Stats.ipc
      (Sim.run ~config:Config.dmp ~annotation:ann ~max_insts:cap linked
         ~input)
  in
  check Alcotest.bool "all-best-heur > every-br" true
    (run best > run every)

let test_cost_model_close_to_heuristics () =
  (* Section 7.1: the cost-benefit model matches the tuned heuristics. *)
  let names = [ "vpr"; "li"; "crafty" ] in
  let deltas =
    List.map
      (fun name ->
        let linked, input, profile = pipeline name Input_gen.Reduced in
        let heur = Select.run ~config:Select.all_heuristic linked profile in
        let cost = Select.run ~config:Select.all_cost linked profile in
        let run ann =
          Stats.ipc
            (Sim.run ~config:Config.dmp ~annotation:ann ~max_insts:cap
               linked ~input)
        in
        abs_float (run heur -. run cost) /. run heur)
      names
  in
  List.iter
    (fun d -> check Alcotest.bool "within 20%" true (d < 0.20))
    deltas

let test_profile_input_set_robustness () =
  (* Fig. 9: selecting with the train profile costs little when running
     on the reduced input. *)
  let linked, input, profile_same = pipeline "twolf" Input_gen.Reduced in
  let _, _, profile_diff = pipeline "twolf" Input_gen.Train in
  let run ann =
    Stats.ipc
      (Sim.run ~config:Config.dmp ~annotation:ann ~max_insts:cap linked
         ~input)
  in
  let same = run (Select.run linked profile_same) in
  let diff = run (Select.run linked profile_diff) in
  check Alcotest.bool "diff-profile within 10% of same-profile" true
    (diff > same *. 0.9)

let test_replay_equals_live_across_suite () =
  (* Every real benchmark: profiling and both simulator configurations
     must be bit-identical whether the correct path comes from a live
     emulator, a replayed packed trace, or a pre-decoded image of that
     trace. *)
  let pbytes p = Marshal.to_string (Dmp_profile.Profile.to_raw p) [] in
  let sbytes (s : Stats.t) = Marshal.to_string s [] in
  List.iter
    (fun spec ->
      let name = spec.Spec.name in
      let linked = Spec.linked spec in
      let input = spec.Spec.input Input_gen.Reduced in
      let tr = Dmp_exec.Trace.capture ~max_insts:cap linked ~input in
      let img = Dmp_exec.Image.of_trace tr in
      let profile =
        Dmp_profile.Profile.collect ~max_insts:cap linked ~input
      in
      check Alcotest.bool (name ^ ": profile identical") true
        (pbytes profile
        = pbytes (Dmp_profile.Profile.collect_trace ~max_insts:cap linked tr));
      let base_live =
        sbytes (Sim.run ~config:Config.baseline ~max_insts:cap linked ~input)
      in
      check Alcotest.bool (name ^ ": baseline identical") true
        (base_live
        = sbytes
            (Sim.run_replay ~config:Config.baseline ~max_insts:cap linked tr));
      check Alcotest.bool (name ^ ": baseline image identical") true
        (base_live
        = sbytes
            (Sim.run_image ~config:Config.baseline ~max_insts:cap linked img));
      let ann = Select.run linked profile in
      let dmp_live =
        sbytes
          (Sim.run ~config:Config.dmp ~annotation:ann ~max_insts:cap linked
             ~input)
      in
      check Alcotest.bool (name ^ ": dmp identical") true
        (dmp_live
        = sbytes
            (Sim.run_replay ~config:Config.dmp ~annotation:ann ~max_insts:cap
               linked tr));
      check Alcotest.bool (name ^ ": dmp image identical") true
        (dmp_live
        = sbytes
            (Sim.run_image ~config:Config.dmp ~annotation:ann ~max_insts:cap
               linked img)))
    Registry.all

let test_selection_deterministic () =
  let linked, _, profile = pipeline "gcc" Input_gen.Reduced in
  let a = Select.run linked profile in
  let b = Select.run linked profile in
  check Alcotest.(list int) "same diverge branches"
    (Annotation.diverge_addrs a) (Annotation.diverge_addrs b)

let test_annotation_kinds_present_across_suite () =
  (* The suite exercises every CFG type of Figure 3. *)
  let kinds = Hashtbl.create 8 in
  List.iter
    (fun name ->
      let linked, _, profile = pipeline name Input_gen.Reduced in
      let ann = Select.run linked profile in
      Annotation.iter
        (fun d ->
          Hashtbl.replace kinds d.Annotation.kind ();
          if d.Annotation.return_cfm then
            Hashtbl.replace kinds Annotation.Frequently_hammock ())
        ann)
    [ "vpr"; "gcc"; "crafty"; "parser"; "twolf"; "li" ];
  List.iter
    (fun k ->
      check Alcotest.bool
        (Annotation.branch_kind_to_string k ^ " present")
        true (Hashtbl.mem kinds k))
    [ Annotation.Simple_hammock; Annotation.Nested_hammock;
      Annotation.Frequently_hammock; Annotation.Loop_branch ]

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "DMP beats baseline" `Slow
            test_all_best_heur_beats_baseline_overall;
          Alcotest.test_case "careful > every-br" `Slow
            test_careful_selection_beats_every_br;
          Alcotest.test_case "cost ~ heuristics" `Slow
            test_cost_model_close_to_heuristics;
          Alcotest.test_case "input-set robustness" `Slow
            test_profile_input_set_robustness;
          Alcotest.test_case "replay = live on every benchmark" `Slow
            test_replay_equals_live_across_suite;
          Alcotest.test_case "deterministic selection" `Quick
            test_selection_deterministic;
          Alcotest.test_case "all CFG kinds selected" `Slow
            test_annotation_kinds_present_across_suite;
        ] );
    ]
