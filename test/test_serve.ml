(* Tests for the serving layer: histogram accuracy, wire-protocol
   robustness (decoders never raise, a live server survives garbage),
   the LRU cache against a reference model, request coalescing
   (exactly one pipeline execution for K concurrent identical
   requests), and the daemon-vs-offline-CLI byte-identity oracle. *)

open Dmp_serve
open Dmp_workload
open Dmp_experiments

let check = Alcotest.check

(* ---------- histogram ---------- *)

let test_histogram_exact_small () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 0; 1; 5; 31 ];
  check Alcotest.int "count" 4 (Histogram.count h);
  check Alcotest.int "max exact" 31 (Histogram.max_ns h);
  check Alcotest.int "p100 = max" 31 (Histogram.percentile h 100.);
  check Alcotest.int "p25 = smallest value" 0 (Histogram.percentile h 25.);
  check Alcotest.int "p50 = second value" 1 (Histogram.percentile h 50.);
  check Alcotest.int "empty percentile" 0
    (Histogram.percentile (Histogram.create ()) 50.)

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.record h (i * 1000)
  done;
  let within pct target v =
    abs (v - target) <= target * pct / 100
  in
  check Alcotest.bool "p50 within 4%" true
    (within 4 500_000 (Histogram.percentile h 50.));
  check Alcotest.bool "p90 within 4%" true
    (within 4 900_000 (Histogram.percentile h 90.));
  check Alcotest.bool "p99 within 4%" true
    (within 4 990_000 (Histogram.percentile h 99.));
  check Alcotest.int "max exact" 1_000_000 (Histogram.max_ns h)

(* A percentile reports its bucket's inclusive upper bound, so it can
   only err high, and by at most 1/32 of the value (the sub-bucket
   width). The second, larger recording keeps p50 pointed at [v]. *)
let hist_error_prop =
  QCheck.Test.make ~name:"bucket error bounded by 1/32" ~count:500
    QCheck.(int_bound 1_000_000_000)
    (fun v ->
      let h = Histogram.create () in
      Histogram.record h v;
      Histogram.record h ((2 * v) + 64);
      let p = Histogram.percentile h 50. in
      p >= v && p <= v + (v / 32) + 1)

(* ---------- protocol codecs ---------- *)

let test_protocol_roundtrip () =
  List.iter
    (fun r ->
      match Protocol.decode_request (Protocol.encode_request r) with
      | Ok r' -> check Alcotest.bool "request roundtrip" true (r = r')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    [
      Protocol.Annotate
        { bench = "gzip"; set = "reduced"; algo = "all-best-heur" };
      Protocol.Profile { bench = ""; set = "x y \n z" };
      Protocol.Run { bench = "a"; set = "b"; algo = "c" };
      Protocol.Stats;
    ];
  List.iter
    (fun r ->
      match Protocol.decode_response (Protocol.encode_response r) with
      | Ok r' -> check Alcotest.bool "response roundtrip" true (r = r')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    [
      { Protocol.ok = true; latency_ns = 0; body = "" };
      { Protocol.ok = false; latency_ns = 123_456_789; body = "boom\nboom" };
    ]

let proto_request_roundtrip_prop =
  QCheck.Test.make ~name:"request roundtrip (arbitrary fields)" ~count:300
    QCheck.(triple (string_of_size Gen.(0 -- 80)) (string_of_size Gen.(0 -- 80))
              (string_of_size Gen.(0 -- 80)))
    (fun (bench, set, algo) ->
      let r = Protocol.Run { bench; set; algo } in
      Protocol.decode_request (Protocol.encode_request r) = Ok r)

let proto_fuzz_request_prop =
  QCheck.Test.make ~name:"decode_request never raises" ~count:2000
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      match Protocol.decode_request s with Ok _ | Error _ -> true)

let proto_fuzz_response_prop =
  QCheck.Test.make ~name:"decode_response never raises" ~count:2000
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      match Protocol.decode_response s with Ok _ | Error _ -> true)

(* ---------- Mem_cache vs a reference LRU model ---------- *)

(* The cache's observable state (key order MRU-first, accounted bytes)
   must track a straightforward list model through any sequence of
   add / find / remove, and the byte budget must hold after every
   step. *)
let mem_cache_model_prop =
  let budget = 150 in
  let rec drop_last = function
    | [] | [ _ ] -> []
    | x :: tl -> x :: drop_last tl
  in
  QCheck.Test.make ~name:"LRU matches reference model" ~count:300
    QCheck.(
      list_of_size
        Gen.(0 -- 40)
        (triple (int_bound 2) (int_bound 7) (int_bound 100)))
    (fun ops ->
      let cache = Mem_cache.create ~budget ~name:"model-test" () in
      let model = ref [] in
      let total m = List.fold_left (fun a (_, s) -> a + s) 0 m in
      List.for_all
        (fun (op, ki, size) ->
          let key = "k" ^ string_of_int ki in
          (match op with
          | 0 ->
              Mem_cache.add cache key ~size size;
              model := (key, size) :: List.remove_assoc key !model;
              while total !model > budget && !model <> [] do
                model := drop_last !model
              done
          | 1 ->
              let hit = Mem_cache.find cache key <> None in
              let model_hit = List.mem_assoc key !model in
              if model_hit then begin
                let s = List.assoc key !model in
                model := (key, s) :: List.remove_assoc key !model
              end;
              if hit <> model_hit then failwith "hit mismatch"
          | _ ->
              Mem_cache.remove cache key;
              model := List.remove_assoc key !model);
          let s = Mem_cache.stats cache in
          Mem_cache.keys cache = List.map fst !model
          && s.Mem_cache.bytes = total !model
          && s.Mem_cache.bytes <= budget
          && s.Mem_cache.entries = List.length !model)
        ops)

let test_mem_cache_counters () =
  let c = Mem_cache.create ~budget:100 ~name:"counters" () in
  Mem_cache.add c "a" ~size:60 1;
  Mem_cache.add c "b" ~size:60 2;
  (* b's add pushed a out *)
  let s = Mem_cache.stats c in
  check Alcotest.int "evictions" 1 s.Mem_cache.evictions;
  check Alcotest.bool "a evicted" true (Mem_cache.find c "a" = None);
  check Alcotest.bool "b live" true (Mem_cache.find c "b" = Some 2);
  let s = Mem_cache.stats c in
  check Alcotest.int "hits" 1 s.Mem_cache.hits;
  check Alcotest.int "misses" 1 s.Mem_cache.misses;
  check Alcotest.bool "oversized entry rejected" true
    (Mem_cache.add c "huge" ~size:1000 3;
     Mem_cache.mem c "huge" = false)

(* ---------- service: coalescing and byte-identity ---------- *)

let small_service ?compute_hook () =
  Service.create
    ~benchmarks:[ Registry.find "li" ]
    ~max_insts:40_000 ?compute_hook ()

(* K concurrent identical requests: exactly one pipeline execution,
   K-1 coalesced waiters, byte-identical bodies. The single computer
   blocks inside [compute_hook] until every other request has joined
   it, which makes the coalescing counter deterministic rather than
   scheduling-dependent. *)
let coalesce_k k () =
  let svc_ref = ref None in
  let executions = Atomic.make 0 in
  let hook _key =
    Atomic.incr executions;
    let svc = Option.get !svc_ref in
    let deadline = Unix.gettimeofday () +. 10. in
    while
      Service.coalesced svc < k - 1 && Unix.gettimeofday () < deadline
    do
      Thread.yield ()
    done
  in
  let svc = small_service ~compute_hook:hook () in
  svc_ref := Some svc;
  let req =
    Protocol.Run { bench = "li"; set = "reduced"; algo = "all-best-heur" }
  in
  let results = Array.make k (Error "unset") in
  let threads =
    List.init k (fun i ->
        Thread.create
          (fun () ->
            let r, _ = Service.respond svc req in
            results.(i) <- r)
          ())
  in
  List.iter Thread.join threads;
  check Alcotest.int "exactly one execution" 1 (Atomic.get executions);
  check Alcotest.int "k-1 coalesced" (k - 1) (Service.coalesced svc);
  let body = function
    | Ok b -> b
    | Error e -> Alcotest.failf "request failed: %s" e
  in
  let first = body results.(0) in
  check Alcotest.bool "body non-empty" true (String.length first > 0);
  Array.iter
    (fun r -> check Alcotest.bool "byte-identical bodies" true
        (body r = first))
    results;
  let calls stage =
    match
      List.find_opt
        (fun (s, _, _) -> s = stage)
        (Runner.timings (Service.runner svc))
    with
    | Some (_, c, _) -> c
    | None -> 0
  in
  check Alcotest.int "one dmp simulation" 1 (calls "dmp (simulate)");
  check Alcotest.int "one baseline simulation" 1
    (calls "baseline (simulate)");
  check Alcotest.int "one selection" 1 (calls "select (run)")

let test_service_coalesce_2 = coalesce_k 2
let test_service_coalesce_8 = coalesce_k 8

let test_service_warm_hit () =
  let svc = small_service () in
  let req =
    Protocol.Run { bench = "li"; set = "reduced"; algo = "all-best-heur" }
  in
  let r1, _ = Service.respond svc req in
  let r2, _ = Service.respond svc req in
  check Alcotest.bool "identical warm body" true (r1 = r2);
  let s = Service.response_stats svc in
  check Alcotest.int "warm hit counted" 1 s.Mem_cache.hits;
  check Alcotest.int "one miss" 1 s.Mem_cache.misses

let test_service_errors () =
  let svc = small_service () in
  let is_error = function Error _, _ -> true | Ok _, _ -> false in
  check Alcotest.bool "unknown benchmark" true
    (is_error
       (Service.respond svc
          (Protocol.Run
             { bench = "nope"; set = "reduced"; algo = "all-best-heur" })));
  check Alcotest.bool "unknown set" true
    (is_error
       (Service.respond svc
          (Protocol.Profile { bench = "li"; set = "tiny" })));
  check Alcotest.bool "unknown algo" true
    (is_error
       (Service.respond svc
          (Protocol.Annotate
             { bench = "li"; set = "reduced"; algo = "wat" })));
  (* errors are counted but never cached *)
  let s = Service.response_stats svc in
  check Alcotest.int "nothing cached" 0 s.Mem_cache.entries

(* The daemon serves through the runner's replay pipeline; the offline
   CLI computes live. Both must render byte-identical reports — the
   differential oracle behind the CI's daemon-vs-CLI cmp. *)
let test_service_matches_live () =
  let max_insts = 40_000 in
  let benches = [ "li"; "vpr" ] in
  let algos =
    match Variants.names with a :: b :: _ -> [ a; b ] | l -> l
  in
  let svc =
    Service.create
      ~benchmarks:(List.map Registry.find benches)
      ~max_insts ()
  in
  List.iter
    (fun bench ->
      let spec = Registry.find bench in
      let linked = Spec.linked spec in
      let input = spec.Spec.input Input_gen.Reduced in
      let profile = Dmp_profile.Profile.collect linked ~input ~max_insts in
      (* profile request *)
      let live_profile = Render.profile_text linked profile in
      (match
         Service.respond svc (Protocol.Profile { bench; set = "reduced" })
       with
      | Ok body, _ ->
          check Alcotest.bool
            (bench ^ " profile byte-identical")
            true (body = live_profile)
      | Error e, _ -> Alcotest.failf "profile failed: %s" e);
      List.iter
        (fun algo ->
          let variant = Option.get (Variants.of_string algo) in
          let ann = Variants.annotate variant linked profile in
          (* annotate request *)
          let live_ann = Render.annotate_text ~algo ann in
          (match
             Service.respond svc
               (Protocol.Annotate { bench; set = "reduced"; algo })
           with
          | Ok body, _ ->
              check Alcotest.bool
                (bench ^ "/" ^ algo ^ " annotate byte-identical")
                true (body = live_ann)
          | Error e, _ -> Alcotest.failf "annotate failed: %s" e);
          (* run request *)
          let base =
            Dmp_uarch.Sim.run ~config:Dmp_uarch.Config.baseline ~max_insts
              linked ~input
          in
          let dmp =
            Dmp_uarch.Sim.run ~config:Dmp_uarch.Config.dmp ~annotation:ann
              ~max_insts linked ~input
          in
          let live_run = Render.run_text ~algo ~ann ~base ~dmp in
          match
            Service.respond svc
              (Protocol.Run { bench; set = "reduced"; algo })
          with
          | Ok body, _ ->
              check Alcotest.bool
                (bench ^ "/" ^ algo ^ " run byte-identical")
                true (body = live_run)
          | Error e, _ -> Alcotest.failf "run failed: %s" e)
        algos)
    benches

(* The response-LRU key audit: run responses are keyed per algorithm,
   but behaviourally identical selections share one simulation through
   the runner's fingerprint memo. Whether or not the two algorithms
   alias on this workload, every computed run must be audited and the
   simulation count must equal the number of distinct fingerprints. *)
let test_service_fingerprint_audit () =
  let svc = small_service () in
  let run algo = Protocol.Run { bench = "li"; set = "reduced"; algo } in
  let respond_ok req =
    match Service.respond svc req with
    | Ok _, _ -> ()
    | Error e, _ -> Alcotest.failf "run failed: %s" e
  in
  respond_ok (run "all-best-heur");
  check
    Alcotest.(pair int int)
    "one algorithm, one fingerprint" (1, 0)
    (Service.fingerprint_audit svc);
  respond_ok (run "all-best-heur");
  check
    Alcotest.(pair int int)
    "cached repeat is not re-audited" (1, 0)
    (Service.fingerprint_audit svc);
  respond_ok (run "all-best-cost");
  let fps, aliased = Service.fingerprint_audit svc in
  check Alcotest.int "every computed run audited" 2 (fps + aliased);
  let calls stage =
    match
      List.find_opt
        (fun (s, _, _) -> s = stage)
        (Runner.timings (Service.runner svc))
    with
    | Some (_, c, _) -> c
    | None -> 0
  in
  check Alcotest.int "simulations = distinct fingerprints" fps
    (calls "dmp (simulate)");
  check Alcotest.int "aliased runs answered by the memo" aliased
    (calls "dmp (dedup hit)");
  match Service.respond svc Protocol.Stats with
  | Error e, _ -> Alcotest.failf "stats failed: %s" e
  | Ok text, _ ->
      let needle =
        Printf.sprintf "selections: fingerprints=%d aliased-runs=%d" fps aliased
      in
      check Alcotest.bool "stats_text reports the audit" true
        (let len = String.length needle in
         let n = String.length text in
         let rec go i =
           i + len <= n && (String.sub text i len = needle || go (i + 1))
         in
         go 0)

let test_service_stats_text () =
  let svc = small_service () in
  ignore
    (Service.respond svc
       (Protocol.Annotate
          { bench = "li"; set = "reduced"; algo = "all-best-heur" }));
  let r, _ = Service.respond svc Protocol.Stats in
  match r with
  | Error e -> Alcotest.failf "stats failed: %s" e
  | Ok text ->
      List.iter
        (fun needle ->
          check Alcotest.bool ("stats mentions " ^ needle) true
            (let len = String.length needle in
             let n = String.length text in
             let rec go i =
               i + len <= n && (String.sub text i len = needle || go (i + 1))
             in
             go 0))
        [
          "== dmp serve stats ==";
          "mem cache (responses):";
          "mem cache (stages):";
          "latency annotate";
          "latency run";
          "select (run)";
        ]

(* ---------- socket server: end-to-end and adversarial frames ---------- *)

let with_server f =
  let dir = Filename.temp_file "dmp_serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let path = Filename.concat dir "d.sock" in
  let service = small_service () in
  let server = Server.create ~service ~unix_path:path () in
  let th = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join th;
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f path service)

let raw_connect path =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.connect fd (ADDR_UNIX path);
  fd

let test_server_end_to_end () =
  with_server (fun path svc ->
      let c = Client.connect_unix ~wait_s:5. path in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let req =
            Protocol.Run
              { bench = "li"; set = "reduced"; algo = "all-best-heur" }
          in
          match Client.request c req with
          | Ok { Protocol.ok = true; body; _ } ->
              let direct =
                match Service.respond svc req with
                | Ok b, _ -> b
                | Error e, _ -> Alcotest.failf "direct failed: %s" e
              in
              check Alcotest.bool "socket body = direct body" true
                (body = direct);
              (* same connection, second request: warm, identical *)
              (match Client.request c req with
              | Ok { Protocol.ok = true; body = body2; _ } ->
                  check Alcotest.bool "warm body identical" true
                    (body2 = body)
              | _ -> Alcotest.fail "second request failed");
              (* server-side error comes back as ok=false, not a
                 transport failure *)
              (match
                 Client.request c
                   (Protocol.Run
                      { bench = "nope"; set = "reduced"; algo = "x" })
               with
              | Ok { Protocol.ok = false; body; _ } ->
                  check Alcotest.bool "error mentions benchmark" true
                    (String.length body > 0)
              | _ -> Alcotest.fail "expected served error")
          | _ -> Alcotest.fail "first request failed"))

let test_server_survives_garbage () =
  with_server (fun path _ ->
      (* garbage payload: error response, connection survives *)
      let fd = raw_connect path in
      Protocol.write_frame fd "\xff\xfe\x00garbage";
      (match Protocol.read_frame ~max:Protocol.max_response_frame fd with
      | `Frame s -> (
          match Protocol.decode_response s with
          | Ok { Protocol.ok = false; _ } -> ()
          | _ -> Alcotest.fail "expected error response to garbage")
      | _ -> Alcotest.fail "no response to garbage");
      (* the same connection still serves a valid request *)
      Protocol.write_frame fd (Protocol.encode_request Protocol.Stats);
      (match Protocol.read_frame ~max:Protocol.max_response_frame fd with
      | `Frame s -> (
          match Protocol.decode_response s with
          | Ok { Protocol.ok = true; _ } -> ()
          | _ -> Alcotest.fail "valid request after garbage failed")
      | _ -> Alcotest.fail "no response after garbage");
      Unix.close fd;
      (* oversized length prefix: error response, then close *)
      let fd = raw_connect path in
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 (Int32.of_int 100_000_000);
      ignore (Unix.write fd hdr 0 4);
      (match Protocol.read_frame ~max:Protocol.max_response_frame fd with
      | `Frame s -> (
          match Protocol.decode_response s with
          | Ok { Protocol.ok = false; _ } -> ()
          | _ -> Alcotest.fail "expected error response to oversize")
      | _ -> Alcotest.fail "no response to oversized frame");
      (match Protocol.read_frame ~max:Protocol.max_response_frame fd with
      | `Eof -> ()
      | _ -> Alcotest.fail "connection should close after oversize");
      Unix.close fd;
      (* truncated frame: clean close on the server side, daemon
         stays up *)
      let fd = raw_connect path in
      ignore (Unix.write fd (Bytes.of_string "\x00\x00") 0 2);
      Unix.close fd;
      (* connect-and-quit *)
      let fd = raw_connect path in
      Unix.close fd;
      (* after all of the above, the daemon still answers *)
      let c = Client.connect_unix ~wait_s:5. path in
      (match Client.request c Protocol.Stats with
      | Ok { Protocol.ok = true; _ } -> ()
      | _ -> Alcotest.fail "daemon died after adversarial input");
      Client.close c)

let qcheck q = QCheck_alcotest.to_alcotest q

let () =
  Alcotest.run "dmp_serve"
    [
      ( "histogram",
        [
          Alcotest.test_case "exact small values" `Quick
            test_histogram_exact_small;
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          qcheck hist_error_prop;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "roundtrip" `Quick test_protocol_roundtrip;
          qcheck proto_request_roundtrip_prop;
          qcheck proto_fuzz_request_prop;
          qcheck proto_fuzz_response_prop;
        ] );
      ( "mem cache",
        [
          qcheck mem_cache_model_prop;
          Alcotest.test_case "counters" `Quick test_mem_cache_counters;
        ] );
      ( "service",
        [
          Alcotest.test_case "coalesce 2" `Slow test_service_coalesce_2;
          Alcotest.test_case "coalesce 8" `Slow test_service_coalesce_8;
          Alcotest.test_case "warm hit" `Slow test_service_warm_hit;
          Alcotest.test_case "validation errors" `Quick test_service_errors;
          Alcotest.test_case "byte-identical to live CLI" `Slow
            test_service_matches_live;
          Alcotest.test_case "stats text" `Slow test_service_stats_text;
          Alcotest.test_case "fingerprint audit" `Slow
            test_service_fingerprint_audit;
        ] );
      ( "server",
        [
          Alcotest.test_case "end to end" `Slow test_server_end_to_end;
          Alcotest.test_case "survives garbage" `Slow
            test_server_survives_garbage;
        ] );
    ]
