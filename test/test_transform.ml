(* Software-predication pipeline tests: the select primitive end to
   end (encode / decode / execute), hammock detection and alignment,
   both passes on constructed shapes, and the qcheck property suite
   over the coverage-guided corpus — transformed programs satisfy the
   CFG invariants and the architectural-equivalence oracle, threshold
   1.0 is the identity, the pipeline is deterministic, and the corpus
   demonstrably exercises both passes. *)

open Dmp_ir
open Dmp_exec
module T = Dmp_transform
module D = Dmp_check.Diagnostic
module B = Build

let check = Alcotest.check
let reg = Reg.of_int

let fail_on_errors label ds =
  if D.has_errors ds then
    Alcotest.failf "%s: %d violations; first: %s" label
      (List.length (D.errors ds))
      (Fmt.str "%a" D.pp (List.hd (D.errors ds)))

(* Equivalence diagnostics for one (program, transform result, input). *)
let transform_diags ?max_insts linked (r : T.Pipeline.result) ~input =
  (if r.T.Pipeline.changed then
     Dmp_check.Invariants.check_linked r.T.Pipeline.linked
   else [])
  @ Dmp_check.Oracle.check_transform ?max_insts ~original:linked
      ~transformed:r.T.Pipeline.linked
      ~ignore_regs:r.T.Pipeline.fresh_regs ~input ()

let run_pipeline ?(config = T.Pass_config.default) program ~input =
  let linked = Linked.link program in
  let profile = Dmp_profile.Profile.collect linked ~input in
  (linked, T.Pipeline.run ~config linked profile)

(* ---------- the select primitive ---------- *)

let select_program if_false =
  let f = B.func "main" in
  B.read f (reg 4);
  B.li f (reg 5) 111;
  B.li f (reg 6) 222;
  B.select f (reg 7) (reg 4) (reg 5) if_false;
  B.write f (reg 7);
  B.halt f;
  Program.of_funcs_exn ~main:"main" [ B.finish f ]

let select_output program ~cond =
  let linked = Linked.link program in
  let emu = Emulator.create linked ~input:[| cond |] in
  ignore (Emulator.run emu);
  match Emulator.output emu with
  | [ v ] -> v
  | o -> Alcotest.failf "expected one output, got %d" (List.length o)

let test_select_semantics () =
  let p = select_program (B.reg (reg 6)) in
  check Alcotest.int "cond<>0 picks if_true" 111 (select_output p ~cond:1);
  check Alcotest.int "cond=0 picks if_false" 222 (select_output p ~cond:0);
  check Alcotest.int "any nonzero cond picks if_true" 111
    (select_output p ~cond:(-3));
  let pi = select_program (B.imm 42) in
  check Alcotest.int "imm if_false" 42 (select_output pi ~cond:0);
  check Alcotest.int "imm ignored when cond set" 111 (select_output pi ~cond:5)

(* Recover synthesizes fresh label names, so the asm text differs;
   the round-trip contract is behavioural (same retired count and
   output) plus the select instruction surviving decode. *)
let behaviour program ~input =
  let emu = Emulator.create (Linked.link program) ~input in
  let retired = Emulator.run emu in
  (retired, Emulator.output emu)

let test_select_binary_round_trip () =
  List.iter
    (fun if_false ->
      let program = select_program if_false in
      let linked = Linked.link program in
      let image = Encode.encode linked in
      match Recover.program image with
      | Error m -> Alcotest.failf "recover failed: %s" m
      | Ok recovered ->
          let contains s sub =
            let n = String.length s and m = String.length sub in
            let rec go i =
              i + m <= n && (String.sub s i m = sub || go (i + 1))
            in
            go 0
          in
          check Alcotest.bool "select survives decode" true
            (contains (Asm.to_string recovered) "sel");
          List.iter
            (fun cond ->
              check
                Alcotest.(pair int (list int))
                "same behaviour after round trip"
                (behaviour program ~input:[| cond |])
                (behaviour recovered ~input:[| cond |]))
            [ 1; 0; -3 ])
    [ B.reg (reg 6); B.imm 42 ]

(* ---------- alignment ---------- *)

let ins_add d s i = Instr.Alu { op = Instr.Add; dst = reg d;
                                src1 = reg s; src2 = Instr.Imm i }

let test_align () =
  let a = [| ins_add 4 4 1; ins_add 5 5 2; ins_add 6 6 3 |] in
  let b = [| ins_add 5 5 2; ins_add 6 6 3; ins_add 7 7 4 |] in
  let steps = T.Align.align a b in
  check Alcotest.int "lcs of shifted sequences" 2
    (T.Align.shared_count steps);
  check (Alcotest.float 1e-9) "similarity" (4. /. 6.)
    (T.Align.similarity a b);
  check Alcotest.int "identical sequences align fully" 3
    (T.Align.shared_count (T.Align.align a a));
  check Alcotest.int "disjoint sequences share nothing" 0
    (T.Align.shared_count (T.Align.align a [| ins_add 8 8 9 |]))

(* ---------- if-conversion on constructed hammocks ---------- *)

let test_if_convert_simple () =
  let program = Helpers.simple_hammock_program ~iters:400 () in
  let input = Helpers.uniform_input 500 in
  let linked, r = run_pipeline program ~input in
  check Alcotest.bool "changed" true r.T.Pipeline.changed;
  check Alcotest.bool "converted >= 1" true
    (r.T.Pipeline.stats.T.Stats.converted >= 1);
  check Alcotest.bool "selects emitted" true
    (r.T.Pipeline.stats.T.Stats.selects > 0);
  fail_on_errors "simple hammock" (transform_diags linked r ~input)

(* if (c1) { if (c2) {..} else {..} } else {..} — both diamonds share
   the outer join: the inner one converts on the first sweep, turning
   [outer_t] into a straight-line block ending in a jump to the join,
   so the outer branch becomes a simple hammock the second sweep
   converts. *)
let nested_hammock_program () =
  let f = B.func "main" in
  let v = reg 4 and c1 = reg 5 and c2 = reg 8 and n = reg 6 in
  let acc = reg 7 in
  B.li f n 400;
  B.label f "loop";
  B.read f v;
  B.rem f c1 v (B.imm 2);
  B.rem f c2 v (B.imm 3);
  B.branch f Term.Ne c1 (B.imm 0) ~target:"outer_t" ();
  B.label f "outer_f";
  B.sub f acc acc (B.imm 5);
  B.jump f "join";
  B.label f "outer_t";
  B.branch f Term.Ne c2 (B.imm 0) ~target:"inner_t" ();
  B.label f "inner_f";
  B.add f acc acc (B.imm 1);
  B.jump f "join";
  B.label f "inner_t";
  B.add f acc acc (B.imm 2);
  B.jump f "join";
  B.label f "join";
  B.add f acc acc (B.reg v);
  B.write f acc;
  B.sub f n n (B.imm 1);
  B.branch f Term.Gt n (B.imm 0) ~target:"loop" ();
  B.label f "end";
  B.halt f;
  Program.of_funcs_exn ~main:"main" [ B.finish f ]

let test_if_convert_nested () =
  let program = nested_hammock_program () in
  let input = Helpers.uniform_input 500 in
  let linked, r = run_pipeline program ~input in
  check Alcotest.bool "both levels converted" true
    (r.T.Pipeline.stats.T.Stats.converted >= 2);
  fail_on_errors "nested hammock" (transform_diags linked r ~input)

(* ---------- melding ---------- *)

(* Arms that share an identical (unpredicable) write with differing
   predicable gaps: if-conversion must reject the region, melding must
   hoist the shared write and predicate the gaps. *)
let meldable_program () =
  let f = B.func "main" in
  let v = reg 4 and c = reg 5 and n = reg 6 and acc = reg 7 in
  B.li f n 400;
  B.label f "loop";
  B.read f v;
  B.rem f c v (B.imm 2);
  B.branch f Term.Ne c (B.imm 0) ~target:"then" ();
  B.label f "else";
  B.sub f acc acc (B.imm 1);
  B.write f acc;
  B.jump f "join";
  B.label f "then";
  B.add f acc acc (B.imm 2);
  B.write f acc;
  B.jump f "join";
  B.label f "join";
  B.add f acc acc (B.reg v);
  B.sub f n n (B.imm 1);
  B.branch f Term.Gt n (B.imm 0) ~target:"loop" ();
  B.label f "end";
  B.halt f;
  Program.of_funcs_exn ~main:"main" [ B.finish f ]

let test_meld () =
  let program = meldable_program () in
  let input = Helpers.uniform_input 500 in
  let linked, r = run_pipeline program ~input in
  let s = r.T.Pipeline.stats in
  check Alcotest.int "if-conversion rejected the write" 0
    s.T.Stats.converted;
  check Alcotest.bool "melded" true (s.T.Stats.melded >= 1);
  check Alcotest.bool "hoisted the shared write" true
    (s.T.Stats.hoisted >= 1);
  fail_on_errors "meld" (transform_diags linked r ~input)

let test_meld_mutation_detected () =
  let program = meldable_program () in
  let input = Helpers.uniform_input 500 in
  let linked, r = run_pipeline program ~input in
  match T.Mutate.swap_selects r.T.Pipeline.program with
  | None -> Alcotest.fail "no selects to corrupt"
  | Some corrupted ->
      let ds =
        Dmp_check.Oracle.check_transform ~original:linked
          ~transformed:(Linked.link corrupted)
          ~ignore_regs:r.T.Pipeline.fresh_regs ~input ()
      in
      check Alcotest.bool "oracle objects to swapped selects" true
        (D.has_errors ds)

(* ---------- qcheck properties over the generated corpus ---------- *)

let corpus seed n = Helpers.generated_programs ~seed n

(* (a) transformed programs pass the CFG invariants and the
   architectural-equivalence oracle. *)
let qcheck_transform_equivalence =
  QCheck.Test.make ~name:"transform invariants + equivalence on corpus"
    ~count:8
    QCheck.(int_range 1 1_000)
    (fun seed ->
      List.for_all
        (fun (program, input) ->
          let linked, r = run_pipeline program ~input in
          match D.errors (transform_diags linked r ~input) with
          | [] -> true
          | d :: _ -> QCheck.Test.fail_reportf "%s" (Fmt.str "%a" D.pp d))
        (corpus seed 3))

(* (b) bias threshold 1.0 is the identity transform, physically. *)
let qcheck_threshold_identity =
  QCheck.Test.make ~name:"bias threshold 1.0 is the identity" ~count:10
    QCheck.(int_range 1 1_000)
    (fun seed ->
      let config =
        { T.Pass_config.default with T.Pass_config.bias_threshold = 1.0 }
      in
      List.for_all
        (fun (program, input) ->
          let _, r = run_pipeline ~config program ~input in
          (not r.T.Pipeline.changed)
          && r.T.Pipeline.program == program
          && r.T.Pipeline.stats.T.Stats.converted = 0
          && r.T.Pipeline.stats.T.Stats.melded = 0)
        (corpus seed 2))

(* (c) the pipeline is a pure function of (program, profile, config):
   re-running it from scratch yields the structurally identical
   program. *)
let qcheck_deterministic =
  QCheck.Test.make ~name:"transform deterministic across runs" ~count:8
    QCheck.(int_range 1 1_000)
    (fun seed ->
      List.for_all
        (fun (program, input) ->
          let _, r1 = run_pipeline program ~input in
          let _, r2 = run_pipeline program ~input in
          Asm.to_string r1.T.Pipeline.program
          = Asm.to_string r2.T.Pipeline.program)
        (corpus seed 2))

(* Coverage assert: the corpus must demonstrably exercise both passes —
   if-conversion and melding each fire on at least one generated
   program at each seed. *)
let test_corpus_exercises_both_passes () =
  List.iter
    (fun seed ->
      let totals =
        List.fold_left
          (fun acc (program, input) ->
            let _, r = run_pipeline program ~input in
            T.Stats.add acc r.T.Pipeline.stats)
          T.Stats.zero (corpus seed 40)
      in
      if totals.T.Stats.converted = 0 then
        Alcotest.failf "seed %d: if-conversion never fired on the corpus"
          seed;
      if totals.T.Stats.melded = 0 then
        Alcotest.failf "seed %d: melding never fired on the corpus" seed)
    [ 1; 2 ]

let () =
  Alcotest.run "transform"
    [
      ( "select",
        [
          Alcotest.test_case "semantics" `Quick test_select_semantics;
          Alcotest.test_case "binary round trip" `Quick
            test_select_binary_round_trip;
        ] );
      ("align", [ Alcotest.test_case "lcs" `Quick test_align ]);
      ( "passes",
        [
          Alcotest.test_case "if-convert simple" `Quick
            test_if_convert_simple;
          Alcotest.test_case "if-convert nested" `Quick
            test_if_convert_nested;
          Alcotest.test_case "meld" `Quick test_meld;
          Alcotest.test_case "meld mutation detected" `Quick
            test_meld_mutation_detected;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_transform_equivalence;
          QCheck_alcotest.to_alcotest qcheck_threshold_identity;
          QCheck_alcotest.to_alcotest qcheck_deterministic;
          Alcotest.test_case "corpus exercises both passes" `Quick
            test_corpus_exercises_both_passes;
        ] );
    ]
