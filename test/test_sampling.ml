open Dmp_ir
open Dmp_profile
open Dmp_sampling
open Dmp_workload

let check = Alcotest.check
let profile_bytes p = Marshal.to_string (Profile.to_raw p) []

let sampled_profile ?max_insts linked trace config =
  Reconstruct.profile linked
    (Sampler.collect_trace ?max_insts ~config linked trace)

(* Period-1 periodic sampling observes every retired event, so
   reconstruction must return the exact profile — same branch counters,
   same block counts, byte-for-byte. *)
let qcheck_period1_identity =
  QCheck.Test.make
    ~name:"period-1 periodic sampling reconstructs the exact profile"
    ~count:40
    QCheck.(int_range 2 15)
    (fun n ->
      let st = Random.State.make [| n; 31 |] in
      let linked = Linked.link (Helpers.random_program st ~nblocks:n) in
      let input = Helpers.uniform_input 64 in
      let tr = Dmp_exec.Trace.capture linked ~input in
      let config =
        { Sampler.mode = Sampler.Periodic; period = 1; seed = n }
      in
      profile_bytes (sampled_profile linked tr config)
      = profile_bytes (Profile.collect_trace linked tr))

let cap = 40_000

let each_benchmark f =
  List.iter
    (fun spec ->
      let linked = Spec.linked spec in
      let tr =
        Dmp_exec.Trace.capture ~max_insts:cap linked
          ~input:(spec.Spec.input Input_gen.Reduced)
      in
      f spec.Spec.name linked tr)
    Registry.all

let test_period1_identity_suite () =
  each_benchmark (fun name linked tr ->
      let config =
        { Sampler.mode = Sampler.Periodic; period = 1; seed = 42 }
      in
      check Alcotest.bool (name ^ ": bytes identical") true
        (profile_bytes (sampled_profile ~max_insts:cap linked tr config)
        = profile_bytes (Profile.collect_trace ~max_insts:cap linked tr)))

(* The reconstruction's central invariant: every interior block of every
   benchmark satisfies inflow = outflow exactly, in every sampling
   mode. *)
let test_flow_conservation () =
  each_benchmark (fun name linked tr ->
      List.iter
        (fun mode ->
          let config = { Sampler.mode; period = 1000; seed = 42 } in
          let s = Sampler.collect_trace ~max_insts:cap ~config linked tr in
          check Alcotest.int
            (Printf.sprintf "%s/%s: flow violations" name
               (Sampler.mode_to_string mode))
            0
            (List.length (Reconstruct.flow_violations linked s)))
        [ Sampler.Periodic; Sampler.Lbr 16; Sampler.Mispredict ])

let test_determinism () =
  let spec = Registry.find "li" in
  let linked = Spec.linked spec in
  let tr =
    Dmp_exec.Trace.capture ~max_insts:cap linked
      ~input:(spec.Spec.input Input_gen.Reduced)
  in
  List.iter
    (fun mode ->
      let config = { Sampler.mode; period = 500; seed = 7 } in
      check Alcotest.bool
        (Sampler.mode_to_string mode ^ ": same config, same bytes") true
        (profile_bytes (sampled_profile ~max_insts:cap linked tr config)
        = profile_bytes (sampled_profile ~max_insts:cap linked tr config)))
    [ Sampler.Periodic; Sampler.Lbr 16; Sampler.Mispredict ]

(* Reconstructed counters must be well-formed whatever the mode: taken
   and mispredictions bounded by executions, non-negative block counts,
   and the exact retired total carried through unscaled. *)
let test_reconstructed_sanity () =
  let spec = Registry.find "vpr" in
  let linked = Spec.linked spec in
  let input = spec.Spec.input Input_gen.Reduced in
  let tr = Dmp_exec.Trace.capture ~max_insts:cap linked ~input in
  let exact = Profile.collect_trace ~max_insts:cap linked tr in
  List.iter
    (fun mode ->
      let config = { Sampler.mode; period = 500; seed = 7 } in
      let p = sampled_profile ~max_insts:cap linked tr config in
      let m = Sampler.mode_to_string mode in
      check Alcotest.int (m ^ ": retired is exact") (Profile.retired exact)
        (Profile.retired p);
      List.iter
        (fun addr ->
          let s = Option.get (Profile.branch p ~addr) in
          check Alcotest.bool (m ^ ": taken <= executed") true
            (0 <= s.Profile.taken && s.Profile.taken <= s.Profile.executed);
          check Alcotest.bool (m ^ ": misp <= executed") true
            (0 <= s.Profile.mispredicted
            && s.Profile.mispredicted <= s.Profile.executed))
        (Profile.branch_addrs p);
      let program = linked.Linked.program in
      for func = 0 to Program.num_funcs program - 1 do
        for block = 0
             to Func.num_blocks (Program.func program func) - 1 do
          check Alcotest.bool (m ^ ": block count non-negative") true
            (Profile.block_count p ~func ~block >= 0)
        done
      done)
    [ Sampler.Periodic; Sampler.Lbr 16; Sampler.Mispredict ]

(* Distinct sampling parameters must map to distinct config strings —
   the disk cache folds the string into the entry filename. *)
let test_config_strings () =
  let grid =
    List.concat_map
      (fun mode ->
        List.concat_map
          (fun period ->
            List.map
              (fun seed -> { Sampler.mode; period; seed })
              [ 1; 2 ])
          [ 1; 100 ])
      [ Sampler.Periodic; Sampler.Lbr 4; Sampler.Lbr 16; Sampler.Mispredict ]
  in
  let strings = List.map Sampler.config_to_string grid in
  check Alcotest.int "injective over the grid" (List.length grid)
    (List.length (List.sort_uniq String.compare strings));
  List.iter
    (fun mode ->
      check Alcotest.bool
        (Sampler.mode_to_string mode ^ ": round-trips") true
        (Sampler.mode_of_string (Sampler.mode_to_string mode) = Some mode))
    [ Sampler.Periodic; Sampler.Lbr 1; Sampler.Lbr 16; Sampler.Mispredict ];
  check Alcotest.bool "lbr defaults to depth 16" true
    (Sampler.mode_of_string "lbr" = Some (Sampler.Lbr Sampler.default_lbr_depth));
  check Alcotest.bool "mispredict alias" true
    (Sampler.mode_of_string "mispredict" = Some Sampler.Mispredict);
  check Alcotest.bool "junk rejected" true
    (Sampler.mode_of_string "lbr0" = None
    && Sampler.mode_of_string "lbrx" = None
    && Sampler.mode_of_string "" = None)

let test_invalid_config () =
  let linked = Linked.link (Helpers.simple_hammock_program ~iters:5 ()) in
  let tr = Dmp_exec.Trace.capture linked ~input:(Array.make 20 1) in
  Alcotest.check_raises "period 0 rejected"
    (Invalid_argument "Sampler.collect_source: period must be >= 1")
    (fun () ->
      ignore
        (Sampler.collect_trace
           ~config:{ Sampler.mode = Sampler.Periodic; period = 0; seed = 1 }
           linked tr));
  Alcotest.check_raises "LBR depth 0 rejected"
    (Invalid_argument "Sampler.collect_source: LBR depth must be >= 1")
    (fun () ->
      ignore
        (Sampler.collect_trace
           ~config:{ Sampler.mode = Sampler.Lbr 0; period = 10; seed = 1 }
           linked tr))

(* ---------- degenerate CFGs ---------- *)

module B = Build

let r = Reg.of_int

(* One block, no branches: the function entry is also its only exit. *)
let single_block_program () =
  let f = B.func "main" in
  B.li f (r 4) 3;
  B.add f (r 4) (r 4) (B.imm 1);
  B.write f (r 4);
  B.halt f;
  Program.of_funcs_exn ~main:"main" [ B.finish f ]

(* A small loop plus an unreachable block in main, and a whole function
   the program never calls: sampling observes nothing in the dead
   regions, and reconstruction must still conserve flow there. *)
let dead_code_program () =
  let ghost = B.func "ghost" in
  B.branch ghost Term.Ne (r 4) (B.imm 0) ~target:"a" ();
  B.label ghost "b";
  B.sub ghost (r 7) (r 7) (B.imm 1);
  B.ret ghost;
  B.label ghost "a";
  B.add ghost (r 7) (r 7) (B.imm 1);
  B.ret ghost;
  let ghost = B.finish ghost in
  let f = B.func "main" in
  let n = r 6 and acc = r 7 in
  B.li f n 40;
  B.label f "loop";
  B.add f acc acc (B.imm 1);
  B.sub f n n (B.imm 1);
  B.branch f Term.Gt n (B.imm 0) ~target:"loop" ~fall:"done" ();
  B.label f "done";
  B.jump f "end";
  B.label f "dead";
  B.add f acc acc (B.imm 5);
  B.jump f "end";
  B.label f "end";
  B.write f acc;
  B.halt f;
  Program.of_funcs_exn ~main:"main" [ B.finish f; ghost ]

(* Reconstruction over degenerate CFGs must never raise (in particular
   no division by zero on regions with zero samples), must conserve
   flow, and must keep the exactly-counted totals. The huge period
   yields (almost) no samples at all; Mispredict mode on a branch-free
   program yields exactly none. *)
let test_reconstruct_degenerate () =
  List.iter
    (fun (name, program, input) ->
      let linked = Linked.link program in
      let tr = Dmp_exec.Trace.capture linked ~input in
      let exact = Profile.collect_trace linked tr in
      List.iter
        (fun config ->
          let label what =
            Printf.sprintf "%s/%s: %s" name
              (Sampler.config_to_string config)
              what
          in
          let s = Sampler.collect_trace ~config linked tr in
          let p = Reconstruct.profile linked s in
          check Alcotest.int (label "flow conservation") 0
            (List.length (Reconstruct.flow_violations linked s));
          check Alcotest.int (label "retired preserved")
            (Profile.retired exact) (Profile.retired p);
          if config.Sampler.mode = Sampler.Periodic && config.Sampler.period = 1
          then
            check Alcotest.bool (label "period-1 identity") true
              (profile_bytes p = profile_bytes exact))
        [
          { Sampler.mode = Sampler.Periodic; period = 1; seed = 1 };
          { Sampler.mode = Sampler.Periodic; period = 7; seed = 2 };
          { Sampler.mode = Sampler.Periodic; period = 1_000_000; seed = 3 };
          { Sampler.mode = Sampler.Mispredict; period = 3; seed = 4 };
          { Sampler.mode = Sampler.Lbr 4; period = 11; seed = 5 };
        ])
    [
      ("single-block", single_block_program (), Helpers.uniform_input 4);
      ("dead-code", dead_code_program (), Helpers.uniform_input 64);
    ]

(* A branch-free function under LBR sampling produces no branch records
   at all, so every rate estimate degenerates to 0/0: the reconstruction
   must come back as an all-zero branch profile with non-negative block
   counts — never NaN-tainted ones (a NaN estimate rounds to 0 by the
   [round_nonneg] guard rather than reaching [int_of_float], whose
   result on NaN is unspecified). *)
let test_branch_free_lbr_all_zero () =
  let linked = Linked.link (single_block_program ()) in
  let tr = Dmp_exec.Trace.capture linked ~input:(Helpers.uniform_input 4) in
  List.iter
    (fun period ->
      let config = { Sampler.mode = Sampler.Lbr 8; period; seed = 9 } in
      let s = Sampler.collect_trace ~config linked tr in
      check Alcotest.int
        (Printf.sprintf "period %d: no branch retirements" period)
        0 (Sampler.total_branches s);
      let p = Reconstruct.profile linked s in
      check
        Alcotest.(list int)
        (Printf.sprintf "period %d: no branch counters" period)
        [] (Profile.branch_addrs p);
      let program = linked.Linked.program in
      for func = 0 to Program.num_funcs program - 1 do
        let f = Program.func program func in
        for block = 0 to Func.num_blocks f - 1 do
          let c = Profile.block_count p ~func ~block in
          if c < 0 then
            Alcotest.failf "period %d: block %d.%d reconstructed negative (%d)"
              period func block c
        done
      done)
    [ 1; 3; 1_000_000 ]

let () =
  Alcotest.run "dmp_sampling"
    [
      ( "identity",
        [
          QCheck_alcotest.to_alcotest qcheck_period1_identity;
          Alcotest.test_case "period-1 over the suite" `Slow
            test_period1_identity_suite;
        ] );
      ( "flow conservation",
        [ Alcotest.test_case "all benchmarks, all modes" `Slow
            test_flow_conservation ] );
      ( "determinism",
        [ Alcotest.test_case "repeat collection" `Slow test_determinism ] );
      ( "reconstruction",
        [
          Alcotest.test_case "counter sanity" `Slow
            test_reconstructed_sanity;
          Alcotest.test_case "degenerate CFGs" `Quick
            test_reconstruct_degenerate;
          Alcotest.test_case "branch-free LBR all-zero" `Quick
            test_branch_free_lbr_all_zero;
        ] );
      ( "config",
        [
          Alcotest.test_case "strings" `Quick test_config_strings;
          Alcotest.test_case "invalid" `Quick test_invalid_config;
        ] );
    ]
