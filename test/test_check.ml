open Dmp_ir
open Dmp_core
open Dmp_exec
open Dmp_check
module D = Diagnostic

let check = Alcotest.check

let first_error_string ds =
  Fmt.str "%a" D.pp (List.hd (D.errors ds))

let fail_on_errors label ds =
  if D.has_errors ds then
    Alcotest.failf "%s: %d violations; first: %s" label
      (List.length (D.errors ds))
      (first_error_string ds)

let has_rule rule ds = List.exists (fun d -> d.D.rule = rule) ds

(* ---------- invariant validator: validate o select never fails ---------- *)

let validate_both_configs linked profile =
  List.for_all
    (fun (label, (config : Select.config)) ->
      let ann = Select.run ~config linked profile in
      let ds =
        Invariants.check ~params:config.Select.params
          ~mode:config.Select.mode linked profile ann
      in
      if D.has_errors ds then
        QCheck.Test.fail_reportf "%s: %s" label (first_error_string ds)
      else true)
    Suite.configs

let qcheck_validate_select_irregular =
  QCheck.Test.make ~name:"validate o select on irregular CFGs" ~count:25
    QCheck.(int_range 3 15)
    (fun n ->
      let st = Random.State.make [| n; 77 |] in
      let linked = Linked.link (Helpers.random_program st ~nblocks:n) in
      let profile =
        Dmp_profile.Profile.collect linked ~input:(Helpers.uniform_input 64)
      in
      validate_both_configs linked profile)

(* the same property over the coverage-guided motif stream, where
   selection actually fires on every structural shape *)
let qcheck_validate_select_motifs =
  QCheck.Test.make ~name:"validate o select on motif programs" ~count:8
    QCheck.(int_range 1 1_000)
    (fun seed ->
      List.for_all
        (fun (program, input) ->
          let linked = Linked.link program in
          let profile = Dmp_profile.Profile.collect linked ~input in
          validate_both_configs linked profile)
        (Helpers.generated_programs ~seed 3))

(* the canonical helper shapes must validate cleanly end to end *)
let test_helper_programs_validate () =
  List.iter
    (fun (name, program, ninput) ->
      let linked = Linked.link program in
      let input = Helpers.uniform_input ninput in
      let profile = Dmp_profile.Profile.collect linked ~input in
      List.iter
        (fun (label, (config : Select.config)) ->
          let ann = Select.run ~config linked profile in
          fail_on_errors
            (name ^ "/" ^ label)
            (Invariants.check ~params:config.Select.params
               ~mode:config.Select.mode linked profile ann))
        Suite.configs)
    [
      ("simple", Helpers.simple_hammock_program (), 2_100);
      ("freq", Helpers.freq_hammock_program (), 2_100);
      ("loop", Helpers.data_loop_program (), 2_100);
      ("ret", Helpers.ret_cfm_program (), 2_100);
    ]

(* ---------- mutation: corrupted annotations are caught, located ---------- *)

let test_mutation_caught () =
  let linked = Linked.link (Helpers.simple_hammock_program ()) in
  let input = Helpers.uniform_input 2_100 in
  let profile = Dmp_profile.Profile.collect linked ~input in
  let ann = Select.run linked profile in
  fail_on_errors "pre-mutation"
    (Invariants.check ~mode:Select.Heuristic linked profile ann);
  match Suite.mutate_annotation linked ann with
  | None -> Alcotest.fail "no hammock CFM to mutate"
  | Some branch_addr ->
      let ds = Invariants.check ~mode:Select.Heuristic linked profile ann in
      let errs = D.errors ds in
      check Alcotest.bool "violations reported" true (errs <> []);
      check Alcotest.bool "unreachable CFM diagnosed" true
        (has_rule "cfm-unreachable" errs);
      let l = Linked.loc linked branch_addr in
      let corrupted_cfm =
        Linked.block_addr linked ~func:l.Linked.func ~block:0
      in
      check Alcotest.bool "diagnostics located at the corrupted CFM" true
        (List.exists (fun d -> d.D.addr = Some corrupted_cfm) errs);
      List.iter
        (fun d ->
          check Alcotest.bool "every violation carries a location" true
            (d.D.addr <> None || d.D.block <> None || d.D.func <> None))
        errs

let test_mutation_via_suite () =
  let linked = Linked.link (Helpers.simple_hammock_program ~iters:500 ()) in
  let input = Helpers.uniform_input 600 in
  let clean = Suite.check_program linked ~input in
  fail_on_errors "clean program" clean;
  let mutated = Suite.check_program ~mutate:true linked ~input in
  check Alcotest.bool "mutated run fails" true (D.has_errors mutated)

(* ---------- differential oracle ---------- *)

let test_oracle_agreement () =
  List.iter
    (fun (name, program, ninput) ->
      let linked = Linked.link program in
      let input = Helpers.uniform_input ninput in
      let profile = Dmp_profile.Profile.collect linked ~input in
      let annotations =
        List.map
          (fun (label, config) ->
            (label, Select.run ~config linked profile))
          Suite.configs
      in
      fail_on_errors name (Oracle.run ~annotations linked ~input))
    [
      ("freq", Helpers.freq_hammock_program ~iters:400 (), 500);
      ("loop", Helpers.data_loop_program ~iters:400 (), 500);
    ]

let test_stats_mismatch_pinpointed () =
  let a = Dmp_uarch.Stats.create () and b = Dmp_uarch.Stats.create () in
  check
    Alcotest.(list (triple string int int))
    "equal stats diff empty" []
    (Oracle.stats_mismatches a b);
  check Alcotest.int "27 counters diffed" 27
    (List.length (Dmp_uarch.Stats.fields a));
  a.Dmp_uarch.Stats.cycles <- 7;
  b.Dmp_uarch.Stats.dpred_merges <- 5;
  check
    Alcotest.(list (triple string int int))
    "each differing field pinpointed"
    [ ("cycles", 7, 0); ("dpred_merges", 0, 5) ]
    (Oracle.stats_mismatches a b)

(* Feeding the oracle streams from the wrong execution pinpoints the
   divergence: the first differing event, by index and address. *)
let test_stream_divergence_detected () =
  let linked = Linked.link (Helpers.simple_hammock_program ~iters:50 ()) in
  let input = Helpers.uniform_input 100 in
  let other = Helpers.uniform_input ~seed:5 100 in
  let tr = Trace.capture linked ~input in
  let tr_other = Trace.capture linked ~input:other in
  fail_on_errors "matching streams"
    (Oracle.check_streams linked ~input tr (Image.of_trace tr));
  let ds_image =
    Oracle.check_streams linked ~input tr (Image.of_trace tr_other)
  in
  check Alcotest.bool "image divergence reported" true
    (has_rule "oracle-image-divergence" ds_image
    || has_rule "oracle-image-length" ds_image);
  let ds_trace =
    Oracle.check_streams linked ~input:other tr (Image.of_trace tr)
  in
  check Alcotest.bool "trace divergence reported" true
    (has_rule "oracle-trace-divergence" ds_trace
    || has_rule "oracle-stream-length" ds_trace)

(* ---------- coverage-guided generation ---------- *)

let test_generator_coverage () =
  let gen = Generator.create ~seed:7 in
  let budget = 40 in
  let i = ref 0 in
  while (not (Generator.all_covered gen)) && !i < budget do
    incr i;
    let program, input = Generator.next gen in
    let linked = Linked.link program in
    let profile = Dmp_profile.Profile.collect linked ~input in
    let ann = Select.run linked profile in
    Generator.note gen ann;
    fail_on_errors
      (Printf.sprintf "generated program %d" !i)
      (Invariants.check ~mode:Select.Heuristic linked profile ann)
  done;
  if not (Generator.all_covered gen) then
    Alcotest.failf "coverage incomplete after %d programs: %s" budget
      (Generator.coverage_report gen);
  List.iter
    (fun s ->
      check Alcotest.bool
        (Generator.shape_to_string s ^ " observed")
        true
        (Generator.covered gen s > 0))
    Generator.all_shapes;
  check Alcotest.int "generated count tracked" !i (Generator.generated gen)

let test_generator_deterministic () =
  let stream seed =
    List.map
      (fun (p, input) -> (Fmt.str "%a" Program.pp p, input))
      (Helpers.generated_programs ~seed 6)
  in
  check Alcotest.bool "same seed, same stream" true (stream 3 = stream 3);
  check Alcotest.bool "different seed, different stream" true
    (stream 3 <> stream 4)

(* ---------- benchmark-level driver ---------- *)

let test_suite_benchmark () =
  let spec = Dmp_workload.Registry.find "li" in
  let ok =
    Suite.check_benchmark ~max_insts:30_000 ~set:Dmp_workload.Input_gen.Reduced
      spec
  in
  check Alcotest.string "outcome named" "li" ok.Suite.name;
  fail_on_errors "li" ok.Suite.diagnostics;
  let mutated =
    Suite.check_benchmark ~max_insts:30_000 ~mutate:true
      ~set:Dmp_workload.Input_gen.Reduced spec
  in
  check Alcotest.bool "mutation smoke fails" true
    (D.has_errors mutated.Suite.diagnostics)

let test_suite_random () =
  let outcomes, gen = Suite.check_random ~max_insts:40_000 ~n:4 ~seed:11 () in
  check Alcotest.int "one outcome per program" 4 (List.length outcomes);
  List.iter (fun o -> fail_on_errors o.Suite.name o.Suite.diagnostics) outcomes;
  check Alcotest.int "all generations recorded" 4 (Generator.generated gen)

let () =
  Alcotest.run "dmp_check"
    [
      ( "invariants",
        [
          QCheck_alcotest.to_alcotest qcheck_validate_select_irregular;
          QCheck_alcotest.to_alcotest qcheck_validate_select_motifs;
          Alcotest.test_case "helper programs validate" `Slow
            test_helper_programs_validate;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "caught and located" `Quick test_mutation_caught;
          Alcotest.test_case "caught via suite" `Quick test_mutation_via_suite;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "agreement" `Slow test_oracle_agreement;
          Alcotest.test_case "stats diff pinpointed" `Quick
            test_stats_mismatch_pinpointed;
          Alcotest.test_case "stream divergence detected" `Quick
            test_stream_divergence_detected;
        ] );
      ( "generator",
        [
          Alcotest.test_case "coverage reached" `Slow test_generator_coverage;
          Alcotest.test_case "deterministic" `Quick
            test_generator_deterministic;
        ] );
      ( "suite",
        [
          Alcotest.test_case "benchmark" `Slow test_suite_benchmark;
          Alcotest.test_case "random" `Slow test_suite_random;
        ] );
    ]
