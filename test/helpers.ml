(* Shared builders for the test suite: canonical CFG shapes and a random
   program generator for property-based tests. *)

open Dmp_ir
module B = Build

let reg = Reg.of_int

(* if (r4 % 2) { r7 += 1 } else { r7 -= 1 }; common tail; repeated
   [iters] times. One unpredictable simple hammock. *)
let simple_hammock_program ?(iters = 2000) ?(then_size = 3) ?(else_size = 3)
    () =
  let f = B.func "main" in
  let v = reg 4 and c = reg 5 and n = reg 6 and acc = reg 7 in
  B.li f n iters;
  B.label f "loop";
  B.read f v;
  B.rem f c v (B.imm 2);
  B.branch f Term.Ne c (B.imm 0) ~target:"then" ();
  B.label f "else";
  for _ = 1 to else_size do
    B.sub f acc acc (B.imm 1)
  done;
  B.jump f "join";
  B.label f "then";
  for _ = 1 to then_size do
    B.add f acc acc (B.imm 1)
  done;
  B.label f "join";
  B.add f acc acc (B.reg v);
  B.write f acc;
  B.sub f n n (B.imm 1);
  B.branch f Term.Gt n (B.imm 0) ~target:"loop" ();
  B.label f "end";
  B.halt f;
  Program.of_funcs_exn ~main:"main" [ B.finish f ]

(* Frequently-hammock: taken side rarely (when r4 % 100 < 5) escapes to
   a long cold path that bypasses the join. *)
let freq_hammock_program ?(iters = 2000) () =
  let f = B.func "main" in
  let v = reg 4 and c = reg 5 and rare = reg 8 and n = reg 6 in
  let acc = reg 7 in
  B.li f n iters;
  B.label f "loop";
  B.read f v;
  B.rem f c v (B.imm 2);
  B.rem f rare v (B.imm 100);
  B.alu f Instr.Slt rare rare (B.imm 5);
  B.branch f Term.Ne c (B.imm 0) ~target:"hot_t" ();
  B.label f "hot_nt";
  B.sub f acc acc (B.imm 1);
  B.jump f "join";
  B.label f "hot_t";
  B.add f acc acc (B.imm 1);
  B.branch f Term.Ne rare (B.imm 0) ~target:"cold" ();
  B.label f "hot_t2";
  B.add f acc acc (B.imm 2);
  B.jump f "join";
  B.label f "cold";
  for _ = 1 to 90 do
    B.add f acc acc (B.imm 3)
  done;
  B.jump f "after";
  B.label f "join";
  B.add f acc acc (B.reg v);
  B.label f "after";
  B.write f acc;
  B.sub f n n (B.imm 1);
  B.branch f Term.Gt n (B.imm 0) ~target:"loop" ();
  B.label f "end";
  B.halt f;
  Program.of_funcs_exn ~main:"main" [ B.finish f ]

(* Data-dependent inner loop (trip = r4 % 6 + 1) inside an outer loop. *)
let data_loop_program ?(iters = 2000) ?(modulus = 6) ?(body = 3) () =
  let f = B.func "main" in
  let v = reg 4 and trip = reg 5 and n = reg 6 and acc = reg 7 in
  B.li f n iters;
  B.label f "outer";
  B.read f v;
  B.rem f trip v (B.imm modulus);
  B.add f trip trip (B.imm 1);
  B.label f "inner";
  for _ = 1 to body do
    B.add f acc acc (B.imm 1)
  done;
  B.sub f trip trip (B.imm 1);
  B.branch f Term.Gt trip (B.imm 0) ~target:"inner" ();
  B.label f "after";
  B.add f acc acc (B.reg v);
  B.write f acc;
  B.sub f n n (B.imm 1);
  B.branch f Term.Gt n (B.imm 0) ~target:"outer" ();
  B.label f "end";
  B.halt f;
  Program.of_funcs_exn ~main:"main" [ B.finish f ]

(* Caller + callee whose arms return separately (return-CFM shape). *)
let ret_cfm_program ?(iters = 2000) () =
  let callee = B.func "decide" in
  B.branch callee Term.Ne (reg 4) (B.imm 0) ~target:"a" ();
  B.label callee "b";
  B.sub callee (reg 7) (reg 7) (B.imm 1);
  B.ret callee;
  B.label callee "a";
  B.add callee (reg 7) (reg 7) (B.imm 1);
  B.ret callee;
  let callee = B.finish callee in
  let f = B.func "main" in
  let v = reg 5 and n = reg 6 in
  B.li f n iters;
  B.label f "loop";
  B.read f v;
  B.rem f (reg 4) v (B.imm 2);
  B.call f "decide";
  B.write f (reg 7);
  B.sub f n n (B.imm 1);
  B.branch f Term.Gt n (B.imm 0) ~target:"loop" ();
  B.label f "end";
  B.halt f;
  Program.of_funcs_exn ~main:"main" [ B.finish f; callee ]

let uniform_input ?(seed = 99) n =
  let st = Random.State.make [| seed |] in
  Array.init n (fun _ -> Random.State.int st 1_000_000)

(* Random (but always well-formed) single-function programs for
   property-based tests: [nblocks] blocks, each with a few arithmetic
   instructions and a random terminator; the last block halts. Every
   register used is below r16 and the block graph is arbitrary, so this
   exercises CFG analyses on irregular shapes. *)
let random_func rand_state ~nblocks =
  let st = rand_state in
  let f = B.func "main" in
  let lbl i = Printf.sprintf "b%d" i in
  (* fuel guards against non-terminating programs *)
  let fuel = reg 15 in
  B.li f fuel 3000;
  B.jump f (lbl 0);
  for i = 0 to nblocks - 1 do
    B.label f (lbl i);
    B.sub f fuel fuel (B.imm 1);
    B.branch f Term.Le fuel (B.imm 0) ~target:"end"
      ~fall:(lbl i ^ "_body") ();
    B.label f (lbl i ^ "_body");
    for _ = 1 to 1 + Random.State.int st 3 do
      let d = reg (4 + Random.State.int st 8) in
      let s = reg (4 + Random.State.int st 8) in
      B.alu f
        (match Random.State.int st 4 with
        | 0 -> Instr.Add
        | 1 -> Instr.Sub
        | 2 -> Instr.Xor
        | _ -> Instr.And)
        d s
        (B.imm (Random.State.int st 16))
    done;
    let target () = lbl (Random.State.int st nblocks) in
    match Random.State.int st 4 with
    | 0 -> B.jump f (target ())
    | 1 | 2 ->
        let c = reg (4 + Random.State.int st 8) in
        B.branch f Term.Gt c (B.imm (Random.State.int st 8))
          ~target:(target ()) ~fall:(target ()) ()
    | _ -> B.jump f "end"
  done;
  B.label f "end";
  B.halt f;
  B.finish f

let random_program rand_state ~nblocks =
  Program.of_funcs_exn ~main:"main" [ random_func rand_state ~nblocks ]

(* Coverage-guided motif stream (lib/check): deterministic
   (program, input) pairs biased toward the paper's structural shapes —
   simple / nested / frequently / short hammocks, return CFMs, diverge
   loops. Property tests use it when they need selection to actually
   fire, which the fully irregular CFGs above rarely achieve.

   Memoized per (seed, count): the generator is deterministic, so the
   stream is a pure function of its arguments, and several suites ask
   for the same prefixes — each suite runs single-threaded, so a plain
   table suffices. *)
let generated_cache :
    (int * int, (Dmp_ir.Program.t * int array) list) Hashtbl.t =
  Hashtbl.create 8

let generated_programs ~seed n =
  match Hashtbl.find_opt generated_cache (seed, n) with
  | Some programs -> programs
  | None ->
      let gen = Dmp_check.Generator.create ~seed in
      let programs = List.init n (fun _ -> Dmp_check.Generator.next gen) in
      Hashtbl.replace generated_cache (seed, n) programs;
      programs
