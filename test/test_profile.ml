open Dmp_ir
open Dmp_profile
module B = Build

let check = Alcotest.check

let profile_of program ~input =
  let linked = Linked.link program in
  (linked, Profile.collect linked ~input)

(* A branch taken with an exact, known probability: taken when the input
   value is odd; input = alternating parity. *)
let test_taken_prob_exact () =
  let program = Helpers.simple_hammock_program ~iters:1000 () in
  let input = Array.init 1100 (fun i -> i) in
  let linked, profile = profile_of program ~input in
  (* find the hammock branch: the one with taken prob ~0.5 *)
  let hammock =
    List.filter
      (fun addr ->
        let p = Profile.taken_prob profile ~addr in
        p > 0.4 && p < 0.6)
      (Profile.branch_addrs profile)
  in
  check Alcotest.bool "one mid-probability branch" true
    (List.length hammock = 1);
  let addr = List.hd hammock in
  check Alcotest.int "executed once per iteration" 1000
    (Profile.executed profile ~addr);
  (* alternating parity: taken exactly half the time *)
  let p = Profile.taken_prob profile ~addr in
  check Alcotest.bool "p = 0.5" true (abs_float (p -. 0.5) < 0.01);
  ignore linked

let test_edge_prob_consistency () =
  let program = Helpers.freq_hammock_program ~iters:500 () in
  let input = Helpers.uniform_input 600 in
  let linked, profile = profile_of program ~input in
  let program = linked.Linked.program in
  for func = 0 to Program.num_funcs program - 1 do
    let f = Program.func program func in
    for block = 0 to Func.num_blocks f - 1 do
      match (Func.block f block).Block.term with
      | Term.Branch _ ->
          let t = Profile.edge_prob profile ~func ~block
              ~dir:Dmp_cfg.Cfg.Taken
          in
          let nt =
            Profile.edge_prob profile ~func ~block ~dir:Dmp_cfg.Cfg.Fallthrough
          in
          check Alcotest.bool "t + nt = 1" true
            (abs_float (t +. nt -. 1.) < 1e-9)
      | Term.Jump _ ->
          check Alcotest.bool "jump prob 1" true
            (Profile.edge_prob profile ~func ~block ~dir:Dmp_cfg.Cfg.Always
             = 1.)
      | Term.Ret | Term.Halt -> ()
    done
  done

let test_block_counts () =
  let program = Helpers.simple_hammock_program ~iters:100 () in
  let input = Array.init 200 (fun i -> i) in
  let linked, profile = profile_of program ~input in
  ignore linked;
  (* entry block executes once; loop head 100 times; arms sum to 100 *)
  check Alcotest.int "entry once" 1 (Profile.block_count profile ~func:0 ~block:0);
  let loop_total =
    Profile.block_count profile ~func:0 ~block:2
    + Profile.block_count profile ~func:0 ~block:3
  in
  check Alcotest.int "arms sum to iterations" 100 loop_total

let test_unexecuted_branch_defaults () =
  let program = Helpers.simple_hammock_program ~iters:10 () in
  let _, profile = profile_of program ~input:(Array.make 100 0) in
  check Alcotest.bool "unknown addr" true
    (Profile.branch profile ~addr:9999 = None);
  check Alcotest.bool "default taken prob" true
    (Profile.taken_prob profile ~addr:9999 = 0.5);
  check Alcotest.bool "default misp" true
    (Profile.misp_rate profile ~addr:9999 = 0.)

(* Cold-branch contracts on a block the program can never enter: the
   selection pipeline leans on these defaults when it meets unprofiled
   code, and Reconstruct relies on them for branches no sample saw. *)
let test_cold_branch_contracts () =
  let r = Reg.of_int in
  let f = B.func "main" in
  B.li f (r 4) 1;
  B.branch f Term.Ne (r 4) (B.imm 0) ~target:"hot" ();
  B.label f "cold";
  B.add f (r 7) (r 7) (B.imm 1);
  B.branch f Term.Gt (r 7) (B.imm 0) ~target:"hot" ();
  B.label f "hot";
  B.write f (r 7);
  B.halt f;
  let program = Program.of_funcs_exn ~main:"main" [ B.finish f ] in
  let linked = Linked.link program in
  let profile = Profile.collect linked ~input:[||] in
  let func = 0 in
  let fn = Program.func linked.Linked.program func in
  let cold =
    let rec find i =
      if (Func.block fn i).Block.label = "cold" then i else find (i + 1)
    in
    find 0
  in
  check Alcotest.int "cold block never entered" 0
    (Profile.block_count profile ~func ~block:cold);
  let addr =
    Linked.block_addr linked ~func ~block:cold
    + Array.length (Func.block fn cold).Block.body
  in
  check Alcotest.bool "no branch record" true
    (Profile.branch profile ~addr = None);
  check (Alcotest.float 1e-9) "taken_prob defaults to 0.5" 0.5
    (Profile.taken_prob profile ~addr);
  check (Alcotest.float 1e-9) "misp_rate defaults to 0" 0.
    (Profile.misp_rate profile ~addr);
  check Alcotest.int "no mispredictions" 0
    (Profile.mispredictions profile ~addr);
  check Alcotest.int "never executed" 0 (Profile.executed profile ~addr);
  check (Alcotest.float 1e-9) "taken edge prob 0.5" 0.5
    (Profile.edge_prob profile ~func ~block:cold ~dir:Dmp_cfg.Cfg.Taken);
  check (Alcotest.float 1e-9) "fallthrough edge prob 0.5" 0.5
    (Profile.edge_prob profile ~func ~block:cold ~dir:Dmp_cfg.Cfg.Fallthrough)

(* mpki must not divide by zero when nothing retired (max_insts = 0). *)
let test_mpki_zero_retired () =
  let program = Helpers.simple_hammock_program ~iters:5 () in
  let linked = Linked.link program in
  let profile = Profile.collect ~max_insts:0 linked ~input:(Array.make 10 1) in
  check Alcotest.int "nothing retired" 0 (Profile.retired profile);
  check (Alcotest.float 1e-9) "mpki is 0" 0. (Profile.mpki profile)

let test_mispredictions_random_vs_constant () =
  (* A hammock driven by random parity mispredicts a lot; driven by a
     constant it barely mispredicts. *)
  let program = Helpers.simple_hammock_program ~iters:2000 () in
  let _, noisy = profile_of program ~input:(Helpers.uniform_input 2100) in
  let _, quiet = profile_of program ~input:(Array.make 2100 2) in
  check Alcotest.bool "noisy mispredicts more" true
    (Profile.total_mispredictions noisy
     > 5 * Profile.total_mispredictions quiet);
  check Alcotest.bool "mpki positive" true (Profile.mpki noisy > 1.)

let test_loop_average_iterations () =
  let program = Helpers.data_loop_program ~iters:1000 ~modulus:6 () in
  let input = Helpers.uniform_input 1100 in
  let linked, profile = profile_of program ~input in
  (* find the inner-loop exit branch: executed > 1000 times *)
  let inner =
    List.find
      (fun addr -> Profile.executed profile ~addr > 1500)
      (Profile.branch_addrs profile)
  in
  let s = Option.get (Profile.branch profile ~addr:inner) in
  let exits = s.Profile.executed - s.Profile.taken in
  let avg = float_of_int s.Profile.executed /. float_of_int exits in
  (* trip = v mod 6 + 1, uniform -> mean 3.5 *)
  check Alcotest.bool "avg iterations ~3.5" true
    (avg > 3.2 && avg < 3.8);
  ignore linked

let test_retired_counts () =
  let program = Helpers.simple_hammock_program ~iters:50 () in
  let linked = Linked.link program in
  let profile = Profile.collect linked ~input:(Array.make 100 1) in
  let emu = Dmp_exec.Emulator.create linked ~input:(Array.make 100 1) in
  let retired = Dmp_exec.Emulator.run emu in
  check Alcotest.int "profiler sees every instruction" retired
    (Profile.retired profile)

(* ---------- 2D-profiling ---------- *)

let test_two_d_phase_detection () =
  (* First half of the input makes the hammock condition constant; the
     second half makes it random: a phase-dependent branch. *)
  let program = Helpers.simple_hammock_program ~iters:2000 () in
  let linked = Linked.link program in
  let rnd = Helpers.uniform_input ~seed:5 2100 in
  let input = Array.init 2100 (fun i -> if i < 1000 then 2 else rnd.(i)) in
  let td = Two_d.collect ~num_slices:8 linked ~input in
  (* the hammock branch: mid taken prob overall *)
  let dependent =
    Two_d.fold
      (fun b acc -> acc || Two_d.phase_std_dev b > 0.1)
      td false
  in
  check Alcotest.bool "phase-dependent branch detected" true dependent

let test_two_d_always_easy () =
  let program = Helpers.simple_hammock_program ~iters:2000 () in
  let linked = Linked.link program in
  (* constant condition: every branch easy in every phase after warmup *)
  let input = Array.make 2100 2 in
  let td = Two_d.collect ~num_slices:8 linked ~input in
  let profile = Profile.collect linked ~input in
  let easy =
    List.filter
      (fun addr -> Two_d.is_always_easy ~rate:0.05 td addr)
      (Profile.branch_addrs profile)
  in
  check Alcotest.bool "most branches classified easy" true
    (List.length easy >= 1);
  (* random condition: the hammock must NOT be always-easy *)
  let input = Helpers.uniform_input 2100 in
  let td = Two_d.collect ~num_slices:8 linked ~input in
  let hard =
    Two_d.fold (fun b acc -> acc || Two_d.misp_rate b > 0.3) td false
  in
  check Alcotest.bool "hard branch present" true hard

let qcheck_profile_replay_equals_live =
  QCheck.Test.make
    ~name:"trace replay reproduces the live profile bit-for-bit" ~count:40
    QCheck.(int_range 2 15)
    (fun n ->
      let st = Random.State.make [| n; 13 |] in
      let linked = Linked.link (Helpers.random_program st ~nblocks:n) in
      let input = Helpers.uniform_input 64 in
      let tr = Dmp_exec.Trace.capture linked ~input in
      let bytes p = Marshal.to_string (Profile.to_raw p) [] in
      bytes (Profile.collect linked ~input)
      = bytes (Profile.collect_trace linked tr))

let qcheck_profile_total_branches =
  QCheck.Test.make ~name:"branch executions bounded by retired" ~count:40
    QCheck.(int_range 2 15)
    (fun n ->
      let st = Random.State.make [| n; 77 |] in
      let program = Helpers.random_program st ~nblocks:n in
      let linked = Linked.link program in
      let profile =
        Profile.collect linked ~input:(Helpers.uniform_input 64)
      in
      Profile.total_branch_executions profile <= Profile.retired profile
      && Profile.total_mispredictions profile
         <= Profile.total_branch_executions profile)

let () =
  Alcotest.run "dmp_profile"
    [
      ( "branch stats",
        [
          Alcotest.test_case "taken prob" `Quick test_taken_prob_exact;
          Alcotest.test_case "unexecuted defaults" `Quick
            test_unexecuted_branch_defaults;
          Alcotest.test_case "cold-branch contracts" `Quick
            test_cold_branch_contracts;
          Alcotest.test_case "mpki with zero retired" `Quick
            test_mpki_zero_retired;
          Alcotest.test_case "mispredictions" `Quick
            test_mispredictions_random_vs_constant;
          Alcotest.test_case "loop averages" `Quick
            test_loop_average_iterations;
        ] );
      ( "edges",
        [
          Alcotest.test_case "consistency" `Quick test_edge_prob_consistency;
          Alcotest.test_case "block counts" `Quick test_block_counts;
        ] );
      ( "totals",
        [
          Alcotest.test_case "retired" `Quick test_retired_counts;
          QCheck_alcotest.to_alcotest qcheck_profile_total_branches;
          QCheck_alcotest.to_alcotest qcheck_profile_replay_equals_live;
        ] );
      ( "2d-profiling",
        [
          Alcotest.test_case "phase detection" `Quick
            test_two_d_phase_detection;
          Alcotest.test_case "always easy" `Quick test_two_d_always_easy;
        ] );
    ]
