open Dmp_ir
open Dmp_exec
module B = Build

let check = Alcotest.check
let reg = Reg.of_int

let run_program ?(input = [||]) program =
  let linked = Linked.link program in
  let emu = Emulator.create linked ~input in
  ignore (Emulator.run emu);
  emu

let test_arithmetic () =
  let f = B.func "main" in
  B.li f (reg 4) 21;
  B.mul f (reg 5) (reg 4) (B.imm 2);
  B.add f (reg 5) (reg 5) (B.imm (-2));
  B.write f (reg 5);
  B.halt f;
  let emu = run_program (Program.of_funcs_exn ~main:"main" [ B.finish f ]) in
  check Alcotest.(list int) "output" [ 40 ] (Emulator.output emu)

let test_branching () =
  let f = B.func "main" in
  B.li f (reg 4) 3;
  B.branch f Term.Gt (reg 4) (B.imm 5) ~target:"big" ();
  B.label f "small";
  B.li f (reg 5) 1;
  B.jump f "out";
  B.label f "big";
  B.li f (reg 5) 2;
  B.label f "out";
  B.write f (reg 5);
  B.halt f;
  let emu = run_program (Program.of_funcs_exn ~main:"main" [ B.finish f ]) in
  check Alcotest.(list int) "took fall side" [ 1 ] (Emulator.output emu)

let test_loop_and_memory () =
  (* Store 0..4 at 100..104, then sum them back. *)
  let f = B.func "main" in
  let i = reg 4 and a = reg 5 and acc = reg 6 and v = reg 7 in
  B.li f i 0;
  B.label f "store";
  B.add f a i (B.imm 100);
  B.store f i a 0;
  B.add f i i (B.imm 1);
  B.branch f Term.Lt i (B.imm 5) ~target:"store" ();
  B.label f "load";
  B.li f i 0;
  B.li f acc 0;
  B.label f "load_head";
  B.add f a i (B.imm 100);
  B.load f v a 0;
  B.add f acc acc (B.reg v);
  B.add f i i (B.imm 1);
  B.branch f Term.Lt i (B.imm 5) ~target:"load_head" ();
  B.label f "out";
  B.write f acc;
  B.halt f;
  let emu = run_program (Program.of_funcs_exn ~main:"main" [ B.finish f ]) in
  check Alcotest.(list int) "sum" [ 10 ] (Emulator.output emu)

let test_call_ret () =
  let callee = B.func "double" in
  B.add callee (reg 4) (reg 4) (B.reg (reg 4));
  B.ret callee;
  let callee = B.finish callee in
  let f = B.func "main" in
  B.li f (reg 4) 5;
  B.call f "double";
  B.call f "double";
  B.write f (reg 4);
  B.halt f;
  let emu =
    run_program (Program.of_funcs_exn ~main:"main" [ B.finish f; callee ])
  in
  check Alcotest.(list int) "nested calls" [ 20 ] (Emulator.output emu)

let test_main_return_halts () =
  let f = B.func "main" in
  B.li f (reg 4) 1;
  B.ret f;
  let emu = run_program (Program.of_funcs_exn ~main:"main" [ B.finish f ]) in
  check Alcotest.bool "halted" true (Emulator.halted emu);
  check Alcotest.int "retired" 2 (Emulator.retired emu)

let test_input_exhaustion () =
  let f = B.func "main" in
  B.read f (reg 4);
  B.read f (reg 5);
  B.write f (reg 4);
  B.write f (reg 5);
  B.halt f;
  let emu =
    run_program ~input:[| 7 |]
      (Program.of_funcs_exn ~main:"main" [ B.finish f ])
  in
  check Alcotest.(list int) "reads past end yield 0" [ 7; 0 ]
    (Emulator.output emu)

let test_max_insts () =
  let f = B.func "main" in
  B.label f "spin";
  B.nop f;
  B.jump f "spin";
  let linked = Linked.link (Program.of_funcs_exn ~main:"main" [ B.finish f ]) in
  let emu = Emulator.create linked ~input:[||] in
  let n = Emulator.run ~max_insts:100 emu in
  check Alcotest.int "bounded" 100 n;
  check Alcotest.bool "not halted" false (Emulator.halted emu)

let test_branch_event_fields () =
  let program = Helpers.simple_hammock_program ~iters:10 () in
  let linked = Linked.link program in
  let emu = Emulator.create linked ~input:(Helpers.uniform_input 100) in
  let saw_branch = ref false in
  Emulator.iter emu (fun e ->
      match e.Event.kind with
      | Event.Branch { taken; target; fall } ->
          saw_branch := true;
          check Alcotest.int "next matches direction"
            (if taken then target else fall)
            e.Event.next
      | _ -> ());
  check Alcotest.bool "branches seen" true !saw_branch

let test_determinism () =
  let program = Helpers.freq_hammock_program ~iters:300 () in
  let linked = Linked.link program in
  let input = Helpers.uniform_input 400 in
  let run () =
    let emu = Emulator.create linked ~input in
    let trace = ref [] in
    Emulator.iter emu (fun e -> trace := e.Event.addr :: !trace);
    (!trace, Emulator.output emu)
  in
  let t1, o1 = run () and t2, o2 = run () in
  check Alcotest.bool "same trace" true (t1 = t2);
  check Alcotest.bool "same output" true (o1 = o2)

let test_memory_sparse_and_default_zero () =
  (* The paged store must behave exactly like an infinite zero-filled
     array: far beyond the direct-mapped window and at negative
     locations (both served by the fallback table) as well as for
     never-written direct pages. *)
  let f = B.func "main" in
  let a = reg 4 and v = reg 5 and w = reg 6 in
  B.li f v 77;
  B.li f a 5_000_000;
  B.store f v a 0;
  B.load f w a 0;
  B.write f w;
  B.li f a 123_456;
  B.load f w a 0;
  B.write f w;
  B.li f a (-8);
  B.store f v a 0;
  B.load f w a 0;
  B.write f w;
  B.halt f;
  let emu = run_program (Program.of_funcs_exn ~main:"main" [ B.finish f ]) in
  check
    Alcotest.(list int)
    "sparse stores round-trip, absent locations read 0" [ 77; 0; 77 ]
    (Emulator.output emu)

(* ---------- packed traces ---------- *)

let live_events linked ~input =
  let emu = Emulator.create linked ~input in
  let evs = ref [] in
  Emulator.iter emu (fun e -> evs := e :: !evs);
  List.rev !evs

let replay_events tr =
  let evs = ref [] in
  Trace.iter tr (fun e -> evs := e :: !evs);
  List.rev !evs

let test_trace_matches_emulator () =
  let linked = Linked.link (Helpers.ret_cfm_program ~iters:30 ()) in
  let input = Helpers.uniform_input 100 in
  let live = live_events linked ~input in
  let tr = Trace.capture linked ~input in
  check Alcotest.int "length = retired" (List.length live) (Trace.length tr);
  check Alcotest.bool "complete" true (Trace.complete tr);
  check Alcotest.bool "identical event stream" true
    (replay_events tr = live)

let test_trace_cursor_fields () =
  let linked = Linked.link (Helpers.freq_hammock_program ~iters:100 ()) in
  let input = Helpers.uniform_input 200 in
  let tr = Trace.capture linked ~input in
  let emu = Emulator.create linked ~input in
  let c = Trace.cursor tr in
  Emulator.iter emu (fun e ->
      check Alcotest.bool "advance" true (Trace.advance c);
      check Alcotest.int "addr" e.Event.addr (Trace.addr c);
      check Alcotest.int "next" e.Event.next (Trace.next_addr c);
      match e.Event.kind with
      | Event.Branch { taken; target; fall } ->
          check Alcotest.bool "is_cond_branch" true (Trace.is_cond_branch c);
          check Alcotest.bool "taken" taken (Trace.taken c);
          check Alcotest.int "target" target (Trace.p1 c);
          check Alcotest.int "fall" fall (Trace.p2 c)
      | Event.Mem { location; _ } ->
          check Alcotest.bool "not a branch" false (Trace.is_cond_branch c);
          check Alcotest.int "location" location (Trace.p1 c)
      | Event.Call _ | Event.Return _ | Event.Plain ->
          check Alcotest.bool "not a branch" false (Trace.is_cond_branch c));
  check Alcotest.bool "cursor exhausted with the emulator" false
    (Trace.advance c)

let test_trace_capped_incomplete () =
  let f = B.func "main" in
  B.label f "spin";
  B.nop f;
  B.jump f "spin";
  let linked =
    Linked.link (Program.of_funcs_exn ~main:"main" [ B.finish f ])
  in
  let tr = Trace.capture ~max_insts:50 linked ~input:[||] in
  check Alcotest.int "capped length" 50 (Trace.length tr);
  check Alcotest.bool "incomplete" false (Trace.complete tr)

let qcheck_trace_replay_equals_live =
  QCheck.Test.make ~name:"packed trace replays the live event stream"
    ~count:40
    QCheck.(int_range 2 20)
    (fun n ->
      let st = Random.State.make [| n; 53 |] in
      let linked = Linked.link (Helpers.random_program st ~nblocks:n) in
      let input = Helpers.uniform_input 64 in
      let tr = Trace.capture linked ~input in
      Trace.complete tr && replay_events tr = live_events linked ~input)

(* ---------- pre-decoded images ---------- *)

let image_events img =
  List.init (Image.length img) (fun i -> Image.event img i)

let test_image_matches_trace () =
  let linked = Linked.link (Helpers.freq_hammock_program ~iters:100 ()) in
  let input = Helpers.uniform_input 200 in
  let tr = Trace.capture linked ~input in
  let img = Image.of_trace tr in
  check Alcotest.int "length" (Trace.length tr) (Image.length img);
  check Alcotest.bool "complete" (Trace.complete tr) (Image.complete img);
  check Alcotest.bool "identical event stream" true
    (image_events img = replay_events tr);
  let max_a =
    List.fold_left
      (fun m (e : Event.t) -> max m e.Event.addr)
      (-1) (replay_events tr)
  in
  check Alcotest.int "max_addr" max_a (Image.max_addr img)

let test_image_capped_and_empty () =
  let f = B.func "main" in
  B.label f "spin";
  B.nop f;
  B.jump f "spin";
  let linked =
    Linked.link (Program.of_funcs_exn ~main:"main" [ B.finish f ])
  in
  let tr = Trace.capture ~max_insts:50 linked ~input:[||] in
  let img = Image.of_trace tr in
  check Alcotest.int "capped length" 50 (Image.length img);
  check Alcotest.bool "incomplete" false (Image.complete img);
  let empty = Image.of_trace (Trace.capture ~max_insts:0 linked ~input:[||]) in
  check Alcotest.int "empty" 0 (Image.length empty);
  check Alcotest.int "empty max_addr" (-1) (Image.max_addr empty);
  Alcotest.check_raises "event out of bounds"
    (Invalid_argument "Image.event: index out of bounds") (fun () ->
      ignore (Image.event img 50))

let qcheck_image_decodes_trace =
  QCheck.Test.make ~name:"image decodes the packed trace event-for-event"
    ~count:40
    QCheck.(int_range 2 20)
    (fun n ->
      let st = Random.State.make [| n; 53 |] in
      let linked = Linked.link (Helpers.random_program st ~nblocks:n) in
      let input = Helpers.uniform_input 64 in
      let tr = Trace.capture linked ~input in
      image_events (Image.of_trace tr) = replay_events tr)

let qcheck_random_programs_terminate =
  QCheck.Test.make ~name:"random programs halt within fuel" ~count:60
    QCheck.(int_range 2 20)
    (fun n ->
      let st = Random.State.make [| n; 31 |] in
      let program = Helpers.random_program st ~nblocks:n in
      let emu =
        Emulator.create (Linked.link program)
          ~input:(Helpers.uniform_input 64)
      in
      let retired = Emulator.run ~max_insts:100_000 emu in
      Emulator.halted emu && retired < 100_000)

(* ---------- domain pool ---------- *)

let test_pool_map_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      check
        Alcotest.(list int)
        "results in submission order"
        (List.map (fun x -> x * x) xs)
        (Pool.map pool ~f:(fun x -> x * x) xs))

let test_pool_inline () =
  Pool.with_pool ~jobs:1 (fun pool ->
      check Alcotest.int "one worker" 1 (Pool.jobs pool);
      let d0 = (Domain.self () :> int) in
      let ds =
        Pool.map pool ~f:(fun _ -> (Domain.self () :> int)) [ 1; 2; 3 ]
      in
      check
        Alcotest.(list int)
        "tasks run on the submitting domain" [ d0; d0; d0 ] ds)

let test_pool_exception () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "first failure re-raised"
        (Invalid_argument "task 3") (fun () ->
          ignore
            (Pool.map pool
               ~f:(fun i ->
                 if i mod 3 = 0 then
                   invalid_arg (Printf.sprintf "task %d" i)
                 else i)
               [ 1; 2; 3; 4; 5; 6 ])))

let test_pool_effects () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let hits = Atomic.make 0 in
      Pool.run pool
        (List.init 50 (fun _ () -> Atomic.incr hits));
      check Alcotest.int "every task ran" 50 (Atomic.get hits))

let test_pool_reuse () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let a = Pool.map pool ~f:succ [ 1; 2; 3 ] in
      let b = Pool.map pool ~f:succ [ 4; 5 ] in
      check Alcotest.(list int) "first batch" [ 2; 3; 4 ] a;
      check Alcotest.(list int) "second batch" [ 5; 6 ] b)

(* More outer tasks than workers, each submitting a nested batch on the
   same pool: with submitters parked on the batch condition instead of
   helping drain, this configuration deadlocks. *)
let test_pool_nested_map () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let rows =
        Pool.map pool
          ~f:(fun i -> Pool.map pool ~f:(fun j -> (10 * i) + j) [ 0; 1; 2 ])
          [ 1; 2; 3; 4 ]
      in
      check
        Alcotest.(list (list int))
        "nested batches settle in order"
        [ [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ]; [ 40; 41; 42 ] ]
        rows;
      let sums =
        Pool.map pool
          ~f:(fun i ->
            List.fold_left ( + ) 0
              (Pool.map pool
                 ~f:(fun j ->
                   List.fold_left ( + ) 0
                     (Pool.map pool ~f:(fun k -> i * j * k) [ 1; 2 ]))
                 [ 1; 2; 3 ]))
          [ 1; 2; 3; 4 ]
      in
      check
        Alcotest.(list int)
        "two levels of nesting" [ 18; 36; 54; 72 ] sums)

(* ---------- DMP_JOBS validation ---------- *)

(* [Unix.putenv] cannot unset a variable; [Pool.env_jobs] treats a
   blank value as unset precisely so "" restores the unset state. *)
let with_jobs_env v f =
  let old = Option.value (Sys.getenv_opt "DMP_JOBS") ~default:"" in
  Unix.putenv "DMP_JOBS" v;
  Fun.protect ~finally:(fun () -> Unix.putenv "DMP_JOBS" old) f

let test_env_jobs_valid () =
  let cap = Domain.recommended_domain_count () in
  with_jobs_env "3" (fun () ->
      (match Pool.env_jobs () with
      | Ok (Some 3) -> ()
      | _ -> Alcotest.fail "DMP_JOBS=3 should validate as Some 3");
      check Alcotest.int "default_jobs honours DMP_JOBS up to the core count"
        (min 3 cap)
        (Pool.default_jobs ()));
  with_jobs_env " 2 " (fun () ->
      match Pool.env_jobs () with
      | Ok (Some 2) -> ()
      | _ -> Alcotest.fail "surrounding whitespace should be accepted");
  with_jobs_env "" (fun () ->
      match Pool.env_jobs () with
      | Ok None -> ()
      | _ -> Alcotest.fail "a blank DMP_JOBS should read as unset")

(* Oversubscription fix: the default worker count never exceeds the
   recommended domain count, however large DMP_JOBS is; DMP_JOBS=1
   still forces a single worker on any machine. *)
let test_default_jobs_clamped () =
  let cap = Domain.recommended_domain_count () in
  with_jobs_env "64" (fun () ->
      check Alcotest.int "a huge DMP_JOBS clamps to the core count" cap
        (Pool.default_jobs ()));
  with_jobs_env "1" (fun () ->
      check Alcotest.int "DMP_JOBS=1 stays 1" 1 (Pool.default_jobs ()))

let test_env_jobs_invalid () =
  List.iter
    (fun v ->
      with_jobs_env v (fun () ->
          (match Pool.env_jobs () with
          | Error msg ->
              if not (Astring_contains.contains msg "DMP_JOBS") then
                Alcotest.failf "error for %S does not name DMP_JOBS: %s" v
                  msg
          | Ok _ -> Alcotest.failf "DMP_JOBS=%S should be rejected" v);
          match Pool.default_jobs () with
          | exception Invalid_argument _ -> ()
          | n ->
              Alcotest.failf "default_jobs accepted DMP_JOBS=%S as %d" v n))
    [ "0"; "-2"; "four"; "1.5"; "4x" ]

(* ---------- checkpoint container ---------- *)

let test_checkpoint_bytes_roundtrip () =
  let ck =
    Checkpoint.create ~consumed:12_345
      [
        ("core", [| 1; 2; 3 |]);
        ("empty", [||]);
        ("extremes", [| -1; min_int; max_int; 0 |]);
      ]
  in
  let b = Checkpoint.to_bytes ck in
  check Alcotest.int "byte_size matches to_bytes" (Bytes.length b)
    (Checkpoint.byte_size ck);
  match Checkpoint.of_bytes b with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok ck' ->
      check Alcotest.int "consumed survives" 12_345
        (Checkpoint.consumed ck');
      check
        Alcotest.(list (pair string (array int)))
        "sections survive" (Checkpoint.sections ck)
        (Checkpoint.sections ck')

let test_checkpoint_bytes_rejects_corruption () =
  let expect_error what = function
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s input was accepted" what
  in
  let ck =
    Checkpoint.create ~consumed:7
      [ ("s", Array.init 64 (fun i -> (i * 17) - 5)) ]
  in
  let b = Checkpoint.to_bytes ck in
  expect_error "empty" (Checkpoint.of_bytes Bytes.empty);
  expect_error "truncated"
    (Checkpoint.of_bytes (Bytes.sub b 0 (Bytes.length b - 3)));
  let flipped = Bytes.copy b in
  let mid = Bytes.length b / 2 in
  Bytes.set flipped mid
    (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x40));
  expect_error "bit-flipped" (Checkpoint.of_bytes flipped);
  let badmagic = Bytes.copy b in
  Bytes.set badmagic 0 'X';
  expect_error "foreign-magic" (Checkpoint.of_bytes badmagic);
  expect_error "trailing-garbage"
    (Checkpoint.of_bytes (Bytes.cat b (Bytes.of_string "x")))

let () =
  Alcotest.run "dmp_exec"
    [
      ( "semantics",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "branching" `Quick test_branching;
          Alcotest.test_case "loop+memory" `Quick test_loop_and_memory;
          Alcotest.test_case "call/ret" `Quick test_call_ret;
          Alcotest.test_case "main return halts" `Quick
            test_main_return_halts;
          Alcotest.test_case "input exhaustion" `Quick test_input_exhaustion;
          Alcotest.test_case "sparse memory" `Quick
            test_memory_sparse_and_default_zero;
        ] );
      ( "trace",
        [
          Alcotest.test_case "max_insts" `Quick test_max_insts;
          Alcotest.test_case "branch events" `Quick test_branch_event_fields;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "packed trace",
        [
          Alcotest.test_case "matches emulator" `Quick
            test_trace_matches_emulator;
          Alcotest.test_case "cursor fields" `Quick test_trace_cursor_fields;
          Alcotest.test_case "capped capture" `Quick
            test_trace_capped_incomplete;
          QCheck_alcotest.to_alcotest qcheck_trace_replay_equals_live;
        ] );
      ( "image",
        [
          Alcotest.test_case "matches trace" `Quick test_image_matches_trace;
          Alcotest.test_case "capped and empty" `Quick
            test_image_capped_and_empty;
          QCheck_alcotest.to_alcotest qcheck_image_decodes_trace;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "inline when jobs=1" `Quick test_pool_inline;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception;
          Alcotest.test_case "runs every task" `Quick test_pool_effects;
          Alcotest.test_case "reusable across batches" `Quick
            test_pool_reuse;
          Alcotest.test_case "re-entrant nested map" `Quick
            test_pool_nested_map;
          Alcotest.test_case "DMP_JOBS accepted" `Quick test_env_jobs_valid;
          Alcotest.test_case "DMP_JOBS rejected" `Quick
            test_env_jobs_invalid;
          Alcotest.test_case "default_jobs clamps to core count" `Quick
            test_default_jobs_clamped;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "bytes round-trip" `Quick
            test_checkpoint_bytes_roundtrip;
          Alcotest.test_case "rejects corruption" `Quick
            test_checkpoint_bytes_rejects_corruption;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_random_programs_terminate ] );
    ]
