open Dmp_ir
open Dmp_exec
module B = Build

let check = Alcotest.check
let reg = Reg.of_int

let run_program ?(input = [||]) program =
  let linked = Linked.link program in
  let emu = Emulator.create linked ~input in
  ignore (Emulator.run emu);
  emu

let test_arithmetic () =
  let f = B.func "main" in
  B.li f (reg 4) 21;
  B.mul f (reg 5) (reg 4) (B.imm 2);
  B.add f (reg 5) (reg 5) (B.imm (-2));
  B.write f (reg 5);
  B.halt f;
  let emu = run_program (Program.of_funcs_exn ~main:"main" [ B.finish f ]) in
  check Alcotest.(list int) "output" [ 40 ] (Emulator.output emu)

let test_branching () =
  let f = B.func "main" in
  B.li f (reg 4) 3;
  B.branch f Term.Gt (reg 4) (B.imm 5) ~target:"big" ();
  B.label f "small";
  B.li f (reg 5) 1;
  B.jump f "out";
  B.label f "big";
  B.li f (reg 5) 2;
  B.label f "out";
  B.write f (reg 5);
  B.halt f;
  let emu = run_program (Program.of_funcs_exn ~main:"main" [ B.finish f ]) in
  check Alcotest.(list int) "took fall side" [ 1 ] (Emulator.output emu)

let test_loop_and_memory () =
  (* Store 0..4 at 100..104, then sum them back. *)
  let f = B.func "main" in
  let i = reg 4 and a = reg 5 and acc = reg 6 and v = reg 7 in
  B.li f i 0;
  B.label f "store";
  B.add f a i (B.imm 100);
  B.store f i a 0;
  B.add f i i (B.imm 1);
  B.branch f Term.Lt i (B.imm 5) ~target:"store" ();
  B.label f "load";
  B.li f i 0;
  B.li f acc 0;
  B.label f "load_head";
  B.add f a i (B.imm 100);
  B.load f v a 0;
  B.add f acc acc (B.reg v);
  B.add f i i (B.imm 1);
  B.branch f Term.Lt i (B.imm 5) ~target:"load_head" ();
  B.label f "out";
  B.write f acc;
  B.halt f;
  let emu = run_program (Program.of_funcs_exn ~main:"main" [ B.finish f ]) in
  check Alcotest.(list int) "sum" [ 10 ] (Emulator.output emu)

let test_call_ret () =
  let callee = B.func "double" in
  B.add callee (reg 4) (reg 4) (B.reg (reg 4));
  B.ret callee;
  let callee = B.finish callee in
  let f = B.func "main" in
  B.li f (reg 4) 5;
  B.call f "double";
  B.call f "double";
  B.write f (reg 4);
  B.halt f;
  let emu =
    run_program (Program.of_funcs_exn ~main:"main" [ B.finish f; callee ])
  in
  check Alcotest.(list int) "nested calls" [ 20 ] (Emulator.output emu)

let test_main_return_halts () =
  let f = B.func "main" in
  B.li f (reg 4) 1;
  B.ret f;
  let emu = run_program (Program.of_funcs_exn ~main:"main" [ B.finish f ]) in
  check Alcotest.bool "halted" true (Emulator.halted emu);
  check Alcotest.int "retired" 2 (Emulator.retired emu)

let test_input_exhaustion () =
  let f = B.func "main" in
  B.read f (reg 4);
  B.read f (reg 5);
  B.write f (reg 4);
  B.write f (reg 5);
  B.halt f;
  let emu =
    run_program ~input:[| 7 |]
      (Program.of_funcs_exn ~main:"main" [ B.finish f ])
  in
  check Alcotest.(list int) "reads past end yield 0" [ 7; 0 ]
    (Emulator.output emu)

let test_max_insts () =
  let f = B.func "main" in
  B.label f "spin";
  B.nop f;
  B.jump f "spin";
  let linked = Linked.link (Program.of_funcs_exn ~main:"main" [ B.finish f ]) in
  let emu = Emulator.create linked ~input:[||] in
  let n = Emulator.run ~max_insts:100 emu in
  check Alcotest.int "bounded" 100 n;
  check Alcotest.bool "not halted" false (Emulator.halted emu)

let test_branch_event_fields () =
  let program = Helpers.simple_hammock_program ~iters:10 () in
  let linked = Linked.link program in
  let emu = Emulator.create linked ~input:(Helpers.uniform_input 100) in
  let saw_branch = ref false in
  Emulator.iter emu (fun e ->
      match e.Event.kind with
      | Event.Branch { taken; target; fall } ->
          saw_branch := true;
          check Alcotest.int "next matches direction"
            (if taken then target else fall)
            e.Event.next
      | _ -> ());
  check Alcotest.bool "branches seen" true !saw_branch

let test_determinism () =
  let program = Helpers.freq_hammock_program ~iters:300 () in
  let linked = Linked.link program in
  let input = Helpers.uniform_input 400 in
  let run () =
    let emu = Emulator.create linked ~input in
    let trace = ref [] in
    Emulator.iter emu (fun e -> trace := e.Event.addr :: !trace);
    (!trace, Emulator.output emu)
  in
  let t1, o1 = run () and t2, o2 = run () in
  check Alcotest.bool "same trace" true (t1 = t2);
  check Alcotest.bool "same output" true (o1 = o2)

let test_memory_sparse_and_default_zero () =
  (* The paged store must behave exactly like an infinite zero-filled
     array: far beyond the direct-mapped window and at negative
     locations (both served by the fallback table) as well as for
     never-written direct pages. *)
  let f = B.func "main" in
  let a = reg 4 and v = reg 5 and w = reg 6 in
  B.li f v 77;
  B.li f a 5_000_000;
  B.store f v a 0;
  B.load f w a 0;
  B.write f w;
  B.li f a 123_456;
  B.load f w a 0;
  B.write f w;
  B.li f a (-8);
  B.store f v a 0;
  B.load f w a 0;
  B.write f w;
  B.halt f;
  let emu = run_program (Program.of_funcs_exn ~main:"main" [ B.finish f ]) in
  check
    Alcotest.(list int)
    "sparse stores round-trip, absent locations read 0" [ 77; 0; 77 ]
    (Emulator.output emu)

(* ---------- packed traces ---------- *)

let live_events linked ~input =
  let emu = Emulator.create linked ~input in
  let evs = ref [] in
  Emulator.iter emu (fun e -> evs := e :: !evs);
  List.rev !evs

let replay_events tr =
  let evs = ref [] in
  Trace.iter tr (fun e -> evs := e :: !evs);
  List.rev !evs

let test_trace_matches_emulator () =
  let linked = Linked.link (Helpers.ret_cfm_program ~iters:30 ()) in
  let input = Helpers.uniform_input 100 in
  let live = live_events linked ~input in
  let tr = Trace.capture linked ~input in
  check Alcotest.int "length = retired" (List.length live) (Trace.length tr);
  check Alcotest.bool "complete" true (Trace.complete tr);
  check Alcotest.bool "identical event stream" true
    (replay_events tr = live)

let test_trace_cursor_fields () =
  let linked = Linked.link (Helpers.freq_hammock_program ~iters:100 ()) in
  let input = Helpers.uniform_input 200 in
  let tr = Trace.capture linked ~input in
  let emu = Emulator.create linked ~input in
  let c = Trace.cursor tr in
  Emulator.iter emu (fun e ->
      check Alcotest.bool "advance" true (Trace.advance c);
      check Alcotest.int "addr" e.Event.addr (Trace.addr c);
      check Alcotest.int "next" e.Event.next (Trace.next_addr c);
      match e.Event.kind with
      | Event.Branch { taken; target; fall } ->
          check Alcotest.bool "is_cond_branch" true (Trace.is_cond_branch c);
          check Alcotest.bool "taken" taken (Trace.taken c);
          check Alcotest.int "target" target (Trace.p1 c);
          check Alcotest.int "fall" fall (Trace.p2 c)
      | Event.Mem { location; _ } ->
          check Alcotest.bool "not a branch" false (Trace.is_cond_branch c);
          check Alcotest.int "location" location (Trace.p1 c)
      | Event.Call _ | Event.Return _ | Event.Plain ->
          check Alcotest.bool "not a branch" false (Trace.is_cond_branch c));
  check Alcotest.bool "cursor exhausted with the emulator" false
    (Trace.advance c)

let test_trace_capped_incomplete () =
  let f = B.func "main" in
  B.label f "spin";
  B.nop f;
  B.jump f "spin";
  let linked =
    Linked.link (Program.of_funcs_exn ~main:"main" [ B.finish f ])
  in
  let tr = Trace.capture ~max_insts:50 linked ~input:[||] in
  check Alcotest.int "capped length" 50 (Trace.length tr);
  check Alcotest.bool "incomplete" false (Trace.complete tr)

let qcheck_trace_replay_equals_live =
  QCheck.Test.make ~name:"packed trace replays the live event stream"
    ~count:40
    QCheck.(int_range 2 20)
    (fun n ->
      let st = Random.State.make [| n; 53 |] in
      let linked = Linked.link (Helpers.random_program st ~nblocks:n) in
      let input = Helpers.uniform_input 64 in
      let tr = Trace.capture linked ~input in
      Trace.complete tr && replay_events tr = live_events linked ~input)

(* ---------- pre-decoded images ---------- *)

let image_events img =
  List.init (Image.length img) (fun i -> Image.event img i)

let test_image_matches_trace () =
  let linked = Linked.link (Helpers.freq_hammock_program ~iters:100 ()) in
  let input = Helpers.uniform_input 200 in
  let tr = Trace.capture linked ~input in
  let img = Image.of_trace tr in
  check Alcotest.int "length" (Trace.length tr) (Image.length img);
  check Alcotest.bool "complete" (Trace.complete tr) (Image.complete img);
  check Alcotest.bool "identical event stream" true
    (image_events img = replay_events tr);
  let max_a =
    List.fold_left
      (fun m (e : Event.t) -> max m e.Event.addr)
      (-1) (replay_events tr)
  in
  check Alcotest.int "max_addr" max_a (Image.max_addr img)

let test_image_capped_and_empty () =
  let f = B.func "main" in
  B.label f "spin";
  B.nop f;
  B.jump f "spin";
  let linked =
    Linked.link (Program.of_funcs_exn ~main:"main" [ B.finish f ])
  in
  let tr = Trace.capture ~max_insts:50 linked ~input:[||] in
  let img = Image.of_trace tr in
  check Alcotest.int "capped length" 50 (Image.length img);
  check Alcotest.bool "incomplete" false (Image.complete img);
  let empty = Image.of_trace (Trace.capture ~max_insts:0 linked ~input:[||]) in
  check Alcotest.int "empty" 0 (Image.length empty);
  check Alcotest.int "empty max_addr" (-1) (Image.max_addr empty);
  Alcotest.check_raises "event out of bounds"
    (Invalid_argument "Image.event: index out of bounds") (fun () ->
      ignore (Image.event img 50))

let qcheck_image_decodes_trace =
  QCheck.Test.make ~name:"image decodes the packed trace event-for-event"
    ~count:40
    QCheck.(int_range 2 20)
    (fun n ->
      let st = Random.State.make [| n; 53 |] in
      let linked = Linked.link (Helpers.random_program st ~nblocks:n) in
      let input = Helpers.uniform_input 64 in
      let tr = Trace.capture linked ~input in
      image_events (Image.of_trace tr) = replay_events tr)

let qcheck_random_programs_terminate =
  QCheck.Test.make ~name:"random programs halt within fuel" ~count:60
    QCheck.(int_range 2 20)
    (fun n ->
      let st = Random.State.make [| n; 31 |] in
      let program = Helpers.random_program st ~nblocks:n in
      let emu =
        Emulator.create (Linked.link program)
          ~input:(Helpers.uniform_input 64)
      in
      let retired = Emulator.run ~max_insts:100_000 emu in
      Emulator.halted emu && retired < 100_000)

(* ---------- domain pool ---------- *)

let test_pool_map_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      check
        Alcotest.(list int)
        "results in submission order"
        (List.map (fun x -> x * x) xs)
        (Pool.map pool ~f:(fun x -> x * x) xs))

let test_pool_inline () =
  Pool.with_pool ~jobs:1 (fun pool ->
      check Alcotest.int "one worker" 1 (Pool.jobs pool);
      let d0 = (Domain.self () :> int) in
      let ds =
        Pool.map pool ~f:(fun _ -> (Domain.self () :> int)) [ 1; 2; 3 ]
      in
      check
        Alcotest.(list int)
        "tasks run on the submitting domain" [ d0; d0; d0 ] ds)

let test_pool_exception () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "first failure re-raised"
        (Invalid_argument "task 3") (fun () ->
          ignore
            (Pool.map pool
               ~f:(fun i ->
                 if i mod 3 = 0 then
                   invalid_arg (Printf.sprintf "task %d" i)
                 else i)
               [ 1; 2; 3; 4; 5; 6 ])))

let test_pool_effects () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let hits = Atomic.make 0 in
      Pool.run pool
        (List.init 50 (fun _ () -> Atomic.incr hits));
      check Alcotest.int "every task ran" 50 (Atomic.get hits))

let test_pool_reuse () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let a = Pool.map pool ~f:succ [ 1; 2; 3 ] in
      let b = Pool.map pool ~f:succ [ 4; 5 ] in
      check Alcotest.(list int) "first batch" [ 2; 3; 4 ] a;
      check Alcotest.(list int) "second batch" [ 5; 6 ] b)

let () =
  Alcotest.run "dmp_exec"
    [
      ( "semantics",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "branching" `Quick test_branching;
          Alcotest.test_case "loop+memory" `Quick test_loop_and_memory;
          Alcotest.test_case "call/ret" `Quick test_call_ret;
          Alcotest.test_case "main return halts" `Quick
            test_main_return_halts;
          Alcotest.test_case "input exhaustion" `Quick test_input_exhaustion;
          Alcotest.test_case "sparse memory" `Quick
            test_memory_sparse_and_default_zero;
        ] );
      ( "trace",
        [
          Alcotest.test_case "max_insts" `Quick test_max_insts;
          Alcotest.test_case "branch events" `Quick test_branch_event_fields;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "packed trace",
        [
          Alcotest.test_case "matches emulator" `Quick
            test_trace_matches_emulator;
          Alcotest.test_case "cursor fields" `Quick test_trace_cursor_fields;
          Alcotest.test_case "capped capture" `Quick
            test_trace_capped_incomplete;
          QCheck_alcotest.to_alcotest qcheck_trace_replay_equals_live;
        ] );
      ( "image",
        [
          Alcotest.test_case "matches trace" `Quick test_image_matches_trace;
          Alcotest.test_case "capped and empty" `Quick
            test_image_capped_and_empty;
          QCheck_alcotest.to_alcotest qcheck_image_decodes_trace;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "inline when jobs=1" `Quick test_pool_inline;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception;
          Alcotest.test_case "runs every task" `Quick test_pool_effects;
          Alcotest.test_case "reusable across batches" `Quick
            test_pool_reuse;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_random_programs_terminate ] );
    ]
