open Dmp_experiments
open Dmp_workload

let check = Alcotest.check

(* A tiny runner over two benchmarks with capped simulations keeps the
   suite fast. *)
let small_runner () =
  Runner.create
    ~benchmarks:[ Registry.find "vpr"; Registry.find "li" ]
    ~max_insts:120_000 ()

let test_runner_caching () =
  let r = small_runner () in
  let p1 = Runner.profile r "vpr" Input_gen.Reduced in
  let p2 = Runner.profile r "vpr" Input_gen.Reduced in
  check Alcotest.bool "profile cached (physical equality)" true (p1 == p2);
  let b1 = Runner.baseline r "vpr" in
  let b2 = Runner.baseline r "vpr" in
  check Alcotest.bool "baseline cached" true (b1 == b2)

let test_runner_unknown () =
  let r = small_runner () in
  Alcotest.check_raises "unknown benchmark"
    (Invalid_argument "Runner: unknown benchmark nope") (fun () ->
      ignore (Runner.linked r "nope"))

let test_amean () =
  check (Alcotest.float 1e-9) "mean" 2. (Runner.amean [ 1.; 2.; 3. ]);
  check (Alcotest.float 1e-9) "empty" 0. (Runner.amean [])

let test_variants_lookup () =
  List.iter
    (fun name ->
      match Variants.of_string name with
      | Some _ -> ()
      | None -> Alcotest.failf "variant %s not found" name)
    Variants.names;
  check Alcotest.bool "unknown variant" true (Variants.of_string "x" = None)

let test_table2 () =
  let r = small_runner () in
  let rows = Table2.compute r in
  check Alcotest.int "one row per benchmark" 2 (List.length rows);
  List.iter
    (fun row ->
      check Alcotest.bool "ipc positive" true (row.Table2.base_ipc > 0.);
      check Alcotest.bool "has static branches" true
        (row.Table2.static_branches > 0);
      check Alcotest.bool "diverge branches selected" true
        (row.Table2.diverge_branches > 0);
      check Alcotest.bool "avg cfm in [1, max_cfm]" true
        (row.Table2.avg_cfm >= 1.
         && row.Table2.avg_cfm
            <= float_of_int Dmp_core.Params.default.Dmp_core.Params.max_cfm))
    rows;
  let rendered = Table2.render rows in
  check Alcotest.bool "render mentions benchmarks" true
    (Astring_contains.contains rendered "vpr"
     && Astring_contains.contains rendered "li")

let test_fig5_left () =
  let r = small_runner () in
  let fig = Fig5.left r in
  check Alcotest.int "five series" 5 (List.length fig.Report.series);
  List.iter
    (fun s ->
      check Alcotest.int "value per benchmark" 2
        (List.length s.Report.values))
    fig.Report.series;
  (* all-best-heur must beat exact alone on these hammock-heavy
     benchmarks *)
  let mean label =
    Report.mean_of
      (List.find (fun s -> s.Report.label = label) fig.Report.series)
  in
  check Alcotest.bool "cumulative techniques help" true
    (mean "all-best-h" >= mean "exact")

let test_fig10_percentages () =
  let r = small_runner () in
  List.iter
    (fun row ->
      let total =
        row.Fig10.pct_only_run +. row.Fig10.pct_only_train
        +. row.Fig10.pct_either
      in
      check Alcotest.bool "sums to 100" true (abs_float (total -. 100.) < 1e-6))
    (Fig10.run r)

let test_fig7_grid () =
  let r = small_runner () in
  let points =
    Fig7.run ~max_instrs:[ 10; 50 ] ~merge_probs:[ 0.01; 0.9 ] r
  in
  check Alcotest.int "grid size" 4 (List.length points);
  let rendered = Fig7.render points in
  check Alcotest.bool "mentions MAX_INSTR" true
    (Astring_contains.contains rendered "MAX_INSTR")

(* ---------- parallel prefetch and the persistent cache ---------- *)

let profile_bytes p = Marshal.to_string (Dmp_profile.Profile.to_raw p) []
let stats_bytes (s : Dmp_uarch.Stats.t) = Marshal.to_string s []

let quad_benchmarks () =
  [ Registry.find "vpr"; Registry.find "li"; Registry.find "gzip";
    Registry.find "mcf" ]

(* A 4-worker prefetch must produce byte-identical profiles and
   baseline statistics to a purely sequential run: program construction
   is domain-local and order-independent, and every stage is keyed, not
   raced. *)
let test_parallel_prefetch_equivalence () =
  let seq = Runner.create ~benchmarks:(quad_benchmarks ()) ~max_insts:80_000 () in
  let par = Runner.create ~benchmarks:(quad_benchmarks ()) ~max_insts:80_000 () in
  List.iter
    (fun name ->
      ignore (Runner.profile seq name Input_gen.Reduced);
      ignore (Runner.baseline seq name))
    (Runner.names seq);
  Runner.prefetch ~jobs:4 par;
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ ": profile bytes identical") true
        (profile_bytes (Runner.profile seq name Input_gen.Reduced)
        = profile_bytes (Runner.profile par name Input_gen.Reduced));
      check Alcotest.bool (name ^ ": baseline bytes identical") true
        (stats_bytes (Runner.baseline seq name)
        = stats_bytes (Runner.baseline par name)))
    (Runner.names seq)

(* The DMP sweep itself must be jobs-invariant: a 4-worker dmp_batch
   returns the same statistics in the same order as the inline [-j 1]
   runner, and both match sequential per-task [dmp] calls. *)
let test_parallel_dmp_batch_equivalence () =
  let mk jobs =
    Runner.create ~benchmarks:(quad_benchmarks ()) ~max_insts:80_000 ~jobs ()
  in
  let r1 = mk 1 and r4 = mk 4 in
  let tasks r =
    List.concat_map
      (fun name ->
        let linked = Runner.linked r name in
        let profile = Runner.profile r name Input_gen.Reduced in
        [
          (name, Dmp_core.Select.run linked profile);
          (name, Dmp_core.Select.run ~config:Dmp_core.Select.all_cost linked
                   profile);
        ])
      (Runner.names r)
  in
  let seq = List.map (fun (n, a) -> Runner.dmp r1 n a) (tasks r1) in
  let batch1 = Runner.dmp_batch r1 (tasks r1) in
  let batch4 = Runner.dmp_batch r4 (tasks r4) in
  check Alcotest.int "batch covers every task" (List.length seq)
    (List.length batch4);
  List.iteri
    (fun i s ->
      check Alcotest.bool
        (Printf.sprintf "task %d: -j 1 batch = sequential" i)
        true
        (stats_bytes s = stats_bytes (List.nth batch1 i));
      check Alcotest.bool
        (Printf.sprintf "task %d: -j 4 batch = sequential" i)
        true
        (stats_bytes s = stats_bytes (List.nth batch4 i)))
    seq

let stage_calls runner stage =
  match
    List.find_opt (fun (s, _, _) -> s = stage) (Runner.timings runner)
  with
  | Some (_, calls, _) -> calls
  | None -> 0

(* ---------- segmented / sampled simulation modes ---------- *)

let mode_tasks r =
  List.map
    (fun name ->
      let linked = Runner.linked r name in
      let profile = Runner.profile r name Input_gen.Reduced in
      (name, Dmp_core.Select.run linked profile))
    (Runner.names r)

(* Segmented mode re-simulates checkpointed segments and merges the
   deltas; the result must be byte-identical to the exact simulation,
   for any worker count — the nested (task x segment) Pool.map at -j 4
   exercises pool re-entrancy on a real workload. *)
let test_segmented_batch_byte_identical () =
  let mk jobs =
    Runner.create
      ~benchmarks:[ Registry.find "vpr"; Registry.find "li" ]
      ~max_insts:80_000 ~jobs ()
  in
  let r1 = mk 1 and r4 = mk 4 in
  let exact = Runner.dmp_batch ~mode:Runner.Exact r1 (mode_tasks r1) in
  let seg1 =
    Runner.dmp_batch ~mode:(Runner.Segmented 4) r1 (mode_tasks r1)
  in
  let seg4 =
    Runner.dmp_batch ~mode:(Runner.Segmented 4) r4 (mode_tasks r4)
  in
  List.iteri
    (fun i e ->
      check Alcotest.bool
        (Printf.sprintf "task %d: segmented -j 1 = exact" i)
        true
        (stats_bytes e = stats_bytes (List.nth seg1 i));
      check Alcotest.bool
        (Printf.sprintf "task %d: segmented -j 4 = exact" i)
        true
        (stats_bytes e = stats_bytes (List.nth seg4 i)))
    exact;
  check Alcotest.int "one checkpoint capture per task" (List.length exact * 2)
    (stage_calls r1 "ckpt (capture)" + stage_calls r4 "ckpt (capture)")

(* Sampled mode is an estimate, but the extrapolation is exact on the
   retired counter (each segment scales to its own length), reference
   checkpoints are captured once per benchmark, and the estimated IPC
   must land near the exact one on these short capped traces. *)
let test_sampled_batch_estimates () =
  let r =
    Runner.create
      ~benchmarks:[ Registry.find "vpr"; Registry.find "li" ]
      ~max_insts:80_000 ~jobs:2
      ~sim_mode:(Runner.Sampled { segments = 4; warmup = 2_000; window = 8_000 })
      ()
  in
  let tasks = mode_tasks r in
  let exact = Runner.dmp_batch ~mode:Runner.Exact r tasks in
  (* two batches under the runner's sampled default: the second must
     reuse the memoized reference checkpoints *)
  let samp = Runner.dmp_batch r tasks in
  let samp' = Runner.dmp_batch r tasks in
  check Alcotest.int "reference checkpoints captured once per benchmark" 2
    (stage_calls r "ckpt (capture)");
  List.iteri
    (fun i e ->
      let s = List.nth samp i in
      check Alcotest.int
        (Printf.sprintf "task %d: retired extrapolates exactly" i)
        e.Dmp_uarch.Stats.retired s.Dmp_uarch.Stats.retired;
      check Alcotest.bool
        (Printf.sprintf "task %d: sampled runs are deterministic" i)
        true
        (stats_bytes s = stats_bytes (List.nth samp' i));
      let err =
        abs_float
          (Dmp_uarch.Stats.ipc s /. Dmp_uarch.Stats.ipc e -. 1.)
      in
      check Alcotest.bool
        (Printf.sprintf "task %d: IPC within 25%% (err %.3f)" i err)
        true (err < 0.25))
    exact

(* The fidelity report's own contract: segmented error is identically
   zero (byte-identical stats), and the render says so. *)
let test_sim_fidelity_report () =
  let r = small_runner () in
  let rows = Sim_fidelity.run ~segments:3 ~warmup:1_000 ~window:6_000 r in
  check Alcotest.int "one row per benchmark" 2 (List.length rows);
  List.iter
    (fun row ->
      check Alcotest.bool
        (row.Sim_fidelity.name ^ ": segmented byte-identical") true
        row.Sim_fidelity.seg_bytes;
      check (Alcotest.float 1e-12)
        (row.Sim_fidelity.name ^ ": segmented error zero")
        0. row.Sim_fidelity.err_seg_pct)
    rows;
  let rendered = Sim_fidelity.render rows in
  check Alcotest.bool "render reports byte-identity" true
    (Astring_contains.contains rendered "segmented: byte-identical")

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter
      (fun f -> remove_tree (Filename.concat path f))
      (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_cache_dir f =
  let dir = Filename.temp_file "dmp_cache_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

let cached_runner dir =
  Runner.create
    ~benchmarks:[ Registry.find "li" ]
    ~max_insts:80_000 ~cache_dir:dir ()

let test_disk_cache_round_trip () =
  with_temp_cache_dir (fun dir ->
      let r1 = cached_runner dir in
      let p1 = profile_bytes (Runner.profile r1 "li" Input_gen.Reduced) in
      let b1 = stats_bytes (Runner.baseline r1 "li") in
      check Alcotest.int "cold run collects" 1
        (stage_calls r1 "profile (collect)");
      (* a fresh runner over the same directory loads instead of
         recomputing *)
      let r2 = cached_runner dir in
      let p2 = profile_bytes (Runner.profile r2 "li" Input_gen.Reduced) in
      let b2 = stats_bytes (Runner.baseline r2 "li") in
      check Alcotest.bool "profile round-trips" true (p1 = p2);
      check Alcotest.bool "baseline round-trips" true (b1 = b2);
      check Alcotest.int "warm run does not collect" 0
        (stage_calls r2 "profile (collect)");
      check Alcotest.int "warm run does not simulate" 0
        (stage_calls r2 "baseline (simulate)");
      check Alcotest.int "warm run does not capture a trace" 0
        (stage_calls r2 "trace (capture)");
      check Alcotest.int "warm run hits the disk cache" 1
        (stage_calls r2 "profile (disk cache)"))

let test_disk_cache_trace_round_trip () =
  with_temp_cache_dir (fun dir ->
      let ann r =
        Dmp_core.Select.run (Runner.linked r "li")
          (Runner.profile r "li" Input_gen.Reduced)
      in
      let r1 = cached_runner dir in
      let d1 = stats_bytes (Runner.dmp r1 "li" (ann r1)) in
      check Alcotest.int "cold run captures once" 1
        (stage_calls r1 "trace (capture)");
      (* a fresh runner loads the persisted trace and replays it to the
         same statistics *)
      let r2 = cached_runner dir in
      let d2 = stats_bytes (Runner.dmp r2 "li" (ann r2)) in
      check Alcotest.bool "dmp stats round-trip" true (d1 = d2);
      check Alcotest.int "warm run does not capture" 0
        (stage_calls r2 "trace (capture)");
      (* the decoded image is served by the process-global image memo,
         so the warm dmp run needs no trace at all; asking for the
         trace itself still loads the persisted one rather than
         re-capturing *)
      check Alcotest.int "warm dmp run needs no trace" 0
        (stage_calls r2 "trace (disk cache)");
      ignore (Runner.trace r2 "li" Input_gen.Reduced);
      check Alcotest.int "explicit trace loads from disk" 1
        (stage_calls r2 "trace (disk cache)");
      check Alcotest.int "explicit trace does not capture" 0
        (stage_calls r2 "trace (capture)"))

let test_disk_cache_sampled_round_trip () =
  let module Sampler = Dmp_sampling.Sampler in
  let sampling = { Sampler.mode = Sampler.Lbr 8; period = 500; seed = 7 } in
  with_temp_cache_dir (fun dir ->
      let r1 = cached_runner dir in
      let p1 =
        profile_bytes
          (Runner.sampled_profile r1 "li" Input_gen.Reduced sampling)
      in
      check Alcotest.int "cold run collects" 1
        (stage_calls r1 "sprofile (collect)");
      (* a fresh runner over the same directory loads instead of
         recomputing *)
      let r2 = cached_runner dir in
      let p2 =
        profile_bytes
          (Runner.sampled_profile r2 "li" Input_gen.Reduced sampling)
      in
      check Alcotest.bool "sampled profile round-trips" true (p1 = p2);
      check Alcotest.int "warm run does not collect" 0
        (stage_calls r2 "sprofile (collect)");
      check Alcotest.int "warm run hits the disk cache" 1
        (stage_calls r2 "sprofile (disk cache)");
      (* any change to the sampling parameters keys a different entry:
         a warm cache for one configuration is cold for its neighbours,
         never stale *)
      List.iter
        (fun other ->
          let r3 = cached_runner dir in
          let p3 =
            profile_bytes
              (Runner.sampled_profile r3 "li" Input_gen.Reduced other)
          in
          check Alcotest.int
            (Sampler.config_to_string other ^ ": recollected") 1
            (stage_calls r3 "sprofile (collect)");
          check Alcotest.bool
            (Sampler.config_to_string other ^ ": different counters") true
            (p3 <> p1))
        [
          { sampling with Sampler.period = 200 };
          { sampling with Sampler.seed = 8 };
          { sampling with Sampler.mode = Sampler.Mispredict };
        ])

(* The fidelity sweep's anchor row: period-1 periodic sampling must
   agree with the exact pipeline perfectly — Jaccard 1 on both sets,
   zero IPC delta, byte-identical annotations. *)
let test_profile_fidelity_anchor () =
  let module Sampler = Dmp_sampling.Sampler in
  let r = small_runner () in
  let rows =
    Profile_fidelity.run ~periods:[ 1; 1000 ]
      ~modes:[ Sampler.Periodic; Sampler.Lbr 4 ]
      r
  in
  check Alcotest.int "one row per combination" 4 (List.length rows);
  let anchor =
    List.find
      (fun row ->
        row.Profile_fidelity.mode = Sampler.Periodic
        && row.Profile_fidelity.period = 1)
      rows
  in
  check (Alcotest.float 1e-12) "diverge Jaccard 1" 1.
    anchor.Profile_fidelity.jaccard_diverge;
  check (Alcotest.float 1e-12) "CFM Jaccard 1" 1.
    anchor.Profile_fidelity.jaccard_cfm;
  check (Alcotest.float 1e-12) "zero IPC delta" 0.
    anchor.Profile_fidelity.ipc_delta_pct;
  check Alcotest.bool "annotations byte-identical" true
    anchor.Profile_fidelity.exact_bytes;
  let rendered = Profile_fidelity.render rows in
  check Alcotest.bool "render mentions the modes" true
    (Astring_contains.contains rendered "periodic"
    && Astring_contains.contains rendered "lbr4")

let test_disk_cache_corrupt_fallback () =
  with_temp_cache_dir (fun dir ->
      let r1 = cached_runner dir in
      let p1 = profile_bytes (Runner.profile r1 "li" Input_gen.Reduced) in
      (* clobber every cache entry *)
      Array.iter
        (fun sub ->
          let sub = Filename.concat dir sub in
          if Sys.is_directory sub then
            Array.iter
              (fun f ->
                let oc = open_out_bin (Filename.concat sub f) in
                output_string oc "not a cache entry";
                close_out oc)
              (Sys.readdir sub))
        (Sys.readdir dir);
      let r2 = cached_runner dir in
      let p2 = profile_bytes (Runner.profile r2 "li" Input_gen.Reduced) in
      check Alcotest.bool "corrupt entry falls back to recompute" true
        (p1 = p2);
      check Alcotest.int "recompute happened" 1
        (stage_calls r2 "profile (collect)");
      check Alcotest.int "corrupt trace entry is recaptured" 1
        (stage_calls r2 "trace (capture)");
      (* the recompute re-stored a good entry *)
      let r3 = cached_runner dir in
      let p3 = profile_bytes (Runner.profile r3 "li" Input_gen.Reduced) in
      check Alcotest.bool "re-stored entry loads" true (p1 = p3);
      check Alcotest.int "no recompute after re-store" 0
        (stage_calls r3 "profile (collect)"))

(* Targeted corruption injection against the Disk_cache format itself
   (magic | digest | marshalled payload): a flipped bit anywhere, or a
   truncation at any boundary — empty file, inside the magic, inside
   the digest, inside the payload — must load as a miss, never raise,
   and a re-store must restore service. *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let flip_bit path pos =
  let s = Bytes.of_string (read_file path) in
  let pos = min pos (Bytes.length s - 1) in
  Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor 0x40));
  write_file path (Bytes.to_string s)

let truncate_to path keep =
  let s = read_file path in
  write_file path (String.sub s 0 (min keep (String.length s)))

let test_disk_cache_corruption_injection () =
  with_temp_cache_dir (fun dir ->
      let linked =
        Dmp_ir.Linked.link (Helpers.simple_hammock_program ~iters:200 ())
      in
      let input = Helpers.uniform_input 300 in
      let trace = Dmp_exec.Trace.capture linked ~input in
      let profile = Dmp_profile.Profile.collect_trace linked trace in
      let cache = Disk_cache.create ~dir ~max_insts:None () in
      let bench = "synthetic" and set = Input_gen.Reduced in
      let store () =
        Disk_cache.store_profile cache ~bench ~set profile;
        Disk_cache.store_trace cache ~bench ~set trace
      in
      let entries () =
        (* payload entries only: each also carries a .atime sidecar
           recording its last use for LRU eviction *)
        Sys.readdir (Disk_cache.dir cache)
        |> Array.to_list
        |> List.filter (fun f -> not (Filename.check_suffix f ".atime"))
        |> List.sort compare
        |> List.map (Filename.concat (Disk_cache.dir cache))
      in
      let trace_bytes (t : Dmp_exec.Trace.t) = Marshal.to_string t [] in
      let loads_intact () =
        (match Disk_cache.load_profile cache linked ~bench ~set with
        | Some p -> profile_bytes p = profile_bytes profile
        | None -> false)
        &&
        match Disk_cache.load_trace cache ~bench ~set with
        | Some t -> trace_bytes t = trace_bytes trace
        | None -> false
      in
      let loads_missing () =
        Disk_cache.load_profile cache linked ~bench ~set = None
        && Disk_cache.load_trace cache ~bench ~set = None
      in
      store ();
      check Alcotest.int "two entries on disk" 2 (List.length (entries ()));
      check Alcotest.bool "intact entries load" true (loads_intact ());
      (* a flipped bit in the payload breaks the digest *)
      List.iter
        (fun f -> flip_bit f (String.length (read_file f) / 2))
        (entries ());
      check Alcotest.bool "bit-flipped entries miss" true (loads_missing ());
      check Alcotest.int "corrupt entries evicted" 0
        (List.length (entries ()));
      store ();
      check Alcotest.bool "re-stored entries load" true (loads_intact ());
      (* a flipped bit in the magic is caught before the digest *)
      List.iter (fun f -> flip_bit f 0) (entries ());
      check Alcotest.bool "bad-magic entries miss" true (loads_missing ());
      List.iter
        (fun keep ->
          store ();
          List.iter
            (fun f ->
              let len = String.length (read_file f) in
              truncate_to f (min keep (len - 1)))
            (entries ());
          check Alcotest.bool
            (Printf.sprintf "truncated-to-%d entries miss" keep)
            true (loads_missing ()))
        [ 0; 3; 20; 1000 ];
      store ();
      List.iter
        (fun f -> truncate_to f (String.length (read_file f) / 2))
        (entries ());
      check Alcotest.bool "half-truncated entries miss" true (loads_missing ());
      store ();
      check Alcotest.bool "cache recovers after every corruption" true
        (loads_intact ()))

(* The DMP_CACHE_BYTES size cap: least-recently-used entries (ordered
   by the .atime sidecars, which loads rewrite) are evicted on store
   until the total fits, and a load of an evicted entry is an ordinary
   miss — it never raises. *)
let test_disk_cache_lru_eviction () =
  with_temp_cache_dir (fun rdir ->
      let r = Runner.create ~benchmarks:[ Registry.find "li" ]
          ~max_insts:80_000 ~cache_dir:rdir () in
      let stats = Runner.baseline r "li" in
      (* measure one entry's on-disk size with an uncapped cache *)
      let entry_size =
        with_temp_cache_dir (fun dir ->
            let probe = Disk_cache.create ~dir ~max_insts:None () in
            Disk_cache.store_baseline probe ~bench:"probe"
              ~set:Input_gen.Reduced stats;
            Sys.readdir (Disk_cache.dir probe)
            |> Array.to_list
            |> List.filter (fun f -> not (Filename.check_suffix f ".atime"))
            |> List.map (fun f ->
                   (Unix.stat (Filename.concat (Disk_cache.dir probe) f))
                     .Unix.st_size)
            |> List.fold_left ( + ) 0)
      in
      with_temp_cache_dir (fun dir ->
          (* room for three entries and change *)
          let cap = (3 * entry_size) + (entry_size / 2) in
          let cache = Disk_cache.create ~dir ~max_bytes:cap ~max_insts:None ()
          in
          let store b =
            Disk_cache.store_baseline cache ~bench:b ~set:Input_gen.Reduced
              stats
          in
          let load b =
            Disk_cache.load_baseline cache ~bench:b ~set:Input_gen.Reduced
          in
          store "a";
          store "b";
          store "c";
          check Alcotest.bool "a live before eviction" true (load "a" <> None);
          (* that load made "a" the most recently used; "b" is now the
             oldest access, so the next store must evict "b" *)
          store "d";
          check Alcotest.bool "b evicted, load is a clean miss" true
            (load "b" = None);
          check Alcotest.bool "recently-used a survives" true
            (load "a" <> None);
          check Alcotest.bool "c survives" true (load "c" <> None);
          check Alcotest.bool "d survives" true (load "d" <> None)))

let test_cache_bytes_env () =
  let set v = Unix.putenv "DMP_CACHE_BYTES" v in
  Fun.protect
    ~finally:(fun () -> set "")
    (fun () ->
      set "";
      check Alcotest.bool "blank = unlimited" true
        (Disk_cache.env_max_bytes () = Ok None);
      set "  ";
      check Alcotest.bool "whitespace = unlimited" true
        (Disk_cache.env_max_bytes () = Ok None);
      set "1048576";
      check Alcotest.bool "positive accepted" true
        (Disk_cache.env_max_bytes () = Ok (Some 1048576));
      List.iter
        (fun bad ->
          set bad;
          check Alcotest.bool (Printf.sprintf "%S rejected" bad) true
            (match Disk_cache.env_max_bytes () with
            | Error _ -> true
            | Ok _ -> false))
        [ "0"; "-5"; "lots"; "1.5" ])

(* ---------- fused batch scheduler ---------- *)

let fused_runner ?(fused = true) ?(jobs = 1) () =
  Runner.create
    ~benchmarks:[ Registry.find "vpr"; Registry.find "li" ]
    ~max_insts:120_000 ~jobs ~fused ()

(* N behaviourally identical tasks collapse onto one simulation; a
   repeat batch is answered entirely from the fingerprint memo. The
   dedup also has to see through selection metadata: an annotation
   rebuilt with different merge probabilities fingerprints (and
   simulates) as the original. *)
let test_batch_dedup_counters () =
  let r = fused_runner () in
  let ann =
    Dmp_core.Select.run (Runner.linked r "li")
      (Runner.profile r "li" Input_gen.Reduced)
  in
  let meta_tweaked =
    let a = Dmp_core.Annotation.empty () in
    Dmp_core.Annotation.fold
      (fun d () ->
        Dmp_core.Annotation.add a
          {
            d with
            Dmp_core.Annotation.cfms =
              List.map
                (fun c -> { c with Dmp_core.Annotation.merge_prob = 0.123 })
                d.Dmp_core.Annotation.cfms;
          })
      ann ();
    a
  in
  let tasks = [ ("li", ann); ("li", meta_tweaked); ("li", ann) ] in
  let batch = Runner.dmp_batch r tasks in
  check Alcotest.int "one fused kernel" 1
    (stage_calls r "dmp (simulate fused)");
  check Alcotest.int "two dedup hits" 2 (stage_calls r "dmp (dedup hit)");
  let batch' = Runner.dmp_batch r tasks in
  check Alcotest.int "repeat batch simulates nothing" 1
    (stage_calls r "dmp (simulate fused)");
  check Alcotest.int "repeat batch is all memo hits" 5
    (stage_calls r "dmp (dedup hit)");
  let solo = Runner.dmp r "li" ann in
  List.iter
    (fun s ->
      check Alcotest.bool "deduped stats byte-identical to solo" true
        (stats_bytes s = stats_bytes solo))
    (batch @ batch')

(* Same task list through the fused scheduler and the legacy
   one-simulation-per-task batch: byte-identical results in task
   order, with the fused runner provably simulating less. *)
let test_fused_matches_unfused_batch () =
  let mk fused =
    Runner.create
      ~benchmarks:[ Registry.find "vpr"; Registry.find "li" ]
      ~max_insts:120_000 ~jobs:2 ~fused ()
  in
  let rf = mk true and ru = mk false in
  let tasks r =
    List.concat_map
      (fun name ->
        let linked = Runner.linked r name in
        let p = Runner.profile r name Input_gen.Reduced in
        let a1 = Dmp_core.Select.run linked p in
        let a2 = Dmp_core.Select.run ~config:Dmp_core.Select.all_cost linked p in
        (* duplicate on purpose: the fused batch must dedup it, the
           unfused batch simulates it again *)
        [ (name, a1); (name, a2); (name, a1) ])
      (Runner.names r)
  in
  let bf = Runner.dmp_batch rf (tasks rf) in
  let bu = Runner.dmp_batch ru (tasks ru) in
  check Alcotest.int "same task count" (List.length bu) (List.length bf);
  List.iteri
    (fun i b ->
      check Alcotest.bool (Printf.sprintf "task %d: fused = unfused" i) true
        (stats_bytes (List.nth bf i) = stats_bytes b))
    bu;
  check Alcotest.bool "fused batch deduped the repeats" true
    (stage_calls rf "dmp (dedup hit)" >= 2);
  check Alcotest.int "unfused batch never dedups" 0
    (stage_calls ru "dmp (dedup hit)")

(* Prefix elision, forced end-to-end: two annotations whose (distinct)
   diverge branches sit on addresses the capped trace never executes.
   The planner's predicted savings (2x the full run) exceed the one
   reference capture, so the batch must answer both from the capture's
   own statistics without running a single lane — and those statistics
   must be byte-identical to a plain simulation, since a never-firing
   annotation cannot alter behaviour. *)
let test_batch_prefix_elision () =
  let r = fused_runner () in
  let linked = Runner.linked r "li" in
  let img = Runner.image r "li" Input_gen.Reduced in
  let len = Dmp_exec.Image.length img in
  let cold =
    let rec scan a acc =
      if a < 0 || List.length acc >= 2 then acc
      else if Dmp_exec.Image.first_index img a >= len then scan (a - 1) (a :: acc)
      else scan (a - 1) acc
    in
    scan (Dmp_ir.Linked.size linked - 1) []
  in
  check Alcotest.int "found two never-executed addresses" 2 (List.length cold);
  let mk addr =
    let a = Dmp_core.Annotation.empty () in
    Dmp_core.Annotation.add a
      {
        Dmp_core.Annotation.branch_addr = addr;
        kind = Dmp_core.Annotation.Simple_hammock;
        cfms =
          [
            {
              Dmp_core.Annotation.cfm_addr = addr;
              exact = true;
              merge_prob = 0.5;
              select_uops = 2;
            };
          ];
        return_cfm = false;
        always_predicate = false;
        loop = None;
      };
    a
  in
  let batch = Runner.dmp_batch r (List.map (fun a -> ("li", mk a)) cold) in
  check Alcotest.int "one reference capture" 1 (stage_calls r "ckpt (elide)");
  check Alcotest.int "both tasks answered by elide skip" 2
    (stage_calls r "dmp (elide skip)");
  check Alcotest.int "no fused kernel ran" 0
    (stage_calls r "dmp (simulate fused)");
  let plain = Runner.dmp r "li" (Dmp_core.Annotation.empty ()) in
  List.iter
    (fun s ->
      check Alcotest.bool "elided stats = plain dmp-config run" true
        (stats_bytes s = stats_bytes plain))
    batch

(* The process-global image memo: a second runner over the same
   (benchmark, set, cap) shares the first runner's decoded image
   without decoding — physically the same value. *)
let test_global_image_memo () =
  let mk () =
    Runner.create ~benchmarks:[ Registry.find "mcf" ] ~max_insts:90_000 ()
  in
  let r1 = mk () in
  let i1 = Runner.image r1 "mcf" Input_gen.Reduced in
  check Alcotest.int "first runner decodes once" 1
    (stage_calls r1 "image (decode)");
  let r2 = mk () in
  let i2 = Runner.image r2 "mcf" Input_gen.Reduced in
  check Alcotest.int "second runner decodes nothing" 0
    (stage_calls r2 "image (decode)");
  check Alcotest.bool "physically the same image" true (i1 == i2);
  ignore (Sys.opaque_identity r1)

let test_report_render () =
  let fig =
    {
      Report.title = "t";
      unit_label = "u";
      benchmarks = [ "a"; "b" ];
      series =
        [ { Report.label = "s1"; values = [ ("a", 1.); ("b", 3.) ] } ];
    }
  in
  let s = Report.render fig in
  check Alcotest.bool "has mean row" true
    (Astring_contains.contains s "amean");
  check Alcotest.bool "mean correct" true (Astring_contains.contains s "2.00")

(* ---------- cfm-comparison ---------- *)

(* The three-way sweep mixes static batches with per-geometry dynamic
   batches: its rendered report must stay byte-identical across worker
   counts and with the fused scheduler off. *)
let test_cfm_comparison_invariance () =
  let render ~jobs ~fused =
    let r =
      Runner.create
        ~benchmarks:[ Registry.find "li"; Registry.find "compress" ]
        ~max_insts:60_000 ~jobs ~fused ()
    in
    Cfm_comparison.render (Cfm_comparison.run ~periods:[ 1_000 ] r)
  in
  let j1 = render ~jobs:1 ~fused:true in
  let j4 = render ~jobs:4 ~fused:true in
  let unfused = render ~jobs:4 ~fused:false in
  check Alcotest.string "-j1 = -j4" j1 j4;
  check Alcotest.string "fused = unfused" j1 unfused;
  List.iter
    (fun needle ->
      check Alcotest.bool (needle ^ " row present") true
        (Astring_contains.contains j1 needle))
    [ "provider"; "static"; "dynamic"; "oracle"; "mpt-128x4"; "mpt-16x2";
      "stale-1000"; "iposdom" ]

let test_cfm_comparison_warmup_column () =
  let r =
    Runner.create ~benchmarks:[ Registry.find "li" ] ~max_insts:40_000 ()
  in
  let rows = Cfm_comparison.run ~periods:[ 1_000 ] r in
  List.iter
    (fun (row : Cfm_comparison.row) ->
      match row.Cfm_comparison.warmup with
      | Some w ->
          check Alcotest.bool "dynamic rows record a warm-up point" true
            (row.Cfm_comparison.provider = "dynamic" && w >= 0)
      | None ->
          check Alcotest.bool "static/oracle rows have no warm-up" true
            (row.Cfm_comparison.provider <> "dynamic"))
    rows

let () =
  Alcotest.run "dmp_experiments"
    [
      ( "runner",
        [
          Alcotest.test_case "caching" `Quick test_runner_caching;
          Alcotest.test_case "unknown" `Quick test_runner_unknown;
          Alcotest.test_case "amean" `Quick test_amean;
        ] );
      ( "variants",
        [ Alcotest.test_case "lookup" `Quick test_variants_lookup ] );
      ( "parallel",
        [
          Alcotest.test_case "prefetch = sequential" `Slow
            test_parallel_prefetch_equivalence;
          Alcotest.test_case "dmp_batch = sequential" `Slow
            test_parallel_dmp_batch_equivalence;
        ] );
      ( "sim modes",
        [
          Alcotest.test_case "segmented byte-identical" `Slow
            test_segmented_batch_byte_identical;
          Alcotest.test_case "sampled estimates" `Slow
            test_sampled_batch_estimates;
          Alcotest.test_case "sim-fidelity report" `Slow
            test_sim_fidelity_report;
        ] );
      ( "disk cache",
        [
          Alcotest.test_case "round trip" `Slow test_disk_cache_round_trip;
          Alcotest.test_case "trace round trip" `Slow
            test_disk_cache_trace_round_trip;
          Alcotest.test_case "sampled round trip" `Slow
            test_disk_cache_sampled_round_trip;
          Alcotest.test_case "corrupt fallback" `Slow
            test_disk_cache_corrupt_fallback;
          Alcotest.test_case "corruption injection" `Quick
            test_disk_cache_corruption_injection;
          Alcotest.test_case "LRU eviction under DMP_CACHE_BYTES" `Slow
            test_disk_cache_lru_eviction;
          Alcotest.test_case "DMP_CACHE_BYTES validated" `Quick
            test_cache_bytes_env;
        ] );
      ( "fused batch",
        [
          Alcotest.test_case "dedup counters" `Slow test_batch_dedup_counters;
          Alcotest.test_case "fused = unfused" `Slow
            test_fused_matches_unfused_batch;
          Alcotest.test_case "prefix elision" `Slow test_batch_prefix_elision;
          Alcotest.test_case "global image memo" `Slow test_global_image_memo;
        ] );
      ( "cfm comparison",
        [
          Alcotest.test_case "jobs/fused invariance" `Slow
            test_cfm_comparison_invariance;
          Alcotest.test_case "warm-up column" `Slow
            test_cfm_comparison_warmup_column;
        ] );
      ( "figures",
        [
          Alcotest.test_case "table2" `Slow test_table2;
          Alcotest.test_case "fig5 left" `Slow test_fig5_left;
          Alcotest.test_case "fig10 sums" `Slow test_fig10_percentages;
          Alcotest.test_case "fig7 grid" `Slow test_fig7_grid;
          Alcotest.test_case "profile-fidelity anchor" `Slow
            test_profile_fidelity_anchor;
          Alcotest.test_case "report render" `Quick test_report_render;
        ] );
    ]
